// Benchmark harness: one benchmark per reproduced table/figure (see the
// experiment catalogue in README.md) plus the ablation studies.
//
// Each benchmark executes the corresponding experiment at smoke scale per
// iteration and reports experiment-specific metrics (flit steps, classes,
// speedups) through b.ReportMetric, so `go test -bench` output doubles as
// a compact reproduction log. Full-scale numbers are produced by
// `go run ./cmd/wormbench -all`.
package wormhole_test

import (
	"fmt"
	"testing"

	"wormhole"
	"wormhole/internal/butterfly"
	"wormhole/internal/core"
	"wormhole/internal/lowerbound"
	"wormhole/internal/message"
	"wormhole/internal/rng"
	"wormhole/internal/schedule"
	"wormhole/internal/topology"
	"wormhole/internal/traffic"
	"wormhole/internal/vcsim"
)

var benchCfg = core.Config{Seed: 42, Quick: true}

// runExperiment is the generic per-table driver.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := core.Run(id, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

func BenchmarkF1Butterfly(b *testing.B)        { runExperiment(b, "F1") }
func BenchmarkF2TwoPass(b *testing.B)          { runExperiment(b, "F2") }
func BenchmarkT1ScheduleLength(b *testing.B)   { runExperiment(b, "T1") }
func BenchmarkT2LowerBound(b *testing.B)       { runExperiment(b, "T2") }
func BenchmarkT3QRelation(b *testing.B)        { runExperiment(b, "T3") }
func BenchmarkT4OnePass(b *testing.B)          { runExperiment(b, "T4") }
func BenchmarkT5RouterComparison(b *testing.B) { runExperiment(b, "T5") }
func BenchmarkT6NaiveVsLLL(b *testing.B)       { runExperiment(b, "T6") }
func BenchmarkT7CircuitSwitch(b *testing.B)    { runExperiment(b, "T7") }
func BenchmarkT8RestrictedModel(b *testing.B)  { runExperiment(b, "T8") }
func BenchmarkT9Waksman(b *testing.B)          { runExperiment(b, "T9") }
func BenchmarkT10Continuous(b *testing.B)      { runExperiment(b, "T10") }
func BenchmarkT11DallySeitz(b *testing.B)      { runExperiment(b, "T11") }
func BenchmarkT12OpenLoop(b *testing.B)        { runExperiment(b, "T12") }
func BenchmarkT13BufferArch(b *testing.B)      { runExperiment(b, "T13") }

func BenchmarkAblationArbitration(b *testing.B) { runExperiment(b, "A1") }
func BenchmarkAblationResample(b *testing.B)    { runExperiment(b, "A2") }
func BenchmarkAblationDrop(b *testing.B)        { runExperiment(b, "A3") }
func BenchmarkAblationPasses(b *testing.B)      { runExperiment(b, "A4") }
func BenchmarkAblationPathSelect(b *testing.B)  { runExperiment(b, "A5") }

// BenchmarkParallelHarness measures the job-runner's scaling: the same
// experiment bundle executed across worker counts. Output tables are
// byte-identical for every worker count (see core.TestParallelDeterminism),
// so the speedup is pure harness parallelism.
func BenchmarkParallelHarness(b *testing.B) {
	// T1+T6 share the schedule-heavy workloads; T4 adds simulator load.
	ids := []string{"T1", "T4", "T6"}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := core.Config{Seed: 42, Quick: true, Workers: w}
			for i := 0; i < b.N; i++ {
				for _, id := range ids {
					if _, err := core.Run(id, cfg); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- component micro-benchmarks ----------------------------------------------
//
// These isolate the hot paths so performance regressions in the simulator
// or scheduler are visible independent of the experiment wrappers.

// BenchmarkSimulatorGreedy measures raw flit-level simulation throughput
// on a contended butterfly workload, reporting flit-hops per second.
func BenchmarkSimulatorGreedy(b *testing.B) {
	for _, bench := range []struct {
		name string
		vcs  int
	}{
		{"B=1", 1}, {"B=2", 2}, {"B=4", 4},
	} {
		b.Run(bench.name, func(b *testing.B) {
			prob := core.ButterflyQRelation(128, 8, 16, 7)
			b.ResetTimer()
			var hops int64
			var steps int
			for i := 0; i < b.N; i++ {
				res := prob.RouteGreedy(core.GreedyOptions{B: bench.vcs, Policy: vcsim.ArbAge})
				hops = res.FlitHops
				steps = res.Steps
			}
			b.ReportMetric(float64(hops), "flit-hops/op")
			b.ReportMetric(float64(steps), "flit-steps")
		})
	}
}

// BenchmarkOpenLoopStep measures the incremental engine at steady state
// on a 64-input butterfly under continuous Poisson injection, reporting
// the cost of one open-loop flit step. This is the hot path of the
// traffic subsystem, so the ns/step trajectory is the perf baseline for
// future engine work (the CI bench gate tracks it via wormbench -bench).
//
// Two operating points bracket the regime:
//
//   - light (λ = 0.1, B = 4): far below the knee; almost every worm
//     moves every step, so this measures the raw advance path.
//   - knee (λ = 0.3, B = 2): ≈ 98% of the B=2 saturation rate 0.306 —
//     the highest pre-saturation T12 load point relative to its knee —
//     with windows long enough to reach the true standing backlog. Most
//     worms are slot-blocked here, which is what the blocked-worm wakeup
//     engine exists for.
func BenchmarkOpenLoopStep(b *testing.B) {
	for _, bench := range []struct {
		name string
		cfg  traffic.Config
	}{
		{"light", traffic.Config{
			Net:             traffic.NewButterflyNet(64),
			VirtualChannels: 4,
			MessageLength:   6,
			Arbitration:     vcsim.ArbAge,
			Process:         traffic.Poisson,
			Rate:            0.1,
			Pattern:         traffic.Uniform,
			Warmup:          128,
			Measure:         1024,
			Drain:           2048,
			Seed:            17,
		}},
		{"knee", traffic.Config{
			Net:             traffic.NewButterflyNet(64),
			VirtualChannels: 2,
			MessageLength:   6,
			Arbitration:     vcsim.ArbAge,
			Process:         traffic.Poisson,
			Rate:            0.3,
			Pattern:         traffic.Uniform,
			Warmup:          2048,
			Measure:         8192,
			Drain:           32768,
			MaxBacklog:      65536,
			Seed:            17,
		}},
		// The same knee, on 4-flit lanes: the deep engine's per-flit
		// stepping and credit wakeups under sustained backlog.
		{"deepknee-static", traffic.Config{
			Net:             traffic.NewButterflyNet(64),
			VirtualChannels: 2,
			LaneDepth:       4,
			MessageLength:   6,
			Arbitration:     vcsim.ArbAge,
			Process:         traffic.Poisson,
			Rate:            0.3,
			Pattern:         traffic.Uniform,
			Warmup:          2048,
			Measure:         8192,
			Drain:           32768,
			MaxBacklog:      65536,
			Seed:            17,
		}},
		{"deepknee-shared", traffic.Config{
			Net:             traffic.NewButterflyNet(64),
			VirtualChannels: 2,
			LaneDepth:       4,
			SharedPool:      true,
			MessageLength:   6,
			Arbitration:     vcsim.ArbAge,
			Process:         traffic.Poisson,
			Rate:            0.3,
			Pattern:         traffic.Uniform,
			Warmup:          2048,
			Measure:         8192,
			Drain:           32768,
			MaxBacklog:      65536,
			Seed:            17,
		}},
	} {
		b.Run(bench.name, func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				res, err := traffic.Run(bench.cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.Saturated {
					b.Fatal("benchmark workload must run at steady state")
				}
				steps += int64(res.Steps)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(steps), "ns/step")
			b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
		})
	}
}

// BenchmarkSimStepSaturated isolates Sim.Step itself — no injection, no
// traffic wrapper — on a deeply contended line network where most worms
// sit parked on wait queues. allocs/op must be 0: the stepping hot loop
// runs entirely on reused scratch (see the -benchmem satellite of the
// wakeup refactor).
func BenchmarkSimStepSaturated(b *testing.B) {
	g := topology.NewLinearArray(9)
	route := message.ShortestPathRouter(g)
	msg := message.Message{Src: 0, Dst: 8, Length: 6, Path: route(0, 8)}
	build := func() *vcsim.Sim {
		sim, err := vcsim.NewSim(g, vcsim.Config{
			VirtualChannels: 2, Arbitration: vcsim.ArbAge, MaxSteps: 1 << 30,
		})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 4096; i++ {
			if _, err := sim.Inject(msg, 0); err != nil {
				b.Fatal(err)
			}
		}
		return sim
	}
	sim := build()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := sim.Step(); err != nil || sim.Active() < 256 {
			// Workload nearly drained (or horizon hit): rebuild off the
			// clock so every measured iteration steps a loaded network.
			b.StopTimer()
			sim = build()
			b.StartTimer()
		}
	}
}

// BenchmarkScheduleBuild measures LLL schedule construction.
func BenchmarkScheduleBuild(b *testing.B) {
	prob := core.ButterflyQRelation(128, 8, 24, 9)
	for _, vcs := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "B=1", 2: "B=2", 4: "B=4"}[vcs], func(b *testing.B) {
			var classes int
			for i := 0; i < b.N; i++ {
				sched, err := schedule.Build(prob.Set, schedule.Options{
					B:             vcs,
					ConstantScale: core.DefaultConstantScale,
				}, rng.New(uint64(i)))
				if err != nil {
					b.Fatal(err)
				}
				classes = sched.NumClasses
			}
			b.ReportMetric(float64(classes), "classes")
		})
	}
}

// BenchmarkLockstepSubround measures the fast-path subround engine used by
// the Section 3.1 algorithm.
func BenchmarkLockstepSubround(b *testing.B) {
	const n = 1024
	r := rng.New(3)
	routes := make([]butterfly.TwoPassRoute, 4*n)
	for i := range routes {
		routes[i] = butterfly.TwoPassRoute{Src: r.Intn(n), Mid: r.Intn(n), Dst: r.Intn(n)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		butterfly.RunLockstepSubround(n, 2, routes, butterfly.ArbRandom, r)
	}
}

// BenchmarkAdversaryBuild measures the Theorem 2.2.1 construction.
func BenchmarkAdversaryBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lowerbound.Build(lowerbound.Params{B: 2, TargetD: 24, TargetC: 12, L: 72})
	}
}

// BenchmarkButterflyRoute measures bit-fixing path construction.
func BenchmarkButterflyRoute(b *testing.B) {
	bf := topology.NewButterfly(1024)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bf.Route(r.Intn(1024), r.Intn(1024))
	}
}

// BenchmarkPublicAPI exercises the facade end to end (quickstart shape).
func BenchmarkPublicAPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prob := wormhole.ButterflyQRelation(64, 4, 12, uint64(i))
		res := prob.RouteGreedy(wormhole.GreedyOptions{B: 2})
		if !res.AllDelivered() {
			b.Fatal("undelivered")
		}
	}
}
