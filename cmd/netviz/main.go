// Command netviz inspects the repository's network topologies: it prints
// structural summaries and can emit Graphviz DOT (used to regenerate the
// paper's Figure 1).
//
// Usage:
//
//	netviz -topo butterfly -n 8            # summary
//	netviz -topo butterfly -n 8 -dot       # Figure 1 as DOT
//	netviz -topo twopass -n 8 -dot         # the Figure 2 unrolled network
//	netviz -topo mesh -n 4                 # 4x4 mesh
//	netviz -topo hypercube -n 16
//	netviz -topo adversary -b 2 -d 16 -c 6 # Theorem 2.2.1 network
package main

import (
	"flag"
	"fmt"
	"os"

	"wormhole/internal/graph"
	"wormhole/internal/lowerbound"
	"wormhole/internal/topology"
)

func main() {
	var (
		topo = flag.String("topo", "butterfly", "butterfly|twopass|mesh|torus|hypercube|linear|adversary")
		n    = flag.Int("n", 8, "size parameter (inputs, side, or nodes)")
		b    = flag.Int("b", 2, "virtual channels (adversary topology)")
		d    = flag.Int("d", 16, "target dilation (adversary topology)")
		c    = flag.Int("c", 6, "target congestion (adversary topology)")
		dot  = flag.Bool("dot", false, "emit Graphviz DOT instead of a summary")
	)
	flag.Parse()

	var g *graph.Graph
	name := *topo
	switch *topo {
	case "butterfly":
		g = topology.NewButterfly(*n).G
	case "twopass":
		g = topology.NewTwoPassButterfly(*n).G
	case "mesh":
		g = topology.NewMesh(*n, *n).G
	case "torus":
		g = topology.NewTorus(*n, *n).G
	case "hypercube":
		g = topology.NewHypercube(*n).G
	case "linear":
		g = topology.NewLinearArray(*n)
	case "adversary":
		con := lowerbound.Build(lowerbound.Params{B: *b, TargetD: *d, TargetC: *c, L: 2 * *d})
		g = con.G
		fmt.Printf("adversary: M'=%d replicas=%d C=%d D=%d primary-edges=%d\n",
			con.MPrime, con.Replicas, con.C, con.D, len(con.Primary))
	default:
		fmt.Fprintf(os.Stderr, "netviz: unknown topology %q\n", *topo)
		os.Exit(2)
	}

	if *dot {
		fmt.Print(g.DOT(name))
		return
	}
	fmt.Printf("%s: %d nodes, %d edges, max degree %d, DAG=%v, diameter=%d\n",
		name, g.NumNodes(), g.NumEdges(), g.MaxDegree(), graph.IsDAG(g), graph.Diameter(g))
}
