// Command netviz inspects the repository's network topologies: it prints
// structural summaries and can emit Graphviz DOT (used to regenerate the
// paper's Figure 1).
//
// Usage:
//
//	netviz -topo butterfly -n 8            # summary
//	netviz -topo butterfly -n 8 -dot       # Figure 1 as DOT
//	netviz -topo twopass -n 8 -dot         # the Figure 2 unrolled network
//	netviz -topo mesh -n 4                 # 4x4 mesh
//	netviz -topo hypercube -n 16
//	netviz -topo adversary -b 2 -d 16 -c 6 # Theorem 2.2.1 network
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"wormhole/internal/graph"
	"wormhole/internal/lowerbound"
	"wormhole/internal/topology"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, writes output to
// stdout/stderr, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("netviz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		topo = fs.String("topo", "butterfly", "butterfly|twopass|mesh|torus|hypercube|linear|adversary")
		n    = fs.Int("n", 8, "size parameter (inputs, side, or nodes)")
		b    = fs.Int("b", 2, "virtual channels (adversary topology)")
		d    = fs.Int("d", 16, "target dilation (adversary topology)")
		c    = fs.Int("c", 6, "target congestion (adversary topology)")
		dot  = fs.Bool("dot", false, "emit Graphviz DOT instead of a summary")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0 // match flag.ExitOnError: -h prints usage and succeeds
		}
		return 2
	}

	var g *graph.Graph
	name := *topo
	switch *topo {
	case "butterfly":
		g = topology.NewButterfly(*n).G
	case "twopass":
		g = topology.NewTwoPassButterfly(*n).G
	case "mesh":
		g = topology.NewMesh(*n, *n).G
	case "torus":
		g = topology.NewTorus(*n, *n).G
	case "hypercube":
		g = topology.NewHypercube(*n).G
	case "linear":
		g = topology.NewLinearArray(*n)
	case "adversary":
		con := lowerbound.Build(lowerbound.Params{B: *b, TargetD: *d, TargetC: *c, L: 2 * *d})
		g = con.G
		fmt.Fprintf(stdout, "adversary: M'=%d replicas=%d C=%d D=%d primary-edges=%d\n",
			con.MPrime, con.Replicas, con.C, con.D, len(con.Primary))
	default:
		fmt.Fprintf(stderr, "netviz: unknown topology %q\n", *topo)
		return 2
	}

	if *dot {
		fmt.Fprint(stdout, g.DOT(name))
		return 0
	}
	fmt.Fprintf(stdout, "%s: %d nodes, %d edges, max degree %d, DAG=%v, diameter=%d\n",
		name, g.NumNodes(), g.NumEdges(), g.MaxDegree(), graph.IsDAG(g), graph.Diameter(g))
	return 0
}
