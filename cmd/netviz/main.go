// Command netviz inspects the repository's network topologies: it prints
// structural summaries and can emit Graphviz DOT (used to regenerate the
// paper's Figure 1).
//
// Usage:
//
//	netviz -topo butterfly -n 8            # summary
//	netviz -topo butterfly -n 8 -dot       # Figure 1 as DOT
//	netviz -topo twopass -n 8 -dot         # the Figure 2 unrolled network
//	netviz -topo mesh -n 4                 # 4x4 mesh
//	netviz -topo hypercube -n 16
//	netviz -topo adversary -b 2 -d 16 -c 6 # Theorem 2.2.1 network
//
// With -heatmap, netviz overlays a telemetry snapshot (wormbench
// -telemetry, or any telemetry.WriteSnapshotFile output) onto the
// topology: -dot colors each edge on a gray→red ramp by its share of the
// chosen -metric (stall count or mean occupancy), and without -dot it
// prints the hottest edges as a ranked table. The snapshot must have been
// recorded on the same topology — edge counts are checked.
//
//	netviz -topo butterfly -n 64 -heatmap snap.json -dot > heat.dot
//	netviz -topo butterfly -n 64 -heatmap snap.json -metric occupancy
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"wormhole/internal/graph"
	"wormhole/internal/lowerbound"
	"wormhole/internal/telemetry"
	"wormhole/internal/topology"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, writes output to
// stdout/stderr, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("netviz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		topo = fs.String("topo", "butterfly", "butterfly|twopass|mesh|torus|hypercube|linear|adversary")
		n    = fs.Int("n", 8, "size parameter (inputs, side, or nodes)")
		b    = fs.Int("b", 2, "virtual channels (adversary topology)")
		d    = fs.Int("d", 16, "target dilation (adversary topology)")
		c    = fs.Int("c", 6, "target congestion (adversary topology)")
		dot  = fs.Bool("dot", false, "emit Graphviz DOT instead of a summary")
		heat = fs.String("heatmap", "", "telemetry snapshot JSON to overlay as a per-edge heatmap")
		met  = fs.String("metric", "stalls", "heatmap metric: stalls|occupancy")
		top  = fs.Int("top", 10, "rows in the hottest-edges table (-heatmap without -dot)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0 // match flag.ExitOnError: -h prints usage and succeeds
		}
		return 2
	}

	var g *graph.Graph
	name := *topo
	switch *topo {
	case "butterfly":
		g = topology.NewButterfly(*n).G
	case "twopass":
		g = topology.NewTwoPassButterfly(*n).G
	case "mesh":
		g = topology.NewMesh(*n, *n).G
	case "torus":
		g = topology.NewTorus(*n, *n).G
	case "hypercube":
		g = topology.NewHypercube(*n).G
	case "linear":
		g = topology.NewLinearArray(*n)
	case "adversary":
		con := lowerbound.Build(lowerbound.Params{B: *b, TargetD: *d, TargetC: *c, L: 2 * *d})
		g = con.G
		fmt.Fprintf(stdout, "adversary: M'=%d replicas=%d C=%d D=%d primary-edges=%d\n",
			con.MPrime, con.Replicas, con.C, con.D, len(con.Primary))
	default:
		fmt.Fprintf(stderr, "netviz: unknown topology %q\n", *topo)
		return 2
	}

	if *heat != "" {
		return runHeatmap(g, name, *heat, *met, *top, *dot, stdout, stderr)
	}
	if *dot {
		fmt.Fprint(stdout, g.DOT(name))
		return 0
	}
	fmt.Fprintf(stdout, "%s: %d nodes, %d edges, max degree %d, DAG=%v, diameter=%d\n",
		name, g.NumNodes(), g.NumEdges(), g.MaxDegree(), graph.IsDAG(g), graph.Diameter(g))
	return 0
}

// runHeatmap overlays the per-edge telemetry from snapshot file path onto g:
// as colored DOT when dot is set, otherwise as a ranked hottest-edges table.
func runHeatmap(g *graph.Graph, name, path, metric string, top int, dot bool, stdout, stderr io.Writer) int {
	snap, err := telemetry.ReadSnapshotFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "netviz: %v\n", err)
		return 1
	}
	var vals []float64
	switch metric {
	case "stalls":
		vals = make([]float64, len(snap.EdgeStalls))
		for e, s := range snap.EdgeStalls {
			vals[e] = float64(s)
		}
	case "occupancy":
		vals = append([]float64(nil), snap.EdgeOcc...)
	default:
		fmt.Fprintf(stderr, "netviz: unknown metric %q (want stalls or occupancy)\n", metric)
		return 2
	}
	if len(vals) != g.NumEdges() {
		fmt.Fprintf(stderr, "netviz: snapshot covers %d edges but topology %s has %d — was it recorded on a different network?\n",
			len(vals), name, g.NumEdges())
		return 2
	}
	max := 0.0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	if dot {
		fmt.Fprint(stdout, g.DOTEdges(name, func(e graph.EdgeID) string {
			v := vals[e]
			if v <= 0 || max <= 0 {
				return ""
			}
			t := v / max
			return fmt.Sprintf("color=%q penwidth=%.2f", heatColor(t), 1+2*t)
		}))
		return 0
	}
	order := make([]int, len(vals))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return vals[order[i]] > vals[order[j]] })
	if top < len(order) {
		order = order[:top]
	}
	fmt.Fprintf(stdout, "%s: hottest edges by %s (of %d)\n", name, metric, g.NumEdges())
	fmt.Fprintf(stdout, "%6s  %-16s %12s %10s\n", "edge", "tail>head", "stalls", "occ_mean")
	for _, e := range order {
		ed := g.Edge(graph.EdgeID(e))
		tl, hl := g.Label(ed.Tail), g.Label(ed.Head)
		if tl == "" {
			tl = fmt.Sprint(ed.Tail)
		}
		if hl == "" {
			hl = fmt.Sprint(ed.Head)
		}
		var stalls int64
		if e < len(snap.EdgeStalls) {
			stalls = snap.EdgeStalls[e]
		}
		var occ float64
		if e < len(snap.EdgeOcc) {
			occ = snap.EdgeOcc[e]
		}
		fmt.Fprintf(stdout, "%6d  %-16s %12d %10.4f\n", e, tl+">"+hl, stalls, occ)
	}
	return 0
}

// heatColor maps t in [0,1] onto a gray→red ramp (Graphviz hex color).
func heatColor(t float64) string {
	lerp := func(a, b int) int { return a + int(math.Round(t*float64(b-a))) }
	return fmt.Sprintf("#%02x%02x%02x", lerp(0xd9, 0xd7), lerp(0xd9, 0x30), lerp(0xd9, 0x27))
}
