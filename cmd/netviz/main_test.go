package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), code
}

func TestSummariesGolden(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-topo", "butterfly", "-n", "8"},
			"butterfly: 32 nodes, 48 edges, max degree 2, DAG=true, diameter=3\n"},
		{[]string{"-topo", "mesh", "-n", "4"},
			"mesh: 16 nodes, 48 edges, max degree 4, DAG=false, diameter=6\n"},
		{[]string{"-topo", "linear", "-n", "5"},
			"linear: 5 nodes, 8 edges, max degree 2, DAG=false, diameter=4\n"},
	} {
		out, _, code := runCLI(t, tc.args...)
		if code != 0 {
			t.Fatalf("%v: exit code %d", tc.args, code)
		}
		if out != tc.want {
			t.Errorf("%v:\n got %q\nwant %q", tc.args, out, tc.want)
		}
	}
}

func TestDOTOutput(t *testing.T) {
	out, _, code := runCLI(t, "-topo", "butterfly", "-n", "4", "-dot")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.HasPrefix(out, "digraph \"butterfly\" {") || !strings.Contains(out, "->") {
		t.Errorf("not a DOT digraph:\n%.200s", out)
	}
}

func TestAdversarySummary(t *testing.T) {
	out, _, code := runCLI(t, "-topo", "adversary", "-b", "2", "-d", "16", "-c", "6")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out, "adversary: M'=") {
		t.Errorf("missing adversary construction summary:\n%s", out)
	}
}

func TestUnknownTopologyFails(t *testing.T) {
	_, stderr, code := runCLI(t, "-topo", "bogus")
	if code != 2 || !strings.Contains(stderr, "unknown topology") {
		t.Errorf("code=%d stderr=%q, want exit 2 with unknown-topology error", code, stderr)
	}
}

func TestHelpExitsZero(t *testing.T) {
	_, stderr, code := runCLI(t, "-h")
	if code != 0 || !strings.Contains(stderr, "Usage") {
		t.Errorf("-h: code=%d stderr=%q, want exit 0 with usage text", code, stderr)
	}
}
