package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"wormhole/internal/telemetry"
)

func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), code
}

func TestSummariesGolden(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-topo", "butterfly", "-n", "8"},
			"butterfly: 32 nodes, 48 edges, max degree 2, DAG=true, diameter=3\n"},
		{[]string{"-topo", "mesh", "-n", "4"},
			"mesh: 16 nodes, 48 edges, max degree 4, DAG=false, diameter=6\n"},
		{[]string{"-topo", "linear", "-n", "5"},
			"linear: 5 nodes, 8 edges, max degree 2, DAG=false, diameter=4\n"},
	} {
		out, _, code := runCLI(t, tc.args...)
		if code != 0 {
			t.Fatalf("%v: exit code %d", tc.args, code)
		}
		if out != tc.want {
			t.Errorf("%v:\n got %q\nwant %q", tc.args, out, tc.want)
		}
	}
}

func TestDOTOutput(t *testing.T) {
	out, _, code := runCLI(t, "-topo", "butterfly", "-n", "4", "-dot")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.HasPrefix(out, "digraph \"butterfly\" {") || !strings.Contains(out, "->") {
		t.Errorf("not a DOT digraph:\n%.200s", out)
	}
}

func TestAdversarySummary(t *testing.T) {
	out, _, code := runCLI(t, "-topo", "adversary", "-b", "2", "-d", "16", "-c", "6")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out, "adversary: M'=") {
		t.Errorf("missing adversary construction summary:\n%s", out)
	}
}

// heatSnapshot writes a telemetry snapshot for an 8-edge topology
// (linear -n 5) with edge 2 the clear hot spot and returns its path.
func heatSnapshot(t *testing.T) string {
	t.Helper()
	m := telemetry.NewMetrics()
	m.EnsureEdges(8)
	for i := 0; i < 5; i++ {
		m.EdgeStall(telemetry.CtrStallLaneCredit, 2)
	}
	m.EdgeStall(telemetry.CtrStallLaneCredit, 6)
	m.EdgeOccupancy(2, 1, 4)
	m.EdgeOccupancy(2, 0, 8) // integral 4 over horizon 8 → mean 0.5
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := telemetry.WriteSnapshotFile(path, m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestHeatmapTableGolden(t *testing.T) {
	out, _, code := runCLI(t, "-topo", "linear", "-n", "5", "-heatmap", heatSnapshot(t), "-top", "2")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	const want = `linear: hottest edges by stalls (of 8)
  edge  tail>head              stalls   occ_mean
     2  1>2                         5     0.5000
     6  3>4                         1     0.0000
`
	if out != want {
		t.Errorf("golden mismatch:\n--- got ---\n%s--- want ---\n%s", out, want)
	}
}

func TestHeatmapDOTOverlay(t *testing.T) {
	out, _, code := runCLI(t, "-topo", "linear", "-n", "5", "-heatmap", heatSnapshot(t), "-dot")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	// Edge 2 (1→2) carries the max stall count: full-red, max penwidth.
	if !strings.Contains(out, `n1 -> n2 [color="#d73027" penwidth=3.00];`) {
		t.Errorf("hottest edge not rendered full-red:\n%s", out)
	}
	// Edge 0 (0→1) recorded nothing: bare edge statement.
	if !strings.Contains(out, "n0 -> n1;\n") {
		t.Errorf("cold edge should stay unstyled:\n%s", out)
	}
}

func TestHeatmapOccupancyMetric(t *testing.T) {
	out, _, code := runCLI(t, "-topo", "linear", "-n", "5",
		"-heatmap", heatSnapshot(t), "-metric", "occupancy", "-top", "1")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out, "hottest edges by occupancy") || !strings.Contains(out, "\n     2  ") {
		t.Errorf("occupancy ranking should lead with edge 2:\n%s", out)
	}
}

func TestHeatmapEdgeCountMismatch(t *testing.T) {
	_, stderr, code := runCLI(t, "-topo", "mesh", "-n", "4", "-heatmap", heatSnapshot(t))
	if code != 2 || !strings.Contains(stderr, "snapshot covers 8 edges") {
		t.Errorf("code=%d stderr=%q, want exit 2 with edge-count mismatch", code, stderr)
	}
}

func TestHeatmapUnknownMetric(t *testing.T) {
	_, stderr, code := runCLI(t, "-topo", "linear", "-n", "5", "-heatmap", heatSnapshot(t), "-metric", "bogus")
	if code != 2 || !strings.Contains(stderr, "unknown metric") {
		t.Errorf("code=%d stderr=%q, want exit 2 with unknown-metric error", code, stderr)
	}
}

func TestUnknownTopologyFails(t *testing.T) {
	_, stderr, code := runCLI(t, "-topo", "bogus")
	if code != 2 || !strings.Contains(stderr, "unknown topology") {
		t.Errorf("code=%d stderr=%q, want exit 2 with unknown-topology error", code, stderr)
	}
}

func TestHelpExitsZero(t *testing.T) {
	_, stderr, code := runCLI(t, "-h")
	if code != 0 || !strings.Contains(stderr, "Usage") {
		t.Errorf("-h: code=%d stderr=%q, want exit 0 with usage text", code, stderr)
	}
}
