// Command schedgen builds and verifies a Theorem 2.1.6 wormhole schedule
// for a chosen workload, printing the refinement trace and the verified
// makespan.
//
// Usage:
//
//	schedgen -n 256 -q 8 -l 32 -b 4
//	schedgen -n 64 -q 8 -l 24 -b 2 -scale 1.0   # the paper's constants
package main

import (
	"flag"
	"fmt"
	"os"

	"wormhole/internal/core"
	"wormhole/internal/rng"
	"wormhole/internal/schedule"
)

func main() {
	var (
		n     = flag.Int("n", 256, "butterfly inputs")
		q     = flag.Int("q", 8, "messages per input (q-relation)")
		l     = flag.Int("l", 32, "flits per message")
		b     = flag.Int("b", 2, "virtual channels")
		seed  = flag.Uint64("seed", 42, "random seed")
		scale = flag.Float64("scale", core.DefaultConstantScale, "refinement constant scale (1.0 = paper)")
		whole = flag.Bool("whole", false, "resample whole refinements instead of violated classes")
	)
	flag.Parse()

	prob := core.ButterflyQRelation(*n, *q, *l, *seed)
	fmt.Printf("workload: %s  C=%d D=%d L=%d B=%d\n", prob.Label, prob.C, prob.D, prob.L, *b)

	sched, err := schedule.Build(prob.Set, schedule.Options{
		B:             *b,
		ConstantScale: *scale,
		ResampleWhole: *whole,
	}, rng.New(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedgen:", err)
		os.Exit(1)
	}

	fmt.Printf("plan: %d refinement step(s)\n", len(sched.Planned))
	for i, st := range sched.Steps {
		fmt.Printf("  step %d: %v ms=%d→mf=%d r=%d (final r=%d, %d attempt(s), escalated=%v, classes=%d)\n",
			i+1, st.Spec.Case, st.Spec.Ms, st.Spec.Mf, st.Spec.R,
			st.FinalR, st.Attempts, st.Escalated, st.NumClasses)
	}
	fmt.Printf("classes: %d  spacing: %d  guaranteed length: %d flit steps\n",
		sched.NumClasses, sched.Spacing, sched.LengthUB)

	res, err := schedule.Verify(prob.Set, sched)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedgen: verification failed:", err)
		os.Exit(1)
	}
	fmt.Printf("verified: %d/%d delivered, makespan %d flit steps, %d stalls\n",
		res.Delivered, prob.Set.Len(), res.Steps, res.TotalStalls)
	fmt.Printf("theorem bound (no constants): %.0f flit steps\n",
		schedule.UpperBound216(prob.L, prob.C, prob.D, *b))
}
