// Command schedgen builds and verifies a Theorem 2.1.6 wormhole schedule
// for a chosen workload, printing the refinement trace and the verified
// makespan.
//
// Usage:
//
//	schedgen -n 256 -q 8 -l 32 -b 4
//	schedgen -n 64 -q 8 -l 24 -b 2 -scale 1.0   # the paper's constants
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"wormhole/internal/core"
	"wormhole/internal/rng"
	"wormhole/internal/schedule"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, writes output to
// stdout/stderr, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("schedgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n     = fs.Int("n", 256, "butterfly inputs")
		q     = fs.Int("q", 8, "messages per input (q-relation)")
		l     = fs.Int("l", 32, "flits per message")
		b     = fs.Int("b", 2, "virtual channels")
		seed  = fs.Uint64("seed", 42, "random seed")
		scale = fs.Float64("scale", core.DefaultConstantScale, "refinement constant scale (1.0 = paper)")
		whole = fs.Bool("whole", false, "resample whole refinements instead of violated classes")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0 // match flag.ExitOnError: -h prints usage and succeeds
		}
		return 2
	}

	prob := core.ButterflyQRelation(*n, *q, *l, *seed)
	fmt.Fprintf(stdout, "workload: %s  C=%d D=%d L=%d B=%d\n", prob.Label, prob.C, prob.D, prob.L, *b)

	sched, err := schedule.Build(prob.Set, schedule.Options{
		B:             *b,
		ConstantScale: *scale,
		ResampleWhole: *whole,
	}, rng.New(*seed))
	if err != nil {
		fmt.Fprintln(stderr, "schedgen:", err)
		return 1
	}

	fmt.Fprintf(stdout, "plan: %d refinement step(s)\n", len(sched.Planned))
	for i, st := range sched.Steps {
		fmt.Fprintf(stdout, "  step %d: %v ms=%d→mf=%d r=%d (final r=%d, %d attempt(s), escalated=%v, classes=%d)\n",
			i+1, st.Spec.Case, st.Spec.Ms, st.Spec.Mf, st.Spec.R,
			st.FinalR, st.Attempts, st.Escalated, st.NumClasses)
	}
	fmt.Fprintf(stdout, "classes: %d  spacing: %d  guaranteed length: %d flit steps\n",
		sched.NumClasses, sched.Spacing, sched.LengthUB)

	res, err := schedule.Verify(prob.Set, sched)
	if err != nil {
		fmt.Fprintln(stderr, "schedgen: verification failed:", err)
		return 1
	}
	fmt.Fprintf(stdout, "verified: %d/%d delivered, makespan %d flit steps, %d stalls\n",
		res.Delivered, prob.Set.Len(), res.Steps, res.TotalStalls)
	fmt.Fprintf(stdout, "theorem bound (no constants): %.0f flit steps\n",
		schedule.UpperBound216(prob.L, prob.C, prob.D, *b))
	return 0
}
