package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), code
}

// TestSmallScheduleGolden pins the deterministic output of a small
// schedule build end to end: workload parameters, plan, and the verified
// makespan line.
func TestSmallScheduleGolden(t *testing.T) {
	out, _, code := runCLI(t, "-n", "16", "-q", "1", "-l", "4", "-b", "2", "-seed", "42")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	for _, want := range []string{
		"workload: butterfly(n=16,q=1)  C=2 D=4 L=4 B=2\n",
		"classes: 1  spacing: 7  guaranteed length: 7 flit steps\n",
		"verified: 16/16 delivered, makespan 7 flit steps, 0 stalls\n",
		"theorem bound (no constants): 23 flit steps\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestScheduleDeterminism re-runs the same seed and demands identical
// bytes — the schedule builder is seeded end to end.
func TestScheduleDeterminism(t *testing.T) {
	first, _, code := runCLI(t, "-n", "16", "-q", "2", "-l", "6", "-b", "2", "-seed", "7")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	second, _, _ := runCLI(t, "-n", "16", "-q", "2", "-l", "6", "-b", "2", "-seed", "7")
	if first != second {
		t.Error("same seed produced different schedgen output")
	}
	if !strings.Contains(first, "verified: 32/32 delivered") {
		t.Errorf("expected full delivery; output:\n%s", first)
	}
}

func TestHelpExitsZero(t *testing.T) {
	_, stderr, code := runCLI(t, "-h")
	if code != 0 || !strings.Contains(stderr, "Usage") {
		t.Errorf("-h: code=%d stderr=%q, want exit 0 with usage text", code, stderr)
	}
}
