// Command wormbench runs the paper-reproduction experiments and prints
// their result tables, and doubles as the benchmark harness behind the
// CI regression gate.
//
// Usage:
//
//	wormbench -list
//	wormbench -run T1 [-seed 42] [-quick] [-trials 5] [-workers 8]
//	wormbench -all
//	wormbench -bench [-benchout BENCH.json] [-baseline BENCH_BASELINE.json] [-benchreps 5]
//	wormbench ... [-cpuprofile cpu.prof] [-memprofile mem.prof]
//
// Experiment IDs are catalogued in README.md (F1, F2 for the figures;
// T1–T11 for the theorem/remark reproductions; T12 for the open-loop
// steady-state traffic study; T13 for the buffer-architecture study —
// lane depth and shared pools; A1–A5 for the design ablations). -workers
// fans the experiment's independent jobs across a worker pool
// (0 = GOMAXPROCS); tables are byte-identical for any value.
//
// -bench runs the fixed benchmark suite (see internal/bench) and writes
// ns/step and allocs/step per workload to -benchout. With -baseline it
// additionally compares against a committed report and exits nonzero on
// a >15% calibration-normalized ns/step regression or any allocs/step
// regression — the CI perf gate.
//
// -cpuprofile and -memprofile write pprof profiles covering whatever the
// invocation ran — an experiment or the benchmark suite — so performance
// work reproduces from the committed harness instead of ad-hoc patches:
//
//	go run ./cmd/wormbench -bench -cpuprofile cpu.prof
//	go tool pprof -top cpu.prof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"wormhole/internal/bench"
	"wormhole/internal/core"
)

func main() {
	// Defers (the profile writers below) must run before the process
	// exits, including on gate failures — os.Exit skips them — so the
	// real work happens in run() and main only converts its code.
	os.Exit(run())
}

func run() int {
	var (
		list      = flag.Bool("list", false, "list available experiments")
		run       = flag.String("run", "", "experiment ID to run (e.g. T1)")
		all       = flag.Bool("all", false, "run every experiment")
		seed      = flag.Uint64("seed", 42, "experiment seed")
		quick     = flag.Bool("quick", false, "shrink sweeps to smoke-test scale")
		trials    = flag.Int("trials", 0, "override trial count (0 = default)")
		workers   = flag.Int("workers", 0, "parallel harness workers (0 = GOMAXPROCS)")
		scale     = flag.Int("scale", 0, "network-size override for scale experiments (T14; 0 = default)")
		csvOut    = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		doBench   = flag.Bool("bench", false, "run the benchmark suite instead of experiments")
		benchOut  = flag.String("benchout", "BENCH.json", "benchmark report output path")
		baseline  = flag.String("baseline", "", "baseline report to gate against (e.g. BENCH_BASELINE.json)")
		benchReps = flag.Int("benchreps", 5, "benchmark repeats (best-of)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write an allocation profile of the run to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wormbench: cpuprofile:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "wormbench: cpuprofile:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "wormbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush the final allocation state
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "wormbench: memprofile:", err)
			}
		}()
	}

	cfg := core.Config{Seed: *seed, Quick: *quick, Trials: *trials, Workers: *workers, Scale: *scale}

	switch {
	case *doBench:
		return runBench(*benchOut, *baseline, *benchReps)
	case *list:
		for _, e := range core.Experiments() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
	case *all:
		for _, e := range core.Experiments() {
			if code := runOne(e.ID, cfg, *csvOut); code != 0 {
				return code
			}
		}
	case *run != "":
		return runOne(*run, cfg, *csvOut)
	default:
		flag.Usage()
		return 2
	}
	return 0
}

func runBench(out, baselinePath string, reps int) int {
	start := time.Now()
	rep, err := bench.Collect(reps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wormbench: bench:", err)
		return 1
	}
	for _, e := range rep.Entries {
		fmt.Printf("%-28s %12.0f ns/%s %10.3f allocs/%s\n",
			e.Name, e.NsPerStep, e.Unit, e.AllocsPerStep, e.Unit)
	}
	fmt.Printf("[calibration %.0f ns; %d repeats; done in %v]\n",
		rep.CalibrationNs, reps, time.Since(start).Round(time.Millisecond))
	if err := rep.WriteFile(out); err != nil {
		fmt.Fprintln(os.Stderr, "wormbench: bench:", err)
		return 1
	}
	if baselinePath == "" {
		return 0
	}
	base, err := bench.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wormbench: bench:", err)
		return 1
	}
	fmt.Print(bench.DeltaTable(base, rep))
	if bad := bench.Compare(base, rep, bench.NsTolerance); len(bad) > 0 {
		fmt.Fprintln(os.Stderr, "wormbench: benchmark regressions against", baselinePath)
		for _, msg := range bad {
			fmt.Fprintln(os.Stderr, "  REGRESSION:", msg)
		}
		return 1
	}
	fmt.Printf("bench gate: no regressions against %s\n", baselinePath)
	return 0
}

func runOne(id string, cfg core.Config, csvOut bool) int {
	start := time.Now()
	tables, err := core.Run(id, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wormbench:", err)
		return 1
	}
	for _, t := range tables {
		if csvOut {
			fmt.Printf("# %s\n", t.Title())
			if err := t.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "wormbench: csv:", err)
				return 1
			}
			fmt.Println()
			continue
		}
		fmt.Println(t)
	}
	if !csvOut {
		fmt.Printf("[%s done in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
