// Command wormbench runs the paper-reproduction experiments and prints
// their result tables.
//
// Usage:
//
//	wormbench -list
//	wormbench -run T1 [-seed 42] [-quick] [-trials 5] [-workers 8]
//	wormbench -all
//
// Experiment IDs are catalogued in README.md (F1, F2 for the figures;
// T1–T11 for the theorem/remark reproductions; T12 for the open-loop
// steady-state traffic study; A1–A5 for the design ablations). -workers
// fans the experiment's independent jobs across a worker pool
// (0 = GOMAXPROCS); tables are byte-identical for any value.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wormhole/internal/core"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments")
		run     = flag.String("run", "", "experiment ID to run (e.g. T1)")
		all     = flag.Bool("all", false, "run every experiment")
		seed    = flag.Uint64("seed", 42, "experiment seed")
		quick   = flag.Bool("quick", false, "shrink sweeps to smoke-test scale")
		trials  = flag.Int("trials", 0, "override trial count (0 = default)")
		workers = flag.Int("workers", 0, "parallel harness workers (0 = GOMAXPROCS)")
		csvOut  = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	cfg := core.Config{Seed: *seed, Quick: *quick, Trials: *trials, Workers: *workers}

	switch {
	case *list:
		for _, e := range core.Experiments() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
	case *all:
		for _, e := range core.Experiments() {
			runOne(e.ID, cfg, *csvOut)
		}
	case *run != "":
		runOne(*run, cfg, *csvOut)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(id string, cfg core.Config, csvOut bool) {
	start := time.Now()
	tables, err := core.Run(id, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wormbench:", err)
		os.Exit(1)
	}
	for _, t := range tables {
		if csvOut {
			fmt.Printf("# %s\n", t.Title())
			if err := t.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "wormbench: csv:", err)
				os.Exit(1)
			}
			fmt.Println()
			continue
		}
		fmt.Println(t)
	}
	if !csvOut {
		fmt.Printf("[%s done in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
