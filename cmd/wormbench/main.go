// Command wormbench runs the paper-reproduction experiments and prints
// their result tables, and doubles as the benchmark harness behind the
// CI regression gate.
//
// Usage:
//
//	wormbench -list
//	wormbench -run T1 [-seed 42] [-quick] [-trials 5] [-workers 8]
//	wormbench -all
//	wormbench -bench [-benchout BENCH.json] [-baseline BENCH_BASELINE.json] [-benchreps 5]
//	wormbench ... [-cpuprofile cpu.prof] [-memprofile mem.prof]
//
// Experiment IDs are catalogued in README.md (F1, F2 for the figures;
// T1–T11 for the theorem/remark reproductions; T12 for the open-loop
// steady-state traffic study; T13 for the buffer-architecture study —
// lane depth and shared pools; A1–A5 for the design ablations). -workers
// fans the experiment's independent jobs across a worker pool
// (0 = GOMAXPROCS); tables are byte-identical for any value.
//
// -bench runs the fixed benchmark suite (see internal/bench) and writes
// ns/step and allocs/step per workload to -benchout. With -baseline it
// additionally compares against a committed report and exits nonzero on
// a >15% calibration-normalized ns/step regression or any allocs/step
// regression — the CI perf gate.
//
// -cpuprofile and -memprofile write pprof profiles covering whatever the
// invocation ran — an experiment or the benchmark suite — so performance
// work reproduces from the committed harness instead of ad-hoc patches:
//
//	go run ./cmd/wormbench -bench -cpuprofile cpu.prof
//	go tool pprof -top cpu.prof
//
// -telemetry FILE attaches hot-path counters to whatever the invocation
// runs and writes the resulting snapshot as JSON: with -run/-all every
// simulator feeds one aggregate; with -bench the knee-telemetry
// workload's snapshot is exported; alone it runs the knee smoke workload
// with counters and a windowed time series. -http ADDR additionally
// serves the latest published snapshot at /metrics and the standard
// net/http/pprof handlers at /debug/pprof for live inspection.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"wormhole/internal/bench"
	"wormhole/internal/core"
	"wormhole/internal/telemetry"
)

func main() {
	// Defers (the profile writers below) must run before the process
	// exits, including on gate failures — os.Exit skips them — so the
	// real work happens in run() and main only converts its code.
	os.Exit(run())
}

func run() int {
	var (
		list      = flag.Bool("list", false, "list available experiments")
		run       = flag.String("run", "", "experiment ID to run (e.g. T1)")
		all       = flag.Bool("all", false, "run every experiment")
		seed      = flag.Uint64("seed", 42, "experiment seed")
		quick     = flag.Bool("quick", false, "shrink sweeps to smoke-test scale")
		trials    = flag.Int("trials", 0, "override trial count (0 = default)")
		workers   = flag.Int("workers", 0, "parallel harness workers (0 = GOMAXPROCS)")
		scale     = flag.Int("scale", 0, "network-size override for scale experiments (T14, T15; 0 = default)")
		shards    = flag.Int("shards", 0, "simulator shard count for open-loop experiments (0/1 = sequential; outputs are byte-identical for every value)")
		csvOut    = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		doBench   = flag.Bool("bench", false, "run the benchmark suite instead of experiments")
		benchOut  = flag.String("benchout", "BENCH.json", "benchmark report output path")
		baseline  = flag.String("baseline", "", "baseline report to gate against (e.g. BENCH_BASELINE.json)")
		benchReps = flag.Int("benchreps", 5, "benchmark repeats (best-of)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write an allocation profile of the run to this file")
		telOut    = flag.String("telemetry", "", "write a telemetry snapshot JSON to this file (attaches counters to whatever runs; alone it runs the knee smoke workload)")
		httpAddr  = flag.String("http", "", "serve live telemetry (/metrics) and net/http/pprof (/debug/pprof) on this address")
		ckptDir   = flag.String("checkpoint", "", "memoize completed harness jobs under this directory so an interrupted run resumes on re-invocation (long offline sweeps; tables are byte-identical with or without it)")
	)
	flag.Parse()

	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wormbench: http:", err)
			return 1
		}
		defer ln.Close()
		http.Handle("/metrics", telemetry.Default)
		fmt.Fprintf(os.Stderr, "wormbench: serving /metrics and /debug/pprof on http://%s\n", ln.Addr())
		go http.Serve(ln, nil) //nolint:errcheck -- best-effort diagnostics server
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wormbench: cpuprofile:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "wormbench: cpuprofile:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "wormbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush the final allocation state
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "wormbench: memprofile:", err)
			}
		}()
	}

	cfg := core.Config{Seed: *seed, Quick: *quick, Trials: *trials, Workers: *workers, Scale: *scale, Shards: *shards}
	if *telOut != "" || *shards >= 2 {
		// With -shards the aggregate is attached even without -telemetry:
		// its sharded_steps / shard_fallback_steps counters back the
		// fallback warning below. Tables are byte-identical either way.
		cfg.Telemetry = telemetry.NewAggregate()
	}

	switch {
	case *doBench:
		return runBench(*benchOut, *baseline, *benchReps, *telOut)
	case *list:
		for _, e := range core.Experiments() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
	case *all:
		for _, e := range core.Experiments() {
			if code := runOne(e.ID, cfg, *csvOut, *ckptDir); code != 0 {
				return code
			}
		}
		warnShardFallback(*shards, cfg.Telemetry)
		return writeTelemetry(*telOut, cfg.Telemetry)
	case *run != "":
		if code := runOne(*run, cfg, *csvOut, *ckptDir); code != 0 {
			return code
		}
		warnShardFallback(*shards, cfg.Telemetry)
		return writeTelemetry(*telOut, cfg.Telemetry)
	case *telOut != "":
		// Standalone -telemetry: run the knee smoke workload with the full
		// observability surface and export its snapshot (the CI smoke step).
		snap, err := bench.TelemetrySmoke()
		if err != nil {
			fmt.Fprintln(os.Stderr, "wormbench: telemetry:", err)
			return 1
		}
		if err := telemetry.WriteSnapshotFile(*telOut, snap); err != nil {
			fmt.Fprintln(os.Stderr, "wormbench: telemetry:", err)
			return 1
		}
		fmt.Printf("telemetry: knee smoke snapshot (steps=%d, %d windows) written to %s\n",
			snap.Counter("steps"), len(snap.Windows), *telOut)
	default:
		flag.Usage()
		return 2
	}
	return 0
}

// warnShardFallback reports — on stderr, never stdout, which CI
// byte-diffs across shard counts — when -shards requested a parallel
// stepper but every simulator step silently fell back to the
// sequential path (see vcsim.Sim.ShardFallbackReason for the standing
// conditions that cause this).
func warnShardFallback(shards int, agg *telemetry.Aggregate) {
	if shards < 2 || agg == nil {
		return
	}
	snap := agg.Snapshot()
	if snap.Counter("steps") > 0 && snap.Counter("sharded_steps") == 0 {
		fmt.Fprintf(os.Stderr,
			"wormbench: warning: -shards %d requested but no step ran sharded (%d of %d steps hit a fallback condition; the rest were below the activity cutoff)\n",
			shards, snap.Counter("shard_fallback_steps"), snap.Counter("steps"))
	}
}

// writeTelemetry publishes and exports the aggregate collected across the
// experiments just run. A nil aggregate (no -telemetry flag) is a no-op,
// as is an empty path (aggregate attached only for the fallback warning).
func writeTelemetry(path string, agg *telemetry.Aggregate) int {
	if agg == nil || path == "" {
		return 0
	}
	snap := agg.Snapshot()
	telemetry.Default.Publish(snap)
	if err := telemetry.WriteSnapshotFile(path, snap); err != nil {
		fmt.Fprintln(os.Stderr, "wormbench: telemetry:", err)
		return 1
	}
	fmt.Printf("telemetry: aggregate of %d registries (steps=%d) written to %s\n",
		agg.Len(), snap.Counter("steps"), path)
	return 0
}

func runBench(out, baselinePath string, reps int, telOut string) int {
	start := time.Now()
	rep, err := bench.Collect(reps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wormbench: bench:", err)
		return 1
	}
	if telOut != "" && rep.Telemetry != nil {
		telemetry.Default.Publish(*rep.Telemetry)
		if err := telemetry.WriteSnapshotFile(telOut, *rep.Telemetry); err != nil {
			fmt.Fprintln(os.Stderr, "wormbench: telemetry:", err)
			return 1
		}
		fmt.Printf("telemetry: knee-telemetry snapshot written to %s\n", telOut)
	}
	for _, e := range rep.Entries {
		fmt.Printf("%-28s %12.0f ns/%s %10.3f allocs/%s\n",
			e.Name, e.NsPerStep, e.Unit, e.AllocsPerStep, e.Unit)
	}
	fmt.Printf("[calibration %.0f ns; %d repeats; done in %v]\n",
		rep.CalibrationNs, reps, time.Since(start).Round(time.Millisecond))
	if err := rep.WriteFile(out); err != nil {
		fmt.Fprintln(os.Stderr, "wormbench: bench:", err)
		return 1
	}
	if baselinePath == "" {
		return 0
	}
	base, err := bench.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wormbench: bench:", err)
		return 1
	}
	fmt.Print(bench.DeltaTable(base, rep))
	if bad := bench.Compare(base, rep, bench.NsTolerance); len(bad) > 0 {
		fmt.Fprintln(os.Stderr, "wormbench: benchmark regressions against", baselinePath)
		for _, msg := range bad {
			fmt.Fprintln(os.Stderr, "  REGRESSION:", msg)
		}
		return 1
	}
	fmt.Printf("bench gate: no regressions against %s\n", baselinePath)
	return 0
}

func runOne(id string, cfg core.Config, csvOut bool, ckptDir string) int {
	if ckptDir != "" {
		// A Checkpoint must be fresh per experiment run; keying the store
		// by experiment ID keeps -all runs resumable per experiment.
		cfg.Checkpoint = &core.Checkpoint{Store: core.DirStore{Dir: filepath.Join(ckptDir, id)}}
	}
	start := time.Now()
	tables, err := core.Run(id, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wormbench:", err)
		return 1
	}
	for _, t := range tables {
		if csvOut {
			fmt.Printf("# %s\n", t.Title())
			if err := t.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "wormbench: csv:", err)
				return 1
			}
			fmt.Println()
			continue
		}
		fmt.Println(t)
	}
	if !csvOut {
		fmt.Printf("[%s done in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
