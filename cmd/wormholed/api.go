package main

// The HTTP/JSON surface. All responses are JSON except a done job's
// /result, which is the rendered CSV.
//
//	POST /api/v1/jobs             submit a JobSpec       → 202 JobStatus
//	GET  /api/v1/jobs             list                   → 200 [JobStatus]
//	GET  /api/v1/jobs/{id}        status                 → 200 JobStatus
//	POST /api/v1/jobs/{id}/cancel cancel                 → 200 JobStatus
//	GET  /api/v1/jobs/{id}/result final output           → 200 text/csv (409 until done)
//	GET  /api/v1/jobs/{id}/metrics latest per-window telemetry snapshot
//	                              (telemetry.Publisher; 204 before first window)
//	GET  /healthz                 liveness               → 200 {"ok":true}
//	GET  /metrics                 daemon gauges          → 200 JSON
//
// Invalid submissions — including workloads the engine rejects with its
// typed errors (vcsim.ErrBadConfig, ErrBadMessage, ErrOverHorizon) —
// are 400s carrying the engine's message, never worker-side failures.
// Submissions over the -max-queued admission cap are 429s with a
// Retry-After header; bodies over 1 MiB are 413s (MaxBytesReader).

import (
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"time"

	"wormhole/internal/vcsim"
)

// maxJobBody bounds a job submission; a JobSpec is a few hundred bytes,
// so 1 MiB is generous without letting a client buffer gigabytes.
const maxJobBody = 1 << 20

func newAPI(m *manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, maxJobBody)
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				httpError(w, http.StatusRequestEntityTooLarge, err.Error())
				return
			}
			httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
		st, err := m.Submit(spec)
		if err != nil {
			if errors.Is(err, errShutdown) {
				httpError(w, http.StatusServiceUnavailable, err.Error())
				return
			}
			if errors.Is(err, errQueueFull) {
				w.Header().Set("Retry-After", "1")
				httpError(w, http.StatusTooManyRequests, err.Error())
				return
			}
			resp := map[string]string{"error": "bad_request", "message": err.Error()}
			if k := engineErrorKind(err); k != "" {
				resp["engine_error"] = k
			}
			writeJSON(w, http.StatusBadRequest, resp)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("GET /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.List())
	})
	mux.HandleFunc("GET /api/v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such job")
			return
		}
		writeJSON(w, http.StatusOK, j.snapshotStatus())
	})
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if !m.Cancel(id) {
			httpError(w, http.StatusNotFound, "no such job")
			return
		}
		j, _ := m.Get(id)
		writeJSON(w, http.StatusOK, j.snapshotStatus())
	})
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such job")
			return
		}
		st := j.snapshotStatus()
		if st.State != stateDone {
			httpError(w, http.StatusConflict, "job is "+string(st.State))
			return
		}
		blob, err := os.ReadFile(m.ResultPath(st.ID))
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("Content-Type", "text/csv")
		w.Write(blob) //nolint:errcheck -- best-effort response body
	})
	mux.HandleFunc("GET /api/v1/jobs/{id}/metrics", func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such job")
			return
		}
		j.pub.ServeHTTP(w, r)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		all := m.List()
		counts := map[jobState]int{}
		for _, st := range all {
			counts[st.State]++
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"uptime_sec":    int64(time.Since(m.start) / time.Second),
			"jobs_total":    len(all),
			"jobs_queued":   counts[stateQueued],
			"jobs_running":  counts[stateRunning],
			"jobs_done":     counts[stateDone],
			"jobs_failed":   counts[stateFailed],
			"jobs_canceled": counts[stateCanceled],
		})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck -- best-effort response body
}

func httpError(w http.ResponseWriter, code int, msg string) {
	kind := ""
	switch code {
	case http.StatusBadRequest:
		kind = "bad_request"
	case http.StatusNotFound:
		kind = "not_found"
	case http.StatusConflict:
		kind = "not_ready"
	case http.StatusTooManyRequests:
		kind = "overloaded"
	case http.StatusRequestEntityTooLarge:
		kind = "too_large"
	case http.StatusServiceUnavailable:
		kind = "shutting_down"
	default:
		kind = "internal"
	}
	writeJSON(w, code, map[string]string{"error": kind, "message": msg})
}

// engineErrorKind classifies the engine's typed validation errors for
// clients that want to branch on the cause rather than parse messages.
func engineErrorKind(err error) string {
	switch {
	case errors.Is(err, vcsim.ErrOverHorizon):
		return "over_horizon"
	case errors.Is(err, vcsim.ErrBadMessage):
		return "bad_message"
	case errors.Is(err, vcsim.ErrBadConfig):
		return "bad_config"
	}
	return ""
}
