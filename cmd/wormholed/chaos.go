package main

// Checkpoint integrity framing and the -chaos fault injector.
//
// Checkpoint files on disk are not raw WRUNSNAP blobs: the daemon frames
// them with a magic and a CRC-32 of the payload, so *any* corruption — a
// torn write from a crash, a flipped bit from a bad disk, a truncation
// from a full one — is detected before the runner codec ever sees the
// bytes, and recovery falls back to a fresh run instead of resuming from
// (and serving results derived from) silently-corrupt state. The runner
// codec validates structure; the frame validates the bytes themselves.
//
// The -chaos flag arms a deterministic, seed-derived injector on that
// same write path: checkpoint writes randomly fail as if the disk were
// full, tear (a prefix of the blob hits the disk), flip a byte, or
// vanish entirely. It exists for the chaos e2e harness, which SIGKILLs a
// chaotic daemon mid-run and requires the restart to produce results
// byte-identical to an uninterrupted run — every injected corruption
// must be caught by the frame and degrade to a fresh run, never crash
// the daemon and never leak into served results.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"

	"wormhole/internal/rng"
)

// ckptMagic frames every checkpoint file: magic, CRC-32 (IEEE) of the
// payload, payload.
const ckptMagic = "WHCKPT01"

var errCorruptCheckpoint = errors.New("wormholed: corrupt checkpoint")

// sealCheckpoint wraps a WRUNSNAP blob in the integrity frame.
func sealCheckpoint(blob []byte) []byte {
	out := make([]byte, 0, len(ckptMagic)+4+len(blob))
	out = append(out, ckptMagic...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(blob))
	return append(out, blob...)
}

// openCheckpoint verifies the frame and returns the payload.
func openCheckpoint(raw []byte) ([]byte, error) {
	if len(raw) < len(ckptMagic)+4 || string(raw[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("%w: bad frame", errCorruptCheckpoint)
	}
	want := binary.LittleEndian.Uint32(raw[len(ckptMagic):])
	payload := raw[len(ckptMagic)+4:]
	if crc32.ChecksumIEEE(payload) != want {
		return nil, fmt.Errorf("%w: checksum mismatch", errCorruptCheckpoint)
	}
	return payload, nil
}

// chaosInjector deterministically mangles checkpoint writes. One
// injector serves all workers, so the draw sequence (and therefore the
// injected fault pattern) is fixed by the seed and the order of
// checkpoint attempts.
type chaosInjector struct {
	mu sync.Mutex
	r  *rng.Source
}

func newChaosInjector(seed uint64) *chaosInjector {
	return &chaosInjector{r: rng.New(seed)}
}

// mangleWrite decides the fate of one checkpoint write. It returns the
// (possibly corrupted) bytes to write, nil bytes to drop the write, or
// an error to simulate a full disk.
func (c *chaosInjector) mangleWrite(path string, blob []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.r.Intn(5) {
	case 0: // disk full
		fmt.Fprintf(os.Stderr, "wormholed: chaos: ENOSPC on %s\n", path)
		return nil, fmt.Errorf("chaos: %w", errDiskFull)
	case 1: // torn write: a prefix reaches the disk
		cut := c.r.Intn(len(blob) + 1)
		fmt.Fprintf(os.Stderr, "wormholed: chaos: torn write (%d/%d bytes) on %s\n", cut, len(blob), path)
		return blob[:cut], nil
	case 2: // bit flip
		mangled := append([]byte(nil), blob...)
		pos := c.r.Intn(len(mangled))
		mangled[pos] ^= 1 << c.r.Intn(8)
		fmt.Fprintf(os.Stderr, "wormholed: chaos: bit flip at %d on %s\n", pos, path)
		return mangled, nil
	case 3: // write lost entirely
		fmt.Fprintf(os.Stderr, "wormholed: chaos: dropped write on %s\n", path)
		return nil, nil
	default: // clean
		return blob, nil
	}
}

var errDiskFull = errors.New("no space left on device")
