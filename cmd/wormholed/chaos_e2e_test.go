package main

// Chaos end-to-end: the acceptance test for "never crashes, never
// serves corrupt results". A daemon started with -chaos (so its own
// checkpoint writes are being failed, torn, flipped, and dropped) runs
// a faulted sweep, is SIGKILLed at a randomized point after its first
// checkpoint lands, and the checkpoint on disk is then corrupted by the
// harness — one subtest truncates it, one flips a bit. The restarted
// daemon must detect the corruption (CRC frame), fall back to a fresh
// run, and serve a CSV byte-identical to a direct in-process run of the
// same spec. All daemon traffic goes through internal/wormclient, whose
// retry-on-refused discipline is what lets the harness talk across the
// restart.
//
// CI sets WORMHOLED_STATE_ROOT to a workspace path so a failing run
// leaves its state directory behind for artifact upload; without it the
// state lives under t.TempDir and vanishes with the test.

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"wormhole/internal/traffic"
	"wormhole/internal/wormclient"
)

func chaosSweepSpec() *SweepSpec {
	return &SweepSpec{
		Topology:         "butterfly",
		Size:             8,
		VirtualChannels:  2,
		MessageLength:    4,
		Process:          "bernoulli",
		Rates:            []float64{0.05},
		Warmup:           100,
		Measure:          3_000_000, // long enough to checkpoint and die mid-run
		Drain:            1000,
		Seed:             23,
		Faults:           "lane:1@500-2500 edge:6@1000-4000",
		RetryMaxAttempts: 4,
		RetryBackoff:     8,
		RetryBackoffCap:  128,
	}
}

// chaosOracle renders the spec's expected CSV from direct in-process
// runs.
func chaosOracle(t *testing.T, spec *SweepSpec) string {
	t.Helper()
	net, err := spec.network()
	if err != nil {
		t.Fatal(err)
	}
	var points []pointResult
	for _, rate := range spec.Rates {
		cfg, err := spec.config(net, rate)
		if err != nil {
			t.Fatal(err)
		}
		res, err := traffic.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		points = append(points, pointResult{Rate: rate, Result: res})
	}
	return renderSweepCSV(points)
}

func chaosClient(base string) *wormclient.Client {
	return wormclient.New(base,
		wormclient.WithRetry(8, 50*time.Millisecond, time.Second),
		wormclient.WithJitterSeed(1))
}

func waitDoneClient(t *testing.T, c *wormclient.Client, id string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for {
		var st JobStatus
		if err := c.GetJSON(ctx, "/api/v1/jobs/"+id, &st); err != nil {
			t.Fatalf("status %s: %v", id, err)
		}
		switch st.State {
		case stateDone:
			return
		case stateFailed, stateCanceled:
			t.Fatalf("job %s reached %s: %s", id, st.State, st.Error)
		}
		select {
		case <-ctx.Done():
			t.Fatalf("job %s never completed", id)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func TestDaemonChaosE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds and drives real binaries")
	}
	tmp := t.TempDir()
	bin := buildBinary(t, tmp, "wormhole/cmd/wormholed", "wormholed")
	spec := chaosSweepSpec()
	want := chaosOracle(t, spec)
	rnd := rand.New(rand.NewSource(time.Now().UnixNano()))
	stateRoot := os.Getenv("WORMHOLED_STATE_ROOT")
	if stateRoot == "" {
		stateRoot = tmp
	}

	for _, tc := range []struct {
		name    string
		corrupt func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/3] }},
		{"bitflip", func(b []byte) []byte {
			mut := append([]byte(nil), b...)
			mut[len(mut)/2] ^= 0x10
			return mut
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			stateDir := filepath.Join(stateRoot, "state-"+tc.name)
			t.Logf("state dir: %s", stateDir)

			// Phase 1: a chaotic daemon — its own checkpoint writes are
			// already being injured — takes the job.
			cmd, base := startDaemon(t, bin, stateDir,
				"-checkpoint-interval", "200000", "-chaos", "7")
			cli := chaosClient(base)
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			var st JobStatus
			if err := cli.PostJSON(ctx, "/api/v1/jobs", JobSpec{Type: "sweep", Sweep: spec}, &st); err != nil {
				t.Fatalf("submit: %v", err)
			}

			// Wait for a checkpoint to land (chaos drops some attempts;
			// one gets through), then SIGKILL at a randomized offset.
			snapPath := filepath.Join(stateDir, "jobs", st.ID, "point-000.snap")
			deadline := time.Now().Add(60 * time.Second)
			for {
				if fi, err := os.Stat(snapPath); err == nil && fi.Size() > 0 {
					break
				}
				if time.Now().After(deadline) {
					cmd.Process.Kill() //nolint:errcheck
					t.Fatal("no checkpoint ever landed; cannot stage the kill")
				}
				time.Sleep(20 * time.Millisecond)
			}
			time.Sleep(time.Duration(rnd.Intn(150)) * time.Millisecond)
			if cmd.ProcessState != nil {
				t.Fatal("daemon exited on its own before the kill")
			}
			if err := cmd.Process.Kill(); err != nil {
				t.Fatal(err)
			}
			cmd.Wait() //nolint:errcheck -- killed by design

			// Phase 2: the harness corrupts whatever checkpoint survived.
			raw, err := os.ReadFile(snapPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(snapPath, tc.corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			// Phase 3: a clean daemon restarts over the poisoned state
			// dir. It must reject the checkpoint, rerun from scratch, and
			// serve the oracle's bytes.
			cmd2, base2 := startDaemon(t, bin, stateDir)
			defer func() {
				cmd2.Process.Kill() //nolint:errcheck
				cmd2.Wait()         //nolint:errcheck
			}()
			cli2 := chaosClient(base2)
			waitDoneClient(t, cli2, st.ID)
			got, err := cli2.Get(context.Background(), "/api/v1/jobs/"+st.ID+"/result")
			if err != nil {
				t.Fatal(err)
			}
			if want != string(got) {
				t.Errorf("recovery after %s checkpoint diverged from clean run\nwant:\n%s\ngot:\n%s", tc.name, want, got)
			}
			var health map[string]any
			if err := cli2.GetJSON(context.Background(), "/healthz", &health); err != nil {
				t.Fatalf("healthz after recovery: %v", err)
			}

			// The harness corruption (or chaos's own) must have been seen
			// and discarded, not resumed: a resumed corrupt run would have
			// produced divergent bytes above, and the checkpoint file is
			// gone once its point completes.
			if _, err := os.Stat(snapPath); !os.IsNotExist(err) {
				t.Errorf("completed point left its checkpoint behind: %v", err)
			}
			if !t.Failed() {
				os.RemoveAll(stateDir)
			}
		})
	}
}
