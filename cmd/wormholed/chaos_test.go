package main

// In-process tests for the robustness surface this package grew with
// the fault plane: the checkpoint integrity frame, the deterministic
// chaos injector, the -max-queued admission cap, the request body cap,
// and faulted sweep jobs rendering identically to direct runs.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wormhole/internal/traffic"
)

// TestCheckpointFrame: the CRC frame round-trips, and every corruption
// class the chaos plane produces — truncation anywhere, a flip of any
// single byte, garbage — is rejected before the runner codec runs.
func TestCheckpointFrame(t *testing.T) {
	payload := []byte("WRUNSNAP-stand-in payload bytes, long enough to cut at many points")
	sealed := sealCheckpoint(payload)

	got, err := openCheckpoint(sealed)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("roundtrip: %v (%q)", err, got)
	}
	for cut := 0; cut < len(sealed); cut++ {
		if _, err := openCheckpoint(sealed[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for pos := 0; pos < len(sealed); pos++ {
		mut := append([]byte(nil), sealed...)
		mut[pos] ^= 0x20
		if _, err := openCheckpoint(mut); err == nil {
			t.Fatalf("bit flip at %d accepted", pos)
		}
	}
	if _, err := openCheckpoint([]byte("not a checkpoint at all")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestChaosInjectorDeterministic: same seed, same write sequence, same
// injected faults — the chaos plane is replayable like everything else.
func TestChaosInjectorDeterministic(t *testing.T) {
	blob := bytes.Repeat([]byte{0xAB}, 400)
	trace := func(seed uint64) []string {
		inj := newChaosInjector(seed)
		var out []string
		for i := 0; i < 64; i++ {
			mangled, err := inj.mangleWrite("x", blob)
			switch {
			case err != nil:
				out = append(out, "enospc")
			case mangled == nil:
				out = append(out, "drop")
			case bytes.Equal(mangled, blob):
				out = append(out, "clean")
			default:
				out = append(out, fmt.Sprintf("mangle-%d-%x", len(mangled), mangled[:min(4, len(mangled))]))
			}
		}
		return out
	}
	a, b := trace(7), trace(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged: %s vs %s", i, a[i], b[i])
		}
	}
	// The injector actually injects: a long trace is not all clean.
	all := strings.Join(a, ",")
	for _, kind := range []string{"enospc", "drop", "clean", "mangle"} {
		if !strings.Contains(all, kind) {
			t.Errorf("64 draws never produced %q: %s", kind, all)
		}
	}
}

// TestAdmissionCap: submissions over -max-queued get 429 with
// Retry-After, and nothing is persisted for the rejected job.
func TestAdmissionCap(t *testing.T) {
	dir := t.TempDir()
	m, err := newManager(dir, 1, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	srv := newTestHTTP(t, m)

	long := testSweepSpec()
	long.Rates = []float64{0.05}
	long.Measure = 200_000_000 // occupies the lone worker until cancel

	submit := func() *http.Response {
		return postJSON(t, srv+"/api/v1/jobs", JobSpec{Type: "sweep", Sweep: long})
	}
	first := decodeStatus(t, submit())           // picked up by the worker
	waitStateURL(t, srv, first.ID, stateRunning) // queue is empty again
	second := decodeStatus(t, submit())          // sits in the queue

	resp := submit()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var body map[string]string
	json.NewDecoder(resp.Body).Decode(&body) //nolint:errcheck
	if body["error"] != "overloaded" {
		t.Fatalf("error kind %q, want overloaded", body["error"])
	}

	// Unblock the pool so Shutdown doesn't wait on a 200M-step run.
	m.Cancel(first.ID)
	m.Cancel(second.ID)
}

// TestJobBodyCap: a submission over maxJobBody is a 413, not an
// unbounded read.
func TestJobBodyCap(t *testing.T) {
	m, err := newManager(t.TempDir(), 1, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	srv := newTestHTTP(t, m)

	// Syntactically valid JSON, so the decoder keeps reading until the
	// byte cap trips rather than bailing on the first token.
	huge := append([]byte(`{"type":"`), bytes.Repeat([]byte("x"), maxJobBody+1024)...)
	huge = append(huge, []byte(`"}`)...)
	resp, err := http.Post(srv+"/api/v1/jobs", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit = %d, want 413", resp.StatusCode)
	}
}

// TestFaultedSweepMatchesDirectRun: a sweep job with a fault schedule
// and retry policy renders byte-identically to direct traffic.Run calls
// with the same config — the service layer adds nothing and loses
// nothing around the fault plane.
func TestFaultedSweepMatchesDirectRun(t *testing.T) {
	m, err := newManager(t.TempDir(), 2, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	srv := newTestHTTP(t, m)

	spec := testSweepSpec()
	spec.Faults = "lane:0@10-60 edge:3@20-80 lane:5@40-90"
	spec.RetryMaxAttempts = 3
	spec.RetryBackoff = 8
	spec.RetryBackoffCap = 64

	st := decodeStatus(t, postJSON(t, srv+"/api/v1/jobs", JobSpec{Type: "sweep", Sweep: spec}))
	waitStateURL(t, srv, st.ID, stateDone)
	got := fetchURL(t, srv+"/api/v1/jobs/"+st.ID+"/result", http.StatusOK)

	net, err := spec.network()
	if err != nil {
		t.Fatal(err)
	}
	var points []pointResult
	for _, rate := range spec.Rates {
		cfg, err := spec.config(net, rate)
		if err != nil {
			t.Fatal(err)
		}
		res, err := traffic.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		points = append(points, pointResult{Rate: rate, Result: res})
	}
	if want := renderSweepCSV(points); string(got) != want {
		t.Fatalf("faulted sweep CSV diverged from direct runs\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestBadFaultGrammarRejected: an unparseable schedule is a 400 at
// submission, not a worker-side failure.
func TestBadFaultGrammarRejected(t *testing.T) {
	m, err := newManager(t.TempDir(), 1, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	srv := newTestHTTP(t, m)

	spec := testSweepSpec()
	spec.Faults = "lane3@nonsense"
	resp := postJSON(t, srv+"/api/v1/jobs", JobSpec{Type: "sweep", Sweep: spec})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad fault grammar = %d, want 400", resp.StatusCode)
	}
}

// TestChaoticManagerStillCompletes: with the injector mangling every
// checkpoint write, jobs still finish and still render byte-identically
// to direct runs — chaos can cost checkpoints, never correctness.
func TestChaoticManagerStillCompletes(t *testing.T) {
	m, err := newManager(t.TempDir(), 1, 50, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown()
	srv := newTestHTTP(t, m)

	spec := testSweepSpec()
	st := decodeStatus(t, postJSON(t, srv+"/api/v1/jobs", JobSpec{Type: "sweep", Sweep: spec}))
	waitStateURL(t, srv, st.ID, stateDone)
	got := fetchURL(t, srv+"/api/v1/jobs/"+st.ID+"/result", http.StatusOK)

	net, err := spec.network()
	if err != nil {
		t.Fatal(err)
	}
	var points []pointResult
	for _, rate := range spec.Rates {
		cfg, err := spec.config(net, rate)
		if err != nil {
			t.Fatal(err)
		}
		res, err := traffic.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		points = append(points, pointResult{Rate: rate, Result: res})
	}
	if want := renderSweepCSV(points); string(got) != want {
		t.Fatalf("chaotic sweep CSV diverged from direct runs\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// --- helpers bridging to daemon_test.go's style ------------------------------

func newTestHTTP(t *testing.T, m *manager) string {
	t.Helper()
	srv := httptest.NewServer(newAPI(m))
	t.Cleanup(srv.Close)
	return srv.URL
}

func waitStateURL(t *testing.T, base, id string, want jobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/api/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		st := decodeStatus(t, resp)
		switch st.State {
		case want:
			return st
		case stateFailed:
			if want != stateFailed {
				t.Fatalf("job %s failed: %s", id, st.Error)
			}
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobStatus{}
}

func fetchURL(t *testing.T, url string, wantCode int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s = %d, want %d: %s", url, resp.StatusCode, wantCode, buf.String())
	}
	return buf.Bytes()
}
