package main

// In-process daemon tests: the API contract (including the typed 400s
// for engine-rejected workloads), the sweep/experiment job lifecycle,
// and graceful-shutdown resume — all against real managers over real
// state directories, with the HTTP layer exercised through httptest.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wormhole/internal/core"
	"wormhole/internal/traffic"
)

func testSweepSpec() *SweepSpec {
	return &SweepSpec{
		Topology:        "butterfly",
		Size:            8,
		VirtualChannels: 2,
		MessageLength:   4,
		Process:         "bernoulli",
		Rates:           []float64{0.02, 0.05},
		Warmup:          40,
		Measure:         160,
		Drain:           400,
		Window:          50,
		Seed:            17,
	}
}

func startTestServer(t *testing.T, stateDir string, ckptEvery int) (*httptest.Server, *manager) {
	t.Helper()
	m, err := newManager(stateDir, 2, ckptEvery, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newAPI(m))
	t.Cleanup(srv.Close)
	return srv, m
}

func postJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeStatus(t *testing.T, resp *http.Response) JobStatus {
	t.Helper()
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitState(t *testing.T, srv *httptest.Server, id string, want jobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(srv.URL + "/api/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		st := decodeStatus(t, resp)
		switch st.State {
		case want:
			return st
		case stateFailed:
			if want != stateFailed {
				t.Fatalf("job %s failed: %s", id, st.Error)
			}
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobStatus{}
}

func fetch(t *testing.T, url string, wantCode int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s = %d, want %d: %s", url, resp.StatusCode, wantCode, buf.String())
	}
	return buf.Bytes()
}

// TestSubmitValidation pins the 400 contract, including the typed
// engine errors surfaced at submission time.
func TestSubmitValidation(t *testing.T) {
	srv, m := startTestServer(t, t.TempDir(), 0)
	defer m.Shutdown()

	for name, tc := range map[string]struct {
		spec     JobSpec
		wantKind string // engine_error field, "" = don't check
	}{
		"unknown type":       {JobSpec{Type: "nonsense"}, ""},
		"sweep without spec": {JobSpec{Type: "sweep"}, ""},
		"no rates": {JobSpec{Type: "sweep", Sweep: func() *SweepSpec {
			s := testSweepSpec()
			s.Rates = nil
			return s
		}()}, ""},
		"bad topology": {JobSpec{Type: "sweep", Sweep: func() *SweepSpec {
			s := testSweepSpec()
			s.Topology = "hypercube"
			return s
		}()}, ""},
		"bad arbitration": {JobSpec{Type: "sweep", Sweep: func() *SweepSpec {
			s := testSweepSpec()
			s.Arbitration = "fifo"
			return s
		}()}, ""},
		"zero virtual channels": {JobSpec{Type: "sweep", Sweep: func() *SweepSpec {
			s := testSweepSpec()
			s.VirtualChannels = 0
			return s
		}()}, ""},
		"over horizon": {JobSpec{Type: "sweep", Sweep: func() *SweepSpec {
			s := testSweepSpec()
			s.Warmup = 1 << 30
			s.Measure = 1 << 30
			s.Drain = 1 << 30
			return s
		}()}, "over_horizon"},
		"unknown experiment": {JobSpec{Type: "experiment", Experiment: &ExperimentSpec{ID: "T99"}}, ""},
	} {
		resp := postJSON(t, srv.URL+"/api/v1/jobs", tc.spec)
		body := map[string]string{}
		json.NewDecoder(resp.Body).Decode(&body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%v)", name, resp.StatusCode, body)
		}
		if tc.wantKind != "" && body["engine_error"] != tc.wantKind {
			t.Errorf("%s: engine_error %q, want %q", name, body["engine_error"], tc.wantKind)
		}
	}
}

// TestSweepJobMatchesDirectRun: a completed sweep job's CSV must equal
// the rendering of direct traffic.Run results, and its per-point window
// series must be served at the metrics endpoint.
func TestSweepJobMatchesDirectRun(t *testing.T) {
	srv, m := startTestServer(t, t.TempDir(), 0)
	defer m.Shutdown()

	spec := testSweepSpec()
	st := decodeStatus(t, postJSON(t, srv.URL+"/api/v1/jobs", JobSpec{Type: "sweep", Sweep: spec}))
	if st.PointsTotal != 2 {
		t.Fatalf("points_total = %d, want 2", st.PointsTotal)
	}
	// Result before completion is a 409.
	deadline := time.Now().Add(time.Second)
	for {
		resp, err := http.Get(srv.URL + "/api/v1/jobs/" + st.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusConflict {
			break
		}
		if resp.StatusCode == http.StatusOK || time.Now().After(deadline) {
			break // finished too fast to observe the 409; fine
		}
	}
	done := waitState(t, srv, st.ID, stateDone)
	if done.PointsDone != 2 {
		t.Fatalf("points_done = %d, want 2", done.PointsDone)
	}
	got := fetch(t, srv.URL+"/api/v1/jobs/"+st.ID+"/result", http.StatusOK)

	var points []pointResult
	net, err := spec.network()
	if err != nil {
		t.Fatal(err)
	}
	for _, rate := range spec.Rates {
		cfg, err := spec.config(net, rate)
		if err != nil {
			t.Fatal(err)
		}
		res, err := traffic.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		points = append(points, pointResult{Rate: rate, Result: res})
	}
	if want := renderSweepCSV(points); string(got) != want {
		t.Fatalf("sweep CSV diverged from direct runs\nwant:\n%s\ngot:\n%s", want, got)
	}

	// The per-window series was published while the job ran.
	snap := fetch(t, srv.URL+"/api/v1/jobs/"+st.ID+"/metrics", http.StatusOK)
	if !bytes.Contains(snap, []byte("windows")) {
		t.Fatalf("metrics snapshot has no window series: %s", snap)
	}
}

// TestExperimentJobMatchesWormbenchCSV: experiment jobs must render
// exactly what `wormbench -run ID -quick -csv` prints.
func TestExperimentJobMatchesWormbenchCSV(t *testing.T) {
	srv, m := startTestServer(t, t.TempDir(), 0)
	defer m.Shutdown()

	st := decodeStatus(t, postJSON(t, srv.URL+"/api/v1/jobs",
		JobSpec{Type: "experiment", Experiment: &ExperimentSpec{ID: "T12", Seed: 42, Quick: true}}))
	waitState(t, srv, st.ID, stateDone)
	got := fetch(t, srv.URL+"/api/v1/jobs/"+st.ID+"/result", http.StatusOK)

	tables, err := core.Run("T12", core.Config{Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	for _, tab := range tables {
		fmt.Fprintf(&want, "# %s\n", tab.Title())
		if err := tab.WriteCSV(&want); err != nil {
			t.Fatal(err)
		}
		want.WriteString("\n")
	}
	if want.String() != string(got) {
		t.Fatalf("experiment CSV diverged from the CLI rendering\nwant:\n%s\ngot:\n%s", want.String(), got)
	}
}

// TestGracefulShutdownResumes is the SIGTERM round trip in-process: a
// manager is shut down mid-sweep, a second manager over the same state
// directory resumes from the checkpoint, and the final CSV is
// byte-identical to an uninterrupted job's.
func TestGracefulShutdownResumes(t *testing.T) {
	spec := testSweepSpec()
	spec.Measure = 2000 // long enough to catch mid-run
	spec.Drain = 800

	// Oracle: the same job, uninterrupted.
	oracleDir := t.TempDir()
	srvO, mO := startTestServer(t, oracleDir, 0)
	stO := decodeStatus(t, postJSON(t, srvO.URL+"/api/v1/jobs", JobSpec{Type: "sweep", Sweep: spec}))
	waitState(t, srvO, stO.ID, stateDone)
	want := fetch(t, srvO.URL+"/api/v1/jobs/"+stO.ID+"/result", http.StatusOK)
	mO.Shutdown()

	// Victim: shut down while running.
	dir := t.TempDir()
	srv1, m1 := startTestServer(t, dir, 100)
	st := decodeStatus(t, postJSON(t, srv1.URL+"/api/v1/jobs", JobSpec{Type: "sweep", Sweep: spec}))
	waitState(t, srv1, st.ID, stateRunning)
	m1.Shutdown()
	srv1.Close()

	// The interrupted job was re-queued with a checkpoint on disk.
	blob, err := os.ReadFile(filepath.Join(dir, "jobs", st.ID, "job.json"))
	if err != nil {
		t.Fatal(err)
	}
	var persisted JobStatus
	if err := json.Unmarshal(blob, &persisted); err != nil {
		t.Fatal(err)
	}
	if persisted.State != stateQueued {
		t.Fatalf("interrupted job persisted as %q, want queued", persisted.State)
	}

	// Restart over the same state dir: the job resumes and completes.
	srv2, m2 := startTestServer(t, dir, 100)
	defer m2.Shutdown()
	waitState(t, srv2, st.ID, stateDone)
	got := fetch(t, srv2.URL+"/api/v1/jobs/"+st.ID+"/result", http.StatusOK)
	if !bytes.Equal(want, got) {
		t.Fatalf("resumed sweep diverged from uninterrupted oracle\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestCancelJob: canceling a running job reaches a terminal canceled
// state and its result stays unavailable.
func TestCancelJob(t *testing.T) {
	srv, m := startTestServer(t, t.TempDir(), 0)
	defer m.Shutdown()

	spec := testSweepSpec()
	spec.Rates = []float64{0.05}
	spec.Measure = 200_000_000 // effectively unbounded: only cancel ends it
	st := decodeStatus(t, postJSON(t, srv.URL+"/api/v1/jobs", JobSpec{Type: "sweep", Sweep: spec}))
	waitState(t, srv, st.ID, stateRunning)
	resp := postJSON(t, srv.URL+"/api/v1/jobs/"+st.ID+"/cancel", struct{}{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel = %d", resp.StatusCode)
	}
	waitState(t, srv, st.ID, stateCanceled)
	fetch(t, srv.URL+"/api/v1/jobs/"+st.ID+"/result", http.StatusConflict)
}

// TestHealthAndMetricsEndpoints covers the ops surface.
func TestHealthAndMetricsEndpoints(t *testing.T) {
	srv, m := startTestServer(t, t.TempDir(), 0)
	defer m.Shutdown()

	if body := fetch(t, srv.URL+"/healthz", http.StatusOK); !bytes.Contains(body, []byte("true")) {
		t.Fatalf("healthz: %s", body)
	}
	var gauges map[string]any
	if err := json.Unmarshal(fetch(t, srv.URL+"/metrics", http.StatusOK), &gauges); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"jobs_total", "jobs_running", "uptime_sec"} {
		if _, ok := gauges[key]; !ok {
			t.Fatalf("metrics missing %q: %v", key, gauges)
		}
	}
	fetch(t, srv.URL+"/api/v1/jobs/nope", http.StatusNotFound)
}
