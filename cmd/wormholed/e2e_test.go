package main

// End-to-end daemon test against the real binaries: build wormholed and
// wormbench, start the daemon, submit a sweep and a T12-quick
// experiment, kill -9 the process mid-sweep, restart it over the same
// state directory, and require
//
//   - the resumed sweep's CSV to be byte-identical to direct in-process
//     runs of the same configuration, and
//   - the experiment job's CSV to be byte-identical to what
//     `wormbench -run T12 -quick -csv` prints.
//
// This is the acceptance test for the checkpoint/restore stack all the
// way through the process boundary: versioned binary snapshots on disk,
// state-directory recovery, and CLI/daemon rendering parity.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"wormhole/internal/traffic"
)

func buildBinary(t *testing.T, dir, pkg, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// startDaemon launches the daemon binary and waits for its resolved
// address. The returned process is running; callers kill or signal it.
// extraArgs go last, so they can override the defaults (flag repetition
// keeps the final value).
func startDaemon(t *testing.T, bin, stateDir string, extraArgs ...string) (*exec.Cmd, string) {
	t.Helper()
	addrFile := filepath.Join(stateDir, "addr")
	os.Remove(addrFile)
	args := []string{
		"-http", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-state", stateDir,
		"-workers", "1",
		"-checkpoint-interval", "500000",
	}
	args = append(args, extraArgs...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if blob, err := os.ReadFile(addrFile); err == nil && len(blob) > 0 {
			return cmd, "http://" + string(blob)
		}
		time.Sleep(20 * time.Millisecond)
	}
	cmd.Process.Kill() //nolint:errcheck
	t.Fatal("daemon never wrote its address file")
	return nil, ""
}

func e2eGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	return resp.StatusCode, buf.Bytes()
}

func e2eWaitDone(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		code, body := e2eGet(t, base+"/api/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("status %s: %d %s", id, code, body)
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case stateDone:
			return
		case stateFailed, stateCanceled:
			t.Fatalf("job %s reached %s: %s", id, st.State, st.Error)
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("job %s never completed", id)
}

func TestDaemonE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds and drives real binaries")
	}
	tmp := t.TempDir()
	daemonBin := buildBinary(t, tmp, "wormhole/cmd/wormholed", "wormholed")
	benchBin := buildBinary(t, tmp, "wormhole/cmd/wormbench", "wormbench")
	stateDir := filepath.Join(tmp, "state")

	sweep := &SweepSpec{
		Topology:        "butterfly",
		Size:            8,
		VirtualChannels: 2,
		MessageLength:   4,
		Process:         "bernoulli",
		Rates:           []float64{0.05},
		Warmup:          100,
		Measure:         4_000_000, // seconds of wall clock: the kill window
		Drain:           1000,
		Window:          100_000,
		Seed:            17,
	}

	cmd, base := startDaemon(t, daemonBin, stateDir)
	submit := func(spec JobSpec) string {
		blob, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/api/v1/jobs", "application/json", bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d (%+v)", resp.StatusCode, st)
		}
		return st.ID
	}
	sweepID := submit(JobSpec{Type: "sweep", Sweep: sweep})
	expID := submit(JobSpec{Type: "experiment", Experiment: &ExperimentSpec{ID: "T12", Seed: 42, Quick: true}})

	// Wait for the sweep to be mid-run with at least one checkpoint on
	// disk, then kill -9: no graceful path, only the periodic snapshots
	// survive.
	snapPath := filepath.Join(stateDir, "jobs", sweepID, "point-000.snap")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(snapPath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill() //nolint:errcheck
			t.Fatal("sweep never checkpointed; cannot stage the kill")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL
		t.Fatal(err)
	}
	cmd.Wait() //nolint:errcheck -- killed by design

	// Restart over the same state directory: both jobs must complete.
	cmd2, base2 := startDaemon(t, daemonBin, stateDir)
	defer func() {
		cmd2.Process.Kill() //nolint:errcheck
		cmd2.Wait()         //nolint:errcheck
	}()
	e2eWaitDone(t, base2, sweepID)
	e2eWaitDone(t, base2, expID)

	// Sweep CSV vs direct in-process runs of the same configuration.
	code, gotSweep := e2eGet(t, base2+"/api/v1/jobs/"+sweepID+"/result")
	if code != http.StatusOK {
		t.Fatalf("sweep result: %d", code)
	}
	net, err := sweep.network()
	if err != nil {
		t.Fatal(err)
	}
	var points []pointResult
	for _, rate := range sweep.Rates {
		cfg, err := sweep.config(net, rate)
		if err != nil {
			t.Fatal(err)
		}
		res, err := traffic.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		points = append(points, pointResult{Rate: rate, Result: res})
	}
	if want := renderSweepCSV(points); want != string(gotSweep) {
		t.Errorf("killed-and-restored sweep diverged from direct runs\nwant:\n%s\ngot:\n%s", want, gotSweep)
	}

	// Experiment CSV vs the CLI, byte for byte.
	code, gotExp := e2eGet(t, base2+"/api/v1/jobs/"+expID+"/result")
	if code != http.StatusOK {
		t.Fatalf("experiment result: %d", code)
	}
	bench := exec.Command(benchBin, "-run", "T12", "-quick", "-csv")
	var benchOut bytes.Buffer
	bench.Stdout = &benchOut
	bench.Stderr = os.Stderr
	if err := bench.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(benchOut.Bytes(), gotExp) {
		t.Errorf("daemon experiment CSV diverged from wormbench\nwant:\n%s\ngot:\n%s", benchOut.Bytes(), gotExp)
	}

	// The daemon stays healthy after all of it.
	if code, body := e2eGet(t, base2+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz: %d %s", code, body)
	}
}
