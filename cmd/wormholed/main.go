// Command wormholed is the simulation-as-a-service daemon: an HTTP/JSON
// front end over the deterministic simulation stack. Tenants POST
// open-loop sweep or experiment jobs, the daemon fans them over a
// bounded worker pool, streams per-window latency/throughput series
// while they run, and serves the rendered results — byte-identical to
// what the wormbench CLI prints for the same configuration.
//
// Usage:
//
//	wormholed -state DIR [-http :8080] [-workers N]
//	          [-checkpoint-interval STEPS] [-addr-file FILE]
//	          [-max-queued N] [-chaos SEED]
//
// Every job persists under -state and every live simulation checkpoints
// itself every -checkpoint-interval flit steps (vcsim's versioned
// binary snapshot format via traffic.Runner.Snapshot), so the daemon
// survives both graceful restarts and kill -9: on SIGTERM running jobs
// pause at their next step, checkpoint, and re-queue; on startup the
// state directory is scanned and interrupted jobs resume from their
// checkpoints. Resumed runs are byte-identical to uninterrupted ones —
// the CI e2e test kills the daemon mid-run and diffs.
//
// -addr-file writes the resolved listen address (useful with -http :0)
// once the socket is bound, which is how tests rendezvous with the
// daemon. See README.md "Simulation as a service" for the API.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		httpAddr  = flag.String("http", ":8080", "listen address (use :0 with -addr-file for an ephemeral port)")
		stateDir  = flag.String("state", "", "state directory for job specs, results, and checkpoints (required)")
		workers   = flag.Int("workers", 2, "concurrent job workers")
		ckptEvery = flag.Int("checkpoint-interval", 1_000_000, "checkpoint live runs every N flit steps (0 = only on graceful shutdown; a snapshot costs O(messages injected so far), so very small intervals dominate long runs)")
		addrFile  = flag.String("addr-file", "", "write the resolved listen address to this file once bound")
		maxQueued = flag.Int("max-queued", 1024, "admission cap: submissions beyond this many queued jobs get 429 + Retry-After")
		chaosSeed = flag.Uint64("chaos", 0, "testing hook: deterministically injure checkpoint writes (disk-full, torn writes, bit flips) from this seed; 0 = off")
	)
	flag.Parse()
	if *stateDir == "" {
		fmt.Fprintln(os.Stderr, "wormholed: -state is required")
		return 2
	}

	m, err := newManager(*stateDir, *workers, *ckptEvery, *maxQueued, *chaosSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wormholed:", err)
		return 1
	}

	ln, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wormholed:", err)
		return 1
	}
	if *addrFile != "" {
		if err := atomicWrite(*addrFile, []byte(ln.Addr().String())); err != nil {
			fmt.Fprintln(os.Stderr, "wormholed:", err)
			return 1
		}
	}
	// All handlers answer from memory or small files, so tight timeouts
	// cost nothing and a stalled client can't pin a connection.
	srv := &http.Server{
		Handler:           newAPI(m),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "wormholed: serving on http://%s (state %s)\n", ln.Addr(), *stateDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "wormholed: %v: checkpointing and shutting down\n", s)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "wormholed:", err)
		m.Shutdown()
		return 1
	}

	// Stop accepting work, then drain: running jobs pause at their next
	// step poll, checkpoint, and re-queue for the next start.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Shutdown(ctx) //nolint:errcheck -- in-flight requests get a bounded grace period
	m.Shutdown()
	return 0
}
