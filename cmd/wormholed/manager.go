package main

// The job manager: a persistent, resumable queue of simulation jobs
// fanned over a bounded worker pool. Every piece of job state lives
// under one state directory so a daemon restart — graceful or kill -9 —
// reconstructs the queue and resumes interrupted work from checkpoints:
//
//	STATE/jobs/<id>/job.json      job spec + status (atomic writes)
//	STATE/jobs/<id>/point-K.snap  live Runner checkpoint for sweep point K
//	STATE/jobs/<id>/point-K.json  completed sweep point (memoized)
//	STATE/jobs/<id>/ckpt/         core.Checkpoint store for experiment jobs
//	STATE/jobs/<id>/result.csv    final rendered output
//
// Sweep jobs run one open-loop traffic.Runner per offered rate and
// checkpoint it periodically via Runner.Snapshot (and once more on
// graceful shutdown); experiment jobs run the core registry under
// core.Checkpoint job memoization. Either way a resumed job produces
// output byte-identical to an uninterrupted run — the e2e test
// kill -9s the daemon mid-sweep and diffs.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wormhole/internal/core"
	"wormhole/internal/fault"
	"wormhole/internal/stats"
	"wormhole/internal/telemetry"
	"wormhole/internal/traffic"
	"wormhole/internal/vcsim"
)

type jobState string

const (
	stateQueued   jobState = "queued"
	stateRunning  jobState = "running"
	stateDone     jobState = "done"
	stateFailed   jobState = "failed"
	stateCanceled jobState = "canceled"
)

// Pause sentinels returned through Config.OnStep / recovered from
// core.ErrInterrupted. They are daemon control flow, never job failures.
var (
	errShutdown = errors.New("wormholed: shutting down")
	errCanceled = errors.New("wormholed: job canceled")
	// errQueueFull rejects submissions over the -max-queued admission
	// cap; the API layer renders it as 429 with Retry-After.
	errQueueFull = errors.New("wormholed: job queue is full")
)

// SweepSpec declares an open-loop rate sweep: one traffic run per entry
// of Rates on a fixed network and traffic configuration.
type SweepSpec struct {
	Topology string `json:"topology"`       // butterfly | mesh | torus
	Size     int    `json:"size,omitempty"` // butterfly input count
	Dims     []int  `json:"dims,omitempty"` // mesh / torus extents

	VirtualChannels     int    `json:"virtual_channels"`
	LaneDepth           int    `json:"lane_depth,omitempty"`
	SharedPool          bool   `json:"shared_pool,omitempty"`
	MessageLength       int    `json:"message_length"`
	Arbitration         string `json:"arbitration,omitempty"` // byid | age | random
	RestrictedBandwidth bool   `json:"restricted_bandwidth,omitempty"`

	Process string    `json:"process,omitempty"` // bernoulli | poisson | onoff
	Rates   []float64 `json:"rates"`
	OnMean  float64   `json:"on_mean,omitempty"`
	OffMean float64   `json:"off_mean,omitempty"`

	Pattern         string  `json:"pattern,omitempty"` // uniform | transpose | bitreverse | hotspot
	HotspotCount    int     `json:"hotspot_count,omitempty"`
	HotspotFraction float64 `json:"hotspot_fraction,omitempty"`

	Warmup     int    `json:"warmup,omitempty"`
	Measure    int    `json:"measure"`
	Drain      int    `json:"drain,omitempty"`
	Window     int    `json:"window,omitempty"`
	MaxBacklog int    `json:"max_backlog,omitempty"`
	Seed       uint64 `json:"seed,omitempty"`
	Shards     int    `json:"shards,omitempty"`

	// Faults is a fault schedule in the internal/fault grammar
	// ("lane:EDGE@START-END edge:EDGE@START-END ...") applied to every
	// sweep point; the retry fields map onto vcsim.RetryPolicy for
	// messages whose injection edge is dead.
	Faults           string `json:"faults,omitempty"`
	RetryMaxAttempts int    `json:"retry_max_attempts,omitempty"`
	RetryBackoff     int    `json:"retry_backoff,omitempty"`
	RetryBackoffCap  int    `json:"retry_backoff_cap,omitempty"`
}

func (s *SweepSpec) network() (*traffic.Network, error) {
	switch s.Topology {
	case "butterfly":
		if s.Size < 2 {
			return nil, fmt.Errorf("butterfly size %d < 2", s.Size)
		}
		return traffic.NewButterflyNet(s.Size), nil
	case "mesh", "torus":
		if len(s.Dims) == 0 {
			return nil, fmt.Errorf("%s needs dims", s.Topology)
		}
		for _, d := range s.Dims {
			if d < 2 {
				return nil, fmt.Errorf("%s dim %d < 2", s.Topology, d)
			}
		}
		if s.Topology == "mesh" {
			return traffic.NewMeshNet(s.Dims...), nil
		}
		return traffic.NewTorusNet(s.Dims...), nil
	default:
		return nil, fmt.Errorf("unknown topology %q (want butterfly, mesh, or torus)", s.Topology)
	}
}

func parseArbitration(s string) (vcsim.Policy, error) {
	switch s {
	case "", "byid":
		return vcsim.ArbByID, nil
	case "age":
		return vcsim.ArbAge, nil
	case "random":
		return vcsim.ArbRandom, nil
	}
	return 0, fmt.Errorf("unknown arbitration %q (want byid, age, or random)", s)
}

func parseProcess(s string) (traffic.Process, error) {
	switch s {
	case "", "bernoulli":
		return traffic.Bernoulli, nil
	case "poisson":
		return traffic.Poisson, nil
	case "onoff":
		return traffic.OnOff, nil
	}
	return 0, fmt.Errorf("unknown process %q (want bernoulli, poisson, or onoff)", s)
}

func parsePattern(s string) (traffic.Pattern, error) {
	switch s {
	case "", "uniform":
		return traffic.Uniform, nil
	case "transpose":
		return traffic.Transpose, nil
	case "bitreverse":
		return traffic.BitReverse, nil
	case "hotspot":
		return traffic.Hotspot, nil
	}
	return 0, fmt.Errorf("unknown pattern %q (want uniform, transpose, bitreverse, or hotspot)", s)
}

// config builds the traffic.Config for one sweep point. net is shared
// across points (it is read-only); rate varies per point.
func (s *SweepSpec) config(net *traffic.Network, rate float64) (traffic.Config, error) {
	arb, err := parseArbitration(s.Arbitration)
	if err != nil {
		return traffic.Config{}, err
	}
	proc, err := parseProcess(s.Process)
	if err != nil {
		return traffic.Config{}, err
	}
	pat, err := parsePattern(s.Pattern)
	if err != nil {
		return traffic.Config{}, err
	}
	var sched fault.Schedule
	if s.Faults != "" {
		if sched, err = fault.Parse(s.Faults); err != nil {
			return traffic.Config{}, err
		}
	}
	return traffic.Config{
		Net:                 net,
		VirtualChannels:     s.VirtualChannels,
		LaneDepth:           s.LaneDepth,
		SharedPool:          s.SharedPool,
		MessageLength:       s.MessageLength,
		Arbitration:         arb,
		RestrictedBandwidth: s.RestrictedBandwidth,
		Process:             proc,
		Rate:                rate,
		OnMean:              s.OnMean,
		OffMean:             s.OffMean,
		Pattern:             pat,
		HotspotCount:        s.HotspotCount,
		HotspotFraction:     s.HotspotFraction,
		Warmup:              s.Warmup,
		Measure:             s.Measure,
		Drain:               s.Drain,
		Window:              s.Window,
		MaxBacklog:          s.MaxBacklog,
		Seed:                s.Seed,
		Shards:              s.Shards,
		Faults:              sched,
		Retry: vcsim.RetryPolicy{
			MaxAttempts: s.RetryMaxAttempts,
			Backoff:     s.RetryBackoff,
			BackoffCap:  s.RetryBackoffCap,
		},
	}, nil
}

// validate builds and immediately retires a Runner for the first rate,
// so a bad submission is rejected at POST time with the engine's typed
// error (vcsim.ErrBadConfig / ErrBadMessage / ErrOverHorizon or the
// traffic validation) instead of failing later in a worker.
func (s *SweepSpec) validate() error {
	if len(s.Rates) == 0 {
		return errors.New("sweep has no rates")
	}
	net, err := s.network()
	if err != nil {
		return err
	}
	cfg, err := s.config(net, s.Rates[0])
	if err != nil {
		return err
	}
	r, err := traffic.NewRunner(cfg)
	if err != nil {
		return err
	}
	r.Close()
	for _, rate := range s.Rates[1:] {
		if rate <= 0 || rate > cfg.MaxRate() {
			return fmt.Errorf("rate %g outside (0, %g]", rate, cfg.MaxRate())
		}
	}
	return nil
}

// ExperimentSpec names a core registry experiment to run.
type ExperimentSpec struct {
	ID     string `json:"id"`
	Seed   uint64 `json:"seed,omitempty"`
	Quick  bool   `json:"quick,omitempty"`
	Trials int    `json:"trials,omitempty"`
	Scale  int    `json:"scale,omitempty"`
	Shards int    `json:"shards,omitempty"`
}

func (e *ExperimentSpec) validate() error {
	for _, known := range core.Experiments() {
		if known.ID == e.ID {
			return nil
		}
	}
	return fmt.Errorf("unknown experiment %q", e.ID)
}

// JobSpec is the body of POST /api/v1/jobs.
type JobSpec struct {
	Type       string          `json:"type"` // sweep | experiment
	Sweep      *SweepSpec      `json:"sweep,omitempty"`
	Experiment *ExperimentSpec `json:"experiment,omitempty"`
}

func (s *JobSpec) validate() error {
	switch s.Type {
	case "sweep":
		if s.Sweep == nil {
			return errors.New(`"sweep" spec required for type "sweep"`)
		}
		return s.Sweep.validate()
	case "experiment":
		if s.Experiment == nil {
			return errors.New(`"experiment" spec required for type "experiment"`)
		}
		return s.Experiment.validate()
	default:
		return fmt.Errorf("unknown job type %q (want sweep or experiment)", s.Type)
	}
}

// JobStatus is the persisted and served view of one job.
type JobStatus struct {
	ID          string   `json:"id"`
	Type        string   `json:"type"`
	State       jobState `json:"state"`
	Error       string   `json:"error,omitempty"`
	PointsDone  int      `json:"points_done,omitempty"`
	PointsTotal int      `json:"points_total,omitempty"`
	// ShardNote reports — typed, per satellite contract — why a job that
	// asked for Shards ≥ 2 never actually stepped sharded.
	ShardNote   string  `json:"shard_note,omitempty"`
	CreatedUnix int64   `json:"created_unix"`
	Spec        JobSpec `json:"spec"`
}

// pointResult memoizes one completed sweep point.
type pointResult struct {
	Rate           float64                 `json:"rate"`
	Result         traffic.Result          `json:"result"`
	Windows        []telemetry.WindowStats `json:"windows,omitempty"`
	ShardedSteps   int64                   `json:"sharded_steps,omitempty"`
	FallbackReason string                  `json:"fallback_reason,omitempty"`
}

type job struct {
	mu     sync.Mutex
	status JobStatus
	pub    *telemetry.Publisher // per-window series feed for this job
	cancel atomic.Bool
}

func (j *job) snapshotStatus() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// manager owns the state directory and the worker pool.
type manager struct {
	dir       string // STATE/jobs
	ckptEvery int    // checkpoint a live sweep runner every N steps
	queue     chan *job
	stop      chan struct{}  // closed on graceful shutdown
	chaos     *chaosInjector // nil unless -chaos armed the write path

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string
	nextID int

	wg    sync.WaitGroup
	start time.Time
}

func newManager(stateDir string, workers, ckptEvery, maxQueued int, chaosSeed uint64) (*manager, error) {
	if workers < 1 {
		workers = 1
	}
	if maxQueued < 1 {
		maxQueued = 1024
	}
	m := &manager{
		dir:       filepath.Join(stateDir, "jobs"),
		ckptEvery: ckptEvery,
		stop:      make(chan struct{}),
		jobs:      map[string]*job{},
		start:     time.Now(),
	}
	if chaosSeed != 0 {
		m.chaos = newChaosInjector(chaosSeed)
	}
	if err := os.MkdirAll(m.dir, 0o755); err != nil {
		return nil, err
	}
	requeue, err := m.recover()
	if err != nil {
		return nil, err
	}
	// Recovered jobs must all fit regardless of the admission cap: the
	// cap bounds new submissions, not what a restart owes its tenants.
	if maxQueued < len(requeue) {
		maxQueued = len(requeue)
	}
	m.queue = make(chan *job, maxQueued)
	for _, j := range requeue {
		m.queue <- j
	}
	for w := 0; w < workers; w++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// recover scans the state directory and reloads every persisted job.
// Jobs that were queued or running when the previous process died are
// returned for re-queueing; their checkpoints make the re-run a resume.
func (m *manager) recover() ([]*job, error) {
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var requeue []*job
	for _, name := range names {
		blob, err := os.ReadFile(filepath.Join(m.dir, name, "job.json"))
		if err != nil {
			continue // half-created dir: ignore
		}
		var st JobStatus
		if json.Unmarshal(blob, &st) != nil || st.ID != name {
			continue
		}
		j := &job{status: st, pub: &telemetry.Publisher{}}
		m.jobs[st.ID] = j
		m.order = append(m.order, st.ID)
		if n, err := strconv.Atoi(strings.TrimPrefix(st.ID, "j")); err == nil && n >= m.nextID {
			m.nextID = n + 1
		}
		if st.State == stateQueued || st.State == stateRunning {
			m.setState(j, stateQueued, "")
			requeue = append(requeue, j)
		}
	}
	return requeue, nil
}

// Submit validates a spec, persists the new job, and queues it. A full
// queue rejects the submission up front (admission control, not
// backpressure: nothing is persisted for a rejected job).
func (m *manager) Submit(spec JobSpec) (JobStatus, error) {
	if err := spec.validate(); err != nil {
		return JobStatus{}, err
	}
	if len(m.queue) >= cap(m.queue) {
		return JobStatus{}, errQueueFull
	}
	m.mu.Lock()
	id := fmt.Sprintf("j%06d", m.nextID)
	m.nextID++
	j := &job{
		status: JobStatus{
			ID:          id,
			Type:        spec.Type,
			State:       stateQueued,
			CreatedUnix: time.Now().Unix(),
			Spec:        spec,
		},
		pub: &telemetry.Publisher{},
	}
	if spec.Type == "sweep" {
		j.status.PointsTotal = len(spec.Sweep.Rates)
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.mu.Unlock()

	if err := os.MkdirAll(m.jobDir(id), 0o755); err != nil {
		return JobStatus{}, err
	}
	m.persist(j)
	select {
	case m.queue <- j:
	case <-m.stop:
		return JobStatus{}, errShutdown
	}
	return j.snapshotStatus(), nil
}

func (m *manager) Get(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List returns job statuses in submission order.
func (m *manager) List() []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobStatus, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id].snapshotStatus())
	}
	return out
}

// Cancel flags a job; a queued job is canceled at pickup, a running one
// at its next OnStep / Interrupt poll.
func (m *manager) Cancel(id string) bool {
	j, ok := m.Get(id)
	if !ok {
		return false
	}
	j.cancel.Store(true)
	return true
}

// Shutdown begins a graceful stop: running jobs pause at their next
// step poll, checkpoint, and go back to queued; workers then exit.
// Blocks until the pool is drained.
func (m *manager) Shutdown() {
	close(m.stop)
	m.wg.Wait()
}

func (m *manager) jobDir(id string) string { return filepath.Join(m.dir, id) }

func (m *manager) setState(j *job, s jobState, errMsg string) {
	j.mu.Lock()
	j.status.State = s
	j.status.Error = errMsg
	j.mu.Unlock()
	m.persist(j)
}

// persist atomically rewrites the job's job.json.
func (m *manager) persist(j *job) {
	st := j.snapshotStatus()
	blob, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return
	}
	if err := atomicWrite(filepath.Join(m.jobDir(st.ID), "job.json"), blob); err != nil {
		fmt.Fprintln(os.Stderr, "wormholed: persist:", err)
	}
}

func atomicWrite(path string, blob []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

func (m *manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.stop:
			return
		case j := <-m.queue:
			m.runJob(j)
		}
	}
}

func (m *manager) runJob(j *job) {
	if j.cancel.Load() {
		m.setState(j, stateCanceled, "")
		return
	}
	m.setState(j, stateRunning, "")
	var err error
	switch j.status.Spec.Type {
	case "sweep":
		err = m.runSweep(j)
	case "experiment":
		err = m.runExperiment(j)
	default:
		err = fmt.Errorf("unknown job type %q", j.status.Spec.Type)
	}
	switch {
	case err == nil:
		m.setState(j, stateDone, "")
	case errors.Is(err, errShutdown):
		// Checkpointed; a restart re-queues and resumes.
		m.setState(j, stateQueued, "")
	case errors.Is(err, errCanceled):
		m.setState(j, stateCanceled, "")
	default:
		m.setState(j, stateFailed, err.Error())
	}
}

// --- sweep jobs --------------------------------------------------------------

func (m *manager) runSweep(j *job) error {
	st := j.snapshotStatus()
	spec := st.Spec.Sweep
	net, err := spec.network()
	if err != nil {
		return err
	}
	results := make([]pointResult, 0, len(spec.Rates))
	for k, rate := range spec.Rates {
		pr, ok := m.loadPoint(st.ID, k)
		if !ok {
			pr, err = m.runPoint(j, net, spec, k, rate)
			if err != nil {
				return err
			}
			m.savePoint(st.ID, k, pr)
			os.Remove(m.pointSnapPath(st.ID, k))
		}
		results = append(results, pr)
		j.mu.Lock()
		j.status.PointsDone = k + 1
		if note := shardNote(spec.Shards, pr); note != "" && j.status.ShardNote == "" {
			j.status.ShardNote = note
		}
		j.mu.Unlock()
		m.persist(j)
	}
	return atomicWrite(filepath.Join(m.jobDir(st.ID), "result.csv"), []byte(renderSweepCSV(results)))
}

// shardNote is the typed silent-fallback report: the tenant asked for a
// parallel stepper and no step ever ran on it.
func shardNote(shards int, pr pointResult) string {
	if shards < 2 || pr.ShardedSteps > 0 {
		return ""
	}
	if pr.FallbackReason != "" {
		return fmt.Sprintf("shards=%d requested but every step fell back to the sequential stepper: %s", shards, pr.FallbackReason)
	}
	return fmt.Sprintf("shards=%d requested but no step ran sharded: active backlog stayed below the per-shard cutoff", shards)
}

// runPoint runs (or resumes) one sweep point. The runner checkpoints
// itself every ckptEvery steps; on shutdown/cancel the pause error
// surfaces through Run/Resume with the runner state intact, and one
// final checkpoint is taken before handing the point back to the queue.
func (m *manager) runPoint(j *job, net *traffic.Network, spec *SweepSpec, k int, rate float64) (pointResult, error) {
	cfg, err := spec.config(net, rate)
	if err != nil {
		return pointResult{}, err
	}
	if cfg.Window > 0 {
		cfg.Metrics = telemetry.NewMetrics()
		cfg.Publish = j.pub
	}
	snapPath := m.pointSnapPath(j.snapshotStatus().ID, k)

	var r *traffic.Runner
	cfg.OnStep = func(step int) error {
		if j.cancel.Load() {
			return errCanceled
		}
		select {
		case <-m.stop:
			return errShutdown
		default:
		}
		if m.ckptEvery > 0 && step > 0 && step%m.ckptEvery == 0 {
			if err := m.checkpointRunner(r, snapPath); err != nil {
				fmt.Fprintln(os.Stderr, "wormholed: checkpoint:", err)
			}
		}
		return nil
	}

	resume := false
	if raw, err := os.ReadFile(snapPath); err == nil {
		// The integrity frame catches torn writes, truncations, and bit
		// flips before the runner codec sees the bytes; either failure
		// falls back to a fresh run rather than resuming corrupt state.
		blob, err := openCheckpoint(raw)
		if err == nil {
			r, err = traffic.RestoreRunner(cfg, bytes.NewReader(blob))
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "wormholed: restore:", err)
			os.Remove(snapPath)
			r = nil
		} else {
			resume = true
		}
	}
	if r == nil {
		if r, err = traffic.NewRunner(cfg); err != nil {
			return pointResult{}, err
		}
	}
	defer r.Close()

	var res traffic.Result
	if resume {
		res, err = r.Resume()
	} else {
		res, err = r.Run()
	}
	if errors.Is(err, errShutdown) || errors.Is(err, errCanceled) {
		// Paused with state intact: take the final checkpoint now.
		if cerr := m.checkpointRunner(r, snapPath); cerr != nil {
			fmt.Fprintln(os.Stderr, "wormholed: checkpoint:", cerr)
		}
		return pointResult{}, err
	}
	if err != nil {
		return pointResult{}, err
	}
	return pointResult{
		Rate:           rate,
		Result:         res,
		Windows:        append([]telemetry.WindowStats(nil), r.Windows()...),
		ShardedSteps:   r.ShardedSteps(),
		FallbackReason: r.ShardFallbackReason(),
	}, nil
}

// checkpointRunner snapshots a live runner to path, atomically, inside
// the CRC integrity frame. With -chaos armed, the write may be failed,
// torn, flipped, or dropped — the restore path must absorb all of it.
func (m *manager) checkpointRunner(r *traffic.Runner, path string) error {
	var buf bytes.Buffer
	if err := r.Snapshot(&buf); err != nil {
		return err
	}
	blob := sealCheckpoint(buf.Bytes())
	if m.chaos != nil {
		var err error
		if blob, err = m.chaos.mangleWrite(path, blob); err != nil {
			return err
		}
		if blob == nil {
			return nil // write silently lost
		}
	}
	return atomicWrite(path, blob)
}

func (m *manager) pointSnapPath(id string, k int) string {
	return filepath.Join(m.jobDir(id), fmt.Sprintf("point-%03d.snap", k))
}

func (m *manager) pointPath(id string, k int) string {
	return filepath.Join(m.jobDir(id), fmt.Sprintf("point-%03d.json", k))
}

func (m *manager) loadPoint(id string, k int) (pointResult, bool) {
	blob, err := os.ReadFile(m.pointPath(id, k))
	if err != nil {
		return pointResult{}, false
	}
	var pr pointResult
	if json.Unmarshal(blob, &pr) != nil {
		return pointResult{}, false
	}
	return pr, true
}

func (m *manager) savePoint(id string, k int, pr pointResult) {
	blob, err := json.Marshal(pr)
	if err != nil {
		return
	}
	if err := atomicWrite(m.pointPath(id, k), blob); err != nil {
		fmt.Fprintln(os.Stderr, "wormholed: point save:", err)
	}
}

// renderSweepCSV renders the sweep's final output. Only schedule-
// determined fields appear, so a resumed sweep renders byte-identically
// to an uninterrupted one.
func renderSweepCSV(points []pointResult) string {
	var b strings.Builder
	b.WriteString("rate,offered,accepted,mean_lat,p50,p95,p99,max_lat,steps,backlog,aborted,saturated,early_stop,truncated,deadlocked,fault_deadlocked\n")
	for _, p := range points {
		r := p.Result
		fmt.Fprintf(&b, "%s,%s,%s,%s,%s,%s,%s,%d,%d,%d,%d,%t,%t,%t,%t,%t\n",
			g(p.Rate), g(r.Offered), g(r.Accepted), g(r.MeanLatency),
			g(r.P50), g(r.P95), g(r.P99), r.MaxLatency,
			r.Steps, r.Backlog, r.Aborted, r.Saturated, r.EarlyStop, r.Truncated,
			r.Deadlocked, r.FaultDeadlocked)
	}
	return b.String()
}

func g(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// --- experiment jobs ---------------------------------------------------------

// runExperiment runs a core registry experiment under checkpoint
// memoization and renders its tables exactly as `wormbench -csv` does,
// so daemon output byte-diffs cleanly against the CLI.
func (m *manager) runExperiment(j *job) (err error) {
	st := j.snapshotStatus()
	spec := st.Spec.Experiment
	cfg := core.Config{
		Seed:       spec.Seed,
		Quick:      spec.Quick,
		Trials:     spec.Trials,
		Scale:      spec.Scale,
		Shards:     spec.Shards,
		Checkpoint: &core.Checkpoint{Store: core.DirStore{Dir: filepath.Join(m.jobDir(st.ID), "ckpt")}},
		Interrupt: func() bool {
			if j.cancel.Load() {
				return true
			}
			select {
			case <-m.stop:
				return true
			default:
				return false
			}
		},
	}
	var tables []*stats.Table
	func() {
		defer func() {
			if r := recover(); r != nil {
				if e, ok := r.(error); ok && errors.Is(e, core.ErrInterrupted) {
					if j.cancel.Load() {
						err = errCanceled
					} else {
						err = errShutdown
					}
					return
				}
				panic(r)
			}
		}()
		tables, err = core.Run(spec.ID, cfg)
	}()
	if err != nil {
		return err
	}
	var b strings.Builder
	for _, t := range tables {
		fmt.Fprintf(&b, "# %s\n", t.Title())
		if err := t.WriteCSV(&b); err != nil {
			return err
		}
		b.WriteString("\n")
	}
	return atomicWrite(filepath.Join(m.jobDir(st.ID), "result.csv"), []byte(b.String()))
}

// ResultPath returns the final output path for a done job.
func (m *manager) ResultPath(id string) string {
	return filepath.Join(m.jobDir(id), "result.csv")
}
