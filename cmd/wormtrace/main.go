// Command wormtrace renders flit-level space-time diagrams for small
// wormhole scenarios — the fastest way to see blocking, virtual-channel
// sharing, drop-on-delay, and deadlock with your own eyes.
//
// Usage:
//
//	wormtrace -scenario line -msgs 3 -span 5 -l 4 -b 1
//	wormtrace -scenario line -msgs 3 -span 5 -l 4 -b 2
//	wormtrace -scenario line -msgs 2 -b 1 -drop
//	wormtrace -scenario ring -msgs 2 -b 1          # deadlock, frozen frame
//	wormtrace -scenario ring -msgs 2 -b 2          # resolved by a 2nd VC
//	wormtrace -scenario butterfly -msgs 6 -b 1
//
// -format selects the output: "ascii" (default) draws the in-terminal
// space-time diagram; "chrome" emits Chrome trace-event JSON from the
// telemetry event stream — open it in Perfetto (ui.perfetto.dev) or
// chrome://tracing. The ASCII reconstruction assumes rigid worms and
// refuses deep-engine configs (-d > 1 or -shared); the chrome stream
// records real events and handles both engines.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"wormhole/internal/deadlock"
	"wormhole/internal/graph"
	"wormhole/internal/message"
	"wormhole/internal/rng"
	"wormhole/internal/telemetry"
	"wormhole/internal/topology"
	"wormhole/internal/trace"
	"wormhole/internal/vcsim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, writes output to
// stdout/stderr, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wormtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scenario = fs.String("scenario", "line", "line|ring|butterfly")
		msgs     = fs.Int("msgs", 2, "number of worms")
		span     = fs.Int("span", 5, "path length (line scenario)")
		l        = fs.Int("l", 4, "flits per worm")
		b        = fs.Int("b", 1, "virtual channels")
		drop     = fs.Bool("drop", false, "drop-on-delay mode")
		n        = fs.Int("n", 8, "butterfly inputs / ring nodes")
		seed     = fs.Uint64("seed", 7, "random seed")
		format   = fs.String("format", "ascii", "ascii|chrome (chrome = Perfetto trace-event JSON)")
		d        = fs.Int("d", 1, "lane depth (d > 1 selects the deep engine)")
		shared   = fs.Bool("shared", false, "shared per-edge flit pool (deep engine)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0 // match flag.ExitOnError: -h prints usage and succeeds
		}
		return 2
	}

	var set *message.Set
	switch *scenario {
	case "line":
		g := topology.NewLinearArray(*span + 1)
		set = message.NewSet(g)
		route := message.ShortestPathRouter(g)
		for i := 0; i < *msgs; i++ {
			set.Add(0, graph.NodeID(*span), *l, route(0, graph.NodeID(*span)))
		}
	case "ring":
		r := deadlock.NewRing(*n, 1)
		starts := make([]int, *msgs)
		for i := range starts {
			starts[i] = i * *n / *msgs
		}
		set = r.SparseWorkload(starts, *n-1, *l)
	case "butterfly":
		bf := topology.NewButterfly(*n)
		set = message.NewSet(bf.G)
		r := rng.New(*seed)
		for i := 0; i < *msgs; i++ {
			src, dst := r.Intn(*n), r.Intn(*n)
			set.Add(bf.Input(src), bf.Output(dst), *l, bf.Route(src, dst))
		}
	default:
		fmt.Fprintf(stderr, "wormtrace: unknown scenario %q\n", *scenario)
		return 2
	}

	cfg := vcsim.Config{
		VirtualChannels: *b,
		LaneDepth:       *d,
		SharedPool:      *shared,
		DropOnDelay:     *drop,
	}
	switch *format {
	case "ascii":
		rec := trace.NewRecorder(set)
		if err := rec.Observe(&cfg); err != nil {
			fmt.Fprintf(stderr, "wormtrace: %v\n", err)
			return 2
		}
		res := vcsim.Run(set, nil, cfg)
		fmt.Fprintf(stdout, "scenario=%s msgs=%d B=%d L=%d: steps=%d delivered=%d dropped=%d stalls=%d deadlocked=%v\n\n",
			*scenario, set.Len(), *b, *l, res.Steps, res.Delivered, res.Dropped, res.TotalStalls, res.Deadlocked)
		fmt.Fprint(stdout, rec.Render())
	case "chrome":
		// Size the ring for the whole run: every flit move is one advance
		// event, so Σ(D+L) events bounds advances; 4× covers the
		// park/wake/credit/inject/deliver envelope on these small scenarios.
		capacity := 1024
		for i := 0; i < set.Len(); i++ {
			m := set.Get(message.ID(i))
			capacity += 4 * (len(m.Path) + m.Length)
		}
		tr := telemetry.NewTrace(capacity)
		cfg.Trace = tr
		vcsim.Run(set, nil, cfg)
		if err := telemetry.WriteChrome(stdout, tr.Events()); err != nil {
			fmt.Fprintf(stderr, "wormtrace: %v\n", err)
			return 1
		}
	default:
		fmt.Fprintf(stderr, "wormtrace: unknown format %q (want ascii or chrome)\n", *format)
		return 2
	}
	return 0
}
