package main

import (
	"bytes"
	"strings"
	"testing"
)

// Golden-output smoke tests: every scenario is fully deterministic, so
// the rendered space-time diagram is pinned exactly where stable and by
// key lines elsewhere.

func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), code
}

func TestLineScenarioGolden(t *testing.T) {
	out, _, code := runCLI(t, "-scenario", "line", "-msgs", "2", "-span", "3", "-l", "2", "-b", "1")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	const want = `scenario=line msgs=2 B=1 L=2: steps=7 delivered=2 dropped=0 stalls=3 deadlocked=false

     time 0..7 (one column per flit step)
0>1  .aa.bb..
1>2  ..aa.bb.
2>3  ........
worms: a=0(delivered@4), b=1(delivered@7)
`
	if out != want {
		t.Errorf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", out, want)
	}
}

func TestRingDeadlockScenario(t *testing.T) {
	out, _, code := runCLI(t, "-scenario", "ring", "-msgs", "2", "-b", "1", "-n", "6")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out, "deadlocked=true") {
		t.Errorf("B=1 ring should deadlock; output:\n%s", out)
	}
	out, _, code = runCLI(t, "-scenario", "ring", "-msgs", "2", "-b", "2", "-n", "6")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out, "deadlocked=false") || !strings.Contains(out, "delivered=2") {
		t.Errorf("B=2 ring should deliver both worms; output:\n%s", out)
	}
}

func TestButterflyScenarioSmoke(t *testing.T) {
	out, _, code := runCLI(t, "-scenario", "butterfly", "-msgs", "4", "-n", "8", "-seed", "7")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out, "scenario=butterfly msgs=4") || !strings.Contains(out, "worms:") {
		t.Errorf("missing summary or trace body:\n%s", out)
	}
}

func TestUnknownScenarioFails(t *testing.T) {
	_, stderr, code := runCLI(t, "-scenario", "bogus")
	if code != 2 || !strings.Contains(stderr, "unknown scenario") {
		t.Errorf("code=%d stderr=%q, want exit 2 with unknown-scenario error", code, stderr)
	}
}

func TestHelpExitsZero(t *testing.T) {
	_, stderr, code := runCLI(t, "-h")
	if code != 0 || !strings.Contains(stderr, "Usage") {
		t.Errorf("-h: code=%d stderr=%q, want exit 0 with usage text", code, stderr)
	}
}
