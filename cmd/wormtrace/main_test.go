package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// Golden-output smoke tests: every scenario is fully deterministic, so
// the rendered space-time diagram is pinned exactly where stable and by
// key lines elsewhere.

func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), code
}

func TestLineScenarioGolden(t *testing.T) {
	out, _, code := runCLI(t, "-scenario", "line", "-msgs", "2", "-span", "3", "-l", "2", "-b", "1")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	const want = `scenario=line msgs=2 B=1 L=2: steps=7 delivered=2 dropped=0 stalls=3 deadlocked=false

     time 0..7 (one column per flit step)
0>1  .aa.bb..
1>2  ..aa.bb.
2>3  ........
worms: a=0(delivered@4), b=1(delivered@7)
`
	if out != want {
		t.Errorf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", out, want)
	}
}

func TestRingDeadlockScenario(t *testing.T) {
	out, _, code := runCLI(t, "-scenario", "ring", "-msgs", "2", "-b", "1", "-n", "6")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out, "deadlocked=true") {
		t.Errorf("B=1 ring should deadlock; output:\n%s", out)
	}
	out, _, code = runCLI(t, "-scenario", "ring", "-msgs", "2", "-b", "2", "-n", "6")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out, "deadlocked=false") || !strings.Contains(out, "delivered=2") {
		t.Errorf("B=2 ring should deliver both worms; output:\n%s", out)
	}
}

func TestButterflyScenarioSmoke(t *testing.T) {
	out, _, code := runCLI(t, "-scenario", "butterfly", "-msgs", "4", "-n", "8", "-seed", "7")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out, "scenario=butterfly msgs=4") || !strings.Contains(out, "worms:") {
		t.Errorf("missing summary or trace body:\n%s", out)
	}
}

func TestUnknownScenarioFails(t *testing.T) {
	_, stderr, code := runCLI(t, "-scenario", "bogus")
	if code != 2 || !strings.Contains(stderr, "unknown scenario") {
		t.Errorf("code=%d stderr=%q, want exit 2 with unknown-scenario error", code, stderr)
	}
}

func TestHelpExitsZero(t *testing.T) {
	_, stderr, code := runCLI(t, "-h")
	if code != 0 || !strings.Contains(stderr, "Usage") {
		t.Errorf("-h: code=%d stderr=%q, want exit 0 with usage text", code, stderr)
	}
}

func TestChromeFormatGolden(t *testing.T) {
	out, _, code := runCLI(t, "-scenario", "line", "-msgs", "1", "-span", "2", "-l", "2", "-b", "1", "-format", "chrome")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
			Ts   int    `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev.Ph]++
	}
	// One worm: one B (inject) closed by one E (deliver), plus metadata
	// records and advance/credit instants.
	if phases["B"] != 1 || phases["E"] != 1 {
		t.Errorf("want exactly one B/E slice pair, got phases %v", phases)
	}
	if phases["M"] == 0 || phases["i"] == 0 {
		t.Errorf("missing metadata or instant events: %v", phases)
	}
}

func TestChromeFormatHandlesDeepEngine(t *testing.T) {
	out, _, code := runCLI(t, "-scenario", "line", "-msgs", "3", "-span", "4", "-l", "4", "-b", "1", "-d", "3", "-format", "chrome")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !json.Valid([]byte(out)) || !strings.Contains(out, `"ph":"B"`) {
		t.Errorf("deep-engine chrome trace invalid or empty:\n%.300s", out)
	}
}

func TestASCIIRejectsDeepEngine(t *testing.T) {
	for _, extra := range [][]string{{"-d", "2"}, {"-shared"}} {
		args := append([]string{"-scenario", "line", "-msgs", "2"}, extra...)
		_, stderr, code := runCLI(t, args...)
		if code != 2 || !strings.Contains(stderr, "deep-engine") {
			t.Errorf("%v: code=%d stderr=%q, want exit 2 with deep-engine rejection", extra, code, stderr)
		}
	}
}

func TestUnknownFormatFails(t *testing.T) {
	_, stderr, code := runCLI(t, "-format", "bogus")
	if code != 2 || !strings.Contains(stderr, "unknown format") {
		t.Errorf("code=%d stderr=%q, want exit 2 with unknown-format error", code, stderr)
	}
}
