// Command wormvet is the repo's custom static-analysis vettool: four
// analyzers (determinism, hotalloc, horizon, keypack) that statically
// enforce the invariants the test suite otherwise only checks
// dynamically — deterministic replay, zero-alloc hot-path stepping, the
// 32-bit time/cursor layout, and the packed policy-key discipline. See
// README "Static analysis".
//
// It speaks the `go vet -vettool` JSON-config protocol (the same
// contract golang.org/x/tools/go/analysis/unitchecker implements), so
// the canonical invocation is:
//
//	go build -o bin/wormvet ./cmd/wormvet
//	go vet -vettool=$PWD/bin/wormvet ./...
//
// Run directly it wraps that pipeline — the `make lint` equivalent:
//
//	go run ./cmd/wormvet ./...          # exits nonzero on findings
//	go run ./cmd/wormvet -list ./...    # listing mode: print, exit 0
//
// The module is deliberately dependency-free, so wormvet implements the
// vettool side of the protocol on the standard library alone instead of
// importing x/tools; cross-package facts (the //wormvet:hotpath marker
// sets) travel between per-package invocations as JSON .vetx files.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"os/exec"
	"strings"

	"wormhole/internal/lint"
	"wormhole/internal/lint/lintkit"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	switch {
	case len(args) == 1 && args[0] == "-V=full":
		// The go command derives the vet cache key from this line, so a
		// rebuilt wormvet with different analyzers must print a
		// different line: embed a content hash of the executable.
		fmt.Fprintf(stdout, "wormvet version %s\n", selfHash())
		return 0
	case len(args) == 1 && args[0] == "-flags":
		// go vet queries the tool's analyzer flags; wormvet has none.
		fmt.Fprintln(stdout, "[]")
		return 0
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		return unitCheck(args[0], stderr)
	case len(args) >= 1 && args[0] == "-help":
		usage(stdout)
		return 0
	}
	return standalone(args, stdout, stderr)
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: wormvet [-list] packages...  (or as go vet -vettool)")
	fmt.Fprintln(w, "analyzers:")
	for _, a := range lint.Analyzers() {
		fmt.Fprintf(w, "  %-12s %s\n", a.Name, a.Doc)
	}
}

// standalone re-executes the suite through `go vet -vettool=<self>` so
// the one code path — the unitchecker protocol — serves both CI and
// local runs. With -list findings are printed but the exit code stays 0
// (local triage mode).
func standalone(args []string, stdout, stderr io.Writer) int {
	list := false
	var patterns []string
	for _, a := range args {
		if a == "-list" {
			list = true
			continue
		}
		patterns = append(patterns, a)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(stderr, "wormvet:", err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, patterns...)...)
	cmd.Stdout = stdout
	cmd.Stderr = stderr
	if err := cmd.Run(); err != nil {
		if _, isExit := err.(*exec.ExitError); !isExit {
			fmt.Fprintln(stderr, "wormvet:", err)
			return 1
		}
		if !list {
			return 2
		}
	}
	return 0
}

// vetConfig mirrors the JSON the go command writes for each vet action
// (cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

// unitCheck analyzes one package as directed by the config file and
// reports findings in plain file:line:col form on stderr. Exit codes
// follow unitchecker: 0 clean, 1 infrastructure failure, 2 findings.
func unitCheck(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, "wormvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "wormvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Every invocation must leave a facts file behind — the go command
	// caches and feeds it to importers' runs.
	facts := &lintkit.Facts{}
	writeFacts := func() error {
		out, err := json.Marshal(facts)
		if err == nil {
			err = os.WriteFile(cfg.VetxOutput, out, 0o666)
		}
		return err
	}

	// The standard library can't carry wormvet markers or findings;
	// skip the type-check and publish empty facts.
	if cfg.Standard[cfg.ImportPath] || len(cfg.GoFiles) == 0 {
		if err := writeFacts(); err != nil {
			fmt.Fprintln(stderr, "wormvet:", err)
			return 1
		}
		return 0
	}

	pkg, err := loadFromConfig(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// The compiler will report the error better; stay quiet.
			writeFacts()
			return 0
		}
		fmt.Fprintf(stderr, "wormvet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	imported := map[string]*lintkit.Facts{}
	for path, file := range cfg.PackageVetx {
		raw, err := os.ReadFile(file)
		if err != nil {
			continue // missing dep facts degrade to "unmarked", not failure
		}
		f := &lintkit.Facts{}
		if json.Unmarshal(raw, f) == nil {
			imported[path] = f
		}
	}

	diags, err := lintkit.Run(pkg, lint.Analyzers(), imported, facts)
	if err != nil {
		fmt.Fprintln(stderr, "wormvet:", err)
		return 1
	}
	if err := writeFacts(); err != nil {
		fmt.Fprintln(stderr, "wormvet:", err)
		return 1
	}
	if cfg.VetxOnly || len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s\n", pkg.Fset.Position(d.Pos), d.Message)
	}
	return 2
}

// loadFromConfig type-checks the package using the export data the go
// command prepared for its imports.
func loadFromConfig(cfg *vetConfig) (*lintkit.Package, error) {
	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, compilerName(cfg.Compiler), lookup)
	return lintkit.LoadWithFset(fset, cfg.ImportPath, cfg.GoFiles, imp, cfg.GoVersion)
}

func compilerName(name string) string {
	if name == "" {
		return "gc"
	}
	return name
}

func selfHash() string {
	self, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(self)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}
