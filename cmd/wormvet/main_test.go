package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The tests drive the built binary end to end: protocol handshake modes,
// a clean run over real repo packages (exercising the cross-package
// facts chain), and a planted module where each analyzer must fire.

var wormvetBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "wormvet-test")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	wormvetBin = filepath.Join(dir, "wormvet")
	if out, err := exec.Command("go", "build", "-o", wormvetBin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building wormvet: %v\n%s", err, out)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

func TestVersionHandshake(t *testing.T) {
	out, err := exec.Command(wormvetBin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	// The go command derives the vet cache key from this line; it must
	// name the tool and embed a content hash so rebuilds invalidate.
	if !regexp.MustCompile(`^wormvet version [0-9a-f]{24}\n$`).Match(out) {
		t.Errorf("-V=full output %q, want 'wormvet version <24-hex>'", out)
	}
}

func TestFlagsHandshake(t *testing.T) {
	out, err := exec.Command(wormvetBin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	if strings.TrimSpace(string(out)) != "[]" {
		t.Errorf("-flags output %q, want []", out)
	}
}

func TestHelpListsAnalyzers(t *testing.T) {
	out, err := exec.Command(wormvetBin, "-help").Output()
	if err != nil {
		t.Fatalf("-help: %v", err)
	}
	for _, name := range []string{"determinism", "hotalloc", "horizon", "keypack"} {
		if !strings.Contains(string(out), name) {
			t.Errorf("-help output missing analyzer %q:\n%s", name, out)
		}
	}
}

// moduleRoot resolves the repo root so vet runs see the real module.
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "list", "-f", "{{.Dir}}", "wormhole").Output()
	if err != nil {
		t.Fatalf("go list: %v", err)
	}
	return strings.TrimSpace(string(out))
}

func TestCleanOnRepoPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go vet over repo packages")
	}
	// vcsim imports rng, whose //wormvet:nonalloc markers reach vcsim's
	// hotalloc pass only through the .vetx facts chain — a clean exit
	// proves the chain works, not just that the packages are clean.
	cmd := exec.Command("go", "vet", "-vettool="+wormvetBin,
		"wormhole/internal/rng", "wormhole/internal/vcsim", "wormhole/internal/baseline")
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Errorf("go vet -vettool=wormvet reported findings on clean packages: %v\n%s", err, out)
	}
}

const plantedSrc = `// Package planted trips every wormvet analyzer once.
//
//wormvet:scope
package planted

import (
	_ "math/rand"
)

func order(m map[int]int) int {
	s := 0
	for k := range m {
		s += k
	}
	return s
}

//wormvet:hotpath
func hot(n int) []int {
	return make([]int, n)
}

func narrow(x int) int32 { return int32(x) }

func unpack(k uint64) int { return int(k >> 32) }
`

// plantModule materializes a standalone module with one finding per
// analyzer and returns its directory.
func plantModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module planted\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "planted.go"), []byte(plantedSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestFindingsOnPlantedModule(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go vet on a scratch module")
	}
	cmd := exec.Command("go", "vet", "-vettool="+wormvetBin, "./...")
	cmd.Dir = plantModule(t)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet exited 0 on a module with planted findings:\n%s", out)
	}
	for _, frag := range []string{
		"import of math/rand",
		"range over map m",
		"make allocates",
		"unguarded narrowing int32(x)",
		"manual 64-bit key (un)packing (shift by 32)",
	} {
		if !strings.Contains(string(out), frag) {
			t.Errorf("planted-module vet output missing %q:\n%s", frag, out)
		}
	}
	// Diagnostics must be positioned file:line:col for editors and CI
	// annotations.
	if !regexp.MustCompile(`planted\.go:\d+:\d+: `).Match(out) {
		t.Errorf("diagnostics lack file:line:col positions:\n%s", out)
	}
}

func TestStandaloneListMode(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go vet on a scratch module")
	}
	dir := plantModule(t)

	// Triage mode: findings printed, exit 0.
	list := exec.Command(wormvetBin, "-list", "./...")
	list.Dir = dir
	out, err := list.CombinedOutput()
	if err != nil {
		t.Errorf("wormvet -list exited nonzero: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "range over map") {
		t.Errorf("wormvet -list printed no findings:\n%s", out)
	}

	// Gate mode: same findings, exit 2.
	gate := exec.Command(wormvetBin, "./...")
	gate.Dir = dir
	if out, err := gate.CombinedOutput(); err == nil {
		t.Errorf("wormvet (gate mode) exited 0 on findings:\n%s", out)
	} else if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Errorf("wormvet gate-mode exit = %v, want exit status 2", err)
	}
}
