package wormhole_test

import (
	"fmt"

	"wormhole"
)

// The basic flow: build a workload on a butterfly, route it greedily,
// then build and verify the paper's Theorem 2.1.6 schedule.
func Example() {
	prob := wormhole.ButterflyQRelation(64, 4, 16, 7) // n, q, L, seed
	fmt.Printf("C=%d D=%d L=%d messages=%d\n", prob.C, prob.D, prob.L, prob.Set.Len())

	greedy := prob.RouteGreedy(wormhole.GreedyOptions{B: 2})
	fmt.Printf("greedy B=2: delivered=%v\n", greedy.AllDelivered())

	_, verified, err := prob.RouteScheduled(wormhole.ScheduleOptions{B: 2, Seed: 7})
	if err != nil {
		panic(err)
	}
	fmt.Printf("scheduled B=2: stalls=%d delivered=%v\n",
		verified.TotalStalls, verified.AllDelivered())
	// Output:
	// C=6 D=6 L=16 messages=256
	// greedy B=2: delivered=true
	// scheduled B=2: stalls=0 delivered=true
}

// A lone worm's latency is exactly D+L−1 flit steps — the wormhole
// pipelining identity from the paper's introduction.
func ExampleSimulate() {
	g := wormhole.NewGraph(5, 4)
	prev := g.AddNode("n0")
	for i := 1; i <= 4; i++ {
		next := g.AddNode(fmt.Sprintf("n%d", i))
		g.AddEdge(prev, next)
		prev = next
	}
	path, _ := wormhole.ShortestPath(g, 0, 4)
	set := wormhole.NewMessageSet(g)
	set.Add(0, 4, 7, path) // D = 4 edges, L = 7 flits

	res := wormhole.Simulate(set, nil, wormhole.SimConfig{VirtualChannels: 1})
	fmt.Printf("latency = %d (D+L-1 = %d)\n", res.Steps, 4+7-1)
	// Output:
	// latency = 10 (D+L-1 = 10)
}

// The Theorem 2.2.1 adversarial instance: every pair of messages shares
// an edge, so no router can beat the (L−D)·M/B progress floor.
func ExampleBuildAdversary() {
	adv := wormhole.BuildAdversary(wormhole.AdversaryParams{
		B: 1, TargetD: 12, TargetC: 4, L: 30,
	})
	res := wormhole.Simulate(adv.Set, nil, wormhole.SimConfig{
		VirtualChannels: 1,
		Arbitration:     wormhole.ArbAge,
	})
	fmt.Printf("messages=%d floor=%.0f beaten=%v\n",
		adv.Set.Len(), adv.ProgressBound(),
		float64(res.Steps) < adv.ProgressBound())
	// Output:
	// messages=14 floor=252 beaten=false
}

// Waksman's looping algorithm routes any permutation through a Beneš
// network on edge-disjoint paths: wormhole routing then takes exactly
// L + depth − 1 flit steps with zero stalls.
func ExampleNewBenes() {
	bn := wormhole.NewBenes(8)
	perm := []int{3, 7, 0, 4, 1, 6, 2, 5}
	paths := bn.RoutePermutation(perm)

	set := wormhole.NewMessageSet(bn.G)
	for a, p := range paths {
		set.Add(bn.Inputs[a], bn.Outputs[perm[a]], 10, p)
	}
	res := wormhole.Simulate(set, nil, wormhole.SimConfig{VirtualChannels: 1})
	fmt.Printf("steps=%d optimal=%d stalls=%d\n", res.Steps, 10+bn.Depth-1, res.TotalStalls)
	// Output:
	// steps=15 optimal=15 stalls=0
}

// Congestion-aware path selection spreads a hotspot across parallel
// routes before the scheduler ever sees it.
func ExampleRouteMinMax() {
	// Two parallel 2-hop lanes from s to t.
	g := wormhole.NewGraph(4, 4)
	s := g.AddNode("s")
	a := g.AddNode("a")
	b := g.AddNode("b")
	t := g.AddNode("t")
	g.AddEdge(s, a)
	g.AddEdge(a, t)
	g.AddEdge(s, b)
	g.AddEdge(b, t)

	pairs := []wormhole.Endpoints{{Src: s, Dst: t}, {Src: s, Dst: t}}
	set := wormhole.RouteMinMax(g, pairs, 4, wormhole.RouteOptions{})
	fmt.Printf("congestion=%d\n", wormhole.Congestion(set))
	// Output:
	// congestion=1
}
