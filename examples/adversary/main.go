// Adversary: a walkthrough of the Theorem 2.2.1 lower-bound instance.
//
// Builds the network in which every B+1 messages share a dedicated
// "primary" edge, prints its anatomy, verifies the progress-argument
// floor (L−D)·M/B against real routed makespans, and then demonstrates
// the paper's headline: adding virtual channels to the B=1 instance buys
// a superlinear speedup.
//
//	go run ./examples/adversary
package main

import (
	"fmt"

	"wormhole"
)

func main() {
	const (
		d = 24
		c = 12
	)
	fmt.Println("== anatomy of the construction ==")
	for _, b := range []int{1, 2, 3} {
		adv := wormhole.BuildAdversary(wormhole.AdversaryParams{
			B: b, TargetD: d, TargetC: c, L: 3 * d,
		})
		fmt.Printf("B=%d: M'=%d base messages ×%d replicas = %d worms, %d primary edges, C=%d D=%d\n",
			b, adv.MPrime, adv.Replicas, adv.Set.Len(), len(adv.Primary), adv.C, adv.D)

		res := wormhole.Simulate(adv.Set, nil, wormhole.SimConfig{
			VirtualChannels: b, Arbitration: wormhole.ArbAge,
		})
		floor := adv.ProgressBound()
		fmt.Printf("     greedy makespan %d ≥ floor (L-D)M/B = %.0f (ratio %.2f); Ω-form LCD^(1/B)/B = %.0f\n",
			res.Steps, floor, float64(res.Steps)/floor, adv.TheoremBound())
	}

	fmt.Println("\n== the superlinear headline ==")
	fmt.Println("fix the B=1 instance (every pair of worms shares an edge),")
	fmt.Println("then give the router more virtual channels:")
	adv := wormhole.BuildAdversary(wormhole.AdversaryParams{
		B: 1, TargetD: d, TargetC: c, L: 3 * d,
	})
	prob := wormhole.NewProblem("adversary(B=1)", adv.Set)
	base := 0
	for _, b := range []int{1, 2, 3, 4, 6} {
		greedy := prob.RouteGreedy(wormhole.GreedyOptions{B: b, Policy: wormhole.ArbAge})
		_, sched, err := prob.RouteScheduled(wormhole.ScheduleOptions{B: b, Seed: 9})
		if err != nil {
			panic(err)
		}
		best := greedy.Steps
		if sched.Steps < best {
			best = sched.Steps
		}
		if b == 1 {
			base = best
		}
		sp := float64(base) / float64(best)
		fmt.Printf("  B=%d: best makespan %6d   speedup %5.2fx   per channel %.2fx\n",
			b, best, sp, sp/float64(b))
	}
	fmt.Println("\nper-channel payoff above 1.0 = superlinear benefit, the")
	fmt.Println("phenomenon Theorems 2.1.6 + 2.2.1 prove is real and maximal.")
}
