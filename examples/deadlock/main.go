// Deadlock: why virtual channels exist in the first place.
//
// The paper opens with the Dally–Seitz observation: wormhole worms that
// wrap around a ring can form a cyclic buffer-wait and freeze the
// network forever. This program makes the freeze visible with space-time
// diagrams on a 6-node ring, then shows the two cures — and why the
// structured one is fundamentally better:
//
//  1. plain ring, B=1: deadlock;
//
//  2. anonymous B=2 buffers: survives light load, deadlocks again when
//     two worm waves fill both slots of every buffer in the cycle;
//
//  3. Dally–Seitz dateline classes (same buffer budget as #2): the
//     channel dependency graph is acyclic, so no load can deadlock it.
//
//     go run ./examples/deadlock
package main

import (
	"fmt"

	"wormhole"
	"wormhole/internal/deadlock"
)

func run(title string, classes, b int, starts []int, render bool) {
	const n = 6
	r := deadlock.NewRing(n, classes)
	set := r.SparseWorkload(starts, n-1, n+2)
	var rec *wormhole.TraceRecorder
	cfg := wormhole.SimConfig{VirtualChannels: b}
	if render {
		rec = wormhole.NewTraceRecorder(set)
		cfg.Observer = rec
	}
	res := wormhole.Simulate(set, nil, cfg)
	fmt.Printf("== %s ==\n", title)
	fmt.Printf("dependency acyclic: %v   deadlocked: %v   delivered: %d/%d (steps %d)\n",
		wormhole.DeadlockFree(set), res.Deadlocked, res.Delivered, set.Len(), res.Steps)
	if render && res.Deadlocked {
		fmt.Println("\nfrozen configuration (each worm waits on the next one's buffer):")
		fmt.Print(rec.Render())
	}
	fmt.Println()
}

func main() {
	all := []int{0, 1, 2, 3, 4, 5}
	two := []int{0, 3}
	dbl := append(append([]int{}, all...), all...)

	run("plain ring, two opposed worms, B=1: deadlock", 1, 1, two, true)
	run("anonymous B=2 buffers, same two worms: survives", 1, 2, two, false)
	run("anonymous B=2 buffers, worm per node: deadlocks again", 1, 2, all, false)
	run("dateline classes (same budget), worm per node: immune", 2, 1, all, false)
	run("dateline classes, two worms per node: still immune", 2, 1, dbl, false)

	fmt.Println("counting virtual channels is not enough — structuring them")
	fmt.Println("is what breaks the cycle (Dally–Seitz, and this paper's")
	fmt.Println("starting point: given that VCs are there for deadlock")
	fmt.Println("freedom, how much *speed* do they buy?)")
}
