// Command openloop demonstrates the steady-state open-loop traffic API:
// it sweeps offered load on a 32-input butterfly for B ∈ {1, 4}, prints
// the latency-vs-load curve, and then bisects for each router's
// saturation rate. The B = 4 router's knee sits far to the right of the
// B = 1 router's — the open-loop restatement of the paper's claim that
// virtual channels buy superlinear routing capacity.
package main

import (
	"fmt"

	"wormhole"
)

func main() {
	const n = 32
	base := wormhole.OpenLoopConfig{
		Net:           wormhole.NewButterflyTraffic(n),
		MessageLength: wormhole.Log2(n),
		Arbitration:   wormhole.ArbAge,
		Process:       wormhole.ProcessPoisson,
		Pattern:       wormhole.PatternUniform,
		Warmup:        128,
		Measure:       512,
		Drain:         2048,
		MaxBacklog:    8192,
		Seed:          1,
	}

	fmt.Printf("%3s %8s %9s %12s %6s %6s  %s\n",
		"B", "offered", "accepted", "mean latency", "p95", "p99", "state")
	for _, b := range []int{1, 4} {
		for _, rate := range []float64{0.05, 0.10, 0.20, 0.40} {
			cfg := base
			cfg.VirtualChannels = b
			cfg.Rate = rate
			res, err := wormhole.RunOpenLoop(cfg)
			if err != nil {
				panic(err)
			}
			state := "steady"
			if res.Saturated {
				state = "saturated"
			}
			fmt.Printf("%3d %8.2f %9.3f %12.1f %6.0f %6.0f  %s\n",
				b, rate, res.Accepted, res.MeanLatency, res.P95, res.P99, state)
		}
	}

	fmt.Println()
	for _, b := range []int{1, 4} {
		cfg := base
		cfg.VirtualChannels = b
		sat, err := wormhole.SaturationRate(cfg, wormhole.SaturationOptions{Hi: 2, Iters: 10})
		if err != nil {
			panic(err)
		}
		fmt.Printf("B=%d saturates at rate %.3f msgs/input/step (%d probes)\n",
			b, sat.Rate, len(sat.Probes))
	}
}
