// QRelation: the paper's Section 3.1 algorithm, end to end.
//
// Routes a random q-relation on a 1024-input butterfly with the
// randomized two-pass drop-and-retry algorithm of Theorem 3.1.1, printing
// the per-round trace: copies in flight, colors (subrounds), deliveries,
// and the flit-step cost — then repeats across B to show the superlinear
// payoff.
//
//	go run ./examples/qrelation
package main

import (
	"fmt"

	"wormhole"
)

func main() {
	const (
		n = 1024
		q = 10
	)
	l := wormhole.Log2(n) // the interesting case L = Θ(log n)

	fmt.Printf("q-relation on a %d-input butterfly: q=%d, L=%d\n\n", n, q, l)

	var base float64
	for _, b := range []int{1, 2, 3, 4} {
		r := wormhole.NewRand(7)
		pairs := wormhole.RandomQRelation(n, q, r)
		res := wormhole.RunQRelation(pairs, wormhole.QRelationParams{
			N: n, Q: q, L: l, B: b,
		}, r)

		fmt.Printf("B=%d: delivered %d/%d in %d flit steps (bound shape %.0f)\n",
			b, res.DeliveredMsgs, res.TotalMessages, res.FlitSteps,
			wormhole.QRelationBound(n, q, l, b))
		for _, round := range res.Rounds {
			fmt.Printf("   round %d: %5d copies, Δ=%-4d → %5d new deliveries, %6d flit steps (max/input %d)\n",
				round.Round, round.Copies, round.Colors, round.Delivered,
				round.FlitSteps, round.MaxPerInput)
		}
		if b == 1 {
			base = float64(res.FlitSteps)
		} else {
			sp := base / float64(res.FlitSteps)
			fmt.Printf("   speedup over B=1: %.2fx (%.2fx per channel)\n", sp, sp/float64(b))
		}
		if !res.AllDelivered {
			fmt.Println("   WARNING: some messages undelivered — increase Beta or Rounds")
		}
		fmt.Println()
	}
}
