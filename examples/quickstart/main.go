// Quickstart: route a random 8-relation across a 256-input butterfly and
// watch what virtual channels buy you.
//
// The program routes the same workload greedily with B = 1, 2, 4, 8
// virtual channels per physical channel, then builds and verifies the
// Theorem 2.1.6 offline schedule for the same B values, printing makespans
// side by side.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"wormhole"
)

func main() {
	const (
		n    = 256 // butterfly inputs
		q    = 8   // messages per input (q-relation)
		l    = 32  // flits per message
		seed = 42
	)
	prob := wormhole.ButterflyQRelation(n, q, l, seed)
	fmt.Printf("workload: %s\n", prob.Label)
	fmt.Printf("congestion C=%d, dilation D=%d, length L=%d, %d messages\n\n",
		prob.C, prob.D, prob.L, prob.Set.Len())

	fmt.Println("B   greedy(steps)  stalls   scheduled(steps)  classes  bound")
	for _, b := range []int{1, 2, 4, 8} {
		greedy := prob.RouteGreedy(wormhole.GreedyOptions{B: b, Policy: wormhole.ArbAge})
		if !greedy.AllDelivered() {
			panic(fmt.Sprintf("greedy B=%d failed to deliver", b))
		}
		sched, ver, err := prob.RouteScheduled(wormhole.ScheduleOptions{B: b, Seed: seed})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-3d %-14d %-8d %-17d %-8d %.0f\n",
			b, greedy.Steps, greedy.TotalStalls, ver.Steps, sched.NumClasses,
			wormhole.UpperBound216(prob.L, prob.C, prob.D, b))
	}

	fmt.Println("\nThe greedy makespan and the verified schedule both fall")
	fmt.Println("faster than 1/B — the paper's superlinear benefit. The")
	fmt.Println("schedule is conflict-free: note the zero-stall guarantee")
	fmt.Println("(greedy stalls vanish as B grows).")
}
