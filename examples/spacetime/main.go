// Spacetime: watch worms move, block, share channels, and get dropped.
//
// Renders flit-level space-time diagrams for three tiny scenarios on a
// shared 4-edge path (rows = edges, columns = flit steps, letters =
// worms):
//
//  1. B = 1: the second worm waits for the first worm's tail to clear;
//
//  2. B = 2: both worms pipeline through the same physical edges at
//     once — two flits per edge per step, one per virtual channel;
//
//  3. drop-on-delay: the loser is discarded at its first stall (the
//     Section 3.1 algorithm's discipline).
//
//     go run ./examples/spacetime
package main

import (
	"fmt"

	"wormhole"
)

func buildWorkload() *wormhole.MessageSet {
	const span, l = 4, 3
	g := wormhole.NewGraph(span+1, span)
	prev := g.AddNode("n0")
	for i := 1; i <= span; i++ {
		next := g.AddNode(fmt.Sprintf("n%d", i))
		g.AddEdge(prev, next)
		prev = next
	}
	path, _ := wormhole.ShortestPath(g, 0, wormhole.NodeID(span))
	set := wormhole.NewMessageSet(g)
	set.Add(0, wormhole.NodeID(span), l, path)
	set.Add(0, wormhole.NodeID(span), l, append(wormhole.Path(nil), path...))
	return set
}

func show(title string, cfg wormhole.SimConfig) {
	set := buildWorkload()
	rec := wormhole.NewTraceRecorder(set)
	cfg.Observer = rec
	res := wormhole.Simulate(set, nil, cfg)
	fmt.Printf("== %s ==\n", title)
	fmt.Printf("makespan %d flit steps, delivered %d, dropped %d, stalls %d\n\n",
		res.Steps, res.Delivered, res.Dropped, res.TotalStalls)
	fmt.Println(rec.Render())
}

func main() {
	show("one virtual channel: worm b waits for worm a's tail",
		wormhole.SimConfig{VirtualChannels: 1})
	show("two virtual channels: both worms share every physical edge",
		wormhole.SimConfig{VirtualChannels: 2})
	show("drop-on-delay: worm b is discarded at its first stall",
		wormhole.SimConfig{VirtualChannels: 1, DropOnDelay: true})
}
