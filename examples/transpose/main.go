// Transpose: the classic mesh hotspot, routed three ways.
//
// A 16×16 mesh carries the matrix-transpose permutation on dimension-order
// routes — the diagonal concentrates traffic, which is exactly where
// buffer architecture matters. The program compares, at equal per-edge
// buffer budget:
//
//   - wormhole routing with B virtual channels (the paper's subject),
//
//   - virtual cut-through with a single B-flit buffer (Section 1.4's
//     linear-speedup contender),
//
//   - store-and-forward routing (fast, but needs whole-message buffers).
//
//     go run ./examples/transpose
package main

import (
	"fmt"

	"wormhole"
)

func main() {
	const (
		side = 16
		l    = 24 // flits per message
	)
	prob := wormhole.MeshTranspose(side, l)
	fmt.Printf("workload: %s — C=%d D=%d L=%d, %d messages\n\n",
		prob.Label, prob.C, prob.D, prob.L, prob.Set.Len())

	if !wormhole.DeadlockFree(prob.Set) {
		panic("dimension-order transpose routes must be deadlock-free")
	}

	fmt.Println("router                     buf(flits)  flit-steps")
	for _, b := range []int{1, 2, 4, 8} {
		res := prob.RouteGreedy(wormhole.GreedyOptions{B: b, Policy: wormhole.ArbAge})
		if !res.AllDelivered() {
			panic(fmt.Sprintf("wormhole B=%d undelivered", b))
		}
		fmt.Printf("wormhole B=%-2d              %-11d %d\n", b, b, res.Steps)
	}
	for _, b := range []int{2, 4, 8} {
		res := wormhole.RunVirtualCutThrough(prob.Set, wormhole.VCTConfig{BufferFlits: b})
		if res.Deadlocked || res.Delivered != prob.Set.Len() {
			panic(fmt.Sprintf("VCT buf=%d failed", b))
		}
		fmt.Printf("virtual cut-through buf=%-2d %-11d %d\n", b, b, res.Steps)
	}
	saf := wormhole.RunStoreAndForward(prob.Set, wormhole.SAFConfig{Seed: 1})
	fmt.Printf("store-and-forward          %-11d %d\n", saf.MaxQueue*l, saf.FlitSteps)

	fmt.Println("\nOn this benign workload the two buffer organizations track each")
	fmt.Println("other (both gain ≈ linearly), while store-and-forward needs a")
	fmt.Println("whole-message buffer per switch to compete. The separation the")
	fmt.Println("paper proves — virtual channels gaining B·D^(1-1/B) where depth")
	fmt.Println("gains only B — appears on adversarial traffic: run")
	fmt.Println("examples/adversary to see it.")
}
