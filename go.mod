module wormhole

go 1.24
