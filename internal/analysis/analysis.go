// Package analysis computes the path-set quantities the paper's bounds are
// stated in — congestion C, dilation D, multiplex size — plus the
// conflict-graph coloring behind the naive O((L+D)·C·D) bound (footnote 5)
// and the channel-dependency acyclicity check used to certify
// deadlock-freedom.
package analysis

import (
	"wormhole/internal/graph"
	"wormhole/internal/message"
)

// Congestion returns C: the maximum, over edges, of the number of messages
// whose paths cross that edge. An empty set has congestion 0.
func Congestion(s *message.Set) int {
	load := EdgeLoads(s)
	max := 0
	for _, c := range load {
		if c > max {
			max = c
		}
	}
	return max
}

// EdgeLoads returns the per-edge message counts, indexed by EdgeID.
func EdgeLoads(s *message.Set) []int {
	load := make([]int, s.G.NumEdges())
	for i := range s.Msgs {
		for _, e := range s.Msgs[i].Path {
			load[e]++
		}
	}
	return load
}

// Dilation returns D: the length (in edges) of the longest path in the set.
func Dilation(s *message.Set) int {
	max := 0
	for i := range s.Msgs {
		if l := len(s.Msgs[i].Path); l > max {
			max = l
		}
	}
	return max
}

// MultiplexSize returns, for a coloring of the messages (color[id] = class),
// the maximum over all edges and color classes of the number of same-class
// messages crossing one edge — Definition 2.1.4 of the paper. A valid
// wormhole schedule with B virtual channels needs multiplex size ≤ B in
// every released class.
func MultiplexSize(s *message.Set, color []int) int {
	type key struct {
		e graph.EdgeID
		c int
	}
	counts := make(map[key]int)
	max := 0
	for i := range s.Msgs {
		c := color[i]
		for _, e := range s.Msgs[i].Path {
			k := key{e, c}
			counts[k]++
			if counts[k] > max {
				max = counts[k]
			}
		}
	}
	return max
}

// MultiplexSizeOf returns the multiplex size of a single class given as a
// list of message IDs (all treated as one color).
func MultiplexSizeOf(s *message.Set, ids []message.ID) int {
	counts := make(map[graph.EdgeID]int)
	max := 0
	for _, id := range ids {
		for _, e := range s.Msgs[id].Path {
			counts[e]++
			if counts[e] > max {
				max = counts[e]
			}
		}
	}
	return max
}

// ConflictGraph returns the adjacency lists of the worm conflict graph: one
// vertex per message, an edge between two messages whose paths share a
// network edge. This is the graph behind the naive coloring bound: its
// degree is at most D·(C−1).
func ConflictGraph(s *message.Set) [][]int32 {
	n := s.Len()
	adj := make([][]int32, n)
	// Bucket messages by edge, then connect all pairs in a bucket.
	byEdge := make([][]int32, s.G.NumEdges())
	for i := range s.Msgs {
		for _, e := range s.Msgs[i].Path {
			byEdge[e] = append(byEdge[e], int32(i))
		}
	}
	seen := make([]map[int32]struct{}, n)
	for i := range seen {
		seen[i] = make(map[int32]struct{})
	}
	for _, bucket := range byEdge {
		for i := 0; i < len(bucket); i++ {
			for j := i + 1; j < len(bucket); j++ {
				a, b := bucket[i], bucket[j]
				if a == b {
					continue
				}
				if _, dup := seen[a][b]; dup {
					continue
				}
				seen[a][b] = struct{}{}
				seen[b][a] = struct{}{}
				adj[a] = append(adj[a], b)
				adj[b] = append(adj[b], a)
			}
		}
	}
	return adj
}

// GreedyColor colors the conflict graph greedily in vertex order and
// returns (colors, number of colors used). Greedy uses at most Δ+1 colors
// where Δ is the conflict-graph degree, matching footnote 5's
// D·(C−1)+1 bound.
func GreedyColor(adj [][]int32) ([]int, int) {
	n := len(adj)
	color := make([]int, n)
	for i := range color {
		color[i] = -1
	}
	maxColor := 0
	taken := make(map[int]struct{})
	for v := 0; v < n; v++ {
		clear(taken)
		for _, u := range adj[v] {
			if color[u] >= 0 {
				taken[color[u]] = struct{}{}
			}
		}
		c := 0
		for {
			if _, bad := taken[c]; !bad {
				break
			}
			c++
		}
		color[v] = c
		if c+1 > maxColor {
			maxColor = c + 1
		}
	}
	return color, maxColor
}

// ValidColoring reports whether no two conflict-graph neighbours share a
// color.
func ValidColoring(adj [][]int32, color []int) bool {
	for v := range adj {
		for _, u := range adj[v] {
			if color[v] == color[u] {
				return false
			}
		}
	}
	return true
}

// ChannelDependencyAcyclic reports whether the channel dependency graph of
// the path set is acyclic. The dependency graph has one vertex per network
// edge and an arc e→f whenever some message's path uses f immediately
// after e. Acyclic dependency graphs certify that greedy wormhole routing
// of this path set cannot deadlock (Dally–Seitz).
func ChannelDependencyAcyclic(s *message.Set) bool {
	m := s.G.NumEdges()
	dep := graph.New(m, m)
	for i := 0; i < m; i++ {
		dep.AddNode("")
	}
	type arc struct{ a, b graph.EdgeID }
	added := make(map[arc]struct{})
	for i := range s.Msgs {
		p := s.Msgs[i].Path
		for j := 0; j+1 < len(p); j++ {
			k := arc{p[j], p[j+1]}
			if _, dup := added[k]; dup {
				continue
			}
			added[k] = struct{}{}
			dep.AddEdge(graph.NodeID(p[j]), graph.NodeID(p[j+1]))
		}
	}
	return graph.IsDAG(dep)
}

// CollidingSubset searches the message set for B+1 messages sharing one
// edge and returns their IDs (or nil if congestion ≤ B). This realizes
// Definition 3.2.2: a set of messages "collides" when such a subset exists.
func CollidingSubset(s *message.Set, b int) []message.ID {
	byEdge := make(map[graph.EdgeID][]message.ID)
	for i := range s.Msgs {
		for _, e := range s.Msgs[i].Path {
			byEdge[e] = append(byEdge[e], message.ID(i))
			if len(byEdge[e]) == b+1 {
				return append([]message.ID(nil), byEdge[e]...)
			}
		}
	}
	return nil
}
