package analysis

import (
	"testing"
	"testing/quick"

	"wormhole/internal/graph"
	"wormhole/internal/message"
	"wormhole/internal/rng"
	"wormhole/internal/topology"
)

// fixture: 3 messages on a line, two sharing the middle edge.
func fixture(t *testing.T) *message.Set {
	t.Helper()
	g := topology.NewLinearArray(5)
	s := message.NewSet(g)
	route := message.ShortestPathRouter(g)
	s.Add(0, 4, 3, route(0, 4)) // edges 0-1,1-2,2-3,3-4
	s.Add(1, 3, 3, route(1, 3)) // edges 1-2,2-3
	s.Add(4, 0, 3, route(4, 0)) // reverse direction, disjoint edges
	return s
}

func TestCongestionDilation(t *testing.T) {
	s := fixture(t)
	if c := Congestion(s); c != 2 {
		t.Errorf("congestion = %d, want 2", c)
	}
	if d := Dilation(s); d != 4 {
		t.Errorf("dilation = %d, want 4", d)
	}
	if c := Congestion(message.NewSet(s.G)); c != 0 {
		t.Errorf("empty congestion = %d", c)
	}
}

func TestEdgeLoads(t *testing.T) {
	s := fixture(t)
	loads := EdgeLoads(s)
	total := 0
	for _, l := range loads {
		total += l
	}
	if total != 4+2+4 {
		t.Errorf("total edge incidences = %d", total)
	}
}

func TestMultiplexSize(t *testing.T) {
	s := fixture(t)
	// All one color: multiplex = congestion = 2.
	if ms := MultiplexSize(s, []int{0, 0, 0}); ms != 2 {
		t.Errorf("single color multiplex = %d", ms)
	}
	// Separate the two conflicting messages: multiplex 1.
	if ms := MultiplexSize(s, []int{0, 1, 0}); ms != 1 {
		t.Errorf("split multiplex = %d", ms)
	}
	if ms := MultiplexSizeOf(s, []message.ID{0, 1}); ms != 2 {
		t.Errorf("subset multiplex = %d", ms)
	}
}

func TestConflictGraph(t *testing.T) {
	s := fixture(t)
	adj := ConflictGraph(s)
	if len(adj[0]) != 1 || adj[0][0] != 1 {
		t.Errorf("message 0 conflicts: %v", adj[0])
	}
	if len(adj[2]) != 0 {
		t.Errorf("message 2 should conflict with nothing: %v", adj[2])
	}
}

func TestGreedyColorValid(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		bf := topology.NewButterfly(8)
		s := message.NewSet(bf.G)
		for rep := 0; rep < 3; rep++ {
			for src, dst := range r.Perm(8) {
				s.Add(bf.Input(src), bf.Output(dst), 2, bf.Route(src, dst))
			}
		}
		adj := ConflictGraph(s)
		colors, k := GreedyColor(adj)
		if !ValidColoring(adj, colors) {
			return false
		}
		// Greedy uses at most Δ+1 colors.
		maxDeg := 0
		for _, a := range adj {
			if len(a) > maxDeg {
				maxDeg = len(a)
			}
		}
		if k > maxDeg+1 {
			return false
		}
		// Coloring to classes: multiplex size must be 1 (no two
		// conflicting messages share a class).
		return MultiplexSize(s, colors) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestChannelDependencyAcyclic(t *testing.T) {
	// Butterfly one-pass paths: leveled, must be acyclic.
	bf := topology.NewButterfly(8)
	s := message.NewSet(bf.G)
	r := rng.New(1)
	for src, dst := range r.Perm(8) {
		s.Add(bf.Input(src), bf.Output(dst), 2, bf.Route(src, dst))
	}
	if !ChannelDependencyAcyclic(s) {
		t.Error("butterfly dependency graph must be acyclic")
	}

	// Two worms in a buffer cycle: cyclic.
	g := graph.New(4, 6)
	g.AddNodes(4)
	p := g.AddEdge(0, 1)
	q := g.AddEdge(2, 3)
	e12 := g.AddEdge(1, 2)
	e30 := g.AddEdge(3, 0)
	s2 := message.NewSet(g)
	s2.Add(0, 3, 2, graph.Path{p, e12, q})
	s2.Add(2, 1, 2, graph.Path{q, e30, p})
	if ChannelDependencyAcyclic(s2) {
		t.Error("cyclic dependency not detected")
	}
}

func TestCollidingSubset(t *testing.T) {
	s := fixture(t)
	if got := CollidingSubset(s, 1); len(got) != 2 {
		t.Errorf("B=1 colliding subset = %v, want a pair", got)
	}
	if got := CollidingSubset(s, 2); got != nil {
		t.Errorf("B=2 should not collide, got %v", got)
	}
}

func TestCollidingSubsetShareEdge(t *testing.T) {
	// The returned messages must actually share one edge.
	r := rng.New(7)
	bf := topology.NewButterfly(16)
	s := message.NewSet(bf.G)
	for rep := 0; rep < 4; rep++ {
		for src, dst := range r.Perm(16) {
			s.Add(bf.Input(src), bf.Output(dst), 2, bf.Route(src, dst))
		}
	}
	for b := 1; b <= 3; b++ {
		ids := CollidingSubset(s, b)
		if ids == nil {
			continue
		}
		if len(ids) != b+1 {
			t.Fatalf("B=%d subset size %d", b, len(ids))
		}
		// Count shared edges.
		counts := map[graph.EdgeID]int{}
		for _, id := range ids {
			for _, e := range s.Get(id).Path {
				counts[e]++
			}
		}
		shared := false
		for _, c := range counts {
			if c == b+1 {
				shared = true
			}
		}
		if !shared {
			t.Fatalf("B=%d: returned messages share no edge", b)
		}
	}
}
