package baseline

import (
	"testing"
	"testing/quick"

	"wormhole/internal/butterfly"
	"wormhole/internal/graph"
	"wormhole/internal/message"
	"wormhole/internal/rng"
	"wormhole/internal/topology"
	"wormhole/internal/vcsim"
)

func lineSet(msgs, span, l int) *message.Set {
	g := topology.NewLinearArray(span + 1)
	set := message.NewSet(g)
	route := message.ShortestPathRouter(g)
	for i := 0; i < msgs; i++ {
		set.Add(0, graph.NodeID(span), l, route(0, graph.NodeID(span)))
	}
	return set
}

// --- store and forward -------------------------------------------------------

func TestSAFSingleMessage(t *testing.T) {
	set := lineSet(1, 5, 4)
	res := RunStoreAndForward(set, SAFConfig{})
	if res.Steps != 5 {
		t.Errorf("steps = %d, want D = 5 message steps", res.Steps)
	}
	if res.FlitSteps != 5*4 {
		t.Errorf("flit steps = %d, want L·D = 20", res.FlitSteps)
	}
	if res.Delivered != 1 {
		t.Error("undelivered")
	}
}

func TestSAFSerializesOnSharedEdge(t *testing.T) {
	// k messages over the same path: the first edge transmits one per
	// step, so makespan = D + k − 1 message steps.
	const k, d = 4, 5
	set := lineSet(k, d, 3)
	res := RunStoreAndForward(set, SAFConfig{})
	if want := d + k - 1; res.Steps != want {
		t.Errorf("steps = %d, want C+D-1 = %d", res.Steps, want)
	}
	if res.Delivered != k {
		t.Errorf("delivered %d/%d", res.Delivered, k)
	}
}

func TestSAFRandomDelaysStillDeliver(t *testing.T) {
	set := lineSet(6, 4, 3)
	res := RunStoreAndForward(set, SAFConfig{RandomDelayBound: 10, Seed: 3})
	if res.Delivered != 6 {
		t.Errorf("delivered %d/6", res.Delivered)
	}
}

func TestSAFMaxQueueTracksContention(t *testing.T) {
	set := lineSet(8, 3, 2)
	res := RunStoreAndForward(set, SAFConfig{})
	if res.MaxQueue < 8 {
		t.Errorf("max queue %d should reflect the 8 messages waiting at the source", res.MaxQueue)
	}
	if SAFFlitBufferBudget(res, 2) != res.MaxQueue*2 {
		t.Error("buffer budget arithmetic")
	}
}

func TestSAFButterflyWorkload(t *testing.T) {
	bf := topology.NewButterfly(16)
	r := rng.New(5)
	set := message.NewSet(bf.G)
	for rep := 0; rep < 3; rep++ {
		for src, dst := range r.Perm(16) {
			set.Add(bf.Input(src), bf.Output(dst), 4, bf.Route(src, dst))
		}
	}
	res := RunStoreAndForward(set, SAFConfig{})
	if res.Delivered != set.Len() {
		t.Fatalf("delivered %d/%d", res.Delivered, set.Len())
	}
	// Store-and-forward is work-conserving here: makespan within C+D+n.
	if res.Steps > set.Len()+8 {
		t.Errorf("suspiciously long SAF makespan %d", res.Steps)
	}
}

func TestSAFEmptyPathMessages(t *testing.T) {
	g := topology.NewLinearArray(3)
	set := message.NewSet(g)
	set.Add(1, 1, 4, graph.Path{})
	res := RunStoreAndForward(set, SAFConfig{})
	if res.Delivered != 1 {
		t.Error("self-addressed message lost")
	}
}

// --- virtual cut-through -----------------------------------------------------

func TestVCTSingleMessagePipelines(t *testing.T) {
	// At wire speed (bandwidth 1) an unblocked cut-through worm behaves
	// exactly like a wormhole worm: D+L−1 flit steps.
	set := lineSet(1, 5, 4)
	res := RunVirtualCutThrough(set, VCTConfig{BufferFlits: 2, BandwidthFlits: 1})
	if want := 5 + 4 - 1; res.Steps != want {
		t.Errorf("bw=1: steps = %d, want %d", res.Steps, want)
	}
	// In the paper's normalization (bandwidth = B) the worm moves as
	// ⌈L/B⌉ superflits: D + L/B − 1 steps.
	res = RunVirtualCutThrough(set, VCTConfig{BufferFlits: 2})
	if want := 5 + 4/2 - 1; res.Steps != want {
		t.Errorf("bw=2: steps = %d, want %d", res.Steps, want)
	}
}

func TestVCTLinearSpeedupInB(t *testing.T) {
	// The Section 1.4 equivalence: buffer+bandwidth B gives cut-through a
	// speedup ≈ linear in B on a contended workload (vs. superlinear for
	// wormhole with B virtual channels).
	const k, d, l = 6, 4, 24
	base := RunVirtualCutThrough(lineSet(k, d, l), VCTConfig{BufferFlits: 1})
	for _, b := range []int{2, 4} {
		res := RunVirtualCutThrough(lineSet(k, d, l), VCTConfig{BufferFlits: b})
		sp := float64(base.Steps) / float64(res.Steps)
		if sp < 0.7*float64(b) || sp > 1.3*float64(b) {
			t.Errorf("B=%d: speedup %.2f not ≈ linear (base %d, got %d)",
				b, sp, base.Steps, res.Steps)
		}
	}
}

func TestVCTDeliversUnderContention(t *testing.T) {
	for _, b := range []int{1, 2, 4} {
		set := lineSet(5, 4, 6)
		res := RunVirtualCutThrough(set, VCTConfig{BufferFlits: b})
		if res.Deadlocked || res.Truncated {
			t.Fatalf("buf=%d: deadlocked=%v truncated=%v", b, res.Deadlocked, res.Truncated)
		}
		if res.Delivered != 5 {
			t.Fatalf("buf=%d: delivered %d/5", b, res.Delivered)
		}
	}
}

func TestVCTSerializationFloor(t *testing.T) {
	// k worms of L flits over one path: the first edge carries k·L flits
	// at BandwidthFlits per step, so makespan ≥ k·L/bw.
	const k, d, l = 3, 4, 5
	set := lineSet(k, d, l)
	res := RunVirtualCutThrough(set, VCTConfig{BufferFlits: 4, BandwidthFlits: 1})
	if res.Steps < k*l {
		t.Errorf("bw=1: steps = %d below bandwidth floor %d", res.Steps, k*l)
	}
	res = RunVirtualCutThrough(set, VCTConfig{BufferFlits: 4})
	if res.Steps < k*l/4 {
		t.Errorf("bw=4: steps = %d below bandwidth floor %d", res.Steps, k*l/4)
	}
}

func TestVCTCompressionAbsorbsBlockage(t *testing.T) {
	// Two worms merge at a fork onto a shared tail edge. With deep
	// buffers, the losing worm's flits pile up instead of stalling the
	// whole pipeline; with buffer 1 it behaves like plain wormhole. Both
	// must deliver; deeper buffers must not be slower.
	g := graph.New(4, 3)
	g.AddNodes(4)
	eA := g.AddEdge(0, 2)
	eB := g.AddEdge(1, 2)
	eT := g.AddEdge(2, 3)
	set := message.NewSet(g)
	set.Add(0, 3, 6, graph.Path{eA, eT})
	set.Add(1, 3, 6, graph.Path{eB, eT})
	shallow := RunVirtualCutThrough(set, VCTConfig{BufferFlits: 1})
	deep := RunVirtualCutThrough(set, VCTConfig{BufferFlits: 6, BandwidthFlits: 1})
	if shallow.Delivered != 2 || deep.Delivered != 2 {
		t.Fatal("undelivered")
	}
	if deep.Steps > shallow.Steps {
		t.Errorf("deeper buffers slower: %d > %d", deep.Steps, shallow.Steps)
	}
}

func TestVCTButterflyMatchesWormholeShape(t *testing.T) {
	// On the butterfly, VCT with buffer 1 must match wormhole B=1 greedy
	// routing exactly (same model).
	bf := topology.NewButterfly(16)
	r := rng.New(8)
	set := message.NewSet(bf.G)
	for src, dst := range r.Perm(16) {
		set.Add(bf.Input(src), bf.Output(dst), 6, bf.Route(src, dst))
	}
	vct := RunVirtualCutThrough(set, VCTConfig{BufferFlits: 1})
	wh := vcsim.Run(set, nil, vcsim.Config{VirtualChannels: 1})
	if vct.Delivered != set.Len() || wh.Delivered != set.Len() {
		t.Fatal("undelivered")
	}
	// Same buffer budget, same bandwidth: times should be close. Allow
	// slack for the two engines' different intra-step orderings.
	diff := vct.Steps - wh.Steps
	if diff < 0 {
		diff = -diff
	}
	if diff > wh.Steps/2+2 {
		t.Errorf("VCT buf=1 (%d) far from wormhole B=1 (%d)", vct.Steps, wh.Steps)
	}
}

func TestVCTPanicsOnBadBuffer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	RunVirtualCutThrough(lineSet(1, 2, 2), VCTConfig{BufferFlits: 0})
}

// --- circuit switching -------------------------------------------------------

func TestCircuitSwitchFractions(t *testing.T) {
	r := rng.New(4)
	for _, b := range []int{1, 2, 4} {
		pairs := butterfly.RandomDestinations(64, 1, r)
		res := RunCircuitSwitch(64, b, pairs, r)
		if res.Attempted != 64 {
			t.Fatalf("attempted %d", res.Attempted)
		}
		if res.Locked < 1 || res.Locked > 64 {
			t.Fatalf("locked %d out of range", res.Locked)
		}
		if res.Fraction != float64(res.Locked)/64 {
			t.Fatal("fraction arithmetic")
		}
	}
}

func TestCircuitSwitchMonotoneInB(t *testing.T) {
	// Averaged over trials, more capacity must lock more circuits.
	var prev float64
	for i, b := range []int{1, 2, 4} {
		total := 0.0
		for trial := 0; trial < 10; trial++ {
			r := rng.New(uint64(trial)*17 + uint64(b))
			pairs := butterfly.RandomDestinations(256, 1, r)
			total += RunCircuitSwitch(256, b, pairs, r).Fraction
		}
		avg := total / 10
		if i > 0 && avg <= prev {
			t.Errorf("B=%d: fraction %v not above %v", b, avg, prev)
		}
		prev = avg
	}
}

func TestCircuitSwitchFullCapacityLocksAll(t *testing.T) {
	r := rng.New(2)
	pairs := butterfly.RandomDestinations(32, 1, r)
	res := RunCircuitSwitch(32, 32, pairs, r)
	if res.Locked != 32 {
		t.Errorf("B=n should lock everything, got %d/32", res.Locked)
	}
}

func TestKochPredictedFraction(t *testing.T) {
	// Shape sanity: increasing in B, decreasing in n.
	if KochPredictedFraction(1024, 2) <= KochPredictedFraction(1024, 1) {
		t.Error("prediction must grow with B")
	}
	if KochPredictedFraction(4096, 2) >= KochPredictedFraction(256, 2) {
		t.Error("prediction must fall with n")
	}
}

// --- cross-model property ----------------------------------------------------

// TestSAFBeatsBlockedWormholeOnLongWorms reproduces the Section 1.3.2
// observation: with B = 1 and heavy sharing, store-and-forward (measured
// in flit steps) can beat wormhole routing, because stalled worms pin
// whole paths.
func TestSAFBeatsBlockedWormholeOnLongWorms(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		k := 6 + r.Intn(6) // messages
		d := 4 + r.Intn(4) // path length
		l := 3 * d         // long worms
		set := lineSet(k, d, l)
		saf := RunStoreAndForward(set, SAFConfig{Seed: seed})
		wh := vcsim.Run(set, nil, vcsim.Config{VirtualChannels: 1})
		if saf.Delivered != k || !wh.AllDelivered() {
			return false
		}
		// SAF flit-step makespan L(C+D−1) must not exceed wormhole's
		// serialized k·L-ish time by more than a small factor; typically
		// it is smaller. We assert the weaker sanity bound both ways.
		return saf.FlitSteps > 0 && wh.Steps > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
