package baseline

import (
	"math"

	"wormhole/internal/butterfly"
	"wormhole/internal/rng"
)

// CircuitResult reports a circuit-switching experiment (Koch's setting,
// paper Section 1.3.3): each input of an n-input butterfly tries to lock
// down a dedicated path to a random output; each edge can carry B circuits;
// excess claimants are killed level by level.
type CircuitResult struct {
	Attempted int
	Locked    int
	Fraction  float64 // Locked / Attempted
}

// RunCircuitSwitch performs the experiment: pairs give the demands (one per
// input for Koch's classic setting), b is the per-edge circuit capacity,
// and survivors are chosen uniformly at each contended edge.
//
// Koch's theorem: with random destinations and one message per input, the
// expected fraction locked is Θ(1/log^(1/B) n) — a superlinear benefit of
// increasing B, the observation this paper extends to wormhole routing.
func RunCircuitSwitch(n, b int, pairs []butterfly.ColPair, r *rng.Source) CircuitResult {
	survivors := butterfly.RunLockstepOnePass(n, b, pairs, butterfly.ArbRandom, r)
	res := CircuitResult{Attempted: len(pairs), Locked: len(survivors)}
	if res.Attempted > 0 {
		res.Fraction = float64(res.Locked) / float64(res.Attempted)
	}
	return res
}

// KochPredictedFraction evaluates Koch's Θ(1/log^(1/B) n) success-fraction
// shape (without its hidden constant).
func KochPredictedFraction(n, b int) float64 {
	ln := log2f(n)
	return 1 / math.Pow(ln, 1/float64(b))
}

func log2f(n int) float64 {
	k := 0
	for v := n; v > 1; v >>= 1 {
		k++
	}
	return float64(k)
}
