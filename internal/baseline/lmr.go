package baseline

import (
	"fmt"

	"wormhole/internal/analysis"
	"wormhole/internal/graph"
	"wormhole/internal/message"
	"wormhole/internal/rng"
)

// LMRSchedule is a delay-smoothed store-and-forward schedule in the
// spirit of Leighton–Maggs–Rao (paper Section 1.3.1): each message gets
// an initial delay, after which it moves one edge per message step
// without ever stopping. A schedule is valid when no edge carries two
// messages in the same step; validity is certified at construction.
type LMRSchedule struct {
	Delays   []int // per-message initial delay in message steps
	Makespan int   // message steps until the last arrival
	C, D     int
	Window   int // the delay window the sampler converged to
	Attempts int // rejection-sampling rounds used
}

// BuildLMRSchedule assigns initial delays by per-message randomized
// placement: each message samples delays from the current window until
// its whole unimpeded trajectory is collision-free against everything
// placed so far, widening the window when a message cannot be placed
// (Moser–Tardos-style local resampling rather than whole-schedule
// rejection, which cannot converge beyond toy sizes). The LMR theorem
// guarantees O(C+D)-step schedules exist; the placement loop finds
// certified ones whose makespan ≤ window + D, with windows that stay
// Θ(C) on every workload exercised in the tests. The result is stronger
// than the theorem needs: messages never stop at all, so no queue forms.
func BuildLMRSchedule(s *message.Set, r *rng.Source, maxAttempts int) (*LMRSchedule, error) {
	if maxAttempts <= 0 {
		maxAttempts = 64
	}
	c := analysis.Congestion(s)
	d := analysis.Dilation(s)
	n := s.Len()
	if n == 0 {
		return &LMRSchedule{C: c, D: d, Window: 1}, nil
	}

	window := c
	if window < 1 {
		window = 1
	}
	attempts := 0
	type slot struct {
		e graph.EdgeID
		t int
	}
	used := make(map[slot]bool, n*d)
	delays := make([]int, n)
	place := func(i, delay int) bool {
		for hop, e := range s.Msgs[i].Path {
			if used[slot{e, delay + hop}] {
				return false
			}
		}
		for hop, e := range s.Msgs[i].Path {
			used[slot{e, delay + hop}] = true
		}
		delays[i] = delay
		return true
	}

	for i := 0; i < n; i++ {
		placed := false
		for !placed {
			for try := 0; try < maxAttempts; try++ {
				attempts++
				if place(i, r.Intn(window)) {
					placed = true
					break
				}
			}
			if placed {
				break
			}
			// This message cannot find a free trajectory: widen the
			// window. Already-placed messages keep their delays.
			window += (window + 1) / 2
			if window > 64*(c+d)+64 {
				return nil, fmt.Errorf("baseline: LMR placement failed to converge (C=%d D=%d window=%d)", c, d, window)
			}
		}
	}

	makespan := 0
	for i := 0; i < n; i++ {
		if end := delays[i] + len(s.Msgs[i].Path); end > makespan {
			makespan = end
		}
	}
	return &LMRSchedule{
		Delays:   delays,
		Makespan: makespan,
		C:        c, D: d,
		Window:   window,
		Attempts: attempts,
	}, nil
}

// VerifyLMR re-checks a schedule against its message set: unimpeded
// motion must never put two messages on one edge in one step. It returns
// the makespan in message steps.
func VerifyLMR(s *message.Set, sched *LMRSchedule) (int, error) {
	if len(sched.Delays) != s.Len() {
		return 0, fmt.Errorf("baseline: %d delays for %d messages", len(sched.Delays), s.Len())
	}
	type slot struct {
		e graph.EdgeID
		t int
	}
	used := make(map[slot]bool)
	makespan := 0
	for i := 0; i < s.Len(); i++ {
		for hop, e := range s.Msgs[i].Path {
			k := slot{e, sched.Delays[i] + hop}
			if used[k] {
				return 0, fmt.Errorf("baseline: edge %d double-booked at step %d", e, sched.Delays[i]+hop)
			}
			used[k] = true
		}
		if end := sched.Delays[i] + len(s.Msgs[i].Path); end > makespan {
			makespan = end
		}
	}
	return makespan, nil
}

// LMRFlitSteps converts an LMR makespan to flit steps (message step =
// L flit steps, per the paper's accounting).
func LMRFlitSteps(sched *LMRSchedule, l int) int { return sched.Makespan * l }
