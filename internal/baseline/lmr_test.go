package baseline

import (
	"testing"
	"testing/quick"

	"wormhole/internal/analysis"
	"wormhole/internal/message"
	"wormhole/internal/rng"
	"wormhole/internal/topology"
)

func TestLMRSingleMessage(t *testing.T) {
	set := lineSet(1, 5, 4)
	sched, err := BuildLMRSchedule(set, rng.New(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Makespan != 5 {
		t.Errorf("makespan %d, want D = 5", sched.Makespan)
	}
	if _, err := VerifyLMR(set, sched); err != nil {
		t.Fatal(err)
	}
}

func TestLMRDisjointMessagesZeroDelayPossible(t *testing.T) {
	// Permutation on the butterfly: moderate congestion; schedule length
	// must stay within window+D ≤ O(C+D).
	bf := topology.NewButterfly(32)
	r := rng.New(3)
	set := message.NewSet(bf.G)
	for src, dst := range r.Perm(32) {
		set.Add(bf.Input(src), bf.Output(dst), 4, bf.Route(src, dst))
	}
	sched, err := BuildLMRSchedule(set, r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := VerifyLMR(set, sched); err != nil || got != sched.Makespan {
		t.Fatalf("verify: %v (makespan %d vs %d)", err, got, sched.Makespan)
	}
	c := analysis.Congestion(set)
	d := analysis.Dilation(set)
	if sched.Makespan > sched.Window+d {
		t.Errorf("makespan %d exceeds window+D = %d", sched.Makespan, sched.Window+d)
	}
	_ = c
}

func TestLMRHotspotNeedsWideWindow(t *testing.T) {
	// C messages over one path force delays to be a permutation-like
	// spread: window must grow to ≈ C and makespan to ≈ C+D.
	const k, d = 12, 5
	set := lineSet(k, d, 3)
	sched, err := BuildLMRSchedule(set, rng.New(7), 0)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Makespan < k+d-1 {
		t.Errorf("makespan %d below the C+D-1 floor %d", sched.Makespan, k+d-1)
	}
	if sched.Makespan > 8*(k+d) {
		t.Errorf("makespan %d far above O(C+D)", sched.Makespan)
	}
	if _, err := VerifyLMR(set, sched); err != nil {
		t.Fatal(err)
	}
}

func TestLMRMakespanNearCPlusD(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		bf := topology.NewButterfly(16)
		set := message.NewSet(bf.G)
		reps := 1 + int(seed%3)
		for rep := 0; rep < reps; rep++ {
			for src, dst := range r.Perm(16) {
				set.Add(bf.Input(src), bf.Output(dst), 3, bf.Route(src, dst))
			}
		}
		sched, err := BuildLMRSchedule(set, r, 0)
		if err != nil {
			return false
		}
		if _, err := VerifyLMR(set, sched); err != nil {
			return false
		}
		c := analysis.Congestion(set)
		d := analysis.Dilation(set)
		// O(C+D) with a generous constant for rejection sampling.
		return sched.Makespan <= 16*(c+d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyLMRCatchesCollisions(t *testing.T) {
	set := lineSet(2, 3, 2)
	bad := &LMRSchedule{Delays: []int{0, 0}}
	if _, err := VerifyLMR(set, bad); err == nil {
		t.Fatal("identical zero delays on a shared path must collide")
	}
	if _, err := VerifyLMR(set, &LMRSchedule{Delays: []int{0}}); err == nil {
		t.Fatal("arity mismatch must error")
	}
}

func TestLMRFlitSteps(t *testing.T) {
	if LMRFlitSteps(&LMRSchedule{Makespan: 7}, 4) != 28 {
		t.Fatal("flit conversion")
	}
}

func TestLMREmptySet(t *testing.T) {
	g := topology.NewLinearArray(2)
	set := message.NewSet(g)
	sched, err := BuildLMRSchedule(set, rng.New(1), 0)
	if err != nil || sched.Makespan != 0 {
		t.Fatalf("empty set: %v %d", err, sched.Makespan)
	}
}
