// Package baseline implements the routing methods the paper compares
// wormhole-with-virtual-channels against: store-and-forward routing
// (Section 1's O(L(C+D))-flit-step contender), virtual cut-through routing
// with B-flit buffers (Section 1.4's linear-speedup contender), and Koch's
// circuit switching on the butterfly (the origin of the superlinear
// observation).
package baseline

import (
	"slices"

	"wormhole/internal/graph"
	"wormhole/internal/message"
	"wormhole/internal/rng"
)

// SAFConfig parameterizes the store-and-forward simulator.
type SAFConfig struct {
	// RandomDelayBound, when positive, delays each message's injection by
	// a uniform value in [0, bound) — the classic Leighton–Maggs–Rao
	// randomization that smooths congestion. 0 injects everything at 0.
	RandomDelayBound int
	// Seed drives the random delays and tie-breaking.
	Seed uint64
	// MaxSteps bounds the run (0 = derive from workload).
	MaxSteps int
}

// SAFResult reports a store-and-forward run. Time is counted in message
// steps (one message crosses one edge per step); FlitSteps = L·Steps per
// the paper's conversion.
type SAFResult struct {
	Steps     int
	FlitSteps int
	Delivered int
	MaxQueue  int // peak number of messages buffered at any node
}

// RunStoreAndForward simulates greedy FIFO store-and-forward routing: each
// message occupies a whole-node buffer, and in every message step each edge
// transmits the longest-waiting message queued at its tail that wants it
// (ties by message ID). Buffers are unbounded; the observed peak occupancy
// is reported so experiments can compare buffer budgets against wormhole
// routers (the paper's point: SAF needs Ω(L)-flit buffers).
func RunStoreAndForward(s *message.Set, cfg SAFConfig) SAFResult {
	n := s.Len()
	r := rng.New(cfg.Seed)

	type msgState struct {
		hop     int // edges already crossed
		ready   int // message step at which it may move next
		done    bool
		atNode  graph.NodeID
		path    graph.Path
		release int
	}
	ms := make([]msgState, n)
	work := 0
	for i := 0; i < n; i++ {
		m := s.Get(message.ID(i))
		rel := 0
		if cfg.RandomDelayBound > 0 {
			rel = r.Intn(cfg.RandomDelayBound)
		}
		ms[i] = msgState{atNode: m.Src, path: m.Path, release: rel, ready: rel}
		work += len(m.Path) + 1
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = work + cfg.RandomDelayBound + n + 16
	}

	// Node occupancy for MaxQueue accounting.
	queue := make([]int, s.G.NumNodes())
	for i := range ms {
		queue[ms[i].atNode]++
	}
	maxQueue := 0
	for _, q := range queue {
		if q > maxQueue {
			maxQueue = q
		}
	}

	remaining := 0
	for i := range ms {
		if len(ms[i].path) == 0 {
			ms[i].done = true
		} else {
			remaining++
		}
	}

	res := SAFResult{MaxQueue: maxQueue}
	step := 0
	type claim struct {
		wait int // ready time (earlier = longer waiting)
		id   int
	}
	var winners []graph.EdgeID
	for remaining > 0 {
		if step >= maxSteps {
			break
		}
		// Collect the best claimant per edge.
		claims := make(map[graph.EdgeID]claim)
		for i := range ms {
			st := &ms[i]
			if st.done || st.ready > step {
				continue
			}
			e := st.path[st.hop]
			c, ok := claims[e]
			if !ok || st.ready < c.wait || (st.ready == c.wait && i < c.id) {
				claims[e] = claim{wait: st.ready, id: i}
			}
		}
		if len(claims) == 0 {
			// Everything is waiting on random delays; skip ahead.
			next := -1
			for i := range ms {
				if !ms[i].done && (next < 0 || ms[i].ready < next) {
					next = ms[i].ready
				}
			}
			if next <= step {
				break // no claims yet nothing waiting: done or stuck
			}
			step = next
			continue
		}
		// Move the winners in edge order. Iterating the map directly made
		// MaxQueue depend on Go's randomized iteration order: the peak
		// samples transient queue depths, so whether an arrival at a node
		// was counted before or after a same-step departure from it could
		// differ run to run.
		winners := winners[:0]
		for e := range claims { //wormvet:allow determinism -- winners sorted immediately below
			winners = append(winners, e)
		}
		slices.Sort(winners)
		for _, e := range winners {
			c := claims[e]
			st := &ms[c.id]
			queue[st.atNode]--
			st.atNode = s.G.Edge(e).Head
			st.hop++
			st.ready = step + 1
			if st.hop == len(st.path) {
				st.done = true
				res.Delivered++
				remaining--
				if step+1 > res.Steps {
					res.Steps = step + 1
				}
			} else {
				queue[st.atNode]++
				if queue[st.atNode] > res.MaxQueue {
					res.MaxQueue = queue[st.atNode]
				}
			}
		}
		step++
	}
	for i := range ms {
		if len(ms[i].path) == 0 {
			res.Delivered++
		}
	}
	res.FlitSteps = res.Steps * s.MaxLength()
	return res
}

// SAFFlitBufferBudget returns the per-node flit-buffer requirement of the
// store-and-forward router on this workload: peak queue × L flits.
func SAFFlitBufferBudget(res SAFResult, l int) int { return res.MaxQueue * l }
