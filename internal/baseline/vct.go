package baseline

import (
	"fmt"

	"wormhole/internal/message"
)

// VCTConfig parameterizes the virtual cut-through simulator.
type VCTConfig struct {
	// BufferFlits is the per-edge buffer capacity in flits. Per the
	// paper's Section 1.4 comparison, the buffer holds flits of a single
	// message only — the same buffer budget as a wormhole router with
	// B = BufferFlits virtual channels, but spent on depth instead of
	// multiplexing.
	BufferFlits int
	// BandwidthFlits is the number of flits a physical edge can carry per
	// flit step. The paper's normalization gives both contenders the same
	// factor-B bandwidth (a flit step moves B flits across a channel), so
	// 0 defaults to BufferFlits. Set 1 to model a fixed-speed wire (the
	// restricted regime).
	BandwidthFlits int
	// MaxSteps bounds the run (0 = derive from workload).
	MaxSteps int
}

// VCTResult reports a virtual cut-through run.
type VCTResult struct {
	Steps      int
	Delivered  int
	Deadlocked bool
	Truncated  bool
}

// RunVirtualCutThrough simulates cut-through routing with compressible
// worms: a worm's flits pipeline forward, and when the front blocks,
// trailing flits continue into the buffers behind it — up to BufferFlits
// per edge — before the worm stalls. Each edge buffer is owned by one
// message at a time; each physical edge moves at most BandwidthFlits
// flits per step (several consecutive flits of one worm may cross the
// same link in one step, which is what makes a B-deep buffer behave like
// a worm of L/B superflits — the paper's linear-speedup equivalence).
//
// Messages are processed in ID order each step (FIFO-like arbitration);
// within a message, flits move front-to-back so a flit vacates capacity
// for the one behind it within the same step, exactly as in a cut-through
// pipeline.
func RunVirtualCutThrough(s *message.Set, cfg VCTConfig) VCTResult {
	if cfg.BufferFlits < 1 {
		panic(fmt.Sprintf("baseline: BufferFlits %d < 1", cfg.BufferFlits))
	}
	b := cfg.BufferFlits
	bw := cfg.BandwidthFlits
	if bw == 0 {
		bw = b
	}
	if bw < 1 {
		panic(fmt.Sprintf("baseline: BandwidthFlits %d < 1", bw))
	}
	n := s.Len()
	type msgState struct {
		path      []int32
		counts    []int16 // flits buffered at each path index (index i = head of path[i])
		atSource  int     // flits not yet injected
		delivered int
		l, d      int
		done      bool
	}
	ms := make([]msgState, n)
	owner := make([]int32, s.G.NumEdges()) // -1 = free
	for e := range owner {
		owner[e] = -1
	}
	work := 0
	for i := 0; i < n; i++ {
		m := s.Get(message.ID(i))
		p := make([]int32, len(m.Path))
		for j, e := range m.Path {
			p[j] = int32(e)
		}
		ms[i] = msgState{
			path:     p,
			counts:   make([]int16, len(p)),
			atSource: m.Length,
			l:        m.Length,
			d:        len(p),
		}
		work += m.Length + len(p)
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = work + n + 16
	}

	used := make(map[int32]int) // flits carried per edge this step

	res := VCTResult{}
	remaining := 0
	for i := range ms {
		if ms[i].d == 0 {
			ms[i].done = true
			res.Delivered++
		} else {
			remaining++
		}
	}

	for step := 0; remaining > 0; step++ {
		if step >= maxSteps {
			res.Truncated = true
			break
		}
		clear(used)
		moved := false
		for i := range ms {
			st := &ms[i]
			if st.done {
				continue
			}
			// Front-to-back: deliver from the highest occupied index,
			// shuffle flits forward, then inject from the source (j=-1).
			for j := st.d - 2; j >= -1; j-- {
				have := 0
				if j >= 0 {
					have = int(st.counts[j])
				} else {
					have = st.atSource
				}
				if have == 0 {
					continue
				}
				nxt := j + 1
				e := st.path[nxt]
				move := bw - used[e]
				if move > have {
					move = have
				}
				if move <= 0 {
					continue
				}
				if nxt < st.d-1 {
					// Entering a buffered position: single-owner,
					// capacity-limited.
					if owner[e] >= 0 && owner[e] != int32(i) {
						continue
					}
					if space := b - int(st.counts[nxt]); move > space {
						move = space
					}
					if move <= 0 {
						continue
					}
				}
				used[e] += move
				moved = true
				if j >= 0 {
					st.counts[j] -= int16(move)
					if st.counts[j] == 0 && owner[st.path[j]] == int32(i) {
						owner[st.path[j]] = -1
					}
				} else {
					st.atSource -= move
				}
				if nxt == st.d-1 {
					// Crossing the final edge delivers immediately: the
					// destination removes flits from the network.
					st.delivered += move
				} else {
					if st.counts[nxt] == 0 {
						owner[e] = int32(i)
					}
					st.counts[nxt] += int16(move)
				}
			}
			if st.delivered == st.l {
				st.done = true
				res.Delivered++
				remaining--
				res.Steps = step + 1
			}
		}
		if !moved && remaining > 0 {
			res.Deadlocked = true
			break
		}
	}
	return res
}
