// Package bench is the reproducible benchmark suite behind the wormbench
// -bench flag and the CI benchmark-regression gate.
//
// Collect runs a fixed set of workloads — the open-loop stepping path at
// a light and a near-saturation operating point, the batch greedy
// simulator, and the parallel experiment harness — at fixed seeds and
// sizes, and reports ns/step and allocs/step for each. The repo commits
// the post-change numbers as BENCH_BASELINE.json; CI re-collects on every
// push and fails when ns/step regresses beyond a tolerance or allocs/step
// regresses at all.
//
// Wall-clock numbers are not portable across machines, so every report
// carries a calibration measurement: the time of a fixed pure-CPU loop on
// the same machine, taken in the same process. Compare scales the
// baseline's ns/step by the calibration ratio before applying the
// tolerance, which turns the gate into a same-machine comparison even
// when the baseline was collected elsewhere. Alloc counts come from the
// runtime's exact mallocs counter and are machine-independent (they can
// shift across Go releases, which is why CI runs the gate on the pinned
// toolchain leg only).
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"wormhole/internal/core"
	"wormhole/internal/telemetry"
	"wormhole/internal/traffic"
	"wormhole/internal/vcsim"
)

// Entry reports one workload.
type Entry struct {
	Name string `json:"name"`
	// Unit names what a "step" is: a flit step for simulator workloads,
	// a whole run for the harness workload.
	Unit          string  `json:"unit"`
	NsPerStep     float64 `json:"ns_per_step"`
	AllocsPerStep float64 `json:"allocs_per_step"`
	Steps         int64   `json:"steps"` // steps per repeat (measurement denominator)
}

// Report is the -bench output. Entries are ordered; names are stable.
type Report struct {
	// CalibrationNs is the best-of-repeats time of calibrate() on the
	// collecting machine, used to normalize ns/step across machines.
	CalibrationNs float64 `json:"calibration_ns"`
	Entries       []Entry `json:"entries"`
	// Telemetry is the counter snapshot from the knee-telemetry workload's
	// final repeat (wormbench -telemetry exports it). Not compared by the
	// gate.
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
	// NumCPU is GOMAXPROCS on the collecting machine. The shard-speedup
	// ratchet in Compare only applies when the current report was
	// collected with enough parallelism for sharding to plausibly win.
	NumCPU int `json:"num_cpu,omitempty"`
}

// NsTolerance is the default allowed calibration-normalized ns/step
// regression (the CI gate's 15%).
const NsTolerance = 0.15

// calibrate times a fixed pure-CPU loop (xorshift mixing, no memory
// traffic) as a machine-speed probe.
func calibrate() float64 {
	best := 1e18
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		x := uint64(0x9E3779B97F4A7C15)
		var sum uint64
		for i := 0; i < 1<<24; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			sum += x
		}
		ns := float64(time.Since(start).Nanoseconds())
		if sum == 0 { // defeat dead-code elimination
			ns++
		}
		if ns < best {
			best = ns
		}
	}
	return best
}

// workload is one benchmark: run executes it once and returns the step
// count the elapsed time is divided by. snap, when set, is called after
// the last repeat to export the workload's telemetry snapshot.
type workload struct {
	name string
	unit string
	run  func() (steps int64, err error)
	snap func() telemetry.Snapshot
	// close releases engine resources (the sharded stepper's worker
	// goroutines) after the workload's last repeat.
	close func()
}

// openLoop builds a repeatable open-loop workload on a lazily constructed
// traffic.Runner: the first repeat pays the engine's setup allocations,
// and every later repeat replays the identical run over retained storage
// with zero heap allocation — so the best-of-repeats allocs/step the gate
// records is the steady-state figure, 0.000, not the setup amortization.
func openLoop(cfg traffic.Config) (run func() (int64, error), stop func()) {
	var runner *traffic.Runner
	run = func() (int64, error) {
		if runner == nil {
			r, err := traffic.NewRunner(cfg)
			if err != nil {
				return 0, err
			}
			runner = r
		}
		res, err := runner.Run()
		if err != nil {
			return 0, err
		}
		if res.Saturated {
			return 0, fmt.Errorf("bench: workload saturated (must run at steady state)")
		}
		return int64(res.Steps), nil
	}
	stop = func() {
		if runner != nil {
			runner.Close()
		}
	}
	return run, stop
}

// lightConfig is the light open-loop operating point (B=4, rate 0.1).
func lightConfig() traffic.Config {
	return traffic.Config{
		Net:             traffic.NewButterflyNet(64),
		VirtualChannels: 4,
		MessageLength:   6,
		Arbitration:     vcsim.ArbAge,
		Process:         traffic.Poisson,
		Rate:            0.1,
		Pattern:         traffic.Uniform,
		Warmup:          128,
		Measure:         1024,
		Drain:           2048,
		Seed:            17,
	}
}

// kneeConfig is the near-saturation operating point (B=2, rate 0.3; the
// d=1 knee is ~0.306) shared by the knee workloads and TelemetrySmoke.
func kneeConfig() traffic.Config {
	cfg := lightConfig()
	cfg.VirtualChannels = 2
	cfg.Rate = 0.3
	cfg.Warmup = 2048
	cfg.Measure = 8192
	cfg.Drain = 32768
	cfg.MaxBacklog = 65536
	return cfg
}

// wideKneeConfig is the sharded stepper's operating point: a 256-input
// butterfly near its knee (B=2 saturates just above 0.21 at this size),
// whose standing backlog of in-flight worms clears the per-shard
// activity cutoff at the benchmarked shard counts. The sequential twin
// (Shards unset) is the denominator of the shard speedup the Compare
// ratchet enforces on multicore collectors.
func wideKneeConfig() traffic.Config {
	return traffic.Config{
		Net:             traffic.NewButterflyNet(256),
		VirtualChannels: 2,
		MessageLength:   8,
		Arbitration:     vcsim.ArbAge,
		Process:         traffic.Poisson,
		Rate:            0.20,
		Pattern:         traffic.Uniform,
		Warmup:          256,
		Measure:         1024,
		Drain:           8192,
		MaxBacklog:      1 << 16,
		Seed:            17,
	}
}

func workloads() []workload {
	openLight := lightConfig()
	openKnee := kneeConfig()
	wideKnee := wideKneeConfig()
	wideSharded2 := wideKneeConfig()
	wideSharded2.Shards = 2
	wideSharded4 := wideKneeConfig()
	wideSharded4.Shards = 4

	// Deep-buffer knee workloads: the same B=2 near-saturation operating
	// point, but with 4-flit lanes (static and shared pool) — the deep
	// engine's per-flit stepping, compression, and credit wakeups under
	// sustained backlog. d=1's knee is ~0.306, so 0.3 keeps the deep
	// architectures busy but safely unsaturated.
	deepKneeStatic := openKnee
	deepKneeStatic.LaneDepth = 4
	deepKneeShared := deepKneeStatic
	deepKneeShared.SharedPool = true

	// The knee again with hot-path counters attached (no windowed series:
	// counters must keep the steady state allocation-free). The entry's
	// delta against OpenLoopStep/knee IS the counters-on overhead, and the
	// gate ratchets it like every other entry.
	kneeTelemetry := openKnee
	met := telemetry.NewMetrics()
	kneeTelemetry.Metrics = met

	open := func(name string, cfg traffic.Config, snap func() telemetry.Snapshot) workload {
		run, stop := openLoop(cfg)
		return workload{name: name, unit: "step", run: run, snap: snap, close: stop}
	}
	list := []workload{
		open("OpenLoopStep/light", openLight, nil),
		open("OpenLoopStep/knee", openKnee, nil),
		open("OpenLoopStep/knee-telemetry", kneeTelemetry, met.Snapshot),
		open("OpenLoopStep/deepknee-static", deepKneeStatic, nil),
		open("OpenLoopStep/deepknee-shared", deepKneeShared, nil),
		open("OpenLoopStep/knee-wide", wideKnee, nil),
		open("OpenLoopStep/knee-sharded-2", wideSharded2, nil),
		open("OpenLoopStep/knee-sharded-4", wideSharded4, nil),
	}
	for _, b := range []int{1, 2, 4} {
		b := b
		// The workload under test is the batch simulator, not workload
		// construction: the (deterministic) problem is built once on the
		// first repeat and reused, so ns/step and allocs/step measure
		// RouteGreedy alone.
		var prob *core.Problem
		list = append(list, workload{
			name: fmt.Sprintf("SimulatorGreedy/B=%d", b),
			unit: "step",
			run: func() (int64, error) {
				if prob == nil {
					prob = core.ButterflyQRelation(128, 8, 16, 7)
				}
				res := prob.RouteGreedy(core.GreedyOptions{B: b, Policy: vcsim.ArbAge})
				return int64(res.Steps), nil
			},
		})
	}
	list = append(list, workload{
		name: "ParallelHarness/workers=8",
		unit: "run",
		run: func() (int64, error) {
			cfg := core.Config{Seed: 42, Quick: true, Workers: 8}
			for _, id := range []string{"T1", "T4", "T6"} {
				if _, err := core.Run(id, cfg); err != nil {
					return 0, err
				}
			}
			return 1, nil
		},
	})
	return list
}

// Per-workload repeat policy: at least the requested repeats, and keep
// going until the workload has run for benchFloor total (short workloads
// need many repeats before the best-of minimum converges below gate
// noise), hard-capped at benchCap repeats.
const (
	benchFloor = time.Second
	benchCap   = 64
)

// Collect runs every workload repeatedly (see the repeat policy above;
// `repeats` is the per-workload minimum) and reports best-of-repeat
// ns/step and allocs/step (minimums reject scheduler and GC noise; the
// workloads themselves are deterministic).
func Collect(repeats int) (Report, error) {
	if repeats < 1 {
		repeats = 1
	}
	rep := Report{CalibrationNs: calibrate(), NumCPU: runtime.GOMAXPROCS(0)}
	var ms runtime.MemStats
	for _, w := range workloads() {
		bestNs, bestAllocs := 1e18, 1e18
		var steps int64
		var total time.Duration
		for r := 0; r < benchCap && (r < repeats || total < benchFloor); r++ {
			runtime.ReadMemStats(&ms)
			m0 := ms.Mallocs
			start := time.Now()
			n, err := w.run()
			elapsed := time.Since(start)
			ns := float64(elapsed.Nanoseconds())
			total += elapsed
			if err != nil {
				return Report{}, fmt.Errorf("%s: %w", w.name, err)
			}
			runtime.ReadMemStats(&ms)
			allocs := float64(ms.Mallocs - m0)
			if n <= 0 {
				return Report{}, fmt.Errorf("%s: reported %d steps", w.name, n)
			}
			steps = n
			if v := ns / float64(n); v < bestNs {
				bestNs = v
			}
			if v := allocs / float64(n); v < bestAllocs {
				bestAllocs = v
			}
		}
		rep.Entries = append(rep.Entries, Entry{
			Name: w.name, Unit: w.unit,
			NsPerStep: bestNs, AllocsPerStep: bestAllocs, Steps: steps,
		})
		if w.snap != nil {
			s := w.snap()
			rep.Telemetry = &s
		}
		if w.close != nil {
			w.close()
		}
	}
	return rep, nil
}

// TelemetrySmoke runs the knee workload once with the full observability
// surface attached — hot-path counters plus a windowed time series
// published to telemetry.Default — and returns the resulting snapshot.
// wormbench -telemetry (without -bench/-run/-all) and the CI telemetry
// smoke step use it.
func TelemetrySmoke() (telemetry.Snapshot, error) {
	cfg := kneeConfig()
	met := telemetry.NewMetrics()
	cfg.Metrics = met
	cfg.Window = 1024
	cfg.Publish = telemetry.Default
	r, err := traffic.NewRunner(cfg)
	if err != nil {
		return telemetry.Snapshot{}, err
	}
	defer r.Close()
	if _, err := r.Run(); err != nil {
		return telemetry.Snapshot{}, err
	}
	s := met.Snapshot()
	s.Windows = append([]telemetry.WindowStats(nil), r.Windows()...)
	return s, nil
}

// Compare checks current against baseline and returns one message per
// regression (empty means the gate passes). ns/step is compared after
// normalizing by the calibration ratio with the given fractional
// tolerance; allocs/step regresses on any increase beyond rounding.
//
// One relational check rides along: when the current report was
// collected with at least four CPUs, the 4-shard knee workload must
// outrun its sequential twin — the sharded stepper earns its complexity
// in wall clock, not just byte-identity. Single- and dual-core
// collectors skip it (there the fan-out barriers are pure overhead by
// construction), so the gate binds exactly where the speedup claim does.
func Compare(baseline, current Report, nsTol float64) []string {
	var bad []string
	if current.NumCPU >= 4 {
		var wide, sh4 Entry
		for _, e := range current.Entries {
			switch e.Name {
			case "OpenLoopStep/knee-wide":
				wide = e
			case "OpenLoopStep/knee-sharded-4":
				sh4 = e
			}
		}
		if wide.NsPerStep > 0 && sh4.NsPerStep > 0 && sh4.NsPerStep >= wide.NsPerStep {
			bad = append(bad, fmt.Sprintf(
				"OpenLoopStep/knee-sharded-4: %.0f ns/step does not beat the sequential twin's %.0f on a %d-CPU machine",
				sh4.NsPerStep, wide.NsPerStep, current.NumCPU))
		}
	}
	norm := 1.0
	if baseline.CalibrationNs > 0 && current.CalibrationNs > 0 {
		norm = current.CalibrationNs / baseline.CalibrationNs
	}
	base := make(map[string]Entry, len(baseline.Entries))
	for _, e := range baseline.Entries {
		base[e.Name] = e
	}
	for _, cur := range current.Entries {
		b, ok := base[cur.Name]
		if !ok {
			continue // new benchmark: nothing to regress against
		}
		if allowed := b.NsPerStep * norm * (1 + nsTol); cur.NsPerStep > allowed {
			bad = append(bad, fmt.Sprintf(
				"%s: %.0f ns/%s exceeds baseline %.0f × calibration %.2f + %d%% = %.0f",
				cur.Name, cur.NsPerStep, cur.Unit, b.NsPerStep, norm, int(nsTol*100), allowed))
		}
		if cur.AllocsPerStep > b.AllocsPerStep+1e-6 {
			bad = append(bad, fmt.Sprintf(
				"%s: %.3f allocs/%s exceeds baseline %.3f (any allocation regression fails)",
				cur.Name, cur.AllocsPerStep, cur.Unit, b.AllocsPerStep))
		}
	}
	for _, b := range baseline.Entries {
		found := false
		for _, cur := range current.Entries {
			if cur.Name == b.Name {
				found = true
				break
			}
		}
		if !found {
			bad = append(bad, fmt.Sprintf("%s: present in baseline but not measured", b.Name))
		}
	}
	return bad
}

// DeltaTable renders a baseline-vs-current comparison: per benchmark,
// the calibration-normalized baseline ns/step, the current measurement,
// the relative delta (negative = faster), and both alloc figures. CI
// prints it in the bench-gate step so a run's performance movement is
// readable from the log without downloading the BENCH.json artifact.
func DeltaTable(baseline, current Report) string {
	norm := 1.0
	if baseline.CalibrationNs > 0 && current.CalibrationNs > 0 {
		norm = current.CalibrationNs / baseline.CalibrationNs
	}
	base := make(map[string]Entry, len(baseline.Entries))
	for _, e := range baseline.Entries {
		base[e.Name] = e
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %14s %14s %8s %12s %12s\n",
		"benchmark", "base ns(×cal)", "current ns", "delta", "base allocs", "cur allocs")
	for _, cur := range current.Entries {
		e, ok := base[cur.Name]
		if !ok {
			fmt.Fprintf(&b, "%-28s %14s %14.0f %8s %12s %12.3f\n",
				cur.Name, "—", cur.NsPerStep, "new", "—", cur.AllocsPerStep)
			continue
		}
		scaled := e.NsPerStep * norm
		fmt.Fprintf(&b, "%-28s %14.0f %14.0f %+7.1f%% %12.3f %12.3f\n",
			cur.Name, scaled, cur.NsPerStep, 100*(cur.NsPerStep-scaled)/scaled,
			e.AllocsPerStep, cur.AllocsPerStep)
	}
	fmt.Fprintf(&b, "[calibration ratio %.3f: baseline %.0f ns, current %.0f ns]\n",
		norm, baseline.CalibrationNs, current.CalibrationNs)
	return b.String()
}

// WriteFile writes the report as indented JSON.
func (r Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile parses a report written by WriteFile.
func ReadFile(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return r, nil
}
