package bench

import (
	"path/filepath"
	"strings"
	"testing"

	"wormhole/internal/traffic"
)

func report(cal float64, entries ...Entry) Report {
	return Report{CalibrationNs: cal, Entries: entries}
}

func entry(name string, ns, allocs float64) Entry {
	return Entry{Name: name, Unit: "step", NsPerStep: ns, AllocsPerStep: allocs, Steps: 100}
}

func TestCompareWithinToleranceAndCalibration(t *testing.T) {
	base := report(100, entry("a", 1000, 5))
	// 10% slower on a machine the calibration says is 10% slower: fine.
	cur := report(110, entry("a", 1100, 5))
	if bad := Compare(base, cur, NsTolerance); len(bad) != 0 {
		t.Fatalf("unexpected regressions: %v", bad)
	}
	// 40% slower with the same calibration: over the 15% gate.
	cur = report(100, entry("a", 1400, 5))
	if bad := Compare(base, cur, NsTolerance); len(bad) != 1 || !strings.Contains(bad[0], "ns/step") {
		t.Fatalf("want one ns regression, got %v", bad)
	}
	// A fast machine must not mask a real regression: calibration 2x
	// faster but ns/step unchanged means the workload got ~2x slower.
	cur = report(50, entry("a", 1000, 5))
	if bad := Compare(base, cur, NsTolerance); len(bad) != 1 {
		t.Fatalf("calibration-masked regression not caught: %v", bad)
	}
}

func TestCompareAllocsStrict(t *testing.T) {
	base := report(100, entry("a", 1000, 5))
	if bad := Compare(base, report(100, entry("a", 1000, 5.5)), NsTolerance); len(bad) != 1 ||
		!strings.Contains(bad[0], "allocs") {
		t.Fatalf("alloc regression not caught: %v",
			Compare(base, report(100, entry("a", 1000, 5.5)), NsTolerance))
	}
	// Fewer allocs is progress, not a regression.
	if bad := Compare(base, report(100, entry("a", 1000, 1)), NsTolerance); len(bad) != 0 {
		t.Fatalf("alloc improvement flagged: %v", bad)
	}
}

func TestCompareMissingAndNewEntries(t *testing.T) {
	base := report(100, entry("a", 1000, 5), entry("gone", 10, 0))
	cur := report(100, entry("a", 1000, 5), entry("new", 10, 0))
	bad := Compare(base, cur, NsTolerance)
	if len(bad) != 1 || !strings.Contains(bad[0], "gone") {
		t.Fatalf("missing-entry detection failed: %v", bad)
	}
}

func TestReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	want := report(123.5, entry("a", 1000, 5), entry("b", 2, 0))
	if err := want.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.CalibrationNs != want.CalibrationNs || len(got.Entries) != len(want.Entries) {
		t.Fatalf("round trip mangled the report: %+v", got)
	}
	for i := range want.Entries {
		if got.Entries[i] != want.Entries[i] {
			t.Fatalf("entry %d: got %+v want %+v", i, got.Entries[i], want.Entries[i])
		}
	}
}

// TestCollectSmoke runs the real suite once (single repeat) and sanity-
// checks the shape: every workload present with positive measurements,
// and a self-comparison that passes the gate.
func TestCollectSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("collect is seconds-long; skipped in -short")
	}
	rep, err := Collect(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CalibrationNs <= 0 {
		t.Fatal("no calibration measurement")
	}
	want := []string{
		"OpenLoopStep/light", "OpenLoopStep/knee", "OpenLoopStep/knee-telemetry",
		"OpenLoopStep/deepknee-static", "OpenLoopStep/deepknee-shared",
		"OpenLoopStep/knee-wide", "OpenLoopStep/knee-sharded-2", "OpenLoopStep/knee-sharded-4",
		"SimulatorGreedy/B=1", "SimulatorGreedy/B=2", "SimulatorGreedy/B=4",
		"ParallelHarness/workers=8",
	}
	if rep.NumCPU < 1 {
		t.Errorf("report carries NumCPU %d", rep.NumCPU)
	}
	if len(rep.Entries) != len(want) {
		t.Fatalf("got %d entries, want %d", len(rep.Entries), len(want))
	}
	for i, name := range want {
		e := rep.Entries[i]
		if e.Name != name {
			t.Errorf("entry %d: %q, want %q", i, e.Name, name)
		}
		if e.NsPerStep <= 0 || e.Steps <= 0 || e.AllocsPerStep < 0 {
			t.Errorf("%s: degenerate measurement %+v", name, e)
		}
	}
	if bad := Compare(rep, rep, NsTolerance); len(bad) != 0 {
		t.Errorf("self-comparison regressed: %v", bad)
	}
}

func TestDeltaTable(t *testing.T) {
	base := Report{
		CalibrationNs: 100,
		Entries: []Entry{
			{Name: "w1", Unit: "step", NsPerStep: 1000, AllocsPerStep: 2, Steps: 10},
		},
	}
	cur := Report{
		CalibrationNs: 200, // current machine half as fast: baseline scales ×2
		Entries: []Entry{
			{Name: "w1", Unit: "step", NsPerStep: 1500, AllocsPerStep: 0, Steps: 10},
			{Name: "w2", Unit: "step", NsPerStep: 50, AllocsPerStep: 1, Steps: 5},
		},
	}
	out := DeltaTable(base, cur)
	for _, want := range []string{"w1", "w2", "new", "-25.0%", "2000", "calibration ratio 2.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("delta table missing %q:\n%s", want, out)
		}
	}
}

// TestCompareShardSpeedupGate pins the relational shard ratchet: on a
// multicore collector the 4-shard knee must beat its sequential twin;
// below four CPUs the check is silent.
func TestCompareShardSpeedupGate(t *testing.T) {
	base := report(100)
	slow := report(100,
		entry("OpenLoopStep/knee-wide", 1000, 0),
		entry("OpenLoopStep/knee-sharded-4", 1200, 0))
	slow.NumCPU = 8
	if bad := Compare(base, slow, NsTolerance); len(bad) != 1 || !strings.Contains(bad[0], "sequential twin") {
		t.Fatalf("slow sharded knee not caught on 8 CPUs: %v", bad)
	}
	slow.NumCPU = 2
	if bad := Compare(base, slow, NsTolerance); len(bad) != 0 {
		t.Fatalf("shard gate applied on a 2-CPU collector: %v", bad)
	}
	fast := report(100,
		entry("OpenLoopStep/knee-wide", 1000, 0),
		entry("OpenLoopStep/knee-sharded-4", 700, 0))
	fast.NumCPU = 8
	if bad := Compare(base, fast, NsTolerance); len(bad) != 0 {
		t.Fatalf("fast sharded knee flagged: %v", bad)
	}
}

// TestWideKneeWorkloadShape verifies the wide-knee operating point is
// usable as a benchmark: unsaturated (openLoop rejects saturated runs),
// and with a standing backlog large enough that the sharded variants
// engage the parallel stepper at the default activity cutoff — otherwise
// the three entries would measure the same sequential code path and the
// speedup ratchet would be vacuous.
func TestWideKneeWorkloadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 256-input knee; skipped in -short")
	}
	cfg := wideKneeConfig()
	cfg.Shards = 4
	r, err := traffic.NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated {
		t.Fatal("wide-knee operating point saturated; the bench workload would error")
	}
	if r.ShardedSteps() == 0 {
		t.Fatal("wide-knee backlog never engaged the sharded stepper at the default cutoff")
	}
}
