package butterfly

import (
	"fmt"
	"math"

	"wormhole/internal/rng"
)

// Params configures the Section 3.1 randomized q-relation routing
// algorithm.
type Params struct {
	N int // butterfly inputs (power of two)
	Q int // messages per input / per output
	L int // flits per message
	B int // virtual channels per edge
	// Beta scales the number of colors Δ = ⌈Beta·q'·(log n)^(1/B)/B⌉,
	// q' = max(q, log n). The paper requires a sufficiently large
	// constant; 0 means 1.0.
	Beta float64
	// Rounds overrides the round count; 0 means the paper's
	// 2·⌈log log(nq)⌉ + 1.
	Rounds int
	// Arb picks the subround tie-break (default ArbRandom, as the
	// algorithm is randomized).
	Arb Arb
	// Engine selects the subround executor. EngineLockstep (default)
	// uses the bucket-per-stage shortcut; EngineFlitLevel routes every
	// subround through the full vcsim flit simulator on the unrolled
	// two-pass butterfly. The two produce identical survivor sets under
	// deterministic arbitration (ArbFirst) — asserted by tests — so the
	// lockstep engine is a verified optimization, not an approximation.
	Engine Engine
}

// Engine selects how subrounds are simulated.
type Engine int8

const (
	// EngineLockstep is the fast bucket-per-stage executor.
	EngineLockstep Engine = iota
	// EngineFlitLevel runs each subround on the flit-level simulator.
	EngineFlitLevel
)

func (p Params) withDefaults() Params {
	if p.Beta == 0 {
		p.Beta = 1.0
	}
	if p.Rounds == 0 {
		p.Rounds = 2*ceilLogLog(p.N*p.Q) + 1
	}
	return p
}

// RoundStats records one round of the algorithm.
type RoundStats struct {
	Round       int
	Undelivered int // originals still undelivered before the round
	Copies      int // total copies routed this round
	Colors      int // Δ
	Delivered   int // originals first delivered during this round
	FlitSteps   int // Δ·L + 2·log n (pipelined subrounds)
	MaxPerInput int // copies held by the busiest input (Invariant 3.1.2 probe)
}

// Result summarizes a run of the Section 3.1 algorithm.
type Result struct {
	Params        Params
	AllDelivered  bool
	DeliveredMsgs int
	TotalMessages int
	FlitSteps     int // Σ rounds (Δ·L + 2·log n)
	Rounds        []RoundStats
}

// Bound evaluates the Theorem 3.1.1 running-time form
// L·(q+log n)·(log n)^(1/B)·log log(nq)/B (without its hidden constant).
func Bound(n, q, l, b int) float64 {
	ln := float64(log2(n))
	return float64(l) * (float64(q) + ln) * math.Pow(ln, 1/float64(b)) *
		math.Max(1, math.Log2(math.Max(2, math.Log2(float64(n*q))))) / float64(b)
}

// RunQRelation executes the Section 3.1 algorithm on the given demands
// (at most q per input column and per output column) and reports delivery
// and timing statistics.
//
// The algorithm (paper Section 3.1):
//  1. each round, every undelivered message doubles its copies (round 0
//     starts with ⌈log n / q⌉ copies when q < log n, per the theorem's
//     final remark, else 1);
//  2. every copy picks a color uniformly from Δ = ⌈β·q'·log^(1/B) n / B⌉;
//  3. the Δ subrounds are routed one per color, pipelined L+1 flit steps
//     apart; each copy makes two passes through the butterfly via a fresh
//     random intermediate column;
//  4. any copy delayed at a switch is discarded; undelivered messages are
//     retried next round.
//
// Time accounting follows the proof of Theorem 3.1.1: a round of Δ
// pipelined subrounds costs Δ·(L+1) + 2·log n flit steps. The paper
// pipelines subrounds exactly L apart; under this repository's
// conservative router (a freed buffer slot becomes visible one step after
// release) consecutive waves would touch at one stage, so the pipeline
// spacing carries a +1 correction — same asymptotics. The pipelining is
// legitimate because discarded worms leave the network instantly, so
// subrounds never interact; tests validate this against the full
// flit-level simulator.
func RunQRelation(pairs []ColPair, p Params, r *rng.Source) Result {
	p = p.withDefaults()
	k := log2(p.N)
	validateQRelation(pairs, p.N, p.Q)

	qEff := p.Q
	initCopies := 1
	if p.Q < k {
		// Duplicate so Θ(log n) messages originate per input.
		initCopies = (k + p.Q - 1) / p.Q
		qEff = k
	}
	delta := int(math.Ceil(p.Beta * float64(qEff) * math.Pow(float64(k), 1/float64(p.B)) / float64(p.B)))
	if delta < 1 {
		delta = 1
	}

	res := Result{Params: p, TotalMessages: len(pairs)}
	delivered := make([]bool, len(pairs))
	undelivered := len(pairs)

	copiesPer := initCopies
	for round := 0; round < p.Rounds && undelivered > 0; round++ {
		// Step 1: duplication (skip in round 0).
		if round > 0 {
			copiesPer *= 2
		}
		// Materialize the copies of undelivered originals.
		type copyRef struct {
			orig  int
			route TwoPassRoute
			color int
		}
		var copies []copyRef
		perInput := make(map[int]int)
		for i, pr := range pairs {
			if delivered[i] {
				continue
			}
			for c := 0; c < copiesPer; c++ {
				copies = append(copies, copyRef{
					orig: i,
					route: TwoPassRoute{
						Src: pr.Src,
						Mid: r.Intn(p.N), // step 3: fresh random intermediate
						Dst: pr.Dst,
					},
					color: r.Intn(delta), // step 2: random color
				})
				perInput[pr.Src]++
			}
		}
		maxPerInput := 0
		for _, c := range perInput {
			if c > maxPerInput {
				maxPerInput = c
			}
		}

		// Step 3: route the Δ subrounds.
		deliveredThisRound := 0
		byColor := make([][]int, delta)
		for ci := range copies {
			byColor[copies[ci].color] = append(byColor[copies[ci].color], ci)
		}
		for color := 0; color < delta; color++ {
			idxs := byColor[color]
			if len(idxs) == 0 {
				continue
			}
			routes := make([]TwoPassRoute, len(idxs))
			for j, ci := range idxs {
				routes[j] = copies[ci].route
			}
			var survivors []int
			switch p.Engine {
			case EngineLockstep:
				survivors = RunLockstepSubround(p.N, p.B, routes, p.Arb, r)
			case EngineFlitLevel:
				survivors = runFlitLevelSubround(p.N, p.B, p.L, routes, p.Arb, r)
			default:
				panic(fmt.Sprintf("butterfly: unknown engine %d", p.Engine))
			}
			for _, surv := range survivors {
				orig := copies[idxs[surv]].orig
				if !delivered[orig] {
					delivered[orig] = true
					deliveredThisRound++
				}
			}
		}
		undelivered -= deliveredThisRound

		steps := delta*(p.L+1) + 2*k
		res.FlitSteps += steps
		res.Rounds = append(res.Rounds, RoundStats{
			Round:       round,
			Undelivered: undelivered + deliveredThisRound,
			Copies:      len(copies),
			Colors:      delta,
			Delivered:   deliveredThisRound,
			FlitSteps:   steps,
			MaxPerInput: maxPerInput,
		})
	}

	res.DeliveredMsgs = len(pairs) - undelivered
	res.AllDelivered = undelivered == 0
	return res
}

// validateQRelation panics unless at most q messages originate at each
// input. Output overload is permitted: the paper's random routing problem
// may exceed q at an output, which only makes routing harder.
func validateQRelation(pairs []ColPair, n, q int) {
	perIn := make(map[int]int)
	for _, p := range pairs {
		validateCol(n, p.Src, "src")
		validateCol(n, p.Dst, "dst")
		perIn[p.Src]++
	}
	for col, c := range perIn {
		if c > q {
			panic(fmt.Sprintf("butterfly: input %d originates %d > q=%d messages", col, c, q))
		}
	}
}

// RandomQRelation draws a uniformly random q-relation on n columns: q
// independent random permutations stacked.
func RandomQRelation(n, q int, r *rng.Source) []ColPair {
	out := make([]ColPair, 0, n*q)
	for rep := 0; rep < q; rep++ {
		pi := r.Perm(n)
		for src, dst := range pi {
			out = append(out, ColPair{Src: src, Dst: dst})
		}
	}
	return out
}

// RandomDestinations draws the paper's random routing problem: each of the
// n inputs sends q messages to independent uniform outputs.
func RandomDestinations(n, q int, r *rng.Source) []ColPair {
	out := make([]ColPair, 0, n*q)
	for src := 0; src < n; src++ {
		for rep := 0; rep < q; rep++ {
			out = append(out, ColPair{Src: src, Dst: r.Intn(n)})
		}
	}
	return out
}

// ceilLogLog returns ⌈log2 log2 x⌉ clamped to ≥ 1.
func ceilLogLog(x int) int {
	if x < 4 {
		return 1
	}
	l := math.Log2(math.Log2(float64(x)))
	c := int(math.Ceil(l))
	if c < 1 {
		return 1
	}
	return c
}
