package butterfly

import (
	"testing"
	"testing/quick"

	"wormhole/internal/message"
	"wormhole/internal/rng"
	"wormhole/internal/topology"
	"wormhole/internal/vcsim"
)

func TestLockstepNoContentionAllSurvive(t *testing.T) {
	// B ≥ claimants everywhere: everything survives.
	n := 8
	r := rng.New(1)
	routes := []TwoPassRoute{{Src: 0, Mid: 3, Dst: 5}, {Src: 1, Mid: 6, Dst: 2}}
	surv := RunLockstepSubround(n, 4, routes, ArbRandom, r)
	if len(surv) != 2 {
		t.Fatalf("survivors = %v", surv)
	}
}

func TestLockstepIdenticalRoutesContend(t *testing.T) {
	// k identical routes share every edge; exactly B survive.
	n := 8
	r := rng.New(2)
	routes := make([]TwoPassRoute, 5)
	for i := range routes {
		routes[i] = TwoPassRoute{Src: 3, Mid: 6, Dst: 1}
	}
	for b := 1; b <= 5; b++ {
		surv := RunLockstepSubround(n, b, routes, ArbRandom, r)
		want := b
		if want > 5 {
			want = 5
		}
		if len(surv) != want {
			t.Fatalf("B=%d: %d survivors, want %d", b, len(surv), want)
		}
	}
}

func TestLockstepArbFirstDeterministic(t *testing.T) {
	n := 8
	routes := make([]TwoPassRoute, 4)
	for i := range routes {
		routes[i] = TwoPassRoute{Src: 2, Mid: 5, Dst: 7}
	}
	surv := RunLockstepSubround(n, 2, routes, ArbFirst, nil)
	if len(surv) != 2 || surv[0] != 0 || surv[1] != 1 {
		t.Fatalf("ArbFirst survivors = %v, want [0 1]", surv)
	}
}

// TestLockstepMatchesVCSim is the cross-validation at the heart of the
// Section 3.1 reproduction: the bucket-per-stage lockstep shortcut must
// produce exactly the same survivor set as the full flit-level simulator
// in drop-on-delay mode under the same deterministic arbitration.
func TestLockstepMatchesVCSim(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 8 << (seed % 2) // 8 or 16
		k := topology.Log2(n)
		b := 1 + int(seed%3)
		l := 2 + int(seed%5)
		m := 2 + r.Intn(3*n)
		routes := make([]TwoPassRoute, m)
		for i := range routes {
			routes[i] = TwoPassRoute{Src: r.Intn(n), Mid: r.Intn(n), Dst: r.Intn(n)}
		}

		lockstep := RunLockstepSubround(n, b, routes, ArbFirst, nil)

		tp := topology.NewTwoPassButterfly(n)
		set := TwoPassPathEndpoints(tp, routes, l)
		res := vcsim.Run(set, nil, vcsim.Config{
			VirtualChannels: b,
			DropOnDelay:     true,
			Arbitration:     vcsim.ArbByID,
			CheckInvariants: true,
		})
		simSurv := res.DeliveredIDs()

		if len(simSurv) != len(lockstep) {
			t.Logf("seed %d: lockstep %d vs vcsim %d (n=%d b=%d m=%d)",
				seed, len(lockstep), len(simSurv), n, b, m)
			return false
		}
		for i := range lockstep {
			if int(simSurv[i]) != lockstep[i] {
				t.Logf("seed %d: survivor sets differ at %d", seed, i)
				return false
			}
		}
		// Survivors are never delayed: they arrive at exactly 2k+l−1.
		for _, id := range simSurv {
			if res.PerMessage[id].DeliverTime != 2*k+l-1 {
				t.Logf("seed %d: survivor %d arrived at %d, want %d",
					seed, id, res.PerMessage[id].DeliverTime, 2*k+l-1)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPipelinedSubroundsDoNotInteract validates the time accounting of
// Theorem 3.1.1: subrounds released L+1 flit steps apart behave exactly
// as if run in isolation, because drop-on-delay removes any delayed worm
// instantly and consecutive waves stay strictly more than one level
// apart. (The paper pipelines exactly L apart; the +1 compensates for the
// conservative next-step visibility of buffer releases in vcsim.)
func TestPipelinedSubroundsDoNotInteract(t *testing.T) {
	r := rng.New(33)
	n, b, l := 16, 2, 4
	tp := topology.NewTwoPassButterfly(n)
	const waves = 4
	var all []TwoPassRoute
	var isolated [][]int
	for w := 0; w < waves; w++ {
		routes := make([]TwoPassRoute, 3*n)
		for i := range routes {
			routes[i] = TwoPassRoute{Src: r.Intn(n), Mid: r.Intn(n), Dst: r.Intn(n)}
		}
		all = append(all, routes...)
		isolated = append(isolated, RunLockstepSubround(n, b, routes, ArbFirst, nil))
	}
	set := TwoPassPathEndpoints(tp, all, l)
	releases := make([]int, set.Len())
	for i := range releases {
		releases[i] = (i / (3 * n)) * (l + 1)
	}
	res := vcsim.Run(set, releases, vcsim.Config{
		VirtualChannels: b,
		DropOnDelay:     true,
		Arbitration:     vcsim.ArbByID,
		CheckInvariants: true,
	})
	// Compare the pipelined run's per-wave survivors with isolation.
	for w := 0; w < waves; w++ {
		var got []int
		for i := 0; i < 3*n; i++ {
			id := w*3*n + i
			if res.PerMessage[id].Status == vcsim.StatusDelivered {
				got = append(got, i)
			}
		}
		if len(got) != len(isolated[w]) {
			t.Fatalf("wave %d: pipelined %d survivors vs isolated %d", w, len(got), len(isolated[w]))
		}
		for i := range got {
			if got[i] != isolated[w][i] {
				t.Fatalf("wave %d survivor mismatch", w)
			}
		}
	}
}

func TestRunQRelationDeliversEverything(t *testing.T) {
	for _, tc := range []struct{ n, q, b int }{
		{64, 1, 1}, {64, 6, 1}, {64, 6, 2}, {128, 7, 3},
	} {
		r := rng.New(uint64(tc.n*tc.q*tc.b) + 7)
		pairs := RandomQRelation(tc.n, tc.q, r)
		res := RunQRelation(pairs, Params{
			N: tc.n, Q: tc.q, L: topology.Log2(tc.n), B: tc.b,
		}, r)
		if !res.AllDelivered {
			t.Errorf("n=%d q=%d B=%d: %d/%d delivered after %d rounds",
				tc.n, tc.q, tc.b, res.DeliveredMsgs, res.TotalMessages, len(res.Rounds))
		}
		if res.FlitSteps <= 0 {
			t.Errorf("n=%d q=%d B=%d: nonpositive flit steps", tc.n, tc.q, tc.b)
		}
	}
}

func TestRunQRelationRoundAccounting(t *testing.T) {
	n, q, b := 64, 6, 2
	r := rng.New(11)
	pairs := RandomQRelation(n, q, r)
	res := RunQRelation(pairs, Params{N: n, Q: q, L: 6, B: b}, r)
	k := topology.Log2(n)
	sum := 0
	for _, round := range res.Rounds {
		if want := round.Colors*(6+1) + 2*k; round.FlitSteps != want {
			t.Errorf("round %d: %d flit steps, want Δ·(L+1)+2·log n = %d",
				round.Round, round.FlitSteps, want)
		}
		sum += round.FlitSteps
	}
	if sum != res.FlitSteps {
		t.Errorf("total %d ≠ Σ rounds %d", res.FlitSteps, sum)
	}
}

func TestRunQRelationColorsScaleWithB(t *testing.T) {
	n, q := 64, 8
	var prev int
	for i, b := range []int{1, 2, 4} {
		r := rng.New(5)
		pairs := RandomQRelation(n, q, r)
		res := RunQRelation(pairs, Params{N: n, Q: q, L: 6, B: b}, r)
		if len(res.Rounds) == 0 {
			t.Fatal("no rounds")
		}
		colors := res.Rounds[0].Colors
		if i > 0 && colors >= prev {
			t.Errorf("B=%d: Δ=%d did not shrink from %d", b, colors, prev)
		}
		prev = colors
	}
}

func TestRunQRelationSmallQDuplicates(t *testing.T) {
	// q < log n: round 0 must carry ⌈log n/q⌉ copies per message.
	n, q := 64, 1
	r := rng.New(9)
	pairs := RandomQRelation(n, q, r)
	res := RunQRelation(pairs, Params{N: n, Q: q, L: 6, B: 2}, r)
	if len(res.Rounds) == 0 {
		t.Fatal("no rounds")
	}
	if want := topology.Log2(n) * n; res.Rounds[0].Copies != want {
		t.Errorf("round-0 copies = %d, want %d", res.Rounds[0].Copies, want)
	}
}

// TestInvariant312 probes the paper's Invariant 3.1.2: after the
// duplication step of every round, the number of copies held by any
// input stays O(q) — at least half of each round's survivors deliver, so
// doubling never compounds. The deterministic assertion uses a generous
// 2q ceiling (the paper proves ≤ q w.h.p.).
func TestInvariant312(t *testing.T) {
	n, q := 128, 8
	r := rng.New(13)
	pairs := RandomQRelation(n, q, r)
	res := RunQRelation(pairs, Params{N: n, Q: q, L: 7, B: 2}, r)
	if !res.AllDelivered {
		t.Fatal("undelivered")
	}
	for _, round := range res.Rounds {
		if round.MaxPerInput > 2*q {
			t.Errorf("round %d: input holds %d copies > 2q=%d — Invariant 3.1.2 badly violated",
				round.Round, round.MaxPerInput, 2*q)
		}
	}
}

// TestEnginesAgree runs the complete Section 3.1 algorithm under both
// subround engines with deterministic arbitration and the same seed: the
// per-round delivery trajectories must match exactly, certifying the
// lockstep engine as a faithful optimization of the flit-level model.
func TestEnginesAgree(t *testing.T) {
	n, q, b := 32, 4, 2
	run := func(engine Engine) Result {
		r := rng.New(77)
		pairs := RandomQRelation(n, q, r)
		return RunQRelation(pairs, Params{
			N: n, Q: q, L: 5, B: b,
			Arb:    ArbFirst,
			Engine: engine,
		}, r)
	}
	lock := run(EngineLockstep)
	flit := run(EngineFlitLevel)
	if lock.DeliveredMsgs != flit.DeliveredMsgs || lock.FlitSteps != flit.FlitSteps {
		t.Fatalf("engines disagree: lockstep %d/%d steps %d, flit-level %d/%d steps %d",
			lock.DeliveredMsgs, lock.TotalMessages, lock.FlitSteps,
			flit.DeliveredMsgs, flit.TotalMessages, flit.FlitSteps)
	}
	if len(lock.Rounds) != len(flit.Rounds) {
		t.Fatalf("round counts differ: %d vs %d", len(lock.Rounds), len(flit.Rounds))
	}
	for i := range lock.Rounds {
		if lock.Rounds[i].Delivered != flit.Rounds[i].Delivered ||
			lock.Rounds[i].Copies != flit.Rounds[i].Copies {
			t.Fatalf("round %d differs: %+v vs %+v", i, lock.Rounds[i], flit.Rounds[i])
		}
	}
}

func TestRunQRelationValidatesInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for overloaded input")
		}
	}()
	pairs := []ColPair{{0, 1}, {0, 2}, {0, 3}}
	RunQRelation(pairs, Params{N: 8, Q: 2, L: 4, B: 1}, rng.New(1))
}

func TestBoundMonotone(t *testing.T) {
	prev := 1e18
	for b := 1; b <= 6; b++ {
		v := Bound(1024, 10, 10, b)
		if v >= prev {
			t.Fatalf("Bound not decreasing at B=%d", b)
		}
		prev = v
	}
}

func TestOnePassDeliversAll(t *testing.T) {
	bf := topology.NewButterfly(32)
	r := rng.New(6)
	pairs := RandomDestinations(32, 4, r)
	for _, b := range []int{1, 2, 4} {
		res := RunOnePass(bf, pairs, 5, b, vcsim.ArbByID, 1)
		if res.Delivered != res.Messages {
			t.Fatalf("B=%d: %d/%d delivered", b, res.Delivered, res.Messages)
		}
		if res.Steps < 5+5-1 {
			t.Fatalf("B=%d: steps %d below floor", b, res.Steps)
		}
	}
}

func TestOnePassFasterWithMoreChannels(t *testing.T) {
	bf := topology.NewButterfly(64)
	r := rng.New(12)
	pairs := RandomDestinations(64, 8, r)
	prev := 1 << 30
	for _, b := range []int{1, 2, 4} {
		res := RunOnePass(bf, pairs, 6, b, vcsim.ArbByID, 1)
		if res.Steps > prev {
			t.Fatalf("B=%d slower (%d) than smaller B (%d)", b, res.Steps, prev)
		}
		prev = res.Steps
	}
}

func TestCollisionFractionMonotoneInS(t *testing.T) {
	bf := topology.NewButterfly(32)
	r := rng.New(8)
	pairs := RandomDestinations(32, 4, r)
	small := CollisionFraction(bf, pairs, 5, 1, 4, 40, r)
	large := CollisionFraction(bf, pairs, 5, 1, 64, 40, r)
	if large < small {
		t.Errorf("collision fraction fell with subset size: %v → %v", small, large)
	}
	if large < 0.9 {
		t.Errorf("64 of 128 messages at B=1 should almost surely collide (got %v)", large)
	}
}

func TestCollisionThreshold(t *testing.T) {
	bf := topology.NewButterfly(32)
	r := rng.New(4)
	pairs := RandomDestinations(32, 4, r)
	s1 := CollisionThreshold(bf, pairs, 5, 1, 20, 0.95, r)
	s2 := CollisionThreshold(bf, pairs, 5, 2, 20, 0.95, r)
	if s1 < 2 || s1 > len(pairs) {
		t.Errorf("threshold B=1 out of range: %d", s1)
	}
	if s2 <= s1 {
		t.Errorf("threshold must grow with B: B=1 %d, B=2 %d", s1, s2)
	}
}

func TestPhasePartition(t *testing.T) {
	bf := topology.NewButterfly(32)
	r := rng.New(3)
	pairs := RandomDestinations(32, 4, r)
	msgSet := onePassSet(bf, pairs, 5)
	res := vcsim.Run(msgSet, nil, vcsim.Config{VirtualChannels: 2})
	largest, phases := PhasePartition(res, 5, 5)
	total := 0
	for _, c := range phases {
		total += c
	}
	if total != res.Delivered {
		t.Errorf("phases cover %d, delivered %d", total, res.Delivered)
	}
	if largest <= 0 {
		t.Error("largest phase must be positive")
	}
	// The Theorem 3.2.6 floor: some phase holds ≥ messages·L/T.
	floor := float64(msgSet.Len()) * 5 / float64(res.Steps)
	if float64(largest) < floor-1 {
		t.Errorf("largest phase %d below nqL/T floor %v", largest, floor)
	}
	sizes := SortedPhaseSizes(phases)
	for i := 1; i < len(sizes); i++ {
		if sizes[i] > sizes[i-1] {
			t.Fatal("SortedPhaseSizes not descending")
		}
	}
}

func TestRandomWorkloadGenerators(t *testing.T) {
	r := rng.New(10)
	pairs := RandomQRelation(16, 3, r)
	if len(pairs) != 48 {
		t.Fatalf("q-relation size %d", len(pairs))
	}
	perIn := map[int]int{}
	perOut := map[int]int{}
	for _, p := range pairs {
		perIn[p.Src]++
		perOut[p.Dst]++
	}
	for _, c := range perIn {
		if c != 3 {
			t.Fatal("q-relation per-input count")
		}
	}
	for _, c := range perOut {
		if c != 3 {
			t.Fatal("q-relation per-output count")
		}
	}
	rd := RandomDestinations(16, 2, r)
	if len(rd) != 32 {
		t.Fatalf("random destinations size %d", len(rd))
	}
}

func TestTheoreticalCollisionSizePositive(t *testing.T) {
	for b := 1; b <= 4; b++ {
		if TheoreticalCollisionSize(1024, 10, 10, b) <= 0 {
			t.Fatalf("B=%d: nonpositive collision size", b)
		}
	}
}

// onePassSet builds the message set of one-pass bit-fixing paths (test
// helper mirroring core.butterflySet).
func onePassSet(bf *topology.Butterfly, pairs []ColPair, l int) *message.Set {
	set := message.NewSet(bf.G)
	for _, p := range pairs {
		set.Add(bf.Input(p.Src), bf.Output(p.Dst), l, bf.Route(p.Src, p.Dst))
	}
	return set
}
