package butterfly

import (
	"sync"

	"wormhole/internal/rng"
	"wormhole/internal/topology"
	"wormhole/internal/vcsim"
)

// twoPassCache memoizes unrolled two-pass butterfly graphs by size: the
// flit-level engine builds one per n and reuses it across subrounds and
// rounds (the graph is immutable once built).
var twoPassCache sync.Map // int → *topology.TwoPassButterfly

func cachedTwoPass(n int) *topology.TwoPassButterfly {
	if v, ok := twoPassCache.Load(n); ok {
		return v.(*topology.TwoPassButterfly)
	}
	tp := topology.NewTwoPassButterfly(n)
	actual, _ := twoPassCache.LoadOrStore(n, tp)
	return actual.(*topology.TwoPassButterfly)
}

// runFlitLevelSubround executes one subround on the full flit-level
// simulator: all worms injected at time 0 into the unrolled two-pass
// butterfly with drop-on-delay, B virtual channels, and the requested
// arbitration. It returns surviving indices in ascending order,
// matching RunLockstepSubround's contract.
func runFlitLevelSubround(n, b, l int, routes []TwoPassRoute, arb Arb, r *rng.Source) []int {
	tp := cachedTwoPass(n)
	set := TwoPassPathEndpoints(tp, routes, l)
	cfg := vcsim.Config{
		VirtualChannels: b,
		DropOnDelay:     true,
	}
	switch arb {
	case ArbFirst:
		cfg.Arbitration = vcsim.ArbByID
	case ArbRandom:
		cfg.Arbitration = vcsim.ArbRandom
		cfg.Seed = r.Uint64()
	}
	res := vcsim.Run(set, nil, cfg)
	ids := res.DeliveredIDs()
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out
}
