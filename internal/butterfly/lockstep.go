// Package butterfly implements the paper's Section 3 butterfly-network
// algorithms: the randomized two-pass q-relation routing algorithm of
// Section 3.1 (Theorem 3.1.1) and the one-pass routing experiment matching
// the Section 3.2 lower bound (Theorem 3.2.1), together with the collision
// and phase-partition analyses their proofs rest on.
package butterfly

import (
	"fmt"

	"wormhole/internal/rng"
)

// ColPair is a routing demand between butterfly endpoint columns: a message
// originates at input column Src and must reach output column Dst.
type ColPair struct {
	Src int
	Dst int
}

// TwoPassRoute names the three columns that determine a two-pass worm's
// path: source, random intermediate (reached at level log n), destination.
type TwoPassRoute struct {
	Src, Mid, Dst int
}

// Arb selects how a lockstep subround breaks ties when more than B
// messages claim one edge.
type Arb int8

const (
	// ArbRandom keeps B uniformly chosen claimants (the algorithm's
	// default; it is the zero value).
	ArbRandom Arb = iota
	// ArbFirst keeps the B claimants with the lowest indices
	// (deterministic; matches vcsim's ArbByID for cross-validation).
	ArbFirst
)

// RunLockstepSubround routes a batch of two-pass worms through an n-input
// butterfly in lockstep and returns the indices of survivors (ascending).
//
// All worms of a subround are injected simultaneously, so their headers
// move through the levels in lockstep: at stage t every live header claims
// one stage-t edge. An edge claimed by more than B headers delays the
// excess, and the Section 3.1 algorithm discards any delayed worm, so
// exactly min(B, claimants) survive at each edge. This collapses the
// flit-level simulation to one bucket pass per stage; the equivalence with
// the full vcsim drop-on-delay simulation is asserted by tests.
func RunLockstepSubround(n, b int, copies []TwoPassRoute, arb Arb, r *rng.Source) []int {
	return runLockstepStages(n, b, copies, 2*log2(n), arb, r)
}

// RunLockstepOnePass routes single-pass bit-fixing worms (input column →
// output column) through an n-input butterfly with per-edge capacity b,
// killing the excess at every stage, and returns the surviving indices.
// This is exactly Koch's circuit-switching experiment when worms lock
// their whole path down the butterfly.
func RunLockstepOnePass(n, b int, pairs []ColPair, arb Arb, r *rng.Source) []int {
	routes := make([]TwoPassRoute, len(pairs))
	for i, p := range pairs {
		routes[i] = TwoPassRoute{Src: p.Src, Mid: p.Dst, Dst: p.Dst}
	}
	return runLockstepStages(n, b, routes, log2(n), arb, r)
}

// runLockstepStages simulates the first `stages` stages of the two-pass
// lockstep contention process. Stage t (0-based) fixes butterfly bit
// (t mod log n)+1 toward the intermediate column during the first pass and
// toward the destination during the second.
func runLockstepStages(n, b int, copies []TwoPassRoute, stages int, arb Arb, r *rng.Source) []int {
	if b < 1 {
		panic(fmt.Sprintf("butterfly: B %d < 1", b))
	}
	k := log2(n)
	if stages > 2*k {
		panic(fmt.Sprintf("butterfly: %d stages exceed two passes (%d)", stages, 2*k))
	}
	alive := make([]bool, len(copies))
	cur := make([]int, len(copies))
	for i, c := range copies {
		validateCol(n, c.Src, "src")
		validateCol(n, c.Mid, "mid")
		validateCol(n, c.Dst, "dst")
		alive[i] = true
		cur[i] = c.Src
	}

	// Buckets keyed by the (tail, head) columns of the claimed edge; the
	// stage index is implicit because buckets are cleared per stage.
	type bucketKey struct{ tail, head int }
	order := make([]bucketKey, 0, len(copies))
	buckets := make(map[bucketKey][]int, len(copies))

	for stage := 0; stage < stages; stage++ {
		bit := stage%k + 1
		order = order[:0]
		clear(buckets)
		for i := range copies {
			if !alive[i] {
				continue
			}
			target := copies[i].Mid
			if stage >= k {
				target = copies[i].Dst
			}
			next := setBitTo(cur[i], k, bit, bitAt(target, k, bit))
			key := bucketKey{tail: cur[i], head: next}
			if _, seen := buckets[key]; !seen {
				order = append(order, key)
			}
			buckets[key] = append(buckets[key], i)
			cur[i] = next
		}
		for _, key := range order {
			claim := buckets[key]
			if len(claim) <= b {
				continue
			}
			switch arb {
			case ArbFirst:
				for _, i := range claim[b:] {
					alive[i] = false
				}
			case ArbRandom:
				perm := r.Perm(len(claim))
				for _, pi := range perm[b:] {
					alive[claim[pi]] = false
				}
			default:
				panic(fmt.Sprintf("butterfly: unknown arbitration %d", arb))
			}
		}
	}

	var survivors []int
	for i := range copies {
		if alive[i] {
			survivors = append(survivors, i)
		}
	}
	return survivors
}

func validateCol(n, c int, what string) {
	if c < 0 || c >= n {
		panic(fmt.Sprintf("butterfly: %s column %d out of range [0,%d)", what, c, n))
	}
}

// --- bit helpers (paper numbering: bit 1 = most significant) ----------------

func bitAt(w, k, pos int) int { return (w >> (k - pos)) & 1 }

func setBitTo(w, k, pos, v int) int {
	mask := 1 << (k - pos)
	if v == 0 {
		return w &^ mask
	}
	return w | mask
}

func log2(n int) int {
	if n < 2 || n&(n-1) != 0 {
		panic(fmt.Sprintf("butterfly: size %d is not a power of two ≥ 2", n))
	}
	k := 0
	for v := n; v > 1; v >>= 1 {
		k++
	}
	return k
}
