package butterfly

import (
	"math"
	"sort"

	"wormhole/internal/analysis"
	"wormhole/internal/message"
	"wormhole/internal/rng"
	"wormhole/internal/topology"
	"wormhole/internal/vcsim"
)

// OnePassResult reports a run of the greedy one-pass router — the class of
// algorithms the Section 3.2 lower bound covers.
type OnePassResult struct {
	Steps       int // flit steps to deliver everything
	Delivered   int
	Messages    int
	TotalStalls int
	Bound       float64 // Theorem 3.2.1 form L·q·l^(1/B)/B
}

// RunOnePass routes the demands down an n-input butterfly along their
// unique bit-fixing paths using greedy blocking wormhole routing with B
// virtual channels, all messages injected at time 0. The butterfly is a
// leveled DAG, so the run is deadlock-free; it terminates when every worm
// has drained.
func RunOnePass(bf *topology.Butterfly, pairs []ColPair, l, b int, policy vcsim.Policy, seed uint64) OnePassResult {
	set := message.NewSet(bf.G)
	for _, p := range pairs {
		set.Add(bf.Input(p.Src), bf.Output(p.Dst), l, bf.Route(p.Src, p.Dst))
	}
	res := vcsim.Run(set, nil, vcsim.Config{
		VirtualChannels: b,
		Arbitration:     policy,
		Seed:            seed,
	})
	if res.Deadlocked {
		panic("butterfly: one-pass routing deadlocked on a leveled DAG")
	}
	q := (len(pairs) + bf.Inputs - 1) / bf.Inputs
	return OnePassResult{
		Steps:       res.Steps,
		Delivered:   res.Delivered,
		Messages:    set.Len(),
		TotalStalls: res.TotalStalls,
		Bound:       OnePassBound(bf.Inputs, q, l, b),
	}
}

// OnePassBound evaluates the Theorem 3.2.1 lower-bound form
// L·q·l^(1/B)/B with l = min(L, log n) (the slowly growing w₂ factor is
// dropped, as the experiments compare shapes, not constants).
func OnePassBound(n, q, l, b int) float64 {
	ll := math.Min(float64(l), float64(log2(n)))
	return float64(l) * float64(q) * math.Pow(ll, 1/float64(b)) / float64(b)
}

// CollisionFraction estimates, by sampling, the probability that a uniform
// random s-subset of the messages collides — i.e., contains B+1 messages
// whose bit-fixing paths share an edge (Definition 3.2.2). Theorem 3.2.5
// asserts this tends to 1 once s reaches ≈ 3·B·n·log^(2/B)(q log n)/l^(1/(B+1)).
func CollisionFraction(bf *topology.Butterfly, pairs []ColPair, l, b, s, trials int, r *rng.Source) float64 {
	if s > len(pairs) {
		s = len(pairs)
	}
	set := message.NewSet(bf.G)
	for _, p := range pairs {
		truncated := bf.Route(p.Src, p.Dst)
		if l < len(truncated) {
			// The proof works on the truncated butterfly: only the first
			// l = min(L, log n) levels matter.
			truncated = truncated[:l]
			dst := bf.G.Edge(truncated[len(truncated)-1]).Head
			set.Add(bf.Input(p.Src), dst, l, truncated)
			continue
		}
		set.Add(bf.Input(p.Src), bf.Output(p.Dst), l, truncated)
	}
	hits := 0
	ids := make([]message.ID, s)
	for t := 0; t < trials; t++ {
		for j, idx := range r.Sample(len(pairs), s) {
			ids[j] = message.ID(idx)
		}
		sub, _ := set.Subset(ids)
		if analysis.CollidingSubset(sub, b) != nil {
			hits++
		}
	}
	return float64(hits) / float64(trials)
}

// CollisionThreshold binary-searches the smallest subset size s at which
// the sampled collision fraction reaches the given confidence (e.g. 0.99),
// between 1 and len(pairs). It returns len(pairs)+1 if even the full set
// does not collide.
func CollisionThreshold(bf *topology.Butterfly, pairs []ColPair, l, b, trials int, conf float64, r *rng.Source) int {
	lo, hi := b+1, len(pairs)
	if CollisionFraction(bf, pairs, l, b, hi, trials, r) < conf {
		return hi + 1
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if CollisionFraction(bf, pairs, l, b, mid, trials, r) >= conf {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// TheoreticalCollisionSize evaluates the s of Theorem 3.2.5:
// 3·B·n·log^(2/B)(q·log n) / l^(1/(B+1)).
func TheoreticalCollisionSize(n, q, l, b int) float64 {
	ln := float64(log2(n))
	lg := math.Log2(math.Max(2, float64(q)*ln))
	ll := math.Min(float64(l), ln)
	return 3 * float64(b) * float64(n) * math.Pow(lg, 2/float64(b)) / math.Pow(ll, 1/float64(b+1))
}

// PhasePartition applies the Theorem 3.2.6 argument to a finished run:
// bucket messages by header arrival time into phases of width L starting
// at offset l, and return the size of the largest phase. The theorem
// guarantees some phase holds ≥ nqL/T messages, and the messages of one
// phase are delivered without colliding — the hinge of the lower bound.
func PhasePartition(res vcsim.Result, l, L int) (largest int, phases map[int]int) {
	phases = make(map[int]int)
	for i := range res.PerMessage {
		st := res.PerMessage[i]
		if st.Status != vcsim.StatusDelivered {
			continue
		}
		// Header arrival is deliver − (L−1) for an L-flit worm.
		h := st.DeliverTime - (L - 1)
		ph := 0
		if h > l {
			ph = (h - l + L - 1) / L
		}
		phases[ph]++
		if phases[ph] > largest {
			largest = phases[ph]
		}
	}
	return largest, phases
}

// SortedPhaseSizes returns the phase occupancy counts in descending order
// (diagnostic helper for the experiment tables).
func SortedPhaseSizes(phases map[int]int) []int {
	out := make([]int, 0, len(phases))
	for _, c := range phases {
		out = append(out, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// TwoPassPathEndpoints builds the message set for one subround on the
// unrolled two-pass butterfly graph — used by tests to cross-validate the
// lockstep simulation against the full flit-level simulator.
func TwoPassPathEndpoints(t *topology.TwoPassButterfly, routes []TwoPassRoute, l int) *message.Set {
	set := message.NewSet(t.G)
	for _, rt := range routes {
		p := t.Route(rt.Src, rt.Mid, rt.Dst)
		set.Add(t.Input(rt.Src), t.Output(rt.Dst), l, p)
	}
	return set
}
