package core

import (
	"fmt"

	"wormhole/internal/butterfly"
	"wormhole/internal/graph"
	"wormhole/internal/message"
	"wormhole/internal/rng"
	"wormhole/internal/routeopt"
	"wormhole/internal/schedule"
	"wormhole/internal/stats"
	"wormhole/internal/topology"
	"wormhole/internal/vcsim"
)

// A1Arbitration measures whether the one-pass lower-bound shape (T4)
// depends on the router's arbitration policy.
func A1Arbitration(cfg Config) []*stats.Table {
	n, q := 256, 8
	if cfg.Quick {
		n, q = 64, 6
	}
	l := topology.Log2(n)
	bf := topology.NewButterfly(n)
	r := rng.New(cfg.Seed)
	pairs := butterfly.RandomDestinations(n, q, r)

	type job struct {
		b   int
		pol vcsim.Policy
	}
	var jobs []job
	for _, b := range []int{1, 2, 4} {
		for _, pol := range []vcsim.Policy{vcsim.ArbByID, vcsim.ArbRandom, vcsim.ArbAge} {
			jobs = append(jobs, job{b, pol})
		}
	}
	type out struct {
		steps, stalls int
	}
	outs := mapJobs(cfg, len(jobs), func(i int) out {
		res := butterfly.RunOnePass(bf, pairs, l, jobs[i].b, jobs[i].pol, cfg.Seed)
		return out{steps: res.Steps, stalls: res.TotalStalls}
	})
	t := stats.NewTable(
		"A1 — ablation: arbitration policy on greedy one-pass routing",
		"policy", "B", "steps", "stalls")
	for i, o := range outs {
		t.AddRow(jobs[i].pol.String(), jobs[i].b, o.steps, o.stalls)
	}
	return []*stats.Table{t}
}

// A2Resample compares whole-refinement rejection sampling with
// violated-class-only (Moser–Tardos style) resampling in the LLL
// scheduler.
func A2Resample(cfg Config) []*stats.Table {
	p := ButterflyQRelation(64, 8, 24, cfg.Seed)
	if !cfg.Quick {
		p = ButterflyQRelation(256, 16, 48, cfg.Seed)
	}
	type job struct {
		b     int
		whole bool
	}
	var jobs []job
	for _, b := range []int{1, 2, 4} {
		jobs = append(jobs, job{b, false}, job{b, true})
	}
	type out struct {
		classes, attempts int
		escalated         bool
	}
	outs := mapJobs(cfg, len(jobs), func(i int) out {
		sched, err := schedule.Build(p.Set, schedule.Options{
			B:             jobs[i].b,
			ConstantScale: DefaultConstantScale,
			ResampleWhole: jobs[i].whole,
		}, rng.New(cfg.Seed))
		if err != nil {
			panic(fmt.Sprintf("A2: %v", err))
		}
		o := out{classes: sched.NumClasses}
		for _, st := range sched.Steps {
			o.attempts += st.Attempts
			o.escalated = o.escalated || st.Escalated
		}
		return o
	})
	t := stats.NewTable(
		"A2 — ablation: resampling granularity in the LLL scheduler",
		"mode", "B", "classes", "attempts", "escalated")
	for i, o := range outs {
		mode := "violated-only"
		if jobs[i].whole {
			mode = "whole"
		}
		t.AddRow(mode, jobs[i].b, o.classes, o.attempts, o.escalated)
	}
	return []*stats.Table{t}
}

// A3Drop compares drop-on-delay against blocking within a single subround
// batch: dropping loses messages but finishes in exactly 2·log n + L − 1
// steps; blocking delivers everything but stretches the makespan.
func A3Drop(cfg Config) []*stats.Table {
	n, q := 64, 8
	if !cfg.Quick {
		n, q = 256, 8
	}
	k := topology.Log2(n)
	l := k
	tp := topology.NewTwoPassButterfly(n)
	r := rng.New(cfg.Seed)

	routes := make([]butterfly.TwoPassRoute, 0, n*q)
	for src := 0; src < n; src++ {
		for j := 0; j < q; j++ {
			routes = append(routes, butterfly.TwoPassRoute{
				Src: src, Mid: r.Intn(n), Dst: r.Intn(n),
			})
		}
	}
	set := butterfly.TwoPassPathEndpoints(tp, routes, l)

	// Two jobs per B: the drop-on-delay run and the blocking run.
	type job struct {
		b    int
		drop bool
	}
	var jobs []job
	for _, b := range []int{1, 2, 4} {
		jobs = append(jobs, job{b, true}, job{b, false})
	}
	outs := mapJobs(cfg, len(jobs), func(i int) vcsim.Result {
		return vcsim.Run(set, nil, vcsim.Config{
			VirtualChannels: jobs[i].b, DropOnDelay: jobs[i].drop,
			Arbitration: vcsim.ArbRandom, Seed: cfg.Seed,
			Metrics: cfg.metrics(),
		})
	})
	t := stats.NewTable(
		"A3 — ablation: drop-on-delay vs blocking for one subround batch",
		"mode", "B", "delivered", "dropped", "steps")
	for i, res := range outs {
		mode := "blocking"
		if jobs[i].drop {
			mode = "drop-on-delay"
		}
		t.AddRow(mode, jobs[i].b, res.Delivered, res.Dropped, res.Steps)
	}
	return []*stats.Table{t}
}

// A4Passes compares one-pass and two-pass routing at equal hardware on a
// worst-case permutation: Valiant's random intermediate destinations
// spread the bit-reversal hotspot.
func A4Passes(cfg Config) []*stats.Table {
	n := 64
	if !cfg.Quick {
		n = 256
	}

	// Bit-reversal: the classic adversarial permutation for bit-fixing.
	pairs := make([]butterfly.ColPair, n)
	k := topology.Log2(n)
	for w := 0; w < n; w++ {
		rev := 0
		for b := 0; b < k; b++ {
			if w&(1<<b) != 0 {
				rev |= 1 << (k - 1 - b)
			}
		}
		pairs[w] = butterfly.ColPair{Src: w, Dst: rev}
	}

	// Two jobs per B (one-pass, two-pass). Each job owns a child source
	// pre-split from the experiment seed by index, so the randomized runs
	// stay deterministic under any worker count.
	type job struct {
		b       int
		twoPass bool
	}
	var jobs []job
	for _, b := range []int{1, 2, 4} {
		jobs = append(jobs, job{b, false}, job{b, true})
	}
	srcs := jobSources(cfg.Seed, len(jobs))
	survivors := mapJobs(cfg, len(jobs), func(i int) int {
		b, jr := jobs[i].b, srcs[i]
		if !jobs[i].twoPass {
			return len(butterfly.RunLockstepOnePass(n, b, pairs, butterfly.ArbRandom, jr))
		}
		routes := make([]butterfly.TwoPassRoute, n)
		for j, p := range pairs {
			routes[j] = butterfly.TwoPassRoute{Src: p.Src, Mid: jr.Intn(n), Dst: p.Dst}
		}
		return len(butterfly.RunLockstepSubround(n, b, routes, butterfly.ArbRandom, jr))
	})
	t := stats.NewTable(
		"A4 — ablation: one-pass vs two-pass delivery on bit-reversal",
		"mode", "B", "survivors", "fraction")
	for i, s := range survivors {
		mode := "one-pass"
		if jobs[i].twoPass {
			mode = "two-pass"
		}
		t.AddRow(mode, jobs[i].b, s, float64(s)/float64(n))
	}
	return []*stats.Table{t}
}

// A5PathSelection measures the end-to-end effect of congestion-aware
// path selection (the Srinivasan–Teo theme the paper cites): lower C
// feeds straight through the Theorem 2.1.6 scheduler into shorter
// verified schedules.
func A5PathSelection(cfg Config) []*stats.Table {
	side := 8
	msgs := 96
	if !cfg.Quick {
		side = 16
		msgs = 512
	}
	m := topology.NewMesh(side, side)
	r := rng.New(cfg.Seed)
	// Skewed traffic: half the messages target one column, half uniform.
	var pairs []message.Endpoints
	for i := 0; i < msgs; i++ {
		src := graph.NodeID(r.Intn(side * side))
		var dst graph.NodeID
		if i%2 == 0 {
			dst = m.Node(side-1, r.Intn(side))
		} else {
			dst = graph.NodeID(r.Intn(side * side))
		}
		if src == dst {
			continue
		}
		pairs = append(pairs, message.Endpoints{Src: src, Dst: dst})
	}
	l := 2 * side

	// One job per path selector; each builds its own message set, so the
	// three schedule-and-verify pipelines are independent.
	selectors := []struct {
		name  string
		build func() *message.Set
	}{
		{"BFS shortest paths", func() *message.Set {
			return message.Build(m.G, pairs, l, message.ShortestPathRouter(m.G))
		}},
		{"greedy min-max", func() *message.Set {
			return routeopt.GreedyMinMax(m.G, pairs, l, routeopt.Options{})
		}},
		{"BFS + rebalance", func() *message.Set {
			set := message.Build(m.G, pairs, l, message.ShortestPathRouter(m.G))
			routeopt.Rebalance(set, routeopt.Options{}, 0)
			return set
		}},
	}
	type out struct {
		c, d, classes, steps int
	}
	outs := mapJobs(cfg, len(selectors), func(i int) out {
		p := NewProblem(selectors[i].name, selectors[i].build())
		sched, res, err := p.RouteScheduled(ScheduleOptions{B: 2, Seed: cfg.Seed, Metrics: cfg.metrics()})
		if err != nil {
			panic(fmt.Sprintf("A5 %s: %v", selectors[i].name, err))
		}
		return out{c: p.C, d: p.D, classes: sched.NumClasses, steps: res.Steps}
	})
	t := stats.NewTable(
		"A5 — ablation: path selection feeding the Theorem 2.1.6 scheduler",
		"selector", "C", "D", "classes", "verified makespan")
	for i, o := range outs {
		t.AddRow(selectors[i].name, o.c, o.d, o.classes, o.steps)
	}
	return []*stats.Table{t}
}

func init() {
	register(Experiment{ID: "A1", Title: "Ablation — arbitration policy", Run: A1Arbitration})
	register(Experiment{ID: "A2", Title: "Ablation — LLL resampling granularity", Run: A2Resample})
	register(Experiment{ID: "A3", Title: "Ablation — drop-on-delay vs blocking", Run: A3Drop})
	register(Experiment{ID: "A4", Title: "Ablation — one-pass vs two-pass", Run: A4Passes})
	register(Experiment{ID: "A5", Title: "Ablation — congestion-aware path selection", Run: A5PathSelection})
}
