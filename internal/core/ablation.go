package core

import (
	"fmt"

	"wormhole/internal/butterfly"
	"wormhole/internal/graph"
	"wormhole/internal/message"
	"wormhole/internal/rng"
	"wormhole/internal/routeopt"
	"wormhole/internal/schedule"
	"wormhole/internal/stats"
	"wormhole/internal/topology"
	"wormhole/internal/vcsim"
)

// A1Arbitration measures whether the one-pass lower-bound shape (T4)
// depends on the router's arbitration policy.
func A1Arbitration(cfg Config) []*stats.Table {
	n, q := 256, 8
	if cfg.Quick {
		n, q = 64, 6
	}
	l := topology.Log2(n)
	bf := topology.NewButterfly(n)
	r := rng.New(cfg.Seed)
	pairs := butterfly.RandomDestinations(n, q, r)

	t := stats.NewTable(
		"A1 — ablation: arbitration policy on greedy one-pass routing",
		"policy", "B", "steps", "stalls")
	for _, b := range []int{1, 2, 4} {
		for _, pol := range []vcsim.Policy{vcsim.ArbByID, vcsim.ArbRandom, vcsim.ArbAge} {
			res := butterfly.RunOnePass(bf, pairs, l, b, pol, cfg.Seed)
			t.AddRow(pol.String(), b, res.Steps, res.TotalStalls)
		}
	}
	return []*stats.Table{t}
}

// A2Resample compares whole-refinement rejection sampling with
// violated-class-only (Moser–Tardos style) resampling in the LLL
// scheduler.
func A2Resample(cfg Config) []*stats.Table {
	p := ButterflyQRelation(64, 8, 24, cfg.Seed)
	if !cfg.Quick {
		p = ButterflyQRelation(256, 16, 48, cfg.Seed)
	}
	t := stats.NewTable(
		"A2 — ablation: resampling granularity in the LLL scheduler",
		"mode", "B", "classes", "attempts", "escalated")
	for _, b := range []int{1, 2, 4} {
		for _, whole := range []bool{false, true} {
			sched, err := schedule.Build(p.Set, schedule.Options{
				B:             b,
				ConstantScale: DefaultConstantScale,
				ResampleWhole: whole,
			}, rng.New(cfg.Seed))
			if err != nil {
				panic(fmt.Sprintf("A2: %v", err))
			}
			attempts, escalated := 0, false
			for _, st := range sched.Steps {
				attempts += st.Attempts
				escalated = escalated || st.Escalated
			}
			mode := "violated-only"
			if whole {
				mode = "whole"
			}
			t.AddRow(mode, b, sched.NumClasses, attempts, escalated)
		}
	}
	return []*stats.Table{t}
}

// A3Drop compares drop-on-delay against blocking within a single subround
// batch: dropping loses messages but finishes in exactly 2·log n + L − 1
// steps; blocking delivers everything but stretches the makespan.
func A3Drop(cfg Config) []*stats.Table {
	n, q := 64, 8
	if !cfg.Quick {
		n, q = 256, 8
	}
	k := topology.Log2(n)
	l := k
	tp := topology.NewTwoPassButterfly(n)
	r := rng.New(cfg.Seed)

	routes := make([]butterfly.TwoPassRoute, 0, n*q)
	for src := 0; src < n; src++ {
		for j := 0; j < q; j++ {
			routes = append(routes, butterfly.TwoPassRoute{
				Src: src, Mid: r.Intn(n), Dst: r.Intn(n),
			})
		}
	}
	set := butterfly.TwoPassPathEndpoints(tp, routes, l)

	t := stats.NewTable(
		"A3 — ablation: drop-on-delay vs blocking for one subround batch",
		"mode", "B", "delivered", "dropped", "steps")
	for _, b := range []int{1, 2, 4} {
		drop := vcsim.Run(set, nil, vcsim.Config{
			VirtualChannels: b, DropOnDelay: true, Arbitration: vcsim.ArbRandom, Seed: cfg.Seed,
		})
		t.AddRow("drop-on-delay", b, drop.Delivered, drop.Dropped, drop.Steps)
		block := vcsim.Run(set, nil, vcsim.Config{
			VirtualChannels: b, Arbitration: vcsim.ArbRandom, Seed: cfg.Seed,
		})
		t.AddRow("blocking", b, block.Delivered, block.Dropped, block.Steps)
	}
	return []*stats.Table{t}
}

// A4Passes compares one-pass and two-pass routing at equal hardware on a
// worst-case permutation: Valiant's random intermediate destinations
// spread the bit-reversal hotspot.
func A4Passes(cfg Config) []*stats.Table {
	n := 64
	if !cfg.Quick {
		n = 256
	}
	r := rng.New(cfg.Seed)

	// Bit-reversal: the classic adversarial permutation for bit-fixing.
	pairs := make([]butterfly.ColPair, n)
	k := topology.Log2(n)
	for w := 0; w < n; w++ {
		rev := 0
		for b := 0; b < k; b++ {
			if w&(1<<b) != 0 {
				rev |= 1 << (k - 1 - b)
			}
		}
		pairs[w] = butterfly.ColPair{Src: w, Dst: rev}
	}

	t := stats.NewTable(
		"A4 — ablation: one-pass vs two-pass delivery on bit-reversal",
		"mode", "B", "survivors", "fraction")
	for _, b := range []int{1, 2, 4} {
		one := butterfly.RunLockstepOnePass(n, b, pairs, butterfly.ArbRandom, r)
		t.AddRow("one-pass", b, len(one), float64(len(one))/float64(n))
		routes := make([]butterfly.TwoPassRoute, n)
		for i, p := range pairs {
			routes[i] = butterfly.TwoPassRoute{Src: p.Src, Mid: r.Intn(n), Dst: p.Dst}
		}
		two := butterfly.RunLockstepSubround(n, b, routes, butterfly.ArbRandom, r)
		t.AddRow("two-pass", b, len(two), float64(len(two))/float64(n))
	}
	return []*stats.Table{t}
}

// A5PathSelection measures the end-to-end effect of congestion-aware
// path selection (the Srinivasan–Teo theme the paper cites): lower C
// feeds straight through the Theorem 2.1.6 scheduler into shorter
// verified schedules.
func A5PathSelection(cfg Config) []*stats.Table {
	side := 8
	msgs := 96
	if !cfg.Quick {
		side = 16
		msgs = 512
	}
	m := topology.NewMesh(side, side)
	r := rng.New(cfg.Seed)
	// Skewed traffic: half the messages target one column, half uniform.
	var pairs []message.Endpoints
	for i := 0; i < msgs; i++ {
		src := graph.NodeID(r.Intn(side * side))
		var dst graph.NodeID
		if i%2 == 0 {
			dst = m.Node(side-1, r.Intn(side))
		} else {
			dst = graph.NodeID(r.Intn(side * side))
		}
		if src == dst {
			continue
		}
		pairs = append(pairs, message.Endpoints{Src: src, Dst: dst})
	}
	l := 2 * side

	t := stats.NewTable(
		"A5 — ablation: path selection feeding the Theorem 2.1.6 scheduler",
		"selector", "C", "D", "classes", "verified makespan")
	addRow := func(name string, set *message.Set) {
		p := NewProblem(name, set)
		sched, res, err := p.RouteScheduled(ScheduleOptions{B: 2, Seed: cfg.Seed})
		if err != nil {
			panic(fmt.Sprintf("A5 %s: %v", name, err))
		}
		t.AddRow(name, p.C, p.D, sched.NumClasses, res.Steps)
	}

	addRow("BFS shortest paths", message.Build(m.G, pairs, l, message.ShortestPathRouter(m.G)))
	addRow("greedy min-max", routeopt.GreedyMinMax(m.G, pairs, l, routeopt.Options{}))
	rebalanced := message.Build(m.G, pairs, l, message.ShortestPathRouter(m.G))
	routeopt.Rebalance(rebalanced, routeopt.Options{}, 0)
	addRow("BFS + rebalance", rebalanced)
	return []*stats.Table{t}
}

func init() {
	register(Experiment{ID: "A1", Title: "Ablation — arbitration policy", Run: A1Arbitration})
	register(Experiment{ID: "A2", Title: "Ablation — LLL resampling granularity", Run: A2Resample})
	register(Experiment{ID: "A3", Title: "Ablation — drop-on-delay vs blocking", Run: A3Drop})
	register(Experiment{ID: "A4", Title: "Ablation — one-pass vs two-pass", Run: A4Passes})
	register(Experiment{ID: "A5", Title: "Ablation — congestion-aware path selection", Run: A5PathSelection})
}
