package core

// Optional experiment checkpointing: when Config.Checkpoint is set,
// every job the harness fans out is memoized in a BlobStore keyed by
// its (stage, index) coordinates. A re-run of the same experiment —
// same ID, same Config — replays completed jobs from the store and
// computes only the rest, so a long sweep (the offline T15/scale
// studies, a daemon-hosted run) survives a process kill at the cost of
// re-running at most the jobs that were in flight.
//
// Correctness over reuse: a memoized job result must be EXACTLY the
// value the job would compute, or tables silently corrupt. Job results
// are arbitrary Go values (some with unexported fields JSON cannot
// carry), so the save side proves each blob faithful before storing it:
// marshal, unmarshal into a fresh value, and deep-compare against the
// live result. A type that does not round-trip is simply never stored —
// those jobs re-run every time, which is slower but always right.
//
// The stage counter assigns each mapJobs/flatJobs call within one
// experiment run a sequence number. Experiments issue their fan-outs in
// deterministic program order (concurrency lives inside a fan-out,
// never across fan-outs), so (stage, index) names the same logical job
// in every run of the same experiment. A Checkpoint must be fresh per
// run — reusing one across runs misaligns the stage counter.
//
// Config.Interrupt is the cooperative half of graceful shutdown: the
// harness polls it before starting each job and panics with
// ErrInterrupted once it reports true. In-flight jobs finish, completed
// jobs are already in the store, and the caller recovers the sentinel —
// the daemon's SIGTERM path — then re-runs after restart to resume.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
)

// ErrInterrupted is the panic value forEachJob raises when
// Config.Interrupt reports true. Callers that set Interrupt recover it;
// everyone else never sees it.
var ErrInterrupted = errors.New("core: experiment interrupted")

// BlobStore persists checkpoint blobs. Save must be atomic (a partial
// blob must never be observable under its key) and both methods must be
// safe for concurrent use — jobs save from harness workers.
type BlobStore interface {
	Load(key string) ([]byte, bool)
	Save(key string, blob []byte)
}

// Checkpoint memoizes harness jobs in a BlobStore. Create one fresh per
// experiment run and set it as Config.Checkpoint.
type Checkpoint struct {
	Store BlobStore

	mu    sync.Mutex
	stage int
}

func (c *Checkpoint) nextStage() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stage
	c.stage++
	return s
}

// memoJob wraps one job with load-else-compute-and-prove semantics.
func memoJob[T any](cp *Checkpoint, stage, i int, job func(i int) T) T {
	key := fmt.Sprintf("s%03d-j%06d.json", stage, i)
	if blob, ok := cp.Store.Load(key); ok {
		var cached T
		if json.Unmarshal(blob, &cached) == nil {
			return cached
		}
	}
	out := job(i)
	if blob, err := json.Marshal(out); err == nil {
		// Store only blobs proven faithful: unmarshal into a fresh value
		// and require deep equality with the live result.
		var check T
		if json.Unmarshal(blob, &check) == nil && reflect.DeepEqual(out, check) {
			cp.Store.Save(key, blob)
		}
	}
	return out
}

// DirStore is a BlobStore over one directory: each key is a file,
// written atomically (temp file + rename). Load tolerates a missing
// directory; Save creates it on first use.
type DirStore struct {
	Dir string
}

// Load implements BlobStore.
func (d DirStore) Load(key string) ([]byte, bool) {
	blob, err := os.ReadFile(filepath.Join(d.Dir, key))
	if err != nil {
		return nil, false
	}
	return blob, true
}

// Save implements BlobStore. Failures are deliberately silent: a
// checkpoint store that cannot write degrades to re-running jobs, which
// is always correct.
func (d DirStore) Save(key string, blob []byte) {
	if os.MkdirAll(d.Dir, 0o755) != nil {
		return
	}
	tmp, err := os.CreateTemp(d.Dir, key+".tmp*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if os.Rename(name, filepath.Join(d.Dir, key)) != nil {
		os.Remove(name)
	}
}
