package core

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"wormhole/internal/stats"
)

// memStore is an in-memory BlobStore for tests.
type memStore struct {
	mu    sync.Mutex
	blobs map[string][]byte
	loads atomic.Int64
	saves atomic.Int64
}

func newMemStore() *memStore { return &memStore{blobs: map[string][]byte{}} }

func (m *memStore) Load(key string) ([]byte, bool) {
	m.loads.Add(1)
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blobs[key]
	return b, ok
}

func (m *memStore) Save(key string, blob []byte) {
	m.saves.Add(1)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.blobs[key] = append([]byte(nil), blob...)
}

// TestCheckpointReplaysJobs: a second run of the same fan-out against
// the same store must compute nothing and return identical results.
func TestCheckpointReplaysJobs(t *testing.T) {
	store := newMemStore()
	var computed atomic.Int64
	job := func(i int) int {
		computed.Add(1)
		return i*i + 7
	}
	cfg := Config{Workers: 4, Checkpoint: &Checkpoint{Store: store}}
	first := mapJobs(cfg, 50, job)
	if n := computed.Load(); n != 50 {
		t.Fatalf("first run computed %d of 50 jobs", n)
	}
	if len(store.blobs) != 50 {
		t.Fatalf("store holds %d blobs, want 50", len(store.blobs))
	}

	cfg.Checkpoint = &Checkpoint{Store: store} // fresh Checkpoint, same store
	second := mapJobs(cfg, 50, job)
	if n := computed.Load(); n != 50 {
		t.Fatalf("replay recomputed jobs: %d total computations", n)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("replayed results diverged")
	}
}

// TestCheckpointStageCounter: successive fan-outs under one Checkpoint
// get distinct stages, so equal indices in different fan-outs never
// collide.
func TestCheckpointStageCounter(t *testing.T) {
	store := newMemStore()
	cfg := Config{Workers: 2, Checkpoint: &Checkpoint{Store: store}}
	a := mapJobs(cfg, 5, func(i int) int { return i })
	b := mapJobs(cfg, 5, func(i int) int { return 100 + i })
	if len(store.blobs) != 10 {
		t.Fatalf("store holds %d blobs, want 10 (stage collision?)", len(store.blobs))
	}
	// Replay both stages in program order with a fresh Checkpoint.
	cfg.Checkpoint = &Checkpoint{Store: store}
	a2 := mapJobs(cfg, 5, func(i int) int { t.Error("stage 0 recomputed"); return -1 })
	b2 := mapJobs(cfg, 5, func(i int) int { t.Error("stage 1 recomputed"); return -1 })
	if !reflect.DeepEqual(a, a2) || !reflect.DeepEqual(b, b2) {
		t.Fatal("replay diverged across stages")
	}
}

// TestCheckpointSkipsUnfaithfulTypes: a job result that does not
// round-trip JSON (unexported fields) must never be stored — those jobs
// re-run, which is slow but correct.
func TestCheckpointSkipsUnfaithfulTypes(t *testing.T) {
	type opaque struct {
		Visible int
		hidden  int
	}
	store := newMemStore()
	cfg := Config{Workers: 2, Checkpoint: &Checkpoint{Store: store}}
	out := mapJobs(cfg, 8, func(i int) opaque { return opaque{Visible: i, hidden: i*3 + 1} })
	if len(store.blobs) != 0 {
		t.Fatalf("%d unfaithful blobs were stored", len(store.blobs))
	}
	for i, o := range out {
		if o.hidden != i*3+1 {
			t.Fatalf("job %d result corrupted: %+v", i, o)
		}
	}
}

// TestInterruptAbortsAndResumes is the graceful-shutdown round trip:
// an interrupted run panics with ErrInterrupted after persisting the
// jobs that completed, and the re-run resumes from the store to the
// exact result of an uninterrupted run.
func TestInterruptAbortsAndResumes(t *testing.T) {
	oracle := mapJobs(Config{Workers: 1}, 40, func(i int) int { return i * 11 })

	store := newMemStore()
	var done atomic.Int64
	run := func() (out []int, err error) {
		defer func() {
			if r := recover(); r != nil {
				e, ok := r.(error)
				if !ok || !errors.Is(e, ErrInterrupted) {
					panic(r)
				}
				err = e
			}
		}()
		cfg := Config{
			Workers:    1,
			Checkpoint: &Checkpoint{Store: store},
			Interrupt:  func() bool { return done.Load() >= 13 },
		}
		return mapJobs(cfg, 40, func(i int) int {
			done.Add(1)
			return i * 11
		}), nil
	}

	if _, err := run(); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run returned %v, want ErrInterrupted", err)
	}
	stored := len(store.blobs)
	if stored == 0 || stored >= 40 {
		t.Fatalf("interrupted run stored %d of 40 jobs", stored)
	}

	done.Store(-1 << 30) // disarm the interrupt; the re-run resumes
	out, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oracle, out) {
		t.Fatal("resumed run diverged from the uninterrupted oracle")
	}
	if n := done.Load(); n > -1<<30+40-int64(stored) {
		t.Fatalf("resume recomputed too much: %d jobs re-ran with %d stored", n+1<<30, stored)
	}
}

// TestCheckpointExperimentByteIdentity runs a real experiment through a
// DirStore checkpoint: the checkpointed run, the resumed run, and the
// plain run must render byte-identical tables.
func TestCheckpointExperimentByteIdentity(t *testing.T) {
	render := func(tables []*stats.Table) string {
		var s string
		for _, tab := range tables {
			s += tab.String() + "\n"
		}
		return s
	}
	plain, err := Run("T12", Config{Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	first, err := Run("T12", Config{Seed: 42, Quick: true,
		Checkpoint: &Checkpoint{Store: DirStore{Dir: dir}}})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("checkpointed run stored nothing; T12 rows no longer round-trip JSON")
	}
	resumed, err := Run("T12", Config{Seed: 42, Quick: true,
		Checkpoint: &Checkpoint{Store: DirStore{Dir: dir}}})
	if err != nil {
		t.Fatal(err)
	}
	if w, g := render(plain), render(first); w != g {
		t.Fatalf("checkpointed run diverged\nwant:\n%s\ngot:\n%s", w, g)
	}
	if w, g := render(plain), render(resumed); w != g {
		t.Fatalf("resumed run diverged\nwant:\n%s\ngot:\n%s", w, g)
	}
}

// TestDirStoreAtomicRoundTrip covers the filesystem BlobStore.
func TestDirStoreAtomicRoundTrip(t *testing.T) {
	d := DirStore{Dir: t.TempDir() + "/nested/store"}
	if _, ok := d.Load("missing.json"); ok {
		t.Fatal("Load invented a blob")
	}
	d.Save("a.json", []byte(`{"x":1}`))
	blob, ok := d.Load("a.json")
	if !ok || string(blob) != `{"x":1}` {
		t.Fatalf("round trip: %q %v", blob, ok)
	}
	d.Save("a.json", []byte(`{"x":2}`)) // overwrite
	if blob, _ := d.Load("a.json"); string(blob) != `{"x":2}` {
		t.Fatalf("overwrite: %q", blob)
	}
}

// TestDirStoreSaveFailureIsSilent pins the degradation contract: a
// store that cannot write (here, the directory path is occupied by a
// regular file) drops the blob without panicking, and a later Load
// simply misses — the checkpoint layer re-runs the job.
func TestDirStoreSaveFailureIsSilent(t *testing.T) {
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	d := DirStore{Dir: filepath.Join(file, "store")}
	d.Save("a.json", []byte(`{"x":1}`))
	if _, ok := d.Load("a.json"); ok {
		t.Fatal("Load found a blob the failed Save should have dropped")
	}
}
