// Package core is the public face of the repository: it couples workload
// construction, the Theorem 2.1.6 scheduler, the flit-level simulator, and
// the baselines into runnable experiments — one per table/figure listed in
// README.md — and renders paper-style result tables.
//
// A typical use:
//
//	prob := core.ButterflyQRelation(256, 8, 16, 1)   // n, q, L, seed
//	res := prob.RouteGreedy(core.GreedyOptions{B: 4})
//	sched, ver, err := prob.RouteScheduled(core.ScheduleOptions{B: 4})
//
// Experiments are addressed by ID (F1, F2, T1…T8, A1…A4) through Run.
package core

import (
	"fmt"

	"wormhole/internal/analysis"
	"wormhole/internal/graph"
	"wormhole/internal/message"
	"wormhole/internal/rng"
	"wormhole/internal/schedule"
	"wormhole/internal/telemetry"
	"wormhole/internal/topology"
	"wormhole/internal/vcsim"
)

// Problem couples a network and a routed message set, ready for
// scheduling or direct simulation.
type Problem struct {
	Label string
	Set   *message.Set

	// Cached path-set parameters.
	C, D, L int
}

// NewProblem wraps a message set, computing its C, D, L parameters.
func NewProblem(label string, set *message.Set) *Problem {
	return &Problem{
		Label: label,
		Set:   set,
		C:     analysis.Congestion(set),
		D:     analysis.Dilation(set),
		L:     set.MaxLength(),
	}
}

// GreedyOptions configures direct (online, blocking) wormhole routing.
type GreedyOptions struct {
	B          int
	Policy     vcsim.Policy
	Seed       uint64
	Restricted bool // restricted-bandwidth model (Section 1.4 remark)
	// Metrics optionally collects hot-path telemetry from the run; nil
	// leaves telemetry off (zero cost).
	Metrics *telemetry.Metrics
}

// RouteGreedy injects every message at time 0 and routes greedily.
func (p *Problem) RouteGreedy(opts GreedyOptions) vcsim.Result {
	return vcsim.Run(p.Set, nil, vcsim.Config{
		VirtualChannels:     opts.B,
		Arbitration:         opts.Policy,
		Seed:                opts.Seed,
		RestrictedBandwidth: opts.Restricted,
		Metrics:             opts.Metrics,
	})
}

// ScheduleOptions configures offline Theorem 2.1.6 scheduling.
type ScheduleOptions struct {
	B int
	// ConstantScale scales the paper's refinement constants; see
	// schedule.Options. The experiments default to 0.05, which keeps the
	// (D·log D)^(1/B) shape while avoiding the paper's astronomically
	// conservative class counts.
	ConstantScale float64
	ResampleWhole bool
	Seed          uint64
	// SpacingFactor stretches inter-class release spacing (≥ 1; used by
	// the restricted-bandwidth experiment, where draining a class takes
	// up to B times longer). 0 means 1.
	SpacingFactor int
	Restricted    bool
	// Metrics optionally collects hot-path telemetry from the execution
	// run (both the verified and the stretched/restricted paths); nil
	// leaves telemetry off (zero cost).
	Metrics *telemetry.Metrics
}

// DefaultConstantScale is the experiments' refinement-constant scale.
const DefaultConstantScale = 0.05

// RouteScheduled builds a Theorem 2.1.6 schedule and executes it on the
// simulator. With SpacingFactor == 1 and Restricted == false the execution
// is also verified against the theorem's zero-stall guarantee.
func (p *Problem) RouteScheduled(opts ScheduleOptions) (*schedule.Schedule, vcsim.Result, error) {
	cs := opts.ConstantScale
	if cs == 0 {
		cs = DefaultConstantScale
	}
	sched, err := schedule.Build(p.Set, schedule.Options{
		B:             opts.B,
		ConstantScale: cs,
		ResampleWhole: opts.ResampleWhole,
	}, rng.New(opts.Seed))
	if err != nil {
		return nil, vcsim.Result{}, err
	}
	sf := opts.SpacingFactor
	if sf < 1 {
		sf = 1
	}
	if sf == 1 && !opts.Restricted {
		res, err := schedule.VerifyObserved(p.Set, sched, opts.Metrics)
		return sched, res, err
	}
	releases := make([]int, len(sched.Releases))
	for i, r := range sched.Releases {
		releases[i] = r * sf
	}
	res := vcsim.Run(p.Set, releases, vcsim.Config{
		VirtualChannels:     opts.B,
		RestrictedBandwidth: opts.Restricted,
		Metrics:             opts.Metrics,
	})
	if !res.AllDelivered() {
		return sched, res, fmt.Errorf("core: scheduled run delivered %d/%d", res.Delivered, p.Set.Len())
	}
	return sched, res, nil
}

// --- workload builders -------------------------------------------------------

// ButterflyQRelation builds an n-input butterfly carrying a random
// q-relation with L-flit messages on the unique bit-fixing paths.
func ButterflyQRelation(n, q, l int, seed uint64) *Problem {
	r := rng.New(seed)
	bf := topology.NewButterfly(n)
	set := message.NewSet(bf.G)
	for rep := 0; rep < q; rep++ {
		for src, dst := range r.Perm(n) {
			set.Add(bf.Input(src), bf.Output(dst), l, bf.Route(src, dst))
		}
	}
	return NewProblem(fmt.Sprintf("butterfly(n=%d,q=%d)", n, q), set)
}

// ButterflyRandom builds an n-input butterfly where each input sends q
// messages to uniform random outputs (the paper's random routing problem).
func ButterflyRandom(n, q, l int, seed uint64) *Problem {
	r := rng.New(seed)
	bf := topology.NewButterfly(n)
	set := message.NewSet(bf.G)
	for src := 0; src < n; src++ {
		for rep := 0; rep < q; rep++ {
			dst := r.Intn(n)
			set.Add(bf.Input(src), bf.Output(dst), l, bf.Route(src, dst))
		}
	}
	return NewProblem(fmt.Sprintf("butterfly-random(n=%d,q=%d)", n, q), set)
}

// RandomRegularWorkload builds a strongly connected random d-out-regular
// digraph on nodes and routes msgs random source/destination pairs along
// BFS shortest paths.
func RandomRegularWorkload(nodes, deg, msgs, l int, seed uint64) *Problem {
	r := rng.New(seed)
	var g *graph.Graph
	for attempt := 0; ; attempt++ {
		g = topology.NewRandomRegular(nodes, deg, r)
		if topology.StronglyConnected(g) {
			break
		}
		if attempt > 64 {
			panic("core: could not draw a strongly connected random regular graph")
		}
	}
	set := message.NewSet(g)
	route := message.ShortestPathRouter(g)
	for i := 0; i < msgs; i++ {
		src := graph.NodeID(r.Intn(nodes))
		dst := graph.NodeID(r.Intn(nodes))
		for dst == src {
			dst = graph.NodeID(r.Intn(nodes))
		}
		set.Add(src, dst, l, route(src, dst))
	}
	return NewProblem(fmt.Sprintf("random-regular(n=%d,d=%d,msgs=%d)", nodes, deg, msgs), set)
}

// MeshTranspose builds a side×side mesh carrying the transpose permutation
// on dimension-order routes.
func MeshTranspose(side, l int) *Problem {
	m := topology.NewMesh(side, side)
	set := message.NewSet(m.G)
	for _, ep := range message.Transpose(side, func(x, y int) graph.NodeID { return m.Node(x, y) }) {
		set.Add(ep.Src, ep.Dst, l, m.DimensionOrderRoute(ep.Src, ep.Dst))
	}
	return NewProblem(fmt.Sprintf("mesh-transpose(%dx%d)", side, side), set)
}

// LinearHotspot builds a linear array where msgs messages all cross a
// central edge — a maximally congested fixture (C = msgs, D controlled by
// span). span is the number of edges each message traverses.
func LinearHotspot(msgs, span, l int) *Problem {
	if span < 1 {
		panic("core: span must be ≥ 1")
	}
	g := topology.NewLinearArray(span + msgs)
	set := message.NewSet(g)
	route := message.ShortestPathRouter(g)
	for i := 0; i < msgs; i++ {
		src := graph.NodeID(0)
		dst := graph.NodeID(span)
		set.Add(src, dst, l, route(src, dst))
	}
	return NewProblem(fmt.Sprintf("linear-hotspot(msgs=%d,span=%d)", msgs, span), set)
}
