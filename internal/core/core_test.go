package core

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"wormhole/internal/vcsim"
)

var quickCfg = Config{Seed: 11, Quick: true}

func TestWorkloadBuilders(t *testing.T) {
	p := ButterflyQRelation(32, 4, 16, 1)
	if p.Set.Len() != 128 {
		t.Errorf("q-relation messages = %d", p.Set.Len())
	}
	if p.D != 5 {
		t.Errorf("butterfly(32) dilation = %d, want log n = 5", p.D)
	}
	if p.C < 4 {
		t.Errorf("congestion %d below q", p.C)
	}
	if p.L != 16 {
		t.Error("L")
	}

	p = ButterflyRandom(32, 3, 8, 2)
	if p.Set.Len() != 96 || p.D != 5 {
		t.Error("butterfly random workload")
	}

	p = MeshTranspose(4, 8)
	if p.Set.Len() != 12 {
		t.Errorf("transpose messages = %d, want 12", p.Set.Len())
	}

	p = RandomRegularWorkload(64, 3, 100, 8, 3)
	if p.Set.Len() != 100 || p.D < 1 {
		t.Error("random regular workload")
	}

	p = LinearHotspot(10, 5, 8)
	if p.C != 10 || p.D != 5 {
		t.Errorf("hotspot C=%d D=%d", p.C, p.D)
	}
}

func TestRouteGreedyAndScheduled(t *testing.T) {
	p := ButterflyQRelation(32, 4, 12, 5)
	greedy := p.RouteGreedy(GreedyOptions{B: 2, Policy: vcsim.ArbAge})
	if !greedy.AllDelivered() {
		t.Fatal("greedy undelivered")
	}
	sched, ver, err := p.RouteScheduled(ScheduleOptions{B: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if ver.TotalStalls != 0 {
		t.Error("scheduled run stalled")
	}
	if sched.NumClasses < 1 {
		t.Error("no classes")
	}
	// Restricted + spacing variant also delivers.
	_, rres, err := p.RouteScheduled(ScheduleOptions{B: 2, Seed: 5, Restricted: true, SpacingFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rres.AllDelivered() {
		t.Error("restricted scheduled run undelivered")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{"A1", "A2", "A3", "A4", "A5", "F1", "F2", "T1", "T10", "T11", "T12", "T13", "T14", "T15", "T16", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9"}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("%d experiments registered, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" {
			t.Errorf("%s: empty title", e.ID)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("T99", quickCfg); err == nil {
		t.Error("unknown ID must error")
	}
}

// TestAllExperimentsRunQuick is the harness integration test: every
// experiment must complete in Quick mode and produce non-empty tables.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := Run(e.ID, quickCfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tab := range tables {
				if tab.NumRows() == 0 {
					t.Errorf("%s: empty table:\n%s", e.ID, tab)
				}
				if !strings.Contains(tab.String(), "—") {
					t.Errorf("%s: table missing title", e.ID)
				}
			}
		})
	}
}

// TestExperimentsLeakNoGoroutines pins the simulator lifecycle across
// the harness: experiments that run open-loop simulators — including
// sharded ones, whose stepper pools own worker goroutines — must leave
// no goroutines behind. A leak here means some Runner/Sim creation site
// lost its Close.
func TestExperimentsLeakNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	for _, id := range []string{"T12", "T15"} {
		cfg := quickCfg
		cfg.Shards = 2 // engage the sharded stepper's worker pools
		if _, err := Run(id, cfg); err != nil {
			t.Fatal(err)
		}
	}
	// Pool workers exit asynchronously after Close; give them a bounded
	// grace period before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		buf := make([]byte, 1<<20)
		t.Fatalf("%d goroutines outlive the experiments (baseline %d)\n%s",
			n, base, buf[:runtime.Stack(buf, true)])
	}
}

// --- per-experiment shape assertions -----------------------------------------

func TestT1SuperlinearShape(t *testing.T) {
	rows := T1ScheduleLength(quickCfg)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.B == 1 {
			if r.Speedup != 1 {
				t.Errorf("%s B=1 speedup = %v", r.Workload, r.Speedup)
			}
			continue
		}
		// The LLL schedule must improve superlinearly: speedup > B.
		if r.Superlin <= 1 {
			t.Errorf("%s B=%d: speedup/B = %v ≤ 1 (classes %d)", r.Workload, r.B, r.Superlin, r.Classes)
		}
	}
}

func TestT2FloorsHold(t *testing.T) {
	for _, r := range T2LowerBound(quickCfg) {
		if !r.GreedyOK || !r.SchedOK {
			t.Errorf("B=%d: a measured run beat the impossible floor (greedy %v sched %v)",
				r.B, r.GreedyOK, r.SchedOK)
		}
		if r.FloorRatio < 1 {
			t.Errorf("B=%d: floor ratio %v < 1", r.B, r.FloorRatio)
		}
	}
}

func TestT2SuperlinearAtHighB(t *testing.T) {
	rows := T2Superlinear(quickCfg)
	last := rows[len(rows)-1]
	if last.Speedup < float64(last.VCs) {
		t.Errorf("B=%d on the fixed adversary: speedup %v below linear", last.VCs, last.Speedup)
	}
	// Makespan must be non-increasing in B.
	prev := 1 << 30
	for _, r := range rows {
		if r.Best > prev {
			t.Errorf("B=%d best %d worse than previous %d", r.VCs, r.Best, prev)
		}
		prev = r.Best
	}
}

func TestT3AllDelivered(t *testing.T) {
	for _, r := range T3QRelation(quickCfg) {
		if r.Delivered < 1 {
			t.Errorf("n=%d q=%d B=%d: delivered fraction %v", r.N, r.Q, r.B, r.Delivered)
		}
		if r.B > 1 && r.Speedup <= 1 {
			t.Errorf("B=%d: no speedup (%v)", r.B, r.Speedup)
		}
	}
}

func TestT4StepsFallWithB(t *testing.T) {
	rows := T4OnePass(quickCfg)
	var prev float64 = 1 << 30
	for _, r := range rows {
		if r.Steps > prev {
			t.Errorf("B=%d: one-pass steps %v rose from %v", r.B, r.Steps, prev)
		}
		prev = r.Steps
	}
}

func TestT5Relationships(t *testing.T) {
	rows := T5RouterComparison(quickCfg)
	byMethod := map[string]T5Row{}
	for _, r := range rows {
		byMethod[r.Method] = r
		if !r.Delivered {
			t.Errorf("%s failed to deliver", r.Method)
		}
	}
	saf := byMethod["store-and-forward greedy"]
	wh1 := byMethod["wormhole LLL-scheduled B=1"]
	// The paper's Section 1.4 point: SAF beats scheduled wormhole at
	// B = 1, but needs a much larger buffer budget.
	if saf.FlitSteps >= wh1.FlitSteps {
		t.Errorf("SAF (%d) should beat scheduled wormhole B=1 (%d) per Section 1.4",
			saf.FlitSteps, wh1.FlitSteps)
	}
	if saf.BufFlits <= wh1.BufFlits {
		t.Errorf("SAF buffer budget (%d) should exceed wormhole's (%d)",
			saf.BufFlits, wh1.BufFlits)
	}
}

func TestT9WaksmanOptimal(t *testing.T) {
	for _, r := range T9Waksman(quickCfg) {
		if !r.WaksmanOpt {
			t.Errorf("n=%d L=%d: Beneš routing not stall-free optimal (steps %d, stalls %d)",
				r.N, r.L, r.Waksman, r.Stalls)
		}
		if r.SpeedupVsBF < 1 {
			t.Errorf("n=%d: greedy butterfly should not beat edge-disjoint Waksman (%v)", r.N, r.SpeedupVsBF)
		}
	}
}

func TestT10LatencyRisesWithRate(t *testing.T) {
	rows := T10Continuous(quickCfg)
	byB := map[int][]T10Row{}
	for _, r := range rows {
		byB[r.B] = append(byB[r.B], r)
	}
	for b, rs := range byB {
		for i := 1; i < len(rs); i++ {
			if rs[i].MeanLat < rs[i-1].MeanLat*0.8 {
				t.Errorf("B=%d: latency fell sharply with rate (%v → %v)",
					b, rs[i-1].MeanLat, rs[i].MeanLat)
			}
		}
	}
	// More channels must not hurt at equal rate.
	if len(byB) >= 2 {
		lo, hi := byB[1], byB[4]
		if len(lo) == len(hi) {
			for i := range lo {
				if hi[i].MeanLat > lo[i].MeanLat*1.2+2 {
					t.Errorf("rate %v: B=4 latency %v worse than B=1 %v",
						lo[i].Rate, hi[i].MeanLat, lo[i].MeanLat)
				}
			}
		}
	}
}

func TestT11DisciplineSeparation(t *testing.T) {
	for _, r := range T11DallySeitz(quickCfg) {
		switch r.Discipline {
		case "dateline 2 classes":
			if !r.DepAcyclic {
				t.Errorf("dateline dependency graph must be acyclic (waves %d)", r.Waves)
			}
			if r.Deadlocked || r.Delivered != r.Messages {
				t.Errorf("dateline must deliver everything (waves %d): deadlock=%v %d/%d",
					r.Waves, r.Deadlocked, r.Delivered, r.Messages)
			}
		case "plain B=1":
			if !r.Deadlocked {
				t.Errorf("plain ring should deadlock (waves %d)", r.Waves)
			}
		case "anonymous B=2":
			if r.Waves == 0 && r.Deadlocked {
				t.Error("anonymous B=2 should survive the sparse load")
			}
			if r.Waves >= 1 && !r.Deadlocked {
				t.Errorf("anonymous B=2 should deadlock under full pressure (waves %d)", r.Waves)
			}
		}
	}
}

func TestT7FractionMonotoneInB(t *testing.T) {
	rows := T7CircuitSwitch(quickCfg)
	byN := map[int][]T7Row{}
	for _, r := range rows {
		byN[r.N] = append(byN[r.N], r)
	}
	for n, rs := range byN {
		for i := 1; i < len(rs); i++ {
			if rs[i].Fraction < rs[i-1].Fraction {
				t.Errorf("n=%d: fraction fell from B=%d to B=%d (%v → %v)",
					n, rs[i-1].B, rs[i].B, rs[i-1].Fraction, rs[i].Fraction)
			}
		}
	}
}

func TestT8EmulationFactor(t *testing.T) {
	for _, r := range T8RestrictedModel(quickCfg) {
		// Restricted runs can never beat the full VC model.
		if r.RestrSteps < r.VCSteps {
			t.Errorf("B=%d: restricted (%d) faster than VC model (%d)", r.B, r.RestrSteps, r.VCSteps)
		}
		// The emulation overhead is at most ≈ B (paper's remark).
		if r.EmuFactor > float64(r.B)+1 {
			t.Errorf("B=%d: emulation factor %v far above B", r.B, r.EmuFactor)
		}
		// Buffering alone still helps: gain grows with B.
		if r.B > 1 && r.BufferGain <= 1 {
			t.Errorf("B=%d: no buffering-only gain (%v)", r.B, r.BufferGain)
		}
	}
}
