package core

import (
	"fmt"
	"sort"

	"wormhole/internal/stats"
	"wormhole/internal/telemetry"
)

// Config parameterizes an experiment run.
type Config struct {
	// Seed makes the whole experiment deterministic.
	Seed uint64
	// Quick shrinks sweeps to test-suite scale; full scale reproduces the
	// README.md numbers.
	Quick bool
	// Trials averages randomized measurements (0 = per-experiment
	// default).
	Trials int
	// Workers bounds the harness's job-runner fan-out (0 = GOMAXPROCS).
	// Tables are byte-identical for every worker count; see parallel.go.
	Workers int
	// Scale overrides the network size of the experiments that sweep it
	// (the T14/T15 butterfly input counts; 0 = the experiment's
	// default). CI runs the default; larger scales — the documented
	// offline 1024-input T14 and 4096-input T15 — are opt-in via
	// wormbench -scale.
	Scale int
	// Shards steps every open-loop simulator the experiment runs on that
	// many goroutines (traffic.Config.Shards → vcsim.Config.Shards).
	// Tables are byte-identical for every value — CI's shard-determinism
	// matrix diffs them — so sharding is purely a wall-clock lever for
	// the scale studies.
	Shards int
	// Telemetry, when non-nil, collects hot-path counters from every
	// simulator the experiment runs. Each concurrent job gets its own
	// child registry (via metrics), folded deterministically at
	// Telemetry.Snapshot(). Tables stay byte-identical either way.
	Telemetry *telemetry.Aggregate
	// Checkpoint, when non-nil, memoizes completed harness jobs in its
	// BlobStore so a re-run of the same experiment resumes instead of
	// recomputing (see checkpoint.go). Must be fresh per run. Tables
	// stay byte-identical with or without it.
	Checkpoint *Checkpoint
	// Interrupt, when non-nil, is polled before each harness job; once
	// it reports true the run aborts by panicking with ErrInterrupted,
	// which the caller recovers. Combined with Checkpoint this is
	// graceful shutdown: completed jobs are stored, the re-run resumes.
	Interrupt func() bool
}

func (c Config) trials(def int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	return def
}

// metrics returns a fresh child registry of the experiment's telemetry
// aggregate, or nil when telemetry is off. Metrics registries must not be
// shared across concurrent simulators, so each job calls this once.
func (c Config) metrics() *telemetry.Metrics {
	if c.Telemetry == nil {
		return nil
	}
	return c.Telemetry.NewMetrics()
}

// Experiment is a runnable reproduction unit keyed by the IDs catalogued
// in README.md.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) []*stats.Table
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("core: duplicate experiment %s", e.ID))
	}
	registry[e.ID] = e
}

// Experiments lists the registered experiments in ID order.
func Experiments() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, id := range ids() {
		out = append(out, registry[id])
	}
	return out
}

// Run executes the experiment with the given ID.
func Run(id string, cfg Config) ([]*stats.Table, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("core: unknown experiment %q (have %v)", id, ids())
	}
	return e.Run(cfg), nil
}

func ids() []string {
	var out []string
	for id := range registry { //wormvet:allow determinism -- keys sorted immediately below
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
