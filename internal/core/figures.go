package core

import (
	"fmt"

	"wormhole/internal/analysis"
	"wormhole/internal/graph"
	"wormhole/internal/message"
	"wormhole/internal/rng"
	"wormhole/internal/stats"
	"wormhole/internal/topology"
)

// F1Butterfly validates and describes the Figure 1 topology: the 8-input
// butterfly (and larger sizes), checking the structural identities of
// Section 1.2 — n(log n + 1) nodes, 2n·log n edges, out-degree 2 above the
// outputs, and the uniqueness of bit-fixing paths.
func F1Butterfly(cfg Config) []*stats.Table {
	ns := []int{8, 64, 256}
	if cfg.Quick {
		ns = []int{8, 64}
	}
	// One job per butterfly size (Diameter on the larger sizes dominates).
	type out struct {
		nodes, edges, levels, diameter int
		dag, unique                    bool
	}
	outs := mapJobs(cfg, len(ns), func(i int) out {
		bf := topology.NewButterfly(ns[i])
		return out{
			nodes:    bf.G.NumNodes(),
			edges:    bf.G.NumEdges(),
			levels:   bf.Levels + 1,
			diameter: graph.Diameter(bf.G),
			dag:      graph.IsDAG(bf.G),
			unique:   butterflyPathsUnique(bf, cfg.Seed),
		}
	})
	t := stats.NewTable(
		"F1 — Figure 1: butterfly structure (n inputs, log n + 1 levels)",
		"n", "nodes", "edges", "levels", "diameter", "leveled DAG", "unique paths")
	for i, o := range outs {
		t.AddRow(ns[i], o.nodes, o.edges, o.levels, o.diameter, o.dag, o.unique)
	}
	return []*stats.Table{t}
}

// butterflyPathsUnique spot-checks that Route returns the only input→output
// path (the butterfly has exactly one).
func butterflyPathsUnique(bf *topology.Butterfly, seed uint64) bool {
	r := rng.New(seed)
	for trial := 0; trial < 8; trial++ {
		src := r.Intn(bf.Inputs)
		dst := r.Intn(bf.Inputs)
		p := bf.Route(src, dst)
		if len(p) != bf.Levels {
			return false
		}
		sp, ok := graph.ShortestPath(bf.G, bf.Input(src), bf.Output(dst))
		if !ok || len(sp) != len(p) {
			return false
		}
	}
	return true
}

// F2TwoPass traces the Figure 2 routing pattern: a message's two passes
// through the butterfly via a random intermediate column, and summarizes
// congestion/dilation of a two-pass workload.
func F2TwoPass(cfg Config) []*stats.Table {
	n := 8
	tp := topology.NewTwoPassButterfly(n)
	// The two tables are independent jobs; each owns a pre-split child
	// source so its random draws don't depend on the other's.
	srcs := jobSources(cfg.Seed, 2)

	tables := mapJobs(cfg, 2, func(i int) *stats.Table {
		r := srcs[i]
		if i == 0 {
			trace := stats.NewTable(
				"F2 — Figure 2: a message's two passes (column at each level)",
				"message", "src", "mid", "dst", "column trace (level 0..2log n)")
			for j := 0; j < 4; j++ {
				src, dst := r.Intn(n), r.Intn(n)
				path, mid := tp.RandomRoute(src, dst, r)
				cols := fmt.Sprint(columnsAlong(tp, path, src))
				trace.AddRow(fmt.Sprintf("p%d", j), src, mid, dst, cols)
			}
			return trace
		}
		// Aggregate: a full two-pass permutation workload's C and D.
		set := message.NewSet(tp.G)
		l := topology.Log2(n)
		for src, dst := range r.Perm(n) {
			p, _ := tp.RandomRoute(src, dst, r)
			set.Add(tp.Input(src), tp.Output(dst), l, p)
		}
		agg := stats.NewTable(
			"F2 — two-pass workload parameters",
			"n", "messages", "C", "D", "edge-simple", "dependency acyclic")
		agg.AddRow(n, set.Len(), analysis.Congestion(set), analysis.Dilation(set),
			set.EdgeSimple(), analysis.ChannelDependencyAcyclic(set))
		return agg
	})
	return tables
}

// columnsAlong lists the column of each node visited by a two-pass path.
func columnsAlong(tp *topology.TwoPassButterfly, p graph.Path, srcCol int) []int {
	cols := []int{srcCol}
	for _, e := range p {
		cols = append(cols, tp.Column(tp.G.Edge(e).Head))
	}
	return cols
}

func init() {
	register(Experiment{
		ID:    "F1",
		Title: "Figure 1 — butterfly topology",
		Run:   F1Butterfly,
	})
	register(Experiment{
		ID:    "F2",
		Title: "Figure 2 — two-pass routing",
		Run:   F2TwoPass,
	})
}
