package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"wormhole/internal/rng"
)

// This file is the experiment harness's parallel job-runner. Every sweep
// in the package is expressed as a list of independent jobs — one per
// trial, per sweep point, or per workload — executed through mapJobs.
//
// Determinism contract: a job may depend only on its index (and on state
// fully constructed before the fan-out), never on execution order, and it
// writes only to its own result slot. Randomized jobs draw from per-job
// sources derived by index before any job runs (see jobSources) or from
// seeds computed arithmetically from the index. Under that contract the
// collected result slice — and hence every rendered table — is
// byte-identical for any worker count, which TestParallelDeterminism
// verifies across the whole experiment registry.

// workers resolves Config.Workers: 0 means GOMAXPROCS.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// forEachJob executes job(0..n-1), fanning across up to workers
// goroutines. Indices are handed out through an atomic counter, so
// scheduling is work-stealing-ish and the worker count never affects
// which jobs run — only where.
//
// The experiments use panic as their failure convention, so a panicking
// job must stay recoverable by the caller exactly as in a sequential
// run: the first panic value is captured, the panicking worker stops,
// and the panic is re-raised on the calling goroutine after the pool
// drains (the original value is preserved; the worker's stack is lost).
func forEachJob(workers, n int, job func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicVal  any
		panicked  atomic.Bool
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || panicked.Load() {
					return
				}
				if !runJob(job, i, &panicOnce, &panicVal, &panicked) {
					return
				}
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
}

// runJob runs one job, converting a panic into a recorded value; it
// reports whether the worker should keep going.
func runJob(job func(i int), i int, once *sync.Once, val *any, flag *atomic.Bool) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			once.Do(func() { *val = r })
			flag.Store(true)
			ok = false
		}
	}()
	job(i)
	return true
}

// mapJobs runs n independent jobs under cfg's worker budget and collects
// their results in index order. With Config.Checkpoint set, completed
// jobs are memoized and replayed across runs; with Config.Interrupt
// set, the fan-out aborts with an ErrInterrupted panic once it reports
// true (see checkpoint.go for both contracts).
func mapJobs[T any](cfg Config, n int, job func(i int) T) []T {
	run := job
	if cp := cfg.Checkpoint; cp != nil && cp.Store != nil {
		stage := cp.nextStage()
		run = func(i int) T { return memoJob(cp, stage, i, job) }
	}
	out := make([]T, n)
	forEachJob(cfg.workers(), n, func(i int) {
		if f := cfg.Interrupt; f != nil && f() {
			panic(ErrInterrupted)
		}
		out[i] = run(i)
	})
	return out
}

// flatJobs runs n independent jobs that each produce a row slice and
// concatenates the slices in index order — the shape used by experiments
// whose sweep points emit a variable number of table rows.
func flatJobs[T any](cfg Config, n int, job func(i int) []T) []T {
	parts := mapJobs(cfg, n, job)
	var out []T
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// grid3 decodes a flat job index into the (a, b, c) coordinates of an
// (na × nb × nc) sweep grid with c varying fastest. index3 is its
// inverse; sweeps that fan out over a grid use the pair so the encode
// and decode cannot drift apart.
func grid3(i, nb, nc int) (a, b, c int) {
	return i / (nb * nc), i / nc % nb, i % nc
}

func index3(a, b, c, nb, nc int) int {
	return (a*nb+b)*nc + c
}

// jobSources derives n independent child sources from seed by repeated
// Split. The derivation happens up front, in index order, so the source
// a job receives depends only on (seed, index) — never on which worker
// runs it or when.
func jobSources(seed uint64, n int) []*rng.Source {
	parent := rng.New(seed)
	out := make([]*rng.Source, n)
	for i := range out {
		out[i] = parent.Split()
	}
	return out
}
