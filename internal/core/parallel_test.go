package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestParallelDeterminism is the harness's central contract: for every
// registered experiment, the rendered tables are byte-identical whether
// the job-runner uses one worker or eight. Run with -race this also
// exercises the fan-out for data races.
func TestParallelDeterminism(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			render := func(workers int) string {
				tables, err := Run(e.ID, Config{Seed: 11, Quick: true, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				out := ""
				for _, tab := range tables {
					out += tab.String() + "\n"
				}
				return out
			}
			seq := render(1)
			par := render(8)
			if seq != par {
				t.Errorf("tables differ between Workers=1 and Workers=8:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
			}
		})
	}
}

func TestForEachJobRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		for _, n := range []int{0, 1, 5, 100} {
			counts := make([]int32, n)
			forEachJob(workers, n, func(i int) { atomic.AddInt32(&counts[i], 1) })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: job %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForEachJobIsConcurrent(t *testing.T) {
	// With 4 workers and 4 jobs that all wait on each other, the jobs can
	// only finish if they truly run concurrently.
	const n = 4
	var wg sync.WaitGroup
	wg.Add(n)
	forEachJob(n, n, func(i int) {
		wg.Done()
		wg.Wait()
	})
}

// TestForEachJobPropagatesPanic: the experiments fail by panicking, so a
// job panic must surface on the calling goroutine (recoverable) instead
// of aborting the process from a worker.
func TestForEachJobPropagatesPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "job 3 failed" {
					t.Errorf("workers=%d: recovered %v, want the job's panic value", workers, r)
				}
			}()
			forEachJob(workers, 8, func(i int) {
				if i == 3 {
					panic("job 3 failed")
				}
			})
			t.Errorf("workers=%d: no panic reached the caller", workers)
		}()
	}
}

func TestGrid3RoundTrips(t *testing.T) {
	const na, nb, nc = 3, 4, 5
	seen := map[[3]int]bool{}
	for i := 0; i < na*nb*nc; i++ {
		a, b, c := grid3(i, nb, nc)
		if a < 0 || a >= na || b < 0 || b >= nb || c < 0 || c >= nc {
			t.Fatalf("i=%d: (%d,%d,%d) out of range", i, a, b, c)
		}
		if got := index3(a, b, c, nb, nc); got != i {
			t.Fatalf("index3(grid3(%d)) = %d", i, got)
		}
		seen[[3]int{a, b, c}] = true
	}
	if len(seen) != na*nb*nc {
		t.Fatalf("only %d distinct coordinates", len(seen))
	}
}

func TestMapJobsOrdersResultsByIndex(t *testing.T) {
	out := mapJobs(Config{Workers: 8}, 100, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d = %d, want %d", i, v, i*i)
		}
	}
}

func TestFlatJobsConcatenatesInOrder(t *testing.T) {
	out := flatJobs(Config{Workers: 8}, 10, func(i int) []string {
		var part []string
		for j := 0; j <= i%3; j++ {
			part = append(part, fmt.Sprintf("%d/%d", i, j))
		}
		return part
	})
	want := []string{}
	for i := 0; i < 10; i++ {
		for j := 0; j <= i%3; j++ {
			want = append(want, fmt.Sprintf("%d/%d", i, j))
		}
	}
	if len(out) != len(want) {
		t.Fatalf("len = %d, want %d", len(out), len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("slot %d = %q, want %q", i, out[i], want[i])
		}
	}
}

func TestJobSourcesAreIndexDeterministic(t *testing.T) {
	a := jobSources(42, 8)
	b := jobSources(42, 8)
	for i := range a {
		if a[i].Uint64() != b[i].Uint64() {
			t.Fatalf("source %d differs across identical derivations", i)
		}
	}
	// Distinct indices get distinct streams.
	c := jobSources(42, 2)
	if c[0].Uint64() == c[1].Uint64() {
		t.Error("sibling sources produced the same first draw")
	}
}

func TestWorkersDefault(t *testing.T) {
	if w := (Config{}).workers(); w < 1 {
		t.Errorf("default workers = %d, want ≥ 1", w)
	}
	if w := (Config{Workers: 3}).workers(); w != 3 {
		t.Errorf("explicit workers = %d, want 3", w)
	}
}
