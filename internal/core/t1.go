package core

import (
	"fmt"

	"wormhole/internal/schedule"
	"wormhole/internal/stats"
)

// T1Row is one measurement of the Theorem 2.1.6 experiment: an LLL
// schedule built and executed for one (workload, B) cell.
type T1Row struct {
	Workload   string
	C, D, L, B int
	Classes    int
	Makespan   int     // verified simulated makespan, flit steps
	Bound      float64 // Theorem 2.1.6 form
	Speedup    float64 // makespan(B=1)/makespan(B)
	Predicted  float64 // bound(B=1)/bound(B)
	Superlin   float64 // Speedup / B  (> 1 ⇒ superlinear)
}

// T1ScheduleLength measures how the Theorem 2.1.6 schedule length falls as
// B grows, on the sweep workloads, and compares the measured speedup with
// the predicted superlinear C(D log D)^(1/B)/B shape.
func T1ScheduleLength(cfg Config) []T1Row {
	probs := t1Workloads(cfg)
	bs := []int{1, 2, 3, 4, 6}
	if cfg.Quick {
		bs = []int{1, 2, 4}
	}
	// One job per (workload, B) cell; the base makespans needed for the
	// speedup columns are filled in after the fan-out.
	rows := mapJobs(cfg, len(probs)*len(bs), func(i int) T1Row {
		p, b := probs[i/len(bs)], bs[i%len(bs)]
		sched, res, err := p.RouteScheduled(ScheduleOptions{B: b, Seed: cfg.Seed + uint64(b), Metrics: cfg.metrics()})
		if err != nil {
			panic(fmt.Sprintf("T1: %s B=%d: %v", p.Label, b, err))
		}
		return T1Row{
			Workload: p.Label,
			C:        p.C, D: p.D, L: p.L, B: b,
			Classes:  sched.NumClasses,
			Makespan: res.Steps,
			Bound:    schedule.UpperBound216(p.L, p.C, p.D, b),
		}
	})
	for i := range rows {
		r := &rows[i]
		base := rows[i-i%len(bs)].Makespan
		r.Speedup = stats.Ratio(float64(base), float64(r.Makespan))
		r.Predicted = stats.Ratio(
			schedule.UpperBound216(r.L, r.C, r.D, bs[0]),
			r.Bound)
		r.Superlin = r.Speedup / float64(r.B)
	}
	return rows
}

func t1Workloads(cfg Config) []*Problem {
	builders := []func() *Problem{
		func() *Problem { return ButterflyQRelation(256, 8, 32, cfg.Seed) },
		func() *Problem { return ButterflyQRelation(256, 16, 64, cfg.Seed+1) },
		func() *Problem { return RandomRegularWorkload(256, 3, 2048, 48, cfg.Seed+2) },
		func() *Problem { return LinearHotspot(48, 24, 48) },
	}
	if cfg.Quick {
		builders = []func() *Problem{
			func() *Problem { return ButterflyQRelation(64, 8, 24, cfg.Seed) },
			func() *Problem { return RandomRegularWorkload(96, 3, 384, 24, cfg.Seed+1) },
		}
	}
	return mapJobs(cfg, len(builders), func(i int) *Problem { return builders[i]() })
}

func t1Table(rows []T1Row) *stats.Table {
	t := stats.NewTable(
		"T1 — Theorem 2.1.6: LLL schedule length vs virtual channels B",
		"workload", "C", "D", "L", "B", "classes", "makespan", "bound",
		"speedup", "predicted", "speedup/B")
	for _, r := range rows {
		t.AddRow(r.Workload, r.C, r.D, r.L, r.B, r.Classes, r.Makespan,
			r.Bound, r.Speedup, r.Predicted, r.Superlin)
	}
	return t
}

func init() {
	register(Experiment{
		ID:    "T1",
		Title: "Theorem 2.1.6 — schedule length vs B (superlinear speedup)",
		Run: func(cfg Config) []*stats.Table {
			return []*stats.Table{t1Table(T1ScheduleLength(cfg))}
		},
	})
}
