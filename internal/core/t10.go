package core

import (
	"fmt"

	"wormhole/internal/stats"
	"wormhole/internal/topology"
	"wormhole/internal/traffic"
	"wormhole/internal/vcsim"
)

// T10Row is one cell of the continuous-injection experiment.
type T10Row struct {
	N, B      int
	Rate      float64 // messages per input per flit step
	Messages  int
	MeanLat   float64
	P95Lat    float64
	Overrun   int  // makespan − last arrival − (D+L−1): queueing backlog
	Saturated bool // overrun exceeds the horizon (rate unsustainable)
}

// T10Continuous probes the continuous-routing regime the paper cites
// (Scheideler–Vöcking, Section 1.3.1): messages arrive at each butterfly
// input as a Poisson process and are routed greedily. As the injection
// rate λ rises, latency stays flat until the router saturates; the
// sustainable rate grows with B faster than linearly, mirroring the
// D^(1/B) factor in the cited maximum-injection-rate bound. Batch
// theorems do not cover this regime — the experiment is contextual, not
// a theorem reproduction.
//
// The experiment runs on the internal/traffic open-loop engine (Poisson
// process, uniform pattern, no warmup, full drain), which replaced the
// original hand-rolled release-list generator; T12 is the full
// steady-state treatment with measurement windows and saturation search.
func T10Continuous(cfg Config) []T10Row {
	n := 64
	horizon := 2048
	// Offered load per input in flits/step is rate·L; with L = log n the
	// top rate pushes the B = 1 router past its knee.
	rates := []float64{0.02, 0.05, 0.1, 0.15, 0.25}
	bs := []int{1, 2, 4}
	if cfg.Quick {
		n = 32
		horizon = 512
		rates = []float64{0.02, 0.1}
		bs = []int{1, 4}
	}
	l := topology.Log2(n)

	// One job per (B, rate) point; a point whose Poisson draw yields no
	// messages returns an empty row and is skipped when rows are
	// collected.
	rows := mapJobs(cfg, len(bs)*len(rates), func(i int) T10Row {
		b, rate := bs[i/len(rates)], rates[i%len(rates)]
		res, err := traffic.Run(traffic.Config{
			Net:             traffic.NewButterflyNet(n),
			VirtualChannels: b,
			MessageLength:   l,
			Arbitration:     vcsim.ArbAge,
			Process:         traffic.Poisson,
			Rate:            rate,
			Pattern:         traffic.Uniform,
			Warmup:          0, // every message is tracked, as before
			Measure:         horizon,
			Drain:           horizon * 16,
			Seed:            cfg.Seed + uint64(b)*1009 + uint64(rate*1e6),
			Metrics:         cfg.metrics(),
		})
		if err != nil {
			panic(fmt.Sprintf("T10: %v", err))
		}
		if res.Injected == 0 {
			return T10Row{}
		}
		if res.Backlog > 0 {
			panic("T10: open-loop run failed to drain")
		}
		overrun := res.Steps - res.LastRelease - (l + l - 1)
		return T10Row{
			N: n, B: b,
			Rate:      rate,
			Messages:  res.Injected,
			MeanLat:   res.MeanLatency,
			P95Lat:    res.P95,
			Overrun:   overrun,
			Saturated: overrun > horizon/4,
		}
	})
	out := make([]T10Row, 0, len(rows))
	for _, r := range rows {
		if r.Messages > 0 {
			out = append(out, r)
		}
	}
	return out
}

func t10Table(rows []T10Row) *stats.Table {
	t := stats.NewTable(
		"T10 — continuous Poisson injection: latency vs rate vs B",
		"n", "B", "rate/input", "messages", "mean latency", "p95 latency",
		"drain overrun", "saturated")
	for _, r := range rows {
		t.AddRow(r.N, r.B, r.Rate, r.Messages, r.MeanLat, r.P95Lat,
			r.Overrun, r.Saturated)
	}
	return t
}

func init() {
	register(Experiment{
		ID:    "T10",
		Title: "Section 1.3.1 context — continuous injection throughput",
		Run: func(cfg Config) []*stats.Table {
			return []*stats.Table{t10Table(T10Continuous(cfg))}
		},
	})
}
