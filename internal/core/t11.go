package core

import (
	"wormhole/internal/analysis"
	"wormhole/internal/deadlock"
	"wormhole/internal/stats"
	"wormhole/internal/vcsim"
)

// T11Row is one cell of the Dally–Seitz deadlock-avoidance experiment.
type T11Row struct {
	Ring       int
	Discipline string // plain B=1 | anonymous B=2 | dateline 2×1
	Waves      int    // worms per node
	DepAcyclic bool   // channel dependency graph acyclic?
	Deadlocked bool
	Delivered  int
	Messages   int
	Steps      int
}

// T11DallySeitz reproduces the paper's Section 1 motivation for virtual
// channels: on a wormhole ring, wrapping worms deadlock; anonymous
// B-slot buffers only postpone the deadlock to higher pressure; the
// Dally–Seitz *structured* classes (switch class at a dateline) make the
// channel dependency graph acyclic and eliminate deadlock at any load —
// with exactly the same buffer budget as the anonymous B=2 router.
func T11DallySeitz(cfg Config) []T11Row {
	n := 8
	waves := []int{1, 2, 4}
	if cfg.Quick {
		n = 6
		waves = []int{1, 2}
	}
	l := n + 2 // long enough that wrapped worms pin their whole path

	// Build the full job list first (each job = one ring configuration),
	// then fan the independent simulations across the runner.
	type job struct {
		discipline string
		classes, b int
		starts     []int
		k          int
	}
	var jobs []job

	// Light load: two opposed worms — the anonymous B=2 router survives.
	sparse := []int{0, n / 2}
	jobs = append(jobs,
		job{"plain B=1", 1, 1, sparse, 0},
		job{"anonymous B=2", 1, 2, sparse, 0},
		job{"dateline 2 classes", 2, 1, sparse, 0},
	)

	// Full pressure: k worms per node.
	for _, k := range waves {
		var starts []int
		for rep := 0; rep < k; rep++ {
			for s := 0; s < n; s++ {
				starts = append(starts, s)
			}
		}
		jobs = append(jobs,
			job{"plain B=1", 1, 1, starts, k},
			job{"anonymous B=2", 1, 2, starts, k},
			job{"dateline 2 classes", 2, 1, starts, k},
		)
	}

	return mapJobs(cfg, len(jobs), func(i int) T11Row {
		j := jobs[i]
		r := deadlock.NewRing(n, j.classes)
		set := r.SparseWorkload(j.starts, n-1, l)
		res := vcsim.Run(set, nil, vcsim.Config{VirtualChannels: j.b, Metrics: cfg.metrics()})
		return T11Row{
			Ring:       n,
			Discipline: j.discipline,
			Waves:      j.k,
			DepAcyclic: analysis.ChannelDependencyAcyclic(set),
			Deadlocked: res.Deadlocked,
			Delivered:  res.Delivered,
			Messages:   set.Len(),
			Steps:      res.Steps,
		}
	})
}

func t11Table(rows []T11Row) *stats.Table {
	t := stats.NewTable(
		"T11 — Dally–Seitz: structured vs anonymous virtual channels on a ring",
		"ring", "discipline", "waves", "dep. acyclic", "deadlocked",
		"delivered", "messages", "steps")
	for _, r := range rows {
		t.AddRow(r.Ring, r.Discipline, r.Waves, r.DepAcyclic, r.Deadlocked,
			r.Delivered, r.Messages, r.Steps)
	}
	return t
}

func init() {
	register(Experiment{
		ID:    "T11",
		Title: "Section 1 — Dally–Seitz deadlock avoidance via VC classes",
		Run: func(cfg Config) []*stats.Table {
			return []*stats.Table{t11Table(T11DallySeitz(cfg))}
		},
	})
}
