package core

import (
	"fmt"
	"math"

	"wormhole/internal/stats"
	"wormhole/internal/topology"
	"wormhole/internal/traffic"
	"wormhole/internal/vcsim"
)

// T12 measures the steady-state open-loop regime on the traffic engine:
// each butterfly input injects a continuous Poisson stream of uniform
// messages, and the network is observed at steady state through warmup /
// measurement / drain windows. Two tables come out:
//
//   - latency vs offered load per B — each curve is flat near the
//     contention-free latency until the offered load hits the router's
//     knee, then bends upward as queueing dominates;
//   - saturation rate vs B — the knee location found by deterministic
//     bisection, which grows faster than linearly in B (the open-loop
//     counterpart of the paper's superlinear batch speedup; compare the
//     per-channel column, which would be flat if the benefit were linear).
//
// Every (B, rate) curve point and every per-B saturation search is an
// independent job fanned across the parallel harness.

// T12Row is one latency-vs-load curve point.
type T12Row struct {
	N, B        int
	Offered     float64
	Accepted    float64
	Messages    int
	TrackedDone int // tracked messages with a measured latency
	MeanLat     float64
	P50, P95    float64
	P99         float64
	Saturated   bool
}

// T12SatRow is one saturation-search result.
type T12SatRow struct {
	N, B    int
	SatRate float64
	Probes  int
}

// t12Params bundles the sweep geometry so the curve and search halves
// cannot disagree about scale.
type t12Params struct {
	n          int
	bs         []int
	rates      []float64
	warmup     int
	measure    int
	drain      int
	maxBacklog int
	searchHi   float64
	searchIter int
}

func t12Scale(cfg Config) t12Params {
	p := t12Params{
		n:          64,
		bs:         []int{1, 2, 4, 8},
		rates:      []float64{0.05, 0.10, 0.15, 0.20, 0.30, 0.45, 0.65, 0.90},
		warmup:     256,
		measure:    1024,
		drain:      4096,
		maxBacklog: 16384,
		searchHi:   4,
		searchIter: 12,
	}
	if cfg.Quick {
		p = t12Params{
			n:          16,
			bs:         []int{1, 4},
			rates:      []float64{0.05, 0.20, 0.50},
			warmup:     32,
			measure:    128,
			drain:      512,
			maxBacklog: 2048,
			searchHi:   2,
			searchIter: 6,
		}
	}
	return p
}

func (p t12Params) traffic(cfg Config, b int, rate float64, seed uint64) traffic.Config {
	return traffic.Config{
		Net:             traffic.NewButterflyNet(p.n),
		VirtualChannels: b,
		MessageLength:   topology.Log2(p.n),
		Arbitration:     vcsim.ArbAge,
		Process:         traffic.Poisson,
		Rate:            rate,
		Pattern:         traffic.Uniform,
		Warmup:          p.warmup,
		Measure:         p.measure,
		Drain:           p.drain,
		MaxBacklog:      p.maxBacklog,
		Seed:            seed,
		Shards:          cfg.Shards,
		Metrics:         cfg.metrics(),
	}
}

// T12OpenLoop sweeps latency-vs-load curve points, one job per (B, rate).
func T12OpenLoop(cfg Config) []T12Row {
	p := t12Scale(cfg)
	rows := mapJobs(cfg, len(p.bs)*len(p.rates), func(i int) T12Row {
		b, rate := p.bs[i/len(p.rates)], p.rates[i%len(p.rates)]
		seed := cfg.Seed + uint64(b)*1009 + uint64(rate*1e6)
		res, err := traffic.Run(p.traffic(cfg, b, rate, seed))
		if err != nil {
			panic(fmt.Sprintf("T12: %v", err))
		}
		return T12Row{
			N: p.n, B: b,
			Offered:     rate,
			Accepted:    res.Accepted,
			Messages:    res.Injected,
			TrackedDone: res.TrackedDone,
			MeanLat:     res.MeanLatency,
			P50:         res.P50,
			P95:         res.P95,
			P99:         res.P99,
			Saturated:   res.Saturated,
		}
	})
	return rows
}

// T12Saturation bisects the saturation rate, one job per B.
func T12Saturation(cfg Config) []T12SatRow {
	p := t12Scale(cfg)
	return mapJobs(cfg, len(p.bs), func(i int) T12SatRow {
		b := p.bs[i]
		seed := cfg.Seed + uint64(b)*7919
		sr, err := traffic.SaturationRate(
			p.traffic(cfg, b, 1 /* overwritten per probe */, seed),
			traffic.SearchOptions{Hi: p.searchHi, Iters: p.searchIter})
		if err != nil {
			panic(fmt.Sprintf("T12: saturation search B=%d: %v", b, err))
		}
		return T12SatRow{N: p.n, B: b, SatRate: sr.Rate, Probes: len(sr.Probes)}
	})
}

func t12CurveTable(rows []T12Row) *stats.Table {
	t := stats.NewTable(
		"T12 — open-loop steady state: latency vs offered load (Poisson, uniform)",
		"n", "B", "offered", "accepted", "messages",
		"mean latency", "p50", "p95", "p99", "saturated")
	for _, r := range rows {
		// A point that collapsed before any tracked message completed has
		// no latency sample; render "-" rather than a misleading 0.
		lat := func(v float64) float64 {
			if r.TrackedDone == 0 {
				return math.NaN()
			}
			return v
		}
		t.AddRow(r.N, r.B, r.Offered, r.Accepted, r.Messages,
			lat(r.MeanLat), lat(r.P50), lat(r.P95), lat(r.P99), r.Saturated)
	}
	return t
}

func t12SatTable(rows []T12SatRow) *stats.Table {
	t := stats.NewTable(
		"T12 — saturation rate vs B (bisection on offered load)",
		"n", "B", "sat rate", "vs B=1", "per channel", "probes")
	var base float64
	for _, r := range rows {
		if r.B == 1 {
			base = r.SatRate
		}
	}
	for _, r := range rows {
		t.AddRow(r.N, r.B, r.SatRate, stats.Ratio(r.SatRate, base),
			r.SatRate/float64(r.B), r.Probes)
	}
	return t
}

func init() {
	register(Experiment{
		ID:    "T12",
		Title: "Open-loop steady state — latency-vs-load curves and saturation rate vs B",
		Run: func(cfg Config) []*stats.Table {
			return []*stats.Table{
				t12CurveTable(T12OpenLoop(cfg)),
				t12SatTable(T12Saturation(cfg)),
			}
		},
	})
}
