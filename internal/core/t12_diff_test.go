package core

// Cross-engine differential test at the experiment level: every T12 load
// point (and one saturation search per B) executed through both the
// blocked-worm wakeup engine and the retained naive scan must produce
// identical traffic.Results — which is exactly the property that lets the
// T12 tables stay byte-identical across the engine swap. Runs at the
// quick scale the CI smoke uses; the vcsim-level differential tests cover
// the raw config space.

import (
	"reflect"
	"testing"

	"wormhole/internal/traffic"
)

func TestT12LoadPointsWakeupMatchesNaive(t *testing.T) {
	p := t12Scale(Config{Quick: true})
	for _, b := range p.bs {
		for _, rate := range p.rates {
			seed := uint64(42) + uint64(b)*1009 + uint64(rate*1e6)
			cfg := p.traffic(Config{Quick: true}, b, rate, seed)
			naiveCfg := cfg
			naiveCfg.NaiveScan = true
			wake, err := traffic.Run(cfg)
			if err != nil {
				t.Fatalf("B=%d rate=%g: %v", b, rate, err)
			}
			naive, err := traffic.Run(naiveCfg)
			if err != nil {
				t.Fatalf("B=%d rate=%g (naive): %v", b, rate, err)
			}
			if !reflect.DeepEqual(wake, naive) {
				t.Errorf("B=%d rate=%g: engines disagree\nwakeup: %+v\n naive: %+v", b, rate, wake, naive)
			}
		}
	}
}

func TestT12SaturationSearchWakeupMatchesNaive(t *testing.T) {
	p := t12Scale(Config{Quick: true})
	for _, b := range p.bs {
		cfg := p.traffic(Config{Quick: true}, b, 1, uint64(42)+uint64(b)*7919)
		naiveCfg := cfg
		naiveCfg.NaiveScan = true
		opts := traffic.SearchOptions{Hi: p.searchHi, Iters: p.searchIter}
		wake, err := traffic.SaturationRate(cfg, opts)
		if err != nil {
			t.Fatalf("B=%d: %v", b, err)
		}
		naive, err := traffic.SaturationRate(naiveCfg, opts)
		if err != nil {
			t.Fatalf("B=%d (naive): %v", b, err)
		}
		if !reflect.DeepEqual(wake, naive) {
			t.Errorf("B=%d: saturation searches disagree\nwakeup: %+v\n naive: %+v", b, wake, naive)
		}
	}
}
