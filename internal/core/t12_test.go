package core

import (
	"strings"
	"testing"
)

// TestT12WorkersByteIdentity is the acceptance contract for the open-loop
// experiment, mirroring TestParallelDeterminism but pinning the exact
// worker counts the issue names: rendered tables must be byte-identical
// for Workers ∈ {1, 4, 8}. (TestParallelDeterminism also covers T12 via
// the registry; this test exists so a registry refactor cannot silently
// drop the contract.)
func TestT12WorkersByteIdentity(t *testing.T) {
	render := func(workers int) string {
		tables, err := Run("T12", Config{Seed: 42, Quick: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, tab := range tables {
			sb.WriteString(tab.String())
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	base := render(1)
	for _, w := range []int{4, 8} {
		if got := render(w); got != base {
			t.Errorf("tables differ between Workers=1 and Workers=%d:\n--- 1 ---\n%s\n--- %d ---\n%s",
				w, base, w, got)
		}
	}
	if !strings.Contains(base, "sat rate") {
		t.Fatal("saturation table missing from T12 output")
	}
}

// TestT12QuickShape sanity-checks the quick-mode tables: curve points for
// every (B, rate) pair and one saturation row per B, with the saturation
// rate not decreasing in B.
func TestT12QuickShape(t *testing.T) {
	cfg := Config{Seed: 7, Quick: true}
	p := t12Scale(cfg)
	rows := T12OpenLoop(cfg)
	if len(rows) != len(p.bs)*len(p.rates) {
		t.Fatalf("curve rows = %d, want %d", len(rows), len(p.bs)*len(p.rates))
	}
	for _, r := range rows {
		if r.Messages == 0 {
			t.Errorf("B=%d rate=%g: no messages injected", r.B, r.Offered)
		}
	}
	sat := T12Saturation(cfg)
	if len(sat) != len(p.bs) {
		t.Fatalf("saturation rows = %d, want %d", len(sat), len(p.bs))
	}
	for i := 1; i < len(sat); i++ {
		if sat[i].SatRate < sat[i-1].SatRate {
			t.Errorf("saturation rate decreasing: B=%d → %g, B=%d → %g",
				sat[i-1].B, sat[i-1].SatRate, sat[i].B, sat[i].SatRate)
		}
	}
}
