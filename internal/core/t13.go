package core

import (
	"fmt"
	"math"

	"wormhole/internal/stats"
	"wormhole/internal/topology"
	"wormhole/internal/traffic"
	"wormhole/internal/vcsim"
)

// T13 studies buffer *architecture* under the open-loop steady-state
// engine: at a fixed number of virtual channels B, how much of the
// paper's B-scaling benefit can lane depth buy instead? Each (B, d,
// static-vs-shared) configuration of the 64-input butterfly carries the
// same Poisson/uniform workload as T12, and two tables come out:
//
//   - latency vs offered load per configuration — deeper lanes push the
//     queueing knee to higher loads at the same B, because a blocked worm
//     compresses into its lane storage and releases its upstream edges;
//   - saturation rate over the (B, d, shared) grid — located by the same
//     deterministic bisection as T12. At fixed B the rate is monotone
//     non-decreasing in d (pinned by tests), and the shared pool is
//     compared row-by-row against private lanes of equal total storage.
//
// d = 1 static rows run the paper's rigid-worm model bit-for-bit, so the
// table's first row per B is exactly T12's router; every other row is a
// buffer architecture the paper's model cannot express.

// T13Arch is one buffer-architecture grid point.
type T13Arch struct {
	B, D   int
	Shared bool
}

func (a T13Arch) label() string {
	kind := "static"
	if a.Shared {
		kind = "shared"
	}
	return fmt.Sprintf("B=%d d=%d %s", a.B, a.D, kind)
}

// T13Row is one latency-vs-load curve point.
type T13Row struct {
	N           int
	Arch        T13Arch
	Offered     float64
	Accepted    float64
	Messages    int
	TrackedDone int
	MeanLat     float64
	P50, P95    float64
	P99         float64
	Saturated   bool
}

// T13SatRow is one saturation-search result.
type T13SatRow struct {
	N       int
	Arch    T13Arch
	SatRate float64
	Probes  int
}

// t13Params bundles the sweep geometry so the curve and search halves
// cannot disagree about scale.
type t13Params struct {
	n          int
	bs         []int
	depths     []int
	rates      []float64
	warmup     int
	measure    int
	drain      int
	maxBacklog int
	searchHi   float64
	searchIter int
	shards     int
}

func t13Scale(cfg Config) t13Params {
	p := t13Params{
		n:          64,
		bs:         []int{2, 4},
		depths:     []int{1, 2, 4},
		rates:      []float64{0.10, 0.25, 0.40, 0.60, 0.85},
		warmup:     256,
		measure:    1024,
		drain:      4096,
		maxBacklog: 16384,
		searchHi:   4,
		searchIter: 12,
	}
	if cfg.Quick {
		p = t13Params{
			n:          16,
			bs:         []int{2},
			depths:     []int{1, 2, 4},
			rates:      []float64{0.10, 0.30},
			warmup:     32,
			measure:    128,
			drain:      512,
			maxBacklog: 2048,
			searchHi:   2,
			searchIter: 8,
		}
	}
	p.shards = cfg.Shards
	return p
}

// archs flattens the (B, d, shared) grid in table order: per B, depths
// ascending, static before shared.
func (p t13Params) archs() []T13Arch {
	out := make([]T13Arch, 0, len(p.bs)*len(p.depths)*2)
	for _, b := range p.bs {
		for _, shared := range []bool{false, true} {
			for _, d := range p.depths {
				out = append(out, T13Arch{B: b, D: d, Shared: shared})
			}
		}
	}
	return out
}

func (p t13Params) traffic(a T13Arch, rate float64, seed uint64) traffic.Config {
	return traffic.Config{
		Net:             traffic.NewButterflyNet(p.n),
		VirtualChannels: a.B,
		LaneDepth:       a.D,
		SharedPool:      a.Shared,
		MessageLength:   topology.Log2(p.n),
		Arbitration:     vcsim.ArbAge,
		Process:         traffic.Poisson,
		Rate:            rate,
		Pattern:         traffic.Uniform,
		Warmup:          p.warmup,
		Measure:         p.measure,
		Drain:           p.drain,
		MaxBacklog:      p.maxBacklog,
		Seed:            seed,
		Shards:          p.shards,
	}
}

// t13Seed derives a per-architecture seed. Depth deliberately does not
// enter the derivation: all depths of one (B, shared) family probe the
// same arrival sample paths, so the depth axis — the one the saturation
// monotonicity claim quantifies over — is compared like-for-like.
func t13Seed(cfg Config, a T13Arch) uint64 {
	s := cfg.Seed + uint64(a.B)*2707
	if a.Shared {
		s += 7127
	}
	return s
}

// T13OpenLoop sweeps latency-vs-load curve points, one job per
// (architecture, rate).
func T13OpenLoop(cfg Config) []T13Row {
	p := t13Scale(cfg)
	archs := p.archs()
	return mapJobs(cfg, len(archs)*len(p.rates), func(i int) T13Row {
		a, rate := archs[i/len(p.rates)], p.rates[i%len(p.rates)]
		seed := t13Seed(cfg, a) + uint64(rate*1e6)
		tc := p.traffic(a, rate, seed)
		tc.Metrics = cfg.metrics()
		res, err := traffic.Run(tc)
		if err != nil {
			panic(fmt.Sprintf("T13: %s: %v", a.label(), err))
		}
		return T13Row{
			N: p.n, Arch: a,
			Offered:     rate,
			Accepted:    res.Accepted,
			Messages:    res.Injected,
			TrackedDone: res.TrackedDone,
			MeanLat:     res.MeanLatency,
			P50:         res.P50,
			P95:         res.P95,
			P99:         res.P99,
			Saturated:   res.Saturated,
		}
	})
}

// T13Saturation bisects the saturation rate, one job per architecture.
func T13Saturation(cfg Config) []T13SatRow {
	p := t13Scale(cfg)
	archs := p.archs()
	return mapJobs(cfg, len(archs), func(i int) T13SatRow {
		a := archs[i]
		tc := p.traffic(a, 1 /* overwritten per probe */, t13Seed(cfg, a))
		tc.Metrics = cfg.metrics() // probes run sequentially within the job
		sr, err := traffic.SaturationRate(tc,
			traffic.SearchOptions{Hi: p.searchHi, Iters: p.searchIter})
		if err != nil {
			panic(fmt.Sprintf("T13: saturation search %s: %v", a.label(), err))
		}
		return T13SatRow{N: p.n, Arch: a, SatRate: sr.Rate, Probes: len(sr.Probes)}
	})
}

func t13CurveTable(rows []T13Row) *stats.Table {
	t := stats.NewTable(
		"T13 — buffer architectures: latency vs offered load (Poisson, uniform)",
		"n", "B", "d", "pool", "offered", "accepted", "messages",
		"mean latency", "p95", "p99", "saturated")
	for _, r := range rows {
		lat := func(v float64) float64 {
			if r.TrackedDone == 0 {
				return math.NaN()
			}
			return v
		}
		t.AddRow(r.N, r.Arch.B, r.Arch.D, poolLabel(r.Arch.Shared), r.Offered, r.Accepted,
			r.Messages, lat(r.MeanLat), lat(r.P95), lat(r.P99), r.Saturated)
	}
	return t
}

func t13SatTable(rows []T13SatRow) *stats.Table {
	t := stats.NewTable(
		"T13 — saturation rate over (B, lane depth, pool) (bisection on offered load)",
		"n", "B", "d", "pool", "sat rate", "vs d=1", "per flit buffer", "probes")
	base := map[string]float64{}
	for _, r := range rows {
		if r.Arch.D == 1 {
			base[fmt.Sprintf("%d/%v", r.Arch.B, r.Arch.Shared)] = r.SatRate
		}
	}
	for _, r := range rows {
		t.AddRow(r.N, r.Arch.B, r.Arch.D, poolLabel(r.Arch.Shared), r.SatRate,
			stats.Ratio(r.SatRate, base[fmt.Sprintf("%d/%v", r.Arch.B, r.Arch.Shared)]),
			r.SatRate/float64(r.Arch.B*r.Arch.D), r.Probes)
	}
	return t
}

func poolLabel(shared bool) string {
	if shared {
		return "shared"
	}
	return "static"
}

func init() {
	register(Experiment{
		ID:    "T13",
		Title: "Buffer architectures — lane depth and shared pools: load curves and saturation",
		Run: func(cfg Config) []*stats.Table {
			return []*stats.Table{
				t13CurveTable(T13OpenLoop(cfg)),
				t13SatTable(T13Saturation(cfg)),
			}
		},
	})
}
