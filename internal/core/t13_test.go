package core

import (
	"fmt"
	"strings"
	"testing"
)

// TestT13WorkersByteIdentity pins the harness determinism contract for
// the buffer-architecture experiment: rendered tables must be
// byte-identical for Workers ∈ {1, 4, 8}.
func TestT13WorkersByteIdentity(t *testing.T) {
	render := func(workers int) string {
		tables, err := Run("T13", Config{Seed: 42, Quick: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, tab := range tables {
			sb.WriteString(tab.String())
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	base := render(1)
	for _, w := range []int{4, 8} {
		if got := render(w); got != base {
			t.Errorf("tables differ between Workers=1 and Workers=%d:\n--- 1 ---\n%s\n--- %d ---\n%s",
				w, base, w, got)
		}
	}
	if !strings.Contains(base, "sat rate") {
		t.Fatal("saturation table missing from T13 output")
	}
}

// TestT13SaturationMonotoneInDepth is the experiment's acceptance
// criterion: at fixed B and pool mode, the saturation rate is monotone
// non-decreasing in lane depth — extra lane storage can only absorb more
// backlog. The depth axis shares one arrival sample path per (B, pool)
// family (see t13Seed), so this is a like-for-like comparison, not a
// statistical one.
func TestT13SaturationMonotoneInDepth(t *testing.T) {
	cfg := Config{Seed: 42, Quick: true}
	p := t13Scale(cfg)
	rows := T13Saturation(cfg)
	if want := len(p.bs) * len(p.depths) * 2; len(rows) != want {
		t.Fatalf("saturation rows = %d, want %d", len(rows), want)
	}
	last := map[string]T13SatRow{}
	for _, r := range rows {
		key := fmt.Sprintf("B=%d pool=%v", r.Arch.B, r.Arch.Shared)
		if prev, ok := last[key]; ok {
			if r.Arch.D <= prev.Arch.D {
				t.Fatalf("%s: depths out of order (%d after %d)", key, r.Arch.D, prev.Arch.D)
			}
			if r.SatRate < prev.SatRate {
				t.Errorf("%s: saturation rate decreasing in depth: d=%d → %g, d=%d → %g",
					key, prev.Arch.D, prev.SatRate, r.Arch.D, r.SatRate)
			}
		}
		last[key] = r
	}
}

// TestT13QuickShape sanity-checks the quick-mode curve sweep: a row per
// (architecture, rate) with traffic actually flowing, and the d=1 static
// rows — the paper's model — agreeing exactly with a direct rigid-engine
// run would be redundant with the vcsim gate tests; here we just demand
// the sweep covers the full grid.
func TestT13QuickShape(t *testing.T) {
	cfg := Config{Seed: 7, Quick: true}
	p := t13Scale(cfg)
	rows := T13OpenLoop(cfg)
	if want := len(p.archs()) * len(p.rates); len(rows) != want {
		t.Fatalf("curve rows = %d, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.Messages == 0 {
			t.Errorf("%s rate=%g: no messages injected", r.Arch.label(), r.Offered)
		}
	}
	if got := (T13Arch{B: 2, D: 4, Shared: true}).label(); got != "B=2 d=4 shared" {
		t.Errorf("arch label = %q", got)
	}
	if got := (T13Arch{B: 4, D: 1}).label(); got != "B=4 d=1 static" {
		t.Errorf("arch label = %q", got)
	}
}
