package core

import (
	"fmt"
	"math"

	"wormhole/internal/stats"
	"wormhole/internal/topology"
	"wormhole/internal/traffic"
	"wormhole/internal/vcsim"
)

// T14 is the scale study: the T13 buffer-architecture questions asked at
// butterfly sizes where the paper-scale harness used to be unaffordable.
// Each (B, d) point of a 256-input butterfly (CI scale; -scale 1024 runs
// the documented offline size) carries the same Poisson/uniform open-loop
// workload as T12/T13, producing latency-vs-load curves and bisected
// saturation rates. The sweep leans on the engine work that motivated it:
// arena-backed SoA storage keeps the standing backlog of a 256-wide
// network cheap to step, event-horizon fast-forward skips the idle
// cycles light probes spend waiting for arrivals, and the independent
// (arch, rate) jobs fan out over the parallel job runner.

// T14Arch is one (virtual channels, lane depth) grid point; lanes are
// static (T13 covers the shared-pool axis at n = 64).
type T14Arch struct {
	B, D int
}

func (a T14Arch) label() string { return fmt.Sprintf("B=%d d=%d", a.B, a.D) }

// T14Row is one latency-vs-load curve point.
type T14Row struct {
	N           int
	Arch        T14Arch
	Offered     float64
	Accepted    float64
	Messages    int
	TrackedDone int
	MeanLat     float64
	P50, P95    float64
	P99         float64
	Saturated   bool
}

// T14SatRow is one saturation-search result.
type T14SatRow struct {
	N       int
	Arch    T14Arch
	SatRate float64
	Probes  int
}

// t14Params bundles the sweep geometry so the curve and search halves
// cannot disagree about scale.
type t14Params struct {
	n          int
	archs      []T14Arch
	rates      []float64
	warmup     int
	measure    int
	drain      int
	maxBacklog int
	searchHi   float64
	searchIter int
	shards     int
}

func t14Scale(cfg Config) t14Params {
	p := t14Params{
		n:          256,
		archs:      []T14Arch{{2, 1}, {2, 4}, {4, 1}, {4, 4}},
		rates:      []float64{0.10, 0.30, 0.50},
		warmup:     512,
		measure:    2048,
		drain:      8192,
		maxBacklog: 1 << 16,
		searchHi:   2,
		searchIter: 10,
		shards:     cfg.Shards,
	}
	if cfg.Scale > 0 {
		n := cfg.Scale
		if n&(n-1) != 0 || n < 8 {
			panic(fmt.Sprintf("T14: -scale %d is not a power-of-two butterfly size ≥ 8", n))
		}
		p.n = n
	}
	if cfg.Quick {
		p.n = 64
		p.rates = []float64{0.10, 0.30}
		p.warmup = 64
		p.measure = 256
		p.drain = 1024
		p.maxBacklog = 4096
		p.searchIter = 6
	}
	return p
}

func (p t14Params) traffic(a T14Arch, rate float64, seed uint64) traffic.Config {
	return traffic.Config{
		Net:             traffic.NewButterflyNet(p.n),
		VirtualChannels: a.B,
		LaneDepth:       a.D,
		MessageLength:   topology.Log2(p.n),
		Arbitration:     vcsim.ArbAge,
		Process:         traffic.Poisson,
		Rate:            rate,
		Pattern:         traffic.Uniform,
		Warmup:          p.warmup,
		Measure:         p.measure,
		Drain:           p.drain,
		MaxBacklog:      p.maxBacklog,
		Seed:            seed,
		Shards:          p.shards,
	}
}

// t14Seed derives a per-architecture seed. As in T13, depth does not
// enter the derivation: both depths of one B probe the same arrival
// sample paths, so the depth comparison is like-for-like.
func t14Seed(cfg Config, a T14Arch) uint64 {
	return cfg.Seed + uint64(a.B)*4099
}

// T14OpenLoop sweeps latency-vs-load curve points, one job per
// (architecture, rate).
func T14OpenLoop(cfg Config) []T14Row {
	p := t14Scale(cfg)
	return mapJobs(cfg, len(p.archs)*len(p.rates), func(i int) T14Row {
		a, rate := p.archs[i/len(p.rates)], p.rates[i%len(p.rates)]
		seed := t14Seed(cfg, a) + uint64(rate*1e6)
		tc := p.traffic(a, rate, seed)
		tc.Metrics = cfg.metrics()
		res, err := traffic.Run(tc)
		if err != nil {
			panic(fmt.Sprintf("T14: %s: %v", a.label(), err))
		}
		return T14Row{
			N: p.n, Arch: a,
			Offered:     rate,
			Accepted:    res.Accepted,
			Messages:    res.Injected,
			TrackedDone: res.TrackedDone,
			MeanLat:     res.MeanLatency,
			P50:         res.P50,
			P95:         res.P95,
			P99:         res.P99,
			Saturated:   res.Saturated,
		}
	})
}

// T14Saturation bisects the saturation rate, one job per architecture.
func T14Saturation(cfg Config) []T14SatRow {
	p := t14Scale(cfg)
	return mapJobs(cfg, len(p.archs), func(i int) T14SatRow {
		a := p.archs[i]
		tc := p.traffic(a, 1 /* overwritten per probe */, t14Seed(cfg, a))
		tc.Metrics = cfg.metrics() // probes run sequentially within the job
		sr, err := traffic.SaturationRate(tc,
			traffic.SearchOptions{Hi: p.searchHi, Iters: p.searchIter})
		if err != nil {
			panic(fmt.Sprintf("T14: saturation search %s: %v", a.label(), err))
		}
		return T14SatRow{N: p.n, Arch: a, SatRate: sr.Rate, Probes: len(sr.Probes)}
	})
}

func t14CurveTable(rows []T14Row) *stats.Table {
	t := stats.NewTable(
		"T14 — scale study: latency vs offered load on the wide butterfly (Poisson, uniform)",
		"n", "B", "d", "offered", "accepted", "messages",
		"mean latency", "p95", "p99", "saturated")
	for _, r := range rows {
		lat := func(v float64) float64 {
			if r.TrackedDone == 0 {
				return math.NaN()
			}
			return v
		}
		t.AddRow(r.N, r.Arch.B, r.Arch.D, r.Offered, r.Accepted,
			r.Messages, lat(r.MeanLat), lat(r.P95), lat(r.P99), r.Saturated)
	}
	return t
}

func t14SatTable(rows []T14SatRow) *stats.Table {
	t := stats.NewTable(
		"T14 — scale study: saturation rate over (B, lane depth) (bisection on offered load)",
		"n", "B", "d", "sat rate", "vs d=1", "probes")
	base := map[int]float64{}
	for _, r := range rows {
		if r.Arch.D == 1 {
			base[r.Arch.B] = r.SatRate
		}
	}
	for _, r := range rows {
		t.AddRow(r.N, r.Arch.B, r.Arch.D, r.SatRate,
			stats.Ratio(r.SatRate, base[r.Arch.B]), r.Probes)
	}
	return t
}

func init() {
	register(Experiment{
		ID:    "T14",
		Title: "Scale study — 256-input butterfly (offline: -scale 1024): load curves and saturation over (B, d)",
		Run: func(cfg Config) []*stats.Table {
			return []*stats.Table{
				t14CurveTable(T14OpenLoop(cfg)),
				t14SatTable(T14Saturation(cfg)),
			}
		},
	})
}
