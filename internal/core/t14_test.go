package core

import (
	"bytes"
	"testing"
)

// TestT14QuickShape runs the quick-scale T14 sweep and pins the claims
// the experiment exists to make: every grid point produces a row, the
// light load point is unsaturated for every architecture, and at fixed B
// the bisected saturation rate is monotone non-decreasing in lane depth
// (the depths share arrival sample paths by seed construction, so the
// comparison is like-for-like).
func TestT14QuickShape(t *testing.T) {
	cfg := Config{Seed: 42, Quick: true}
	p := t14Scale(cfg)

	rows := T14OpenLoop(cfg)
	if len(rows) != len(p.archs)*len(p.rates) {
		t.Fatalf("T14 curve rows = %d, want %d", len(rows), len(p.archs)*len(p.rates))
	}
	for _, r := range rows {
		if r.Offered == p.rates[0] && r.Saturated {
			t.Errorf("%s: light load %.2f reported saturated", r.Arch.label(), r.Offered)
		}
		if r.Messages == 0 {
			t.Errorf("%s at %.2f: no messages injected", r.Arch.label(), r.Offered)
		}
	}

	if got := (T14Arch{2, 4}).label(); got != "B=2 d=4" {
		t.Errorf("arch label = %q", got)
	}

	sat := T14Saturation(cfg)
	if len(sat) != len(p.archs) {
		t.Fatalf("T14 saturation rows = %d, want %d", len(sat), len(p.archs))
	}
	byArch := map[T14Arch]float64{}
	for _, r := range sat {
		if r.SatRate <= 0 {
			t.Errorf("%s: saturation rate %.4f not positive", r.Arch.label(), r.SatRate)
		}
		byArch[r.Arch] = r.SatRate
	}
	for _, b := range []int{2, 4} {
		if byArch[T14Arch{b, 4}] < byArch[T14Arch{b, 1}] {
			t.Errorf("B=%d: sat rate decreased with depth: d=1 %.4f → d=4 %.4f",
				b, byArch[T14Arch{b, 1}], byArch[T14Arch{b, 4}])
		}
	}
}

// TestT14WorkerByteIdentity pins that the job-runner fan-out does not
// leak into results: the full T14 tables are byte-identical for every
// worker count.
func TestT14WorkerByteIdentity(t *testing.T) {
	render := func(workers int) []byte {
		var buf bytes.Buffer
		tables, err := Run("T14", Config{Seed: 42, Quick: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for _, tb := range tables {
			buf.WriteString(tb.String())
		}
		return buf.Bytes()
	}
	want := render(1)
	for _, w := range []int{4, 8} {
		if got := render(w); !bytes.Equal(got, want) {
			t.Fatalf("T14 tables differ between workers=1 and workers=%d", w)
		}
	}
}
