package core

import (
	"fmt"
	"math"

	"wormhole/internal/stats"
	"wormhole/internal/topology"
	"wormhole/internal/traffic"
	"wormhole/internal/vcsim"
)

// T15 is the parallel scale study: the T14 open-loop questions asked at
// butterfly sizes only the sharded stepper makes affordable. A
// 1024-input butterfly (CI scale; -scale 4096 runs the documented
// offline size) carries the Poisson/uniform open-loop workload across
// the knee into deep saturation, where the standing backlog holds on
// the order of a million flits in flight — the regime where the sharded
// stepper's per-goroutine edge bands each carry enough contest work to
// amortize the fan-out barriers.
//
// Shards is a pure wall-clock lever: every table is byte-identical for
// every Config.Shards (CI's shard-determinism matrix diffs T15 along
// with T12–T14, and the scale-smoke step times -shards 1 against
// -shards 4 on the same output). Unlike T12–T14 there is no saturation
// bisection half — at this scale the load curve already brackets the
// knee, and CI wall clock goes to the deep-saturation points instead.

// T15Row is one latency-vs-load curve point.
type T15Row struct {
	N           int
	B           int
	Offered     float64
	Accepted    float64
	Messages    int
	TrackedDone int
	MeanLat     float64
	P50, P95    float64
	P99         float64
	Backlog     int // messages still in flight when the run stopped
	Saturated   bool
}

// t15Params bundles the sweep geometry.
type t15Params struct {
	n          int
	bs         []int
	rates      []float64
	warmup     int
	measure    int
	drain      int
	maxBacklog int
	shards     int
}

func t15Scale(cfg Config) t15Params {
	p := t15Params{
		n:          1024,
		bs:         []int{2, 4},
		rates:      []float64{0.10, 0.25, 0.40},
		warmup:     256,
		measure:    1024,
		drain:      16384,
		maxBacklog: 1 << 20,
		shards:     cfg.Shards,
	}
	if cfg.Scale > 0 {
		n := cfg.Scale
		if n&(n-1) != 0 || n < 256 {
			panic(fmt.Sprintf("T15: -scale %d is not a power-of-two butterfly size ≥ 256", n))
		}
		p.n = n
	}
	if cfg.Quick {
		// Quick keeps the full 1024-input network — the point of T15 is
		// the scale — and shrinks only the observation windows.
		p.rates = []float64{0.25, 0.40}
		p.bs = []int{2}
		p.warmup = 64
		p.measure = 192
		p.drain = 2048
		p.maxBacklog = 1 << 18
	}
	return p
}

func (p t15Params) traffic(b int, rate float64, seed uint64) traffic.Config {
	return traffic.Config{
		Net:             traffic.NewButterflyNet(p.n),
		VirtualChannels: b,
		MessageLength:   topology.Log2(p.n),
		Arbitration:     vcsim.ArbAge,
		Process:         traffic.Poisson,
		Rate:            rate,
		Pattern:         traffic.Uniform,
		Warmup:          p.warmup,
		Measure:         p.measure,
		Drain:           p.drain,
		MaxBacklog:      p.maxBacklog,
		Seed:            seed,
		Shards:          p.shards,
	}
}

// t15Seed matches the T12/T14 convention: per-B seeds so every rate of
// one B probes the same arrival sample paths.
func t15Seed(cfg Config, b int) uint64 {
	return cfg.Seed + uint64(b)*8209
}

// T15OpenLoop sweeps latency-vs-load curve points, one job per
// (B, rate). The jobs fan across the harness workers as usual; pass
// -workers 1 when timing shards, so the sharded stepper is the only
// parallelism in play.
func T15OpenLoop(cfg Config) []T15Row {
	p := t15Scale(cfg)
	return mapJobs(cfg, len(p.bs)*len(p.rates), func(i int) T15Row {
		b, rate := p.bs[i/len(p.rates)], p.rates[i%len(p.rates)]
		tc := p.traffic(b, rate, t15Seed(cfg, b)+uint64(rate*1e6))
		tc.Metrics = cfg.metrics()
		res, err := traffic.Run(tc)
		if err != nil {
			panic(fmt.Sprintf("T15: B=%d rate=%g: %v", b, rate, err))
		}
		return T15Row{
			N: p.n, B: b,
			Offered:     rate,
			Accepted:    res.Accepted,
			Messages:    res.Injected,
			TrackedDone: res.TrackedDone,
			MeanLat:     res.MeanLatency,
			P50:         res.P50,
			P95:         res.P95,
			P99:         res.P99,
			Backlog:     res.Backlog,
			Saturated:   res.Saturated,
		}
	})
}

func t15CurveTable(rows []T15Row) *stats.Table {
	t := stats.NewTable(
		"T15 — parallel scale study: latency vs offered load on the sharded wide butterfly (Poisson, uniform)",
		"n", "B", "offered", "accepted", "messages",
		"mean latency", "p95", "p99", "backlog", "saturated")
	for _, r := range rows {
		lat := func(v float64) float64 {
			if r.TrackedDone == 0 {
				return math.NaN()
			}
			return v
		}
		t.AddRow(r.N, r.B, r.Offered, r.Accepted, r.Messages,
			lat(r.MeanLat), lat(r.P95), lat(r.P99), r.Backlog, r.Saturated)
	}
	return t
}

func init() {
	register(Experiment{
		ID:    "T15",
		Title: "Parallel scale study — 1024-input butterfly (offline: -scale 4096): load curves on the sharded stepper",
		Run: func(cfg Config) []*stats.Table {
			return []*stats.Table{t15CurveTable(T15OpenLoop(cfg))}
		},
	})
}
