package core

import (
	"testing"
)

// TestT15QuickShapes sanity-checks the parallel scale study at CI scale:
// the quick sweep keeps the full 1024-input butterfly, every curve point
// injects traffic, and the overloaded points carry the standing backlog
// the experiment exists to exercise.
func TestT15QuickShapes(t *testing.T) {
	rows := T15OpenLoop(quickCfg)
	p := t15Scale(quickCfg)
	if want := len(p.bs) * len(p.rates); len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.N != 1024 {
			t.Errorf("quick row ran n=%d; T15 must keep the full network", r.N)
		}
		if r.Messages == 0 {
			t.Errorf("B=%d rate=%g: no messages injected", r.B, r.Offered)
		}
		if r.Backlog < 0 {
			t.Errorf("B=%d rate=%g: negative backlog %d", r.B, r.Offered, r.Backlog)
		}
	}
}

// TestT15ScaleValidation pins the -scale guard: only power-of-two
// butterflies at least 256 wide are meaningful scale overrides.
func TestT15ScaleValidation(t *testing.T) {
	for _, bad := range []int{3, 100, 128} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("scale %d: expected panic", bad)
				}
			}()
			t15Scale(Config{Scale: bad})
		}()
	}
	if p := t15Scale(Config{Scale: 2048}); p.n != 2048 {
		t.Errorf("scale 2048 gave n=%d", p.n)
	}
}

// TestShardInvarianceAcrossExperiments is the core-layer rendering of the
// byte-identity contract CI enforces on full experiment output: the
// open-loop studies produce identical tables — down to the formatted
// string — for sequential and sharded configs.
func TestShardInvarianceAcrossExperiments(t *testing.T) {
	for _, id := range []string{"T12", "T15"} {
		id := id
		t.Run(id, func(t *testing.T) {
			seq, err := Run(id, quickCfg)
			if err != nil {
				t.Fatal(err)
			}
			shCfg := quickCfg
			shCfg.Shards = 4
			sh, err := Run(id, shCfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(seq) != len(sh) {
				t.Fatalf("table count differs: %d vs %d", len(seq), len(sh))
			}
			for i := range seq {
				if a, b := seq[i].String(), sh[i].String(); a != b {
					t.Errorf("table %d diverges across shard counts\nsequential:\n%s\nsharded:\n%s", i, a, b)
				}
			}
		})
	}
}
