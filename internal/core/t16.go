package core

import (
	"fmt"
	"math"

	"wormhole/internal/fault"
	"wormhole/internal/stats"
	"wormhole/internal/topology"
	"wormhole/internal/traffic"
	"wormhole/internal/vcsim"
)

// T16 is the graceful-degradation study: the paper argues virtual
// channels let traffic route around *blocked* resources; this experiment
// asks how far the same lane multiplicity carries when resources *fail*.
// A 64-input butterfly runs the open-loop Poisson/uniform workload at a
// fixed offered load below the B=1 knee while a seed-derived outage
// process (internal/fault) kills one lane per afflicted edge for a
// random window. The same schedule is applied at every B, so one killed
// lane is the whole link at B=1 and an eighth of it at B=8 — the
// VC-count axis is the degradation knob under test.
//
// Two properties make the sweep honest rather than anecdotal:
//
//   - fault.Generate's outage sets are nested across rates (the
//     candidate draw is rate-independent; the rate only thins it), so
//     accepted throughput is monotonically non-increasing in the fault
//     rate by construction, not by sampling luck;
//   - every (B, rate) point sees identical arrival sample paths (per-B
//     seeds, shared across rates), so curves differ only by the outage
//     process.
//
// Messages whose first edge is dead before injection go through the
// retry policy (capped exponential backoff in simulated time); worms
// blocked mid-flight park on the fault wait-queues until revival.

// T16Row is one degradation curve point.
type T16Row struct {
	N         int
	B         int
	FaultRate float64
	Outages   int // edges afflicted by the schedule at this rate
	Offered   float64
	Accepted  float64
	Messages  int
	Aborted   int
	MeanLat   float64
	P50, P95  float64
	P99       float64
	Backlog   int
	Saturated bool
}

// t16Params bundles the sweep geometry.
type t16Params struct {
	n          int
	bs         []int
	faultRates []float64
	rate       float64
	warmup     int
	measure    int
	drain      int
	meanOutage int
	maxBacklog int
	shards     int
}

func t16Scale(cfg Config) t16Params {
	p := t16Params{
		n:          64,
		bs:         []int{1, 2, 4, 8},
		faultRates: []float64{0, 0.1, 0.25, 0.5, 1.0},
		rate:       0.04,
		warmup:     128,
		measure:    768,
		drain:      1 << 14,
		meanOutage: 192,
		maxBacklog: 1 << 16,
		shards:     cfg.Shards,
	}
	if cfg.Quick {
		p.bs = []int{1, 8}
		p.faultRates = []float64{0, 0.5}
		p.warmup = 32
		p.measure = 192
		p.drain = 1 << 12
		p.meanOutage = 64
	}
	return p
}

// t16Schedule derives the outage process for one fault rate. Everything
// but the rate is fixed — seed, edge count, horizon, mean outage — so
// the schedules are nested across rates and shared across B.
func (p t16Params) t16Schedule(cfg Config, rate float64) fault.Schedule {
	return fault.Generate(fault.GenConfig{
		Seed:       cfg.Seed + 16001,
		NumEdges:   traffic.NewButterflyNet(p.n).G.NumEdges(),
		Horizon:    p.warmup + p.measure,
		Rate:       rate,
		MeanOutage: p.meanOutage,
		Lanes:      1,
	})
}

func (p t16Params) traffic(b int, sched fault.Schedule, seed uint64) traffic.Config {
	return traffic.Config{
		Net:             traffic.NewButterflyNet(p.n),
		VirtualChannels: b,
		MessageLength:   topology.Log2(p.n),
		Arbitration:     vcsim.ArbAge,
		Process:         traffic.Poisson,
		Rate:            p.rate,
		Pattern:         traffic.Uniform,
		Warmup:          p.warmup,
		Measure:         p.measure,
		Drain:           p.drain,
		MaxBacklog:      p.maxBacklog,
		Seed:            seed,
		Shards:          p.shards,
		Faults:          sched,
		Retry:           vcsim.RetryPolicy{MaxAttempts: 8, Backoff: 16, BackoffCap: 1024},
	}
}

// t16Seed matches the open-loop convention: per-B seeds, shared across
// fault rates, so each curve sweeps the outage axis against one fixed
// arrival sample path.
func t16Seed(cfg Config, b int) uint64 {
	return cfg.Seed + uint64(b)*16411
}

// t16Outages counts the edges the schedule afflicts (each edge draws at
// most one outage, opened by its first kill event).
func t16Outages(s fault.Schedule) int {
	n := 0
	for _, ev := range s {
		if ev.Kind == fault.KillLane || ev.Kind == fault.KillEdge {
			n++
		}
	}
	return n
}

// T16Degradation sweeps the (B, fault rate) grid, one job per point.
func T16Degradation(cfg Config) []T16Row {
	p := t16Scale(cfg)
	return mapJobs(cfg, len(p.bs)*len(p.faultRates), func(i int) T16Row {
		b, frate := p.bs[i/len(p.faultRates)], p.faultRates[i%len(p.faultRates)]
		sched := p.t16Schedule(cfg, frate)
		tc := p.traffic(b, sched, t16Seed(cfg, b))
		tc.Metrics = cfg.metrics()
		res, err := traffic.Run(tc)
		if err != nil {
			panic(fmt.Sprintf("T16: B=%d fault rate=%g: %v", b, frate, err))
		}
		return T16Row{
			N: p.n, B: b,
			FaultRate: frate,
			Outages:   t16Outages(sched),
			Offered:   p.rate,
			Accepted:  res.Accepted,
			Messages:  res.Injected,
			Aborted:   res.Aborted,
			MeanLat:   res.MeanLatency,
			P50:       res.P50,
			P95:       res.P95,
			P99:       res.P99,
			Backlog:   res.Backlog,
			Saturated: res.Saturated,
		}
	})
}

func t16DegradationTable(rows []T16Row) *stats.Table {
	t := stats.NewTable(
		"T16 — graceful degradation: accepted throughput and tail latency vs lane-fault rate (64-input butterfly, Poisson uniform, fixed offered load)",
		"n", "B", "fault rate", "outages", "offered", "accepted",
		"messages", "aborted", "mean latency", "p95", "p99", "backlog", "saturated")
	for _, r := range rows {
		lat := func(v float64) float64 {
			if r.Messages == 0 {
				return math.NaN()
			}
			return v
		}
		t.AddRow(r.N, r.B, r.FaultRate, r.Outages, r.Offered, r.Accepted,
			r.Messages, r.Aborted, lat(r.MeanLat), lat(r.P95), lat(r.P99),
			r.Backlog, r.Saturated)
	}
	return t
}

func init() {
	register(Experiment{
		ID:    "T16",
		Title: "Graceful degradation — accepted throughput and p99 vs lane-fault rate across B∈{1,2,4,8} on the 64-input butterfly",
		Run: func(cfg Config) []*stats.Table {
			return []*stats.Table{t16DegradationTable(T16Degradation(cfg))}
		},
	})
}
