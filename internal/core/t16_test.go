package core

import (
	"testing"
)

// TestT16QuickShapes sanity-checks the degradation study at CI scale:
// every grid point injects traffic, the fault-free baseline is healthy
// (no outages, no aborts, unsaturated), and faulted points actually see
// outages — otherwise the sweep is measuring nothing.
func TestT16QuickShapes(t *testing.T) {
	rows := T16Degradation(quickCfg)
	p := t16Scale(quickCfg)
	if want := len(p.bs) * len(p.faultRates); len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.N != 64 {
			t.Errorf("quick row ran n=%d, want 64", r.N)
		}
		if r.Messages == 0 {
			t.Errorf("B=%d rate=%g: no messages injected", r.B, r.FaultRate)
		}
		switch {
		case r.FaultRate == 0:
			if r.Outages != 0 {
				t.Errorf("B=%d: fault-free row reports %d outages", r.B, r.Outages)
			}
			if r.Aborted != 0 {
				t.Errorf("B=%d: fault-free row aborted %d messages", r.B, r.Aborted)
			}
			if r.Saturated {
				t.Errorf("B=%d: fault-free baseline saturated; offered load is miscalibrated", r.B)
			}
		default:
			if r.Outages == 0 {
				t.Errorf("B=%d rate=%g: schedule afflicted no edges", r.B, r.FaultRate)
			}
		}
	}
}

// TestT16GracefulDegradation is the acceptance property at full scale:
//
//   - per B, accepted throughput is monotonically non-increasing in the
//     fault rate (the outage sets are nested across rates, so a genuine
//     increase would be a simulator bug, not noise);
//   - degradation is strictly gentler at B=8 than at B=1 — the retained
//     fraction accepted(max rate)/accepted(0) is higher with 8 lanes,
//     because a killed lane takes out the whole link at B=1 but only an
//     eighth of it at B=8.
func TestT16GracefulDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale sweep")
	}
	cfg := Config{Seed: quickCfg.Seed}
	rows := T16Degradation(cfg)
	p := t16Scale(cfg)

	accepted := make(map[int]map[float64]float64, len(p.bs))
	for _, r := range rows {
		if accepted[r.B] == nil {
			accepted[r.B] = make(map[float64]float64, len(p.faultRates))
		}
		accepted[r.B][r.FaultRate] = r.Accepted
	}

	for _, b := range p.bs {
		curve := accepted[b]
		if curve[0] <= 0 {
			t.Fatalf("B=%d: fault-free accepted throughput is %g", b, curve[0])
		}
		for i := 1; i < len(p.faultRates); i++ {
			lo, hi := p.faultRates[i-1], p.faultRates[i]
			if curve[hi] > curve[lo] {
				t.Errorf("B=%d: accepted throughput rose with the fault rate: %g@%g > %g@%g",
					b, curve[hi], hi, curve[lo], lo)
			}
		}
	}

	maxRate := p.faultRates[len(p.faultRates)-1]
	retained := func(b int) float64 { return accepted[b][maxRate] / accepted[b][0] }
	if r1, r8 := retained(1), retained(8); r8 <= r1 {
		t.Errorf("degradation not gentler with more lanes: B=8 retains %.4f of baseline, B=1 retains %.4f", r8, r1)
	}
}
