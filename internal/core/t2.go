package core

import (
	"fmt"

	"wormhole/internal/lowerbound"
	"wormhole/internal/schedule"
	"wormhole/internal/stats"
	"wormhole/internal/vcsim"
)

// T2Row is one measurement of the Theorem 2.2.1 lower-bound experiment.
type T2Row struct {
	B          int
	MPrime     int
	Messages   int
	C, D, L    int
	Greedy     int     // greedy routing makespan on the adversarial instance
	Scheduled  int     // LLL-scheduled makespan
	Progress   float64 // (L−D)·M/B floor — no schedule can beat this
	Theorem    float64 // L·C·D^(1/B)/B form
	GreedyOK   bool    // greedy ≥ progress floor (sanity of the argument)
	SchedOK    bool    // scheduled ≥ progress floor
	FloorRatio float64 // best measured / progress floor (≥ 1)
}

// T2LowerBound builds the Theorem 2.2.1 adversarial network for a sweep of
// B and congestion values, routes it with both the greedy router and the
// LLL scheduler, and checks every measured time against the
// progress-argument floor (L−D)·M/B.
func T2LowerBound(cfg Config) []T2Row {
	type cell struct{ b, cMul, d int }
	cells := []cell{
		{1, 1, 24}, {1, 2, 24}, {1, 4, 24},
		{2, 1, 24}, {2, 2, 24}, {2, 4, 24},
		{3, 1, 24}, {3, 2, 24},
	}
	if cfg.Quick {
		cells = []cell{{1, 2, 16}, {2, 2, 16}, {3, 2, 16}}
	}
	// Every cell is an independent job: the adversarial network, both
	// routers, and the floor check are all derived from the cell alone.
	return mapJobs(cfg, len(cells), func(i int) T2Row {
		c := cells[i]
		targetC := c.cMul * (c.b + 1) * 2
		con := lowerbound.Build(lowerbound.Params{
			B:       c.b,
			TargetD: c.d,
			TargetC: targetC,
			L:       3 * c.d,
		})
		p := NewProblem(fmt.Sprintf("adversary(B=%d)", c.b), con.Set)

		greedy := p.RouteGreedy(GreedyOptions{B: c.b, Policy: vcsim.ArbAge, Metrics: cfg.metrics()})
		if !greedy.AllDelivered() || greedy.Deadlocked {
			panic(fmt.Sprintf("T2: greedy failed on adversarial instance B=%d (deadlock=%v)", c.b, greedy.Deadlocked))
		}
		_, sched, err := p.RouteScheduled(ScheduleOptions{B: c.b, Seed: cfg.Seed, Metrics: cfg.metrics()})
		if err != nil {
			panic(fmt.Sprintf("T2: schedule failed: %v", err))
		}

		floor := con.ProgressBound()
		best := greedy.Steps
		if sched.Steps < best {
			best = sched.Steps
		}
		return T2Row{
			B:        c.b,
			MPrime:   con.MPrime,
			Messages: con.Set.Len(),
			C:        con.C, D: con.D, L: con.L,
			Greedy:     greedy.Steps,
			Scheduled:  sched.Steps,
			Progress:   floor,
			Theorem:    con.TheoremBound(),
			GreedyOK:   float64(greedy.Steps) >= floor,
			SchedOK:    float64(sched.Steps) >= floor,
			FloorRatio: stats.Ratio(float64(best), floor),
		}
	})
}

// T2SpeedupRow measures the paper's headline claim on a fixed instance:
// the B = 1 adversarial network forces Θ(LCD) flit steps with one virtual
// channel, but adding virtual channels speeds routing up by more than the
// added factor.
type T2SpeedupRow struct {
	VCs       int
	Greedy    int
	Scheduled int
	Best      int
	Speedup   float64 // best(B'=1)/best(B')
	PerVC     float64 // Speedup / B' (> 1 ⇒ superlinear)
	Predicted float64 // B'·D^(1−1/B') (paper Section 1.4)
}

// T2Superlinear routes one fixed adversarial instance (built for B = 1,
// where every pair of messages shares an edge) with increasing numbers of
// virtual channels and reports the measured speedup per added channel.
func T2Superlinear(cfg Config) []T2SpeedupRow {
	d := 24
	if cfg.Quick {
		d = 16
	}
	con := lowerbound.Build(lowerbound.Params{B: 1, TargetD: d, TargetC: 12, L: 3 * d})
	p := NewProblem("adversary(B=1)", con.Set)

	vcs := []int{1, 2, 3, 4, 6}
	if cfg.Quick {
		vcs = []int{1, 2, 4}
	}
	// One job per router B; the B = vcs[0] baseline for the speedup
	// columns is applied after the fan-out.
	rows := mapJobs(cfg, len(vcs), func(i int) T2SpeedupRow {
		b := vcs[i]
		greedy := p.RouteGreedy(GreedyOptions{B: b, Policy: vcsim.ArbAge, Metrics: cfg.metrics()})
		if !greedy.AllDelivered() {
			panic(fmt.Sprintf("T2: greedy with %d VCs failed on fixed adversary", b))
		}
		_, sres, err := p.RouteScheduled(ScheduleOptions{B: b, Seed: cfg.Seed + uint64(b), Metrics: cfg.metrics()})
		if err != nil {
			panic(fmt.Sprintf("T2: schedule with %d VCs failed: %v", b, err))
		}
		best := greedy.Steps
		if sres.Steps < best {
			best = sres.Steps
		}
		return T2SpeedupRow{
			VCs:       b,
			Greedy:    greedy.Steps,
			Scheduled: sres.Steps,
			Best:      best,
			Predicted: schedule.PredictedSpeedup(p.D, b),
		}
	})
	base := rows[0].Best
	for i := range rows {
		r := &rows[i]
		r.Speedup = stats.Ratio(float64(base), float64(r.Best))
		r.PerVC = r.Speedup / float64(r.VCs)
	}
	return rows
}

func t2SpeedupTable(rows []T2SpeedupRow) *stats.Table {
	t := stats.NewTable(
		"T2b — superlinear speedup: fixed B=1 adversary, router B swept",
		"router B", "greedy", "scheduled", "best", "speedup", "speedup/B",
		"predicted B·D^(1-1/B)")
	for _, r := range rows {
		t.AddRow(r.VCs, r.Greedy, r.Scheduled, r.Best, r.Speedup, r.PerVC, r.Predicted)
	}
	return t
}

func t2Table(rows []T2Row) *stats.Table {
	t := stats.NewTable(
		"T2 — Theorem 2.2.1: adversarial instance, every B+1 messages share an edge",
		"B", "M'", "msgs", "C", "D", "L", "greedy", "scheduled",
		"floor(L-D)M/B", "LCD^(1/B)/B", "best/floor")
	for _, r := range rows {
		t.AddRow(r.B, r.MPrime, r.Messages, r.C, r.D, r.L, r.Greedy,
			r.Scheduled, r.Progress, r.Theorem, r.FloorRatio)
	}
	return t
}

func init() {
	register(Experiment{
		ID:    "T2",
		Title: "Theorem 2.2.1 — lower-bound construction & superlinear speedup",
		Run: func(cfg Config) []*stats.Table {
			return []*stats.Table{
				t2Table(T2LowerBound(cfg)),
				t2SpeedupTable(T2Superlinear(cfg)),
			}
		},
	})
}
