package core

import (
	"wormhole/internal/butterfly"
	"wormhole/internal/rng"
	"wormhole/internal/stats"
	"wormhole/internal/topology"
)

// T3Row is one measurement of the Section 3.1 algorithm.
type T3Row struct {
	N, Q, L, B int
	Colors     int // Δ
	Rounds     int // rounds actually needed
	Delivered  float64
	FlitSteps  float64 // mean over trials
	Bound      float64
	Speedup    float64 // steps(B=1)/steps(B)
	PredSpeed  float64 // bound(B=1)/bound(B): ≈ B·log^(1−1/B) n
}

// T3QRelation runs the randomized two-pass q-relation algorithm across n,
// q, and B, and confirms the Theorem 3.1.1 shape: all messages delivered
// within the round budget, and running time falling superlinearly in B.
func T3QRelation(cfg Config) []T3Row {
	type cell struct{ n, q int }
	cells := []cell{{256, 1}, {256, 8}, {1024, 1}, {1024, 10}}
	bs := []int{1, 2, 3, 4}
	trials := cfg.trials(3)
	if cfg.Quick {
		cells = []cell{{64, 6}}
		bs = []int{1, 2, 4}
		trials = 2
	}
	// Full fan-out: one job per (cell, B, trial). Each trial reseeds from
	// (Seed, trial) alone, so the job grid is embarrassingly parallel.
	type trialOut struct {
		steps, delivered float64
		colors, rounds   int
	}
	grid := len(cells) * len(bs)
	outs := mapJobs(cfg, grid*trials, func(i int) trialOut {
		ci, bi, t := grid3(i, len(bs), trials)
		c, b := cells[ci], bs[bi]
		l := topology.Log2(c.n)
		r := rng.New(cfg.Seed + uint64(t)*7919)
		pairs := butterfly.RandomQRelation(c.n, c.q, r)
		res := butterfly.RunQRelation(pairs, butterfly.Params{
			N: c.n, Q: c.q, L: l, B: b,
		}, r)
		out := trialOut{
			steps:     float64(res.FlitSteps),
			delivered: float64(res.DeliveredMsgs) / float64(res.TotalMessages),
			rounds:    len(res.Rounds),
		}
		if len(res.Rounds) > 0 {
			out.colors = res.Rounds[0].Colors
		}
		return out
	})
	rows := make([]T3Row, 0, grid)
	for ci, c := range cells {
		l := topology.Log2(c.n)
		var baseSteps float64
		for bi, b := range bs {
			var steps, delivered float64
			var colors, rounds int
			for t := 0; t < trials; t++ {
				o := outs[index3(ci, bi, t, len(bs), trials)]
				steps += o.steps
				delivered += o.delivered
				rounds = o.rounds
				colors = o.colors
			}
			steps /= float64(trials)
			delivered /= float64(trials)
			if b == bs[0] {
				baseSteps = steps
			}
			rows = append(rows, T3Row{
				N: c.n, Q: c.q, L: l, B: b,
				Colors:    colors,
				Rounds:    rounds,
				Delivered: delivered,
				FlitSteps: steps,
				Bound:     butterfly.Bound(c.n, c.q, l, b),
				Speedup:   stats.Ratio(baseSteps, steps),
				PredSpeed: stats.Ratio(butterfly.Bound(c.n, c.q, l, bs[0]), butterfly.Bound(c.n, c.q, l, b)),
			})
		}
	}
	return rows
}

func t3Table(rows []T3Row) *stats.Table {
	t := stats.NewTable(
		"T3 — Theorem 3.1.1: randomized two-pass q-relation routing",
		"n", "q", "L", "B", "Δ", "rounds", "delivered", "flit steps",
		"bound", "speedup", "predicted")
	for _, r := range rows {
		t.AddRow(r.N, r.Q, r.L, r.B, r.Colors, r.Rounds, r.Delivered,
			r.FlitSteps, r.Bound, r.Speedup, r.PredSpeed)
	}
	return t
}

func init() {
	register(Experiment{
		ID:    "T3",
		Title: "Theorem 3.1.1 — butterfly q-relation algorithm",
		Run: func(cfg Config) []*stats.Table {
			return []*stats.Table{t3Table(T3QRelation(cfg))}
		},
	})
}
