package core

import (
	"wormhole/internal/butterfly"
	"wormhole/internal/message"
	"wormhole/internal/rng"
	"wormhole/internal/stats"
	"wormhole/internal/topology"
	"wormhole/internal/vcsim"
)

// T4Row is one measurement of the Section 3.2 one-pass lower-bound
// experiment.
type T4Row struct {
	N, Q, L, B int
	Steps      float64 // mean greedy one-pass makespan
	Bound      float64 // L·q·l^(1/B)/B
	Ratio      float64 // Steps / Bound (expect Θ(1) across the sweep)
	Collide    int     // measured collision-threshold subset size (−1 if skipped)
	CollidePre float64 // Theorem 3.2.5 predicted size
	MaxPhase   int     // largest phase (Theorem 3.2.6 probe)
}

// T4OnePass routes the paper's random problem (q messages per input to
// uniform outputs) down the butterfly one-pass with greedy blocking
// wormhole routing, and compares the measured time with the Theorem 3.2.1
// lower-bound form. It also probes the two pillars of the proof: the
// collision-threshold subset size (Theorem 3.2.5) and the phase partition
// (Theorem 3.2.6).
func T4OnePass(cfg Config) []T4Row {
	type cell struct{ n, q int }
	cells := []cell{{256, 8}, {1024, 10}}
	bs := []int{1, 2, 3, 4}
	trials := cfg.trials(3)
	if cfg.Quick {
		cells = []cell{{64, 6}}
		bs = []int{1, 2, 4}
		trials = 2
	}
	// One job per (cell, B, trial); the expensive collision/phase probes
	// ride on the trial-0 job of each cell, exactly as before.
	type trialOut struct {
		steps      float64
		collide    int
		collidePre float64
		maxPhase   int
	}
	grid := len(cells) * len(bs)
	// The butterflies depend only on the cell list; build each once before
	// the fan-out (read-only afterwards).
	bfs := make([]*topology.Butterfly, len(cells))
	for ci, c := range cells {
		bfs[ci] = topology.NewButterfly(c.n)
	}
	outs := mapJobs(cfg, grid*trials, func(i int) trialOut {
		ci, bi, t := grid3(i, len(bs), trials)
		c, b := cells[ci], bs[bi]
		bf := bfs[ci]
		l := topology.Log2(c.n)
		r := rng.New(cfg.Seed + uint64(t)*104729)
		pairs := butterfly.RandomDestinations(c.n, c.q, r)
		res := butterfly.RunOnePass(bf, pairs, l, b, vcsim.ArbByID, cfg.Seed)
		out := trialOut{steps: float64(res.Steps), collide: -1}
		if t == 0 {
			// Collision threshold and phase stats on the first trial
			// only (they are expensive).
			if c.n <= 256 || cfg.Quick {
				out.collide = butterfly.CollisionThreshold(bf, pairs, l, b, 24, 0.95, r)
			}
			out.collidePre = butterfly.TheoreticalCollisionSize(c.n, c.q, l, b)
			set := butterflySet(bf, pairs, l)
			sim := vcsim.Run(set, nil, vcsim.Config{VirtualChannels: b, Metrics: cfg.metrics()})
			mp, _ := butterfly.PhasePartition(sim, min(l, topology.Log2(c.n)), l)
			out.maxPhase = mp
		}
		return out
	})
	rows := make([]T4Row, 0, grid)
	for ci, c := range cells {
		l := topology.Log2(c.n)
		for bi, b := range bs {
			first := outs[index3(ci, bi, 0, len(bs), trials)]
			var steps float64
			for t := 0; t < trials; t++ {
				steps += outs[index3(ci, bi, t, len(bs), trials)].steps
			}
			steps /= float64(trials)
			bound := butterfly.OnePassBound(c.n, c.q, l, b)
			rows = append(rows, T4Row{
				N: c.n, Q: c.q, L: l, B: b,
				Steps:      steps,
				Bound:      bound,
				Ratio:      stats.Ratio(steps, bound),
				Collide:    first.collide,
				CollidePre: first.collidePre,
				MaxPhase:   first.maxPhase,
			})
		}
	}
	return rows
}

// butterflySet materializes bit-fixing one-pass paths as a message set.
func butterflySet(bf *topology.Butterfly, pairs []butterfly.ColPair, l int) *message.Set {
	set := message.NewSet(bf.G)
	for _, p := range pairs {
		set.Add(bf.Input(p.Src), bf.Output(p.Dst), l, bf.Route(p.Src, p.Dst))
	}
	return set
}

func t4Table(rows []T4Row) *stats.Table {
	t := stats.NewTable(
		"T4 — Theorem 3.2.1: greedy one-pass routing vs the lower-bound shape",
		"n", "q", "L", "B", "steps", "bound Lql^(1/B)/B", "steps/bound",
		"collide-s", "collide-pred", "max-phase")
	for _, r := range rows {
		t.AddRow(r.N, r.Q, r.L, r.B, r.Steps, r.Bound, r.Ratio,
			r.Collide, r.CollidePre, r.MaxPhase)
	}
	return t
}

func init() {
	register(Experiment{
		ID:    "T4",
		Title: "Theorem 3.2.1 — one-pass butterfly lower bound",
		Run: func(cfg Config) []*stats.Table {
			return []*stats.Table{t4Table(T4OnePass(cfg))}
		},
	})
}
