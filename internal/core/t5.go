package core

import (
	"fmt"

	"wormhole/internal/baseline"
	"wormhole/internal/rng"
	"wormhole/internal/schedule"
	"wormhole/internal/stats"
	"wormhole/internal/topology"
	"wormhole/internal/vcsim"
)

// T5Row compares one router on the Section 1.4 comparison workload.
type T5Row struct {
	Method    string
	BufFlits  int // per-edge flit-buffer budget
	FlitSteps int
	Delivered bool
	Note      string
}

// T5RouterComparison reproduces the Section 1.4 discussion: on an L = q =
// log n butterfly workload, compare (a) wormhole routing with B virtual
// channels, scheduled and greedy, (b) store-and-forward routing, and (c)
// virtual cut-through with the same per-edge buffer budget spent on depth
// instead of multiplexing. The paper's points: SAF is fast but needs
// whole-message buffers; VCT's benefit is linear in B; wormhole+VC closes
// most of the SAF gap with log-factor-size buffers.
func T5RouterComparison(cfg Config) []T5Row {
	n := 256
	if cfg.Quick {
		n = 64
	}
	k := topology.Log2(n)
	q := k
	l := k
	p := ButterflyQRelation(n, q, l, cfg.Seed)

	// Each router family is an independent job over the shared workload;
	// the job list preserves the table's row order.
	var jobs []func() []T5Row

	// Wormhole, greedy and scheduled, for B in {1, 2, ⌈log log n⌉·2}.
	bs := []int{1, 2, 2 * log2ceil(k)}
	for _, b := range bs {
		b := b
		jobs = append(jobs, func() []T5Row {
			g := p.RouteGreedy(GreedyOptions{B: b, Policy: vcsim.ArbAge, Metrics: cfg.metrics()})
			_, sres, err := p.RouteScheduled(ScheduleOptions{B: b, Seed: cfg.Seed, Metrics: cfg.metrics()})
			if err != nil {
				panic(fmt.Sprintf("T5: scheduled B=%d: %v", b, err))
			}
			return []T5Row{{
				Method:    fmt.Sprintf("wormhole greedy B=%d", b),
				BufFlits:  b,
				FlitSteps: g.Steps,
				Delivered: g.AllDelivered(),
			}, {
				Method:    fmt.Sprintf("wormhole LLL-scheduled B=%d", b),
				BufFlits:  b,
				FlitSteps: sres.Steps,
				Delivered: sres.AllDelivered(),
			}}
		})
	}

	// Store-and-forward: greedy FIFO; buffer budget is whole messages.
	jobs = append(jobs, func() []T5Row {
		saf := baseline.RunStoreAndForward(p.Set, baseline.SAFConfig{Seed: cfg.Seed})
		return []T5Row{{
			Method:    "store-and-forward greedy",
			BufFlits:  baseline.SAFFlitBufferBudget(saf, l),
			FlitSteps: saf.FlitSteps,
			Delivered: saf.Delivered == p.Set.Len(),
			Note:      fmt.Sprintf("bound L(C+D)=%s", stats.FormatFloat(schedule.StoreAndForwardBound(l, p.C, p.D))),
		}}
	})

	// Store-and-forward with LMR delay smoothing: the certified-collision-
	// free O(C+D) schedule the paper's comparison assumes.
	jobs = append(jobs, func() []T5Row {
		lmr, err := baseline.BuildLMRSchedule(p.Set, rng.New(cfg.Seed), 0)
		if err != nil {
			panic(fmt.Sprintf("T5: LMR schedule: %v", err))
		}
		return []T5Row{{
			Method:    "store-and-forward LMR-scheduled",
			BufFlits:  l, // unimpeded motion: one message per node at a time
			FlitSteps: baseline.LMRFlitSteps(lmr, l),
			Delivered: true,
			Note:      fmt.Sprintf("window=%d attempts=%d", lmr.Window, lmr.Attempts),
		}}
	})

	// Virtual cut-through with the wormhole router's buffer budget.
	for _, b := range bs[1:] {
		b := b
		jobs = append(jobs, func() []T5Row {
			v := baseline.RunVirtualCutThrough(p.Set, baseline.VCTConfig{BufferFlits: b})
			return []T5Row{{
				Method:    fmt.Sprintf("virtual cut-through buf=%d", b),
				BufFlits:  b,
				FlitSteps: v.Steps,
				Delivered: v.Delivered == p.Set.Len() && !v.Deadlocked,
			}}
		})
	}

	return flatJobs(cfg, len(jobs), func(i int) []T5Row { return jobs[i]() })
}

func log2ceil(x int) int {
	k := 0
	for v := x - 1; v > 0; v >>= 1 {
		k++
	}
	if k == 0 {
		return 1
	}
	return k
}

func t5Table(rows []T5Row) *stats.Table {
	t := stats.NewTable(
		"T5 — Section 1.4: router comparison at L = q = log n",
		"method", "buffer flits/edge", "flit steps", "all delivered", "note")
	for _, r := range rows {
		t.AddRow(r.Method, r.BufFlits, r.FlitSteps, r.Delivered, r.Note)
	}
	return t
}

func init() {
	register(Experiment{
		ID:    "T5",
		Title: "Section 1.4 — wormhole vs store-and-forward vs cut-through",
		Run: func(cfg Config) []*stats.Table {
			return []*stats.Table{t5Table(T5RouterComparison(cfg))}
		},
	})
}
