package core

import (
	"fmt"

	"wormhole/internal/schedule"
	"wormhole/internal/stats"
)

// T6Row compares the naive conflict-graph coloring schedule with the LLL
// schedule on one workload.
type T6Row struct {
	Workload     string
	C, D, L, B   int
	NaiveClasses int
	NaiveSteps   int
	LLLClasses   int
	LLLSteps     int
	Improvement  float64 // NaiveSteps / LLLSteps
	NaiveBound   float64 // (L+D)·C·D
	LLLBound     float64 // Theorem 2.1.6
}

// T6NaiveVsLLL reproduces footnote 5's comparison: the naive coloring
// argument yields O((L+D)·C·D) flit steps with up to D(C−1)+1 classes,
// while the Theorem 2.1.6 refinement needs only Θ(C(D log D)^(1/B)/B)
// classes. Both schedules are executed and verified on the simulator.
func T6NaiveVsLLL(cfg Config) []T6Row {
	probs := t1Workloads(cfg)
	bs := []int{1, 2, 4}
	// Stage 1: the per-workload naive baselines, one job each.
	type naiveOut struct {
		classes, steps int
	}
	naives := mapJobs(cfg, len(probs), func(i int) naiveOut {
		p := probs[i]
		naive := schedule.NaiveSchedule(p.Set)
		nres, err := schedule.VerifyObserved(p.Set, naive, cfg.metrics())
		if err != nil {
			panic(fmt.Sprintf("T6: naive schedule invalid on %s: %v", p.Label, err))
		}
		return naiveOut{classes: naive.NumClasses, steps: nres.Steps}
	})
	// Stage 2: one job per (workload, B) LLL cell.
	return mapJobs(cfg, len(probs)*len(bs), func(i int) T6Row {
		p, b := probs[i/len(bs)], bs[i%len(bs)]
		nv := naives[i/len(bs)]
		sched, sres, err := p.RouteScheduled(ScheduleOptions{B: b, Seed: cfg.Seed + uint64(b), Metrics: cfg.metrics()})
		if err != nil {
			panic(fmt.Sprintf("T6: LLL schedule failed on %s B=%d: %v", p.Label, b, err))
		}
		return T6Row{
			Workload: p.Label,
			C:        p.C, D: p.D, L: p.L, B: b,
			NaiveClasses: nv.classes,
			NaiveSteps:   nv.steps,
			LLLClasses:   sched.NumClasses,
			LLLSteps:     sres.Steps,
			Improvement:  stats.Ratio(float64(nv.steps), float64(sres.Steps)),
			NaiveBound:   schedule.NaiveBound(p.L, p.C, p.D),
			LLLBound:     schedule.UpperBound216(p.L, p.C, p.D, b),
		}
	})
}

func t6Table(rows []T6Row) *stats.Table {
	t := stats.NewTable(
		"T6 — footnote 5: naive conflict-graph coloring vs LLL refinement",
		"workload", "C", "D", "L", "B", "naive-classes", "naive-steps",
		"LLL-classes", "LLL-steps", "naive/LLL", "naive-bound", "LLL-bound")
	for _, r := range rows {
		t.AddRow(r.Workload, r.C, r.D, r.L, r.B, r.NaiveClasses, r.NaiveSteps,
			r.LLLClasses, r.LLLSteps, r.Improvement, r.NaiveBound, r.LLLBound)
	}
	return t
}

func init() {
	register(Experiment{
		ID:    "T6",
		Title: "Footnote 5 — naive coloring baseline vs LLL schedules",
		Run: func(cfg Config) []*stats.Table {
			return []*stats.Table{t6Table(T6NaiveVsLLL(cfg))}
		},
	})
}
