package core

import (
	"wormhole/internal/baseline"
	"wormhole/internal/butterfly"
	"wormhole/internal/rng"
	"wormhole/internal/stats"
)

// T7Row is one cell of the Koch circuit-switching experiment.
type T7Row struct {
	N, B      int
	Fraction  float64 // measured locked fraction (mean over trials)
	Predicted float64 // Θ(1/log^(1/B) n) shape
	Scaled    float64 // Fraction / Predicted — should be ≈ constant per B
}

// T7CircuitSwitch reproduces Koch's observation (paper Section 1.3.3):
// locking circuits down a butterfly with per-edge capacity B succeeds for
// a Θ(1/log^(1/B) n) fraction of random demands — already a superlinear
// benefit from B, which this paper extends to wormhole routing.
func T7CircuitSwitch(cfg Config) []T7Row {
	ns := []int{256, 1024, 4096}
	bs := []int{1, 2, 3, 4}
	trials := cfg.trials(5)
	if cfg.Quick {
		ns = []int{64, 256}
		bs = []int{1, 2, 4}
		trials = 3
	}
	// One job per (n, B, trial); each reseeds from (Seed, n, B, trial).
	grid := len(ns) * len(bs)
	fracs := mapJobs(cfg, grid*trials, func(i int) float64 {
		ni, bi, t := grid3(i, len(bs), trials)
		n, b := ns[ni], bs[bi]
		r := rng.New(cfg.Seed + uint64(t)*31 + uint64(n) + uint64(b)*131071)
		pairs := butterfly.RandomDestinations(n, 1, r)
		return baseline.RunCircuitSwitch(n, b, pairs, r).Fraction
	})
	rows := make([]T7Row, 0, grid)
	for ni, n := range ns {
		for bi, b := range bs {
			var frac float64
			for t := 0; t < trials; t++ {
				frac += fracs[index3(ni, bi, t, len(bs), trials)]
			}
			frac /= float64(trials)
			pred := baseline.KochPredictedFraction(n, b)
			rows = append(rows, T7Row{
				N: n, B: b,
				Fraction:  frac,
				Predicted: pred,
				Scaled:    stats.Ratio(frac, pred),
			})
		}
	}
	return rows
}

func t7Table(rows []T7Row) *stats.Table {
	t := stats.NewTable(
		"T7 — Koch: circuit-switching success fraction vs B",
		"n", "B", "locked fraction", "Θ(1/log^(1/B) n)", "fraction/shape")
	for _, r := range rows {
		t.AddRow(r.N, r.B, r.Fraction, r.Predicted, r.Scaled)
	}
	return t
}

func init() {
	register(Experiment{
		ID:    "T7",
		Title: "Koch — circuit switching on the butterfly",
		Run: func(cfg Config) []*stats.Table {
			return []*stats.Table{t7Table(T7CircuitSwitch(cfg))}
		},
	})
}
