package core

import (
	"wormhole/internal/baseline"
	"wormhole/internal/butterfly"
	"wormhole/internal/rng"
	"wormhole/internal/stats"
)

// T7Row is one cell of the Koch circuit-switching experiment.
type T7Row struct {
	N, B      int
	Fraction  float64 // measured locked fraction (mean over trials)
	Predicted float64 // Θ(1/log^(1/B) n) shape
	Scaled    float64 // Fraction / Predicted — should be ≈ constant per B
}

// T7CircuitSwitch reproduces Koch's observation (paper Section 1.3.3):
// locking circuits down a butterfly with per-edge capacity B succeeds for
// a Θ(1/log^(1/B) n) fraction of random demands — already a superlinear
// benefit from B, which this paper extends to wormhole routing.
func T7CircuitSwitch(cfg Config) []T7Row {
	ns := []int{256, 1024, 4096}
	bs := []int{1, 2, 3, 4}
	trials := cfg.trials(5)
	if cfg.Quick {
		ns = []int{64, 256}
		bs = []int{1, 2, 4}
		trials = 3
	}
	var rows []T7Row
	for _, n := range ns {
		for _, b := range bs {
			var frac float64
			for t := 0; t < trials; t++ {
				r := rng.New(cfg.Seed + uint64(t)*31 + uint64(n) + uint64(b)*131071)
				pairs := butterfly.RandomDestinations(n, 1, r)
				res := baseline.RunCircuitSwitch(n, b, pairs, r)
				frac += res.Fraction
			}
			frac /= float64(trials)
			pred := baseline.KochPredictedFraction(n, b)
			rows = append(rows, T7Row{
				N: n, B: b,
				Fraction:  frac,
				Predicted: pred,
				Scaled:    stats.Ratio(frac, pred),
			})
		}
	}
	return rows
}

func t7Table(rows []T7Row) *stats.Table {
	t := stats.NewTable(
		"T7 — Koch: circuit-switching success fraction vs B",
		"n", "B", "locked fraction", "Θ(1/log^(1/B) n)", "fraction/shape")
	for _, r := range rows {
		t.AddRow(r.N, r.B, r.Fraction, r.Predicted, r.Scaled)
	}
	return t
}

func init() {
	register(Experiment{
		ID:    "T7",
		Title: "Koch — circuit switching on the butterfly",
		Run: func(cfg Config) []*stats.Table {
			return []*stats.Table{t7Table(T7CircuitSwitch(cfg))}
		},
	})
}
