package core

import (
	"fmt"
	"math"

	"wormhole/internal/stats"
)

// T8Row is one cell of the restricted-bandwidth (buffer-only) experiment.
type T8Row struct {
	Workload     string
	C, D, L, B   int
	VCSteps      int     // full virtual-channel model makespan
	RestrSteps   int     // restricted model (1 flit/edge/step) makespan
	EmuFactor    float64 // RestrSteps / VCSteps — paper predicts ≤ ≈ B
	BufferGain   float64 // RestrSteps(B=1) / RestrSteps(B)
	PredictedGen float64 // (D·log D)^(1−1/B): buffering-only benefit shape
}

// T8RestrictedModel reproduces the Section 1.4 remark: with B-deep buffers
// but only one flit per physical edge per step, the virtual-channel
// schedules can be emulated with a slowdown of B, so buffering alone still
// buys a (D log D)^(1−1/B)-ish improvement — possibly more than B itself.
func T8RestrictedModel(cfg Config) []T8Row {
	var builders []func() *Problem
	if cfg.Quick {
		builders = []func() *Problem{
			func() *Problem { return ButterflyQRelation(64, 8, 24, cfg.Seed) },
		}
	} else {
		builders = []func() *Problem{
			func() *Problem { return ButterflyQRelation(256, 8, 32, cfg.Seed) },
			func() *Problem { return ButterflyQRelation(256, 16, 64, cfg.Seed+1) },
		}
	}
	probs := mapJobs(cfg, len(builders), func(i int) *Problem { return builders[i]() })
	bs := []int{1, 2, 3, 4}
	if cfg.Quick {
		bs = []int{1, 2, 4}
	}
	// One job per (workload, B); the B = bs[0] restricted baseline for the
	// buffer-gain column is applied after the fan-out.
	rows := mapJobs(cfg, len(probs)*len(bs), func(i int) T8Row {
		p, b := probs[i/len(bs)], bs[i%len(bs)]
		_, vres, err := p.RouteScheduled(ScheduleOptions{B: b, Seed: cfg.Seed + uint64(b), Metrics: cfg.metrics()})
		if err != nil {
			panic(fmt.Sprintf("T8: VC schedule failed: %v", err))
		}
		// Restricted model: same coloring, spacing stretched ×B so a
		// class can drain at 1 flit/edge/step before the next starts.
		_, rres, err := p.RouteScheduled(ScheduleOptions{
			B: b, Seed: cfg.Seed + uint64(b),
			Restricted:    true,
			SpacingFactor: b,
			Metrics:       cfg.metrics(),
		})
		if err != nil {
			panic(fmt.Sprintf("T8: restricted schedule failed: %v", err))
		}
		ld := math.Log2(float64(maxInt(p.D, 2)))
		return T8Row{
			Workload: p.Label,
			C:        p.C, D: p.D, L: p.L, B: b,
			VCSteps:      vres.Steps,
			RestrSteps:   rres.Steps,
			EmuFactor:    stats.Ratio(float64(rres.Steps), float64(vres.Steps)),
			PredictedGen: math.Pow(float64(p.D)*ld, 1-1/float64(b)),
		}
	})
	for i := range rows {
		r := &rows[i]
		baseRestr := float64(rows[i-i%len(bs)].RestrSteps)
		r.BufferGain = stats.Ratio(baseRestr, float64(r.RestrSteps))
	}
	return rows
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func t8Table(rows []T8Row) *stats.Table {
	t := stats.NewTable(
		"T8 — Section 1.4 remark: restricted bandwidth (buffering-only benefit)",
		"workload", "C", "D", "L", "B", "vc-steps", "restricted-steps",
		"restricted/vc", "gain vs B=1", "(DlogD)^(1-1/B)")
	for _, r := range rows {
		t.AddRow(r.Workload, r.C, r.D, r.L, r.B, r.VCSteps, r.RestrSteps,
			r.EmuFactor, r.BufferGain, r.PredictedGen)
	}
	return t
}

func init() {
	register(Experiment{
		ID:    "T8",
		Title: "Section 1.4 — restricted-bandwidth model",
		Run: func(cfg Config) []*stats.Table {
			return []*stats.Table{t8Table(T8RestrictedModel(cfg))}
		},
	})
}
