package core

import (
	"fmt"

	"wormhole/internal/message"
	"wormhole/internal/rng"
	"wormhole/internal/stats"
	"wormhole/internal/topology"
	"wormhole/internal/vcsim"
)

// T9Row is one cell of the Waksman/Beneš permutation-routing experiment.
type T9Row struct {
	N, L        int
	Depth       int
	Waksman     int  // makespan on the Beneš network, flit steps
	WaksmanOpt  bool // equals the unimpeded optimum L + 2 log n − 1
	Stalls      int
	GreedyBF    int     // greedy one-pass butterfly B=1 on the same permutation
	SpeedupVsBF float64 // GreedyBF / Waksman
}

// T9Waksman reproduces the Section 1.3.3 result implemented on the IBM
// GF-11: Waksman's looping algorithm finds edge-disjoint paths for any
// permutation through a Beneš network, so wormhole routing completes in
// exactly L + 2·log n − 1 flit steps with zero stalls and only one
// virtual channel — global knowledge traded for optimal time. A greedy
// one-pass butterfly router on the same permutation is shown for
// contrast.
func T9Waksman(cfg Config) []T9Row {
	type cell struct{ n, l int }
	cells := []cell{
		{64, 6}, {64, 24}, {256, 8}, {256, 32}, {1024, 10},
	}
	if cfg.Quick {
		cells = []cell{{32, 5}, {64, 24}}
	}
	// Each (n, L) cell is an independent job seeded from (Seed, n).
	return mapJobs(cfg, len(cells), func(i int) T9Row {
		c := cells[i]
		r := rng.New(cfg.Seed + uint64(c.n))
		perm := r.Perm(c.n)

		// Waksman on the Beneš network.
		bn := topology.NewBenes(c.n)
		paths := bn.RoutePermutation(perm)
		set := message.NewSet(bn.G)
		for a, p := range paths {
			set.Add(bn.Inputs[a], bn.Outputs[perm[a]], c.l, p)
		}
		res := vcsim.Run(set, nil, vcsim.Config{VirtualChannels: 1, Metrics: cfg.metrics()})
		if !res.AllDelivered() {
			panic(fmt.Sprintf("T9: Waksman routing failed on n=%d", c.n))
		}

		// Greedy one-pass butterfly on the same permutation, B = 1.
		bf := topology.NewButterfly(c.n)
		bfSet := message.NewSet(bf.G)
		for src, dst := range perm {
			bfSet.Add(bf.Input(src), bf.Output(dst), c.l, bf.Route(src, dst))
		}
		bfRes := vcsim.Run(bfSet, nil, vcsim.Config{VirtualChannels: 1, Arbitration: vcsim.ArbAge, Metrics: cfg.metrics()})
		if !bfRes.AllDelivered() {
			panic("T9: butterfly greedy failed")
		}

		opt := c.l + bn.Depth - 1
		return T9Row{
			N: c.n, L: c.l,
			Depth:       bn.Depth,
			Waksman:     res.Steps,
			WaksmanOpt:  res.Steps == opt && res.TotalStalls == 0,
			Stalls:      res.TotalStalls,
			GreedyBF:    bfRes.Steps,
			SpeedupVsBF: stats.Ratio(float64(bfRes.Steps), float64(res.Steps)),
		}
	})
}

func t9Table(rows []T9Row) *stats.Table {
	t := stats.NewTable(
		"T9 — Waksman on the Beneš network: any permutation in L+2·log n−1 flit steps",
		"n", "L", "depth", "Beneš steps", "optimal&stall-free", "stalls",
		"greedy butterfly B=1", "speedup")
	for _, r := range rows {
		t.AddRow(r.N, r.L, r.Depth, r.Waksman, r.WaksmanOpt, r.Stalls,
			r.GreedyBF, r.SpeedupVsBF)
	}
	return t
}

func init() {
	register(Experiment{
		ID:    "T9",
		Title: "Section 1.3.3 — Waksman permutation routing (Beneš/GF-11)",
		Run: func(cfg Config) []*stats.Table {
			return []*stats.Table{t9Table(T9Waksman(cfg))}
		},
	})
}
