package core

import (
	"testing"

	"wormhole/internal/telemetry"
)

// TestTelemetryDoesNotPerturbTables is the observability contract at the
// experiment layer: attaching a telemetry aggregate must leave every
// experiment's rendered tables byte-identical to a telemetry-off run.
func TestTelemetryDoesNotPerturbTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment twice")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			render := func(agg *telemetry.Aggregate) string {
				tables, err := Run(e.ID, Config{Seed: 11, Quick: true, Telemetry: agg})
				if err != nil {
					t.Fatal(err)
				}
				out := ""
				for _, tab := range tables {
					out += tab.String() + "\n"
				}
				return out
			}
			off := render(nil)
			agg := telemetry.NewAggregate()
			on := render(agg)
			if off != on {
				t.Errorf("tables differ with telemetry attached:\n--- off ---\n%s\n--- on ---\n%s", off, on)
			}
		})
	}
}

// TestTelemetryAggregateCollects spot-checks that an instrumented
// experiment actually feeds the aggregate: T1 runs greedy simulations, so
// steps and delivery counters must be non-zero and the per-job registries
// must fold into one deterministic snapshot.
func TestTelemetryAggregateCollects(t *testing.T) {
	agg := telemetry.NewAggregate()
	if _, err := Run("A3", Config{Seed: 11, Quick: true, Telemetry: agg}); err != nil {
		t.Fatal(err)
	}
	if agg.Len() == 0 {
		t.Fatal("no child registries registered by A3")
	}
	s := agg.Snapshot()
	if s.Counter("steps") == 0 || s.Counter("delivers") == 0 {
		t.Errorf("aggregate snapshot missing core counters: steps=%d delivers=%d",
			s.Counter("steps"), s.Counter("delivers"))
	}
	// A3 runs six jobs (B ∈ {1,2,4} × {drop, block}) over the same
	// network: the per-edge accumulators must merge, not be discarded.
	if len(s.EdgeStalls) == 0 {
		t.Error("aggregate snapshot lost per-edge accumulators")
	}
}
