// Package deadlock implements the Dally–Seitz virtual-channel
// deadlock-avoidance construction that motivates the whole paper (its
// Section 1: "the solution … is to allow each physical channel to emulate
// several virtual channels and to construct a virtual network in which
// the worms cannot form cycles").
//
// On a unidirectional ring (the base case of every torus), wormhole worms
// that wrap around can form a cyclic buffer-wait and deadlock. Adding
// *anonymous* virtual channels (the B-slot buffers of the rest of this
// repository) makes deadlock rarer but cannot eliminate it: with enough
// worms every slot of every buffer in the cycle fills. The Dally–Seitz
// fix is structural: split each physical channel into two virtual-channel
// *classes* and make every worm switch from class 0 to class 1 exactly
// when it crosses a fixed "dateline" node. Class indices then decrease
// monotonically along every route, the channel dependency graph is
// acyclic, and greedy routing can never deadlock — regardless of load.
//
// The package models VC classes as parallel edges of an expanded graph
// (one copy of each physical edge per class), which lets the standard
// simulator and the standard dependency-graph test apply unchanged.
package deadlock

import (
	"fmt"

	"wormhole/internal/graph"
	"wormhole/internal/message"
)

// Ring is a unidirectional wormhole ring with per-edge virtual-channel
// classes. Physical edge i runs from node i to node (i+1) mod N; class c
// of that channel is the parallel edge Class[c][i].
type Ring struct {
	G       *graph.Graph
	N       int // nodes
	Classes int // virtual-channel classes per physical channel
	// Class[c][i] is the class-c copy of physical edge i.
	Class [][]graph.EdgeID
	// Dateline is the node at which routes switch classes (node 0).
	Dateline graph.NodeID
}

// NewRing builds an N-node unidirectional ring with the given number of
// VC classes per physical channel. classes = 1 models a plain wormhole
// ring; classes = 2 enables the dateline discipline.
func NewRing(n, classes int) *Ring {
	if n < 2 {
		panic(fmt.Sprintf("deadlock: ring needs ≥ 2 nodes, got %d", n))
	}
	if classes < 1 {
		panic(fmt.Sprintf("deadlock: need ≥ 1 class, got %d", classes))
	}
	g := graph.New(n, n*classes)
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("r%d", i))
	}
	r := &Ring{G: g, N: n, Classes: classes, Dateline: 0}
	r.Class = make([][]graph.EdgeID, classes)
	for c := 0; c < classes; c++ {
		r.Class[c] = make([]graph.EdgeID, n)
		for i := 0; i < n; i++ {
			r.Class[c][i] = g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
		}
	}
	return r
}

// Route returns the clockwise path from src to dst.
//
// With one class the path simply follows the ring. With two or more
// classes it applies the Dally–Seitz dateline discipline: start on the
// highest class and drop to the next lower class upon crossing the
// dateline node, so no route ever re-enters a class it left — the
// acyclicity invariant.
func (r *Ring) Route(src, dst int) graph.Path {
	if src < 0 || src >= r.N || dst < 0 || dst >= r.N {
		panic("deadlock: node out of range")
	}
	var p graph.Path
	class := r.Classes - 1
	for cur := src; cur != dst; cur = (cur + 1) % r.N {
		p = append(p, r.Class[class][cur])
		// Crossing into the dateline node drops the class (saturating).
		if (cur+1)%r.N == int(r.Dateline) && class > 0 {
			class--
		}
	}
	return p
}

// Workload builds the message set for k worms starting at every node,
// each travelling `hops` edges clockwise with length l flits. This is
// the canonical cyclic-pressure workload: for hops close to N, every
// worm wraps and the plain ring's dependency graph is one big cycle.
func (r *Ring) Workload(k, hops, l int) *message.Set {
	starts := make([]int, 0, k*r.N)
	for rep := 0; rep < k; rep++ {
		for src := 0; src < r.N; src++ {
			starts = append(starts, src)
		}
	}
	return r.SparseWorkload(starts, hops, l)
}

// SparseWorkload builds one worm per listed start node, each travelling
// `hops` edges clockwise with length l flits. Sparse workloads probe the
// pressure threshold below which anonymous virtual channels still save
// the plain ring.
func (r *Ring) SparseWorkload(starts []int, hops, l int) *message.Set {
	if hops < 1 || hops > r.N {
		panic(fmt.Sprintf("deadlock: hops %d out of range [1, %d]", hops, r.N))
	}
	set := message.NewSet(r.G)
	for _, src := range starts {
		if src < 0 || src >= r.N {
			panic(fmt.Sprintf("deadlock: start %d out of range", src))
		}
		dst := (src + hops) % r.N
		set.Add(graph.NodeID(src), graph.NodeID(dst), l, r.Route(src, dst))
	}
	return set
}
