package deadlock

import (
	"testing"

	"wormhole/internal/analysis"
	"wormhole/internal/graph"
	"wormhole/internal/vcsim"
)

func TestRingStructure(t *testing.T) {
	r := NewRing(6, 2)
	if r.G.NumNodes() != 6 || r.G.NumEdges() != 12 {
		t.Fatalf("ring: %d nodes %d edges", r.G.NumNodes(), r.G.NumEdges())
	}
	for c := 0; c < 2; c++ {
		for i := 0; i < 6; i++ {
			e := r.G.Edge(r.Class[c][i])
			if int(e.Tail) != i || int(e.Head) != (i+1)%6 {
				t.Fatalf("class %d edge %d: %v", c, i, e)
			}
		}
	}
}

func TestRouteValidAndDatelineDisciplined(t *testing.T) {
	r := NewRing(8, 2)
	for src := 0; src < 8; src++ {
		for dst := 0; dst < 8; dst++ {
			if src == dst {
				continue
			}
			p := r.Route(src, dst)
			if err := p.Validate(r.G, graph.NodeID(src), graph.NodeID(dst)); err != nil {
				t.Fatalf("route %d→%d: %v", src, dst, err)
			}
			// Class must be non-increasing along the path, and a wrap
			// past node 0 must land in class 0.
			lastClass := 2
			for _, e := range p {
				c := classOf(r, e)
				if c > lastClass {
					t.Fatalf("route %d→%d re-enters class %d after %d", src, dst, c, lastClass)
				}
				lastClass = c
			}
		}
	}
}

// classOf recovers the class of an edge from the ring's ID layout (class
// c edges are created as one contiguous block per class).
func classOf(r *Ring, e graph.EdgeID) int {
	return int(e) / r.N
}

func TestPlainRingDependencyCyclic(t *testing.T) {
	r := NewRing(6, 1)
	set := r.Workload(1, 5, 8)
	if analysis.ChannelDependencyAcyclic(set) {
		t.Fatal("wrapping worms on a 1-class ring must have cyclic dependencies")
	}
}

func TestDatelineDependencyAcyclic(t *testing.T) {
	for _, n := range []int{4, 6, 10} {
		r := NewRing(n, 2)
		set := r.Workload(2, n-1, 8)
		if !analysis.ChannelDependencyAcyclic(set) {
			t.Fatalf("n=%d: dateline discipline must break all dependency cycles", n)
		}
	}
}

func TestPlainRingDeadlocks(t *testing.T) {
	// Near-full-wrap worms with B=1: classic wormhole deadlock.
	r := NewRing(6, 1)
	set := r.Workload(1, 5, 8)
	res := vcsim.Run(set, nil, vcsim.Config{VirtualChannels: 1, CheckInvariants: true})
	if !res.Deadlocked {
		t.Fatal("expected deadlock on the plain ring")
	}
}

func TestAnonymousChannelsStillDeadlock(t *testing.T) {
	// Anonymous B-slot buffers only raise the pressure needed: k worm
	// waves per node refill every slot and the cycle re-forms. This is
	// the precise reason Dally–Seitz needed *structured* classes.
	r := NewRing(6, 1)
	set := r.Workload(2, 5, 8) // two waves per node vs B=2
	res := vcsim.Run(set, nil, vcsim.Config{VirtualChannels: 2, CheckInvariants: true})
	if !res.Deadlocked {
		t.Fatal("expected deadlock with anonymous B=2 under doubled pressure")
	}
}

func TestDatelineNeverDeadlocks(t *testing.T) {
	// Same physical resources as the anonymous-B=2 case (two edge copies
	// with one slot each), but structured: no deadlock at any pressure.
	for _, k := range []int{1, 2, 4} {
		r := NewRing(6, 2)
		set := r.Workload(k, 5, 8)
		res := vcsim.Run(set, nil, vcsim.Config{VirtualChannels: 1, CheckInvariants: true})
		if res.Deadlocked {
			t.Fatalf("k=%d: dateline routing must not deadlock", k)
		}
		if !res.AllDelivered() {
			t.Fatalf("k=%d: %d/%d delivered", k, res.Delivered, set.Len())
		}
	}
}

func TestDatelinePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"small ring": func() { NewRing(1, 2) },
		"no classes": func() { NewRing(4, 0) },
		"bad hops":   func() { NewRing(4, 1).Workload(1, 0, 4) },
		"bad route":  func() { NewRing(4, 1).Route(-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
