// Package fault defines deterministic fault schedules for the wormhole
// simulator: scripted kill/revive events against individual virtual-
// channel lanes or whole physical edges, applied at exact flit steps.
//
// A Schedule is pure data — a step-ordered event list — so it serializes
// into checkpoints, compares for config-digest purposes, and replays
// byte-identically on every stepper. Schedules come from three places:
//
//   - Parse, a compact text grammar ("edge:12@100-200 lane:7@50-90")
//     for CLI flags and service job specs;
//   - Generate, a seed-derived random outage process (internal/rng)
//     whose outage sets are *nested* across rates: every outage present
//     at rate r is present at every rate r' ≥ r, which is what makes
//     measured degradation monotone in the fault rate by construction
//     rather than by statistical luck;
//   - literal construction in tests.
//
// The simulator consumes events in (Step, Edge, Kind) order. Killing a
// lane removes one credit from the edge (taking effect as occupants
// drain — flits in flight are never destroyed); killing an edge marks
// the whole edge dead so no worm extends onto it. Revivals restore the
// credit or clear the dead mark. See vcsim's "Fault plane" comment for
// the engine-side semantics.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"wormhole/internal/rng"
)

// Kind is a fault event type.
type Kind uint8

const (
	// KillLane removes one virtual-channel credit from the edge. B kills
	// on a B-lane edge leave it granting nothing — equivalent to a dead
	// edge for new traffic, though worms already holding lanes drain.
	KillLane Kind = iota
	// ReviveLane restores one previously killed lane credit.
	ReviveLane
	// KillEdge marks the whole edge dead: no worm extends onto it while
	// dead, whatever the credit state.
	KillEdge
	// ReviveEdge clears the dead mark.
	ReviveEdge
	numKinds
)

var kindNames = [numKinds]string{"kill-lane", "revive-lane", "kill-edge", "revive-edge"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one scheduled fault action.
type Event struct {
	Step int  // flit step at which the event takes effect
	Edge int  // physical edge index
	Kind Kind // what happens
}

// Schedule is a step-ordered fault event list. The zero value (nil) is
// the empty schedule; simulators treat it as "no fault plane attached"
// and keep their fault-free hot path.
type Schedule []Event

// ErrBadSchedule wraps every Validate and Parse failure.
var ErrBadSchedule = errors.New("fault: bad schedule")

// Sort orders the schedule by (Step, Edge, Kind), the order the
// simulator consumes events in. Construction helpers call it; callers
// building schedules by hand should too.
func (s Schedule) Sort() {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Step != s[j].Step {
			return s[i].Step < s[j].Step
		}
		if s[i].Edge != s[j].Edge {
			return s[i].Edge < s[j].Edge
		}
		return s[i].Kind < s[j].Kind
	})
}

// Validate checks the schedule against a network with numEdges edges and
// b lanes per edge: events ordered, edges in range, kinds known, steps
// non-negative, and the running per-edge state sane — never more than b
// lanes dead at once, no revive without a matching kill, no double
// edge-kill without an intervening revive.
func (s Schedule) Validate(numEdges, b int) error {
	lanesDead := map[int]int{}
	edgeDead := map[int]bool{}
	prev := Event{Step: -1, Edge: -1}
	for i, ev := range s {
		if ev.Step < 0 {
			return fmt.Errorf("%w: event %d has negative step %d", ErrBadSchedule, i, ev.Step)
		}
		if ev.Edge < 0 || ev.Edge >= numEdges {
			return fmt.Errorf("%w: event %d edge %d out of range [0, %d)", ErrBadSchedule, i, ev.Edge, numEdges)
		}
		if ev.Kind >= numKinds {
			return fmt.Errorf("%w: event %d has unknown kind %d", ErrBadSchedule, i, ev.Kind)
		}
		if ev.Step < prev.Step || (ev.Step == prev.Step && ev.Edge < prev.Edge) {
			return fmt.Errorf("%w: event %d out of (step, edge) order — call Sort", ErrBadSchedule, i)
		}
		prev = ev
		switch ev.Kind {
		case KillLane:
			if lanesDead[ev.Edge]++; lanesDead[ev.Edge] > b {
				return fmt.Errorf("%w: event %d kills lane %d of edge %d (B=%d)", ErrBadSchedule, i, lanesDead[ev.Edge], ev.Edge, b)
			}
		case ReviveLane:
			if lanesDead[ev.Edge]--; lanesDead[ev.Edge] < 0 {
				return fmt.Errorf("%w: event %d revives a lane of edge %d with none dead", ErrBadSchedule, i, ev.Edge)
			}
		case KillEdge:
			if edgeDead[ev.Edge] {
				return fmt.Errorf("%w: event %d kills edge %d twice", ErrBadSchedule, i, ev.Edge)
			}
			edgeDead[ev.Edge] = true
		case ReviveEdge:
			if !edgeDead[ev.Edge] {
				return fmt.Errorf("%w: event %d revives edge %d which is not dead", ErrBadSchedule, i, ev.Edge)
			}
			edgeDead[ev.Edge] = false
		}
	}
	return nil
}

// LastRevive returns the largest step carrying a revive event, or -1
// when the schedule revives nothing. While the simulator clock is at or
// before this step, an apparent deadlock may still be broken by a
// scheduled revival, so deadlock declaration is deferred past it.
func (s Schedule) LastRevive() int {
	last := -1
	for _, ev := range s {
		if (ev.Kind == ReviveLane || ev.Kind == ReviveEdge) && ev.Step > last {
			last = ev.Step
		}
	}
	return last
}

// Parse reads the compact outage grammar: a whitespace-separated list of
//
//	edge:E@START-END    kill edge E at START, revive it at END
//	edge:E@START        kill edge E at START, never revive
//	lane:E@START-END    kill one lane of edge E at START, revive at END
//	lane:E@START        kill one lane of edge E at START, never revive
//
// Repeating a lane outage stacks kills on the same edge (up to B; that
// bound is checked by Validate, which Parse does not call — edge counts
// are not known here). The returned schedule is sorted.
func Parse(text string) (Schedule, error) {
	var s Schedule
	for _, tok := range strings.Fields(text) {
		kind, rest, ok := strings.Cut(tok, ":")
		if !ok {
			return nil, fmt.Errorf("%w: %q is not kind:edge@window", ErrBadSchedule, tok)
		}
		var kill, revive Kind
		switch kind {
		case "edge":
			kill, revive = KillEdge, ReviveEdge
		case "lane":
			kill, revive = KillLane, ReviveLane
		default:
			return nil, fmt.Errorf("%w: unknown fault kind %q in %q (want edge or lane)", ErrBadSchedule, kind, tok)
		}
		edgeStr, window, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("%w: %q has no @window", ErrBadSchedule, tok)
		}
		edge, err := strconv.Atoi(edgeStr)
		if err != nil || edge < 0 {
			return nil, fmt.Errorf("%w: bad edge %q in %q", ErrBadSchedule, edgeStr, tok)
		}
		startStr, endStr, hasEnd := strings.Cut(window, "-")
		start, err := strconv.Atoi(startStr)
		if err != nil || start < 0 {
			return nil, fmt.Errorf("%w: bad start step %q in %q", ErrBadSchedule, startStr, tok)
		}
		s = append(s, Event{Step: start, Edge: edge, Kind: kill})
		if hasEnd {
			end, err := strconv.Atoi(endStr)
			if err != nil || end <= start {
				return nil, fmt.Errorf("%w: bad end step %q in %q (want end > start)", ErrBadSchedule, endStr, tok)
			}
			s = append(s, Event{Step: end, Edge: edge, Kind: revive})
		}
	}
	s.Sort()
	return s, nil
}

// String renders the schedule back into the Parse grammar: each kill is
// paired with the first later matching revive on its edge. Unpaired
// revives (never produced by Parse or Generate) render as explicit
// "kind!edge@step" tokens; the output is for logs and job listings.
func (s Schedule) String() string {
	var b strings.Builder
	used := make([]bool, len(s))
	first := true
	emit := func(tok string) {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		b.WriteString(tok)
	}
	for i, ev := range s {
		if used[i] {
			continue
		}
		switch ev.Kind {
		case KillEdge, KillLane:
			want := ReviveEdge
			name := "edge"
			if ev.Kind == KillLane {
				want, name = ReviveLane, "lane"
			}
			end := -1
			for j := i + 1; j < len(s); j++ {
				if !used[j] && s[j].Edge == ev.Edge && s[j].Kind == want {
					end = j
					break
				}
			}
			if end >= 0 {
				used[end] = true
				emit(fmt.Sprintf("%s:%d@%d-%d", name, ev.Edge, ev.Step, s[end].Step))
			} else {
				emit(fmt.Sprintf("%s:%d@%d", name, ev.Edge, ev.Step))
			}
		case ReviveEdge, ReviveLane:
			emit(fmt.Sprintf("%s!%d@%d", ev.Kind, ev.Edge, ev.Step))
		}
	}
	return b.String()
}

// GenConfig parameterizes Generate.
type GenConfig struct {
	// Seed drives the outage process. The candidate outage set is a
	// function of (Seed, NumEdges, Horizon, MeanOutage) only — Rate
	// merely thins it — so schedules at different rates with the same
	// seed are nested (coupled): raising Rate strictly adds outages.
	Seed uint64
	// NumEdges is the network's physical edge count.
	NumEdges int
	// Horizon bounds outage start steps to [0, Horizon).
	Horizon int
	// Rate is the per-edge probability of suffering an outage over the
	// horizon, in [0, 1]. Rate 0 returns an empty (nil) schedule.
	Rate float64
	// MeanOutage is the mean outage length in steps (default 100).
	// Actual lengths are uniform in [1, 2·MeanOutage).
	MeanOutage int
	// Lanes generates lane kills instead of whole-edge kills: each
	// outage kills this many lanes of the edge for its window (capped by
	// the simulator's B at Validate time). 0 means whole-edge outages.
	Lanes int
}

// Generate builds a random outage schedule by thinning: every edge draws
// one candidate outage (start, length, inclusion level u ~ U[0,1)) from
// the seed stream, and the outage is included iff u < Rate. Because the
// candidate draw does not depend on Rate, the included sets are nested
// across rates — the coupling that makes throughput-vs-fault-rate
// curves monotone by construction. The returned schedule is sorted and
// valid for any B > Lanes·0 (lane outages need B ≥ Lanes).
func Generate(cfg GenConfig) Schedule {
	if cfg.Rate <= 0 || cfg.NumEdges <= 0 || cfg.Horizon <= 0 {
		return nil
	}
	mean := cfg.MeanOutage
	if mean <= 0 {
		mean = 100
	}
	r := rng.New(cfg.Seed)
	var s Schedule
	for e := 0; e < cfg.NumEdges; e++ {
		// Fixed draw order per edge, independent of Rate: inclusion
		// level, start, length. Every edge consumes the same number of
		// draws whether included or not, so the stream stays aligned.
		u := r.Float64()
		start := r.Intn(cfg.Horizon)
		length := 1 + r.Intn(2*mean-1)
		if u >= cfg.Rate {
			continue
		}
		end := start + length
		if cfg.Lanes > 0 {
			for l := 0; l < cfg.Lanes; l++ {
				s = append(s, Event{Step: start, Edge: e, Kind: KillLane})
				s = append(s, Event{Step: end, Edge: e, Kind: ReviveLane})
			}
		} else {
			s = append(s, Event{Step: start, Edge: e, Kind: KillEdge})
			s = append(s, Event{Step: end, Edge: e, Kind: ReviveEdge})
		}
	}
	s.Sort()
	return s
}
