package fault

import (
	"errors"
	"reflect"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	s, err := Parse("edge:12@100-200 lane:7@50-90 lane:7@60 edge:3@5-6")
	if err != nil {
		t.Fatal(err)
	}
	want := Schedule{
		{Step: 5, Edge: 3, Kind: KillEdge},
		{Step: 6, Edge: 3, Kind: ReviveEdge},
		{Step: 50, Edge: 7, Kind: KillLane},
		{Step: 60, Edge: 7, Kind: KillLane},
		{Step: 90, Edge: 7, Kind: ReviveLane},
		{Step: 100, Edge: 12, Kind: KillEdge},
		{Step: 200, Edge: 12, Kind: ReviveEdge},
	}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("parsed %+v, want %+v", s, want)
	}
	if err := s.Validate(16, 2); err != nil {
		t.Fatal(err)
	}
	reparsed, err := Parse(s.String())
	if err != nil {
		t.Fatalf("String output %q does not reparse: %v", s.String(), err)
	}
	if !reflect.DeepEqual(reparsed, s) {
		t.Fatalf("String round trip changed the schedule:\n%+v\n%+v", s, reparsed)
	}
}

func TestParseRejects(t *testing.T) {
	for _, bad := range []string{
		"edge12@1-2",  // no colon
		"link:1@2-3",  // unknown kind
		"edge:1",      // no window
		"edge:x@1-2",  // bad edge
		"edge:-1@1-2", // negative edge
		"edge:1@x-2",  // bad start
		"edge:1@5-5",  // empty window
		"edge:1@5-4",  // inverted window
		"lane:1@3-x",  // bad end
		"edge:1@-3-4", // negative start parses as bad
	} {
		if _, err := Parse(bad); !errors.Is(err, ErrBadSchedule) {
			t.Errorf("Parse(%q) = %v, want ErrBadSchedule", bad, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]Schedule{
		"edge out of range": {{Step: 0, Edge: 9, Kind: KillEdge}},
		"negative step":     {{Step: -1, Edge: 0, Kind: KillEdge}},
		"unknown kind":      {{Step: 0, Edge: 0, Kind: numKinds}},
		"out of order": {
			{Step: 5, Edge: 0, Kind: KillEdge},
			{Step: 1, Edge: 0, Kind: ReviveEdge},
		},
		"too many lane kills": {
			{Step: 0, Edge: 0, Kind: KillLane},
			{Step: 1, Edge: 0, Kind: KillLane},
			{Step: 2, Edge: 0, Kind: KillLane},
		},
		"revive without kill": {{Step: 0, Edge: 0, Kind: ReviveLane}},
		"double edge kill": {
			{Step: 0, Edge: 0, Kind: KillEdge},
			{Step: 1, Edge: 0, Kind: KillEdge},
		},
		"revive live edge": {{Step: 0, Edge: 0, Kind: ReviveEdge}},
	}
	for name, s := range cases {
		if err := s.Validate(4, 2); !errors.Is(err, ErrBadSchedule) {
			t.Errorf("%s: Validate = %v, want ErrBadSchedule", name, err)
		}
	}
}

func TestLastRevive(t *testing.T) {
	if got := (Schedule{}).LastRevive(); got != -1 {
		t.Fatalf("empty schedule LastRevive = %d, want -1", got)
	}
	s, err := Parse("edge:0@10-20 lane:1@5-99 edge:2@50")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.LastRevive(); got != 99 {
		t.Fatalf("LastRevive = %d, want 99", got)
	}
}

// TestGenerateNested pins the thinning construction: the outage set at a
// lower rate is a subset of the set at any higher rate (same seed), the
// property the T16 monotonicity claim rests on.
func TestGenerateNested(t *testing.T) {
	base := GenConfig{Seed: 42, NumEdges: 96, Horizon: 1000, MeanOutage: 50}
	key := func(ev Event) [3]int { return [3]int{ev.Step, ev.Edge, int(ev.Kind)} }
	var prev map[[3]int]bool
	for _, rate := range []float64{0.05, 0.1, 0.2, 0.5, 1.0} {
		cfg := base
		cfg.Rate = rate
		s := Generate(cfg)
		if err := s.Validate(cfg.NumEdges, 1); err != nil {
			t.Fatalf("rate %g: %v", rate, err)
		}
		cur := map[[3]int]bool{}
		for _, ev := range s {
			cur[key(ev)] = true
		}
		for k := range prev {
			if !cur[k] {
				t.Fatalf("rate %g lost an outage event present at a lower rate: %v", rate, k)
			}
		}
		prev = cur
	}
	// Determinism: same config, same schedule.
	cfg := base
	cfg.Rate = 0.3
	if a, b := Generate(cfg), Generate(cfg); !reflect.DeepEqual(a, b) {
		t.Fatal("Generate is not deterministic")
	}
	// Rate 0 and degenerate configs yield nil.
	cfg.Rate = 0
	if Generate(cfg) != nil {
		t.Fatal("rate 0 should generate nothing")
	}
}

func TestGenerateLaneOutages(t *testing.T) {
	s := Generate(GenConfig{Seed: 7, NumEdges: 32, Horizon: 500, Rate: 1, Lanes: 2, MeanOutage: 20})
	if len(s) == 0 {
		t.Fatal("rate 1 generated nothing")
	}
	for _, ev := range s {
		if ev.Kind != KillLane && ev.Kind != ReviveLane {
			t.Fatalf("Lanes mode generated %v", ev.Kind)
		}
	}
	if err := s.Validate(32, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(32, 1); !errors.Is(err, ErrBadSchedule) {
		t.Fatalf("2-lane outages must not validate at B=1: %v", err)
	}
}

func TestKindString(t *testing.T) {
	if KillEdge.String() != "kill-edge" || ReviveLane.String() != "revive-lane" {
		t.Fatal("kind names wrong")
	}
	if Kind(200).String() != "Kind(200)" {
		t.Fatal("out-of-range kind name wrong")
	}
}
