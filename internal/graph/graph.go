// Package graph provides the directed-multigraph substrate on which all
// networks in this repository are built.
//
// The paper's model is a directed network of unidirectional physical
// channels ("edges"), each of which multiplexes B virtual channels. This
// package knows nothing about flits or virtual channels; it supplies
// topology-neutral structure — node and edge identities, adjacency, and
// shortest-path machinery — that internal/topology instantiates into
// butterflies, meshes, and adversarial constructions, and that
// internal/vcsim animates.
package graph

import (
	"fmt"
	"strings"
)

// NodeID identifies a node. IDs are dense: a graph with N nodes uses IDs
// 0..N-1.
type NodeID int32

// EdgeID identifies a directed edge. IDs are dense: a graph with M edges
// uses IDs 0..M-1.
type EdgeID int32

// None is the sentinel for "no node" / "no edge".
const None = -1

// Edge is a directed physical channel from Tail to Head. Flits flow
// Tail → Head; the flit buffer described by the paper sits at the head.
type Edge struct {
	ID   EdgeID
	Tail NodeID
	Head NodeID
}

// Graph is a directed multigraph. The zero value is an empty graph ready to
// use. Graphs are append-only: nodes and edges can be added but never
// removed, which keeps IDs dense and lets simulators index per-edge state
// with plain slices.
type Graph struct {
	edges []Edge
	// out[v] and in[v] list edge IDs incident to node v.
	out   [][]EdgeID
	in    [][]EdgeID
	names []string // optional node labels
}

// New returns an empty graph with capacity hints for n nodes and m edges.
func New(n, m int) *Graph {
	g := &Graph{
		edges: make([]Edge, 0, m),
		out:   make([][]EdgeID, 0, n),
		in:    make([][]EdgeID, 0, n),
		names: make([]string, 0, n),
	}
	return g
}

// AddNode creates a new node with an optional label and returns its ID.
func (g *Graph) AddNode(label string) NodeID {
	id := NodeID(len(g.out))
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.names = append(g.names, label)
	return id
}

// AddNodes creates k unlabeled nodes and returns the ID of the first; the
// remainder follow consecutively.
func (g *Graph) AddNodes(k int) NodeID {
	first := NodeID(len(g.out))
	for i := 0; i < k; i++ {
		g.AddNode("")
	}
	return first
}

// AddEdge creates a directed edge tail → head and returns its ID. Parallel
// edges and self-loops are permitted (the Theorem 2.2.1 construction uses
// parallel primary edges when replicating messages).
func (g *Graph) AddEdge(tail, head NodeID) EdgeID {
	if !g.HasNode(tail) || !g.HasNode(head) {
		panic(fmt.Sprintf("graph: AddEdge(%d, %d) with unknown node (have %d nodes)", tail, head, g.NumNodes()))
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, Tail: tail, Head: head})
	g.out[tail] = append(g.out[tail], id)
	g.in[head] = append(g.in[head], id)
	return id
}

// AddBiEdge creates a pair of antiparallel edges between u and v and returns
// both IDs (u→v first).
func (g *Graph) AddBiEdge(u, v NodeID) (uv, vu EdgeID) {
	return g.AddEdge(u, v), g.AddEdge(v, u)
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.out) }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// HasNode reports whether id names an existing node.
func (g *Graph) HasNode(id NodeID) bool { return id >= 0 && int(id) < len(g.out) }

// HasEdge reports whether id names an existing edge.
func (g *Graph) HasEdge(id EdgeID) bool { return id >= 0 && int(id) < len(g.edges) }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) Edge {
	return g.edges[id]
}

// Edges returns all edges. The returned slice is owned by the graph and must
// not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// Out returns the IDs of edges leaving v. Owned by the graph; read-only.
func (g *Graph) Out(v NodeID) []EdgeID { return g.out[v] }

// In returns the IDs of edges entering v. Owned by the graph; read-only.
func (g *Graph) In(v NodeID) []EdgeID { return g.in[v] }

// OutDegree returns the number of edges leaving v.
func (g *Graph) OutDegree(v NodeID) int { return len(g.out[v]) }

// InDegree returns the number of edges entering v.
func (g *Graph) InDegree(v NodeID) int { return len(g.in[v]) }

// Label returns the label assigned to v at creation ("" if none).
func (g *Graph) Label(v NodeID) string { return g.names[v] }

// SetLabel replaces the label of v.
func (g *Graph) SetLabel(v NodeID, label string) { g.names[v] = label }

// FindEdge returns the ID of some edge tail → head, or None if no such edge
// exists. With parallel edges the lowest ID wins.
func (g *Graph) FindEdge(tail, head NodeID) EdgeID {
	for _, e := range g.out[tail] {
		if g.edges[e].Head == head {
			return e
		}
	}
	return None
}

// MaxDegree returns the maximum of in- and out-degree over all nodes.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.OutDegree(NodeID(v)); d > max {
			max = d
		}
		if d := g.InDegree(NodeID(v)); d > max {
			max = d
		}
	}
	return max
}

// String summarizes the graph for debugging.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{nodes: %d, edges: %d}", g.NumNodes(), g.NumEdges())
}

// DOT renders the graph in Graphviz DOT format. Node labels are used when
// present; otherwise numeric IDs.
func (g *Graph) DOT(name string) string {
	return g.DOTEdges(name, nil)
}

// DOTEdges renders the graph in Graphviz DOT format with per-edge
// attributes: for each edge, attr (when non-nil) returns the attribute
// list to place in the edge statement's brackets — e.g. `color="#d73027"`
// — or "" for a bare edge. Telemetry heatmap overlays (cmd/netviz) are
// the intended caller.
func (g *Graph) DOTEdges(name string, attr func(EdgeID) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	for v := 0; v < g.NumNodes(); v++ {
		label := g.names[v]
		if label == "" {
			label = fmt.Sprintf("%d", v)
		}
		fmt.Fprintf(&b, "  n%d [label=%q];\n", v, label)
	}
	for i, e := range g.edges {
		if attr != nil {
			if a := attr(EdgeID(i)); a != "" {
				fmt.Fprintf(&b, "  n%d -> n%d [%s];\n", e.Tail, e.Head, a)
				continue
			}
		}
		fmt.Fprintf(&b, "  n%d -> n%d;\n", e.Tail, e.Head)
	}
	b.WriteString("}\n")
	return b.String()
}
