package graph

import (
	"strings"
	"testing"
	"testing/quick"

	"wormhole/internal/rng"
)

func buildDiamond(t *testing.T) (*Graph, [5]EdgeID) {
	t.Helper()
	// 0 → 1 → 3, 0 → 2 → 3, and 3 → 0 back edge.
	g := New(4, 5)
	g.AddNodes(4)
	var e [5]EdgeID
	e[0] = g.AddEdge(0, 1)
	e[1] = g.AddEdge(1, 3)
	e[2] = g.AddEdge(0, 2)
	e[3] = g.AddEdge(2, 3)
	e[4] = g.AddEdge(3, 0)
	return g, e
}

func TestBasicConstruction(t *testing.T) {
	g, e := buildDiamond(t)
	if g.NumNodes() != 4 || g.NumEdges() != 5 {
		t.Fatalf("got %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	if got := g.Edge(e[0]); got.Tail != 0 || got.Head != 1 {
		t.Errorf("edge 0 = %+v", got)
	}
	if g.OutDegree(0) != 2 || g.InDegree(3) != 2 || g.OutDegree(3) != 1 {
		t.Error("degree bookkeeping wrong")
	}
	if g.FindEdge(0, 1) != e[0] {
		t.Error("FindEdge(0,1)")
	}
	if g.FindEdge(1, 0) != None {
		t.Error("FindEdge(1,0) should be None")
	}
	if !g.HasNode(3) || g.HasNode(4) || g.HasNode(-1) {
		t.Error("HasNode")
	}
	if !g.HasEdge(e[4]) || g.HasEdge(99) {
		t.Error("HasEdge")
	}
}

func TestLabels(t *testing.T) {
	g := New(0, 0)
	v := g.AddNode("hello")
	if g.Label(v) != "hello" {
		t.Error("label lost")
	}
	g.SetLabel(v, "bye")
	if g.Label(v) != "bye" {
		t.Error("SetLabel")
	}
}

func TestAddEdgePanicsOnUnknownNode(t *testing.T) {
	g := New(1, 1)
	g.AddNode("")
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	g.AddEdge(0, 5)
}

func TestParallelEdgesAllowed(t *testing.T) {
	g := New(2, 2)
	g.AddNodes(2)
	e1 := g.AddEdge(0, 1)
	e2 := g.AddEdge(0, 1)
	if e1 == e2 {
		t.Error("parallel edges must get distinct IDs")
	}
	if g.FindEdge(0, 1) != e1 {
		t.Error("FindEdge returns lowest ID")
	}
}

func TestBiEdge(t *testing.T) {
	g := New(2, 2)
	g.AddNodes(2)
	uv, vu := g.AddBiEdge(0, 1)
	if g.Edge(uv).Head != 1 || g.Edge(vu).Head != 0 {
		t.Error("AddBiEdge orientation")
	}
}

func TestDOT(t *testing.T) {
	g, _ := buildDiamond(t)
	dot := g.DOT("d")
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "n0 -> n1") {
		t.Errorf("DOT output malformed:\n%s", dot)
	}
}

func TestPathValidate(t *testing.T) {
	g, e := buildDiamond(t)
	good := Path{e[0], e[1]}
	if err := good.Validate(g, 0, 3); err != nil {
		t.Errorf("valid path rejected: %v", err)
	}
	if err := (Path{e[0], e[3]}).Validate(g, 0, 3); err == nil {
		t.Error("disconnected walk accepted")
	}
	if err := good.Validate(g, 0, 2); err == nil {
		t.Error("wrong destination accepted")
	}
	if err := good.Validate(g, 1, 3); err == nil {
		t.Error("wrong source accepted")
	}
	if err := (Path{}).Validate(g, 2, 2); err != nil {
		t.Errorf("empty self path rejected: %v", err)
	}
	if err := (Path{}).Validate(g, 0, 2); err == nil {
		t.Error("empty path with src≠dst accepted")
	}
	if err := (Path{99}).Validate(g, 0, 3); err == nil {
		t.Error("bogus edge ID accepted")
	}
}

func TestEdgeSimple(t *testing.T) {
	g, e := buildDiamond(t)
	if !(Path{e[0], e[1], e[4]}).EdgeSimple() {
		t.Error("simple path misflagged")
	}
	if (Path{e[0], e[1], e[4], e[0]}).EdgeSimple() {
		t.Error("repeated edge not caught")
	}
	_ = g
}

func TestPathNodes(t *testing.T) {
	g, e := buildDiamond(t)
	nodes := Path{e[0], e[1], e[4]}.Nodes(g, 0)
	want := []NodeID{0, 1, 3, 0}
	if len(nodes) != len(want) {
		t.Fatalf("nodes = %v", nodes)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("nodes = %v, want %v", nodes, want)
		}
	}
}

func TestShortestPath(t *testing.T) {
	g, _ := buildDiamond(t)
	p, ok := ShortestPath(g, 0, 3)
	if !ok || len(p) != 2 {
		t.Fatalf("ShortestPath(0,3) = %v, %v", p, ok)
	}
	if err := p.Validate(g, 0, 3); err != nil {
		t.Fatal(err)
	}
	if p2, ok := ShortestPath(g, 2, 2); !ok || len(p2) != 0 {
		t.Error("self path should be empty")
	}
	// Unreachable: isolated node.
	g2 := New(2, 0)
	g2.AddNodes(2)
	if _, ok := ShortestPath(g2, 0, 1); ok {
		t.Error("unreachable pair found a path")
	}
}

func TestBFSDistances(t *testing.T) {
	g, _ := buildDiamond(t)
	d := BFSDistances(g, 0)
	want := []int{0, 1, 1, 2}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("distances = %v, want %v", d, want)
		}
	}
}

func TestDiameter(t *testing.T) {
	g, _ := buildDiamond(t)
	// Longest shortest path: 1 → 0 is 1 →3 →0 = 2; 1→2 = 1→3→0→2 = 3.
	if got := Diameter(g); got != 3 {
		t.Errorf("diameter = %d, want 3", got)
	}
	if Diameter(New(1, 0)) != 0 {
		t.Error("single-node diameter")
	}
}

func TestIsDAG(t *testing.T) {
	g, _ := buildDiamond(t) // has the 3→0 back edge → cyclic
	if IsDAG(g) {
		t.Error("cyclic graph declared a DAG")
	}
	acyc := New(3, 2)
	acyc.AddNodes(3)
	acyc.AddEdge(0, 1)
	acyc.AddEdge(1, 2)
	if !IsDAG(acyc) {
		t.Error("path graph declared cyclic")
	}
	if !IsDAG(New(0, 0)) {
		t.Error("empty graph is a DAG")
	}
}

func TestMaxDegree(t *testing.T) {
	g, _ := buildDiamond(t)
	if got := g.MaxDegree(); got != 2 {
		t.Errorf("max degree = %d, want 2", got)
	}
}

// TestShortestPathMatchesBFS cross-checks ShortestPath length against
// BFSDistances on random graphs.
func TestShortestPathMatchesBFS(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(30)
		g := New(n, 3*n)
		g.AddNodes(n)
		for i := 0; i < 3*n; i++ {
			g.AddEdge(NodeID(r.Intn(n)), NodeID(r.Intn(n)))
		}
		src := NodeID(r.Intn(n))
		dist := BFSDistances(g, src)
		for v := 0; v < n; v++ {
			p, ok := ShortestPath(g, src, NodeID(v))
			if (dist[v] >= 0) != ok {
				return false
			}
			if ok {
				if len(p) != dist[v] {
					return false
				}
				if err := p.Validate(g, src, NodeID(v)); err != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStringSummary(t *testing.T) {
	g, _ := buildDiamond(t)
	if s := g.String(); !strings.Contains(s, "4") || !strings.Contains(s, "5") {
		t.Errorf("summary %q", s)
	}
}
