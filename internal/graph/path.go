package graph

import "fmt"

// Path is a sequence of edge IDs forming a directed walk: the head of
// Path[i] must equal the tail of Path[i+1]. An empty path is legal and
// denotes a message whose source equals its destination.
type Path []EdgeID

// Validate checks that p is a connected directed walk in g starting at src
// and ending at dst. It returns a descriptive error on the first violation.
func (p Path) Validate(g *Graph, src, dst NodeID) error {
	if len(p) == 0 {
		if src != dst {
			return fmt.Errorf("graph: empty path but src %d != dst %d", src, dst)
		}
		return nil
	}
	cur := src
	for i, id := range p {
		if !g.HasEdge(id) {
			return fmt.Errorf("graph: path[%d] = %d is not an edge", i, id)
		}
		e := g.Edge(id)
		if e.Tail != cur {
			return fmt.Errorf("graph: path[%d] = %d starts at %d, want %d", i, id, e.Tail, cur)
		}
		cur = e.Head
	}
	if cur != dst {
		return fmt.Errorf("graph: path ends at %d, want %d", cur, dst)
	}
	return nil
}

// EdgeSimple reports whether the path uses no edge more than once. The
// upper-bound theorems of the paper require edge-simple paths.
func (p Path) EdgeSimple() bool {
	seen := make(map[EdgeID]struct{}, len(p))
	for _, id := range p {
		if _, dup := seen[id]; dup {
			return false
		}
		seen[id] = struct{}{}
	}
	return true
}

// Nodes returns the node sequence visited by the path, starting at src.
// The result has len(p)+1 entries.
func (p Path) Nodes(g *Graph, src NodeID) []NodeID {
	out := make([]NodeID, 0, len(p)+1)
	out = append(out, src)
	cur := src
	for _, id := range p {
		cur = g.Edge(id).Head
		out = append(out, cur)
	}
	return out
}

// ShortestPath returns a minimum-hop path from src to dst found by
// breadth-first search, or nil and false if dst is unreachable. Ties are
// broken by edge-ID order, so the result is deterministic.
func ShortestPath(g *Graph, src, dst NodeID) (Path, bool) {
	if src == dst {
		return Path{}, true
	}
	parent := make([]EdgeID, g.NumNodes())
	for i := range parent {
		parent[i] = None
	}
	visited := make([]bool, g.NumNodes())
	visited[src] = true
	queue := []NodeID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, eid := range g.Out(v) {
			h := g.Edge(eid).Head
			if visited[h] {
				continue
			}
			visited[h] = true
			parent[h] = eid
			if h == dst {
				return reconstruct(g, parent, src, dst), true
			}
			queue = append(queue, h)
		}
	}
	return nil, false
}

// reconstruct walks parent pointers from dst back to src.
func reconstruct(g *Graph, parent []EdgeID, src, dst NodeID) Path {
	var rev Path
	cur := dst
	for cur != src {
		eid := parent[cur]
		rev = append(rev, eid)
		cur = g.Edge(eid).Tail
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// BFSDistances returns the hop distance from src to every node (-1 when
// unreachable).
func BFSDistances(g *Graph, src NodeID) []int {
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, eid := range g.Out(v) {
			h := g.Edge(eid).Head
			if dist[h] < 0 {
				dist[h] = dist[v] + 1
				queue = append(queue, h)
			}
		}
	}
	return dist
}

// Diameter returns the largest finite shortest-path distance between any
// ordered node pair, computed by BFS from every node. It returns 0 for
// graphs with fewer than two nodes.
func Diameter(g *Graph) int {
	max := 0
	for v := 0; v < g.NumNodes(); v++ {
		for _, d := range BFSDistances(g, NodeID(v)) {
			if d > max {
				max = d
			}
		}
	}
	return max
}

// IsDAG reports whether the graph has no directed cycle, via Kahn's
// algorithm. Leveled networks (the butterfly among them) are DAGs, which is
// what makes greedy one-pass wormhole routing on them deadlock-free.
func IsDAG(g *Graph) bool {
	indeg := make([]int, g.NumNodes())
	for _, e := range g.Edges() {
		indeg[e.Head]++
	}
	var queue []NodeID
	for v := range indeg {
		if indeg[v] == 0 {
			queue = append(queue, NodeID(v))
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		seen++
		for _, eid := range g.Out(v) {
			h := g.Edge(eid).Head
			indeg[h]--
			if indeg[h] == 0 {
				queue = append(queue, h)
			}
		}
	}
	return seen == g.NumNodes()
}
