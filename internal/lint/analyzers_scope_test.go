package lint

import (
	"os"
	"path/filepath"
	"testing"

	"wormhole/internal/lint/lintkit"
)

// runOn type-checks src as a package at the given import path and runs
// one analyzer over it, exporting facts into out when non-nil.
func runOn(t *testing.T, path, src string, a *lintkit.Analyzer, out *lintkit.Facts) []lintkit.Diagnostic {
	t.Helper()
	file := filepath.Join(t.TempDir(), "p.go")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := lintkit.Load(path, []string{file}, nil)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lintkit.Run(p, []*lintkit.Analyzer{a}, nil, out)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// violations would trip every scoped analyzer — if the package were in
// scope.
const violations = `package p

func order(m map[int]int) int {
	s := 0
	for k := range m {
		s += k
	}
	return s
}

func narrow(x int) int32 { return int32(x) }

func unpack(k uint64) int { return int(k >> 32) }
`

func TestScopedAnalyzersIgnoreOutOfScopePackages(t *testing.T) {
	// Neither a simulator package nor //wormvet:scope-opted-in: the
	// scoped analyzers must not fire. (hotalloc is scoped by markers and
	// stays silent here too — nothing is marked.)
	for _, a := range Analyzers() {
		if diags := runOn(t, "example.com/outside", violations, a, nil); len(diags) != 0 {
			t.Errorf("%s fired on an out-of-scope package: %v", a.Name, diags)
		}
	}
}

func TestDeterminismExemptsRngPackage(t *testing.T) {
	// internal/rng is the one package exempt from the determinism pass
	// even when scoped: it IS the deterministic randomness source, and
	// mixing and bounding there looks like entropy to the analyzer.
	scoped := "//wormvet:scope\n" + violations
	if diags := runOn(t, "wormhole/internal/rng", scoped, DeterminismAnalyzer, nil); len(diags) != 0 {
		t.Errorf("determinism fired inside internal/rng: %v", diags)
	}
	// ... but the exemption is determinism's alone: horizon still
	// applies to the same scoped package.
	if diags := runOn(t, "wormhole/internal/rng", scoped, HorizonAnalyzer, nil); len(diags) != 1 {
		t.Errorf("horizon diagnostics in internal/rng = %v, want the one narrowing", diags)
	}
}

func TestHotallocExportsFacts(t *testing.T) {
	src := `package p

//wormvet:hotpath
func Step() {}

//wormvet:nonalloc
func leaf() {}
`
	var out lintkit.Facts
	if diags := runOn(t, "example.com/outside", src, HotallocAnalyzer, &out); len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
	if !out.Has("Step") || !out.Has("leaf") {
		t.Errorf("exported facts = %+v, want Step and leaf", out)
	}
}
