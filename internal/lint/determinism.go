package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"wormhole/internal/lint/lintkit"
)

// DeterminismAnalyzer flags the constructs that can leak scheduling or
// runtime nondeterminism into experiment output inside the simulator
// packages:
//
//   - `range` over a map: iteration order is randomized per run. Either
//     iterate a sorted key slice, or — when the loop is provably
//     order-insensitive (e.g. the keys are collected and sorted
//     immediately below) — annotate //wormvet:allow determinism with a
//     reason.
//   - importing math/rand or math/rand/v2: the global source is seeded
//     per-process; all randomness must come from internal/rng, whose
//     streams are seeded, splittable, and replay-identical.
//   - time.Now / time.Since: wall-clock reads make output depend on the
//     host. (internal/bench and the CLIs keep them — they time the
//     harness, not the simulation — and sit outside the scope list.)
//
// This is the static face of the differential replay oracle: the class
// of cross-goroutine determinism bugs the ROADMAP's sharded-PDES core
// would meet (map-order fanout, stray rng) is caught here before any
// fuzzer could.
var DeterminismAnalyzer = &lintkit.Analyzer{
	Name: "determinism",
	Doc:  "flag map-order iteration, math/rand, and wall-clock reads in simulator packages",
	Run:  runDeterminism,
}

func runDeterminism(pass *lintkit.Pass) error {
	if !inSimScope(pass) || pass.Pkg.Path() == "wormhole/internal/rng" {
		return nil
	}
	for _, f := range prodFiles(pass) {
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s: per-process global randomness breaks replay; use internal/rng sources", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				t := pass.TypesInfo.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(),
						"range over map %s: iteration order is nondeterministic; iterate sorted keys or annotate //wormvet:allow determinism", exprString(n.X))
				}
			case *ast.SelectorExpr:
				if fn, ok := pass.TypesInfo.Uses[n.Sel].(*types.Func); ok {
					if full := fn.FullName(); full == "time.Now" || full == "time.Since" {
						pass.Reportf(n.Pos(),
							"%s reads the wall clock: simulation results must not depend on host time", full)
					}
				}
			}
			return true
		})
	}
	return nil
}

// exprString renders an expression for diagnostics, compacted.
func exprString(e ast.Expr) string {
	s := types.ExprString(e)
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return strings.ReplaceAll(s, "\n", " ")
}
