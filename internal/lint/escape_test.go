package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"wormhole/internal/lint/lintkit"
)

// TestHotpathEscapes is the dynamic cross-check of the hotalloc
// analyzer: it compiles the simulator with -gcflags=-m and fails on any
// "escapes to heap" / "moved to heap" diagnostic landing inside a
// //wormvet:hotpath-marked function. The static analyzer reasons about
// syntax; the compiler's escape analysis sees through inlining and
// interface devirtualization — each catches regressions the other
// can't. The same exemptions apply: //wormvet:allow hotalloc sites and
// panic arguments (terminal, paid once, not steady-state).
func TestHotpathEscapes(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles vcsim with escape-analysis diagnostics")
	}
	dirOut, err := exec.Command("go", "list", "-f", "{{.Dir}}", "wormhole/internal/vcsim").Output()
	if err != nil {
		t.Fatalf("go list: %v", err)
	}
	dir := strings.TrimSpace(string(dirOut))

	gofiles, err := lintkit.GoFilesIn(dir)
	if err != nil || len(gofiles) == 0 {
		t.Fatalf("listing %s: %v", dir, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range gofiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	dirs := lintkit.ParseDirectives(fset, files)

	// Marked-function and panic-argument line ranges, keyed by base
	// filename — the compiler reports paths relative to the package dir.
	type span struct {
		fn     string
		lo, hi int
	}
	hotSpans := map[string][]span{}
	panicSpans := map[string][]span{}
	fullPath := map[string]string{}
	for _, f := range files {
		pos := fset.Position(f.Pos())
		base := filepath.Base(pos.Filename)
		fullPath[base] = pos.Filename
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !dirs.Marked(fd, "hotpath") {
				continue
			}
			hotSpans[base] = append(hotSpans[base], span{
				fn: fd.Name.Name,
				lo: fset.Position(fd.Pos()).Line,
				hi: fset.Position(fd.End()).Line,
			})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					panicSpans[base] = append(panicSpans[base], span{
						lo: fset.Position(call.Pos()).Line,
						hi: fset.Position(call.End()).Line,
					})
				}
				return true
			})
		}
	}
	if len(hotSpans) == 0 {
		t.Fatal("no //wormvet:hotpath functions found in vcsim — marker drift?")
	}

	cmd := exec.Command("go", "build", "-gcflags=-m", ".")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build -gcflags=-m: %v\n%s", err, out)
	}

	// Diagnostic paths vary with the compile's original working dir
	// (cache replay preserves the first invocation's spelling), so match
	// any path shape and key on the basename — vcsim filenames are
	// unique within the package.
	lineRE := regexp.MustCompile(`^([^\s:]+\.go):(\d+):\d+: (.*)$`)
	inSpan := func(spans []span, line int) (span, bool) {
		for _, s := range spans {
			if s.lo <= line && line <= s.hi {
				return s, true
			}
		}
		return span{}, false
	}
	escapes := 0
	for _, raw := range strings.Split(string(out), "\n") {
		m := lineRE.FindStringSubmatch(raw)
		if m == nil {
			continue
		}
		msg := m[3]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		escapes++
		base := filepath.Base(m[1])
		line, _ := strconv.Atoi(m[2])
		s, hot := inSpan(hotSpans[base], line)
		if !hot {
			continue
		}
		if _, inPanic := inSpan(panicSpans[base], line); inPanic {
			continue
		}
		if dirs.Allowed("hotalloc", token.Position{Filename: fullPath[base], Line: line}) {
			continue
		}
		t.Errorf("heap escape inside hotpath %s (%s:%d): %s", s.fn, base, line, msg)
	}
	// Construction-time scratch (emptySim's makes) always escapes, so a
	// zero count means the diagnostic format drifted and the harness is
	// matching nothing — fail loudly rather than vacuously pass.
	if escapes == 0 {
		t.Fatalf("no escape diagnostics parsed from -gcflags=-m output (%d bytes) — format drift?", len(out))
	}
}
