package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"wormhole/internal/lint/lintkit"
)

// HorizonAnalyzer polices the compact-record time layout the SoA
// overhaul introduced: every time/cursor field in the simulator is
// int32, capped by vcsim.MaxHorizon, and a silent int→int32 narrowing of
// an unbounded value wraps into negative time — the overflow class this
// repo can only otherwise catch when a wrapped worm happens to corrupt a
// fuzzed run.
//
// The rule: a non-constant conversion to an int32-underlying type whose
// operand's underlying type is int or int64 must be *guarded* — some
// comparison earlier in the same function must mention the converted
// expression (a MaxHorizon check, a bounds test against a slice length,
// a loop condition). Two operand classes are trusted without a guard:
//
//   - expressions rooted only at the method receiver (si.now and
//     friends): construction-time validation pins now ≤ maxSteps ≤
//     MaxHorizon, an invariant a per-site guard would merely restate;
//   - untyped constants, which the compiler range-checks itself.
//
// Everything else needs a guard or an explicit
// //wormvet:allow horizon -- reason.
//
// Note Go has no implicit numeric mixing, so every int-into-int32 flow
// is syntactically a conversion — checking conversions is checking all
// mixing sites.
var HorizonAnalyzer = &lintkit.Analyzer{
	Name: "horizon",
	Doc:  "require MaxHorizon-style guards on int→int32 time/cursor narrowing",
	Run:  runHorizon,
}

func runHorizon(pass *lintkit.Pass) error {
	if !inSimScope(pass) {
		return nil
	}
	for _, fd := range funcDecls(prodFiles(pass)) {
		if fd.Body == nil {
			continue
		}
		recv := receiverObject(pass, fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			// Only plain int32 targets: that is how the time/cursor
			// layout spells itself (worm fields, path/prog arrays,
			// release lists). Named int32 types (graph.NodeID, ...) are
			// identity indices with their own bounds story.
			if b, ok := tv.Type.(*types.Basic); !ok || b.Kind() != types.Int32 {
				return true
			}
			arg := call.Args[0]
			atv := pass.TypesInfo.Types[arg]
			if atv.Value != nil { // constant: compiler-checked
				return true
			}
			if b, ok := atv.Type.Underlying().(*types.Basic); !ok ||
				(b.Kind() != types.Int && b.Kind() != types.Int64) {
				return true
			}
			if rootedAtReceiver(pass, arg, recv) {
				return true
			}
			if guardedBefore(pass, fd, call.Pos(), arg) {
				return true
			}
			pass.Reportf(call.Pos(),
				"unguarded narrowing %s: int-width value enters the 32-bit time/cursor layout; bound it (e.g. against vcsim.MaxHorizon) earlier in %s or annotate //wormvet:allow horizon",
				exprString(call), fd.Name.Name)
			return true
		})
	}
	return nil
}

// receiverObject returns the object of fd's receiver variable, or nil.
func receiverObject(pass *lintkit.Pass, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
}

// rootedAtReceiver reports whether e derives purely from the method
// receiver's state (plus constants): si.now, si.now+1,
// si.pending[si.pendHead], len(si.laneFree), si.pendLen(). Such values
// are maintained under the construction-time invariant now ≤ maxSteps ≤
// MaxHorizon and need no per-site guard.
func rootedAtReceiver(pass *lintkit.Pass, e ast.Expr, recv types.Object) bool {
	if recv == nil {
		return false
	}
	rooted := func(e ast.Expr) bool { return rootedAtReceiver(pass, e, recv) }
	switch v := e.(type) {
	case *ast.Ident:
		return identIsTrivial(pass, v) || pass.TypesInfo.Uses[v] == recv
	case *ast.BasicLit:
		return true
	case *ast.ParenExpr:
		return rooted(v.X)
	case *ast.StarExpr:
		return rooted(v.X)
	case *ast.SelectorExpr:
		// Field/method names resolve through their base; only the base
		// binds a variable.
		return rooted(v.X)
	case *ast.IndexExpr:
		return rooted(v.X) && rooted(v.Index)
	case *ast.BinaryExpr:
		return rooted(v.X) && rooted(v.Y)
	case *ast.UnaryExpr:
		return rooted(v.X)
	case *ast.CallExpr:
		// Conversions, builtins (len/cap), and receiver methods applied
		// to rooted operands stay rooted; any other call returns
		// arbitrary values.
		if tv, ok := pass.TypesInfo.Types[v.Fun]; ok && tv.IsType() {
			return len(v.Args) == 1 && rooted(v.Args[0])
		}
		fun := v.Fun
		if id, ok := fun.(*ast.Ident); ok {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
				return false
			}
		} else if sel, ok := fun.(*ast.SelectorExpr); !ok || !rooted(sel.X) {
			return false
		}
		for _, a := range v.Args {
			if !rooted(a) {
				return false
			}
		}
		return true
	}
	return false
}

// identIsTrivial reports identifiers that carry no taint: constants,
// types, and universe names (len, true, ...).
func identIsTrivial(pass *lintkit.Pass, id *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return true
	}
	switch obj.(type) {
	case *types.Const, *types.TypeName, *types.Builtin, *types.Nil, *types.Func:
		return true
	}
	return obj.Parent() == types.Universe
}

// guardedBefore reports whether some comparison positioned before pos in
// fd mentions (a normalized form of) expr — the author demonstrably
// bounded the value on this path. Loop conditions count even when their
// position follows the init statement, since they execute first.
func guardedBefore(pass *lintkit.Pass, fd *ast.FuncDecl, pos token.Pos, expr ast.Expr) bool {
	target := normalizeExpr(expr)
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		b, ok := n.(*ast.BinaryExpr)
		if !ok || b.Pos() >= pos {
			return true
		}
		switch b.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		default:
			return true
		}
		if mentions(b.X, target) || mentions(b.Y, target) {
			found = true
			return false
		}
		return true
	})
	return found
}

// normalizeExpr strips integer-conversion wrappers so a guard written as
// `int(e) >= n` covers a narrowing of `e` and vice versa, then renders
// the expression canonically.
func normalizeExpr(e ast.Expr) string {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
			continue
		case *ast.CallExpr:
			if id, ok := v.Fun.(*ast.Ident); ok && len(v.Args) == 1 {
				switch id.Name {
				case "int", "int32", "int64", "uint32", "uint64":
					e = v.Args[0]
					continue
				}
			}
		}
		return types.ExprString(e)
	}
}

// mentions reports whether any subexpression of guard normalizes to
// target.
func mentions(guard ast.Expr, target string) bool {
	found := false
	ast.Inspect(guard, func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok && normalizeExpr(e) == target {
			found = true
			return false
		}
		return true
	})
	return found
}
