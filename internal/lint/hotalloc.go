package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"wormhole/internal/lint/lintkit"
)

// HotallocAnalyzer makes the zero-alloc stepping contract — until now
// enforced only at benchmark time by the allocs/step gate — a
// compile-time property of every function marked //wormvet:hotpath.
// Inside a marked function it flags the constructs that heap-allocate
// (or can):
//
//   - make / new, slice and map composite literals, &T{...}
//   - func literals (closure headers escape with their captures)
//   - go / defer statements
//   - string concatenation and string<->[]byte conversions
//   - conversions to interface types, explicit or implicit at call
//     arguments (boxing)
//   - append whose destination is not the value being appended to
//     (`dst = append(src, ...)` builds a new backing array; the
//     amortized-reuse idiom `buf = append(buf[:0], x)` is permitted —
//     steady-state growth is pinned at zero by the benchmark gate and
//     the escape-analysis harness)
//   - calls to functions not themselves marked //wormvet:hotpath or
//     //wormvet:nonalloc (cross-package callees resolve through
//     exported facts), dynamic calls through interfaces or function
//     values
//
// panic is permitted: it is terminal, and boxing its argument on the
// way out of a corrupted simulation is not a steady-state allocation.
// Cold paths inside hot functions (error returns, deadlock teardown)
// carry //wormvet:allow hotalloc -- reason at the call site.
//
// The static check is deliberately cross-checked dynamically: the
// escape-analysis harness test compiles the simulator with -gcflags=-m
// and fails on any heap-escape diagnostic landing inside a marked
// function (see escape_test.go), and the benchmark gate keeps asserting
// the observed allocs/step.
var HotallocAnalyzer = &lintkit.Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocating constructs in //wormvet:hotpath functions",
	Run:  runHotalloc,
}

func runHotalloc(pass *lintkit.Pass) error {
	d := pass.Directives()
	// Export this package's marker sets so importers can trust calls
	// into it, and build the local trusted-callee set.
	hot := lintkit.MarkedFuncs(pass, "hotpath")
	nonalloc := lintkit.MarkedFuncs(pass, "nonalloc")
	if pass.ExportFacts != nil {
		pass.ExportFacts.Hotpath = append(pass.ExportFacts.Hotpath, hot...)
		pass.ExportFacts.Nonalloc = append(pass.ExportFacts.Nonalloc, nonalloc...)
	}
	local := &lintkit.Facts{Hotpath: hot, Nonalloc: nonalloc}

	for _, fd := range funcDecls(pass.Files) {
		if fd.Body == nil || !d.Marked(fd, "hotpath") {
			continue
		}
		c := &hotChecker{pass: pass, local: local, seenAppends: map[*ast.CallExpr]bool{}}
		c.checkFunc(fd)
	}
	return nil
}

// hotChecker walks one marked function; seenAppends marks append calls
// already judged by the assignment-form check so the generic call check
// doesn't re-flag them.
type hotChecker struct {
	pass        *lintkit.Pass
	local       *lintkit.Facts
	seenAppends map[*ast.CallExpr]bool
}

func (c *hotChecker) checkFunc(fd *ast.FuncDecl) {
	pass := c.pass
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "hotpath %s: go statement allocates a goroutine", name)
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "hotpath %s: defer allocates its frame record", name)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "hotpath %s: func literal may allocate its closure; hoist it or annotate //wormvet:allow hotalloc with the non-escape argument", name)
			return false // don't double-report the literal's body
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(), "hotpath %s: %s literal allocates; use construction-time scratch", name, typeKind(t))
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isLit := n.X.(*ast.CompositeLit); isLit {
					pass.Reportf(n.Pos(), "hotpath %s: &composite literal escapes to the heap", name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass, n.X) {
				pass.Reportf(n.Pos(), "hotpath %s: string concatenation allocates", name)
			}
		case *ast.AssignStmt:
			c.checkAssignAppend(name, n)
		case *ast.CallExpr:
			if isBuiltin(pass, n, "panic") {
				return false // terminal: whatever its argument costs is paid once
			}
			c.checkCall(name, n)
		}
		return true
	})
}

// checkAssignAppend blesses the amortized-reuse append idiom and flags
// the rest; appends outside assignment form fall through to checkCall.
func (c *hotChecker) checkAssignAppend(name string, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltin(c.pass, call, "append") || len(call.Args) == 0 {
			continue
		}
		c.seenAppends[call] = true
		if len(as.Lhs) == len(as.Rhs) && sameBase(as.Lhs[i], call.Args[0]) {
			continue
		}
		c.pass.Reportf(call.Pos(),
			"hotpath %s: append to a different destination builds a new backing array; use the self-append reuse idiom (dst = append(dst[:0], ...))", name)
	}
}

func (c *hotChecker) checkCall(name string, call *ast.CallExpr) {
	pass := c.pass
	// Type conversions: allocation-free except boxing and
	// string<->[]byte.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type.Underlying()) {
			pass.Reportf(call.Pos(), "hotpath %s: conversion to interface type %s boxes its operand", name, tv.Type)
		} else if isStringBytesConv(pass, tv.Type, call) {
			pass.Reportf(call.Pos(), "hotpath %s: string<->[]byte conversion copies", name)
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				pass.Reportf(call.Pos(), "hotpath %s: make allocates; use construction-time scratch", name)
			case "new":
				pass.Reportf(call.Pos(), "hotpath %s: new allocates", name)
			case "append":
				if !c.seenAppends[call] {
					pass.Reportf(call.Pos(),
						"hotpath %s: append outside the self-append reuse idiom may grow a new backing array", name)
				}
			}
			return
		}
	}

	checkBoxedArgs(pass, name, call)

	// Callee discipline: the callee must carry a hotpath/nonalloc
	// marker, here or (via facts) in its defining package.
	callee := calleeFunc(pass, call)
	if callee == nil {
		pass.Reportf(call.Pos(),
			"hotpath %s: dynamic call (interface method or func value) can allocate and defeats the static audit", name)
		return
	}
	rel := lintkit.DeclName(callee)
	if callee.Pkg() == nil { // error.Error etc. on universe types
		return
	}
	switch callee.Pkg().Path() {
	case "math", "math/bits":
		return // pure arithmetic leaves: nothing in either package allocates
	}
	if callee.Pkg() == pass.Pkg {
		if c.local.Has(rel) {
			return
		}
		pass.Reportf(call.Pos(),
			"hotpath %s: call to unmarked %s; mark it //wormvet:hotpath or //wormvet:nonalloc, or annotate the cold call site //wormvet:allow hotalloc", name, rel)
		return
	}
	if pass.ImportedHas(callee.Pkg().Path(), rel) {
		return
	}
	pass.Reportf(call.Pos(),
		"hotpath %s: call to unmarked %s.%s; mark it in its package or annotate the call site //wormvet:allow hotalloc", name, callee.Pkg().Path(), rel)
}

// checkBoxedArgs flags concrete values passed to interface parameters
// (boxing) and calls that materialize a variadic argument slice.
func checkBoxedArgs(pass *lintkit.Pass, name string, call *ast.CallExpr) {
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= params.Len() {
		pass.Reportf(call.Pos(), "hotpath %s: variadic call allocates its argument slice", name)
	}
	for i, arg := range call.Args {
		if sig.Variadic() && i >= params.Len()-1 {
			break // the slice allocation above covers the tail
		}
		pt := params.At(i).Type()
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) || isNil(pass, arg) {
			continue
		}
		pass.Reportf(arg.Pos(),
			"hotpath %s: passing %s as interface %s boxes it", name, at, pt)
	}
}

// calleeFunc resolves a call to its static *types.Func, or nil for
// dynamic calls.
func calleeFunc(pass *lintkit.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				if _, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
					return nil
				}
				return f
			}
			return nil
		}
		// Package-qualified call.
		if f, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

func isBuiltin(pass *lintkit.Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// sameBase reports whether dst and src denote the same variable once
// reslicing is stripped: buf and buf[:0] share a base.
func sameBase(dst, src ast.Expr) bool {
	for {
		if s, ok := src.(*ast.SliceExpr); ok {
			src = s.X
			continue
		}
		break
	}
	return types.ExprString(dst) == types.ExprString(src)
}

func isString(pass *lintkit.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isStringBytesConv(pass *lintkit.Pass, to types.Type, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	from := pass.TypesInfo.TypeOf(call.Args[0])
	if from == nil {
		return false
	}
	toStr := isBasicString(to)
	fromStr := isBasicString(from)
	toBytes := isByteSlice(to)
	fromBytes := isByteSlice(from)
	return (toStr && fromBytes) || (toBytes && fromStr)
}

func isBasicString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isNil(pass *lintkit.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

func typeKind(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}
