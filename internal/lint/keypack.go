package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"wormhole/internal/lint/lintkit"
)

// KeypackAnalyzer pins the packed-64-bit-word discipline the SoA layout
// runs on: policy/release keys are release<<32|id, crossing stamps are
// (step+1)<<32|count, and every sort, merge, heap sift, and wakeup
// compares those words raw. A hand-rolled `k >> 32` with the wrong width
// — or a fresh packing with a drifted layout — silently reorders
// arbitration, which the replay oracle can only catch if the divergent
// schedule happens to be exercised.
//
// The rule: 64-bit shift-by-32 expressions (and the off-by-one widths
// 31 and 33, the classic drift) plus low-word masks (& 0xffffffff) may
// appear only inside functions marked //wormvet:keypack — the canonical
// pack/unpack helpers (policyKey, relKey, keyRelease, crossStamp, ...).
// Everything else must call a helper. Inside a keypack helper, any
// 64-bit shift whose width is not exactly 32 is flagged — the "correct
// shift widths" half of the contract.
var KeypackAnalyzer = &lintkit.Analyzer{
	Name: "keypack",
	Doc:  "confine release<<32|id key (un)packing to canonical marked helpers",
	Run:  runKeypack,
}

func runKeypack(pass *lintkit.Pass) error {
	if !inSimScope(pass) {
		return nil
	}
	d := pass.Directives()
	for _, fd := range funcDecls(prodFiles(pass)) {
		if fd.Body == nil {
			continue
		}
		canonical := d.Marked(fd, "keypack")
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			b, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch b.Op {
			case token.SHL, token.SHR:
				width, known := constValue(pass, b.Y)
				if !known || !is64Bit(pass, b.X) {
					return true
				}
				if canonical {
					if width != 32 {
						pass.Reportf(b.Pos(),
							"keypack helper %s shifts by %d: packed words use exactly 32-bit halves", fd.Name.Name, width)
					}
				} else if width >= 31 && width <= 33 {
					pass.Reportf(b.Pos(),
						"manual 64-bit key (un)packing (shift by %d) outside a //wormvet:keypack helper; use the canonical pack/unpack helpers", width)
				}
			case token.AND:
				if canonical {
					return true
				}
				for _, operand := range []ast.Expr{b.X, b.Y} {
					if v, known := constValue(pass, operand); known && v == 0xffffffff && is64Bit(pass, b.X) {
						pass.Reportf(b.Pos(),
							"manual low-word mask (& 0xffffffff) outside a //wormvet:keypack helper; use the canonical unpack helpers")
						break
					}
				}
			}
			return true
		})
	}
	return nil
}

// constValue evaluates e as a constant int64.
func constValue(pass *lintkit.Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// is64Bit reports whether e's type is a 64-bit integer — the width
// packed keys and stamps live at.
func is64Bit(pass *lintkit.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Uint64, types.Int64, types.Uintptr:
		return true
	case types.UntypedInt:
		// Untyped shifts adopt their context's type; treat wide
		// constants conservatively as key material.
		return true
	}
	return false
}
