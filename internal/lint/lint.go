// Package lint holds the wormvet analyzer suite: four static checks
// that turn the repo's load-bearing dynamic guarantees — byte-identical
// deterministic replay and zero-alloc hot-path stepping — into
// compile-time-checked invariants. See README "Static analysis" for the
// catalogue and the marker/suppression grammar.
package lint

import (
	"go/ast"
	"strings"

	"wormhole/internal/lint/lintkit"
)

// Analyzers returns the full wormvet suite in reporting order.
func Analyzers() []*lintkit.Analyzer {
	return []*lintkit.Analyzer{
		DeterminismAnalyzer,
		HotallocAnalyzer,
		HorizonAnalyzer,
		KeypackAnalyzer,
	}
}

// simScopePrefixes are the packages whose results feed the experiment
// tables, where replay determinism and the 32-bit time layout are
// contractual ("wormhole" matches the root package exactly, not the
// whole module). hotalloc is scoped by //wormvet:hotpath markers
// instead and runs everywhere.
var simScopePrefixes = []string{
	"wormhole/internal/vcsim",
	"wormhole/internal/traffic",
	"wormhole/internal/core",
	"wormhole/internal/schedule",
	"wormhole/internal/baseline",
	"wormhole/internal/telemetry",
}

// inSimScope reports whether the pass's package is one the
// simulator-scope analyzers (determinism, horizon, keypack) police: a
// known simulator/experiment package, or any package that opts in with a
// file-level //wormvet:scope directive (how the analysistest packages
// get in scope).
func inSimScope(pass *lintkit.Pass) bool {
	if pass.Directives().Scoped() {
		return true
	}
	path := pass.Pkg.Path()
	if path == "wormhole" {
		return true
	}
	for _, p := range simScopePrefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// prodFiles filters out _test.go files: the scoped analyzers pin
// production simulator invariants; tests assert on the outputs and may
// use maps and narrowing freely (their own determinism is covered by
// the replay differentials they run).
func prodFiles(pass *lintkit.Pass) []*ast.File {
	var out []*ast.File
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// funcDecls lists every top-level function declaration, for guard
// searches and marker lookups.
func funcDecls(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				out = append(out, fd)
			}
		}
	}
	return out
}
