package lint

import (
	"testing"

	"wormhole/internal/lint/lintkit"
)

// Each analyzer has an analysistest-style corpus under testdata/src:
// positive findings matched by // want comments, plus a deliberately
// suppressed false positive exercising //wormvet:allow. The corpora
// opt into the simulator scope with //wormvet:scope (hotalloc's is
// scoped by its markers instead).

func TestDeterminismAnalyzer(t *testing.T) {
	lintkit.RunTest(t, "testdata", "determinism", DeterminismAnalyzer)
}

func TestHotallocAnalyzer(t *testing.T) {
	lintkit.RunTest(t, "testdata", "hotalloc", HotallocAnalyzer)
}

func TestHorizonAnalyzer(t *testing.T) {
	lintkit.RunTest(t, "testdata", "horizon", HorizonAnalyzer)
}

func TestKeypackAnalyzer(t *testing.T) {
	lintkit.RunTest(t, "testdata", "keypack", KeypackAnalyzer)
}

// TestAnalyzers pins the suite's composition and reporting order — the
// driver's -list output and the allow-directive names key off these.
func TestAnalyzers(t *testing.T) {
	want := []string{"determinism", "hotalloc", "horizon", "keypack"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing Doc or Run", a.Name)
		}
	}
}
