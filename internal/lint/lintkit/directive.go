package lintkit

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The //wormvet: comment directives (all must start the comment, flush
// with the //):
//
//	//wormvet:hotpath            — on a function: zero-alloc contract
//	//wormvet:nonalloc           — on a function: audited alloc-free leaf
//	//wormvet:keypack            — on a function: canonical key (un)packer
//	//wormvet:scope              — anywhere in a file: force the package
//	                               into the simulator-scope analyzers
//	//wormvet:allow <analyzer> [-- reason]
//	                             — suppress that analyzer's findings on
//	                               this line and the next
//
// A directive on the line directly above a declaration (including as
// part of its doc comment) attaches to that declaration.

// Directives is the parsed //wormvet: directive set of one package.
type Directives struct {
	// allow maps filename -> line -> analyzer names suppressed there.
	allow map[string]map[int][]string
	// marks maps filename -> line of the directive -> marker names
	// ("hotpath", "nonalloc", "keypack") present on that line.
	marks map[string]map[int][]string
	// scoped reports a file-level //wormvet:scope directive.
	scoped bool
	fset   *token.FileSet
}

// ParseDirectives scans every comment in files for //wormvet: directives.
func ParseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{
		allow: map[string]map[int][]string{},
		marks: map[string]map[int][]string{},
		fset:  fset,
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//wormvet:")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				verb, rest, _ := strings.Cut(strings.TrimSpace(text), " ")
				switch verb {
				case "allow":
					args, _, _ := strings.Cut(rest, "--")
					byLine := d.allow[pos.Filename]
					if byLine == nil {
						byLine = map[int][]string{}
						d.allow[pos.Filename] = byLine
					}
					byLine[pos.Line] = append(byLine[pos.Line], strings.Fields(args)...)
				case "hotpath", "nonalloc", "keypack":
					byLine := d.marks[pos.Filename]
					if byLine == nil {
						byLine = map[int][]string{}
						d.marks[pos.Filename] = byLine
					}
					byLine[pos.Line] = append(byLine[pos.Line], verb)
				case "scope":
					d.scoped = true
				}
			}
		}
	}
	return d
}

// Scoped reports whether any file carries //wormvet:scope.
func (d *Directives) Scoped() bool { return d.scoped }

// Allowed reports whether an //wormvet:allow directive for analyzer
// covers pos: the directive sits on the same line (trailing comment) or
// on the line directly above (comment-above style).
func (d *Directives) Allowed(analyzer string, pos token.Position) bool {
	byLine := d.allow[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range byLine[line] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// Marked reports whether decl carries the named marker — on any line of
// its doc comment or on the line directly above its declaration.
func (d *Directives) Marked(decl *ast.FuncDecl, marker string) bool {
	pos := d.fset.Position(decl.Pos())
	byLine := d.marks[pos.Filename]
	if byLine == nil {
		return false
	}
	lo, hi := pos.Line-1, pos.Line-1
	if decl.Doc != nil {
		lo = d.fset.Position(decl.Doc.Pos()).Line
	}
	for line := lo; line <= hi; line++ {
		for _, name := range byLine[line] {
			if name == marker {
				return true
			}
		}
	}
	return false
}

// MarkedFuncs returns the DeclName set of functions in files carrying
// the given marker, sorted — the exportable facts representation.
func MarkedFuncs(p *Pass, marker string) []string {
	var out []string
	d := p.Directives()
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !d.Marked(fd, marker) {
				continue
			}
			if obj, ok := p.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				out = append(out, DeclName(obj))
			}
		}
	}
	sort.Strings(out)
	return out
}
