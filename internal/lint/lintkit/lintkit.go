// Package lintkit is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer runs over one
// type-checked package (a Pass) and reports Diagnostics.
//
// The repo's hermetic-build policy (no module downloads; see README
// "Static analysis") rules out depending on x/tools, so this package
// keeps the same shape as go/analysis — Analyzer{Name, Doc, Run},
// Pass{Fset, Files, Pkg, TypesInfo, Report} — deliberately, making a
// future swap to the real framework a mechanical import change. Only the
// subset the wormvet analyzers need is implemented: no sub-analyzer
// requirements, no suggested fixes, and facts are a plain per-package
// JSON blob (see Facts) rather than typed gob streams.
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //wormvet:allow suppressions.
	Name string
	// Doc is the one-paragraph description shown by wormvet -help.
	Doc string
	// Run executes the check against one package.
	Run func(*Pass) error
}

// Facts is the cross-package state one analyzer pass exports for its
// importers — the lintkit analogue of analysis.Fact. The only facts the
// wormvet suite needs are the hot-path/non-allocating function marker
// sets, keyed by the same relative names DeclName produces.
type Facts struct {
	// Hotpath lists functions carrying a //wormvet:hotpath marker.
	Hotpath []string `json:"hotpath,omitempty"`
	// Nonalloc lists functions carrying a //wormvet:nonalloc marker.
	Nonalloc []string `json:"nonalloc,omitempty"`
}

// Has reports whether name is in either marker set.
func (f *Facts) Has(name string) bool {
	if f == nil {
		return false
	}
	return contains(f.Hotpath, name) || contains(f.Nonalloc, name)
}

func contains(set []string, name string) bool {
	i := sort.SearchStrings(set, name)
	return i < len(set) && set[i] == name
}

// Pass holds one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// ImportedFacts maps dependency import paths to the facts their
	// passes exported. Nil entries (or a nil map — the analysistest
	// harness runs self-contained packages) mean "no facts": calls into
	// such packages are treated as unmarked.
	ImportedFacts map[string]*Facts
	// ExportFacts, when non-nil, receives the facts this pass computes
	// for downstream packages.
	ExportFacts *Facts

	// Report delivers one diagnostic. The driver and test harness both
	// route allow-suppression through Pass.report, so analyzers call
	// Pass.Reportf instead of this directly.
	Report func(Diagnostic)

	directives *Directives
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a finding unless an in-source //wormvet:allow
// directive suppresses it (same line as pos, or the line directly
// above).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Directives().Allowed(p.Analyzer.Name, p.Fset.Position(pos)) {
		return
	}
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Directives returns the parsed //wormvet: comment directives of the
// package, computed once per pass.
func (p *Pass) Directives() *Directives {
	if p.directives == nil {
		p.directives = ParseDirectives(p.Fset, p.Files)
	}
	return p.directives
}

// ImportedHas reports whether the named function in the package at path
// carries a hotpath or nonalloc marker, according to imported facts.
func (p *Pass) ImportedHas(path, name string) bool {
	return p.ImportedFacts[path].Has(name)
}

// DeclName returns the package-relative name facts and markers key on:
// "F" for a function, "(T).M" / "(*T).M" for methods.
func DeclName(obj *types.Func) string {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return obj.Name()
	}
	rt := sig.Recv().Type()
	ptr := ""
	if pt, isPtr := rt.(*types.Pointer); isPtr {
		rt = pt.Elem()
		ptr = "*"
	}
	name := "?"
	if named, isNamed := rt.(*types.Named); isNamed {
		name = named.Obj().Name()
	}
	return fmt.Sprintf("(%s%s).%s", ptr, name, obj.Name())
}
