package lintkit

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// writeSrc materializes one Go source file in a temp dir and returns
// its path.
func writeSrc(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const markedSrc = `package p

//wormvet:scope

// F is a plain function with a doc-comment marker.
//
//wormvet:hotpath
func F() {}

type T int

//wormvet:nonalloc
func (t T) M() {}

// P has the marker buried mid-doc-comment, which still attaches.
//wormvet:hotpath
// (trailing doc line)
func (t *T) P() {}

func unmarked() {
	x := 1 //wormvet:allow determinism -- same-line suppression
	_ = x
	//wormvet:allow horizon -- line-above suppression
	y := 2
	_ = y
}
`

func loadMarked(t *testing.T) (*Package, *Directives) {
	t.Helper()
	p, err := Load("p", []string{writeSrc(t, "p.go", markedSrc)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p, ParseDirectives(p.Fset, p.Files)
}

func TestMarkedFuncsAndDeclName(t *testing.T) {
	p, _ := loadMarked(t)
	pass := &Pass{Fset: p.Fset, Files: p.Files, Pkg: p.Pkg, TypesInfo: p.Info}

	// DeclName spells functions "F" and methods "(T).M" / "(*T).M";
	// MarkedFuncs returns them sorted, ready for the facts files.
	if got, want := MarkedFuncs(pass, "hotpath"), []string{"(*T).P", "F"}; !reflect.DeepEqual(got, want) {
		t.Errorf("hotpath funcs = %v, want %v", got, want)
	}
	if got, want := MarkedFuncs(pass, "nonalloc"), []string{"(T).M"}; !reflect.DeepEqual(got, want) {
		t.Errorf("nonalloc funcs = %v, want %v", got, want)
	}
	if got := MarkedFuncs(pass, "keypack"); len(got) != 0 {
		t.Errorf("keypack funcs = %v, want none", got)
	}
}

func TestDirectivesScopeAndAllow(t *testing.T) {
	p, d := loadMarked(t)
	if !d.Scoped() {
		t.Error("Scoped() = false, want true: file carries //wormvet:scope")
	}

	file := p.Fset.Position(p.Files[0].Pos()).Filename
	lineOf := func(sub string) int {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		line := 1
		for i := 0; i+len(sub) <= len(data); i++ {
			if string(data[i:i+len(sub)]) == sub {
				return line
			}
			if data[i] == '\n' {
				line++
			}
		}
		t.Fatalf("%q not found", sub)
		return 0
	}

	sameLine := token.Position{Filename: file, Line: lineOf("x := 1")}
	if !d.Allowed("determinism", sameLine) {
		t.Error("same-line allow not honored")
	}
	if d.Allowed("horizon", sameLine) {
		t.Error("allow leaked to a different analyzer")
	}
	below := token.Position{Filename: file, Line: lineOf("y := 2")}
	if !d.Allowed("horizon", below) {
		t.Error("line-above allow not honored")
	}
	if d.Allowed("horizon", token.Position{Filename: "other.go", Line: below.Line}) {
		t.Error("allow matched a different file")
	}
}

func TestReportfSuppression(t *testing.T) {
	p, _ := loadMarked(t)
	var got []Diagnostic
	pass := &Pass{
		Analyzer:  &Analyzer{Name: "determinism"},
		Fset:      p.Fset,
		Files:     p.Files,
		Pkg:       p.Pkg,
		TypesInfo: p.Info,
		Report:    func(d Diagnostic) { got = append(got, d) },
	}
	var allowedPos, plainPos token.Pos
	for ident, obj := range p.Info.Defs {
		switch {
		case ident.Name == "x" && obj != nil:
			allowedPos = ident.Pos()
		case ident.Name == "y" && obj != nil:
			plainPos = ident.Pos()
		}
	}
	pass.Reportf(allowedPos, "suppressed")
	pass.Reportf(plainPos, "delivered")
	if len(got) != 1 || got[0].Message != "delivered" {
		t.Errorf("diagnostics = %v, want exactly the unsuppressed one", got)
	}
}

func TestFactsHas(t *testing.T) {
	var nilFacts *Facts
	if nilFacts.Has("F") {
		t.Error("nil Facts claimed a member")
	}
	f := &Facts{Hotpath: []string{"(*T).P", "F"}, Nonalloc: []string{"(T).M"}}
	for _, name := range []string{"F", "(*T).P", "(T).M"} {
		if !f.Has(name) {
			t.Errorf("Has(%q) = false, want true", name)
		}
	}
	if f.Has("G") {
		t.Error(`Has("G") = true, want false`)
	}
}

func TestRunSortsAndExportsFacts(t *testing.T) {
	p, _ := loadMarked(t)
	// Two analyzers reporting out of source order: Run must interleave
	// their diagnostics back into position order.
	late := &Analyzer{Name: "late", Run: func(pass *Pass) error {
		pass.Reportf(p.Files[0].End()-1, "late finding")
		return nil
	}}
	early := &Analyzer{Name: "early", Run: func(pass *Pass) error {
		pass.Reportf(p.Files[0].Pos(), "early finding")
		if pass.ExportFacts != nil {
			pass.ExportFacts.Hotpath = MarkedFuncs(pass, "hotpath")
		}
		return nil
	}}
	var out Facts
	diags, err := Run(p, []*Analyzer{late, early}, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 || diags[0].Message != "early finding" || diags[1].Message != "late finding" {
		t.Errorf("diagnostics not position-sorted: %v", diags)
	}
	if !out.Has("F") {
		t.Error("exported facts missing F")
	}
}

func TestImportedHas(t *testing.T) {
	pass := &Pass{ImportedFacts: map[string]*Facts{
		"dep": {Nonalloc: []string{"Leaf"}},
	}}
	if !pass.ImportedHas("dep", "Leaf") {
		t.Error(`ImportedHas("dep", "Leaf") = false, want true`)
	}
	if pass.ImportedHas("dep", "Other") || pass.ImportedHas("missing", "Leaf") {
		t.Error("ImportedHas matched absent facts")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("p", []string{writeSrc(t, "bad.go", "package p\nfunc {")}, nil); err == nil {
		t.Error("Load accepted a syntax error")
	}
	if _, err := Load("p", []string{writeSrc(t, "ill.go", "package p\nvar x undefinedType")}, nil); err == nil {
		t.Error("Load accepted a type error")
	}
	if _, err := Load("p", nil, nil); err == nil {
		t.Error("Load accepted an empty file list")
	}
}

func TestSplitWantPatterns(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{`"a"`, []string{"a"}},
		{`"a" "b c"`, []string{"a", "b c"}},
		{`no quotes`, nil},
		{`"unterminated`, nil},
		{`"a" trailing "b"`, []string{"a", "b"}},
	}
	for _, c := range cases {
		if got := splitWantPatterns(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("splitWantPatterns(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestGoFilesIn(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"b.go", "a.go", "a_test.go", "note.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("package p\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := GoFilesIn(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{filepath.Join(dir, "a.go"), filepath.Join(dir, "b.go")}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("GoFilesIn = %v, want %v (sorted, tests and non-Go excluded)", got, want)
	}
}

// toyAnalyzer flags every return statement — enough surface to drive
// RunTest's want-matching in-package.
var toyAnalyzer = &Analyzer{Name: "toy", Doc: "flag returns", Run: func(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if r, ok := n.(*ast.ReturnStmt); ok {
				pass.Reportf(r.Pos(), "return statement")
			}
			return true
		})
	}
	return nil
}}

func TestRunTestMatchesWants(t *testing.T) {
	testdata := t.TempDir()
	dir := filepath.Join(testdata, "src", "toy")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package toy

func one() int {
	return 1 // want "return statement"
}

func two() (int, int) {
	return 1, 2 // want "return statement"
}

func suppressed() int {
	return 3 //wormvet:allow toy -- corpus exercises suppression through RunTest
}
`
	if err := os.WriteFile(filepath.Join(dir, "toy.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	RunTest(t, testdata, "toy", toyAnalyzer)
}

func TestRunAnalyzerError(t *testing.T) {
	p, _ := loadMarked(t)
	boom := &Analyzer{Name: "boom", Run: func(*Pass) error { return os.ErrInvalid }}
	if _, err := Run(p, []*Analyzer{boom}, nil, nil); err == nil {
		t.Error("Run swallowed an analyzer error")
	}
}

func TestGoFilesInBadPattern(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bad[dir")
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := GoFilesIn(dir); err == nil {
		t.Error("GoFilesIn accepted a malformed glob pattern")
	}
}
