package lintkit

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// NewInfo returns a types.Info with every map the analyzers consult
// populated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// Load parses and type-checks the .go files as one package with the
// given import path, resolving imports with imp (nil means the source
// importer, which compiles dependencies — including the standard
// library — from source and therefore needs no installed export data).
func Load(path string, gofiles []string, imp types.Importer) (*Package, error) {
	return LoadWithFset(token.NewFileSet(), path, gofiles, imp, "")
}

// LoadWithFset is Load with a caller-owned FileSet (the gc importer
// must share it) and an optional language version ("go1.24").
func LoadWithFset(fset *token.FileSet, path string, gofiles []string, imp types.Importer, goVersion string) (*Package, error) {
	var files []*ast.File
	for _, name := range gofiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lintkit: no Go files for %s", path)
	}
	if imp == nil {
		imp = importer.ForCompiler(fset, "source", nil)
	}
	info := NewInfo()
	conf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", "amd64"),
		GoVersion: goVersion,
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// Run executes the analyzers over the package and returns the combined
// diagnostics in position order. Facts exported by the analyzers are
// merged into out (when non-nil); imported holds dependency facts.
func Run(p *Package, analyzers []*Analyzer, imported map[string]*Facts, out *Facts) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:      a,
			Fset:          p.Fset,
			Files:         p.Files,
			Pkg:           p.Pkg,
			TypesInfo:     p.Info,
			ImportedFacts: imported,
			ExportFacts:   out,
			Report:        func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// GoFilesIn lists the non-test .go files in dir, sorted.
func GoFilesIn(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	var out []string
	for _, m := range matches {
		if base := filepath.Base(m); len(base) > len("_test.go") &&
			base[len(base)-len("_test.go"):] == "_test.go" {
			continue
		}
		out = append(out, m)
	}
	sort.Strings(out)
	return out, nil
}
