package lintkit

import (
	"regexp"
	"strings"
	"testing"
)

// RunTest is the lintkit analogue of analysistest.Run: it loads
// testdata/src/<pkg>, runs the analyzer, and matches the diagnostics
// against `// want "regexp"` comments in the sources. Every diagnostic
// must be wanted by a matching comment on its line, and every want
// comment must be matched by a diagnostic — mirrors analysistest's
// contract, minus fact files and suggested fixes.
func RunTest(t *testing.T, testdata, pkg string, a *Analyzer) {
	t.Helper()
	dir := testdata + "/src/" + pkg
	gofiles, err := GoFilesIn(dir)
	if err != nil || len(gofiles) == 0 {
		t.Fatalf("loading %s: %v (files %v)", dir, err, gofiles)
	}
	p, err := Load(pkg, gofiles, nil)
	if err != nil {
		t.Fatalf("type-checking %s: %v", dir, err)
	}
	diags, err := Run(p, []*Analyzer{a}, nil, nil)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkg, err)
	}

	wants := collectWants(t, p)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		pos := p.Fset.Position(d.Pos)
		ok := false
		for i, w := range wants {
			if !matched[i] && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s: %s", pos, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants parses `// want "regexp"` comments. The expectation
// applies to the line the comment sits on.
func collectWants(t *testing.T, p *Package) []want {
	t.Helper()
	var wants []want
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				for _, pat := range splitWantPatterns(rest) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// splitWantPatterns extracts the double-quoted patterns from a want
// clause: `"a" "b"` → [a, b]. Quotes inside patterns are not supported —
// the analyzers' messages don't need them.
func splitWantPatterns(s string) []string {
	var out []string
	for {
		i := strings.IndexByte(s, '"')
		if i < 0 {
			return out
		}
		j := strings.IndexByte(s[i+1:], '"')
		if j < 0 {
			return out
		}
		out = append(out, s[i+1:i+1+j])
		s = s[i+j+2:]
	}
}
