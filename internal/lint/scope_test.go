package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"wormhole/internal/lint/lintkit"
)

// passFor builds the minimal Pass the scope helpers consult: a package
// path plus parsed (untype-checked) files.
func passFor(t *testing.T, path string, files map[string]string) *lintkit.Pass {
	t.Helper()
	fset := token.NewFileSet()
	var parsed []*ast.File
	for name, src := range files {
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		parsed = append(parsed, f)
	}
	return &lintkit.Pass{
		Fset:  fset,
		Files: parsed,
		Pkg:   types.NewPackage(path, "p"),
	}
}

func TestInSimScope(t *testing.T) {
	plain := map[string]string{"p.go": "package p\n"}
	cases := []struct {
		path  string
		files map[string]string
		want  bool
	}{
		// The root package matches exactly; the module prefix alone
		// must not drag cmd/ and tooling packages into scope.
		{"wormhole", plain, true},
		{"wormhole/cmd/wormbench", plain, false},
		{"wormhole/internal/vcsim", plain, true},
		{"wormhole/internal/vcsim/sub", plain, true},
		{"wormhole/internal/baseline", plain, true},
		{"wormhole/internal/graph", plain, false},
		{"wormhole/internal/lint", plain, false},
		{"other/module", plain, false},
		// Any package opts in with a file-level directive — how the
		// analyzer corpora get in scope.
		{"other/module", map[string]string{"p.go": "package p\n\n//wormvet:scope\n"}, true},
	}
	for _, c := range cases {
		if got := inSimScope(passFor(t, c.path, c.files)); got != c.want {
			t.Errorf("inSimScope(%s) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestProdFilesSkipsTests(t *testing.T) {
	pass := passFor(t, "wormhole/internal/vcsim", map[string]string{
		"sim.go":      "package p\n",
		"sim_test.go": "package p\n",
	})
	got := prodFiles(pass)
	if len(got) != 1 {
		t.Fatalf("prodFiles kept %d files, want 1", len(got))
	}
	if name := pass.Fset.Position(got[0].Pos()).Filename; name != "sim.go" {
		t.Errorf("prodFiles kept %s, want sim.go", name)
	}
}
