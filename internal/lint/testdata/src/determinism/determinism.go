// Package determinism is the analysistest corpus for the wormvet
// determinism analyzer: positive findings for each flagged construct
// plus an allow-suppressed false positive (the collect-then-sort idiom).
// The package opts into the simulator scope explicitly:
//
//wormvet:scope
package determinism

import (
	"sort"
	"time"

	_ "math/rand"    // want "import of math/rand: per-process global randomness breaks replay"
	_ "math/rand/v2" // want "import of math/rand/v2: per-process global randomness breaks replay"
)

// mapOrder leaks map iteration order straight into its result.
func mapOrder(m map[int]int) int {
	s := 0
	for k, v := range m { // want "range over map m: iteration order is nondeterministic"
		s += k * v
	}
	return s
}

// sortedOrder collects keys and sorts immediately — the blessed idiom,
// suppressed with a reasoned allow.
func sortedOrder(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m { //wormvet:allow determinism -- keys sorted immediately below
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// sliceOrder ranges over a slice: deterministic, no finding.
func sliceOrder(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// wallClock reads host time, so its output cannot replay.
func wallClock() int64 {
	t := time.Now() // want "time.Now reads the wall clock"
	return t.Unix()
}

// elapsed uses time.Since, the other wall-clock accessor.
func elapsed(since time.Time) time.Duration {
	return time.Since(since) // want "time.Since reads the wall clock"
}

// duration arithmetic on time values is fine — only Now/Since read the
// clock.
func duration(d time.Duration) time.Duration { return 2 * d }
