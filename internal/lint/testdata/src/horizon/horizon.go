// Package horizon is the analysistest corpus for the wormvet horizon
// analyzer: unguarded int→int32 narrowings are flagged; guarded,
// receiver-rooted, constant, and named-type conversions are not.
//
//wormvet:scope
package horizon

// maxHorizon mirrors vcsim.MaxHorizon for the guard idiom.
const maxHorizon = 1<<31 - 2

// nodeID is a named 32-bit identity type — exempt: only the plain int32
// time/cursor layout is policed.
type nodeID int32

type sim struct {
	now      int
	maxSteps int
	pending  []int
	ptr      *int
}

// unguarded narrows a caller-supplied int with no bound in sight.
func unguarded(x int) int32 {
	return int32(x) // want "unguarded narrowing int32\(x\): int-width value enters the 32-bit time/cursor layout"
}

// unguarded64 narrows an int64 the same way.
func unguarded64(x int64) int32 {
	return int32(x) // want "unguarded narrowing int32\(x\)"
}

// guarded bounds the value before narrowing — the comparison mentions
// the converted expression, so the narrowing is trusted.
func guarded(x int) int32 {
	if x > maxHorizon {
		panic("horizon exceeded")
	}
	return int32(x)
}

// guardedLen bounds against a slice length; any earlier comparison
// mentioning the operand counts, not just MaxHorizon checks.
func guardedLen(xs []int, i int) int32 {
	if i >= len(xs) {
		return -1
	}
	return int32(i)
}

// rooted narrows receiver state: construction-time validation pins
// now ≤ maxSteps ≤ MaxHorizon, so no per-site guard is demanded.
func (s *sim) rooted() int32 {
	return int32(s.now + 1)
}

// mixed adds unrooted taint to receiver state, which voids the trust.
func (s *sim) mixed(x int) int32 {
	return int32(s.now + x) // want "unguarded narrowing int32\(s\.now \+ x\)"
}

// constant conversions are compiler-range-checked.
func constant() int32 {
	return int32(1 << 20)
}

// named converts to a named int32 identity type — out of scope.
func named(x int) nodeID {
	return nodeID(x)
}

// allowed documents an out-of-band bound instead of guarding inline.
func allowed(x int) int32 {
	return int32(x) //wormvet:allow horizon -- caller contract pins x < maxHorizon
}

// head is receiver-derived state for the rooted-call case below.
func (s *sim) head() int { return s.pending[0] }

// rootedForms exercises every shape the receiver-rooted whitelist
// accepts: indexing, len, receiver method calls, parens, unary minus,
// and constants mixed in.
func (s *sim) rootedForms() int32 {
	a := int32(s.pending[s.now])
	b := int32(len(s.pending))
	c := int32(s.head())
	e := int32(-(s.now) + maxHorizon)
	g := int32(*s.ptr)
	h := int32(s.now + 5)
	return a + b + c + e + g + h
}

// unrootedCall narrows the result of an arbitrary function value,
// which the whitelist must refuse even on a method.
func (s *sim) unrootedCall(f func() int) int32 {
	return int32(f()) // want "unguarded narrowing int32"
}

// normalizedGuard bounds through an int64 conversion wrapper: the guard
// and the narrowing mention the same value modulo integer conversions.
func normalizedGuard(x int) int32 {
	if int64(x) > maxHorizon {
		return -1
	}
	return int32(x)
}

// compoundGuard bounds the exact compound expression being narrowed.
func compoundGuard(x int) int32 {
	if x+1 > maxHorizon {
		return -1
	}
	return int32(x + 1)
}

// flippedGuard bounds with the operand on the comparison's right side.
func flippedGuard(x int) int32 {
	if maxHorizon < x {
		return -1
	}
	return int32(x)
}

// parenGuard bounds through redundant parentheses, which normalization
// strips on both sides.
func parenGuard(x int) int32 {
	if (x) > maxHorizon {
		return -1
	}
	return int32((x))
}

// longExpr pins the diagnostic's expression truncation: the rendered
// conversion exceeds 40 characters and is elided with "...".
func longExpr(alpha, bravo, charlie, delta int) int32 {
	return int32(alpha + bravo + charlie + delta + alpha) // want "unguarded narrowing int32.alpha . bravo . charlie . delta\.\.\.:"
}
