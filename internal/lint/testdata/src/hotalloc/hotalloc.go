// Package hotalloc is the analysistest corpus for the wormvet hotalloc
// analyzer. Unlike the scoped analyzers it needs no //wormvet:scope:
// the check runs wherever //wormvet:hotpath markers appear, and only
// inside marked functions.
package hotalloc

import (
	"math/bits"
	"sort"
)

type ring struct {
	buf   []int
	log   []byte
	label string
}

// leaf is an audited alloc-free callee.
//
//wormvet:nonalloc
func leaf(x int) int { return x + 1 }

// unmarked carries no marker, so hot callers may not call it.
func unmarked() {}

// sink has an interface parameter; passing a concrete value boxes it.
//
//wormvet:nonalloc
func sink(v any) { _ = v }

// varia is variadic; calling it without an ellipsis builds a slice.
//
//wormvet:nonalloc
func varia(xs ...int) { _ = xs }

// grow is an unmarked method, for the method-callee diagnostic.
func (r *ring) grow() { r.buf = append(r.buf, 0) }

// cold runs no hot path at all: allocating freely here is fine.
func cold(n int) []int { return make([]int, n) }

// reuse shows the blessed constructs: self-append (with and without a
// reslice), marked callees, the math/bits whitelist, and panic — whose
// argument subtree is terminal and therefore exempt, string
// concatenation and all.
//
//wormvet:hotpath
func reuse(r *ring, x int) {
	r.buf = append(r.buf, x)
	r.buf = append(r.buf[:0], x)
	_ = leaf(x)
	_ = bits.Len64(uint64(x))
	if x < 0 {
		panic("corrupted: " + r.label)
	}
}

// allocators trips every allocating construct the analyzer names.
//
//wormvet:hotpath
func allocators(r *ring, x int, s string) {
	fresh := append(r.buf, x) // want "append to a different destination builds a new backing array"
	_ = fresh
	_ = make([]int, x) // want "make allocates"
	_ = new(int)       // want "new allocates"
	sl := []int{x}     // want "slice literal allocates"
	_ = sl
	m := map[int]int{} // want "map literal allocates"
	_ = m
	p := &ring{} // want "&composite literal escapes to the heap"
	_ = p
	_ = s + "!"      // want "string concatenation allocates"
	_ = []byte(s)    // want "string<->..byte conversion copies"
	_ = any(x)       // want "conversion to interface type .* boxes its operand"
	_ = func() int { // want "func literal may allocate its closure"
		return x
	}
}

// stepper abstracts a stepping engine, for the interface-dispatch case.
type stepper interface {
	step() int
}

// statements trips the statement-level constructs and the callee
// discipline.
//
//wormvet:hotpath
func statements(r *ring, f func(), s stepper, x int) {
	go leaf(x)                    // want "go statement allocates a goroutine"
	defer leaf(x)                 // want "defer allocates its frame record"
	unmarked()                    // want "call to unmarked unmarked; mark it //wormvet:hotpath or //wormvet:nonalloc"
	r.grow()                      // want "call to unmarked ..ring..grow"
	f()                           // want "dynamic call .interface method or func value. can allocate"
	_ = s.step()                  // want "dynamic call .interface method or func value. can allocate"
	sink(x)                       // want "passing int as interface .* boxes it"
	varia(x, x)                   // want "variadic call allocates its argument slice"
	_ = sort.SearchInts(r.buf, x) // want "call to unmarked sort.SearchInts; mark it in its package"
	_ = string(r.log)             // want "string<->..byte conversion copies"
}

// cleanCalls are argument shapes the boxing check must not flag: an
// already-spread variadic call, a nil interface argument, and an
// interface value passed through without conversion.
//
//wormvet:hotpath
func cleanCalls(xs []int, v any) {
	varia(xs...)
	sink(nil)
	sink(v)
}

// coldSite suppresses a once-per-run allocation on a marked function's
// cold branch with a reasoned allow.
//
//wormvet:hotpath
func coldSite(trigger bool) {
	if trigger {
		_ = make([]int, 8) //wormvet:allow hotalloc -- teardown path, runs once per simulation
	}
}
