// Package keypack is the analysistest corpus for the wormvet keypack
// analyzer: key-width shifts and masks outside //wormvet:keypack
// helpers are flagged, drifted widths inside helpers are flagged, and
// the canonical helpers plus an allow-suppressed one-off pass clean.
//
//wormvet:scope
package keypack

// relKey is a canonical packer: exact 32-bit halves, marked.
//
//wormvet:keypack
func relKey(release, id int) uint64 {
	return uint64(release)<<32 | uint64(uint32(id))
}

// keyRelease is a canonical unpacker.
//
//wormvet:keypack
func keyRelease(k uint64) int { return int(k >> 32) }

// drifted is marked canonical but shifts a drifted width — the
// "exactly 32" half of the contract.
//
//wormvet:keypack
func drifted(k uint64) int {
	return int(k >> 33) // want "keypack helper drifted shifts by 33: packed words use exactly 32-bit halves"
}

// manualUnpack hand-rolls the unpack outside a marked helper.
func manualUnpack(k uint64) int {
	return int(k >> 32) // want "manual 64-bit key .un.packing .shift by 32. outside a //wormvet:keypack helper"
}

// offByOne is the classic drift the 31..33 net exists to catch.
func offByOne(k uint64) uint64 {
	return k >> 31 // want "manual 64-bit key .un.packing .shift by 31."
}

// manualMask hand-rolls the low-word extraction.
func manualMask(k uint64) uint64 {
	return k & 0xffffffff // want "manual low-word mask .& 0xffffffff. outside a //wormvet:keypack helper"
}

// allowedShift documents a deliberate one-off instead of marking.
func allowedShift(k uint64) int {
	return int(k >> 32) //wormvet:allow keypack -- corpus exercises the suppression path
}

// narrowShift shifts a 64-bit word by a non-key width: out of the net.
func narrowShift(x uint64) uint64 { return x >> 8 }

// shortWord shifts a 32-bit word: not key material.
func shortWord(x uint32) uint32 { return x >> 16 }

// untypedShift builds key material from an untyped constant shift —
// untyped shifts adopt their context's width, so they count as 64-bit.
func untypedShift() uint64 {
	return 1<<32 | 5 // want "manual 64-bit key .un.packing .shift by 32."
}

// word is a named 64-bit type; the width check sees through the name.
type word uint64

func namedShift(w word) word {
	return w >> 33 // want "manual 64-bit key .un.packing .shift by 33."
}

// shortMask masks a 32-bit word: the constant fits, nothing is packed.
func shortMask(x uint32) uint32 { return x & 0xffffffff }

// variableShift has a non-constant width: not the packing idiom.
func variableShift(k uint64, n uint) uint64 { return k >> n }

// constShift packs inside an untyped constant expression — untyped
// shift operands are treated conservatively as key material.
func constShift() uint64 {
	const c = 1 << 32 // want "manual 64-bit key .un.packing .shift by 32."
	return c
}
