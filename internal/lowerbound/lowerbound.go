// Package lowerbound builds the Theorem 2.2.1 adversarial instance: a
// network and a set of long messages whose paths have congestion C and
// dilation D, yet which provably require Ω(L·C·D^(1/B)/B) flit steps to
// route, no matter what schedule is used.
//
// The construction follows the paper exactly. Start from M′ base messages,
// where M′ is the largest integer with 2·binom(M′−1, B) − 1 ≤ D. For every
// (B+1)-subset S of base messages there is a dedicated *primary* edge e_S
// that all of them (and only they) traverse. A base message visits the
// primary edges of all binom(M′−1, B) subsets containing it, in
// lexicographic order, hopping between consecutive primary edges over
// *secondary* edges (which inherit congestion at most B because two
// distinct (B+1)-subsets intersect in at most B messages). Each base
// message is then replicated ⌊C/(B+1)⌋ times to raise the congestion to
// (B+1)·⌊C/(B+1)⌋ ≈ C, and paths are padded with private chains to reach
// dilation exactly D.
//
// The key property: every B+1 messages share some edge. A message "makes
// progress" in a step when it moves and one of its first L−D flits is
// delivered; a message making progress spans its entire path, so at most B
// messages can make progress per step, giving T ≥ (L−D)·M/B.
package lowerbound

import (
	"fmt"
	"math"

	"wormhole/internal/graph"
	"wormhole/internal/message"
)

// Params selects the instance size.
type Params struct {
	B       int // virtual channels; B ≥ 1
	TargetD int // desired dilation (paths padded to exactly this)
	TargetC int // desired congestion; effective C = (B+1)·⌊TargetC/(B+1)⌋
	L       int // message length; the theorem needs L = (1+Ω(1))·D, e.g. 2·TargetD
}

// Construction is the built adversarial instance.
type Construction struct {
	G   *graph.Graph
	Set *message.Set

	B        int
	C        int // achieved congestion
	D        int // achieved dilation (== TargetD)
	L        int
	MPrime   int // base messages
	Replicas int // copies of each base message
	Primary  []graph.EdgeID
}

// Build constructs the instance. It panics on infeasible parameters
// (TargetD too small to host even one subset pair, TargetC < B+1, L ≤ D).
func Build(p Params) *Construction {
	if p.B < 1 {
		panic(fmt.Sprintf("lowerbound: B %d < 1", p.B))
	}
	if p.TargetC < p.B+1 {
		panic(fmt.Sprintf("lowerbound: TargetC %d < B+1 = %d", p.TargetC, p.B+1))
	}
	if p.L <= p.TargetD {
		panic(fmt.Sprintf("lowerbound: L %d must exceed D %d (theorem needs L=(1+Ω(1))·D)", p.L, p.TargetD))
	}
	mPrime := chooseMPrime(p.B, p.TargetD)
	if mPrime < p.B+1 {
		panic(fmt.Sprintf("lowerbound: TargetD %d too small for B %d (need ≥ %d)", p.TargetD, p.B, 2*Binom(p.B, p.B)-1))
	}

	subsets := Combinations(mPrime, p.B+1)
	g := graph.New(4*len(subsets), 8*len(subsets))

	// One primary edge per (B+1)-subset, with private endpoints.
	primary := make([]graph.EdgeID, len(subsets))
	for i := range subsets {
		t := g.AddNode(fmt.Sprintf("p%d.t", i))
		h := g.AddNode(fmt.Sprintf("p%d.h", i))
		primary[i] = g.AddEdge(t, h)
	}

	// subsetsOf[m] lists, in lexicographic order, the indices of subsets
	// containing base message m.
	subsetsOf := make([][]int, mPrime)
	for si, s := range subsets {
		for _, m := range s {
			subsetsOf[m] = append(subsetsOf[m], si)
		}
	}

	// secondary[(a,b)] caches the connector head(e_a) → tail(e_b).
	type hop struct{ a, b int }
	secondary := make(map[hop]graph.EdgeID)

	set := message.NewSet(g)
	replicas := p.TargetC / (p.B + 1)
	for m := 0; m < mPrime; m++ {
		own := subsetsOf[m]
		if len(own) == 0 {
			panic("lowerbound: base message appears in no subset")
		}
		var path graph.Path
		for i, si := range own {
			if i > 0 {
				prev := own[i-1]
				k := hop{prev, si}
				eid, ok := secondary[k]
				if !ok {
					eid = g.AddEdge(g.Edge(primary[prev]).Head, g.Edge(primary[si]).Tail)
					secondary[k] = eid
				}
				path = append(path, eid)
			}
			path = append(path, primary[si])
		}
		// Pad with a private chain to reach dilation exactly TargetD. The
		// chain is shared only by this message's replicas, so it carries
		// congestion `replicas` ≤ C.
		cur := g.Edge(path[len(path)-1]).Head
		for len(path) < p.TargetD {
			next := g.AddNode("")
			path = append(path, g.AddEdge(cur, next))
			cur = next
		}
		src := g.Edge(path[0]).Tail
		for rep := 0; rep < replicas; rep++ {
			set.Add(src, cur, p.L, append(graph.Path(nil), path...))
		}
	}

	return &Construction{
		G: g, Set: set,
		B: p.B, C: replicas * (p.B + 1), D: p.TargetD, L: p.L,
		MPrime: mPrime, Replicas: replicas, Primary: primary,
	}
}

// chooseMPrime returns the largest M′ with 2·binom(M′−1, B) − 1 ≤ D.
func chooseMPrime(b, d int) int {
	m := b + 1
	for 2*Binom(m, b)-1 <= d { // candidate M′ = m+1 has dilation 2·binom(m, b)−1
		m++
		if m > 1<<20 {
			panic("lowerbound: runaway M′ search")
		}
	}
	return m
}

// ProgressBound returns the progress-argument floor on routing time:
// (L−D)·M/B flit steps, where M is the total message count. Any schedule —
// online, offline, randomized — needs at least this long.
func (c *Construction) ProgressBound() float64 {
	m := c.Set.Len()
	return float64(c.L-c.D) * float64(m) / float64(c.B)
}

// TheoremBound evaluates the Ω(L·C·D^(1/B)/B) form of Theorem 2.2.1
// (without its hidden constant) for this instance.
func (c *Construction) TheoremBound() float64 {
	return float64(c.L) * float64(c.C) * math.Pow(float64(c.D), 1/float64(c.B)) / float64(c.B)
}

// Binom returns the binomial coefficient n choose k (0 when k < 0 or
// k > n). It panics on overflow-scale inputs; the construction only needs
// small values.
func Binom(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
		if r < 0 {
			panic("lowerbound: binomial overflow")
		}
	}
	return r
}

// Combinations enumerates all k-subsets of {0, …, n−1} in lexicographic
// order.
func Combinations(n, k int) [][]int {
	if k < 0 || k > n {
		return nil
	}
	var out [][]int
	cur := make([]int, k)
	var rec func(start, idx int)
	rec = func(start, idx int) {
		if idx == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for v := start; v <= n-(k-idx); v++ {
			cur[idx] = v
			rec(v+1, idx+1)
		}
	}
	rec(0, 0)
	return out
}
