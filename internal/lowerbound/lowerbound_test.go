package lowerbound

import (
	"testing"
	"testing/quick"

	"wormhole/internal/analysis"
	"wormhole/internal/graph"
	"wormhole/internal/message"
	"wormhole/internal/vcsim"
)

func TestBinom(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{5, 0, 1}, {5, 1, 5}, {5, 2, 10}, {5, 5, 1}, {5, 6, 0}, {5, -1, 0},
		{10, 3, 120}, {20, 10, 184756},
	}
	for _, c := range cases {
		if got := Binom(c.n, c.k); got != c.want {
			t.Errorf("Binom(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestCombinations(t *testing.T) {
	combos := Combinations(4, 2)
	if len(combos) != 6 {
		t.Fatalf("%d combos", len(combos))
	}
	// Lexicographic order.
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	for i := range want {
		for j := range want[i] {
			if combos[i][j] != want[i][j] {
				t.Fatalf("combos = %v", combos)
			}
		}
	}
	if Combinations(3, 0) == nil || len(Combinations(3, 0)) != 1 {
		t.Error("n choose 0 should be the single empty set")
	}
	if Combinations(2, 3) != nil {
		t.Error("k > n should be empty")
	}
}

func TestCombinationsCountMatchesBinom(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%8) + 1
		k := int(kRaw % 9)
		return len(Combinations(n, k)) == Binom(n, k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBuildParameters(t *testing.T) {
	for _, tc := range []struct{ b, d, c int }{
		{1, 16, 8}, {1, 32, 4}, {2, 16, 9}, {2, 32, 12}, {3, 24, 8},
	} {
		con := Build(Params{B: tc.b, TargetD: tc.d, TargetC: tc.c, L: 2*tc.d + 4})
		// Measured congestion and dilation must match the construction's
		// claims exactly.
		if got := analysis.Congestion(con.Set); got != con.C {
			t.Errorf("B=%d: measured C=%d, claimed %d", tc.b, got, con.C)
		}
		if got := analysis.Dilation(con.Set); got != tc.d {
			t.Errorf("B=%d: measured D=%d, want exactly %d", tc.b, got, tc.d)
		}
		if con.C != (tc.b+1)*(tc.c/(tc.b+1)) {
			t.Errorf("B=%d: achieved C=%d not (B+1)⌊C/(B+1)⌋", tc.b, con.C)
		}
		if !con.Set.EdgeSimple() {
			t.Errorf("B=%d: paths not edge-simple", tc.b)
		}
		// M′ maximality: 2·binom(M′−1, B) − 1 ≤ D < 2·binom(M′, B) − 1.
		if 2*Binom(con.MPrime-1, tc.b)-1 > tc.d {
			t.Errorf("B=%d: M'=%d too large", tc.b, con.MPrime)
		}
		if 2*Binom(con.MPrime, tc.b)-1 <= tc.d {
			t.Errorf("B=%d: M'=%d not maximal", tc.b, con.MPrime)
		}
	}
}

// TestEveryBPlus1SubsetCollides verifies the construction's defining
// property: any B+1 of the base messages pass through a common edge.
func TestEveryBPlus1SubsetCollides(t *testing.T) {
	for _, b := range []int{1, 2} {
		con := Build(Params{B: b, TargetD: 20, TargetC: b + 1, L: 44})
		// With TargetC = B+1 there is exactly one replica per base
		// message, so message IDs coincide with base messages.
		if con.Replicas != 1 {
			t.Fatalf("B=%d: %d replicas, want 1", b, con.Replicas)
		}
		n := con.Set.Len()
		for _, subset := range Combinations(n, b+1) {
			ids := make([]message.ID, len(subset))
			for i, s := range subset {
				ids[i] = message.ID(s)
			}
			sub, _ := con.Set.Subset(ids)
			if analysis.CollidingSubset(sub, b) == nil {
				t.Fatalf("B=%d: subset %v does not share an edge", b, subset)
			}
		}
	}
}

func TestPrimaryEdgeCongestionExactly(t *testing.T) {
	con := Build(Params{B: 2, TargetD: 16, TargetC: 9, L: 40})
	loads := analysis.EdgeLoads(con.Set)
	for _, e := range con.Primary {
		if loads[e] != con.C {
			t.Errorf("primary edge %d carries %d, want C=%d", e, loads[e], con.C)
		}
	}
}

func TestSecondaryCongestionBelowPrimary(t *testing.T) {
	con := Build(Params{B: 2, TargetD: 16, TargetC: 9, L: 40})
	primary := make(map[graph.EdgeID]bool)
	for _, e := range con.Primary {
		primary[e] = true
	}
	loads := analysis.EdgeLoads(con.Set)
	for e, load := range loads {
		if primary[graph.EdgeID(e)] {
			continue
		}
		if load >= con.C {
			t.Errorf("non-primary edge %d carries %d ≥ C=%d", e, load, con.C)
		}
	}
}

// TestProgressFloorHolds routes the instance with several strategies and
// checks none beats the (L−D)·M/B floor — the theorem's guarantee.
func TestProgressFloorHolds(t *testing.T) {
	for _, b := range []int{1, 2} {
		con := Build(Params{B: b, TargetD: 12, TargetC: 2 * (b + 1), L: 30})
		floor := con.ProgressBound()
		for _, pol := range []vcsim.Policy{vcsim.ArbByID, vcsim.ArbAge, vcsim.ArbRandom} {
			res := vcsim.Run(con.Set, nil, vcsim.Config{
				VirtualChannels: b, Arbitration: pol, Seed: 5, CheckInvariants: true,
			})
			if !res.AllDelivered() {
				t.Fatalf("B=%d %v: undelivered (deadlock=%v)", b, pol, res.Deadlocked)
			}
			if float64(res.Steps) < floor {
				t.Errorf("B=%d %v: makespan %d beats the impossible floor %v",
					b, pol, res.Steps, floor)
			}
		}
	}
}

func TestDependencyAcyclic(t *testing.T) {
	// Greedy routing on the construction must be deadlock-free: paths
	// visit primary edges in increasing subset order.
	con := Build(Params{B: 2, TargetD: 16, TargetC: 6, L: 34})
	if !analysis.ChannelDependencyAcyclic(con.Set) {
		t.Error("adversarial instance has cyclic channel dependencies")
	}
}

func TestBoundsEvaluators(t *testing.T) {
	con := Build(Params{B: 2, TargetD: 16, TargetC: 6, L: 34})
	if con.ProgressBound() <= 0 || con.TheoremBound() <= 0 {
		t.Error("bounds must be positive")
	}
	// Progress floor never exceeds the theorem form by more than small
	// factors (both are Θ(LCD^(1/B)/B) for L = Θ(D)).
	if con.ProgressBound() > 4*con.TheoremBound() {
		t.Errorf("floor %v wildly above theorem %v", con.ProgressBound(), con.TheoremBound())
	}
}

func TestBuildPanics(t *testing.T) {
	for name, p := range map[string]Params{
		"B=0":      {B: 0, TargetD: 8, TargetC: 4, L: 20},
		"C too lo": {B: 2, TargetD: 8, TargetC: 2, L: 20},
		"L ≤ D":    {B: 1, TargetD: 8, TargetC: 4, L: 8},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			Build(p)
		}()
	}
}

func TestReplicasShareBasePath(t *testing.T) {
	con := Build(Params{B: 1, TargetD: 10, TargetC: 6, L: 22})
	per := con.Set.Len() / con.MPrime
	if per != con.Replicas {
		t.Fatalf("messages %d / M' %d ≠ replicas %d", con.Set.Len(), con.MPrime, con.Replicas)
	}
	// Consecutive blocks of `replicas` messages share identical paths.
	for base := 0; base < con.MPrime; base++ {
		first := con.Set.Get(message.ID(base * con.Replicas)).Path
		for rep := 1; rep < con.Replicas; rep++ {
			p := con.Set.Get(message.ID(base*con.Replicas + rep)).Path
			if len(p) != len(first) {
				t.Fatal("replica path length differs")
			}
			for i := range p {
				if p[i] != first[i] {
					t.Fatal("replica path differs")
				}
			}
		}
	}
}
