// Package message defines the routing workload: messages ("worms") with a
// source, a destination, a flit length L, and a pre-selected path.
//
// Following the paper, path selection is decoupled from scheduling: a
// Set fixes every message's path up front, and the schedulers and
// simulators in other packages only ever see the resulting paths. The
// package also carries workload generators for the canonical problems the
// paper studies — permutations, q-relations, and random destinations.
package message

import (
	"fmt"

	"wormhole/internal/graph"
)

// ID identifies a message within a Set. IDs are dense: a set of n messages
// uses IDs 0..n-1.
type ID int32

// Message is a worm of Length flits that must travel from Src to Dst along
// Path. Length includes the header flit. A message with an empty path is
// already at its destination and is delivered without entering the network.
type Message struct {
	ID     ID
	Src    graph.NodeID
	Dst    graph.NodeID
	Length int
	Path   graph.Path
}

// Set is an ordered collection of messages sharing one network.
type Set struct {
	G    *graph.Graph
	Msgs []Message
}

// NewSet returns an empty message set over g.
func NewSet(g *graph.Graph) *Set {
	return &Set{G: g}
}

// Add appends a message with the given endpoints, length, and path, and
// returns its ID. It panics if the path does not connect src to dst, so a
// Set can never hold an inconsistent workload.
func (s *Set) Add(src, dst graph.NodeID, length int, path graph.Path) ID {
	if length < 1 {
		panic(fmt.Sprintf("message: length %d < 1", length))
	}
	if err := path.Validate(s.G, src, dst); err != nil {
		panic(fmt.Sprintf("message: invalid path for %d→%d: %v", src, dst, err))
	}
	id := ID(len(s.Msgs))
	s.Msgs = append(s.Msgs, Message{ID: id, Src: src, Dst: dst, Length: length, Path: path})
	return id
}

// Len returns the number of messages in the set.
func (s *Set) Len() int { return len(s.Msgs) }

// Get returns the message with the given ID.
func (s *Set) Get(id ID) Message { return s.Msgs[id] }

// EdgeSimple reports whether every path in the set is edge-simple, the
// precondition of Theorem 2.1.6.
func (s *Set) EdgeSimple() bool {
	for i := range s.Msgs {
		if !s.Msgs[i].Path.EdgeSimple() {
			return false
		}
	}
	return true
}

// MaxLength returns the largest message length L in the set (0 if empty).
func (s *Set) MaxLength() int {
	max := 0
	for i := range s.Msgs {
		if s.Msgs[i].Length > max {
			max = s.Msgs[i].Length
		}
	}
	return max
}

// Clone returns a deep copy of the set sharing the same graph. Paths are
// copied so the clone can be mutated independently.
func (s *Set) Clone() *Set {
	out := &Set{G: s.G, Msgs: make([]Message, len(s.Msgs))}
	copy(out.Msgs, s.Msgs)
	for i := range out.Msgs {
		out.Msgs[i].Path = append(graph.Path(nil), out.Msgs[i].Path...)
	}
	return out
}

// Subset returns a new Set containing the messages with the given IDs, in
// order, renumbered densely. The mapping from new to original IDs is
// returned alongside.
func (s *Set) Subset(ids []ID) (*Set, []ID) {
	out := &Set{G: s.G, Msgs: make([]Message, 0, len(ids))}
	orig := make([]ID, 0, len(ids))
	for _, id := range ids {
		m := s.Msgs[id]
		m.ID = ID(len(out.Msgs))
		out.Msgs = append(out.Msgs, m)
		orig = append(orig, id)
	}
	return out, orig
}

// Router produces a path for a (src, dst) pair. Topology packages provide
// concrete routers (butterfly bit-fixing, mesh dimension-order, BFS).
type Router func(src, dst graph.NodeID) graph.Path

// ShortestPathRouter returns a Router that BFS-routes on g. It panics at
// routing time if dst is unreachable from src.
func ShortestPathRouter(g *graph.Graph) Router {
	return func(src, dst graph.NodeID) graph.Path {
		p, ok := graph.ShortestPath(g, src, dst)
		if !ok {
			panic(fmt.Sprintf("message: no path %d→%d", src, dst))
		}
		return p
	}
}
