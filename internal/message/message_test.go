package message

import (
	"testing"
	"testing/quick"

	"wormhole/internal/graph"
	"wormhole/internal/rng"
	"wormhole/internal/topology"
)

func lineGraph(n int) *graph.Graph { return topology.NewLinearArray(n) }

func TestSetAddAndAccessors(t *testing.T) {
	g := lineGraph(4)
	s := NewSet(g)
	route := ShortestPathRouter(g)
	id := s.Add(0, 3, 5, route(0, 3))
	if id != 0 || s.Len() != 1 {
		t.Fatal("Add bookkeeping")
	}
	m := s.Get(id)
	if m.Src != 0 || m.Dst != 3 || m.Length != 5 || len(m.Path) != 3 {
		t.Fatalf("message = %+v", m)
	}
	if s.MaxLength() != 5 {
		t.Error("MaxLength")
	}
	s.Add(3, 0, 9, route(3, 0))
	if s.MaxLength() != 9 {
		t.Error("MaxLength after second add")
	}
}

func TestAddPanicsOnBadPath(t *testing.T) {
	g := lineGraph(4)
	s := NewSet(g)
	route := ShortestPathRouter(g)
	assertPanics(t, "wrong dst", func() { s.Add(0, 2, 3, route(0, 3)) })
	assertPanics(t, "zero length", func() { s.Add(0, 3, 0, route(0, 3)) })
}

func TestEdgeSimple(t *testing.T) {
	g := lineGraph(3)
	s := NewSet(g)
	route := ShortestPathRouter(g)
	s.Add(0, 2, 2, route(0, 2))
	if !s.EdgeSimple() {
		t.Error("simple set misflagged")
	}
	// Walk 0→1→0→1→2 repeats edge 0→1.
	e01 := g.FindEdge(0, 1)
	e10 := g.FindEdge(1, 0)
	e12 := g.FindEdge(1, 2)
	s.Add(0, 2, 2, graph.Path{e01, e10, e01, e12})
	if s.EdgeSimple() {
		t.Error("edge-repeating set not caught")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := lineGraph(4)
	s := NewSet(g)
	route := ShortestPathRouter(g)
	s.Add(0, 3, 2, route(0, 3))
	c := s.Clone()
	c.Msgs[0].Path[0] = 999 // corrupt the clone only
	if s.Msgs[0].Path[0] == 999 {
		t.Error("clone shares path storage")
	}
}

func TestSubset(t *testing.T) {
	g := lineGraph(5)
	s := NewSet(g)
	route := ShortestPathRouter(g)
	for i := 0; i < 4; i++ {
		s.Add(0, graph.NodeID(i+1), 2, route(0, graph.NodeID(i+1)))
	}
	sub, orig := s.Subset([]ID{2, 0})
	if sub.Len() != 2 || orig[0] != 2 || orig[1] != 0 {
		t.Fatalf("subset = %d msgs, orig %v", sub.Len(), orig)
	}
	if sub.Get(0).Dst != 3 || sub.Get(1).Dst != 1 {
		t.Error("subset content wrong")
	}
	if sub.Get(0).ID != 0 || sub.Get(1).ID != 1 {
		t.Error("subset IDs not densely renumbered")
	}
}

func TestPermutationWorkload(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + int(seed%20)
		srcs := make([]graph.NodeID, n)
		dsts := make([]graph.NodeID, n)
		for i := range srcs {
			srcs[i] = graph.NodeID(i)
			dsts[i] = graph.NodeID(100 + i)
		}
		pairs := Permutation(srcs, dsts, r)
		if len(pairs) != n {
			return false
		}
		seen := make(map[graph.NodeID]bool)
		for i, p := range pairs {
			if p.Src != srcs[i] || seen[p.Dst] {
				return false
			}
			seen[p.Dst] = true
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQRelationCounts(t *testing.T) {
	r := rng.New(3)
	n, q := 8, 3
	srcs := make([]graph.NodeID, n)
	dsts := make([]graph.NodeID, n)
	for i := range srcs {
		srcs[i] = graph.NodeID(i)
		dsts[i] = graph.NodeID(50 + i)
	}
	pairs := QRelation(srcs, dsts, q, r)
	if len(pairs) != n*q {
		t.Fatalf("%d pairs", len(pairs))
	}
	perSrc := map[graph.NodeID]int{}
	perDst := map[graph.NodeID]int{}
	for _, p := range pairs {
		perSrc[p.Src]++
		perDst[p.Dst]++
	}
	for _, c := range perSrc {
		if c != q {
			t.Fatalf("per-source count %d, want %d", c, q)
		}
	}
	for _, c := range perDst {
		if c != q {
			t.Fatalf("per-dest count %d, want %d", c, q)
		}
	}
}

func TestRandomDestinations(t *testing.T) {
	r := rng.New(4)
	srcs := []graph.NodeID{0, 1}
	dsts := []graph.NodeID{10, 11, 12}
	pairs := RandomDestinations(srcs, dsts, 5, r)
	if len(pairs) != 10 {
		t.Fatalf("%d pairs", len(pairs))
	}
	for _, p := range pairs {
		if p.Dst < 10 || p.Dst > 12 {
			t.Fatalf("dst %d outside pool", p.Dst)
		}
	}
}

func TestTransposeWorkload(t *testing.T) {
	pairs := Transpose(3, func(x, y int) graph.NodeID { return graph.NodeID(3*x + y) })
	// 9 cells minus 3 diagonal = 6 messages.
	if len(pairs) != 6 {
		t.Fatalf("%d transpose pairs", len(pairs))
	}
	for _, p := range pairs {
		x, y := int(p.Src)/3, int(p.Src)%3
		if int(p.Dst) != 3*y+x {
			t.Fatalf("pair %v is not a transpose", p)
		}
	}
}

func TestBitReversalWorkload(t *testing.T) {
	n := 8
	srcs := make([]graph.NodeID, n)
	dsts := make([]graph.NodeID, n)
	for i := range srcs {
		srcs[i] = graph.NodeID(i)
		dsts[i] = graph.NodeID(i)
	}
	pairs := BitReversal(srcs, dsts)
	// 3-bit reversals: 1 (001) ↔ 4 (100), 3 (011) ↔ 6 (110).
	if pairs[1].Dst != 4 || pairs[3].Dst != 6 || pairs[0].Dst != 0 || pairs[7].Dst != 7 {
		t.Fatalf("bit reversal wrong: %v", pairs)
	}
	assertPanics(t, "non power of two", func() { BitReversal(srcs[:3], dsts[:3]) })
}

func TestBuild(t *testing.T) {
	g := lineGraph(6)
	pairs := []Endpoints{{0, 5}, {5, 0}, {2, 4}}
	s := Build(g, pairs, 7, ShortestPathRouter(g))
	if s.Len() != 3 || s.MaxLength() != 7 {
		t.Fatal("Build")
	}
	for i, p := range pairs {
		if s.Get(ID(i)).Src != p.Src || s.Get(ID(i)).Dst != p.Dst {
			t.Fatal("Build endpoints")
		}
	}
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
