package message

import (
	"fmt"

	"wormhole/internal/graph"
	"wormhole/internal/rng"
)

// Endpoints names a source/destination pair before path selection.
type Endpoints struct {
	Src graph.NodeID
	Dst graph.NodeID
}

// Build routes each endpoint pair with the router and collects the results
// into a Set with uniform message length.
func Build(g *graph.Graph, pairs []Endpoints, length int, route Router) *Set {
	s := NewSet(g)
	for _, p := range pairs {
		s.Add(p.Src, p.Dst, length, route(p.Src, p.Dst))
	}
	return s
}

// Permutation returns endpoint pairs realizing a uniform random permutation
// from srcs[i] to dsts[π(i)]. srcs and dsts must have equal length.
func Permutation(srcs, dsts []graph.NodeID, r *rng.Source) []Endpoints {
	if len(srcs) != len(dsts) {
		panic(fmt.Sprintf("message: permutation arity mismatch %d vs %d", len(srcs), len(dsts)))
	}
	pi := r.Perm(len(dsts))
	out := make([]Endpoints, len(srcs))
	for i := range srcs {
		out[i] = Endpoints{Src: srcs[i], Dst: dsts[pi[i]]}
	}
	return out
}

// QRelation returns endpoint pairs for a random q-relation: exactly q
// messages originate at each source and exactly q are destined for each
// destination (a random q-to-q matching, built from q independent random
// permutations).
func QRelation(srcs, dsts []graph.NodeID, q int, r *rng.Source) []Endpoints {
	if q < 1 {
		panic("message: q-relation needs q ≥ 1")
	}
	out := make([]Endpoints, 0, q*len(srcs))
	for rep := 0; rep < q; rep++ {
		out = append(out, Permutation(srcs, dsts, r)...)
	}
	return out
}

// RandomDestinations returns endpoint pairs in which each source
// independently sends q messages to uniformly chosen destinations — the
// paper's "random routing problem with q messages per input".
func RandomDestinations(srcs, dsts []graph.NodeID, q int, r *rng.Source) []Endpoints {
	if q < 1 {
		panic("message: random workload needs q ≥ 1")
	}
	out := make([]Endpoints, 0, q*len(srcs))
	for _, s := range srcs {
		for rep := 0; rep < q; rep++ {
			out = append(out, Endpoints{Src: s, Dst: dsts[r.Intn(len(dsts))]})
		}
	}
	return out
}

// Transpose returns endpoint pairs for the matrix-transpose permutation on
// a square mesh side×side: node (x, y) sends to node (y, x). nodeAt maps
// coordinates to node IDs. Transpose traffic is a classic congestion
// hotspot along the diagonal.
func Transpose(side int, nodeAt func(x, y int) graph.NodeID) []Endpoints {
	var out []Endpoints
	for x := 0; x < side; x++ {
		for y := 0; y < side; y++ {
			if x == y {
				continue // already in place; no message needed
			}
			out = append(out, Endpoints{Src: nodeAt(x, y), Dst: nodeAt(y, x)})
		}
	}
	return out
}

// BitReversal returns endpoint pairs for the bit-reversal permutation on n
// (power of two) endpoints: source w sends to reverse(w). Bit reversal is
// the canonical worst case for dimension-ordered butterflies.
func BitReversal(srcs, dsts []graph.NodeID) []Endpoints {
	n := len(srcs)
	if n != len(dsts) || n&(n-1) != 0 || n == 0 {
		panic("message: bit reversal needs power-of-two matching endpoint slices")
	}
	k := 0
	for v := n; v > 1; v >>= 1 {
		k++
	}
	out := make([]Endpoints, n)
	for w := 0; w < n; w++ {
		rev := 0
		for b := 0; b < k; b++ {
			if w&(1<<b) != 0 {
				rev |= 1 << (k - 1 - b)
			}
		}
		out[w] = Endpoints{Src: srcs[w], Dst: dsts[rev]}
	}
	return out
}
