// Package rng provides deterministic, splittable pseudo-random number
// generation for reproducible routing experiments.
//
// Every randomized component in this repository (path selection, LLL
// resampling, the butterfly algorithm's color choices, workload generation)
// draws from an rng.Source so that an experiment is fully determined by a
// single 64-bit seed. Sources can be split: a child source derived from a
// parent is statistically independent of both the parent's later output and
// of siblings, which lets concurrent workers share one experiment seed
// without contending on a lock.
//
// The generator is SplitMix64 (Steele, Lea, Flood 2014), chosen because it
// is tiny, fast, passes BigCrush, and — unlike math/rand's global source —
// supports O(1) splitting by construction.
package rng

import "math/bits"

// golden is the 64-bit golden ratio constant used by SplitMix64.
const golden = 0x9E3779B97F4A7C15

// Source is a deterministic pseudo-random number generator. The zero value
// is a valid source seeded with 0; use New for explicit seeding.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Two Sources with the same seed
// produce identical streams.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// State returns the source's current internal state. Reseed(State())
// on a fresh Source reproduces the remaining stream exactly; together
// they let checkpoint codecs persist a mid-run source across process
// restarts.
func (s *Source) State() uint64 { return s.state }

// Reseed resets the source to the stream New(seed) would produce,
// reusing the allocation. Engines that are Reset for reuse (vcsim.Sim,
// the traffic Runner) reseed their sources in place so a reused run
// replays the exact stream of a fresh one without allocating.
func (s *Source) Reseed(seed uint64) { s.state = seed }

// Split derives an independent child source. The parent's stream advances by
// one step; the child is seeded from that output, so repeated Split calls
// yield distinct, independent children.
func (s *Source) Split() *Source {
	child := &Source{}
	s.SplitInto(child)
	return child
}

// SplitInto is Split writing into caller-owned storage: child is reseeded
// to exactly the stream Split would have returned, with no allocation.
// Reusable engines keep their per-endpoint sources in a flat slice and
// re-derive them in place each run.
func (s *Source) SplitInto(child *Source) {
	child.state = s.Uint64() ^ 0xA5A5A5A5A5A5A5A5
}

// Uint64 returns the next 64 bits of the stream.
//
//wormvet:nonalloc
func (s *Source) Uint64() uint64 {
	s.state += golden
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
//
//wormvet:nonalloc
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(s.boundedUint64(uint64(n)))
}

// Int63 returns a uniform non-negative int64.
//
//wormvet:nonalloc
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// boundedUint64 returns a uniform value in [0, n) using Lemire's
// multiply-shift rejection method, which avoids modulo bias without
// divisions in the common case.
//
//wormvet:nonalloc
func (s *Source) boundedUint64(n uint64) uint64 {
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform float64 in [0, 1).
//
//wormvet:nonalloc
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniform boolean.
//
//wormvet:nonalloc
func (s *Source) Bool() bool {
	return s.Uint64()&1 == 1
}

// Perm returns a uniform random permutation of [0, n) as a slice.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function (Fisher–Yates).
//
//wormvet:nonalloc
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct uniform values from [0, n) in random order.
// It panics if k > n or k < 0.
func (s *Source) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample called with k out of range")
	}
	// Partial Fisher–Yates over an index map: O(k) space for k << n.
	chosen := make([]int, 0, k)
	remap := make(map[int]int, k)
	for i := 0; i < k; i++ {
		j := i + s.Intn(n-i)
		vj, ok := remap[j]
		if !ok {
			vj = j
		}
		vi, ok := remap[i]
		if !ok {
			vi = i
		}
		remap[j] = vi
		chosen = append(chosen, vj)
	}
	return chosen
}
