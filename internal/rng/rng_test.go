package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between differently seeded streams", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 30} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	r := New(1)
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared-ish sanity: 10 buckets, 100k draws, each bucket within
	// 5% of expectation.
	r := New(42)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := draws / n
	for b, c := range counts {
		if math.Abs(float64(c-want)) > 0.05*float64(want) {
			t.Errorf("bucket %d: %d draws, want ≈%d", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const draws = 50000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ≈0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermUnbiasedFirstElement(t *testing.T) {
	r := New(11)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := draws / n
	for v, c := range counts {
		if math.Abs(float64(c-want)) > 0.06*float64(want) {
			t.Errorf("Perm first element %d: %d, want ≈%d", v, c, want)
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw%100) + 1
		k := int(kRaw) % (n + 1)
		s := New(seed).Sample(n, k)
		if len(s) != k {
			return false
		}
		seen := make(map[int]bool, k)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleFull(t *testing.T) {
	s := New(3).Sample(10, 10)
	seen := make(map[int]bool)
	for _, v := range s {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Sample(10,10) covered %d values", len(seen))
	}
}

func TestSamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Sample(3, 4) did not panic")
		}
	}()
	New(1).Sample(3, 4)
}

func TestSplitIndependence(t *testing.T) {
	parent := New(77)
	c1 := parent.Split()
	c2 := parent.Split()
	// Children and parent must produce pairwise different streams.
	same12, sameP1 := 0, 0
	for i := 0; i < 100; i++ {
		v1, v2, vp := c1.Uint64(), c2.Uint64(), parent.Uint64()
		if v1 == v2 {
			same12++
		}
		if v1 == vp {
			sameP1++
		}
	}
	if same12 > 0 || sameP1 > 0 {
		t.Errorf("split streams overlap: %d/%d", same12, sameP1)
	}
}

func TestShuffleCoversArrangements(t *testing.T) {
	// All 6 permutations of 3 elements should appear over many shuffles.
	r := New(13)
	seen := make(map[[3]int]int)
	for i := 0; i < 6000; i++ {
		a := [3]int{0, 1, 2}
		r.Shuffle(3, func(i, j int) { a[i], a[j] = a[j], a[i] })
		seen[a]++
	}
	if len(seen) != 6 {
		t.Fatalf("saw %d/6 arrangements", len(seen))
	}
	for a, c := range seen {
		if c < 700 {
			t.Errorf("arrangement %v underrepresented: %d", a, c)
		}
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(21)
	trues := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if r.Bool() {
			trues++
		}
	}
	if math.Abs(float64(trues)-draws/2) > 0.03*draws {
		t.Errorf("Bool: %d/%d true", trues, draws)
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(2)
	for i := 0; i < 1000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Source
	_ = s.Uint64()
	_ = s.Intn(10)
}

func TestReseedMatchesNew(t *testing.T) {
	s := New(1)
	for i := 0; i < 10; i++ {
		s.Uint64()
	}
	s.Reseed(42)
	fresh := New(42)
	for i := 0; i < 16; i++ {
		if a, b := s.Uint64(), fresh.Uint64(); a != b {
			t.Fatalf("draw %d: reseeded %x != fresh %x", i, a, b)
		}
	}
}

func TestSplitIntoMatchesSplit(t *testing.T) {
	a, b := New(7), New(7)
	var child Source
	for i := 0; i < 8; i++ {
		want := a.Split()
		b.SplitInto(&child)
		for j := 0; j < 4; j++ {
			if x, y := want.Uint64(), child.Uint64(); x != y {
				t.Fatalf("split %d draw %d: %x != %x", i, j, x, y)
			}
		}
	}
}
