// Package routeopt implements congestion-aware path selection — the
// other half of the routing problem the paper deliberately leaves out.
//
// The paper's Section 1.3.1 cites Srinivasan–Teo: given only sources and
// destinations, paths can be chosen so that C+D is within a constant of
// optimal, after which a scheduler (like this repository's Theorem 2.1.6
// implementation) finishes the job. This package supplies practical
// selectors in that spirit:
//
//   - GreedyMinMax routes messages sequentially on a path minimizing the
//     (lexicographic) bottleneck load among near-shortest paths, via
//     Dijkstra over load-penalized edge weights;
//   - Rebalance iterates one-message reroutes while they reduce
//     congestion — a local search that certifies a local optimum.
//
// Neither carries Srinivasan–Teo's approximation guarantee (their LP
// rounding is out of scope); both are measured against plain BFS routing
// in tests and experiments, where they reliably cut C on skewed traffic.
package routeopt

import (
	"container/heap"
	"fmt"

	"wormhole/internal/analysis"
	"wormhole/internal/graph"
	"wormhole/internal/message"
)

// Options tunes the selectors.
type Options struct {
	// Stretch bounds path length: candidate paths may be at most
	// Stretch × (shortest-path length), rounded up. 0 means 1.5.
	Stretch float64
	// Penalty is the extra weight per unit of existing load on an edge.
	// Larger values avoid hot edges more aggressively. 0 means 8.
	Penalty int
}

func (o Options) withDefaults() Options {
	if o.Stretch == 0 {
		o.Stretch = 1.5
	}
	if o.Stretch < 1 {
		panic(fmt.Sprintf("routeopt: stretch %v < 1", o.Stretch))
	}
	if o.Penalty == 0 {
		o.Penalty = 8
	}
	if o.Penalty < 0 {
		panic("routeopt: negative penalty")
	}
	return o
}

// GreedyMinMax routes each endpoint pair in order on a load-penalized
// shortest path, updating loads as it goes, and returns the message set.
// Paths are guaranteed within the stretch bound of shortest; messages
// whose destination is unreachable cause a panic.
func GreedyMinMax(g *graph.Graph, pairs []message.Endpoints, length int, opts Options) *message.Set {
	opts = opts.withDefaults()
	load := make([]int, g.NumEdges())
	set := message.NewSet(g)
	for _, ep := range pairs {
		p := penalizedPath(g, ep.Src, ep.Dst, load, opts)
		if p == nil {
			panic(fmt.Sprintf("routeopt: no path %d→%d", ep.Src, ep.Dst))
		}
		for _, e := range p {
			load[e]++
		}
		set.Add(ep.Src, ep.Dst, length, p)
	}
	return set
}

// Rebalance performs local search on an existing set: repeatedly pick a
// message crossing a maximum-load edge and reroute it if some alternate
// path strictly lowers the set's congestion. It mutates the set in place
// and returns the number of reroutes applied and the final congestion.
func Rebalance(set *message.Set, opts Options, maxRounds int) (reroutes, congestion int) {
	opts = opts.withDefaults()
	if maxRounds <= 0 {
		maxRounds = 4 * set.Len()
	}
	g := set.G
	load := analysis.EdgeLoads(set)

	for round := 0; round < maxRounds; round++ {
		// Find the current bottleneck.
		maxLoad, hot := 0, graph.EdgeID(graph.None)
		for e, l := range load {
			if l > maxLoad {
				maxLoad, hot = l, graph.EdgeID(e)
			}
		}
		if maxLoad <= 1 {
			break
		}
		improved := false
		for i := range set.Msgs {
			m := &set.Msgs[i]
			crossesHot := false
			for _, e := range m.Path {
				if e == hot {
					crossesHot = true
					break
				}
			}
			if !crossesHot {
				continue
			}
			// Remove, reroute against the residual load, keep if the
			// bottleneck along the new path is strictly better.
			for _, e := range m.Path {
				load[e]--
			}
			alt := penalizedPath(g, m.Src, m.Dst, load, opts)
			better := alt != nil && pathBottleneck(load, alt) < maxLoad
			if better {
				m.Path = alt
				reroutes++
				improved = true
			}
			for _, e := range m.Path {
				load[e]++
			}
			if improved {
				break
			}
		}
		if !improved {
			break
		}
	}
	return reroutes, analysis.Congestion(set)
}

// pathBottleneck returns the maximum residual load along p plus one (the
// load the path would see after adding the message).
func pathBottleneck(load []int, p graph.Path) int {
	max := 0
	for _, e := range p {
		if load[e] >= max {
			max = load[e] + 1
		}
	}
	return max
}

// penalizedPath runs Dijkstra with weight 1 + Penalty·load per edge and
// rejects results longer than the stretch bound; on rejection it retries
// with halved penalties until the bound is met (penalty 0 degenerates to
// BFS, which meets any stretch ≥ 1).
func penalizedPath(g *graph.Graph, src, dst graph.NodeID, load []int, opts Options) graph.Path {
	base, ok := graph.ShortestPath(g, src, dst)
	if !ok {
		return nil
	}
	limit := int(opts.Stretch*float64(len(base)) + 0.999)
	for penalty := opts.Penalty; ; penalty /= 2 {
		p := dijkstra(g, src, dst, load, penalty)
		if p != nil && len(p) <= limit {
			return p
		}
		if penalty == 0 {
			return base
		}
	}
}

// dijkstra finds a minimum-cost path under weight(e) = 1 + penalty·load[e].
func dijkstra(g *graph.Graph, src, dst graph.NodeID, load []int, penalty int) graph.Path {
	const inf = int64(1) << 62
	dist := make([]int64, g.NumNodes())
	parent := make([]graph.EdgeID, g.NumNodes())
	for i := range dist {
		dist[i] = inf
		parent[i] = graph.None
	}
	dist[src] = 0
	pq := &nodeHeap{{node: src, dist: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(nodeItem)
		if it.dist > dist[it.node] {
			continue
		}
		if it.node == dst {
			break
		}
		for _, eid := range g.Out(it.node) {
			e := g.Edge(eid)
			w := int64(1 + penalty*load[eid])
			nd := it.dist + w
			if nd < dist[e.Head] {
				dist[e.Head] = nd
				parent[e.Head] = eid
				heap.Push(pq, nodeItem{node: e.Head, dist: nd})
			}
		}
	}
	if dist[dst] == inf {
		return nil
	}
	var rev graph.Path
	for cur := dst; cur != src; {
		eid := parent[cur]
		rev = append(rev, eid)
		cur = g.Edge(eid).Tail
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

type nodeItem struct {
	node graph.NodeID
	dist int64
}

type nodeHeap []nodeItem

func (h nodeHeap) Len() int           { return len(h) }
func (h nodeHeap) Less(i, j int) bool { return h[i].dist < h[j].dist }
func (h nodeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)        { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
