package routeopt

import (
	"testing"
	"testing/quick"

	"wormhole/internal/analysis"
	"wormhole/internal/graph"
	"wormhole/internal/message"
	"wormhole/internal/rng"
	"wormhole/internal/topology"
)

// hotspotPairs sends k messages between the same endpoints of a graph
// that offers several disjoint routes — plain BFS stacks them all on one
// path, a congestion-aware selector spreads them.
func parallelGraph(width, length int) (*graph.Graph, graph.NodeID, graph.NodeID) {
	g := graph.New(2+width*length, width*(length+1))
	src := g.AddNode("s")
	dst := g.AddNode("t")
	for w := 0; w < width; w++ {
		prev := src
		for i := 0; i < length; i++ {
			n := g.AddNode("")
			g.AddEdge(prev, n)
			prev = n
		}
		g.AddEdge(prev, dst)
	}
	return g, src, dst
}

func TestGreedyMinMaxSpreadsParallelPaths(t *testing.T) {
	g, src, dst := parallelGraph(4, 3)
	pairs := make([]message.Endpoints, 8)
	for i := range pairs {
		pairs[i] = message.Endpoints{Src: src, Dst: dst}
	}
	// Plain BFS: everything on one lane → C = 8.
	plain := message.Build(g, pairs, 4, message.ShortestPathRouter(g))
	if c := analysis.Congestion(plain); c != 8 {
		t.Fatalf("plain congestion = %d, want 8", c)
	}
	// Congestion-aware: spread over 4 lanes → C = 2.
	smart := GreedyMinMax(g, pairs, 4, Options{})
	if c := analysis.Congestion(smart); c != 2 {
		t.Fatalf("greedy min-max congestion = %d, want 2", c)
	}
	for i := range smart.Msgs {
		if err := smart.Msgs[i].Path.Validate(g, src, dst); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGreedyMinMaxRespectsStretch(t *testing.T) {
	// Stretch 1.0 forbids detours: on the parallel graph all lanes are
	// equal length so spreading still works, but on a graph where the
	// alternates are longer it must fall back to the shortest path.
	g := graph.New(4, 4)
	g.AddNodes(4)
	g.AddEdge(0, 3) // direct: length 1
	g.AddEdge(0, 1) // detour: length 3
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	pairs := []message.Endpoints{{Src: 0, Dst: 3}, {Src: 0, Dst: 3}}
	set := GreedyMinMax(g, pairs, 2, Options{Stretch: 1.0})
	for i := range set.Msgs {
		if len(set.Msgs[i].Path) != 1 {
			t.Fatalf("stretch 1.0 must keep the direct path, got %d hops", len(set.Msgs[i].Path))
		}
	}
	// With stretch 3 the second message may take the detour.
	set = GreedyMinMax(g, pairs, 2, Options{Stretch: 3.0})
	if c := analysis.Congestion(set); c != 1 {
		t.Fatalf("stretch 3: congestion %d, want 1 (detour taken)", c)
	}
}

func TestRebalanceReducesCongestion(t *testing.T) {
	g, src, dst := parallelGraph(4, 3)
	pairs := make([]message.Endpoints, 8)
	for i := range pairs {
		pairs[i] = message.Endpoints{Src: src, Dst: dst}
	}
	set := message.Build(g, pairs, 4, message.ShortestPathRouter(g))
	before := analysis.Congestion(set)
	reroutes, after := Rebalance(set, Options{}, 0)
	if after >= before {
		t.Fatalf("rebalance: %d → %d (reroutes %d)", before, after, reroutes)
	}
	if after != 2 {
		t.Errorf("rebalance should reach the optimum 2, got %d", after)
	}
	// Paths must stay valid.
	for i := range set.Msgs {
		m := set.Msgs[i]
		if err := m.Path.Validate(g, m.Src, m.Dst); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGreedyMinMaxOnButterflyMatchesUniquePaths(t *testing.T) {
	// The butterfly has a unique input→output path, so the selector has
	// no freedom: it must return exactly the bit-fixing paths.
	bf := topology.NewButterfly(16)
	r := rng.New(5)
	var pairs []message.Endpoints
	for src, dst := range r.Perm(16) {
		pairs = append(pairs, message.Endpoints{Src: bf.Input(src), Dst: bf.Output(dst)})
	}
	set := GreedyMinMax(bf.G, pairs, 4, Options{})
	for i, ep := range pairs {
		want := bf.Route(bf.Column(ep.Src), bf.Column(ep.Dst))
		got := set.Msgs[i].Path
		if len(got) != len(want) {
			t.Fatalf("message %d: path length %d, want %d", i, len(got), len(want))
		}
	}
}

func TestGreedyMinMaxNeverWorseThanBFS(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m := topology.NewMesh(5, 5)
		var pairs []message.Endpoints
		for i := 0; i < 20; i++ {
			src := graph.NodeID(r.Intn(25))
			dst := graph.NodeID(r.Intn(25))
			if src == dst {
				continue
			}
			pairs = append(pairs, message.Endpoints{Src: src, Dst: dst})
		}
		if len(pairs) == 0 {
			return true
		}
		plain := message.Build(m.G, pairs, 3, message.ShortestPathRouter(m.G))
		smart := GreedyMinMax(m.G, pairs, 3, Options{})
		// The selector must not increase congestion beyond BFS routing
		// (it can always fall back to shortest paths), modulo the +1
		// slack of greedy sequential placement.
		return analysis.Congestion(smart) <= analysis.Congestion(plain)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"stretch<1":    func() { Options{Stretch: 0.5}.withDefaults() },
		"neg. penalty": func() { Options{Penalty: -1}.withDefaults() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
