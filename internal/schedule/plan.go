// Package schedule implements the paper's Section 2.1 scheduling machinery:
// the Lemma 2.1.5 color refinement (three cases), the Theorem 2.1.6
// refinement pipeline that reduces multiplex size from C down to B, and the
// release-time schedule derived from the final coloring (color class i is
// released at time (i−1)·(L+D−1), so no message ever blocks).
//
// The paper's existence proof is nonconstructive (Lovász Local Lemma). We
// realize it constructively by rejection resampling: draw the same random
// partition the proof draws, check the multiplex condition, and redraw on
// failure — either the whole refinement or only the violated classes
// (Moser–Tardos style). The LLL guarantees each draw succeeds with positive
// probability, and in practice a handful of attempts suffice.
package schedule

import (
	"fmt"
	"math"
)

// CaseID names which condition of Lemma 2.1.5 a refinement step applies.
type CaseID int8

const (
	// Case1 refines multiplex size ms ≤ log D down to B
	// (condition 1: r = 3e(D·ms)^(1/B)·ms/B).
	Case1 CaseID = 1
	// Case2 refines D ≥ ms > log D down to log D
	// (condition 2: r = 32e·ms/log D).
	Case2 CaseID = 2
	// Case3 refines ms > D down to max(D, 15·ln³ ms)
	// (condition 3: r = ms/((1−1/ln ms)·mf)).
	Case3 CaseID = 3
)

func (c CaseID) String() string { return fmt.Sprintf("case%d", int8(c)) }

// StepSpec describes one refinement step of the pipeline: each existing
// color class is split into R new classes, reducing multiplex size from Ms
// to at most Mf.
type StepSpec struct {
	Case CaseID
	Ms   int // multiplex size before the step
	Mf   int // multiplex target after the step
	R    int // subclasses per existing class
}

// Options tunes the pipeline.
type Options struct {
	// B is the number of virtual channels (multiplex target). Must be ≥ 1.
	B int
	// ConstantScale scales the paper's leading constants (3e, 32e, …) in
	// the subclass counts R. 1.0 reproduces the paper exactly; smaller
	// values produce shorter schedules and rely on escalation when the
	// draw fails. Must be > 0; 0 means 1.0.
	ConstantScale float64
	// ResampleWhole redraws the entire refinement on failure instead of
	// only the violated classes (ablation knob; violated-only is default
	// and much faster).
	ResampleWhole bool
	// MaxAttempts bounds resampling iterations per refinement step before
	// R is escalated by 25%. 0 means 64.
	MaxAttempts int
}

func (o Options) withDefaults() Options {
	if o.B < 1 {
		panic(fmt.Sprintf("schedule: B %d < 1", o.B))
	}
	if o.ConstantScale == 0 {
		o.ConstantScale = 1.0
	}
	if o.ConstantScale < 0 {
		panic("schedule: negative ConstantScale")
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 64
	}
	return o
}

// Plan returns the sequence of refinement steps Theorem 2.1.6 prescribes
// for congestion C, dilation D, and B virtual channels. An empty plan means
// the messages already satisfy multiplex size ≤ B (C ≤ B).
//
// The three regimes of the theorem:
//   - C ≤ log D: a single Case1 step (C → B);
//   - log D < C ≤ D: Case2 (C → log D) then Case1 (log D → B);
//   - C > D: iterated Case3 (C → … → D), then Case2, then Case1.
func Plan(c, d, b int, scale float64) []StepSpec {
	if scale <= 0 {
		scale = 1.0
	}
	if c <= b {
		return nil
	}
	// Guard the logarithms for tiny instances: treat log D as at least 1.
	ld := math.Log2(float64(max(d, 2)))
	var steps []StepSpec
	ms := c

	// Phase A (Case 3): bring ms down to ≤ D.
	for ms > d && ms > b {
		lnMs := math.Log(float64(ms))
		mf := int(math.Ceil(15 * lnMs * lnMs * lnMs))
		if mf < d {
			mf = d
		}
		if mf >= ms {
			// 15·ln³ ms has overtaken ms (small instances): the step
			// cannot shrink anything; fall through to phase B with D as
			// the effective target via a plain halving-style Case3 step.
			mf = max(d, b)
			if mf >= ms {
				break
			}
		}
		r := int(math.Ceil(scale * float64(ms) / ((1 - 1/lnMs) * float64(mf))))
		if r < 2 {
			r = 2
		}
		steps = append(steps, StepSpec{Case: Case3, Ms: ms, Mf: mf, R: r})
		ms = mf
	}

	// Phase B (Case 2): bring ms down to ≤ max(log D, B).
	t2 := max(int(math.Ceil(ld)), b)
	if ms > t2 {
		r := int(math.Ceil(scale * 32 * math.E * float64(ms) / float64(t2)))
		if r < 2 {
			r = 2
		}
		steps = append(steps, StepSpec{Case: Case2, Ms: ms, Mf: t2, R: r})
		ms = t2
	}

	// Phase C (Case 1): bring ms down to B.
	if ms > b {
		pow := math.Pow(float64(d)*float64(ms), 1/float64(b))
		r := int(math.Ceil(scale * 3 * math.E * pow * float64(ms) / float64(b)))
		if r < 2 {
			r = 2
		}
		steps = append(steps, StepSpec{Case: Case1, Ms: ms, Mf: b, R: r})
	}
	return steps
}

// PlannedClasses returns the total number of color classes the plan yields
// (the product of the per-step subclass counts).
func PlannedClasses(steps []StepSpec) int {
	k := 1
	for _, s := range steps {
		k *= s.R
	}
	return k
}

// --- closed-form bound evaluators -------------------------------------------
//
// These evaluate the theorem statements (without their hidden constants) so
// experiments can compare measured values against the predicted shapes.

// UpperBound216 evaluates Theorem 2.1.6's schedule-length bound in flit
// steps: (L+D)·C·(D·C)^(1/B)/B when C ≤ log D, else
// (L+D)·C·(D·log D)^(1/B)/B.
func UpperBound216(l, c, d, b int) float64 {
	ld := math.Log2(float64(max(d, 2)))
	inner := float64(d) * ld
	if float64(c) <= ld {
		inner = float64(d) * float64(c)
	}
	return float64(l+d) * float64(c) * math.Pow(inner, 1/float64(b)) / float64(b)
}

// LowerBound221 evaluates Theorem 2.2.1's lower bound in flit steps:
// L·C·D^(1/B)/B.
func LowerBound221(l, c, d, b int) float64 {
	return float64(l) * float64(c) * math.Pow(float64(d), 1/float64(b)) / float64(b)
}

// NaiveBound evaluates the footnote-5 coloring bound: (L+D)·C·D flit steps.
func NaiveBound(l, c, d int) float64 {
	return float64(l+d) * float64(c) * float64(d)
}

// StoreAndForwardBound evaluates the Leighton–Maggs–Rao store-and-forward
// bound translated to flit steps: L·(C+D).
func StoreAndForwardBound(l, c, d int) float64 {
	return float64(l) * float64(c+d)
}

// PredictedSpeedup returns the superlinear speedup factor the paper
// attributes to B virtual channels relative to B = 1: B·D^(1−1/B).
func PredictedSpeedup(d, b int) float64 {
	return float64(b) * math.Pow(float64(d), 1-1/float64(b))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
