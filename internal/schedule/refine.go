package schedule

import (
	"fmt"

	"wormhole/internal/graph"
	"wormhole/internal/message"
	"wormhole/internal/rng"
)

// RefineResult records how one refinement step went.
type RefineResult struct {
	Spec       StepSpec
	Attempts   int // resampling rounds used
	FinalR     int // R after any escalation
	Escalated  bool
	NumClasses int // distinct non-empty classes after the step
}

// refiner carries the incidence structure needed to check multiplex sizes
// quickly across resampling rounds.
type refiner struct {
	set  *message.Set
	rnd  *rng.Source
	opts Options
}

// refine applies one StepSpec to the coloring: every existing class is
// partitioned into spec.R fresh classes uniformly at random, redrawing (all
// classes, or only violated ones, per the options) until every (edge, new
// class) pair carries at most spec.Mf messages. The coloring slice is
// rewritten in place with new dense class IDs; the number of distinct new
// classes is returned in the result.
func (rf *refiner) refine(color []int, spec StepSpec) (RefineResult, error) {
	res := RefineResult{Spec: spec, FinalR: spec.R}
	n := rf.set.Len()
	if n == 0 {
		return res, nil
	}

	// Remap old colors densely so new class IDs are oldDense*r + j.
	oldDense := densify(color)
	r := spec.R

	newColor := make([]int, n)
	draw := func(i int) { newColor[i] = oldDense[i]*r + rf.rnd.Intn(r) }
	for i := 0; i < n; i++ {
		draw(i)
	}

	attempts := 0
	for {
		attempts++
		violated := rf.violatedClasses(newColor, spec.Mf)
		if len(violated) == 0 {
			break
		}
		if attempts >= rf.opts.MaxAttempts {
			// Escalate: more subclasses make the condition easier. The
			// paper's constants satisfy the LLL so escalation should not
			// trigger with ConstantScale = 1; with aggressive scaling it
			// is the safety valve that keeps Build total.
			r = r + (r+3)/4
			res.Escalated = true
			res.FinalR = r
			attempts = 0
			for i := 0; i < n; i++ {
				newColor[i] = oldDense[i]*r + rf.rnd.Intn(r)
			}
			continue
		}
		if rf.opts.ResampleWhole {
			for i := 0; i < n; i++ {
				newColor[i] = oldDense[i]*r + rf.rnd.Intn(r)
			}
			continue
		}
		// Moser–Tardos style: redraw only messages in violated classes.
		for i := 0; i < n; i++ {
			if _, bad := violated[newColor[i]]; bad {
				newColor[i] = oldDense[i]*r + rf.rnd.Intn(r)
			}
		}
	}
	res.Attempts = attempts
	copy(color, newColor)
	res.NumClasses = len(densifyInPlaceCount(color))
	return res, nil
}

// violatedClasses returns the set of new-class IDs that have some edge
// carrying more than mf of their messages.
func (rf *refiner) violatedClasses(color []int, mf int) map[int]struct{} {
	type key struct {
		e graph.EdgeID
		c int
	}
	counts := make(map[key]int)
	violated := make(map[int]struct{})
	for i := range rf.set.Msgs {
		c := color[i]
		for _, e := range rf.set.Msgs[i].Path {
			k := key{e, c}
			counts[k]++
			if counts[k] > mf {
				violated[c] = struct{}{}
			}
		}
	}
	return violated
}

// densify maps arbitrary class IDs to dense 0..k-1 IDs (first-seen order)
// and returns the remapped copy.
func densify(color []int) []int {
	remap := make(map[int]int)
	out := make([]int, len(color))
	for i, c := range color {
		d, ok := remap[c]
		if !ok {
			d = len(remap)
			remap[c] = d
		}
		out[i] = d
	}
	return out
}

// densifyInPlaceCount renumbers color in place to dense IDs and returns the
// remap table (its size is the class count).
func densifyInPlaceCount(color []int) map[int]int {
	remap := make(map[int]int)
	for i, c := range color {
		d, ok := remap[c]
		if !ok {
			d = len(remap)
			remap[c] = d
		}
		color[i] = d
	}
	return remap
}

// validateStep double-checks a finished refinement against the target (used
// by tests and by Build's paranoia mode).
func validateStep(s *message.Set, color []int, mf int) error {
	type key struct {
		e graph.EdgeID
		c int
	}
	counts := make(map[key]int)
	for i := range s.Msgs {
		for _, e := range s.Msgs[i].Path {
			k := key{e, color[i]}
			counts[k]++
			if counts[k] > mf {
				return fmt.Errorf("schedule: class %d has %d > %d messages on edge %d", color[i], counts[k], mf, e)
			}
		}
	}
	return nil
}
