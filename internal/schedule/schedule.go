package schedule

import (
	"fmt"

	"wormhole/internal/analysis"
	"wormhole/internal/message"
	"wormhole/internal/rng"
	"wormhole/internal/telemetry"
	"wormhole/internal/vcsim"
)

// Schedule is the output of the Theorem 2.1.6 construction: a coloring of
// the messages with multiplex size ≤ B and the release times derived from
// it. Class i is released at time i·Spacing, where Spacing = L+D−1 is long
// enough that a class drains completely before the next one starts.
type Schedule struct {
	Colors     []int // per-message class, dense 0..NumClasses-1
	NumClasses int
	Spacing    int   // L+D−1
	Releases   []int // per-message release times (Colors[i]·Spacing)
	LengthUB   int   // guaranteed makespan: NumClasses·Spacing

	// Provenance.
	C, D, L, B int
	Steps      []RefineResult // one per refinement step applied
	Planned    []StepSpec     // the plan that was executed
}

// Build runs the refinement pipeline on the message set and returns the
// schedule. It panics on non-edge-simple inputs (the theorem's
// precondition) and returns an error only on internal validation failure.
func Build(s *message.Set, opts Options, r *rng.Source) (*Schedule, error) {
	opts = opts.withDefaults()
	if !s.EdgeSimple() {
		panic("schedule: Build requires edge-simple paths (Theorem 2.1.6 precondition)")
	}
	c := analysis.Congestion(s)
	d := analysis.Dilation(s)
	l := s.MaxLength()
	n := s.Len()

	sched := &Schedule{
		Colors: make([]int, n),
		C:      c, D: d, L: l, B: opts.B,
	}
	sched.Spacing = l + d - 1
	if sched.Spacing < 1 {
		sched.Spacing = 1
	}

	plan := Plan(c, d, opts.B, opts.ConstantScale)
	sched.Planned = plan
	rf := &refiner{set: s, rnd: r, opts: opts}
	for _, spec := range plan {
		step, err := rf.refine(sched.Colors, spec)
		if err != nil {
			return nil, err
		}
		if err := validateStep(s, sched.Colors, spec.Mf); err != nil {
			return nil, fmt.Errorf("schedule: step %v failed validation: %w", spec, err)
		}
		sched.Steps = append(sched.Steps, step)
	}
	// Densify the final coloring and derive releases.
	remap := densifyInPlaceCount(sched.Colors)
	sched.NumClasses = len(remap)
	if sched.NumClasses == 0 {
		sched.NumClasses = 1 // empty message set: one (empty) class
	}
	sched.Releases = make([]int, n)
	for i, col := range sched.Colors {
		sched.Releases[i] = col * sched.Spacing
	}
	sched.LengthUB = sched.NumClasses * sched.Spacing

	if ms := analysis.MultiplexSize(s, sched.Colors); ms > opts.B && n > 0 {
		return nil, fmt.Errorf("schedule: final multiplex size %d exceeds B=%d", ms, opts.B)
	}
	return sched, nil
}

// Verify executes the schedule on the wormhole simulator and checks the
// Theorem 2.1.6 guarantees: every message delivered, zero stalls (no
// message is ever blocked), and makespan within the LengthUB bound. The
// simulation result is returned for inspection.
func Verify(s *message.Set, sched *Schedule) (vcsim.Result, error) {
	return VerifyObserved(s, sched, nil)
}

// VerifyObserved is Verify with a telemetry registry attached to the
// verification run; m == nil behaves exactly like Verify (zero cost).
func VerifyObserved(s *message.Set, sched *Schedule, m *telemetry.Metrics) (vcsim.Result, error) {
	res := vcsim.Run(s, sched.Releases, vcsim.Config{
		VirtualChannels: sched.B,
		Arbitration:     vcsim.ArbByID,
		Metrics:         m,
	})
	if !res.AllDelivered() {
		return res, fmt.Errorf("schedule: only %d/%d messages delivered", res.Delivered, s.Len())
	}
	if res.Deadlocked {
		return res, fmt.Errorf("schedule: deadlock under a supposedly conflict-free schedule")
	}
	if res.TotalStalls != 0 {
		return res, fmt.Errorf("schedule: %d stalls; color classes must never block", res.TotalStalls)
	}
	if res.Steps > sched.LengthUB {
		return res, fmt.Errorf("schedule: makespan %d exceeds bound %d", res.Steps, sched.LengthUB)
	}
	return res, nil
}

// NaiveSchedule builds the footnote-5 baseline: greedily color the worm
// conflict graph (no two path-sharing messages in one class) and release
// class i at i·(L+D−1). It needs only B = 1 but uses up to D·(C−1)+1
// classes.
func NaiveSchedule(s *message.Set) *Schedule {
	adj := analysis.ConflictGraph(s)
	colors, k := analysis.GreedyColor(adj)
	d := analysis.Dilation(s)
	l := s.MaxLength()
	spacing := l + d - 1
	if spacing < 1 {
		spacing = 1
	}
	if k == 0 {
		k = 1
	}
	releases := make([]int, s.Len())
	for i, c := range colors {
		releases[i] = c * spacing
	}
	return &Schedule{
		Colors:     colors,
		NumClasses: k,
		Spacing:    spacing,
		Releases:   releases,
		LengthUB:   k * spacing,
		C:          analysis.Congestion(s),
		D:          d,
		L:          l,
		B:          1,
	}
}
