package schedule

import (
	"math"
	"testing"
	"testing/quick"

	"wormhole/internal/analysis"
	"wormhole/internal/graph"
	"wormhole/internal/message"
	"wormhole/internal/rng"
	"wormhole/internal/topology"
	"wormhole/internal/vcsim"
)

func butterflyWorkload(n, q, l int, seed uint64) *message.Set {
	r := rng.New(seed)
	bf := topology.NewButterfly(n)
	s := message.NewSet(bf.G)
	for rep := 0; rep < q; rep++ {
		for src, dst := range r.Perm(n) {
			s.Add(bf.Input(src), bf.Output(dst), l, bf.Route(src, dst))
		}
	}
	return s
}

func TestPlanRegimes(t *testing.T) {
	// C ≤ B: no refinement needed.
	if p := Plan(3, 100, 4, 1); p != nil {
		t.Errorf("C ≤ B plan = %v, want empty", p)
	}
	// C ≤ log D: a single Case1 step.
	p := Plan(5, 1024, 2, 1) // log D = 10 ≥ C = 5
	if len(p) != 1 || p[0].Case != Case1 || p[0].Ms != 5 || p[0].Mf != 2 {
		t.Errorf("small-C plan = %v", p)
	}
	// log D < C ≤ D: Case2 then Case1.
	p = Plan(64, 256, 2, 1) // log D = 8 < 64 ≤ 256
	if len(p) != 2 || p[0].Case != Case2 || p[1].Case != Case1 {
		t.Errorf("mid-C plan = %v", p)
	}
	if p[0].Mf != 8 {
		t.Errorf("Case2 target = %d, want log D = 8", p[0].Mf)
	}
	// C > D: Case3 first.
	p = Plan(10000, 16, 2, 1)
	if len(p) < 3 || p[0].Case != Case3 {
		t.Errorf("large-C plan = %v", p)
	}
	// Multiplex targets must be decreasing and end at B.
	last := 10001
	for _, s := range p {
		if s.Ms >= last && last != 10001 {
			t.Errorf("non-decreasing ms in %v", p)
		}
		if s.Mf >= s.Ms {
			t.Errorf("step %v does not shrink", s)
		}
		last = s.Ms
	}
	if p[len(p)-1].Mf != 2 {
		t.Errorf("plan must end at B: %v", p)
	}
}

func TestPlanCase2TargetsRespectB(t *testing.T) {
	// When B exceeds log D, phase B must target B, not log D.
	p := Plan(64, 16, 8, 1) // log D = 4 < B = 8
	for _, s := range p {
		if s.Mf < 8 {
			t.Errorf("step %v overshoots below B", s)
		}
	}
	if p[len(p)-1].Mf != 8 {
		t.Errorf("plan must end at B: %v", p)
	}
}

func TestPlannedClasses(t *testing.T) {
	p := []StepSpec{{R: 3}, {R: 5}}
	if PlannedClasses(p) != 15 {
		t.Error("PlannedClasses")
	}
	if PlannedClasses(nil) != 1 {
		t.Error("empty plan = 1 class")
	}
}

func TestBoundEvaluators(t *testing.T) {
	// Monotone decreasing in B.
	prevU, prevL := math.Inf(1), math.Inf(1)
	for b := 1; b <= 8; b++ {
		u := UpperBound216(32, 16, 16, b)
		l := LowerBound221(32, 16, 16, b)
		if u >= prevU || l >= prevL {
			t.Fatalf("bounds not decreasing at B=%d", b)
		}
		prevU, prevL = u, l
	}
	// B=1 closed forms: UB = (L+D)·C·(D·logD); LB = L·C·D.
	if got, want := LowerBound221(32, 16, 16, 1), 32.0*16*16; got != want {
		t.Errorf("LB(B=1) = %v, want %v", got, want)
	}
	if got, want := NaiveBound(32, 16, 16), (32.0+16)*16*16; got != want {
		t.Errorf("naive = %v, want %v", got, want)
	}
	if got, want := StoreAndForwardBound(32, 16, 16), 32.0*32; got != want {
		t.Errorf("SAF = %v, want %v", got, want)
	}
	// Superlinear speedup: B·D^(1−1/B) > B for D > 1, B > 1.
	if PredictedSpeedup(64, 2) <= 2 {
		t.Error("predicted speedup must exceed B")
	}
	if PredictedSpeedup(64, 1) != 1 {
		t.Error("B=1 speedup is 1")
	}
}

func TestBuildAndVerify(t *testing.T) {
	set := butterflyWorkload(32, 6, 20, 5)
	c := analysis.Congestion(set)
	d := analysis.Dilation(set)
	for _, b := range []int{1, 2, 3, 4} {
		sched, err := Build(set, Options{B: b, ConstantScale: 0.05}, rng.New(uint64(b)*13))
		if err != nil {
			t.Fatalf("B=%d: %v", b, err)
		}
		if sched.C != c || sched.D != d {
			t.Errorf("B=%d: schedule params C=%d D=%d, want %d %d", b, sched.C, sched.D, c, d)
		}
		if ms := analysis.MultiplexSize(set, sched.Colors); ms > b {
			t.Fatalf("B=%d: final multiplex %d", b, ms)
		}
		res, err := Verify(set, sched)
		if err != nil {
			t.Fatalf("B=%d verify: %v", b, err)
		}
		if res.TotalStalls != 0 {
			t.Fatalf("B=%d: %d stalls", b, res.TotalStalls)
		}
		if res.Steps > sched.LengthUB {
			t.Fatalf("B=%d: makespan %d > bound %d", b, res.Steps, sched.LengthUB)
		}
	}
}

func TestClassCountShrinksWithB(t *testing.T) {
	set := butterflyWorkload(32, 8, 16, 9)
	prev := 1 << 30
	for _, b := range []int{1, 2, 4} {
		sched, err := Build(set, Options{B: b, ConstantScale: 0.05}, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		if sched.NumClasses >= prev {
			t.Errorf("B=%d: classes %d did not shrink (prev %d)", b, sched.NumClasses, prev)
		}
		prev = sched.NumClasses
	}
}

func TestBuildWithPaperConstants(t *testing.T) {
	// Full paper constants on a small instance: classes are many but the
	// construction must succeed without escalation (the LLL condition
	// holds with margin).
	set := butterflyWorkload(8, 3, 8, 2)
	sched, err := Build(set, Options{B: 2, ConstantScale: 1.0}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range sched.Steps {
		if st.Escalated {
			t.Errorf("paper constants should not need escalation: %+v", st)
		}
	}
	if _, err := Verify(set, sched); err != nil {
		t.Fatal(err)
	}
}

func TestBuildAggressiveScaleEscalates(t *testing.T) {
	// A ridiculously small scale forces escalation but must still
	// terminate with a valid schedule.
	set := butterflyWorkload(16, 6, 8, 3)
	sched, err := Build(set, Options{B: 1, ConstantScale: 0.001, MaxAttempts: 4}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if ms := analysis.MultiplexSize(set, sched.Colors); ms > 1 {
		t.Fatalf("multiplex %d after escalation", ms)
	}
	if _, err := Verify(set, sched); err != nil {
		t.Fatal(err)
	}
}

func TestResampleWholeAlsoWorks(t *testing.T) {
	set := butterflyWorkload(16, 4, 8, 4)
	sched, err := Build(set, Options{B: 2, ConstantScale: 0.05, ResampleWhole: true}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(set, sched); err != nil {
		t.Fatal(err)
	}
}

func TestCongestionAtMostBIsOneClass(t *testing.T) {
	// A single permutation on the butterfly has congestion ≤ some small
	// value; with B ≥ C everything fits in one class.
	set := butterflyWorkload(16, 1, 8, 6)
	c := analysis.Congestion(set)
	sched, err := Build(set, Options{B: c}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if sched.NumClasses != 1 {
		t.Errorf("B ≥ C should give one class, got %d", sched.NumClasses)
	}
	res, err := Verify(set, sched)
	if err != nil {
		t.Fatal(err)
	}
	if want := sched.D + sched.L - 1; res.Steps != want {
		t.Errorf("single class makespan %d, want %d", res.Steps, want)
	}
}

func TestNaiveSchedule(t *testing.T) {
	set := butterflyWorkload(16, 4, 10, 8)
	naive := NaiveSchedule(set)
	if ms := analysis.MultiplexSize(set, naive.Colors); ms > 1 {
		t.Fatalf("naive classes have multiplex %d", ms)
	}
	res, err := Verify(set, naive)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDelivered() {
		t.Fatal("naive schedule undelivered")
	}
	// Class count within the footnote-5 worst case D(C−1)+1.
	c := analysis.Congestion(set)
	d := analysis.Dilation(set)
	if naive.NumClasses > d*(c-1)+1 {
		t.Errorf("naive classes %d exceed D(C-1)+1 = %d", naive.NumClasses, d*(c-1)+1)
	}
}

func TestBuildRejectsNonEdgeSimple(t *testing.T) {
	g := topology.NewLinearArray(3)
	set := message.NewSet(g)
	e01 := g.FindEdge(0, 1)
	e10 := g.FindEdge(1, 0)
	set.Add(0, 1, 2, graph.Path{e01, e10, e01})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-edge-simple input")
		}
	}()
	_, _ = Build(set, Options{B: 1}, rng.New(1))
}

// TestScheduleRescuesDeadlockProneWorkload is the offline scheduler's
// strongest property: on cyclic-pressure torus traffic where greedy
// wormhole routing deadlocks, the Theorem 2.1.6 schedule still delivers
// everything stall-free — conflict-freedom subsumes deadlock-freedom.
func TestScheduleRescuesDeadlockProneWorkload(t *testing.T) {
	m := topology.NewTorus(8)
	set := message.NewSet(m.G)
	// Every node sends 7 hops clockwise: dimension-order routes on the
	// ring wrap and the dependency graph is cyclic.
	for src := 0; src < 8; src++ {
		dst := graph.NodeID((src + 7) % 8)
		set.Add(graph.NodeID(src), dst, 10, m.DimensionOrderRoute(graph.NodeID(src), dst))
	}
	if analysis.ChannelDependencyAcyclic(set) {
		t.Skip("expected a cyclic dependency workload")
	}
	greedy := vcsim.Run(set, nil, vcsim.Config{VirtualChannels: 1})
	if !greedy.Deadlocked {
		t.Fatal("greedy routing should deadlock on wrapping torus traffic")
	}
	sched, err := Build(set, Options{B: 1, ConstantScale: 0.2}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Verify(set, sched)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDelivered() || res.Deadlocked {
		t.Fatal("scheduled routing must deliver where greedy deadlocks")
	}
}

// TestMixedMessageLengths checks the scheduler handles heterogeneous L:
// spacing uses the maximum length so shorter worms simply finish early.
func TestMixedMessageLengths(t *testing.T) {
	bf := topology.NewButterfly(16)
	r := rng.New(21)
	set := message.NewSet(bf.G)
	for rep := 0; rep < 4; rep++ {
		for src, dst := range r.Perm(16) {
			set.Add(bf.Input(src), bf.Output(dst), 2+r.Intn(20), bf.Route(src, dst))
		}
	}
	sched, err := Build(set, Options{B: 2, ConstantScale: 0.1}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if sched.L != set.MaxLength() {
		t.Errorf("schedule L = %d, want max length %d", sched.L, set.MaxLength())
	}
	if _, err := Verify(set, sched); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleReleasesMatchColors(t *testing.T) {
	f := func(seed uint64) bool {
		set := butterflyWorkload(8, 2, 6, seed)
		sched, err := Build(set, Options{B: 1, ConstantScale: 0.1}, rng.New(seed))
		if err != nil {
			return false
		}
		for i, c := range sched.Colors {
			if sched.Releases[i] != c*sched.Spacing {
				return false
			}
			if c < 0 || c >= sched.NumClasses {
				return false
			}
		}
		return sched.LengthUB == sched.NumClasses*sched.Spacing
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
