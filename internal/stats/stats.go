// Package stats supplies the small statistical toolkit the experiment
// harness needs: summaries with confidence intervals, log-log growth
// exponent fits (for checking the paper's D^(1/B)-style shapes), and
// aligned text tables for printing paper-style results.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. It returns a zero Summary for empty
// input.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Median = percentileSorted(sorted, 0.5)
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// CI95 returns the half-width of an approximate 95% confidence interval
// for the mean (normal approximation; fine for the N ≥ 5 trials the
// harness uses).
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Std / math.Sqrt(float64(s.N))
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of xs by linear
// interpolation.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// GrowthExponent fits y = a·x^k by least squares on (log x, log y) and
// returns the exponent k with the fit's R². All inputs must be positive.
// The experiments use it to test claims like "time grows as D^(1/B)".
func GrowthExponent(xs, ys []float64) (k, r2 float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN(), 0
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return math.NaN(), 0
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	return linearFit(lx, ly)
}

// linearFit returns the least-squares slope of y on x and the R² of the
// fit.
func linearFit(xs, ys []float64) (slope, r2 float64) {
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return math.NaN(), 0
	}
	slope = sxy / sxx
	if syy == 0 {
		return slope, 1
	}
	r2 = sxy * sxy / (sxx * syy)
	return slope, r2
}

// Histogram bins xs into k equal-width buckets over [min, max] and returns
// the counts plus the bucket boundaries (k+1 entries).
func Histogram(xs []float64, k int) (counts []int, bounds []float64) {
	if k < 1 || len(xs) == 0 {
		return nil, nil
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	counts = make([]int, k)
	bounds = make([]float64, k+1)
	w := (hi - lo) / float64(k)
	for i := 0; i <= k; i++ {
		bounds[i] = lo + w*float64(i)
	}
	for _, x := range xs {
		b := int((x - lo) / w)
		if b >= k {
			b = k - 1
		}
		counts[b]++
	}
	return counts, bounds
}

// GeometricMean returns the geometric mean of positive xs (NaN otherwise).
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Ratio returns a/b, guarding against division by zero with NaN.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}

// FormatFloat renders a float compactly for tables: integers without
// decimals, large values with thousands grouping left off (plain), small
// values with 3 significant digits.
func FormatFloat(x float64) string {
	switch {
	case math.IsNaN(x):
		return "-"
	case x == math.Trunc(x) && math.Abs(x) < 1e15:
		return fmt.Sprintf("%.0f", x)
	case math.Abs(x) >= 100:
		return fmt.Sprintf("%.1f", x)
	default:
		return fmt.Sprintf("%.3g", x)
	}
}
