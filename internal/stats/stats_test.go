package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Std-2.138) > 0.01 {
		t.Errorf("std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Error("min/max")
	}
	if s.Median != 4.5 {
		t.Errorf("median = %v", s.Median)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Error("empty summary")
	}
}

func TestCI95(t *testing.T) {
	s := Summarize([]float64{1, 1, 1, 1})
	if s.CI95() != 0 {
		t.Error("constant sample CI should be 0")
	}
	if Summarize([]float64{5}).CI95() != 0 {
		t.Error("single sample CI should be 0")
	}
	wide := Summarize([]float64{0, 10})
	if wide.CI95() <= 0 {
		t.Error("CI must be positive for spread data")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if Percentile(xs, 0) != 10 || Percentile(xs, 1) != 40 {
		t.Error("extremes")
	}
	if got := Percentile(xs, 0.5); got != 25 {
		t.Errorf("median = %v", got)
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile")
	}
}

func TestGrowthExponentExactPowerLaw(t *testing.T) {
	for _, k := range []float64{0.5, 1, 2, 3} {
		var xs, ys []float64
		for x := 1.0; x <= 32; x *= 2 {
			xs = append(xs, x)
			ys = append(ys, 7*math.Pow(x, k))
		}
		got, r2 := GrowthExponent(xs, ys)
		if math.Abs(got-k) > 1e-9 {
			t.Errorf("exponent = %v, want %v", got, k)
		}
		if math.Abs(r2-1) > 1e-9 {
			t.Errorf("R² = %v, want 1", r2)
		}
	}
}

func TestGrowthExponentRejectsBadInput(t *testing.T) {
	if k, _ := GrowthExponent([]float64{1, 2}, []float64{1}); !math.IsNaN(k) {
		t.Error("length mismatch")
	}
	if k, _ := GrowthExponent([]float64{1, -2}, []float64{1, 2}); !math.IsNaN(k) {
		t.Error("negative input")
	}
	if k, _ := GrowthExponent([]float64{3, 3}, []float64{1, 2}); !math.IsNaN(k) {
		t.Error("zero-variance x")
	}
}

func TestHistogram(t *testing.T) {
	counts, bounds := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if len(counts) != 5 || len(bounds) != 6 {
		t.Fatal("shapes")
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10 {
		t.Errorf("histogram lost values: %v", counts)
	}
	if c, _ := Histogram(nil, 3); c != nil {
		t.Error("empty histogram")
	}
	// Constant data must not divide by zero.
	c, _ := Histogram([]float64{5, 5, 5}, 2)
	if c[0]+c[1] != 3 {
		t.Error("constant data histogram")
	}
}

func TestGeometricMean(t *testing.T) {
	if g := GeometricMean([]float64{1, 4, 16}); math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean = %v", g)
	}
	if !math.IsNaN(GeometricMean([]float64{1, -1})) {
		t.Error("negative input")
	}
	if !math.IsNaN(GeometricMean(nil)) {
		t.Error("empty input")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Error("ratio")
	}
	if !math.IsNaN(Ratio(1, 0)) {
		t.Error("zero denominator")
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:      "3",
		3.5:    "3.5",
		123.45: "123.5",
		0.125:  "0.125",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
	if FormatFloat(math.NaN()) != "-" {
		t.Error("NaN formatting")
	}
}

func TestSummarizeProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		if s.Min > s.Median || s.Median > s.Max {
			return false
		}
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		return s.Std >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("My Title", "a", "bb", "ccc")
	tab.AddRow(1, 2.5, "x")
	tab.AddRow("long-cell", 0.333333, true)
	out := tab.String()
	if !strings.Contains(out, "My Title") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "long-cell") || !strings.Contains(out, "0.333") {
		t.Errorf("cells missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("line count %d:\n%s", len(lines), out)
	}
	if tab.NumRows() != 2 {
		t.Error("NumRows")
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("Title Is Not Emitted", "x", "y")
	tab.AddRow(1, "a,b") // comma must be quoted
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, "Title") {
		t.Error("CSV must not contain the title")
	}
	if !strings.HasPrefix(out, "x,y\n") {
		t.Errorf("CSV header wrong:\n%s", out)
	}
	if !strings.Contains(out, `"a,b"`) {
		t.Errorf("comma cell not quoted:\n%s", out)
	}
	if tab.Title() != "Title Is Not Emitted" {
		t.Error("Title accessor")
	}
}

func TestTableHandlesShortRows(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow(1)       // missing cell
	tab.AddRow(1, 2, 3) // extra cell dropped
	out := tab.String()
	if strings.Contains(out, "3") {
		t.Errorf("extra cell leaked:\n%s", out)
	}
}
