package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders an aligned, paper-style text table.
// The zero value is unusable; construct with NewTable.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row. Cells beyond the header count are dropped; missing
// cells render empty. Values are stringified with FormatFloat for floats
// and fmt.Sprint otherwise.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i >= len(cells) {
			continue
		}
		switch v := cells[i].(type) {
		case float64:
			row[i] = FormatFloat(v)
		case float32:
			row[i] = FormatFloat(float64(v))
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Title returns the table's title line.
func (t *Table) Title() string { return t.title }

// WriteCSV emits the table as RFC-4180 CSV (headers first, no title
// line) for downstream plotting tools.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
