package telemetry

import (
	"bufio"
	"fmt"
	"io"
)

// WriteChrome renders events as Chrome trace-event JSON (the format consumed
// by Perfetto and chrome://tracing). One flit step maps to one microsecond of
// trace time.
//
// Layout: each message is a thread (tid = message ID) under pid 0 ("worms"),
// with a duration slice from inject to deliver/drop and instant events for
// every advance, park and wake. Credit events land under pid 1 ("edges") on
// tid = edge ID. The output is deterministic: events are emitted in recorded
// order with fixed field ordering.
func WriteChrome(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(s)
	}
	// Perfetto wants process/thread metadata before samples reference them.
	emit(`{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"worms"}}`)
	emit(`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"edges"}}`)
	open := map[int32]bool{} // messages with an unclosed duration slice
	for _, ev := range events {
		switch ev.Kind {
		case EvInject:
			emit(fmt.Sprintf(`{"name":"worm %d","ph":"B","ts":%d,"pid":0,"tid":%d,"args":{"path_len":%d}}`,
				ev.Msg, ev.Time, ev.Msg, ev.Arg))
			open[ev.Msg] = true
		case EvAdvance:
			emit(fmt.Sprintf(`{"name":"advance","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d,"args":{"frontier":%d}}`,
				ev.Time, ev.Msg, ev.Arg))
		case EvPark:
			emit(fmt.Sprintf(`{"name":"park","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d,"args":{"edge":%d}}`,
				ev.Time, ev.Msg, ev.Arg))
		case EvWake:
			emit(fmt.Sprintf(`{"name":"wake","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d,"args":{"edge":%d}}`,
				ev.Time, ev.Msg, ev.Arg))
		case EvDeliver:
			if open[ev.Msg] {
				emit(fmt.Sprintf(`{"ph":"E","ts":%d,"pid":0,"tid":%d,"args":{"latency":%d}}`,
					ev.Time, ev.Msg, ev.Arg))
				delete(open, ev.Msg)
			} else {
				emit(fmt.Sprintf(`{"name":"deliver","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d,"args":{"latency":%d}}`,
					ev.Time, ev.Msg, ev.Arg))
			}
		case EvDrop:
			if open[ev.Msg] {
				emit(fmt.Sprintf(`{"ph":"E","ts":%d,"pid":0,"tid":%d,"args":{"dropped_at":%d}}`,
					ev.Time, ev.Msg, ev.Arg))
				delete(open, ev.Msg)
			} else {
				emit(fmt.Sprintf(`{"name":"drop","ph":"i","s":"t","ts":%d,"pid":0,"tid":%d,"args":{"frontier":%d}}`,
					ev.Time, ev.Msg, ev.Arg))
			}
		case EvCredit:
			emit(fmt.Sprintf(`{"name":"credit","ph":"i","s":"t","ts":%d,"pid":1,"tid":%d,"args":{"occ":%d}}`,
				ev.Time, ev.Msg, ev.Arg))
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}
