package telemetry

// Binary serialization of the Metrics registry, used by the simulator's
// checkpoint codec (vcsim.Sim.Snapshot) so a restored run resumes its
// flight-recorder totals instead of restarting them from zero.
//
// The format is versioned and self-describing enough to survive counter
// slots being appended (the slot list is append-only by contract): the
// encoded slot count is stored, a newer reader zero-fills slots the
// writer did not know about, and an older reader rejects the blob
// rather than misattribute counters.

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// metricsCodecVersion is bumped whenever the encoding below changes
// incompatibly. Appending counter slots does NOT bump it: the slot
// count is encoded explicitly. v2 added the per-edge fault-time
// accumulator as a fifth edge array.
const metricsCodecVersion = 2

// ErrMetricsCodec is wrapped by every decode failure in
// (*Metrics).UnmarshalBinary.
var ErrMetricsCodec = errors.New("telemetry: bad metrics encoding")

// MarshalBinary encodes the full registry state — counters, histogram,
// gauges and per-edge accumulators — as a little-endian binary blob.
// It never fails; the error return satisfies encoding.BinaryMarshaler.
func (m *Metrics) MarshalBinary() ([]byte, error) {
	n := len(m.edgeStall)
	buf := make([]byte, 0, 8+8*(int(NumCounters)+jumpBuckets+8)+40*n)
	u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	i64 := func(v int64) { u64(uint64(v)) }

	u64(uint64(metricsCodecVersion))
	u64(uint64(NumCounters))
	for i := Counter(0); i < NumCounters; i++ {
		i64(m.ctr[i])
	}
	u64(uint64(jumpBuckets))
	for _, v := range m.jump {
		i64(v)
	}
	i64(m.gaugeSteps)
	i64(m.dirtySum)
	i64(m.dirtyMax)
	i64(m.parkedSum)
	i64(m.parkedMax)
	i64(m.arenaChunks)
	i64(m.arenaCapacity)
	i64(m.horizon)
	u64(uint64(n))
	for _, s := range [][]int64{m.edgeStall, m.occInt, m.lastOcc, m.lastT, m.edgeFault} {
		for _, v := range s {
			i64(v)
		}
	}
	return buf, nil
}

// UnmarshalBinary replaces m's state with the blob's. Counter slots the
// writer did not know about (a blob from an older binary) are zeroed;
// slots this binary does not know about make the decode fail.
func (m *Metrics) UnmarshalBinary(data []byte) error {
	pos := 0
	fail := func(what string) error {
		return fmt.Errorf("%w: %s at offset %d", ErrMetricsCodec, what, pos)
	}
	u64 := func() (uint64, bool) {
		if pos+8 > len(data) {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(data[pos:])
		pos += 8
		return v, true
	}
	i64s := func(dst []int64) bool {
		for i := range dst {
			v, ok := u64()
			if !ok {
				return false
			}
			dst[i] = int64(v)
		}
		return true
	}

	ver, ok := u64()
	if !ok || ver != metricsCodecVersion {
		return fail("unsupported version")
	}
	nc, ok := u64()
	if !ok || nc > uint64(NumCounters) {
		return fail("counter slot count")
	}
	m.ctr = [NumCounters]int64{}
	if !i64s(m.ctr[:nc]) {
		return fail("counters")
	}
	nj, ok := u64()
	if !ok || nj != jumpBuckets {
		return fail("jump bucket count")
	}
	if !i64s(m.jump[:]) {
		return fail("jump histogram")
	}
	scalars := []*int64{
		&m.gaugeSteps, &m.dirtySum, &m.dirtyMax, &m.parkedSum,
		&m.parkedMax, &m.arenaChunks, &m.arenaCapacity, &m.horizon,
	}
	for _, p := range scalars {
		v, ok := u64()
		if !ok {
			return fail("gauges")
		}
		*p = int64(v)
	}
	ne, ok := u64()
	if !ok || ne > uint64(len(data)/8) {
		return fail("edge count")
	}
	m.edgeStall, m.occInt, m.lastOcc, m.lastT, m.edgeFault = nil, nil, nil, nil, nil
	m.EnsureEdges(int(ne))
	for _, s := range [][]int64{m.edgeStall, m.occInt, m.lastOcc, m.lastT, m.edgeFault} {
		if !i64s(s) {
			return fail("edge accumulators")
		}
	}
	if pos != len(data) {
		return fail("trailing bytes")
	}
	return nil
}
