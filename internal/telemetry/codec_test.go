package telemetry

import (
	"encoding/binary"
	"errors"
	"reflect"
	"testing"
)

// populatedMetrics builds a registry with every serialized field
// non-zero, so a round-trip that drops a field cannot pass by luck.
func populatedMetrics() *Metrics {
	m := NewMetrics()
	m.EnsureEdges(5)
	for i := Counter(0); i < NumCounters; i++ {
		m.Add(i, int64(i)*7+3)
	}
	for d := int64(1); d < 1<<20; d <<= 3 {
		m.Jump(d)
	}
	m.StepGauges(4, 9)
	m.StepGauges(2, 1)
	m.Arena(11, 64)
	for e := int32(0); e < 5; e++ {
		m.EdgeStall(CtrStallLaneCredit, e)
		m.StallSpan(CtrStallHeadOfLine, e, int64(e)+2)
		m.EdgeOccupancy(e, int64(e%3), int64(10+e))
	}
	return m
}

func TestMetricsCodecRoundTrip(t *testing.T) {
	m := populatedMetrics()
	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	got := NewMetrics()
	// Pre-dirty the destination: Unmarshal must replace, not merge.
	got.Add(0, 999)
	got.EnsureEdges(2)
	got.EdgeStall(CtrStallLaneCredit, 1)
	if err := got.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("round-trip diverged:\nwant %+v\ngot  %+v", m, got)
	}
	if !reflect.DeepEqual(m.Snapshot(), got.Snapshot()) {
		t.Error("snapshots diverged after round-trip")
	}
}

func TestMetricsCodecRoundTripNoEdges(t *testing.T) {
	m := NewMetrics()
	m.Inc(CtrParks)
	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got := NewMetrics()
	if err := got.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Error("edge-free round-trip diverged")
	}
}

// An older writer knew fewer counter slots; the missing tail must decode
// as zero (the slot list is append-only by contract).
func TestMetricsCodecOlderWriterZeroFills(t *testing.T) {
	m := populatedMetrics()
	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the slot count to NumCounters-1 and splice that slot out.
	short := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint64(short[8:], uint64(NumCounters)-1)
	cut := 16 + 8*(int(NumCounters)-1)
	short = append(short[:cut], short[cut+8:]...)

	got := NewMetrics()
	if err := got.UnmarshalBinary(short); err != nil {
		t.Fatal(err)
	}
	if v := got.ctr[NumCounters-1]; v != 0 {
		t.Errorf("missing slot decoded as %d, want 0", v)
	}
	if got.ctr[0] != m.ctr[0] || got.horizon != m.horizon {
		t.Error("known slots corrupted by the short decode")
	}
}

func TestMetricsCodecRejectsCorruption(t *testing.T) {
	blob, err := populatedMetrics().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), blob...))
	}
	cases := map[string][]byte{
		"empty": {},
		"bad version": mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b, 99)
			return b
		}),
		"slot count over": mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:], uint64(NumCounters)+1)
			return b
		}),
		"truncated counters": blob[:20],
		"truncated gauges":   blob[:16+8*int(NumCounters)+8+8*jumpBuckets+8],
		"truncated edges":    blob[:len(blob)-4],
		"trailing bytes":     append(append([]byte(nil), blob...), 0),
		"edge count oversized": mutate(func(b []byte) []byte {
			// The edge-count word sits right after the 8 gauge scalars.
			off := 16 + 8*int(NumCounters) + 8 + 8*jumpBuckets + 8*8
			binary.LittleEndian.PutUint64(b[off:], 1<<40)
			return b
		}),
		"bad jump bucket count": mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16+8*int(NumCounters):], jumpBuckets+1)
			return b
		}),
	}
	for name, bad := range cases {
		got := NewMetrics()
		if err := got.UnmarshalBinary(bad); !errors.Is(err, ErrMetricsCodec) {
			t.Errorf("%s: err = %v, want ErrMetricsCodec", name, err)
		}
	}
}
