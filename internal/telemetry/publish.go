package telemetry

import (
	"net/http"
	"sync"
)

// WindowStats is one per-window sample of the traffic runner's live time
// series: accepted throughput, latency quantiles and instantaneous backlog
// over the window [Start, End).
type WindowStats struct {
	Index     int     `json:"index"`
	Start     int64   `json:"start"`
	End       int64   `json:"end"`
	Injected  int64   `json:"injected"`
	Delivered int64   `json:"delivered"`
	Backlog   int64   `json:"backlog"` // worms in flight at window close
	LatMean   float64 `json:"lat_mean"`
	LatP50    float64 `json:"lat_p50"`
	LatP95    float64 `json:"lat_p95"`
	LatP99    float64 `json:"lat_p99"`
	LatMax    int64   `json:"lat_max"`
}

// Publisher holds the latest published Snapshot behind a mutex so a serving
// goroutine (wormbench -http) can read while a run publishes at window
// boundaries. Publishing copies the snapshot; the hot path never touches the
// mutex.
type Publisher struct {
	mu      sync.Mutex
	snap    Snapshot
	hasSnap bool
}

// Default is the process-wide publisher served by wormbench -http.
var Default = &Publisher{}

// Publish replaces the latest snapshot.
func (p *Publisher) Publish(s Snapshot) {
	p.mu.Lock()
	p.snap = s
	p.hasSnap = true
	p.mu.Unlock()
}

// Latest returns a copy of the most recently published snapshot and whether
// one has been published.
func (p *Publisher) Latest() (Snapshot, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snap, p.hasSnap
}

// ServeHTTP writes the latest snapshot as JSON (an expvar-style endpoint).
// Returns 204 No Content before the first publication.
func (p *Publisher) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	s, ok := p.Latest()
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = WriteSnapshot(w, s)
}

// Aggregate hands out per-job Metrics registries to concurrent runs and folds
// them into one Snapshot afterwards. The experiment harness runs jobs on a
// worker pool; giving each job its own registry keeps the hot path free of
// atomics and the fold deterministic (registries are folded in creation
// order).
type Aggregate struct {
	mu       sync.Mutex
	children []*Metrics
}

// NewAggregate returns an empty aggregate.
func NewAggregate() *Aggregate { return &Aggregate{} }

// NewMetrics registers and returns a fresh child registry. Safe for
// concurrent use.
func (a *Aggregate) NewMetrics() *Metrics {
	m := NewMetrics()
	a.mu.Lock()
	a.children = append(a.children, m)
	a.mu.Unlock()
	return m
}

// Snapshot folds all child registries (in creation order) and snapshots the
// result. Call only after the runs writing the children have finished.
func (a *Aggregate) Snapshot() Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	total := NewMetrics()
	for _, m := range a.children {
		total.Merge(m)
	}
	return total.Snapshot()
}

// Len returns the number of child registries handed out.
func (a *Aggregate) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.children)
}
