package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestPublisherServeHTTP pins the live-metrics endpoint contract: 204
// before the first publication, then the latest snapshot as JSON.
func TestPublisherServeHTTP(t *testing.T) {
	p := &Publisher{}
	rec := httptest.NewRecorder()
	p.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusNoContent {
		t.Fatalf("pre-publish status = %d, want 204", rec.Code)
	}

	snap := populatedMetrics().Snapshot()
	snap.Windows = append(snap.Windows, WindowStats{Index: 3, Delivered: 41})
	p.Publish(snap)

	rec = httptest.NewRecorder()
	p.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var got Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Windows) != 1 || got.Windows[0].Delivered != 41 {
		t.Errorf("served snapshot lost the window series: %+v", got.Windows)
	}
}
