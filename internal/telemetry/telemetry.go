// Package telemetry is the flight-recorder instrumentation layer for the
// simulator stack. It offers three tiers, each zero-cost when unused:
//
//  1. Counters (Metrics): a fixed-slot, allocation-free registry of hot-path
//     counters — park/wake/spurious-wake totals, stall-cause attribution,
//     dirty-list and wait-heap depth gauges, a StepTo jump-size histogram and
//     per-edge occupancy/stall accumulators for heatmaps. The simulator
//     increments counters through nil-check-gated pointers, so a nil *Metrics
//     costs a single predictable branch per site.
//  2. Event stream (Trace): a ring-buffered structured trace of
//     inject/advance/park/wake/deliver/drop/credit events with an optional
//     compact binary spill and a Chrome trace-event exporter (chrome.go).
//  3. Live export (Publisher): mutex-guarded snapshot publication consumed by
//     wormbench's -http endpoint (publish.go).
//
// All Metrics methods called from the simulator hot path are marked
// //wormvet:hotpath and stay allocation-free; snapshots are the only
// allocating operation. Snapshot ordering is deterministic (fixed slot order,
// no map iteration).
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Counter identifies one fixed slot in the Metrics registry.
type Counter int

// Fixed counter slots. Order is the snapshot order; append only.
const (
	CtrSteps Counter = iota
	CtrAdvances
	CtrInjects
	CtrDelivers
	CtrDrops
	CtrParks
	CtrWakes
	CtrSpuriousWakes
	CtrStallLaneCredit
	CtrStallSharedPool
	CtrStallBandwidth
	CtrStallHeadOfLine
	CtrFastForwards
	CtrShardedSteps
	CtrShardFallback
	CtrFaultKills
	CtrFaultRevives
	CtrFaultAborts
	CtrFaultRetries
	CtrStallFault
	NumCounters // sentinel: number of counter slots
)

// counterNames maps slots to stable snapshot names. Indexed by Counter.
var counterNames = [NumCounters]string{
	"steps",
	"advances",
	"injects",
	"delivers",
	"drops",
	"parks",
	"wakes",
	"spurious_wakes",
	"stall_lane_credit",
	"stall_shared_pool",
	"stall_bandwidth",
	"stall_head_of_line",
	"fast_forwards",
	"sharded_steps",
	"shard_fallback_steps",
	"fault_kills",
	"fault_revives",
	"fault_aborts",
	"fault_retries",
	"stall_fault",
}

// Name returns the stable snapshot name of the counter slot.
func (c Counter) Name() string {
	if c < 0 || c >= NumCounters {
		return fmt.Sprintf("counter_%d", int(c))
	}
	return counterNames[c]
}

// jumpBuckets is the number of log2 buckets in the StepTo jump histogram:
// bucket i counts jumps d with bits.Len(d) == i, i.e. 2^(i-1) <= d < 2^i,
// which covers every positive int64 jump size.
const jumpBuckets = 64

// Metrics is the fixed-slot counter registry. One Metrics must only be
// written by a single simulator at a time (the simulator itself is
// single-goroutine); fold concurrent runs with an Aggregate.
//
// The zero value is ready for use; per-edge accumulators appear after the
// owning simulator calls EnsureEdges.
type Metrics struct {
	ctr  [NumCounters]int64
	jump [jumpBuckets]int64 // StepTo jump-size log2 histogram

	// Gauges accumulated once per applied step so snapshots can report both
	// the mean and the high-water mark.
	gaugeSteps    int64 // number of StepGauges calls
	dirtySum      int64
	dirtyMax      int64
	parkedSum     int64
	parkedMax     int64
	arenaChunks   int64 // arena occupancy, sampled at snapshot time
	arenaCapacity int64

	// Per-edge accumulators, indexed by edge ID. edgeStall counts
	// stall-attribution hits; occInt integrates end-of-step occupancy over
	// simulated time so occInt[e]/steps is the mean occupancy of edge e.
	edgeStall []int64
	occInt    []int64
	lastOcc   []int64 // occupancy at the last fold point of each edge
	lastT     []int64 // time of the last fold point of each edge
	edgeFault []int64 // total steps each edge spent with a fault active
	horizon   int64   // latest time passed to EdgeOccupancy/Finish
}

// NewMetrics returns an empty registry. Edge accumulators are sized lazily by
// the simulator via EnsureEdges.
func NewMetrics() *Metrics { return &Metrics{} }

// EnsureEdges sizes the per-edge accumulators for numEdges edges, preserving
// existing totals when already large enough. Called at simulator
// construction, never on the hot path.
func (m *Metrics) EnsureEdges(numEdges int) {
	if numEdges <= len(m.edgeStall) {
		return
	}
	grow := func(s []int64) []int64 {
		out := make([]int64, numEdges)
		copy(out, s)
		return out
	}
	m.edgeStall = grow(m.edgeStall)
	m.occInt = grow(m.occInt)
	m.lastOcc = grow(m.lastOcc)
	m.lastT = grow(m.lastT)
	m.edgeFault = grow(m.edgeFault)
}

// Inc adds one to a counter slot.
//
//wormvet:hotpath
func (m *Metrics) Inc(c Counter) { m.ctr[c]++ }

// Add adds n to a counter slot.
//
//wormvet:hotpath
func (m *Metrics) Add(c Counter, n int64) { m.ctr[c] += n }

// EdgeStall records one stall attributed to cause c on edge e. Edges outside
// the EnsureEdges range only bump the scalar counter.
//
//wormvet:hotpath
func (m *Metrics) EdgeStall(c Counter, e int32) {
	m.ctr[c]++
	if int(e) < len(m.edgeStall) && e >= 0 {
		m.edgeStall[e]++
	}
}

// StallSpan attributes span stalled steps to cause c on edge e. Used when the
// wakeup engine stamps a whole parked interval at once.
//
//wormvet:hotpath
func (m *Metrics) StallSpan(c Counter, e int32, span int64) {
	m.ctr[c] += span
	if int(e) < len(m.edgeStall) && e >= 0 {
		m.edgeStall[e] += span
	}
}

// EdgeOccupancy folds edge e's occupancy integral up to time now, then
// records occ as the edge's occupancy from now onward. The simulator calls
// this exactly when an edge's occupancy may have changed (its dirty lists),
// so the integral is exact under the end-of-step value convention.
//
//wormvet:hotpath
func (m *Metrics) EdgeOccupancy(e int32, occ, now int64) {
	if int(e) >= len(m.occInt) || e < 0 {
		return
	}
	m.occInt[e] += m.lastOcc[e] * (now - m.lastT[e])
	m.lastOcc[e] = occ
	m.lastT[e] = now
	if now > m.horizon {
		m.horizon = now
	}
}

// EdgeFault attributes span steps of fault time (lanes or the whole edge
// dead) to edge e. The simulator calls it when an edge returns to full
// health and once at result time for still-open outages.
//
//wormvet:hotpath
func (m *Metrics) EdgeFault(e int32, span int64) {
	if int(e) < len(m.edgeFault) && e >= 0 {
		m.edgeFault[e] += span
	}
}

// StepGauges accumulates per-step gauge readings: dirty-list depth and
// currently-parked worm count.
//
//wormvet:hotpath
func (m *Metrics) StepGauges(dirty, parked int) {
	m.gaugeSteps++
	d, p := int64(dirty), int64(parked)
	m.dirtySum += d
	if d > m.dirtyMax {
		m.dirtyMax = d
	}
	m.parkedSum += p
	if p > m.parkedMax {
		m.parkedMax = p
	}
}

// Jump records a StepTo/Drain fast-forward of d steps in the log2 histogram.
//
//wormvet:hotpath
func (m *Metrics) Jump(d int64) {
	m.ctr[CtrFastForwards]++
	b := 0
	for v := d; v > 0; v >>= 1 {
		b++
	}
	if b >= jumpBuckets {
		b = jumpBuckets - 1
	}
	m.jump[b]++
}

// Arena records arena occupancy (used chunks out of capacity), sampled at
// snapshot boundaries by the simulator.
func (m *Metrics) Arena(used, capacity int64) {
	m.arenaChunks = used
	m.arenaCapacity = capacity
}

// CounterValue is one named counter in a Snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeStats summarizes an accumulated gauge.
type GaugeStats struct {
	Mean float64 `json:"mean"`
	Max  int64   `json:"max"`
}

// JumpBucket is one non-empty bucket of the fast-forward histogram: Count
// jumps d with Lo <= d <= Hi.
type JumpBucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// EdgeSample pairs an edge ID with that edge's accumulated stall count and
// mean occupancy.
type EdgeSample struct {
	Edge    int     `json:"edge"`
	Stalls  int64   `json:"stalls"`
	OccMean float64 `json:"occ_mean"`
}

// Snapshot is a deterministic point-in-time copy of a Metrics registry.
// Field ordering and slice ordering are fixed (counter slot order, then edge
// ID order) so identical runs serialize identically.
type Snapshot struct {
	Counters []CounterValue `json:"counters"`
	Dirty    GaugeStats     `json:"dirty_depth"`
	Parked   GaugeStats     `json:"parked"`
	Arena    struct {
		Used     int64 `json:"used"`
		Capacity int64 `json:"capacity"`
	} `json:"arena"`
	Jumps   []JumpBucket `json:"jumps,omitempty"`
	Horizon int64        `json:"horizon"`
	// EdgeStalls, EdgeOcc and EdgeFault are indexed by edge ID. EdgeOcc is
	// the mean occupancy of each edge over [0, Horizon]; EdgeFault is the
	// total steps each edge spent with a fault active.
	EdgeStalls []int64   `json:"edge_stalls,omitempty"`
	EdgeOcc    []float64 `json:"edge_occ,omitempty"`
	EdgeFault  []int64   `json:"edge_fault,omitempty"`
	// Windows carries the traffic runner's per-window time series when the
	// run was windowed; empty otherwise.
	Windows []WindowStats `json:"windows,omitempty"`
}

// Counter returns the value of the named counter, or 0 if absent.
func (s *Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// HottestEdges returns the indices of the n highest-stall edges (ties broken
// by lower edge ID), most-stalled first.
func (s *Snapshot) HottestEdges(n int) []EdgeSample {
	out := make([]EdgeSample, 0, len(s.EdgeStalls))
	for e, st := range s.EdgeStalls {
		var occ float64
		if e < len(s.EdgeOcc) {
			occ = s.EdgeOcc[e]
		}
		out = append(out, EdgeSample{Edge: e, Stalls: st, OccMean: occ})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Stalls > out[j].Stalls })
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// Snapshot copies the registry into a deterministic Snapshot. Per-edge
// occupancy integrals are folded up to the registry's horizon without
// mutating the live accumulators, so snapshots can be taken mid-run.
func (m *Metrics) Snapshot() Snapshot {
	var s Snapshot
	s.Counters = make([]CounterValue, NumCounters)
	for i := Counter(0); i < NumCounters; i++ {
		s.Counters[i] = CounterValue{Name: i.Name(), Value: m.ctr[i]}
	}
	if m.gaugeSteps > 0 {
		s.Dirty = GaugeStats{Mean: float64(m.dirtySum) / float64(m.gaugeSteps), Max: m.dirtyMax}
		s.Parked = GaugeStats{Mean: float64(m.parkedSum) / float64(m.gaugeSteps), Max: m.parkedMax}
	}
	s.Arena.Used = m.arenaChunks
	s.Arena.Capacity = m.arenaCapacity
	s.Horizon = m.horizon
	for b, n := range m.jump {
		if n == 0 {
			continue
		}
		lo, hi := int64(1), int64(1)
		if b > 1 {
			lo = int64(1) << (b - 1)
		}
		if b < 63 {
			hi = int64(1)<<b - 1
		} else {
			hi = int64(1)<<62 + (int64(1)<<62 - 1)
		}
		s.Jumps = append(s.Jumps, JumpBucket{Lo: lo, Hi: hi, Count: n})
	}
	if len(m.edgeStall) > 0 {
		s.EdgeStalls = append([]int64(nil), m.edgeStall...)
		s.EdgeOcc = make([]float64, len(m.occInt))
		if m.horizon > 0 {
			for e := range m.occInt {
				folded := m.occInt[e] + m.lastOcc[e]*(m.horizon-m.lastT[e])
				s.EdgeOcc[e] = float64(folded) / float64(m.horizon)
			}
		}
		for _, v := range m.edgeFault {
			if v != 0 {
				s.EdgeFault = append([]int64(nil), m.edgeFault...)
				break
			}
		}
	}
	return s
}

// Merge folds other's scalar counters, gauges and histogram into m, and the
// per-edge accumulators when both registries describe the same edge set.
// Used by Aggregate to combine per-job registries after concurrent runs.
func (m *Metrics) Merge(other *Metrics) {
	for i := range m.ctr {
		m.ctr[i] += other.ctr[i]
	}
	for i := range m.jump {
		m.jump[i] += other.jump[i]
	}
	m.gaugeSteps += other.gaugeSteps
	m.dirtySum += other.dirtySum
	m.parkedSum += other.parkedSum
	if other.dirtyMax > m.dirtyMax {
		m.dirtyMax = other.dirtyMax
	}
	if other.parkedMax > m.parkedMax {
		m.parkedMax = other.parkedMax
	}
	m.arenaChunks += other.arenaChunks
	m.arenaCapacity += other.arenaCapacity
	if other.horizon > m.horizon {
		m.horizon = other.horizon
	}
	if len(other.edgeStall) == 0 {
		return
	}
	if len(m.edgeStall) == 0 {
		m.EnsureEdges(len(other.edgeStall))
	}
	if len(m.edgeStall) != len(other.edgeStall) {
		return // incompatible edge sets: keep scalar totals only
	}
	for e := range m.edgeStall {
		m.edgeStall[e] += other.edgeStall[e]
		// Fold the other registry's integral to its own horizon so the sum
		// stays meaningful; lastOcc/lastT remain m's own.
		m.occInt[e] += other.occInt[e] + other.lastOcc[e]*(other.horizon-other.lastT[e])
		m.edgeFault[e] += other.edgeFault[e]
	}
}

// DrainInto folds m's accumulated totals into dst exactly as Merge
// would, then resets m to zero — so repeated drains never double-count.
// The sharded simulator uses it at snapshot boundaries to fold each
// shard's child registry into the parent. A nil dst just resets m.
func (m *Metrics) DrainInto(dst *Metrics) {
	if dst != nil {
		dst.Merge(m)
	}
	m.ctr = [NumCounters]int64{}
	m.jump = [jumpBuckets]int64{}
	m.gaugeSteps, m.dirtySum, m.dirtyMax = 0, 0, 0
	m.parkedSum, m.parkedMax = 0, 0
	m.arenaChunks, m.arenaCapacity = 0, 0
	m.horizon = 0
	for e := range m.edgeStall {
		m.edgeStall[e] = 0
		m.occInt[e] = 0
		m.lastOcc[e] = 0
		m.lastT[e] = 0
		m.edgeFault[e] = 0
	}
}

// WriteSnapshotFile writes s as indented JSON to path.
func WriteSnapshotFile(path string, s Snapshot) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(path, b, 0o644)
}

// ReadSnapshotFile reads a Snapshot previously written by WriteSnapshotFile.
func ReadSnapshotFile(path string) (Snapshot, error) {
	var s Snapshot
	b, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(b, &s); err != nil {
		return s, fmt.Errorf("telemetry: decode %s: %w", path, err)
	}
	return s, nil
}

// WriteSnapshot writes s as indented JSON to w.
func WriteSnapshot(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
