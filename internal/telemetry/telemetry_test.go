package telemetry

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestCounterNamesCompleteAndUnique(t *testing.T) {
	seen := map[string]bool{}
	for c := Counter(0); c < NumCounters; c++ {
		name := counterNames[c]
		if name == "" {
			t.Errorf("counter %d has no name", c)
		}
		if seen[name] {
			t.Errorf("duplicate counter name %q", name)
		}
		seen[name] = true
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	fill := func() *Metrics {
		m := NewMetrics()
		m.EnsureEdges(4)
		m.Inc(CtrSteps)
		m.Add(CtrAdvances, 7)
		m.EdgeStall(CtrStallLaneCredit, 1)
		m.EdgeStall(CtrStallBandwidth, 3)
		m.StallSpan(CtrStallSharedPool, 2, 9)
		m.EdgeOccupancy(1, 2, 3)
		m.EdgeOccupancy(1, 0, 9)
		m.StepGauges(5, 2)
		m.Jump(17)
		m.Arena(64, 128)
		return m
	}
	a, b := fill().Snapshot(), fill().Snapshot()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical registries snapshot differently:\n%+v\n%+v", a, b)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("snapshot JSON differs:\n%s\n%s", ja, jb)
	}
}

func TestSnapshotMidRunDoesNotMutate(t *testing.T) {
	m := NewMetrics()
	m.EnsureEdges(1)
	m.EdgeOccupancy(0, 2, 1) // occupancy 2 from t=1
	mid := m.Snapshot()      // folds the open span to horizon 1 without mutating
	if mid.Horizon != 1 {
		t.Fatalf("mid-run horizon = %d, want 1", mid.Horizon)
	}
	m.EdgeOccupancy(0, 0, 5) // integral += 2*(5-1) = 8
	final := m.Snapshot()
	if want := 8.0 / 5.0; final.EdgeOcc[0] != want {
		t.Errorf("EdgeOcc[0] = %v, want %v (mid-run snapshot must not consume the open span)", final.EdgeOcc[0], want)
	}
}

func TestStallSpanAccumulatesPerEdge(t *testing.T) {
	m := NewMetrics()
	m.EnsureEdges(2)
	m.StallSpan(CtrStallLaneCredit, 1, 12)
	m.EdgeStall(CtrStallLaneCredit, 1)
	s := m.Snapshot()
	// Stall counters count stalled worm-steps: EdgeStall adds one failed
	// attempt, StallSpan the whole parked interval — scalar and per-edge
	// totals must agree.
	if s.Counter("stall_lane_credit") != 13 {
		t.Errorf("stall_lane_credit = %d, want 13 (12-step span + one attempt)", s.Counter("stall_lane_credit"))
	}
	if s.EdgeStalls[1] != 13 {
		t.Errorf("EdgeStalls[1] = %d, want 13", s.EdgeStalls[1])
	}
}

func TestJumpHistogram(t *testing.T) {
	m := NewMetrics()
	m.Jump(1)
	m.Jump(5)
	m.Jump(5)
	s := m.Snapshot()
	if s.Counter("fast_forwards") != 3 {
		t.Errorf("fast_forwards = %d, want 3", s.Counter("fast_forwards"))
	}
	want := []JumpBucket{{Lo: 1, Hi: 1, Count: 1}, {Lo: 4, Hi: 7, Count: 2}}
	if !reflect.DeepEqual(s.Jumps, want) {
		t.Errorf("Jumps = %+v, want %+v", s.Jumps, want)
	}
}

func TestMerge(t *testing.T) {
	a := NewMetrics()
	a.EnsureEdges(2)
	a.Inc(CtrSteps)
	a.EdgeStall(CtrStallLaneCredit, 0)
	a.EdgeOccupancy(0, 1, 2)
	a.EdgeOccupancy(0, 0, 4) // integral 2, horizon 4

	b := NewMetrics()
	b.EnsureEdges(2)
	b.Add(CtrSteps, 3)
	b.EdgeStall(CtrStallLaneCredit, 1)
	b.EdgeOccupancy(1, 2, 1)
	b.EdgeOccupancy(1, 0, 4) // integral 6, horizon 4

	a.Merge(b)
	s := a.Snapshot()
	if s.Counter("steps") != 4 {
		t.Errorf("merged steps = %d, want 4", s.Counter("steps"))
	}
	if s.EdgeStalls[0] != 1 || s.EdgeStalls[1] != 1 {
		t.Errorf("merged EdgeStalls = %v, want [1 1]", s.EdgeStalls)
	}
	if s.EdgeOcc[0] != 2.0/4 || s.EdgeOcc[1] != 6.0/4 {
		t.Errorf("merged EdgeOcc = %v, want [0.5 1.5]", s.EdgeOcc)
	}

	// Incompatible edge sets: scalars fold, per-edge accumulators are kept
	// as-is rather than summed against mismatched IDs.
	c := NewMetrics()
	c.EnsureEdges(5)
	c.Inc(CtrSteps)
	a.Merge(c)
	if got := a.Snapshot(); got.Counter("steps") != 5 || len(got.EdgeStalls) != 2 {
		t.Errorf("mismatched merge: steps=%d edges=%d, want 5 scalar-only with 2 edges",
			got.Counter("steps"), len(got.EdgeStalls))
	}
}

func TestHottestEdges(t *testing.T) {
	m := NewMetrics()
	m.EnsureEdges(3)
	m.StallSpan(CtrStallLaneCredit, 2, 10)
	m.StallSpan(CtrStallLaneCredit, 0, 4)
	s := m.Snapshot()
	top := s.HottestEdges(2)
	if len(top) != 2 || top[0].Edge != 2 || top[1].Edge != 0 {
		t.Errorf("HottestEdges = %+v, want edges [2 0]", top)
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	m := NewMetrics()
	m.EnsureEdges(2)
	m.Inc(CtrDelivers)
	m.Jump(3)
	want := m.Snapshot()
	want.Windows = []WindowStats{{Index: 0, Start: 0, End: 64, Injected: 5, Delivered: 4, LatP95: 12.5}}
	path := t.TempDir() + "/snap.json"
	if err := WriteSnapshotFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestAggregateFoldsInCreationOrder(t *testing.T) {
	agg := NewAggregate()
	m1 := agg.NewMetrics()
	m2 := agg.NewMetrics()
	m1.Inc(CtrInjects)
	m2.Add(CtrInjects, 2)
	if agg.Len() != 2 {
		t.Fatalf("Len = %d, want 2", agg.Len())
	}
	if s := agg.Snapshot(); s.Counter("injects") != 3 {
		t.Errorf("aggregate injects = %d, want 3", s.Counter("injects"))
	}
}

func TestMetricsHotPathAllocationFree(t *testing.T) {
	m := NewMetrics()
	m.EnsureEdges(8)
	if n := testing.AllocsPerRun(100, func() {
		m.Inc(CtrSteps)
		m.EdgeStall(CtrStallLaneCredit, 3)
		m.StallSpan(CtrStallSharedPool, 2, 5)
		m.EdgeOccupancy(1, 2, 10)
		m.StepGauges(4, 1)
		m.Jump(9)
	}); n != 0 {
		t.Errorf("hot-path counter updates allocate %.1f/op, want 0", n)
	}
}

func TestDrainInto(t *testing.T) {
	fill := func() *Metrics {
		m := NewMetrics()
		m.EnsureEdges(3)
		m.Add(CtrSteps, 2)
		m.EdgeStall(CtrStallLaneCredit, 1)
		m.EdgeStall(CtrStallBandwidth, 2)
		return m
	}
	dst := fill()
	src := fill()
	src.DrainInto(dst)

	// The fold matches Merge exactly.
	want := fill()
	want.Merge(fill())
	if got, exp := dst.Snapshot(), want.Snapshot(); !reflect.DeepEqual(got, exp) {
		t.Fatalf("DrainInto fold differs from Merge\ngot:  %+v\nwant: %+v", got, exp)
	}

	// The source is fully zeroed: draining it again must be a no-op,
	// which is what makes every snapshot boundary safe to call it.
	before := dst.Snapshot()
	src.DrainInto(dst)
	if after := dst.Snapshot(); !reflect.DeepEqual(before, after) {
		t.Fatalf("second drain changed the destination\nbefore: %+v\nafter:  %+v", before, after)
	}
	if s := src.Snapshot(); s.Counter("steps") != 0 || s.EdgeStalls != nil && (s.EdgeStalls[1] != 0 || s.EdgeStalls[2] != 0) {
		t.Fatalf("drained source still carries data: %+v", s)
	}

	// A nil destination still zeroes the source (discard semantics).
	loose := fill()
	loose.DrainInto(nil)
	if s := loose.Snapshot(); s.Counter("steps") != 0 {
		t.Fatalf("DrainInto(nil) left data behind: %+v", s)
	}
}
