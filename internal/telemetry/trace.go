package telemetry

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// EventKind discriminates structured trace events.
type EventKind uint8

// Event kinds emitted by the simulator. The stream is a superset of the
// vcsim.Observer callbacks: Observer sees advance/drop/deliver only.
const (
	EvInject EventKind = iota + 1
	EvAdvance
	EvPark
	EvWake
	EvDeliver
	EvDrop
	EvCredit
	EvFault
	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	"", "inject", "advance", "park", "wake", "deliver", "drop", "credit", "fault",
}

// String returns the stable name of the event kind.
func (k EventKind) String() string {
	if k == 0 || k >= numEventKinds {
		return fmt.Sprintf("kind_%d", uint8(k))
	}
	return eventKindNames[k]
}

// Event is one fixed-size structured trace record.
//
//   - inject:  Msg = message ID, Arg = path length
//   - advance: Msg = message ID, Arg = new frontier (rigid) or head position
//   - park:    Msg = message ID, Arg = wait edge (parkFlitBit tags pool waits)
//   - wake:    Msg = message ID, Arg = wait edge it was parked on
//   - deliver: Msg = message ID, Arg = latency (deliver - inject)
//   - drop:    Msg = message ID, Arg = frontier at drop
//   - credit:  Msg = edge ID,    Arg = occupancy after release folding
//   - fault:   Msg = edge ID,    Arg = fault event kind (fault.Kind)
type Event struct {
	Time int32
	Msg  int32
	Arg  int32
	Kind EventKind
}

// maxEventTime clamps event timestamps into the int32 record field. The
// simulator horizon (vcsim.MaxHorizon) is far below this already.
const maxEventTime = 1<<31 - 1

// Trace is a fixed-capacity ring buffer of Events with an optional binary
// spill writer. Recording is allocation-free: when the ring fills, events
// either spill to the writer (one Write per full ring — the only I/O
// boundary) or overwrite the oldest buffered event.
//
// A Trace must only be written by a single simulator at a time.
type Trace struct {
	buf     []Event
	start   int // index of oldest buffered event
	n       int // number of buffered events
	spill   io.Writer
	scratch []byte // reused spill encoding buffer
	spilled int64  // events flushed to the spill writer
	dropped int64  // events overwritten because the ring was full
	err     error  // first spill error, surfaced by Flush/Err
}

// NewTrace returns a ring buffer holding up to capacity events (minimum 1).
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = 1
	}
	return &Trace{buf: make([]Event, capacity)}
}

// SetSpill directs ring overflow to w in the compact binary format (see
// WriteSpillHeader). Must be set before recording starts.
func (t *Trace) SetSpill(w io.Writer) {
	t.spill = w
	if t.scratch == nil {
		t.scratch = make([]byte, 0, spillHeaderLen+len(t.buf)*spillRecordLen)
	}
}

// add appends one event, spilling or overwriting on overflow.
//
//wormvet:hotpath
func (t *Trace) add(time int, kind EventKind, msg, arg int32) {
	if time > maxEventTime {
		time = maxEventTime
	}
	if t.n == len(t.buf) {
		t.overflow() //wormvet:allow hotalloc -- ring boundary, not per-event steady state
	}
	i := t.start + t.n
	if i >= len(t.buf) {
		i -= len(t.buf)
	}
	t.buf[i] = Event{Time: int32(time), Msg: msg, Arg: arg, Kind: kind}
	t.n++
}

// overflow makes room for one more event: flush the whole ring to the spill
// writer when configured, otherwise drop the oldest event.
func (t *Trace) overflow() {
	if t.spill == nil {
		t.start++
		if t.start == len(t.buf) {
			t.start = 0
		}
		t.n--
		t.dropped++
		return
	}
	t.flush()
}

// flush writes all buffered events to the spill writer and empties the ring.
func (t *Trace) flush() {
	if t.n == 0 {
		return
	}
	b := t.scratch[:0]
	if t.spilled == 0 {
		b = appendSpillHeader(b)
	}
	for i := 0; i < t.n; i++ {
		j := t.start + i
		if j >= len(t.buf) {
			j -= len(t.buf)
		}
		b = appendSpillRecord(b, t.buf[j])
	}
	if _, err := t.spill.Write(b); err != nil && t.err == nil {
		t.err = err
	}
	t.scratch = b[:0]
	t.spilled += int64(t.n)
	t.start, t.n = 0, 0
}

// Flush drains buffered events to the spill writer (no-op without one) and
// reports the first spill error.
func (t *Trace) Flush() error {
	if t.spill != nil {
		t.flush()
	}
	return t.err
}

// Err reports the first spill error encountered.
func (t *Trace) Err() error { return t.err }

// Inject records message injection at time with the given path length.
//
//wormvet:hotpath
func (t *Trace) Inject(time int, msg, pathLen int32) { t.add(time, EvInject, msg, pathLen) }

// Advance records a head advance to frontier.
//
//wormvet:hotpath
func (t *Trace) Advance(time int, msg, frontier int32) { t.add(time, EvAdvance, msg, frontier) }

// Park records a worm parking on edge (pool waits carry the parkFlitBit tag).
//
//wormvet:hotpath
func (t *Trace) Park(time int, msg, edge int32) { t.add(time, EvPark, msg, edge) }

// Wake records a parked worm returning to the active list.
//
//wormvet:hotpath
func (t *Trace) Wake(time int, msg, edge int32) { t.add(time, EvWake, msg, edge) }

// Deliver records message delivery with its latency.
//
//wormvet:hotpath
func (t *Trace) Deliver(time int, msg, latency int32) { t.add(time, EvDeliver, msg, latency) }

// Drop records a message drop at the given frontier.
//
//wormvet:hotpath
func (t *Trace) Drop(time int, msg, frontier int32) { t.add(time, EvDrop, msg, frontier) }

// Credit records a credit release folding on an edge with the resulting
// occupancy.
//
//wormvet:hotpath
func (t *Trace) Credit(time int, edge, occ int32) { t.add(time, EvCredit, edge, occ) }

// Fault records a fault-schedule event (kill/revive, see fault.Kind)
// taking effect on an edge.
//
//wormvet:hotpath
func (t *Trace) Fault(time int, edge, kind int32) { t.add(time, EvFault, edge, kind) }

// Events returns the buffered events oldest-first. Events already spilled
// (or overwritten) are not included.
func (t *Trace) Events() []Event {
	out := make([]Event, t.n)
	for i := 0; i < t.n; i++ {
		j := t.start + i
		if j >= len(t.buf) {
			j -= len(t.buf)
		}
		out[i] = t.buf[j]
	}
	return out
}

// Spilled returns the number of events flushed to the spill writer.
func (t *Trace) Spilled() int64 { return t.spilled }

// Dropped returns the number of events overwritten because the ring was full
// and no spill writer was configured.
func (t *Trace) Dropped() int64 { return t.dropped }

// Binary spill format: an 8-byte header ("WTRC", u16 version, u16 reserved)
// followed by fixed 16-byte records: u32 time, u8 kind, 3 reserved bytes,
// i32 msg, i32 arg — all little-endian.
const (
	spillMagic     = "WTRC"
	spillVersion   = 1
	spillHeaderLen = 8
	spillRecordLen = 16
)

func appendSpillHeader(b []byte) []byte {
	b = append(b, spillMagic...)
	b = binary.LittleEndian.AppendUint16(b, spillVersion)
	b = binary.LittleEndian.AppendUint16(b, 0)
	return b
}

func appendSpillRecord(b []byte, ev Event) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(ev.Time))
	b = append(b, byte(ev.Kind), 0, 0, 0)
	b = binary.LittleEndian.AppendUint32(b, uint32(ev.Msg))
	b = binary.LittleEndian.AppendUint32(b, uint32(ev.Arg))
	return b
}

// ErrSpillFormat reports a malformed spill stream.
var ErrSpillFormat = errors.New("telemetry: malformed spill stream")

// DecodeSpill parses a binary spill stream produced by a Trace with a spill
// writer, returning the events in recorded order.
func DecodeSpill(r io.Reader) ([]Event, error) {
	var hdr [spillHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, nil // empty stream: nothing was spilled
		}
		return nil, fmt.Errorf("%w: short header", ErrSpillFormat)
	}
	if string(hdr[:4]) != spillMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrSpillFormat, hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != spillVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrSpillFormat, v)
	}
	var out []Event
	var rec [spillRecordLen]byte
	for {
		_, err := io.ReadFull(r, rec[:])
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%w: truncated record", ErrSpillFormat)
		}
		out = append(out, Event{
			Time: int32(binary.LittleEndian.Uint32(rec[0:4])),
			Kind: EventKind(rec[4]),
			Msg:  int32(binary.LittleEndian.Uint32(rec[8:12])),
			Arg:  int32(binary.LittleEndian.Uint32(rec[12:16])),
		})
	}
}
