package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestTraceRecordsInOrder(t *testing.T) {
	tr := NewTrace(8)
	tr.Inject(1, 0, 5)
	tr.Advance(2, 0, 1)
	tr.Park(3, 0, 7)
	tr.Wake(5, 0, 7)
	tr.Deliver(9, 0, 8)
	want := []Event{
		{Time: 1, Msg: 0, Arg: 5, Kind: EvInject},
		{Time: 2, Msg: 0, Arg: 1, Kind: EvAdvance},
		{Time: 3, Msg: 0, Arg: 7, Kind: EvPark},
		{Time: 5, Msg: 0, Arg: 7, Kind: EvWake},
		{Time: 9, Msg: 0, Arg: 8, Kind: EvDeliver},
	}
	if got := tr.Events(); !reflect.DeepEqual(got, want) {
		t.Errorf("Events() = %+v, want %+v", got, want)
	}
	if err := tr.Err(); err != nil {
		t.Errorf("spill-free trace reports error %v", err)
	}
	for i, e := range want {
		if got := e.Kind.String(); got != []string{"inject", "advance", "park", "wake", "deliver"}[i] {
			t.Errorf("kind %d renders as %q", e.Kind, got)
		}
	}
	if got := EventKind(0).String(); got != "kind_0" {
		t.Errorf("zero kind renders as %q", got)
	}
}

func TestTraceDropEvent(t *testing.T) {
	tr := NewTrace(4)
	tr.Drop(6, 2, 3)
	want := []Event{{Time: 6, Msg: 2, Arg: 3, Kind: EvDrop}}
	if got := tr.Events(); !reflect.DeepEqual(got, want) {
		t.Errorf("Events() = %+v, want %+v", got, want)
	}
	if got := EvDrop.String(); got != "drop" {
		t.Errorf("EvDrop renders as %q", got)
	}
}

func TestTraceRingDropsOldestWithoutSpill(t *testing.T) {
	tr := NewTrace(3)
	for i := 0; i < 5; i++ {
		tr.Advance(i, int32(i), 0)
	}
	got := tr.Events()
	if len(got) != 3 || got[0].Msg != 2 || got[2].Msg != 4 {
		t.Errorf("ring kept %+v, want the 3 newest events (msgs 2..4)", got)
	}
	if tr.Dropped() != 2 {
		t.Errorf("Dropped() = %d, want 2", tr.Dropped())
	}
}

func TestTraceSpillRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(4)
	tr.SetSpill(&buf)
	var want []Event
	for i := 0; i < 11; i++ {
		tr.Advance(i, int32(i), int32(2*i))
		want = append(want, Event{Time: int32(i), Msg: int32(i), Arg: int32(2 * i), Kind: EvAdvance})
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if tr.Spilled() != 11 || tr.Dropped() != 0 {
		t.Fatalf("spilled=%d dropped=%d, want 11/0", tr.Spilled(), tr.Dropped())
	}
	got, err := DecodeSpill(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("spill round trip: got %+v, want %+v", got, want)
	}
}

func TestDecodeSpillRejectsGarbage(t *testing.T) {
	if _, err := DecodeSpill(strings.NewReader("NOPE1234........")); !errors.Is(err, ErrSpillFormat) {
		t.Errorf("bad magic: err = %v, want ErrSpillFormat", err)
	}
	if evs, err := DecodeSpill(strings.NewReader("")); err != nil || evs != nil {
		t.Errorf("empty stream: (%v, %v), want (nil, nil)", evs, err)
	}
}

func TestTraceSteadyStateAllocationFree(t *testing.T) {
	tr := NewTrace(64)
	if n := testing.AllocsPerRun(200, func() {
		tr.Inject(1, 1, 4)
		tr.Advance(2, 1, 1)
		tr.Credit(2, 3, 1)
		tr.Deliver(3, 1, 2)
	}); n != 0 {
		t.Errorf("ring recording allocates %.1f/op, want 0 (drop-oldest mode)", n)
	}
}

func TestWriteChrome(t *testing.T) {
	events := []Event{
		{Time: 1, Msg: 0, Arg: 3, Kind: EvInject},
		{Time: 2, Msg: 0, Arg: 1, Kind: EvAdvance},
		{Time: 3, Msg: 0, Arg: 5, Kind: EvPark},
		{Time: 4, Msg: 5, Arg: 2, Kind: EvCredit},
		{Time: 6, Msg: 0, Arg: 5, Kind: EvDeliver},
		{Time: 7, Msg: 1, Arg: 2, Kind: EvDeliver}, // never injected: instant, not "E"
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	// 2 metadata + 6 events.
	if len(doc.TraceEvents) != 8 {
		t.Fatalf("got %d trace events, want 8:\n%s", len(doc.TraceEvents), buf.String())
	}
	counts := map[string]int{}
	for _, ev := range doc.TraceEvents {
		counts[ev.Ph]++
		if ev.Name == "credit" && ev.Pid != 1 {
			t.Errorf("credit event on pid %d, want 1 (edges)", ev.Pid)
		}
	}
	if counts["M"] != 2 || counts["B"] != 1 || counts["E"] != 1 || counts["i"] != 4 {
		t.Errorf("phase counts = %v, want M:2 B:1 E:1 i:4", counts)
	}
}

func TestPublisher(t *testing.T) {
	p := &Publisher{}
	if _, ok := p.Latest(); ok {
		t.Fatal("Latest reported a snapshot before any Publish")
	}
	m := NewMetrics()
	m.Inc(CtrSteps)
	p.Publish(m.Snapshot())
	s, ok := p.Latest()
	if !ok || s.Counter("steps") != 1 {
		t.Errorf("Latest = (%+v, %v), want the published snapshot", s, ok)
	}
}
