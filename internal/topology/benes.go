package topology

import (
	"fmt"

	"wormhole/internal/graph"
)

// Benes is an n-input Beneš network: two back-to-back butterflies, or
// equivalently a recursive construction of 2·log n − 1 columns of 2×2
// switches (paper Section 1.3.3). The network is rearrangeable: any
// permutation of the inputs onto the outputs can be realized by
// edge-disjoint paths, and Waksman's looping algorithm (RoutePermutation)
// finds those paths in linear time. Routing any permutation of L-flit
// worms over them takes exactly L + 2·log n − 1 flit steps with zero
// stalls — the O(L + log n) wormhole result the paper credits to
// Waksman's algorithm on the IBM GF-11.
type Benes struct {
	G *graph.Graph
	// Inputs and Outputs are the n external port nodes.
	Inputs  []graph.NodeID
	Outputs []graph.NodeID
	// Depth is the number of edges on every input→output path: 2·log n.
	Depth int

	root *benesNode
}

// benesNode is one recursion level: a column of n/2 input switches, two
// half-size subnetworks, and a column of n/2 output switches. The subnet
// "ports" are the parent's switch nodes, so no junction nodes are needed.
type benesNode struct {
	n            int
	eIn          []graph.EdgeID // eIn[a]: port a → its input switch
	eOut         []graph.EdgeID // eOut[b]: output switch → port b
	upper, lower *benesNode     // nil at the base case (n == 2)
}

// NewBenes builds the Beneš network on n = 2^k ≥ 2 inputs.
func NewBenes(n int) *Benes {
	k := log2Exact(n)
	g := graph.New(4*n*k, 4*n*k)
	b := &Benes{G: g, Depth: 2 * k}
	for i := 0; i < n; i++ {
		b.Inputs = append(b.Inputs, g.AddNode(fmt.Sprintf("in%d", i)))
	}
	for i := 0; i < n; i++ {
		b.Outputs = append(b.Outputs, g.AddNode(fmt.Sprintf("out%d", i)))
	}
	b.root = buildBenes(g, b.Inputs, b.Outputs, 0)
	return b
}

// buildBenes wires one recursion level between the given port nodes.
func buildBenes(g *graph.Graph, ins, outs []graph.NodeID, depth int) *benesNode {
	n := len(ins)
	node := &benesNode{
		n:    n,
		eIn:  make([]graph.EdgeID, n),
		eOut: make([]graph.EdgeID, n),
	}
	if n == 2 {
		sw := g.AddNode(fmt.Sprintf("sw%d.b", depth))
		node.eIn[0] = g.AddEdge(ins[0], sw)
		node.eIn[1] = g.AddEdge(ins[1], sw)
		node.eOut[0] = g.AddEdge(sw, outs[0])
		node.eOut[1] = g.AddEdge(sw, outs[1])
		return node
	}
	inSw := make([]graph.NodeID, n/2)
	outSw := make([]graph.NodeID, n/2)
	for j := 0; j < n/2; j++ {
		inSw[j] = g.AddNode(fmt.Sprintf("sw%d.i%d", depth, j))
		outSw[j] = g.AddNode(fmt.Sprintf("sw%d.o%d", depth, j))
	}
	for a := 0; a < n; a++ {
		node.eIn[a] = g.AddEdge(ins[a], inSw[a/2])
	}
	for b := 0; b < n; b++ {
		node.eOut[b] = g.AddEdge(outSw[b/2], outs[b])
	}
	node.upper = buildBenes(g, inSw, outSw, depth+1)
	node.lower = buildBenes(g, inSw, outSw, depth+1)
	return node
}

// RoutePermutation realizes the permutation perm (input a → output
// perm[a]) as edge-disjoint paths using Waksman's looping algorithm. It
// panics if perm is not a permutation of 0..n−1.
func (b *Benes) RoutePermutation(perm []int) []graph.Path {
	n := len(b.Inputs)
	if len(perm) != n {
		panic(fmt.Sprintf("topology: permutation arity %d, want %d", len(perm), n))
	}
	seen := make([]bool, n)
	for _, v := range perm {
		if v < 0 || v >= n || seen[v] {
			panic("topology: not a permutation")
		}
		seen[v] = true
	}
	paths := make([]graph.Path, n)
	for a := 0; a < n; a++ {
		paths[a] = graph.Path{}
	}
	b.root.route(perm, paths, identity(n))
	return paths
}

// identity returns [0, 1, …, n−1] — the message indices carried through
// the recursion so each level appends to the right global path.
func identity(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// route appends this level's edges to the global paths. perm maps local
// in-port a to local out-port perm[a]; msg[a] is the global message index
// entering local port a.
func (nd *benesNode) route(perm []int, paths []graph.Path, msg []int) {
	n := nd.n
	if n == 2 {
		for a := 0; a < 2; a++ {
			paths[msg[a]] = append(paths[msg[a]], nd.eIn[a], nd.eOut[perm[a]])
		}
		return
	}

	// Waksman's looping algorithm: pick a subnetwork (0 = upper,
	// 1 = lower) for every message so that port-switch partners (a and
	// a^1 share an input switch; b and b^1 an output switch) always take
	// different subnetworks.
	inv := make([]int, n)
	for a, bp := range perm {
		inv[bp] = a
	}
	subnet := make([]int, n)
	for a := range subnet {
		subnet[a] = -1
	}
	for a0 := 0; a0 < n; a0++ {
		if subnet[a0] >= 0 {
			continue
		}
		a, s := a0, 0
		for {
			subnet[a] = s
			// The out-switch partner of perm[a] must use the other
			// subnetwork; find who drives it.
			a2 := inv[perm[a]^1]
			if subnet[a2] >= 0 {
				break
			}
			subnet[a2] = 1 - s
			// a2's in-switch partner must take the opposite of a2.
			a3 := a2 ^ 1
			if subnet[a3] >= 0 {
				break
			}
			a = a3 // subnet[a3] will be set to s at loop top
		}
	}

	// Split into the two half-size subproblems.
	permU := make([]int, n/2)
	permL := make([]int, n/2)
	msgU := make([]int, n/2)
	msgL := make([]int, n/2)
	for a := 0; a < n; a++ {
		gid := msg[a]
		paths[gid] = append(paths[gid], nd.eIn[a])
		if subnet[a] == 0 {
			permU[a/2] = perm[a] / 2
			msgU[a/2] = gid
		} else {
			permL[a/2] = perm[a] / 2
			msgL[a/2] = gid
		}
	}
	nd.upper.route(permU, paths, msgU)
	nd.lower.route(permL, paths, msgL)
	for a := 0; a < n; a++ {
		paths[msg[a]] = append(paths[msg[a]], nd.eOut[perm[a]])
	}
}
