package topology

import (
	"testing"
	"testing/quick"

	"wormhole/internal/graph"
	"wormhole/internal/rng"
)

func TestBenesStructure(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 64} {
		b := NewBenes(n)
		if len(b.Inputs) != n || len(b.Outputs) != n {
			t.Fatalf("n=%d: port counts %d/%d", n, len(b.Inputs), len(b.Outputs))
		}
		if !graph.IsDAG(b.G) {
			t.Errorf("n=%d: Beneš network must be acyclic", n)
		}
		// Every input reaches every output in exactly Depth hops.
		for _, in := range b.Inputs {
			dist := graph.BFSDistances(b.G, in)
			for _, out := range b.Outputs {
				if dist[out] != b.Depth {
					t.Fatalf("n=%d: distance %d, want %d", n, dist[out], b.Depth)
				}
			}
		}
	}
}

func TestBenesSwitchCount(t *testing.T) {
	// The recursive construction uses S(n) = n/2 + 2·S(n/2) switches with
	// S(2) = 1, i.e. n·log n − n/2 switches; total nodes add the 2n ports.
	for _, n := range []int{2, 4, 8, 32} {
		b := NewBenes(n)
		k := 0
		for v := n; v > 1; v >>= 1 {
			k++
		}
		wantSwitches := n*k - n/2
		if got := b.G.NumNodes() - 2*n; got != wantSwitches {
			t.Errorf("n=%d: %d switches, want %d", n, got, wantSwitches)
		}
	}
}

func TestBenesRoutesIdentity(t *testing.T) {
	b := NewBenes(8)
	perm := []int{0, 1, 2, 3, 4, 5, 6, 7}
	paths := b.RoutePermutation(perm)
	assertBenesPaths(t, b, perm, paths)
}

func TestBenesRoutesReversal(t *testing.T) {
	b := NewBenes(8)
	perm := []int{7, 6, 5, 4, 3, 2, 1, 0}
	paths := b.RoutePermutation(perm)
	assertBenesPaths(t, b, perm, paths)
}

// TestBenesEdgeDisjointAllPermutations exhaustively checks every
// permutation on 4 inputs — rearrangeability at small scale.
func TestBenesEdgeDisjointAllPermutations(t *testing.T) {
	b := NewBenes(4)
	perm := []int{0, 1, 2, 3}
	var rec func(k int)
	rec = func(k int) {
		if k == 4 {
			assertBenesPaths(t, b, perm, b.RoutePermutation(perm))
			return
		}
		for i := k; i < 4; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
}

// TestBenesRandomPermutations property-checks larger sizes.
func TestBenesRandomPermutations(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 8 << (seed % 4) // 8..64
		b := NewBenes(n)
		perm := r.Perm(n)
		paths := b.RoutePermutation(perm)
		// Validity.
		for a, p := range paths {
			if err := p.Validate(b.G, b.Inputs[a], b.Outputs[perm[a]]); err != nil {
				return false
			}
			if len(p) != b.Depth {
				return false
			}
		}
		// Edge-disjointness.
		used := make(map[graph.EdgeID]bool)
		for _, p := range paths {
			for _, e := range p {
				if used[e] {
					return false
				}
				used[e] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBenesRejectsNonPermutation(t *testing.T) {
	b := NewBenes(4)
	for name, perm := range map[string][]int{
		"short":     {0, 1},
		"dup":       {0, 0, 1, 2},
		"out-range": {0, 1, 2, 9},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			b.RoutePermutation(perm)
		}()
	}
}

func assertBenesPaths(t *testing.T, b *Benes, perm []int, paths []graph.Path) {
	t.Helper()
	used := make(map[graph.EdgeID]int)
	for a, p := range paths {
		if err := p.Validate(b.G, b.Inputs[a], b.Outputs[perm[a]]); err != nil {
			t.Fatalf("path %d invalid: %v", a, err)
		}
		for _, e := range p {
			used[e]++
			if used[e] > 1 {
				t.Fatalf("edge %d shared between paths (perm %v)", e, perm)
			}
		}
	}
}
