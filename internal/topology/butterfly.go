// Package topology constructs the networks used throughout the paper:
// butterflies (plain, wrapped, and back-to-back two-pass), meshes, toruses,
// hypercubes, linear arrays, complete graphs, and random regular digraphs.
//
// Constructors return both the graph and a coordinate scheme so that
// algorithms can translate between (column, level) positions and node IDs
// without re-deriving the layout.
package topology

import (
	"fmt"

	"wormhole/internal/graph"
	"wormhole/internal/rng"
)

// Butterfly is an n-input butterfly network as defined in Section 1.2 of
// the paper: n(log n + 1) nodes arranged in log n + 1 levels of n nodes
// each. Node (w, i) sits in column w (a log n-bit number) at level i.
// Edges are directed downward, level i → level i+1: the "straight" edge
// keeps the column, the "cross" edge flips bit i+1 (bit positions numbered
// 1..log n from the most significant, per the paper).
//
// Level 0 nodes are the inputs; level log n nodes are the outputs.
type Butterfly struct {
	G      *graph.Graph
	Inputs int // n
	Levels int // log n (number of edge stages)
}

// NewButterfly builds an n-input butterfly. n must be a power of two ≥ 2.
func NewButterfly(n int) *Butterfly {
	k := log2Exact(n)
	g := graph.New(n*(k+1), 2*n*k)
	b := &Butterfly{G: g, Inputs: n, Levels: k}
	for lvl := 0; lvl <= k; lvl++ {
		for w := 0; w < n; w++ {
			id := g.AddNode(fmt.Sprintf("(%0*b,%d)", k, w, lvl))
			if id != b.Node(w, lvl) {
				panic("topology: butterfly node numbering out of order")
			}
		}
	}
	for lvl := 0; lvl < k; lvl++ {
		for w := 0; w < n; w++ {
			// Straight edge: same column.
			g.AddEdge(b.Node(w, lvl), b.Node(w, lvl+1))
			// Cross edge: flip the bit at position lvl+1 (1-indexed from
			// the most significant bit).
			g.AddEdge(b.Node(w, lvl), b.Node(flipBit(w, k, lvl+1), lvl+1))
		}
	}
	return b
}

// Node returns the ID of the node in column w at level lvl.
func (b *Butterfly) Node(w, lvl int) graph.NodeID {
	return graph.NodeID(lvl*b.Inputs + w)
}

// Column returns the column of node id.
func (b *Butterfly) Column(id graph.NodeID) int { return int(id) % b.Inputs }

// Level returns the level of node id.
func (b *Butterfly) Level(id graph.NodeID) int { return int(id) / b.Inputs }

// Input returns the ID of input w (level 0).
func (b *Butterfly) Input(w int) graph.NodeID { return b.Node(w, 0) }

// Output returns the ID of output w (level log n).
func (b *Butterfly) Output(w int) graph.NodeID { return b.Node(w, b.Levels) }

// Route returns the unique downward path from input column src to output
// column dst: at level i the path follows the straight edge if bit i+1 of
// src and dst agree and the cross edge otherwise (bit-fixing).
func (b *Butterfly) Route(src, dst int) graph.Path {
	p := make(graph.Path, 0, b.Levels)
	w := src
	for lvl := 0; lvl < b.Levels; lvl++ {
		next := setBitTo(w, b.Levels, lvl+1, bitAt(dst, b.Levels, lvl+1))
		eid := b.G.FindEdge(b.Node(w, lvl), b.Node(next, lvl+1))
		if eid == graph.None {
			panic("topology: missing butterfly edge")
		}
		p = append(p, eid)
		w = next
	}
	return p
}

// TwoPassButterfly is the unrolled network used by the Section 3.1
// algorithm: a message first routes down one butterfly to a random column
// at level log n, then down a second (mirrored) butterfly to its true
// destination (Figure 2 of the paper). Unrolling the two passes into a
// 2·log n-stage leveled DAG models the pipelined double traversal while
// keeping the network acyclic, so drop-on-delay routing cannot deadlock.
type TwoPassButterfly struct {
	G      *graph.Graph
	Inputs int
	Levels int // log n; total edge stages = 2*log n
}

// NewTwoPassButterfly builds the back-to-back butterfly on n inputs.
func NewTwoPassButterfly(n int) *TwoPassButterfly {
	k := log2Exact(n)
	g := graph.New(n*(2*k+1), 4*n*k)
	t := &TwoPassButterfly{G: g, Inputs: n, Levels: k}
	for lvl := 0; lvl <= 2*k; lvl++ {
		for w := 0; w < n; w++ {
			g.AddNode(fmt.Sprintf("(%0*b,%d)", k, w, lvl))
		}
	}
	for lvl := 0; lvl < 2*k; lvl++ {
		// Stage lvl fixes butterfly bit (lvl mod k) + 1: the first pass
		// fixes bits 1..k, then the second pass fixes them again.
		bit := lvl%k + 1
		for w := 0; w < n; w++ {
			g.AddEdge(t.Node(w, lvl), t.Node(w, lvl+1))
			g.AddEdge(t.Node(w, lvl), t.Node(flipBit(w, k, bit), lvl+1))
		}
	}
	return t
}

// Node returns the ID of the node in column w at level lvl (0..2·log n).
func (t *TwoPassButterfly) Node(w, lvl int) graph.NodeID {
	return graph.NodeID(lvl*t.Inputs + w)
}

// Column returns the column of node id.
func (t *TwoPassButterfly) Column(id graph.NodeID) int { return int(id) % t.Inputs }

// Level returns the level of node id.
func (t *TwoPassButterfly) Level(id graph.NodeID) int { return int(id) / t.Inputs }

// Input returns the ID of input w (level 0).
func (t *TwoPassButterfly) Input(w int) graph.NodeID { return t.Node(w, 0) }

// Output returns the ID of output w (level 2·log n).
func (t *TwoPassButterfly) Output(w int) graph.NodeID { return t.Node(w, 2*t.Levels) }

// Route returns the two-pass path from input column src through intermediate
// column mid (reached at level log n) to output column dst.
func (t *TwoPassButterfly) Route(src, mid, dst int) graph.Path {
	p := make(graph.Path, 0, 2*t.Levels)
	w := src
	for lvl := 0; lvl < 2*t.Levels; lvl++ {
		bit := lvl%t.Levels + 1
		target := mid
		if lvl >= t.Levels {
			target = dst
		}
		next := setBitTo(w, t.Levels, bit, bitAt(target, t.Levels, bit))
		eid := t.G.FindEdge(t.Node(w, lvl), t.Node(next, lvl+1))
		if eid == graph.None {
			panic("topology: missing two-pass butterfly edge")
		}
		p = append(p, eid)
		w = next
	}
	return p
}

// RandomRoute picks a uniform intermediate column and returns the resulting
// two-pass path along with the chosen column.
func (t *TwoPassButterfly) RandomRoute(src, dst int, r *rng.Source) (graph.Path, int) {
	mid := r.Intn(t.Inputs)
	return t.Route(src, mid, dst), mid
}

// EdgeLevel returns the stage (0-based) an edge of a leveled network spans,
// derived from its tail's level. It works for both Butterfly and
// TwoPassButterfly graphs when given the respective level function.
func EdgeLevel(g *graph.Graph, levelOf func(graph.NodeID) int, e graph.EdgeID) int {
	return levelOf(g.Edge(e).Tail)
}

// --- bit helpers -----------------------------------------------------------
//
// The paper numbers bit positions 1..log n with position 1 the most
// significant bit of the column number.

// bitAt returns bit `pos` (1-indexed from the MSB of a k-bit word) of w.
func bitAt(w, k, pos int) int {
	return (w >> (k - pos)) & 1
}

// flipBit flips bit `pos` of the k-bit word w.
func flipBit(w, k, pos int) int {
	return w ^ (1 << (k - pos))
}

// setBitTo sets bit `pos` of the k-bit word w to v (0 or 1).
func setBitTo(w, k, pos, v int) int {
	mask := 1 << (k - pos)
	if v == 0 {
		return w &^ mask
	}
	return w | mask
}

// log2Exact returns log2(n) and panics unless n is a power of two ≥ 2.
func log2Exact(n int) int {
	if n < 2 || n&(n-1) != 0 {
		panic(fmt.Sprintf("topology: size %d is not a power of two ≥ 2", n))
	}
	k := 0
	for v := n; v > 1; v >>= 1 {
		k++
	}
	return k
}

// Log2 returns ⌈log2(n)⌉ for n ≥ 1. It is exported for use by experiment
// code that sets L = log n and q = log n.
func Log2(n int) int {
	if n < 1 {
		panic("topology: Log2 of non-positive value")
	}
	k := 0
	for v := n - 1; v > 0; v >>= 1 {
		k++
	}
	if k == 0 {
		return 1 // the paper's message-length floors: log 1 treated as 1
	}
	return k
}
