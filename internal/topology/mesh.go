package topology

import (
	"fmt"

	"wormhole/internal/graph"
)

// Mesh is a d-dimensional mesh (a k-ary n-cube without wraparound, the
// "mesh with constant dimension" of the paper's Section 1.3.4). Each node
// has a coordinate vector; antiparallel edge pairs connect nodes that
// differ by one in exactly one coordinate.
type Mesh struct {
	G     *graph.Graph
	Dims  []int // size per dimension
	Wrap  bool  // true for a torus
	strid []int // row-major strides
}

// NewMesh builds a mesh with the given per-dimension sizes.
func NewMesh(dims ...int) *Mesh { return newMesh(false, dims) }

// NewTorus builds a torus (mesh with wraparound links) with the given
// per-dimension sizes. Dimensions of size ≤ 2 get a single edge pair
// rather than doubled parallel wrap edges.
func NewTorus(dims ...int) *Mesh { return newMesh(true, dims) }

func newMesh(wrap bool, dims []int) *Mesh {
	if len(dims) == 0 {
		panic("topology: mesh needs at least one dimension")
	}
	n := 1
	strid := make([]int, len(dims))
	for i := len(dims) - 1; i >= 0; i-- {
		if dims[i] < 2 {
			panic(fmt.Sprintf("topology: mesh dimension %d has size %d < 2", i, dims[i]))
		}
		strid[i] = n
		n *= dims[i]
	}
	g := graph.New(n, 2*len(dims)*n)
	m := &Mesh{G: g, Dims: append([]int(nil), dims...), Wrap: wrap, strid: strid}
	coord := make([]int, len(dims))
	for v := 0; v < n; v++ {
		g.AddNode(fmt.Sprint(m.coordOf(v, coord)))
	}
	for v := 0; v < n; v++ {
		m.coordOf(v, coord)
		for d := range dims {
			if coord[d]+1 < dims[d] {
				g.AddBiEdge(graph.NodeID(v), graph.NodeID(v+strid[d]))
			} else if wrap && dims[d] > 2 {
				// Wrap edge back to coordinate 0 in dimension d.
				g.AddBiEdge(graph.NodeID(v), graph.NodeID(v-(dims[d]-1)*strid[d]))
			}
		}
	}
	return m
}

// Node returns the ID of the node at the given coordinates.
func (m *Mesh) Node(coord ...int) graph.NodeID {
	if len(coord) != len(m.Dims) {
		panic("topology: coordinate arity mismatch")
	}
	v := 0
	for d, c := range coord {
		if c < 0 || c >= m.Dims[d] {
			panic(fmt.Sprintf("topology: coordinate %d out of range [0,%d)", c, m.Dims[d]))
		}
		v += c * m.strid[d]
	}
	return graph.NodeID(v)
}

// Coord returns the coordinates of node id as a fresh slice.
func (m *Mesh) Coord(id graph.NodeID) []int {
	out := make([]int, len(m.Dims))
	return m.coordOf(int(id), out)
}

func (m *Mesh) coordOf(v int, out []int) []int {
	for d := range m.Dims {
		out[d] = v / m.strid[d] % m.Dims[d]
	}
	return out
}

// DimensionOrderRoute returns the canonical e-cube path from src to dst:
// correct coordinates one dimension at a time, lowest dimension first.
// On a torus it takes the shorter way around each ring. Dimension-order
// routes are the standard deadlock-free minimal paths for meshes.
func (m *Mesh) DimensionOrderRoute(src, dst graph.NodeID) graph.Path {
	var p graph.Path
	cur := m.Coord(src)
	want := m.Coord(dst)
	for d := range m.Dims {
		for cur[d] != want[d] {
			step := m.stepToward(cur, d, want[d])
			from := m.Node(cur...)
			cur[d] = step
			to := m.Node(cur...)
			eid := m.G.FindEdge(from, to)
			if eid == graph.None {
				panic("topology: missing mesh edge on dimension-order route")
			}
			p = append(p, eid)
		}
	}
	return p
}

// stepToward returns the next coordinate value in dimension d moving from
// cur[d] toward target, respecting wraparound on toruses.
func (m *Mesh) stepToward(cur []int, d, target int) int {
	size := m.Dims[d]
	c := cur[d]
	if !m.Wrap || size <= 2 {
		if target > c {
			return c + 1
		}
		return c - 1
	}
	fwd := (target - c + size) % size
	bwd := (c - target + size) % size
	if fwd <= bwd {
		return (c + 1) % size
	}
	return (c - 1 + size) % size
}
