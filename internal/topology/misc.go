package topology

import (
	"fmt"
	"math/bits"

	"wormhole/internal/graph"
	"wormhole/internal/rng"
)

// Hypercube is an n-node boolean hypercube, n a power of two. Node IDs are
// the corner labels; antiparallel edge pairs connect labels at Hamming
// distance one.
type Hypercube struct {
	G    *graph.Graph
	Dim  int // log n
	Size int // n
}

// NewHypercube builds the hypercube on n = 2^k nodes.
func NewHypercube(n int) *Hypercube {
	k := log2Exact(n)
	g := graph.New(n, n*k)
	h := &Hypercube{G: g, Dim: k, Size: n}
	for v := 0; v < n; v++ {
		g.AddNode(fmt.Sprintf("%0*b", k, v))
	}
	for v := 0; v < n; v++ {
		for d := 0; d < k; d++ {
			u := v ^ (1 << d)
			if u > v {
				g.AddBiEdge(graph.NodeID(v), graph.NodeID(u))
			}
		}
	}
	return h
}

// Route returns the dimension-order (e-cube) path from src to dst: bits are
// corrected from the lowest dimension upward.
func (h *Hypercube) Route(src, dst graph.NodeID) graph.Path {
	var p graph.Path
	cur := int(src)
	diff := cur ^ int(dst)
	for diff != 0 {
		d := bits.TrailingZeros(uint(diff))
		next := cur ^ (1 << d)
		eid := h.G.FindEdge(graph.NodeID(cur), graph.NodeID(next))
		if eid == graph.None {
			panic("topology: missing hypercube edge")
		}
		p = append(p, eid)
		cur = next
		diff &^= 1 << d
	}
	return p
}

// NewLinearArray builds a path graph on n nodes with antiparallel edges.
// Linear arrays realize exactly the worst case of the naive coloring bound
// and make handy unit-test fixtures.
func NewLinearArray(n int) *graph.Graph {
	if n < 1 {
		panic("topology: linear array needs at least one node")
	}
	g := graph.New(n, 2*(n-1))
	for v := 0; v < n; v++ {
		g.AddNode(fmt.Sprintf("%d", v))
	}
	for v := 0; v+1 < n; v++ {
		g.AddBiEdge(graph.NodeID(v), graph.NodeID(v+1))
	}
	return g
}

// NewComplete builds the complete directed graph on n nodes (every ordered
// pair joined by an edge). The Theorem 2.2.1 adversarial construction
// embeds into a complete graph of primary-edge endpoints.
func NewComplete(n int) *graph.Graph {
	g := graph.New(n, n*(n-1))
	for v := 0; v < n; v++ {
		g.AddNode(fmt.Sprintf("%d", v))
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				g.AddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	return g
}

// NewRandomRegular builds a random d-regular digraph on n nodes as the
// union of d uniform random permutation digraphs (edge v → π_i(v) for each
// of d independent permutations π_i). Every node has in-degree and
// out-degree exactly d, and for d ≥ 2 the union is strongly connected with
// high probability; callers that require connectivity should check and
// redraw. Fixed points of a permutation yield (harmless) self-loops; the
// retry loop in callers filters graphs where that matters.
func NewRandomRegular(n, d int, r *rng.Source) *graph.Graph {
	if d < 1 || n < 2 {
		panic("topology: random regular graph needs n ≥ 2, d ≥ 1")
	}
	g := graph.New(n, n*d)
	for v := 0; v < n; v++ {
		g.AddNode(fmt.Sprintf("%d", v))
	}
	for i := 0; i < d; i++ {
		pi := r.Perm(n)
		for v := 0; v < n; v++ {
			if pi[v] == v {
				continue // skip self-loops; they carry no traffic
			}
			g.AddEdge(graph.NodeID(v), graph.NodeID(pi[v]))
		}
	}
	return g
}

// StronglyConnected reports whether every node can reach every other node.
func StronglyConnected(g *graph.Graph) bool {
	n := g.NumNodes()
	if n <= 1 {
		return true
	}
	if reachCount(g, 0) != n {
		return false
	}
	// Reverse reachability: build the transpose once.
	rev := graph.New(n, g.NumEdges())
	for v := 0; v < n; v++ {
		rev.AddNode("")
	}
	for _, e := range g.Edges() {
		rev.AddEdge(e.Head, e.Tail)
	}
	return reachCount(rev, 0) == n
}

func reachCount(g *graph.Graph, src graph.NodeID) int {
	count := 0
	for _, d := range graph.BFSDistances(g, src) {
		if d >= 0 {
			count++
		}
	}
	return count
}
