package topology

import (
	"testing"
	"testing/quick"

	"wormhole/internal/graph"
	"wormhole/internal/rng"
)

func TestButterflyStructure(t *testing.T) {
	for _, n := range []int{2, 4, 8, 32} {
		bf := NewButterfly(n)
		k := bf.Levels
		if wantNodes := n * (k + 1); bf.G.NumNodes() != wantNodes {
			t.Errorf("n=%d: %d nodes, want n(log n+1)=%d", n, bf.G.NumNodes(), wantNodes)
		}
		if wantEdges := 2 * n * k; bf.G.NumEdges() != wantEdges {
			t.Errorf("n=%d: %d edges, want 2n·log n=%d", n, bf.G.NumEdges(), wantEdges)
		}
		// Every non-output node has out-degree 2; every non-input
		// in-degree 2.
		for w := 0; w < n; w++ {
			for lvl := 0; lvl <= k; lvl++ {
				id := bf.Node(w, lvl)
				wantOut := 2
				if lvl == k {
					wantOut = 0
				}
				if bf.G.OutDegree(id) != wantOut {
					t.Fatalf("n=%d (%d,%d): out-degree %d", n, w, lvl, bf.G.OutDegree(id))
				}
				wantIn := 2
				if lvl == 0 {
					wantIn = 0
				}
				if bf.G.InDegree(id) != wantIn {
					t.Fatalf("n=%d (%d,%d): in-degree %d", n, w, lvl, bf.G.InDegree(id))
				}
				if bf.Column(id) != w || bf.Level(id) != lvl {
					t.Fatalf("coordinate inverse broken at (%d,%d)", w, lvl)
				}
			}
		}
		if !graph.IsDAG(bf.G) {
			t.Errorf("n=%d: butterfly must be leveled/acyclic", n)
		}
	}
}

func TestButterflyEdgesMatchDefinition(t *testing.T) {
	// Section 1.2: (w, i) links to (w', i+1) iff w' = w or w' differs from
	// w exactly in bit position i+1 (1-indexed from the most significant).
	bf := NewButterfly(8)
	k := bf.Levels
	for _, e := range bf.G.Edges() {
		wi, li := bf.Column(e.Tail), bf.Level(e.Tail)
		wj, lj := bf.Column(e.Head), bf.Level(e.Head)
		if lj != li+1 {
			t.Fatalf("edge spans levels %d→%d", li, lj)
		}
		if wi != wj {
			diff := wi ^ wj
			wantBit := 1 << (k - (li + 1))
			if diff != wantBit {
				t.Fatalf("cross edge flips %b, want bit %b (level %d)", diff, wantBit, li)
			}
		}
	}
}

func TestButterflyRoute(t *testing.T) {
	bf := NewButterfly(16)
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			p := bf.Route(src, dst)
			if len(p) != bf.Levels {
				t.Fatalf("route %d→%d has %d edges", src, dst, len(p))
			}
			if err := p.Validate(bf.G, bf.Input(src), bf.Output(dst)); err != nil {
				t.Fatalf("route %d→%d invalid: %v", src, dst, err)
			}
			if !p.EdgeSimple() {
				t.Fatalf("route %d→%d not edge-simple", src, dst)
			}
		}
	}
}

func TestButterflyRouteUnique(t *testing.T) {
	// The butterfly has exactly one input→output path; Route must find it
	// and its length must equal the BFS distance.
	bf := NewButterfly(8)
	for src := 0; src < 8; src++ {
		dist := graph.BFSDistances(bf.G, bf.Input(src))
		for dst := 0; dst < 8; dst++ {
			if dist[bf.Output(dst)] != bf.Levels {
				t.Fatalf("distance %d→%d = %d, want log n", src, dst, dist[bf.Output(dst)])
			}
		}
	}
}

func TestTwoPassButterfly(t *testing.T) {
	n := 8
	tp := NewTwoPassButterfly(n)
	k := tp.Levels
	if wantNodes := n * (2*k + 1); tp.G.NumNodes() != wantNodes {
		t.Errorf("%d nodes, want %d", tp.G.NumNodes(), wantNodes)
	}
	if wantEdges := 4 * n * k; tp.G.NumEdges() != wantEdges {
		t.Errorf("%d edges, want %d", tp.G.NumEdges(), wantEdges)
	}
	if !graph.IsDAG(tp.G) {
		t.Error("two-pass butterfly must be acyclic")
	}
	r := rng.New(5)
	for trial := 0; trial < 100; trial++ {
		src, mid, dst := r.Intn(n), r.Intn(n), r.Intn(n)
		p := tp.Route(src, mid, dst)
		if len(p) != 2*k {
			t.Fatalf("two-pass route has %d edges, want %d", len(p), 2*k)
		}
		if err := p.Validate(tp.G, tp.Input(src), tp.Output(dst)); err != nil {
			t.Fatalf("invalid: %v", err)
		}
		// The midpoint at level k must be the chosen intermediate column.
		nodes := p.Nodes(tp.G, tp.Input(src))
		if tp.Column(nodes[k]) != mid {
			t.Fatalf("midpoint column %d, want %d", tp.Column(nodes[k]), mid)
		}
	}
}

func TestTwoPassRandomRoute(t *testing.T) {
	tp := NewTwoPassButterfly(16)
	r := rng.New(9)
	mids := make(map[int]bool)
	for i := 0; i < 64; i++ {
		p, mid := tp.RandomRoute(3, 11, r)
		if err := p.Validate(tp.G, tp.Input(3), tp.Output(11)); err != nil {
			t.Fatal(err)
		}
		mids[mid] = true
	}
	if len(mids) < 8 {
		t.Errorf("random intermediates poorly spread: %d distinct", len(mids))
	}
}

func TestButterflyPanicsOnBadSize(t *testing.T) {
	for _, n := range []int{0, 1, 3, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewButterfly(%d) did not panic", n)
				}
			}()
			NewButterfly(n)
		}()
	}
}

func TestMeshStructure(t *testing.T) {
	m := NewMesh(3, 4)
	if m.G.NumNodes() != 12 {
		t.Fatalf("nodes = %d", m.G.NumNodes())
	}
	// Edges: horizontal 3·3·2? dims {3,4}: dimension 0 has (3-1)·4 = 8
	// pairs, dimension 1 has 3·(4-1) = 9 pairs; ×2 directions.
	if want := 2 * (8 + 9); m.G.NumEdges() != want {
		t.Fatalf("edges = %d, want %d", m.G.NumEdges(), want)
	}
	for x := 0; x < 3; x++ {
		for y := 0; y < 4; y++ {
			id := m.Node(x, y)
			c := m.Coord(id)
			if c[0] != x || c[1] != y {
				t.Fatalf("coord inverse broken at (%d,%d): %v", x, y, c)
			}
		}
	}
}

func TestMeshDimensionOrderRoute(t *testing.T) {
	m := NewMesh(4, 4)
	r := rng.New(2)
	for trial := 0; trial < 100; trial++ {
		src := graph.NodeID(r.Intn(16))
		dst := graph.NodeID(r.Intn(16))
		p := m.DimensionOrderRoute(src, dst)
		if err := p.Validate(m.G, src, dst); err != nil {
			t.Fatal(err)
		}
		cs, cd := m.Coord(src), m.Coord(dst)
		manhattan := abs(cs[0]-cd[0]) + abs(cs[1]-cd[1])
		if len(p) != manhattan {
			t.Fatalf("route length %d, manhattan %d", len(p), manhattan)
		}
	}
}

func TestTorusWrapRoute(t *testing.T) {
	m := NewTorus(8)
	// 0 → 7 on a ring of 8 should go the short way: 1 hop.
	p := m.DimensionOrderRoute(m.Node(0), m.Node(7))
	if len(p) != 1 {
		t.Fatalf("torus 0→7 took %d hops, want 1 (wrap)", len(p))
	}
	p = m.DimensionOrderRoute(m.Node(1), m.Node(5))
	if len(p) != 4 {
		t.Fatalf("torus 1→5 took %d hops, want 4", len(p))
	}
	if !StronglyConnected(m.G) {
		t.Error("torus must be strongly connected")
	}
}

func TestHypercube(t *testing.T) {
	h := NewHypercube(16)
	if h.G.NumNodes() != 16 || h.G.NumEdges() != 16*4 {
		t.Fatalf("hypercube size: %d nodes %d edges", h.G.NumNodes(), h.G.NumEdges())
	}
	r := rng.New(4)
	for trial := 0; trial < 100; trial++ {
		src := graph.NodeID(r.Intn(16))
		dst := graph.NodeID(r.Intn(16))
		p := h.Route(src, dst)
		if err := p.Validate(h.G, src, dst); err != nil {
			t.Fatal(err)
		}
		if len(p) != popcount(int(src)^int(dst)) {
			t.Fatalf("route length %d ≠ hamming distance", len(p))
		}
	}
}

func TestLinearArray(t *testing.T) {
	g := NewLinearArray(5)
	if g.NumNodes() != 5 || g.NumEdges() != 8 {
		t.Fatalf("linear array: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if !StronglyConnected(g) {
		t.Error("linear array with antiparallel edges must be strongly connected")
	}
}

func TestComplete(t *testing.T) {
	g := NewComplete(5)
	if g.NumEdges() != 20 {
		t.Fatalf("complete(5): %d edges", g.NumEdges())
	}
	if graph.Diameter(g) != 1 {
		t.Error("complete graph diameter must be 1")
	}
}

func TestRandomRegularDegrees(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		g := NewRandomRegular(40, 3, r)
		// Self-loops are skipped, so degrees are ≤ d with deficit equal to
		// the number of fixed points.
		deficit := 3*40 - g.NumEdges()
		if deficit < 0 || deficit > 20 {
			return false
		}
		for v := 0; v < 40; v++ {
			if g.OutDegree(graph.NodeID(v)) > 3 || g.InDegree(graph.NodeID(v)) > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomRegularUsuallyStronglyConnected(t *testing.T) {
	r := rng.New(8)
	ok := 0
	for i := 0; i < 20; i++ {
		if StronglyConnected(NewRandomRegular(64, 3, r)) {
			ok++
		}
	}
	if ok < 15 {
		t.Errorf("only %d/20 random regular graphs strongly connected", ok)
	}
}

func TestStronglyConnectedNegative(t *testing.T) {
	g := graph.New(2, 1)
	g.AddNodes(2)
	g.AddEdge(0, 1)
	if StronglyConnected(g) {
		t.Error("one-way pair is not strongly connected")
	}
	if !StronglyConnected(graph.New(0, 0)) {
		t.Error("empty graph is vacuously strongly connected")
	}
}

func TestLog2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10}
	for n, want := range cases {
		if got := Log2(n); got != want {
			t.Errorf("Log2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestEdgeLevel(t *testing.T) {
	bf := NewButterfly(8)
	for _, e := range bf.G.Edges() {
		lvl := EdgeLevel(bf.G, bf.Level, e.ID)
		if lvl != bf.Level(e.Tail) {
			t.Fatal("EdgeLevel mismatch")
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func popcount(x int) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}
