// Package trace reconstructs flit-level space-time diagrams from
// simulator runs. It exists for debugging, teaching, and the examples:
// a rendered diagram makes blocking, virtual-channel sharing, and
// drop-on-delay visually obvious on small instances.
//
// Usage:
//
//	rec := trace.NewRecorder(set)
//	vcsim.Run(set, nil, vcsim.Config{VirtualChannels: 1, Observer: rec})
//	fmt.Println(rec.Render())
//
// The diagram has one row per network edge (in first-use order) and one
// column per flit step; a cell shows which worm's flit sits in that
// edge's buffer at that time ('.' = empty, digits 2-9 = that many worms
// sharing the buffer through distinct virtual channels).
package trace

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"wormhole/internal/graph"
	"wormhole/internal/message"
	"wormhole/internal/vcsim"
)

// ErrDeepRun is returned by Observe for deep-engine configurations
// (LaneDepth > 1 or SharedPool): the recorder's reconstruction assumes
// rigid worms, whose full flit configuration is determined by the frontier
// alone. A deep worm compresses — its flits pile up at non-consecutive
// progress values the advance stream does not carry — so the diagram would
// silently show flits on edges they never occupied. Use the telemetry
// event stream (wormtrace -format chrome) for deep runs instead.
var ErrDeepRun = errors.New("trace: Recorder cannot reconstruct deep-engine runs (LaneDepth > 1 or SharedPool); use the telemetry event stream instead")

// Recorder implements vcsim.Observer and reconstructs per-step buffer
// occupancy from the advance stream. Because worms are rigid, a worm's
// full flit configuration at any time is determined by its frontier, so
// recording (time, frontier) pairs suffices. That assumption is exactly
// the rigid engine's; attach the recorder through Observe, which rejects
// deep-engine configurations with ErrDeepRun.
type Recorder struct {
	set *message.Set
	// advances[m] lists the times at which message m advanced.
	advances [][]int32
	drops    map[message.ID]int
	delivers map[message.ID]int
	lastTime int
}

// NewRecorder returns a recorder for runs over the given message set.
// The same recorder must not be reused across runs.
func NewRecorder(set *message.Set) *Recorder {
	return &Recorder{
		set:      set,
		advances: make([][]int32, set.Len()),
		drops:    make(map[message.ID]int),
		delivers: make(map[message.ID]int),
	}
}

// Observe validates that cfg runs on the rigid engine and installs the
// recorder as its Observer. Deep-engine configurations (LaneDepth > 1 or
// SharedPool) are rejected with ErrDeepRun — the frontier-only advance
// stream cannot reconstruct a compressed worm's flit placement.
func (r *Recorder) Observe(cfg *vcsim.Config) error {
	if cfg.LaneDepth > 1 || cfg.SharedPool {
		return ErrDeepRun
	}
	cfg.Observer = r
	return nil
}

// OnAdvance implements vcsim.Observer.
func (r *Recorder) OnAdvance(time int, msg message.ID, frontier int) {
	r.advances[msg] = append(r.advances[msg], int32(time))
	if time > r.lastTime {
		r.lastTime = time
	}
}

// OnDrop implements vcsim.Observer.
func (r *Recorder) OnDrop(time int, msg message.ID) {
	r.drops[msg] = time
	if time > r.lastTime {
		r.lastTime = time
	}
}

// OnDeliver implements vcsim.Observer.
func (r *Recorder) OnDeliver(time int, msg message.ID) {
	r.delivers[msg] = time
	if time > r.lastTime {
		r.lastTime = time
	}
}

// Steps returns the time of the last recorded event.
func (r *Recorder) Steps() int { return r.lastTime }

// frontierAt returns how many edges msg's header had crossed at time t,
// or -1 if the worm was already dropped.
func (r *Recorder) frontierAt(msg message.ID, t int) int {
	if dropT, dropped := r.drops[msg]; dropped && t >= dropT {
		return -1
	}
	// Advances are recorded in increasing time order.
	adv := r.advances[msg]
	n := sort.Search(len(adv), func(i int) bool { return int(adv[i]) > t })
	return n
}

// OccupancyAt returns, for every edge holding at least one flit at time
// t, the IDs of the messages buffered there.
func (r *Recorder) OccupancyAt(t int) map[graph.EdgeID][]message.ID {
	occ := make(map[graph.EdgeID][]message.ID)
	for i := 0; i < r.set.Len(); i++ {
		id := message.ID(i)
		f := r.frontierAt(id, t)
		if f <= 0 {
			continue
		}
		m := r.set.Get(id)
		d, l := len(m.Path), m.Length
		lo, hi := f-l, f-1
		if lo < 0 {
			lo = 0
		}
		if hi > d-2 {
			hi = d - 2
		}
		for j := lo; j <= hi; j++ {
			e := m.Path[j]
			occ[e] = append(occ[e], id)
		}
	}
	return occ
}

// Render draws the space-time diagram. Rows are edges in first-use order
// across all message paths; columns are flit steps 0..Steps(). Rendering
// is intended for small instances; above maxCells cells it degrades to a
// summary line.
func (r *Recorder) Render() string {
	const maxCells = 200000
	edges, labels := r.edgeRows()
	steps := r.lastTime
	if len(edges)*(steps+1) > maxCells {
		return fmt.Sprintf("trace: %d edges × %d steps — too large to render\n", len(edges), steps+1)
	}
	var b strings.Builder
	width := 0
	for _, l := range labels {
		if len(l) > width {
			width = len(l)
		}
	}
	fmt.Fprintf(&b, "%*s  time 0..%d (one column per flit step)\n", width, "", steps)
	for i, e := range edges {
		fmt.Fprintf(&b, "%-*s  ", width, labels[i])
		for t := 0; t <= steps; t++ {
			b.WriteByte(r.cellAt(e, t))
		}
		b.WriteByte('\n')
	}
	b.WriteString(r.legend())
	return b.String()
}

// cellAt renders one (edge, time) cell.
func (r *Recorder) cellAt(e graph.EdgeID, t int) byte {
	var owners []message.ID
	for i := 0; i < r.set.Len(); i++ {
		id := message.ID(i)
		f := r.frontierAt(id, t)
		if f <= 0 {
			continue
		}
		m := r.set.Get(id)
		d, l := len(m.Path), m.Length
		lo, hi := f-l, f-1
		if lo < 0 {
			lo = 0
		}
		if hi > d-2 {
			hi = d - 2
		}
		for j := lo; j <= hi; j++ {
			if m.Path[j] == e {
				owners = append(owners, id)
				break
			}
		}
	}
	switch {
	case len(owners) == 0:
		return '.'
	case len(owners) == 1:
		return msgChar(owners[0])
	case len(owners) <= 9:
		return byte('0' + len(owners))
	default:
		return '#'
	}
}

// msgChar maps a message ID to a stable display character.
func msgChar(id message.ID) byte {
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	return alphabet[int(id)%len(alphabet)]
}

// edgeRows returns the edges used by any path, in first-use order, with
// labels "tail→head".
func (r *Recorder) edgeRows() ([]graph.EdgeID, []string) {
	var edges []graph.EdgeID
	seen := make(map[graph.EdgeID]bool)
	for i := 0; i < r.set.Len(); i++ {
		for _, e := range r.set.Get(message.ID(i)).Path {
			if !seen[e] {
				seen[e] = true
				edges = append(edges, e)
			}
		}
	}
	labels := make([]string, len(edges))
	for i, e := range edges {
		ed := r.set.G.Edge(e)
		tl := r.set.G.Label(ed.Tail)
		hl := r.set.G.Label(ed.Head)
		if tl == "" {
			tl = fmt.Sprint(ed.Tail)
		}
		if hl == "" {
			hl = fmt.Sprint(ed.Head)
		}
		labels[i] = tl + ">" + hl
	}
	return edges, labels
}

// legend summarizes message fates under the diagram.
func (r *Recorder) legend() string {
	var b strings.Builder
	b.WriteString("worms: ")
	for i := 0; i < r.set.Len(); i++ {
		id := message.ID(i)
		fate := "in flight"
		if t, ok := r.delivers[id]; ok {
			fate = fmt.Sprintf("delivered@%d", t)
		} else if t, ok := r.drops[id]; ok {
			fate = fmt.Sprintf("dropped@%d", t)
		}
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%c=%d(%s)", msgChar(id), i, fate)
	}
	b.WriteByte('\n')
	return b.String()
}

// Assert the interface is satisfied.
var _ vcsim.Observer = (*Recorder)(nil)
