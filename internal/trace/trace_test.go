package trace

import (
	"strings"
	"testing"

	"wormhole/internal/graph"
	"wormhole/internal/message"
	"wormhole/internal/topology"
	"wormhole/internal/vcsim"
)

func lineSet(msgs, span, l int) *message.Set {
	g := topology.NewLinearArray(span + 1)
	set := message.NewSet(g)
	route := message.ShortestPathRouter(g)
	for i := 0; i < msgs; i++ {
		set.Add(0, graph.NodeID(span), l, route(0, graph.NodeID(span)))
	}
	return set
}

func TestRecorderSingleWorm(t *testing.T) {
	const d, l = 4, 3
	set := lineSet(1, d, l)
	rec := NewRecorder(set)
	res := vcsim.Run(set, nil, vcsim.Config{VirtualChannels: 1, Observer: rec})
	if rec.Steps() != res.Steps {
		t.Errorf("recorder steps %d, sim %d", rec.Steps(), res.Steps)
	}
	// The worm advances every step: d+l-1 advances.
	if got := rec.frontierAt(0, res.Steps); got != d+l-1 {
		t.Errorf("final frontier %d, want %d", got, d+l-1)
	}
	// At time 1 the header sits at edge 0.
	occ := rec.OccupancyAt(1)
	if len(occ) != 1 {
		t.Fatalf("occupancy at t=1: %v", occ)
	}
	for e, ids := range occ {
		if e != set.Get(0).Path[0] || len(ids) != 1 || ids[0] != 0 {
			t.Errorf("unexpected occupancy %v", occ)
		}
	}
	// After delivery, nothing is buffered.
	if occ := rec.OccupancyAt(res.Steps); len(occ) != 0 {
		t.Errorf("post-delivery occupancy %v", occ)
	}
}

func TestRecorderOccupancyMatchesSim(t *testing.T) {
	// Two worms sharing a path with B=2: peak occupancy per edge is 2,
	// matching the simulator's MaxOccupied.
	set := lineSet(2, 5, 4)
	rec := NewRecorder(set)
	res := vcsim.Run(set, nil, vcsim.Config{VirtualChannels: 2, Observer: rec})
	peak := 0
	for t0 := 0; t0 <= res.Steps; t0++ {
		for _, ids := range rec.OccupancyAt(t0) {
			if len(ids) > peak {
				peak = len(ids)
			}
		}
	}
	if peak != res.MaxOccupied {
		t.Errorf("recorder peak %d, sim MaxOccupied %d", peak, res.MaxOccupied)
	}
}

func TestRecorderDrops(t *testing.T) {
	set := lineSet(2, 4, 6)
	rec := NewRecorder(set)
	res := vcsim.Run(set, nil, vcsim.Config{
		VirtualChannels: 1, DropOnDelay: true, Observer: rec,
	})
	if res.Dropped != 1 {
		t.Fatalf("dropped %d", res.Dropped)
	}
	if _, ok := rec.drops[1]; !ok {
		t.Error("drop event not recorded")
	}
	// Dropped worm occupies nothing after its drop time.
	dropT := rec.drops[1]
	for _, ids := range rec.OccupancyAt(dropT) {
		for _, id := range ids {
			if id == 1 {
				t.Error("dropped worm still occupies a buffer")
			}
		}
	}
}

func TestRenderDiagram(t *testing.T) {
	set := lineSet(2, 3, 3)
	rec := NewRecorder(set)
	vcsim.Run(set, nil, vcsim.Config{VirtualChannels: 1, Observer: rec})
	out := rec.Render()
	if !strings.Contains(out, "time 0..") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Errorf("worm characters missing:\n%s", out)
	}
	if !strings.Contains(out, "delivered@") {
		t.Errorf("legend missing:\n%s", out)
	}
	// Two edge rows (the final edge's buffer is never occupied but the
	// row still renders) plus header and legend.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+3+1 {
		t.Errorf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestRenderLargeDegradesGracefully(t *testing.T) {
	bf := topology.NewButterfly(256)
	set := message.NewSet(bf.G)
	for src := 0; src < 256; src++ {
		for rep := 0; rep < 4; rep++ {
			dst := (src*7 + rep*13) % 256
			set.Add(bf.Input(src), bf.Output(dst), 300, bf.Route(src, dst))
		}
	}
	rec := NewRecorder(set)
	vcsim.Run(set, nil, vcsim.Config{VirtualChannels: 2, Observer: rec})
	out := rec.Render()
	if !strings.Contains(out, "too large") {
		t.Errorf("large trace should summarize, got %d bytes", len(out))
	}
}

func TestSingleWormDiagonal(t *testing.T) {
	// A lone worm's header traces a diagonal through the diagram: edge i
	// is first occupied at time i+1.
	const d, l = 5, 2
	set := lineSet(1, d, l)
	rec := NewRecorder(set)
	vcsim.Run(set, nil, vcsim.Config{VirtualChannels: 1, Observer: rec})
	m := set.Get(0)
	for i := 0; i <= d-2; i++ {
		occ := rec.OccupancyAt(i + 1)
		found := false
		for e := range occ {
			if e == m.Path[i] {
				found = true
			}
		}
		if !found {
			t.Errorf("edge %d not occupied at time %d: %v", i, i+1, occ)
		}
	}
}

func TestObserveRejectsDeepConfigs(t *testing.T) {
	set := lineSet(1, 3, 2)
	for _, cfg := range []vcsim.Config{
		{VirtualChannels: 1, LaneDepth: 2},
		{VirtualChannels: 2, SharedPool: true},
	} {
		rec := NewRecorder(set)
		if err := rec.Observe(&cfg); err != ErrDeepRun {
			t.Errorf("Observe(%+v) = %v, want ErrDeepRun", cfg, err)
		}
		if cfg.Observer != nil {
			t.Errorf("Observe(%+v) installed the recorder despite rejecting it", cfg)
		}
	}
}

func TestObserveAcceptsRigidConfigs(t *testing.T) {
	set := lineSet(1, 3, 2)
	rec := NewRecorder(set)
	// LaneDepth 0 and 1 both mean the rigid engine.
	for _, depth := range []int{0, 1} {
		cfg := vcsim.Config{VirtualChannels: 1, LaneDepth: depth}
		if err := rec.Observe(&cfg); err != nil {
			t.Fatalf("Observe(depth=%d) = %v, want nil", depth, err)
		}
		if cfg.Observer != vcsim.Observer(rec) {
			t.Errorf("Observe(depth=%d) did not install the recorder", depth)
		}
	}
}
