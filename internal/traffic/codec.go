package traffic

// Runner checkpoint codec. Snapshot serializes a paused in-progress run
// — the measurement accumulators, quantile sketches, window series,
// injection-process state, rng sources, and (embedded last) the full
// vcsim state — so RestoreRunner can rebuild a Runner in a fresh
// process whose Resume produces a Result byte-identical to the
// uninterrupted run. Snapshot is legal only while a run is in progress,
// which in practice means from inside Config.OnStep: pause the run by
// returning an error from OnStep, or snapshot and keep going.
//
// The Network adapter holds function fields (Source/Dest/Route) and
// cannot be serialized; the restoring caller supplies an equivalent
// Config. Every numeric schedule-relevant field is digest-verified
// against the snapshot (ErrRunnerSnapshot on mismatch), and the
// embedded simulator snapshot independently verifies the network's edge
// count — but a caller who rebuilds a *different* network with the same
// shape is on their own, exactly as with vcsim.RestoreSim.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"

	"wormhole/internal/fault"
	"wormhole/internal/telemetry"
	"wormhole/internal/vcsim"
)

// runnerSnapVersion v2 added the fault schedule and retry policy to the
// config digest (and rides on the embedded vcsim snapshot's v2 state).
const (
	runnerSnapMagic   = "WRUNSNAP"
	runnerSnapVersion = 2
)

// ErrRunnerSnapshot is wrapped by every RestoreRunner failure that is
// not an I/O error: bad magic or version, a corrupt stream, or a Config
// that does not match the snapshot's digest.
var ErrRunnerSnapshot = errors.New("traffic: bad runner snapshot")

type runnerWriter struct {
	w   *bufio.Writer
	err error
}

func (s *runnerWriter) u8(v uint8) {
	if s.err == nil {
		s.err = s.w.WriteByte(v)
	}
}

func (s *runnerWriter) bool(v bool) {
	if v {
		s.u8(1)
	} else {
		s.u8(0)
	}
}

func (s *runnerWriter) u64(v uint64) {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	if s.err == nil {
		_, s.err = s.w.Write(b[:])
	}
}

func (s *runnerWriter) i64(v int64)   { s.u64(uint64(v)) }
func (s *runnerWriter) f64(v float64) { s.u64(math.Float64bits(v)) }

func (s *runnerWriter) sketch(sk *Sketch) {
	for _, c := range sk.counts {
		s.i64(c)
	}
	s.i64(sk.n)
	s.i64(sk.sum)
	s.i64(int64(sk.min))
	s.i64(int64(sk.max))
}

type runnerReader struct {
	r   *bufio.Reader
	err error
}

func (s *runnerReader) u8() uint8 {
	if s.err != nil {
		return 0
	}
	b, err := s.r.ReadByte()
	if err != nil {
		s.err = fmt.Errorf("%w: %v", ErrRunnerSnapshot, err)
		return 0
	}
	return b
}

func (s *runnerReader) bool() bool { return s.u8() != 0 }

func (s *runnerReader) u64() uint64 {
	var b [8]byte
	if s.err != nil {
		return 0
	}
	if _, err := io.ReadFull(s.r, b[:]); err != nil {
		s.err = fmt.Errorf("%w: %v", ErrRunnerSnapshot, err)
		return 0
	}
	var v uint64
	for i := range b {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func (s *runnerReader) i64() int64   { return int64(s.u64()) }
func (s *runnerReader) f64() float64 { return math.Float64frombits(s.u64()) }

func (s *runnerReader) sketch(sk *Sketch) {
	for i := range sk.counts {
		sk.counts[i] = s.i64()
	}
	sk.n = s.i64()
	sk.sum = s.i64()
	sk.min = int(s.i64())
	sk.max = int(s.i64())
}

// digest lists every schedule-relevant numeric Config field, in a fixed
// order shared by the snapshot writer and the restore verifier. The
// hook fields and mechanism-only knobs (Shards, Metrics, Trace,
// OnWindow, OnStep, Publish, the Network closures) are absent by
// design: a restored run may swap them freely.
func (c *Config) digest() []struct {
	name string
	bits uint64
} {
	b := func(v bool) uint64 {
		if v {
			return 1
		}
		return 0
	}
	return []struct {
		name string
		bits uint64
	}{
		{"Endpoints", uint64(c.Net.Endpoints)},
		{"VirtualChannels", uint64(c.VirtualChannels)},
		{"LaneDepth", uint64(c.LaneDepth)},
		{"SharedPool", b(c.SharedPool)},
		{"MessageLength", uint64(c.MessageLength)},
		{"Arbitration", uint64(c.Arbitration)},
		{"RestrictedBandwidth", b(c.RestrictedBandwidth)},
		{"Process", uint64(c.Process)},
		{"Rate", math.Float64bits(c.Rate)},
		{"OnMean", math.Float64bits(c.OnMean)},
		{"OffMean", math.Float64bits(c.OffMean)},
		{"Pattern", uint64(c.Pattern)},
		{"HotspotCount", uint64(c.HotspotCount)},
		{"HotspotFraction", math.Float64bits(c.HotspotFraction)},
		{"Warmup", uint64(c.Warmup)},
		{"Measure", uint64(c.Measure)},
		{"Drain", uint64(c.Drain)},
		{"MaxBacklog", uint64(c.MaxBacklog)},
		{"Seed", c.Seed},
		{"NaiveScan", b(c.NaiveScan)},
		{"Window", uint64(c.Window)},
		// Fixed-length fault entries (a count and a content hash rather
		// than the variable-length schedule itself) keep the digest the
		// same length for every Config, so reader and writer never walk
		// out of step.
		{"FaultEvents", uint64(len(c.Faults))},
		{"FaultHash", faultHash(c.Faults)},
		{"RetryMax", uint64(c.Retry.MaxAttempts)},
		{"RetryBase", uint64(c.Retry.Backoff)},
		{"RetryCap", uint64(c.Retry.BackoffCap)},
	}
}

// faultHash is a 64-bit FNV-1a over the schedule's events, giving the
// digest a fixed-width stand-in for the schedule's contents. (The
// embedded simulator snapshot verifies the events themselves.)
func faultHash(s fault.Schedule) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	for _, ev := range s {
		mix(uint64(ev.Step))
		mix(uint64(ev.Edge))
		mix(uint64(ev.Kind))
	}
	return h
}

// Snapshot serializes the in-progress run to w. It is an error to call
// with no run in progress (Runner state between runs is fully derived
// from Config; there is nothing to checkpoint).
func (r *Runner) Snapshot(w io.Writer) error {
	if r.phase == phaseIdle {
		return errors.New("traffic: Snapshot with no run in progress")
	}
	sw := &runnerWriter{w: bufio.NewWriter(w)}
	sw.w.WriteString(runnerSnapMagic)
	sw.u64(runnerSnapVersion)
	for _, f := range r.cfg.digest() {
		sw.u64(f.bits)
	}

	sw.u8(uint8(r.phase))
	sw.i64(int64(r.t))
	sw.i64(int64(r.injectSteps))
	sw.f64(r.res.Offered)
	sw.i64(int64(r.res.LastRelease))
	sw.i64(int64(r.res.Tracked))
	sw.i64(int64(r.trackedDone))
	sw.i64(int64(r.deliveredMeasure))
	sw.sketch(&r.sketch)
	sw.sketch(&r.winSketch)
	sw.i64(r.winDelivered)
	sw.i64(int64(r.winInjBase))
	sw.i64(int64(r.winIndex))
	sw.i64(int64(len(r.windows)))
	for _, ws := range r.windows {
		sw.i64(int64(ws.Index))
		sw.i64(ws.Start)
		sw.i64(ws.End)
		sw.i64(ws.Injected)
		sw.i64(ws.Delivered)
		sw.i64(ws.Backlog)
		sw.f64(ws.LatMean)
		sw.f64(ws.LatP50)
		sw.f64(ws.LatP95)
		sw.f64(ws.LatP99)
		sw.i64(ws.LatMax)
	}
	sw.u64(r.parent.State())
	for i := range r.sources {
		sw.u64(r.sources[i].State())
	}
	// Injection-process state. The derived per-step probabilities are
	// recomputed from cfg on restore; only the evolving state crosses.
	for i := range r.inject {
		sw.f64(r.inject[i].next)
		sw.bool(r.inject[i].on)
	}
	if sw.err != nil {
		return sw.err
	}
	if err := sw.w.Flush(); err != nil {
		return err
	}
	// The simulator snapshot goes last, unframed: it carries its own
	// magic and trailer, and nothing follows it.
	return r.sim.Snapshot(w)
}

// RestoreRunner rebuilds a Runner from a Snapshot stream. cfg must
// match the snapshot on every schedule-relevant field (the Network is
// matched by endpoint count here and edge count by the embedded
// simulator snapshot; its closures must be equivalent to the original's
// for the resumed run to mean anything). Resume on the result continues
// the run byte-identically to the uninterrupted original.
func RestoreRunner(cfg Config, rd io.Reader) (*Runner, error) {
	r, simCfg, err := newRunnerShell(cfg)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReader(rd)
	sr := &runnerReader{r: br}
	var magic [len(runnerSnapMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || string(magic[:]) != runnerSnapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrRunnerSnapshot)
	}
	if v := sr.u64(); sr.err == nil && v != runnerSnapVersion {
		return nil, fmt.Errorf("%w: version %d, this build reads %d", ErrRunnerSnapshot, v, runnerSnapVersion)
	}
	for _, f := range cfg.digest() {
		if got := sr.u64(); sr.err == nil && got != f.bits {
			return nil, fmt.Errorf("%w: config mismatch on %s (snapshot %#x, config %#x)", ErrRunnerSnapshot, f.name, got, f.bits)
		}
	}

	r.phase = runPhase(sr.u8())
	if sr.err == nil && r.phase != phaseInject && r.phase != phaseDrain {
		return nil, fmt.Errorf("%w: phase %d is not an in-progress run", ErrRunnerSnapshot, r.phase)
	}
	r.t = int(sr.i64())
	r.injectSteps = int(sr.i64())
	r.res = Result{
		Offered:     sr.f64(),
		LastRelease: int(sr.i64()),
		Tracked:     int(sr.i64()),
	}
	r.trackedDone = int(sr.i64())
	r.deliveredMeasure = int(sr.i64())
	sr.sketch(&r.sketch)
	sr.sketch(&r.winSketch)
	r.winDelivered = sr.i64()
	r.winInjBase = int(sr.i64())
	r.winIndex = int(sr.i64())
	nw := sr.i64()
	if sr.err == nil && (nw < 0 || nw > int64(r.winIndex)) {
		return nil, fmt.Errorf("%w: %d windows recorded with window index %d", ErrRunnerSnapshot, nw, r.winIndex)
	}
	for i := int64(0); i < nw && sr.err == nil; i++ {
		r.windows = append(r.windows, telemetry.WindowStats{
			Index:     int(sr.i64()),
			Start:     sr.i64(),
			End:       sr.i64(),
			Injected:  sr.i64(),
			Delivered: sr.i64(),
			Backlog:   sr.i64(),
			LatMean:   sr.f64(),
			LatP50:    sr.f64(),
			LatP95:    sr.f64(),
			LatP99:    sr.f64(),
			LatMax:    sr.i64(),
		})
	}
	r.parent.Reseed(sr.u64())
	for i := range r.sources {
		r.sources[i].Reseed(sr.u64())
	}
	on, off := cfg.onOffMeans()
	for i := range r.inject {
		in := injector{r: &r.sources[i], next: sr.f64()}
		osn := sr.bool()
		if cfg.Process == OnOff {
			in.on = osn
			in.pInject = cfg.Rate * (on + off) / on
			in.pExitOn = 1 / on
			in.pExitOff = 1 / off
		}
		r.inject[i] = in
	}
	if sr.err != nil {
		return nil, sr.err
	}
	// The embedded simulator snapshot: read through the same buffered
	// reader (RestoreSim may over-buffer, but nothing follows it).
	sim, err := vcsim.RestoreSim(cfg.Net.G, simCfg, br)
	if err != nil {
		return nil, err
	}
	r.sim = sim
	return r, nil
}
