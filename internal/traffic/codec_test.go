package traffic

// Pause/resume and checkpoint/restore differentials for the open-loop
// Runner: a run paused via Config.OnStep — or snapshotted there, killed,
// and restored into a fresh Runner — must produce a Result (and window
// series) byte-identical to the uninterrupted run.

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"

	"wormhole/internal/telemetry"
)

var errPause = errors.New("pause requested")

func runnerOracleCfg(proc Process, pat Pattern, shards int) Config {
	return Config{
		Net:             NewButterflyNet(8),
		VirtualChannels: 2,
		MessageLength:   4,
		Process:         proc,
		Pattern:         pat,
		Rate:            0.08,
		Warmup:          40,
		Measure:         160,
		Drain:           400,
		Window:          50,
		Seed:            17,
		Shards:          shards,
	}
}

// TestRunnerPauseResume pins the state-machine refactor: pausing via
// OnStep at an arbitrary step and Resuming must not perturb the run.
func TestRunnerPauseResume(t *testing.T) {
	for _, proc := range []Process{Bernoulli, Poisson, OnOff} {
		cfg := runnerOracleCfg(proc, Uniform, 0)
		want, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}

		pauses := 0
		cfg.OnStep = func(step int) error {
			if step%37 == 0 {
				pauses++
				return errPause
			}
			return nil
		}
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		res, err := r.Run()
		for errors.Is(err, errPause) {
			res, err = r.Resume()
		}
		if err != nil {
			t.Fatal(err)
		}
		if pauses == 0 {
			t.Fatalf("%s: run never paused; the resume path is untested", proc)
		}
		if !reflect.DeepEqual(want, res) {
			t.Fatalf("%s: paused run diverged\nwant: %+v\n got: %+v", proc, want, res)
		}
	}
}

// TestRunnerResumeWithoutRun pins the error contract.
func TestRunnerResumeWithoutRun(t *testing.T) {
	r, err := NewRunner(runnerOracleCfg(Bernoulli, Uniform, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Resume(); err == nil {
		t.Fatal("Resume with no run in progress succeeded")
	}
	var blob bytes.Buffer
	if err := r.Snapshot(&blob); err == nil {
		t.Fatal("Snapshot with no run in progress succeeded")
	}
}

// TestRunnerSnapshotRestore is the kill-and-restore differential: the
// run is snapshotted mid-flight from inside OnStep, the original Runner
// abandoned, and a RestoreRunner-built replacement finishes it. The
// final Result and the per-window series must match the uninterrupted
// oracle exactly — including a cross-mechanism restore onto a sharded
// stepper.
func TestRunnerSnapshotRestore(t *testing.T) {
	for _, tc := range []struct {
		name     string
		proc     Process
		pat      Pattern
		snapAt   int
		reShards int
	}{
		{"bernoulli-uniform", Bernoulli, Uniform, 31, 0},
		{"poisson-transpose", Poisson, Transpose, 97, 0},
		{"onoff-hotspot", OnOff, Hotspot, 53, 0},
		{"cross-shard", Bernoulli, Uniform, 142, 4},
		{"drain-phase", Bernoulli, Uniform, 201, 0},
	} {
		cfg := runnerOracleCfg(tc.proc, tc.pat, 0)
		oracle, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer oracle.Close()
		want, err := oracle.Run()
		if err != nil {
			t.Fatal(err)
		}
		wantWindows := append([]telemetry.WindowStats(nil), oracle.Windows()...)

		var blob bytes.Buffer
		cfg.OnStep = func(step int) error {
			if step >= tc.snapAt && blob.Len() == 0 {
				if err := oracle.Snapshot(&blob); err != nil {
					t.Fatal(err)
				}
				return errPause
			}
			return nil
		}
		victim, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer victim.Close()
		oracle = victim // Snapshot target inside OnStep
		if _, err := victim.Run(); !errors.Is(err, errPause) {
			t.Fatalf("%s: run did not pause at step %d: %v", tc.name, tc.snapAt, err)
		}

		reCfg := cfg
		reCfg.OnStep = nil
		reCfg.Shards = tc.reShards
		restored, err := RestoreRunner(reCfg, bytes.NewReader(blob.Bytes()))
		if err != nil {
			t.Fatalf("%s: restore: %v", tc.name, err)
		}
		defer restored.Close()
		got, err := restored.Resume()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: restored run diverged\nwant: %+v\n got: %+v", tc.name, want, got)
		}
		if !reflect.DeepEqual(wantWindows, restored.Windows()) {
			t.Fatalf("%s: restored window series diverged\nwant: %+v\n got: %+v", tc.name, wantWindows, restored.Windows())
		}
	}
}

// TestRestoreRunnerRejectsMismatch: every digest field mismatch must be
// reported as ErrRunnerSnapshot naming the field, and garbage must
// never restore.
func TestRestoreRunnerRejectsMismatch(t *testing.T) {
	cfg := runnerOracleCfg(OnOff, Hotspot, 0)
	var blob bytes.Buffer
	cfg.OnStep = func(step int) error {
		if step == 25 {
			return errPause
		}
		return nil
	}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Run(); !errors.Is(err, errPause) {
		t.Fatal(err)
	}
	if err := r.Snapshot(&blob); err != nil {
		t.Fatal(err)
	}

	mutations := map[string]func(*Config){
		"VirtualChannels": func(c *Config) { c.VirtualChannels = 3 },
		"MessageLength":   func(c *Config) { c.MessageLength = 5 },
		"Rate":            func(c *Config) { c.Rate = 0.05 },
		"Process":         func(c *Config) { c.Process = Poisson },
		"Pattern":         func(c *Config) { c.Pattern = Uniform },
		"Warmup":          func(c *Config) { c.Warmup = 41 },
		"Measure":         func(c *Config) { c.Measure = 161 },
		"Drain":           func(c *Config) { c.Drain = 401 },
		"Seed":            func(c *Config) { c.Seed = 18 },
		"Window":          func(c *Config) { c.Window = 25 },
		"OnMean":          func(c *Config) { c.OnMean = 9 },
	}
	base := runnerOracleCfg(OnOff, Hotspot, 0)
	for field, mutate := range mutations {
		bad := base
		mutate(&bad)
		_, err := RestoreRunner(bad, bytes.NewReader(blob.Bytes()))
		if !errors.Is(err, ErrRunnerSnapshot) {
			t.Errorf("%s mismatch: got %v, want ErrRunnerSnapshot", field, err)
		}
	}
	if _, err := RestoreRunner(base, bytes.NewReader([]byte("NOTARUNNERSNAP"))); !errors.Is(err, ErrRunnerSnapshot) {
		t.Errorf("garbage stream: got %v, want ErrRunnerSnapshot", err)
	}
	valid := blob.Bytes()
	for cut := 0; cut < len(valid) && cut < 4096; cut += 101 {
		if _, err := RestoreRunner(base, bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation at %d restored successfully", cut)
		}
	}
	// The unmutated config restores.
	if _, err := RestoreRunner(base, bytes.NewReader(valid)); err != nil {
		t.Errorf("valid snapshot failed to restore: %v", err)
	}
}

// TestRunnerSnapshotCheckpointContinue pins the checkpoint-and-keep-
// going mode the daemon's periodic checkpointer uses: snapshotting
// WITHOUT pausing must not perturb the run (Snapshot only reads), and
// the LAST snapshot taken must still restore to the oracle result.
func TestRunnerSnapshotCheckpointContinue(t *testing.T) {
	cfg := runnerOracleCfg(Poisson, BitReverse, 0)
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var last bytes.Buffer
	var victim *Runner
	cfg.OnStep = func(step int) error {
		if step%60 == 0 {
			last.Reset()
			if err := victim.Snapshot(&last); err != nil {
				t.Fatal(err)
			}
		}
		return nil
	}
	victim, err = NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	got, err := victim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("periodic snapshots perturbed the run\nwant: %+v\n got: %+v", want, got)
	}
	if last.Len() == 0 {
		t.Fatal("no checkpoint was taken")
	}

	reCfg := cfg
	reCfg.OnStep = nil
	restored, err := RestoreRunner(reCfg, bytes.NewReader(last.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	res, err := restored.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, res) {
		t.Fatalf("restored-from-checkpoint run diverged\nwant: %+v\n got: %+v", want, res)
	}
	if math.IsNaN(res.MeanLatency) {
		t.Fatal("NaN latency after restore")
	}
}
