package traffic

// FuzzRestoreRunner feeds RestoreRunner adversarially mutated runner
// snapshots — truncations, bit-flips, and length inflations of a real
// WRUNSNAP blob taken mid-run with a fault schedule attached, so both
// the runner framing and the embedded WORMSNAP stream (including its v2
// fault block) are under attack. The contract under corruption:
//
//   - never panic;
//   - fail only with typed errors: ErrRunnerSnapshot for runner-level
//     framing, or the vcsim snapshot errors for the embedded stream;
//   - when a mutation decodes anyway, Resume must terminate (the run
//     phases and the simulator horizon bound it) without panicking.
//
// CI runs this as a short -fuzztime smoke; `go test` replays the seed
// corpus.

import (
	"bytes"
	"errors"
	"testing"

	"wormhole/internal/fault"
	"wormhole/internal/vcsim"
)

func FuzzRestoreRunner(f *testing.F) {
	cfg := runnerOracleCfg(OnOff, Hotspot, 0)
	cfg.Faults = fault.Generate(fault.GenConfig{
		Seed: 23, NumEdges: cfg.Net.G.NumEdges(), Horizon: 120, Rate: 0.3, MeanOutage: 40, Lanes: 1,
	})
	cfg.Retry = vcsim.RetryPolicy{MaxAttempts: 3, Backoff: 8, BackoffCap: 64}

	var blob bytes.Buffer
	snapCfg := cfg
	var victim *Runner
	snapCfg.OnStep = func(step int) error {
		if step >= 60 && blob.Len() == 0 {
			if err := victim.Snapshot(&blob); err != nil {
				f.Fatal(err)
			}
			return errPause
		}
		return nil
	}
	victim, err := NewRunner(snapCfg)
	if err != nil {
		f.Fatal(err)
	}
	defer victim.Close()
	if _, err := victim.Run(); !errors.Is(err, errPause) {
		f.Fatalf("run did not pause: %v", err)
	}
	valid := blob.Bytes()

	// Seed corpus: one of each mutation class, plus the identity.
	f.Add(uint8(0), uint32(0), uint8(0))                 // untouched
	f.Add(uint8(1), uint32(len(valid)/2), uint8(0))      // truncate mid-blob
	f.Add(uint8(1), uint32(0), uint8(0))                 // empty input
	f.Add(uint8(2), uint32(9), uint8(0x01))              // corrupt version
	f.Add(uint8(2), uint32(len(valid)/4), uint8(0x80))   // corrupt digest/counters
	f.Add(uint8(2), uint32(2*len(valid)/3), uint8(0x08)) // corrupt embedded sim
	f.Add(uint8(2), uint32(len(valid)-5), uint8(0xFF))   // corrupt trailer region
	f.Add(uint8(3), uint32(len(valid)/2), uint8(33))     // inflate mid-blob
	f.Add(uint8(3), uint32(len(valid)), uint8(255))      // append garbage
	f.Add(uint8(1), uint32(9*len(valid)/10), uint8(0))   // truncate in sim state

	f.Fuzz(func(t *testing.T, mode uint8, pos uint32, val uint8) {
		mut := append([]byte(nil), valid...)
		p := int(pos)
		switch mode % 4 {
		case 1: // truncate
			if p > len(mut) {
				p = len(mut)
			}
			mut = mut[:p]
		case 2: // bit/byte flip
			if len(mut) > 0 {
				mut[p%len(mut)] ^= val | 1
			}
		case 3: // length-inflate: splice extra bytes in
			if p > len(mut) {
				p = len(mut)
			}
			filler := bytes.Repeat([]byte{val}, 1+int(val)%9)
			mut = append(mut[:p:p], append(filler, valid[p:]...)...)
		}

		r, err := RestoreRunner(cfg, bytes.NewReader(mut))
		if err != nil {
			if !errors.Is(err, ErrRunnerSnapshot) &&
				!errors.Is(err, vcsim.ErrSnapshotFormat) &&
				!errors.Is(err, vcsim.ErrSnapshotCorrupt) &&
				!errors.Is(err, vcsim.ErrSnapshotConfig) {
				t.Fatalf("untyped restore error %T: %v", err, err)
			}
			return
		}
		// The mutation decoded — a counter or RNG cursor flipped in a
		// non-validated field. The resumed run must still terminate
		// (phases and the simulator horizon bound it); an error result
		// is fine, a panic or a hang is not.
		_, _ = r.Resume()
		r.Close()
	})
}
