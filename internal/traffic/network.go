package traffic

import (
	"fmt"

	"wormhole/internal/graph"
	"wormhole/internal/topology"
)

// Network adapts a topology for open-loop traffic: a set of numbered
// endpoints, each with an injection node and a delivery node, plus a
// router between endpoint indices. The traffic engine is topology-
// agnostic — it only ever speaks endpoint indices — so any network with
// fixed single-path routing plugs in through this adapter.
//
// For indirect networks (butterflies) the injection and delivery nodes of
// endpoint i differ (input column i, output column i); for direct
// networks (meshes, toruses) they coincide.
type Network struct {
	// G is the physical network.
	G *graph.Graph
	// Endpoints is the number of traffic endpoints.
	Endpoints int
	// Source returns the injection node of endpoint i.
	Source func(i int) graph.NodeID
	// Dest returns the delivery node of endpoint i.
	Dest func(i int) graph.NodeID
	// Route returns the path from endpoint src's injection node to
	// endpoint dst's delivery node.
	Route func(src, dst int) graph.Path
	// Label names the network in tables and errors.
	Label string
}

// NewButterflyNet adapts an n-input butterfly: endpoint i injects at
// input column i and delivers at output column i, routed on the unique
// bit-fixing path. The leveled DAG structure makes greedy wormhole
// routing deadlock-free for any B.
func NewButterflyNet(n int) *Network {
	bf := topology.NewButterfly(n)
	return &Network{
		G:         bf.G,
		Endpoints: n,
		Source:    func(i int) graph.NodeID { return bf.Input(i) },
		Dest:      func(i int) graph.NodeID { return bf.Output(i) },
		Route:     func(src, dst int) graph.Path { return bf.Route(src, dst) },
		Label:     fmt.Sprintf("butterfly(n=%d)", n),
	}
}

// NewMeshNet adapts a mesh with the given per-dimension sizes: every node
// is an endpoint, routed dimension-order. Dimension-order routes on a
// mesh are deadlock-free.
func NewMeshNet(dims ...int) *Network {
	m := topology.NewMesh(dims...)
	return meshNet(m, fmt.Sprintf("mesh%v", dims))
}

// NewTorusNet adapts a torus with the given per-dimension sizes: every
// node is an endpoint, routed dimension-order (shortest way around each
// ring). Unlike the mesh, torus dimension-order routing can deadlock at
// B = 1 under heavy load — which is exactly the regime the open-loop
// engine is built to expose; the run reports Deadlocked when it happens.
func NewTorusNet(dims ...int) *Network {
	m := topology.NewTorus(dims...)
	return meshNet(m, fmt.Sprintf("torus%v", dims))
}

func meshNet(m *topology.Mesh, label string) *Network {
	n := m.G.NumNodes()
	return &Network{
		G:         m.G,
		Endpoints: n,
		Source:    func(i int) graph.NodeID { return graph.NodeID(i) },
		Dest:      func(i int) graph.NodeID { return graph.NodeID(i) },
		Route: func(src, dst int) graph.Path {
			return m.DimensionOrderRoute(graph.NodeID(src), graph.NodeID(dst))
		},
		Label: label,
	}
}
