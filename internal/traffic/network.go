package traffic

import (
	"fmt"

	"wormhole/internal/graph"
	"wormhole/internal/topology"
)

// Network adapts a topology for open-loop traffic: a set of numbered
// endpoints, each with an injection node and a delivery node, plus a
// router between endpoint indices. The traffic engine is topology-
// agnostic — it only ever speaks endpoint indices — so any network with
// fixed single-path routing plugs in through this adapter.
//
// For indirect networks (butterflies) the injection and delivery nodes of
// endpoint i differ (input column i, output column i); for direct
// networks (meshes, toruses) they coincide.
type Network struct {
	// G is the physical network.
	G *graph.Graph
	// Endpoints is the number of traffic endpoints.
	Endpoints int
	// Source returns the injection node of endpoint i.
	Source func(i int) graph.NodeID
	// Dest returns the delivery node of endpoint i.
	Dest func(i int) graph.NodeID
	// Route returns the path from endpoint src's injection node to
	// endpoint dst's delivery node.
	Route func(src, dst int) graph.Path
	// Label names the network in tables and errors.
	Label string
}

// routeCacheMax bounds the endpoint count for which an adapter memoizes
// its n² routes (256 endpoints ≈ a few MB of cached paths at most).
const routeCacheMax = 256

// NewButterflyNet adapts an n-input butterfly: endpoint i injects at
// input column i and delivers at output column i, routed on the unique
// bit-fixing path. The leveled DAG structure makes greedy wormhole
// routing deadlock-free for any B.
//
// Bit-fixing routes are pure functions of (src, dst), so small networks
// memoize them: steady-state injection then stops re-deriving and
// re-allocating the same log n-hop path for every message. The returned
// path is shared — callers must treat it as read-only (the simulator
// copies on Inject).
func NewButterflyNet(n int) *Network {
	bf := topology.NewButterfly(n)
	route := func(src, dst int) graph.Path { return bf.Route(src, dst) }
	if n <= routeCacheMax {
		routes := make([]graph.Path, n*n)
		route = func(src, dst int) graph.Path {
			p := routes[src*n+dst]
			if p == nil {
				p = bf.Route(src, dst)
				routes[src*n+dst] = p
			}
			return p
		}
	}
	return &Network{
		G:         bf.G,
		Endpoints: n,
		Source:    func(i int) graph.NodeID { return bf.Input(i) },
		Dest:      func(i int) graph.NodeID { return bf.Output(i) },
		Route:     route,
		Label:     fmt.Sprintf("butterfly(n=%d)", n),
	}
}

// NewMeshNet adapts a mesh with the given per-dimension sizes: every node
// is an endpoint, routed dimension-order. Dimension-order routes on a
// mesh are deadlock-free.
func NewMeshNet(dims ...int) *Network {
	m := topology.NewMesh(dims...)
	return meshNet(m, fmt.Sprintf("mesh%v", dims))
}

// NewTorusNet adapts a torus with the given per-dimension sizes: every
// node is an endpoint, routed dimension-order (shortest way around each
// ring). Unlike the mesh, torus dimension-order routing can deadlock at
// B = 1 under heavy load — which is exactly the regime the open-loop
// engine is built to expose; the run reports Deadlocked when it happens.
func NewTorusNet(dims ...int) *Network {
	m := topology.NewTorus(dims...)
	return meshNet(m, fmt.Sprintf("torus%v", dims))
}

func meshNet(m *topology.Mesh, label string) *Network {
	n := m.G.NumNodes()
	route := func(src, dst int) graph.Path {
		return m.DimensionOrderRoute(graph.NodeID(src), graph.NodeID(dst))
	}
	if n <= routeCacheMax {
		// Dimension-order routes are pure (src, dst) functions too;
		// memoize them under the same read-only-result contract.
		routes := make([]graph.Path, n*n)
		inner := route
		route = func(src, dst int) graph.Path {
			p := routes[src*n+dst]
			if p == nil {
				p = inner(src, dst)
				if p == nil {
					p = graph.Path{} // src == dst: cache a non-nil empty path
				}
				routes[src*n+dst] = p
			}
			return p
		}
	}
	return &Network{
		G:         m.G,
		Endpoints: n,
		Source:    func(i int) graph.NodeID { return graph.NodeID(i) },
		Dest:      func(i int) graph.NodeID { return graph.NodeID(i) },
		Route:     route,
		Label:     label,
	}
}
