package traffic

import (
	"fmt"
	"math/bits"

	"wormhole/internal/rng"
)

// Pattern selects the spatial destination pattern.
type Pattern int8

const (
	// Uniform sends each message to a uniformly random endpoint.
	Uniform Pattern = iota
	// Transpose sends endpoint s to the endpoint whose index is s's k-bit
	// representation rotated by k/2 — the matrix-transpose permutation,
	// a classic adversarial pattern for dimension-ordered and bit-fixing
	// routers. Requires a power-of-two endpoint count.
	Transpose
	// BitReverse sends endpoint s to the endpoint with s's k bits
	// reversed. Requires a power-of-two endpoint count.
	BitReverse
	// Hotspot sends each message with probability HotspotFraction to one
	// of HotspotCount hot endpoints (spread evenly over the index space)
	// and uniformly otherwise.
	Hotspot
)

func (p Pattern) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case Transpose:
		return "transpose"
	case BitReverse:
		return "bit-reverse"
	case Hotspot:
		return "hotspot"
	}
	return fmt.Sprintf("pattern(%d)", int8(p))
}

// needsPow2 reports whether the pattern permutes endpoint bit strings.
func (p Pattern) needsPow2() bool { return p == Transpose || p == BitReverse }

// dest draws the destination endpoint for one message from src, using the
// endpoint's own random source for the stochastic patterns.
//
//wormvet:hotpath
func (c *Config) dest(src int, r *rng.Source) int {
	n := c.Net.Endpoints
	switch c.Pattern {
	case Uniform:
		return r.Intn(n)
	case Transpose:
		k := bits.Len(uint(n)) - 1
		rot := k / 2
		if rot == 0 {
			return src
		}
		return (src<<rot | src>>(k-rot)) & (n - 1)
	case BitReverse:
		k := bits.Len(uint(n)) - 1
		return int(bits.Reverse64(uint64(src)) >> (64 - k))
	case Hotspot:
		count, frac := c.hotspotParams()
		if r.Float64() < frac {
			return r.Intn(count) * n / count
		}
		return r.Intn(n)
	}
	panic(fmt.Sprintf("traffic: unknown pattern %d", c.Pattern))
}
