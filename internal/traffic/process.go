package traffic

import (
	"fmt"
	"math"

	"wormhole/internal/rng"
)

// Process selects the temporal injection process at each endpoint.
type Process int8

const (
	// Bernoulli injects at most one message per endpoint per step, with
	// probability Rate (so Rate must be ≤ 1).
	Bernoulli Process = iota
	// Poisson injects with exponential interarrival times of mean 1/Rate;
	// several messages can arrive at one endpoint in one step.
	Poisson
	// OnOff is a bursty two-state (Markov-modulated) process: an endpoint
	// alternates between ON bursts of geometric mean length OnMean and
	// idle OFF periods of mean length OffMean, injecting Bernoulli
	// arrivals only while ON, scaled so the long-run rate is Rate.
	OnOff
)

func (p Process) String() string {
	switch p {
	case Bernoulli:
		return "bernoulli"
	case Poisson:
		return "poisson"
	case OnOff:
		return "on-off"
	}
	return fmt.Sprintf("process(%d)", int8(p))
}

// injector is one endpoint's injection-process state. Each endpoint owns
// an independent pre-split rng child, so the arrival stream at endpoint i
// depends only on (seed, i) — never on other endpoints or on execution
// order — which is what keeps whole-table results byte-identical across
// worker counts.
type injector struct {
	r *rng.Source

	// Poisson: absolute time of the next arrival.
	next float64

	// OnOff: current state and the per-step probabilities.
	on       bool
	pInject  float64 // injection probability while ON
	pExitOn  float64 // ON → OFF transition probability
	pExitOff float64 // OFF → ON transition probability
}

// expDraw returns an exponential variate with mean 1/rate.
//
//wormvet:nonalloc
func expDraw(r *rng.Source, rate float64) float64 {
	return -math.Log(1-r.Float64()) / rate
}

func newInjector(cfg *Config, r *rng.Source) injector {
	in := injector{r: r}
	switch cfg.Process {
	case Poisson:
		in.next = expDraw(r, cfg.Rate)
	case OnOff:
		on, off := cfg.onOffMeans()
		in.pInject = cfg.Rate * (on + off) / on
		in.pExitOn = 1 / on
		in.pExitOff = 1 / off
		// Start in the stationary distribution so the warmup window does
		// not have to absorb a cold-start bias on top of filling the
		// network.
		in.on = r.Float64() < on/(on+off)
	}
	return in
}

// arrivals returns how many messages this endpoint injects at step t.
// Calls must be made once per step in increasing t order.
//
//wormvet:hotpath
func (in *injector) arrivals(cfg *Config, t int) int {
	switch cfg.Process {
	case Bernoulli:
		if in.r.Float64() < cfg.Rate {
			return 1
		}
		return 0
	case Poisson:
		k := 0
		for in.next < float64(t+1) {
			k++
			in.next += expDraw(in.r, cfg.Rate)
		}
		return k
	case OnOff:
		k := 0
		if in.on && in.r.Float64() < in.pInject {
			k = 1
		}
		// State transition applies after this step's arrival draw.
		if in.on {
			if in.r.Float64() < in.pExitOn {
				in.on = false
			}
		} else if in.r.Float64() < in.pExitOff {
			in.on = true
		}
		return k
	}
	panic(fmt.Sprintf("traffic: unknown process %d", cfg.Process))
}
