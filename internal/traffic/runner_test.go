package traffic

import (
	"reflect"
	"testing"

	"wormhole/internal/vcsim"
)

// TestRunnerReplayByteIdentical pins the Runner's reuse contract: every
// Run() of one Runner — and the one-shot Run wrapper — produces deeply
// equal Results, across processes, patterns, buffer architectures, and
// both steppers. Reset hygiene bugs (leaked credits, stale queues, RNG
// drift) show up here as run-to-run divergence.
func TestRunnerReplayByteIdentical(t *testing.T) {
	base := Config{
		Net:             NewButterflyNet(16),
		VirtualChannels: 2,
		MessageLength:   4,
		Arbitration:     vcsim.ArbAge,
		Process:         Poisson,
		Rate:            0.25,
		Pattern:         Uniform,
		Warmup:          32,
		Measure:         128,
		Drain:           512,
		MaxBacklog:      4096,
		Seed:            99,
	}
	configs := map[string]func(*Config){
		"poisson-uniform": func(c *Config) {},
		"bernoulli-transpose": func(c *Config) {
			c.Process = Bernoulli
			c.Pattern = Transpose
		},
		"onoff-hotspot": func(c *Config) {
			c.Process = OnOff
			c.Pattern = Hotspot
			c.Rate = 0.1
		},
		"deep-shared": func(c *Config) {
			c.LaneDepth = 4
			c.SharedPool = true
		},
		"naive-oracle": func(c *Config) {
			c.NaiveScan = true
			c.Arbitration = vcsim.ArbRandom
		},
	}
	for name, mutate := range configs {
		cfg := base
		mutate(&cfg)
		want, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := 0; i < 3; i++ {
			got, err := r.Run()
			if err != nil {
				t.Fatalf("%s run %d: %v", name, i, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: reused run %d differs from fresh run\nfresh: %+v\nreuse: %+v", name, i, want, got)
			}
		}
	}
}

// TestRunnerSteadyStateZeroAlloc asserts the benchmark suite's alloc
// gate at its source: once a Runner has executed a run and sized its
// storage, further runs of the same workload allocate nothing.
func TestRunnerSteadyStateZeroAlloc(t *testing.T) {
	cfg := Config{
		Net:             NewButterflyNet(16),
		VirtualChannels: 2,
		LaneDepth:       2,
		MessageLength:   4,
		Arbitration:     vcsim.ArbAge,
		Process:         Poisson,
		Rate:            0.25,
		Pattern:         Uniform,
		Warmup:          32,
		Measure:         128,
		Drain:           512,
		MaxBacklog:      4096,
		Seed:            7,
	}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(3, func() {
		if _, err := r.Run(); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("reused Runner.Run allocates %.1f times per run, want 0", avg)
	}
}
