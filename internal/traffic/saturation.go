package traffic

import "fmt"

// SearchOptions tunes the saturation-rate bisection.
type SearchOptions struct {
	// Lo is a rate assumed sustainable (default 0, trivially so).
	Lo float64
	// Hi is the upper bracket (default: the process's MaxRate).
	Hi float64
	// Iters is the number of bisection steps (default 10). Each halves
	// the bracket, so the knee is located to (Hi−Lo)/2^Iters.
	Iters int
}

// Probe records one bisection probe.
type Probe struct {
	Rate      float64
	Accepted  float64
	MeanLat   float64
	Saturated bool
}

// SearchResult reports a saturation search.
type SearchResult struct {
	// Rate is the saturation rate: the largest probed offered load the
	// network sustained (accepted ≥ 95% of offered). It is 0 when even
	// the first probe saturated, and Hi when the network sustained the
	// full upper bracket.
	Rate float64
	// Probes lists every probe in execution order.
	Probes []Probe
}

// SaturationRate bisects the offered load to locate the network's
// saturation knee: the boundary between rates the network sustains and
// rates where accepted throughput falls behind offered. The search is
// fully deterministic — probe i runs with a seed derived from
// (cfg.Seed, i) — so results are reproducible and independent of any
// surrounding parallelism.
//
// cfg.Rate is ignored; cfg.MaxBacklog should be set (saturated probes
// stop as soon as the backlog proves unsustainable instead of simulating
// the whole collapse).
func SaturationRate(cfg Config, opts SearchOptions) (SearchResult, error) {
	lo := opts.Lo
	hi := opts.Hi
	if hi <= 0 {
		hi = cfg.MaxRate()
	}
	if max := cfg.MaxRate(); hi > max {
		hi = max
	}
	if lo < 0 || lo >= hi {
		return SearchResult{}, fmt.Errorf("traffic: bad saturation bracket [%g, %g]", lo, hi)
	}
	iters := opts.Iters
	if iters <= 0 {
		iters = 10
	}

	var out SearchResult
	probe := func(rate float64) (bool, error) {
		c := cfg
		c.Rate = rate
		// Decorrelate probes while keeping them a pure function of the
		// experiment seed and the probe index.
		c.Seed = cfg.Seed + uint64(len(out.Probes))*0x9E3779B97F4A7C15
		r, err := Run(c)
		if err != nil {
			return false, err
		}
		out.Probes = append(out.Probes, Probe{
			Rate: rate, Accepted: r.Accepted, MeanLat: r.MeanLatency, Saturated: r.Saturated,
		})
		return r.Saturated, nil
	}

	// If the network sustains the full upper bracket, the knee is at or
	// above Hi; report Hi rather than bisecting inside a sustained range.
	sat, err := probe(hi)
	if err != nil {
		return SearchResult{}, err
	}
	if !sat {
		out.Rate = hi
		return out, nil
	}
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		sat, err := probe(mid)
		if err != nil {
			return SearchResult{}, err
		}
		if sat {
			hi = mid
		} else {
			lo = mid
		}
	}
	out.Rate = lo
	return out, nil
}
