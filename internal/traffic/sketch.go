package traffic

import "math/bits"

// Sketch is a fixed-size streaming quantile estimator for non-negative
// integer samples (latencies in flit steps). It is a log-bucketed
// histogram in the HDR-histogram style: values below 64 land in exact
// unit buckets; larger values share subBuckets-wide buckets per power of
// two, bounding the relative quantile error at 1/subBuckets ≈ 3.1%.
//
// The sketch is deterministic (no sampling), insertion-order independent,
// and O(1) per Add with a fixed ~15 KiB footprint, so an open-loop run
// can stream millions of latencies without per-sample storage. Count and
// Mean are exact; quantiles are exact below 64 and within the relative
// error bound above it.
type Sketch struct {
	counts [numBuckets]int64
	n      int64
	sum    int64
	min    int
	max    int
}

const (
	subBits    = 5
	subBuckets = 1 << subBits // exact below 2*subBuckets, 3.1% above
	numBuckets = 60 * subBuckets
)

// bucketOf maps a sample to its bucket index.
//
//wormvet:hotpath
func bucketOf(v int) int {
	u := uint64(v)
	if u < 2*subBuckets {
		return int(u)
	}
	exp := bits.Len64(u) - subBits - 1 // ≥ 1
	b := exp<<subBits + int(u>>uint(exp))
	if b >= numBuckets {
		return numBuckets - 1
	}
	return b
}

// bucketValue returns the representative (midpoint) sample value of a
// bucket, the inverse of bucketOf up to the relative error bound.
func bucketValue(b int) int {
	if b < 2*subBuckets {
		return b
	}
	exp := b>>subBits - 1
	m := b - exp<<subBits // ∈ [subBuckets, 2*subBuckets)
	return m<<uint(exp) + 1<<uint(exp-1)
}

// Add records one sample. Negative samples are clamped to zero.
//
//wormvet:hotpath
func (s *Sketch) Add(v int) {
	if v < 0 {
		v = 0
	}
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.counts[bucketOf(v)]++
	s.n++
	s.sum += int64(v)
}

// Count returns the number of samples recorded.
func (s *Sketch) Count() int64 { return s.n }

// Mean returns the exact sample mean (0 when empty).
func (s *Sketch) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return float64(s.sum) / float64(s.n)
}

// Min returns the smallest sample (0 when empty).
func (s *Sketch) Min() int { return s.min }

// Max returns the largest sample (0 when empty).
func (s *Sketch) Max() int { return s.max }

// Quantile returns an estimate of the p-quantile (0 ≤ p ≤ 1): the
// representative value of the bucket holding the ⌈p·n⌉-th smallest
// sample, clamped to the observed [Min, Max] range.
func (s *Sketch) Quantile(p float64) float64 {
	if s.n == 0 {
		return 0
	}
	target := int64(p*float64(s.n) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > s.n {
		target = s.n
	}
	var cum int64
	for b := 0; b < numBuckets; b++ {
		cum += s.counts[b]
		if cum >= target {
			v := bucketValue(b)
			if v < s.min {
				v = s.min
			}
			if v > s.max {
				v = s.max
			}
			return float64(v)
		}
	}
	return float64(s.max)
}

// Merge folds other into s; the result is identical to having Added both
// sample streams into one sketch.
func (s *Sketch) Merge(other *Sketch) {
	if other.n == 0 {
		return
	}
	if s.n == 0 || other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	for b := range s.counts {
		s.counts[b] += other.counts[b]
	}
	s.n += other.n
	s.sum += other.sum
}
