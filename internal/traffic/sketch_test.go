package traffic

import (
	"math"
	"sort"
	"testing"

	"wormhole/internal/rng"
)

func TestSketchExactBelow64(t *testing.T) {
	var s Sketch
	for v := 0; v < 64; v++ {
		for k := 0; k <= v%3; k++ {
			s.Add(v)
		}
	}
	if s.Min() != 0 || s.Max() != 63 {
		t.Fatalf("min/max = %d/%d", s.Min(), s.Max())
	}
	// Build the exact multiset and compare a few quantiles exactly.
	var xs []int
	for v := 0; v < 64; v++ {
		for k := 0; k <= v%3; k++ {
			xs = append(xs, v)
		}
	}
	sort.Ints(xs)
	for _, p := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 1} {
		target := int(p*float64(len(xs)) + 0.5)
		if target < 1 {
			target = 1
		}
		if target > len(xs) {
			target = len(xs)
		}
		want := xs[target-1]
		if got := s.Quantile(p); got != float64(want) {
			t.Errorf("p=%g: got %g, want %d", p, got, want)
		}
	}
}

func TestSketchRelativeError(t *testing.T) {
	r := rng.New(9)
	var s Sketch
	var xs []float64
	for i := 0; i < 50_000; i++ {
		// Latency-shaped data: a bulk plus a heavy tail.
		v := 20 + r.Intn(60)
		if r.Intn(10) == 0 {
			v = 100 + r.Intn(5000)
		}
		s.Add(v)
		xs = append(xs, float64(v))
	}
	sort.Float64s(xs)
	for _, p := range []float64{0.5, 0.9, 0.95, 0.99} {
		got := s.Quantile(p)
		want := xs[int(p*float64(len(xs)))]
		if relErr := math.Abs(got-want) / want; relErr > 1.0/subBuckets {
			t.Errorf("p=%g: sketch %g vs exact %g (rel err %.3f > %.3f)",
				p, got, want, relErr, 1.0/subBuckets)
		}
	}
	// Mean is exact.
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	if got, want := s.Mean(), sum/float64(len(xs)); math.Abs(got-want) > 1e-9 {
		t.Errorf("mean %g != %g", got, want)
	}
}

func TestSketchBucketRoundTrip(t *testing.T) {
	// bucketValue must land back in its own bucket, and bucketOf must be
	// monotone — both break silently if the index math drifts.
	prev := -1
	for v := 0; v < 1_000_000; v = v*9/8 + 1 {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf not monotone at %d: %d < %d", v, b, prev)
		}
		prev = b
		if rb := bucketOf(bucketValue(b)); rb != b {
			t.Fatalf("bucket %d (v=%d): representative %d maps to bucket %d",
				b, v, bucketValue(b), rb)
		}
	}
	// Huge values stay in range and round-trip instead of overflowing.
	if b := bucketOf(math.MaxInt64); b >= numBuckets || bucketOf(bucketValue(b)) != b {
		t.Fatalf("MaxInt64 → bucket %d (of %d), representative round-trips to %d",
			b, numBuckets, bucketOf(bucketValue(b)))
	}
}

func TestSketchMerge(t *testing.T) {
	r := rng.New(4)
	var a, b, both Sketch
	for i := 0; i < 10_000; i++ {
		v := r.Intn(500)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
		both.Add(v)
	}
	a.Merge(&b)
	if a.Count() != both.Count() || a.Mean() != both.Mean() ||
		a.Min() != both.Min() || a.Max() != both.Max() {
		t.Fatal("merge aggregates differ from single-stream sketch")
	}
	for _, p := range []float64{0.1, 0.5, 0.95} {
		if a.Quantile(p) != both.Quantile(p) {
			t.Fatalf("p=%g: merged %g != single %g", p, a.Quantile(p), both.Quantile(p))
		}
	}
}
