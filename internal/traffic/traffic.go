// Package traffic is the steady-state open-loop traffic engine: it
// drives the incremental vcsim.Sim with continuous stochastic injection
// and measures the network at steady state, the regime in which router
// designs are conventionally compared (latency-vs-offered-load curves and
// saturation throughput) and which the batch theorems of the paper only
// bracket.
//
// A run is structured into three windows measured in flit steps:
//
//	warmup      injection on, nothing recorded — fills the network to
//	            steady state so cold-start transients don't bias stats;
//	measurement injection on — messages released in this window are
//	            tracked for latency, and deliveries completed in it are
//	            counted as accepted throughput;
//	drain       injection off — in-flight messages finish so tracked
//	            latencies aren't censored, bounded by a step budget.
//
// Injection is a per-endpoint stochastic process (Bernoulli, Poisson, or
// bursty on/off) combined with a spatial destination pattern (uniform,
// transpose, bit-reverse, hotspot) on any Network adapter. Latencies are
// streamed into a fixed-size quantile Sketch, so memory does not grow
// with the message count. Everything is deterministic in Config.Seed:
// identical configs produce identical Results, bit for bit, regardless of
// how many harness workers run around the engine.
package traffic

import (
	"errors"
	"fmt"
	"math"

	"wormhole/internal/fault"
	"wormhole/internal/message"
	"wormhole/internal/rng"
	"wormhole/internal/telemetry"
	"wormhole/internal/vcsim"
)

// saturationShortfall is the accepted/offered ratio below which a run is
// declared saturated: the network is refusing ≥ 5% of the offered load.
const saturationShortfall = 0.95

// Config parameterizes one open-loop run.
type Config struct {
	// Net is the network adapter (required).
	Net *Network
	// VirtualChannels is B ≥ 1, as in vcsim.Config.
	VirtualChannels int
	// LaneDepth is the flit capacity d of each virtual-channel lane
	// (0 means 1, the paper's single-flit buffers), as in vcsim.Config.
	LaneDepth int
	// SharedPool pools each edge's B·d flit credits dynamically across
	// its lanes, as in vcsim.Config.
	SharedPool bool
	// MessageLength is the worm length L in flits (required ≥ 1).
	MessageLength int
	// Arbitration orders contending messages; default ArbByID.
	Arbitration vcsim.Policy
	// RestrictedBandwidth selects the Section 1.4 remark model.
	RestrictedBandwidth bool

	// Process is the temporal injection process; default Bernoulli.
	Process Process
	// Rate is the offered load in messages per endpoint per flit step.
	// Bernoulli and OnOff cap it at 1 and the on/off duty cycle
	// respectively; Poisson accepts any rate up to 8.
	Rate float64
	// OnMean and OffMean are the OnOff process's mean burst and idle
	// lengths in steps (defaults 8 and 24).
	OnMean, OffMean float64

	// Pattern is the spatial destination pattern; default Uniform.
	Pattern Pattern
	// HotspotCount is the number of hot endpoints (default 1).
	HotspotCount int
	// HotspotFraction is the probability a message targets a hot endpoint
	// (default 0.5).
	HotspotFraction float64

	// Warmup, Measure, Drain are the window lengths in flit steps.
	// Measure is required ≥ 1; Warmup and Drain may be 0.
	Warmup, Measure, Drain int
	// MaxBacklog, when > 0, stops the run early (marking it Saturated) as
	// soon as more than MaxBacklog messages are simultaneously in flight.
	// Saturated open-loop runs accumulate unbounded backlog by
	// definition, so a cap turns a hopeless run into a cheap verdict —
	// essential inside the saturation search.
	MaxBacklog int

	// Seed makes the run deterministic.
	Seed uint64

	// NaiveScan runs the simulator's retained naive stepper instead of
	// the blocked-worm wakeup engine. Results are byte-identical (that
	// equivalence is what the differential tests assert with this knob);
	// the naive scan just re-attempts every blocked worm every step, so
	// saturated runs cost far more wall clock.
	NaiveScan bool

	// Faults attaches a deterministic kill/revive schedule to the
	// underlying simulator (vcsim.Config.Faults). Runs with a schedule
	// are byte-identical across engines and Shards settings; accepted
	// throughput and latency then measure graceful degradation.
	Faults fault.Schedule
	// Retry is the fault retry policy for messages whose first edge is
	// dead before injection (vcsim.Config.Retry). Meaningful only with
	// Faults; the zero value disables retries.
	Retry vcsim.RetryPolicy

	// Shards ≥ 2 steps the underlying simulator on that many goroutines
	// (vcsim.Config.Shards). Results are byte-identical to the
	// sequential stepper for every value; steps outside the provable
	// sharding regime fall back transparently. The simulator's worker
	// goroutines live for the Runner's lifetime — call Runner.Close when
	// retiring a sharded Runner (the one-shot Run does).
	Shards int

	// Metrics, when non-nil, attaches a flight-recorder counter registry
	// to the underlying simulator (vcsim.Config.Metrics): stall-cause
	// attribution, park/wake totals, per-edge heatmap accumulators. Every
	// hot-path site is nil-gated, so a nil Metrics costs nothing and
	// results are byte-identical either way.
	Metrics *telemetry.Metrics
	// Trace, when non-nil, attaches the structured event stream
	// (vcsim.Config.Trace) to the underlying simulator.
	Trace *telemetry.Trace
	// Window, when > 0, splits a run into fixed-length windows of that
	// many flit steps and records a per-window time series: accepted
	// throughput, latency quantiles (over deliveries completing in the
	// window, whatever their release time), and backlog at window close.
	// A final partial window flushes when the run ends. Windowing
	// allocates only at window boundaries, never per step.
	Window int
	// OnStep, when non-nil, fires after every completed flit step of a
	// run — injection and drain phases alike — with the simulator's
	// current step. Returning a non-nil error pauses the run with all
	// state intact: Run (or Resume) returns that error verbatim, and
	// Resume continues the run where it stopped. Runner.Snapshot is
	// legal inside OnStep; that is how a driver checkpoints a live run.
	OnStep func(step int) error
	// OnWindow, when non-nil (requires Window > 0), fires at every window
	// boundary with that window's stats.
	OnWindow func(telemetry.WindowStats)
	// Publish, when non-nil (requires Window > 0), receives a metrics
	// snapshot — with the window series attached — at every window
	// boundary: the live feed behind wormbench -http.
	Publish *telemetry.Publisher
}

func (c *Config) onOffMeans() (on, off float64) {
	on, off = c.OnMean, c.OffMean
	if on <= 0 {
		on = 8
	}
	if off <= 0 {
		off = 24
	}
	return on, off
}

//wormvet:nonalloc
func (c *Config) hotspotParams() (count int, frac float64) {
	count, frac = c.HotspotCount, c.HotspotFraction
	if count <= 0 {
		count = 1
	}
	if frac <= 0 {
		frac = 0.5
	}
	return count, frac
}

// MaxRate returns the largest offered load the configured process can
// generate: 1 for Bernoulli, the ON duty cycle for OnOff, and the
// validation cap of 8 for Poisson. The saturation search uses it as the
// default upper bracket.
func (c *Config) MaxRate() float64 {
	switch c.Process {
	case Bernoulli:
		return 1
	case OnOff:
		on, off := c.onOffMeans()
		return on / (on + off)
	default:
		return 8
	}
}

func (c *Config) validate() error {
	if c.Net == nil {
		return errors.New("traffic: Config.Net is required")
	}
	if c.Net.Endpoints < 1 {
		return fmt.Errorf("traffic: network %q has no endpoints", c.Net.Label)
	}
	if c.VirtualChannels < 1 {
		return fmt.Errorf("traffic: VirtualChannels %d < 1", c.VirtualChannels)
	}
	if c.LaneDepth < 0 {
		return fmt.Errorf("traffic: LaneDepth %d < 0", c.LaneDepth)
	}
	if c.MessageLength < 1 {
		return fmt.Errorf("traffic: MessageLength %d < 1", c.MessageLength)
	}
	if c.Measure < 1 {
		return fmt.Errorf("traffic: Measure window %d < 1", c.Measure)
	}
	if c.Warmup < 0 || c.Drain < 0 {
		return fmt.Errorf("traffic: negative window (warmup %d, drain %d)", c.Warmup, c.Drain)
	}
	if c.Rate <= 0 {
		return fmt.Errorf("traffic: Rate %g must be positive", c.Rate)
	}
	if max := c.MaxRate(); c.Rate > max {
		return fmt.Errorf("traffic: Rate %g exceeds the %s process maximum %g", c.Rate, c.Process, max)
	}
	if c.Pattern.needsPow2() {
		n := c.Net.Endpoints
		if n&(n-1) != 0 {
			return fmt.Errorf("traffic: %s pattern needs a power-of-two endpoint count, have %d", c.Pattern, n)
		}
	}
	if c.Window < 0 {
		return fmt.Errorf("traffic: Window %d < 0", c.Window)
	}
	if c.Window == 0 && (c.OnWindow != nil || c.Publish != nil) {
		return errors.New("traffic: OnWindow/Publish require Window > 0")
	}
	return nil
}

// Result reports one open-loop run. Latency statistics cover tracked
// messages: those released during the measurement window and delivered
// before the run ended.
type Result struct {
	Offered  float64 // configured rate (messages/endpoint/step)
	Accepted float64 // deliveries per endpoint per measured step

	Injected         int // messages injected across warmup + measurement
	Tracked          int // released in the measurement window
	TrackedDone      int // tracked messages that completed
	DeliveredMeasure int // deliveries that occurred inside the window

	MeanLatency   float64
	P50, P95, P99 float64
	MinLatency    int
	MaxLatency    int

	Steps       int // flit step at which the run stopped
	LastRelease int // release time of the last injected message
	Backlog     int // messages still in flight when the run stopped
	Aborted     int // messages abandoned by the fault-retry policy

	Saturated       bool // accepted fell ≥ 5% short of offered (or worse, below)
	EarlyStop       bool // MaxBacklog tripped before the windows completed
	Truncated       bool // drain budget exhausted with messages in flight
	Deadlocked      bool // the network deadlocked (possible on toruses at low B)
	FaultDeadlocked bool // the deadlock formed with dead resources present
}

// Runner executes open-loop runs of one fixed Config, reusing every
// engine allocation between runs: the vcsim.Sim (worm arena, wait
// queues, per-step scratch — see vcsim.Sim.Reset), the per-endpoint
// injectors and their rng sources, and the latency sketch. After the
// first Run has sized the storage, subsequent Runs perform no heap
// allocation at all, which is what the benchmark suite's 0 allocs/step
// gate measures. Results are byte-identical to the one-shot Run — the
// differential tests pin that — and a Runner, like the Sim inside it,
// must not be shared across goroutines.
type Runner struct {
	cfg     Config
	horizon int
	sim     *vcsim.Sim
	parent  rng.Source
	sources []rng.Source
	inject  []injector

	// Per-run measurement state, reset at the top of Run; the Sim's
	// OnComplete closure (built once) streams into these.
	sketch           Sketch
	trackedDone      int
	deliveredMeasure int

	// Windowed time-series state (Config.Window > 0 only). winSketch
	// collects the latencies of deliveries completing in the current
	// window; windows holds this run's flushed series.
	winSketch    Sketch
	winDelivered int64
	winInjBase   int
	winIndex     int
	windows      []telemetry.WindowStats

	// Run-in-progress state: Run is begin + Resume over these, so a
	// paused (or snapshot-restored) run continues exactly where it
	// stopped.
	phase       runPhase
	t           int    // next injection step (phaseInject)
	injectSteps int    // completed injection-phase steps
	res         Result // partial result, finalized by finish
}

// runPhase is the position of an in-progress run within its window
// structure.
type runPhase uint8

const (
	phaseIdle   runPhase = iota // no run in progress
	phaseInject                 // warmup + measurement: injection on
	phaseDrain                  // injection off, in-flight worms finishing
)

// newRunnerShell validates cfg and builds everything but the simulator:
// the runner, its measurement closures, and the vcsim.Config the caller
// feeds to NewSim (NewRunner) or RestoreSim (RestoreRunner).
func newRunnerShell(cfg Config) (*Runner, vcsim.Config, error) {
	if err := cfg.validate(); err != nil {
		return nil, vcsim.Config{}, err
	}
	r := &Runner{
		cfg:     cfg,
		horizon: cfg.Warmup + cfg.Measure,
		sources: make([]rng.Source, cfg.Net.Endpoints),
		inject:  make([]injector, cfg.Net.Endpoints),
	}
	onComplete := func(_ message.ID, st vcsim.MessageStats) {
		if st.Status != vcsim.StatusDelivered {
			return
		}
		// Deliveries stamped in (warmup, warmup+measure] happened during
		// measurement steps (an event in the step t→t+1 stamps t+1).
		if st.DeliverTime > cfg.Warmup && st.DeliverTime <= r.horizon {
			r.deliveredMeasure++
		}
		if st.Release >= cfg.Warmup && st.Release < r.horizon {
			r.trackedDone++
			r.sketch.Add(st.Latency())
		}
		if cfg.Window > 0 {
			r.winDelivered++
			r.winSketch.Add(st.Latency())
		}
	}
	return r, vcsim.Config{
		VirtualChannels:     cfg.VirtualChannels,
		LaneDepth:           cfg.LaneDepth,
		SharedPool:          cfg.SharedPool,
		RestrictedBandwidth: cfg.RestrictedBandwidth,
		Arbitration:         cfg.Arbitration,
		Seed:                cfg.Seed,
		MaxSteps:            r.horizon + cfg.Drain,
		OnComplete:          onComplete,
		NaiveScan:           cfg.NaiveScan,
		Faults:              cfg.Faults,
		Retry:               cfg.Retry,
		Shards:              cfg.Shards,
		Metrics:             cfg.Metrics,
		Trace:               cfg.Trace,
	}, nil
}

// NewRunner validates cfg and builds a reusable open-loop runner.
func NewRunner(cfg Config) (*Runner, error) {
	r, simCfg, err := newRunnerShell(cfg)
	if err != nil {
		return nil, err
	}
	sim, err := vcsim.NewSim(cfg.Net.G, simCfg)
	if err != nil {
		return nil, err
	}
	r.sim = sim
	return r, nil
}

// Run executes one open-loop simulation and returns its measurements.
// Every call replays the same Config from scratch — same seed, same
// windows — over the retained storage. With Config.OnStep set, a
// paused run returns the OnStep error and Resume continues it.
func (r *Runner) Run() (Result, error) {
	r.begin()
	return r.Resume()
}

// begin resets the runner's per-run state for a fresh replay of cfg.
func (r *Runner) begin() {
	cfg := &r.cfg
	r.sim.Reset()
	r.sketch = Sketch{}
	r.trackedDone = 0
	r.deliveredMeasure = 0
	r.winSketch = Sketch{}
	r.winDelivered = 0
	r.winInjBase = 0
	r.winIndex = 0
	r.windows = r.windows[:0]
	// Per-endpoint sources are pre-split in index order, so endpoint i's
	// arrival and destination stream depends only on (Seed, i).
	r.parent.Reseed(cfg.Seed)
	for i := range r.sources {
		r.parent.SplitInto(&r.sources[i])
		r.inject[i] = newInjector(cfg, &r.sources[i])
	}
	r.res = Result{Offered: cfg.Rate, LastRelease: -1}
	r.t = 0
	r.injectSteps = 0
	r.phase = phaseInject
}

// Resume continues a run paused by an OnStep error (or reconstructed by
// RestoreRunner) until it completes or pauses again. Calling Resume
// with no run in progress is an error.
func (r *Runner) Resume() (Result, error) {
	cfg := &r.cfg
	net := cfg.Net
	sim := r.sim
	if r.phase == phaseIdle {
		return Result{}, errors.New("traffic: Resume with no run in progress")
	}
	injectors := r.inject
	for r.phase == phaseInject {
		t := r.t
		for e := range injectors {
			for k := injectors[e].arrivals(cfg, t); k > 0; k-- {
				dst := cfg.dest(e, injectors[e].r)
				msg := message.Message{
					Src:    net.Source(e),
					Dst:    net.Dest(dst),
					Length: cfg.MessageLength,
					Path:   net.Route(e, dst),
				}
				if _, err := sim.Inject(msg, t); err != nil {
					r.phase = phaseIdle
					return Result{}, fmt.Errorf("traffic: inject at step %d: %w", t, err)
				}
				r.res.LastRelease = t
				if t >= cfg.Warmup {
					r.res.Tracked++
				}
			}
		}
		// StepTo is Step with event-horizon fast-forward: one real flit
		// step when any worm can move or admit, a free clock jump across
		// the idle steps an empty network would otherwise burn one by one
		// (light loads and saturation-search probes sit idle for long
		// stretches between arrivals).
		if err := sim.StepTo(t + 1); err != nil {
			// A failed run skips the drain: the verdict is in, and a
			// deadlocked network will not drain anyway.
			r.res.Deadlocked = errors.Is(err, vcsim.ErrDeadlocked)
			return r.finish(), nil
		}
		r.t++
		r.injectSteps++
		if w := cfg.Window; w > 0 && r.t%w == 0 {
			r.flushWindow(r.t-w, r.t)
		}
		if cfg.MaxBacklog > 0 && sim.Active() > cfg.MaxBacklog {
			r.res.EarlyStop = true
			return r.finish(), nil
		}
		if r.t >= r.horizon {
			// Injection off; in-flight messages finish inside the
			// remaining step budget.
			r.phase = phaseDrain
		}
		if cb := cfg.OnStep; cb != nil {
			if err := cb(r.t); err != nil {
				return Result{}, err
			}
		}
	}
	for sim.Active() > 0 {
		if err := sim.Step(); err != nil {
			r.res.Deadlocked = errors.Is(err, vcsim.ErrDeadlocked)
			break
		}
		if cb := cfg.OnStep; cb != nil {
			if err := cb(sim.Now()); err != nil {
				return Result{}, err
			}
		}
	}
	return r.finish(), nil
}

// finish flushes the final partial window, derives the run's statistics
// from the streamed state, and retires the in-progress run.
func (r *Runner) finish() Result {
	cfg := &r.cfg
	net := cfg.Net
	sim := r.sim
	if cfg.Window > 0 {
		// Flush the final partial window (drain steps included) so the
		// series covers the whole run.
		start := r.winIndex * cfg.Window
		if end := sim.Now(); end > start || r.winDelivered > 0 {
			r.flushWindow(start, end)
		}
	}

	sim.FoldFaultTime() // close open outage spans in the fault-time heatmap
	res := r.res
	res.Injected = sim.Injected()
	res.Steps = sim.Now()
	res.Backlog = sim.Active()
	res.Aborted = sim.Aborted()
	res.FaultDeadlocked = sim.FaultDeadlocked()
	res.Truncated = sim.Truncated()
	res.TrackedDone = r.trackedDone
	res.DeliveredMeasure = r.deliveredMeasure
	if n := r.sketch.Count(); n > 0 {
		res.MeanLatency = r.sketch.Mean()
		res.P50 = r.sketch.Quantile(0.50)
		res.P95 = r.sketch.Quantile(0.95)
		res.P99 = r.sketch.Quantile(0.99)
		res.MinLatency = r.sketch.Min()
		res.MaxLatency = r.sketch.Max()
	}
	// Accepted throughput normalizes deliveries over the measurement
	// steps the run actually executed, so an early stop still yields a
	// meaningful (and damning) number.
	measured := r.injectSteps - cfg.Warmup
	if measured > cfg.Measure {
		measured = cfg.Measure
	}
	if measured > 0 {
		res.Accepted = float64(r.deliveredMeasure) / (float64(net.Endpoints) * float64(measured))
	}
	// Saturation verdict: a definitive failure (deadlock, backlog blowup)
	// or accepted throughput falling ≥ 5% short of offered. The shortfall
	// test subtracts a 3σ Poisson allowance (the window sees ~expected
	// arrivals, so counts fluctuate by √expected) — without it, short
	// measurement windows at low load flag spurious saturation on pure
	// boundary noise. Truncation alone is deliberately NOT a verdict: a
	// short (even zero) drain budget leaves the steady-state in-flight
	// population stranded at any load, which censors tail latencies but
	// says nothing about sustainability — the window shortfall already
	// catches genuine saturation.
	expected := res.Offered * float64(net.Endpoints) * float64(measured)
	shortfall := saturationShortfall*expected - 3*math.Sqrt(expected)
	res.Saturated = res.Deadlocked || res.EarlyStop ||
		float64(r.deliveredMeasure) < shortfall
	r.res = res
	r.phase = phaseIdle
	return res
}

// flushWindow closes the window [start, end): records its stats, fires
// OnWindow, and — when a Publisher is configured — publishes a metrics
// snapshot with the series attached. Runs at window boundaries only; this
// is where all windowing allocation happens.
func (r *Runner) flushWindow(start, end int) {
	ws := telemetry.WindowStats{
		Index:     r.winIndex,
		Start:     int64(start),
		End:       int64(end),
		Injected:  int64(r.sim.Injected() - r.winInjBase),
		Delivered: r.winDelivered,
		Backlog:   int64(r.sim.Active()),
	}
	if r.winSketch.Count() > 0 {
		ws.LatMean = r.winSketch.Mean()
		ws.LatP50 = r.winSketch.Quantile(0.50)
		ws.LatP95 = r.winSketch.Quantile(0.95)
		ws.LatP99 = r.winSketch.Quantile(0.99)
		ws.LatMax = int64(r.winSketch.Max())
	}
	r.windows = append(r.windows, ws)
	r.winIndex++
	r.winInjBase = r.sim.Injected()
	r.winDelivered = 0
	r.winSketch = Sketch{}
	if cb := r.cfg.OnWindow; cb != nil {
		cb(ws)
	}
	if p := r.cfg.Publish; p != nil {
		var s telemetry.Snapshot
		if r.cfg.Metrics != nil {
			s = r.cfg.Metrics.Snapshot()
		}
		s.Windows = append([]telemetry.WindowStats(nil), r.windows...)
		p.Publish(s)
	}
}

// Windows returns the last Run's per-window time series (nil unless
// Config.Window > 0). The slice is reused by the next Run.
func (r *Runner) Windows() []telemetry.WindowStats { return r.windows }

// Close releases the underlying simulator's sharded-stepper worker
// goroutines, if any. The Runner stays usable — workers restart on the
// next sharded step — so Close marks idle points, not end of life.
func (r *Runner) Close() { r.sim.Close() }

// ShardedSteps reports how many simulator steps of the last (or
// current) Run actually executed on the sharded stepper — zero for
// sequential configs, and for sharded ones whose active backlog never
// reached the per-shard cutoff.
func (r *Runner) ShardedSteps() int64 { return r.sim.ShardedSteps() }

// ShardFallbackReason names the standing condition keeping a
// Shards ≥ 2 run on the sequential stepper, or "" when none applies
// (see vcsim.Sim.ShardFallbackReason). Services report it so a tenant
// who asked for sharding learns why it silently never engaged.
func (r *Runner) ShardFallbackReason() string { return r.sim.ShardFallbackReason() }

// Run executes one open-loop simulation and returns its measurements: a
// one-shot NewRunner + Runner.Run. Drivers that replay similar
// configurations repeatedly (benchmarks, saturation searches at one
// operating point) should hold a Runner instead and reuse its storage.
func Run(cfg Config) (Result, error) {
	r, err := NewRunner(cfg)
	if err != nil {
		return Result{}, err
	}
	defer r.Close()
	return r.Run()
}
