package traffic

import (
	"math"
	"reflect"
	"testing"

	"wormhole/internal/vcsim"
)

func smallCfg() Config {
	return Config{
		Net:             NewButterflyNet(16),
		VirtualChannels: 2,
		MessageLength:   4,
		Arbitration:     vcsim.ArbAge,
		Process:         Poisson,
		Rate:            0.05,
		Pattern:         Uniform,
		Warmup:          64,
		Measure:         256,
		Drain:           1024,
		Seed:            11,
	}
}

// TestRunDeterminism: identical configs produce bit-identical results.
func TestRunDeterminism(t *testing.T) {
	for _, proc := range []Process{Bernoulli, Poisson, OnOff} {
		for _, pat := range []Pattern{Uniform, Transpose, BitReverse, Hotspot} {
			cfg := smallCfg()
			cfg.Process = proc
			cfg.Pattern = pat
			a, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", proc, pat, err)
			}
			b, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", proc, pat, err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s/%s: results differ across identical runs:\n%+v\n%+v", proc, pat, a, b)
			}
			if a.Injected == 0 {
				t.Errorf("%s/%s: no messages injected", proc, pat)
			}
		}
	}
}

// TestZeroLoadLatency: at a vanishing rate, latency approaches the
// contention-free value D + L − 1.
func TestZeroLoadLatency(t *testing.T) {
	cfg := smallCfg()
	cfg.Rate = 0.005
	cfg.Measure = 2048
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ideal := float64(4 + cfg.MessageLength - 1) // log2(16) levels + L − 1
	if res.MeanLatency < ideal {
		t.Errorf("mean latency %g below the physical floor %g", res.MeanLatency, ideal)
	}
	if res.MeanLatency > ideal*1.25 {
		t.Errorf("mean latency %g at near-zero load, want ≈ %g", res.MeanLatency, ideal)
	}
	if res.Saturated {
		t.Error("near-zero load must not be saturated")
	}
	if res.TrackedDone != res.Tracked {
		t.Errorf("only %d/%d tracked messages completed", res.TrackedDone, res.Tracked)
	}
}

// TestZeroDrainNotSaturated: with Drain = 0 the steady-state in-flight
// population is always stranded (Truncated), but a trivially sustainable
// load must still not be called saturated.
func TestZeroDrainNotSaturated(t *testing.T) {
	cfg := smallCfg()
	cfg.Rate = 0.02
	cfg.Drain = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated {
		t.Fatalf("2%% load with Drain=0 flagged saturated: %+v", res)
	}
	if !res.Truncated || res.Backlog == 0 {
		t.Fatalf("Drain=0 should strand the in-flight tail: %+v", res)
	}
}

// TestDeadlockedBacklogVisible: a deadlocked run must report the frozen
// messages as backlog, not an empty network.
func TestDeadlockedBacklogVisible(t *testing.T) {
	cfg := Config{
		Net:             NewTorusNet(4, 4),
		VirtualChannels: 1,
		MessageLength:   6,
		Process:         Bernoulli,
		Rate:            0.8,
		Pattern:         Uniform,
		Warmup:          0,
		Measure:         2048,
		Drain:           2048,
		Seed:            1,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Skip("this seed did not deadlock; backlog visibility untestable here")
	}
	if res.Backlog == 0 {
		t.Fatalf("deadlocked run reports zero backlog: %+v", res)
	}
	if !res.Saturated {
		t.Error("deadlocked run must be saturated")
	}
}

// TestThroughputConservation: well below saturation, accepted ≈ offered.
func TestThroughputConservation(t *testing.T) {
	cfg := smallCfg()
	cfg.VirtualChannels = 4
	cfg.Rate = 0.08
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated {
		t.Fatalf("rate %g with B=4 should be sustainable (accepted %g)", cfg.Rate, res.Accepted)
	}
	if math.Abs(res.Accepted-res.Offered)/res.Offered > 0.15 {
		t.Errorf("accepted %g strays from offered %g", res.Accepted, res.Offered)
	}
}

// TestSaturationDetectedAtOverload: a B=1 butterfly cannot sustain one
// message per endpoint per step.
func TestSaturationDetectedAtOverload(t *testing.T) {
	cfg := smallCfg()
	cfg.VirtualChannels = 1
	cfg.Process = Bernoulli
	cfg.Rate = 0.9
	cfg.MaxBacklog = 2048
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Fatalf("rate 0.9 at B=1 must saturate: %+v", res)
	}
}

// TestSaturationRateMonotoneInB: the knee must move right as virtual
// channels are added — the open-loop restatement of the paper's benefit.
func TestSaturationRateMonotoneInB(t *testing.T) {
	base := smallCfg()
	base.Warmup = 64
	base.Measure = 192
	base.Drain = 512
	base.MaxBacklog = 1024
	search := SearchOptions{Hi: 2, Iters: 7}
	rate := map[int]float64{}
	for _, b := range []int{1, 4} {
		cfg := base
		cfg.VirtualChannels = b
		sr, err := SaturationRate(cfg, search)
		if err != nil {
			t.Fatal(err)
		}
		rate[b] = sr.Rate
	}
	if rate[4] <= rate[1] {
		t.Errorf("saturation rate not increasing in B: B=1 → %g, B=4 → %g", rate[1], rate[4])
	}
	if rate[1] <= 0 {
		t.Errorf("B=1 saturation rate %g: even trivial load rejected", rate[1])
	}
}

// TestSaturationSearchDeterminism: two searches agree probe for probe.
func TestSaturationSearchDeterminism(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxBacklog = 512
	cfg.Measure = 128
	opts := SearchOptions{Hi: 1, Iters: 5}
	a, err := SaturationRate(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SaturationRate(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("searches differ:\n%+v\n%+v", a, b)
	}
	if len(a.Probes) == 0 {
		t.Fatal("no probes recorded")
	}
}

// TestPermutationPatterns: transpose and bit-reverse must be bijections
// on the endpoint space (otherwise they are not permutation traffic).
func TestPermutationPatterns(t *testing.T) {
	for _, pat := range []Pattern{Transpose, BitReverse} {
		for _, n := range []int{8, 16, 64} {
			cfg := Config{Net: NewButterflyNet(n), Pattern: pat}
			seen := map[int]bool{}
			for s := 0; s < n; s++ {
				d := cfg.dest(s, nil) // deterministic patterns ignore the rng
				if d < 0 || d >= n {
					t.Fatalf("%s n=%d: dest(%d) = %d out of range", pat, n, s, d)
				}
				seen[d] = true
			}
			if len(seen) != n {
				t.Errorf("%s n=%d: only %d distinct destinations", pat, n, len(seen))
			}
		}
	}
}

// TestOnOffMatchesMeanRate: the bursty process must still deliver the
// configured long-run rate.
func TestOnOffMatchesMeanRate(t *testing.T) {
	cfg := smallCfg()
	cfg.Process = OnOff
	cfg.Rate = 0.06
	cfg.VirtualChannels = 4
	cfg.Warmup = 128
	cfg.Measure = 4096
	cfg.Drain = 2048
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(res.Tracked) / (float64(cfg.Net.Endpoints) * float64(cfg.Measure))
	if math.Abs(got-cfg.Rate)/cfg.Rate > 0.1 {
		t.Errorf("on/off injected rate %g, want ≈ %g", got, cfg.Rate)
	}
}

// TestMeshAndTorusNetworks: the engine is topology-agnostic; a mesh run
// completes, and a torus at B=1 is allowed to deadlock but must say so.
func TestMeshAndTorusNetworks(t *testing.T) {
	mesh := Config{
		Net:             NewMeshNet(4, 4),
		VirtualChannels: 2,
		MessageLength:   3,
		Process:         Bernoulli,
		Rate:            0.05,
		Pattern:         Uniform,
		Warmup:          32,
		Measure:         256,
		Drain:           1024,
		Seed:            5,
	}
	res, err := Run(mesh)
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected == 0 || res.Deadlocked {
		t.Fatalf("mesh run: %+v", res)
	}

	torus := mesh
	torus.Net = NewTorusNet(4, 4)
	torus.VirtualChannels = 1
	torus.Rate = 0.5
	torus.MaxBacklog = 4096
	tres, err := Run(torus)
	if err != nil {
		t.Fatal(err)
	}
	if tres.Deadlocked && !tres.Saturated {
		t.Error("a deadlocked run must be marked saturated")
	}
}

// TestConfigValidation exercises the error paths.
// TestBufferArchitecturePlumbing drives the open-loop engine across the
// (LaneDepth, SharedPool) grid: every architecture must run, stay
// deterministic, and sustain a load the shallowest buffers already
// sustain. (Accepted throughput below the knee tracks offered for every
// depth, so point-wise comparisons only see window-edge noise; the
// monotone quantity — the saturation rate — is pinned by the T13 tests.)
func TestBufferArchitecturePlumbing(t *testing.T) {
	base := smallCfg()
	base.Rate = 0.3
	for _, depth := range []int{1, 2, 4} {
		for _, shared := range []bool{false, true} {
			cfg := base
			cfg.LaneDepth = depth
			cfg.SharedPool = shared
			a, err := Run(cfg)
			if err != nil {
				t.Fatalf("d=%d shared=%v: %v", depth, shared, err)
			}
			b, err := Run(cfg)
			if err != nil {
				t.Fatalf("d=%d shared=%v: %v", depth, shared, err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("d=%d shared=%v: nondeterministic", depth, shared)
			}
			if a.Injected == 0 || a.TrackedDone == 0 {
				t.Errorf("d=%d shared=%v: no traffic flowed: %+v", depth, shared, a)
			}
			if a.Saturated {
				t.Errorf("d=%d shared=%v: saturated at a load d=1 sustains: %+v", depth, shared, a)
			}
		}
	}
	// NaiveScan must stay byte-identical on the deep engine through the
	// traffic layer too, not just in vcsim's own differential tests.
	cfg := base
	cfg.LaneDepth = 4
	cfg.SharedPool = true
	wake, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NaiveScan = true
	naive, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wake, naive) {
		t.Errorf("deep traffic run differs between steppers:\nwakeup: %+v\n naive: %+v", wake, naive)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Net = nil },
		func(c *Config) { c.VirtualChannels = 0 },
		func(c *Config) { c.MessageLength = 0 },
		func(c *Config) { c.Measure = 0 },
		func(c *Config) { c.Rate = 0 },
		func(c *Config) { c.Rate = 1.5; c.Process = Bernoulli },
		func(c *Config) { c.Drain = -1 },
		func(c *Config) { c.Pattern = Transpose; c.Net = NewMeshNet(3, 3) },
		func(c *Config) { c.LaneDepth = -1 },
	}
	for i, mutate := range bad {
		cfg := smallCfg()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("mutation %d: expected a validation error", i)
		}
	}
}

// TestShardByteIdentity pins the Config.Shards contract at the traffic
// layer: the full Result — latency percentiles, windows, backlog, every
// field — is deeply equal for every shard count, and an overloaded run
// (whose standing backlog clears the sharded stepper's activity cutoff)
// really does engage the parallel path.
func TestShardByteIdentity(t *testing.T) {
	cfg := smallCfg()
	cfg.Net = NewButterflyNet(64)
	cfg.MessageLength = 6
	cfg.Rate = 0.9 // overload: the backlog grows past the per-shard cutoff
	cfg.MaxBacklog = 1 << 15
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		sc := cfg
		sc.Shards = shards
		r, err := NewRunner(sc)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, res) {
			t.Errorf("shards=%d: result diverged from sequential\nseq:     %+v\nsharded: %+v", shards, base, res)
		}
		if shards > 1 && r.ShardedSteps() == 0 {
			t.Errorf("shards=%d: overloaded run never engaged the sharded stepper", shards)
		}
		r.Close()
	}
}

// TestShardFallbackReason pins the runner-level pass-through: a config
// with a standing inhibitor names it, a shardable one reports none.
func TestShardFallbackReason(t *testing.T) {
	cfg := smallCfg()
	cfg.Shards = 4
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.ShardFallbackReason(); got != "" {
		t.Errorf("shardable config reports %q", got)
	}

	cfg.RestrictedBandwidth = true
	rb, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	if got := rb.ShardFallbackReason(); got == "" {
		t.Error("restricted-bandwidth config reports no fallback reason")
	}
}
