package vcsim

// This file is the Sim state codec: Snapshot serializes a live
// simulator — worm records, credit counters, wait/active/pending key
// lists, deep per-flit state, the telemetry registry — to a versioned
// little-endian binary stream, and RestoreSim rebuilds a Sim from it
// that continues the run byte-identically to the uninterrupted
// original (pinned by the round-trip differential tests and the fuzz
// harness). A checkpointed run can therefore survive a process kill:
// the daemon snapshots between steps, and a restart restores and
// resumes as if nothing happened.
//
// A snapshot is only taken between steps, which is the only state a
// caller can observe anyway — every public entry point returns with
// the two-phase step fully folded. That boundary is what keeps the
// format small: everything that is provably empty between steps is
// restored as zero instead of serialized — the deferred release
// accumulators (relLane/relFlit fold into the credit counters at
// applyStepEnd), the dirty lists and flags (cleared there too), the
// epoch-stamped crossings meters (a stale stamp reads as zero), and
// all per-step scratch buffers. The path/prog recycling freelists are
// also skipped: a restored Sim simply bump-allocates its next paths
// from the arena, which is observably identical because recycled
// buffers are always fully overwritten before use.
//
// What IS serialized, verbatim: every worm record (completed ones
// included — IDs index worms for the life of the run), the live
// pending window, the active list in its engine-specific order, the
// per-edge wait heaps as raw arrays (heap layout affects future pop
// order, so byte-identity requires the arrays, not a re-push), the
// credit counters, the edge-role classification, the ArbRandom
// shuffler state, the run counters, and the telemetry registry.
//
// Restore-side configuration: the caller supplies the network and a
// Config, because hooks (Observer, OnComplete, Metrics, Trace) cannot
// be serialized. Every schedule-relevant Config field is verified
// against the snapshot and mismatch is an error (ErrSnapshotConfig);
// Shards and CheckInvariants are free to differ — both are pure
// mechanism with byte-identical results. Trace ring contents do not
// survive a restore (the ring is diagnostics, not schedule state).

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"slices"

	"wormhole/internal/fault"
	"wormhole/internal/graph"
	"wormhole/internal/message"
)

// SnapshotVersion is the current snapshot format version. RestoreSim
// rejects snapshots written by a different version: the format encodes
// engine internals whose meaning is pinned to the engine revision, so
// cross-version restores would be silently wrong, not merely lossy.
// v2 added the fault plane: the schedule and retry policy in the config
// section, per-worm retry counts, and the outage state block.
const SnapshotVersion = 2

// snapMagic opens every snapshot; snapTrailer closes it, so a
// truncated stream is detected even when every interior field parses.
const (
	snapMagic   = "WORMSNAP"
	snapTrailer = uint64(0x574F524D454E4453) // "WORMENDS"
)

var (
	// ErrSnapshotFormat is wrapped when the stream is not a snapshot
	// (bad magic) or was written by an unsupported format version.
	ErrSnapshotFormat = errors.New("vcsim: unrecognized snapshot format")
	// ErrSnapshotCorrupt is wrapped when the stream parses as a
	// snapshot but its contents are inconsistent or truncated.
	ErrSnapshotCorrupt = errors.New("vcsim: corrupt snapshot")
	// ErrSnapshotConfig is wrapped when the snapshot is valid but was
	// taken under a different network or schedule-relevant Config than
	// the caller supplied to RestoreSim.
	ErrSnapshotConfig = errors.New("vcsim: snapshot does not match the supplied network or config")
)

// snapWriter serializes fixed-width little-endian values, capturing the
// first write error so call sites stay unconditional.
type snapWriter struct {
	w   *bufio.Writer
	err error
}

func (s *snapWriter) u8(v uint8) {
	if s.err == nil {
		s.err = s.w.WriteByte(v)
	}
}

func (s *snapWriter) bool(v bool) {
	if v {
		s.u8(1)
	} else {
		s.u8(0)
	}
}

func (s *snapWriter) u32(v uint32) {
	var b [4]byte
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	if s.err == nil {
		_, s.err = s.w.Write(b[:])
	}
}

func (s *snapWriter) u64(v uint64) {
	s.u32(uint32(v))
	//wormvet:allow keypack -- little-endian wire split of a 64-bit word, not a policy-key pack
	s.u32(uint32(v >> 32))
}

func (s *snapWriter) i32(v int32) { s.u32(uint32(v)) }
func (s *snapWriter) i64(v int64) { s.u64(uint64(v)) }

func (s *snapWriter) i32s(v []int32) {
	s.u32(uint32(len(v)))
	for _, x := range v {
		s.i32(x)
	}
}

func (s *snapWriter) keys(v []uint64) {
	s.u32(uint32(len(v)))
	for _, x := range v {
		s.u64(x)
	}
}

// bits packs a []bool as a bitset (length is implied by the reader).
func (s *snapWriter) bits(v []bool) {
	var acc uint8
	for i, b := range v {
		if b {
			acc |= 1 << (i & 7)
		}
		if i&7 == 7 {
			s.u8(acc)
			acc = 0
		}
	}
	if len(v)&7 != 0 {
		s.u8(acc)
	}
}

// snapReader mirrors snapWriter; the first failure (I/O or validation)
// sticks and every later read returns zero.
type snapReader struct {
	r   *bufio.Reader
	err error
}

func (s *snapReader) fail(format string, args ...any) {
	if s.err == nil {
		s.err = fmt.Errorf("%w: %s", ErrSnapshotCorrupt, fmt.Sprintf(format, args...))
	}
}

func (s *snapReader) u8() uint8 {
	if s.err != nil {
		return 0
	}
	b, err := s.r.ReadByte()
	if err != nil {
		s.err = fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
		return 0
	}
	return b
}

func (s *snapReader) bool() bool { return s.u8() != 0 }

func (s *snapReader) u32() uint32 {
	var b [4]byte
	if s.err != nil {
		return 0
	}
	if _, err := io.ReadFull(s.r, b[:]); err != nil {
		s.err = fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (s *snapReader) u64() uint64 {
	lo := s.u32()
	hi := s.u32()
	//wormvet:allow keypack -- little-endian wire join of a 64-bit word, not a policy-key unpack
	return uint64(lo) | uint64(hi)<<32
}

func (s *snapReader) i32() int32 { return int32(s.u32()) }
func (s *snapReader) i64() int64 { return int64(s.u64()) }

// length reads a element count and bounds it: a corrupt count must not
// drive a giant allocation before validation catches it.
func (s *snapReader) length(max int, what string) int {
	n := s.u32()
	if int64(n) > int64(max) {
		s.fail("%s count %d exceeds bound %d", what, n, max)
		return 0
	}
	return int(n)
}

// i32sInto fills a fixed-size destination (the per-edge credit arrays,
// whose length is pinned by the network, never by stream data).
func (s *snapReader) i32sInto(dst []int32) {
	for i := range dst {
		dst[i] = s.i32()
	}
}

// i32Slice and keySlice grow their result incrementally instead of
// pre-allocating n elements: a corrupt length prefix must hit EOF after
// the stream's actual bytes, not drive a count-sized allocation first.
func (s *snapReader) i32Slice(n int) []int32 {
	var out []int32
	for i := 0; i < n && s.err == nil; i++ {
		out = append(out, s.i32())
	}
	if s.err != nil {
		return nil
	}
	return out
}

func (s *snapReader) keySlice(n int) []uint64 {
	var out []uint64
	for i := 0; i < n && s.err == nil; i++ {
		out = append(out, s.u64())
	}
	if s.err != nil {
		return nil
	}
	return out
}

// blob reads an n-byte blob in bounded chunks, for the same reason.
func (s *snapReader) blob(n int, what string) []byte {
	var out []byte
	for n > 0 && s.err == nil {
		chunk := min(n, 1<<16)
		buf := make([]byte, chunk)
		if _, err := io.ReadFull(s.r, buf); err != nil {
			s.fail("%s: %v", what, err)
			return nil
		}
		out = append(out, buf...)
		n -= chunk
	}
	return out
}

func (s *snapReader) bitsInto(dst []bool) {
	var acc uint8
	for i := range dst {
		if i&7 == 0 {
			acc = s.u8()
		}
		dst[i] = acc&(1<<(i&7)) != 0
	}
}

// Snapshot serializes the simulator's complete schedule state to w.
// Callable at any public-API point in the Sim's life (between steps);
// the Sim is not mutated beyond folding the sharded stepper's
// telemetry children into the parent registry, which every snapshot
// boundary (Result, Reset) does anyway. Restore with RestoreSim.
func (si *Sim) Snapshot(w io.Writer) error {
	si.drainShardMetrics()
	sw := &snapWriter{w: bufio.NewWriter(w)}
	sw.w.WriteString(snapMagic)
	sw.u32(SnapshotVersion)

	// Schedule-relevant configuration, verified on restore. Normalized
	// values (depth, parkStreak) are stored so the 0-means-default
	// aliases compare equal.
	sw.u32(uint32(len(si.laneFree)))
	sw.i32(int32(si.b)) //wormvet:allow horizon -- b = VirtualChannels, validated ≥ 1 and bounded by the pool-layout check
	sw.i32(si.depth)
	sw.bool(si.shared)
	sw.bool(si.cfg.RestrictedBandwidth)
	sw.bool(si.cfg.DropOnDelay)
	sw.bool(si.naive)
	sw.bool(si.recycle)
	sw.u8(uint8(si.cfg.Arbitration))
	sw.i32(si.parkStreak)
	sw.u64(si.cfg.Seed)
	sw.i64(int64(si.cfg.MaxSteps))
	sw.i64(int64(si.maxSteps))

	// Fault schedule and (normalized) retry policy: schedule-relevant,
	// so the restore side verifies them against its Config like every
	// other field above.
	sw.i32(int32(si.retryMax)) //wormvet:allow horizon -- validateFaults bounds MaxAttempts ≥ 0; practical values are tiny
	sw.i32(si.retryBase)
	sw.i32(si.retryCap)
	sw.u32(uint32(len(si.faults)))
	for _, ev := range si.faults {
		sw.i64(int64(ev.Step))
		sw.u32(uint32(ev.Edge))
		sw.u8(uint8(ev.Kind))
	}

	// Worm records, in ID order. Completed worms ride along with empty
	// path/prog — their stats must survive for Result and the dense ID
	// index.
	sw.u64(uint64(si.now))
	sw.u32(uint32(si.numWorms))
	for i := 0; i < si.numWorms; i++ {
		w := si.worm(i)
		sw.u64(w.key)
		sw.i32(w.d)
		sw.i32(w.l)
		sw.i32(w.frontier)
		sw.i32(w.release)
		sw.i32(w.injectTime)
		sw.i32(w.deliverTime)
		sw.i32(w.dropTime)
		sw.i32(w.stalls)
		sw.u8(uint8(w.status))
		sw.i32(w.parkedAt)
		sw.i32(w.waitEdge)
		sw.i32(w.streak)
		sw.bool(w.woken)
		sw.i32(w.fHead)
		sw.i32(w.lastInj)
		sw.bool(w.stretched)
		sw.i32(w.blockedOn)
		sw.i32(w.retries)
		sw.i32s(w.path)
		sw.i32s(w.prog)
	}

	// Key lists. The pending window is normalized to start at 0; the
	// active list keeps its engine-specific order verbatim.
	sw.keys(si.pending[si.pendHead:])
	sw.keys(si.active)
	sw.bool(si.byID != nil)

	// Per-edge credit state.
	sw.i32s(si.laneFree)
	if si.deepMode {
		sw.i32s(si.flitFree)
	}

	// Wait heaps, sparsely: most edges have no waiters. The raw array
	// layout is serialized — heap shape determines future pop order.
	writeHeaps := func(qs [][]uint64) {
		nonEmpty := 0
		for _, q := range qs {
			if len(q) > 0 {
				nonEmpty++
			}
		}
		sw.u32(uint32(nonEmpty))
		for e, q := range qs {
			if len(q) > 0 {
				sw.u32(uint32(e))
				sw.keys(q)
			}
		}
	}
	if !si.naive {
		writeHeaps(si.waitQ)
		if si.waitQFlit != nil {
			writeHeaps(si.waitQFlit)
		}
		sw.i64(int64(si.parked))
		if si.finalSeen != nil {
			sw.bits(si.finalSeen)
			sw.bits(si.bodySeen)
		}
		sw.bool(si.mixedFinal)
	}

	// Fault-plane run state: the schedule cursor, dead/killed resources,
	// the open-outage timestamps and the dead-edge wait heaps. The
	// derived tallies (deadEdges, killedTotal, lastRevive) are recomputed
	// on restore. Presence is symmetric: the restore side verified the
	// schedule above, so both ends agree on whether this block exists.
	if si.faults != nil {
		sw.u32(uint32(si.faultIdx))
		sw.bits(si.deadEdge)
		sw.i32s(si.killedLanes)
		sw.i32s(si.faultSince)
		if si.faultQ != nil {
			writeHeaps(si.faultQ)
		}
		sw.i64(int64(si.aborted))
		sw.bool(si.faultDead)
	}

	if si.shuffler != nil {
		sw.u64(si.shuffler.State())
	}

	// Run counters and terminal flags.
	sw.i64(int64(si.totalStalls))
	sw.i64(si.flitHops)
	sw.i64(int64(si.maxOccupied))
	sw.i64(int64(si.delivered))
	sw.i64(int64(si.dropped))
	sw.bool(si.deadlocked)
	sw.bool(si.truncated)
	sw.u32(uint32(len(si.blockedIDs)))
	for _, id := range si.blockedIDs {
		sw.i32(int32(id)) //wormvet:allow horizon -- message IDs are pinned < MaxHorizon by addWorm
	}
	sw.i64(si.shardSteps)

	// Telemetry registry, length-prefixed so a reader without a
	// registry can skip it.
	if si.met != nil {
		sw.bool(true)
		blob, _ := si.met.MarshalBinary()
		sw.u32(uint32(len(blob)))
		if sw.err == nil {
			_, sw.err = sw.w.Write(blob)
		}
	} else {
		sw.bool(false)
	}

	sw.u64(snapTrailer)
	if sw.err != nil {
		return sw.err
	}
	return sw.w.Flush()
}

// RestoreSim rebuilds a Sim from a Snapshot stream over the network g.
// cfg supplies everything a snapshot cannot carry — the callback hooks
// (Observer, OnComplete, Metrics, Trace) and the mechanism-only knobs
// (Shards, CheckInvariants) — and must match the snapshot on every
// schedule-relevant field: VirtualChannels, LaneDepth, SharedPool,
// RestrictedBandwidth, DropOnDelay, Arbitration, Seed, MaxSteps,
// NaiveScan, ParkStreak, Faults, Retry. The restored Sim continues the run
// byte-identically to the original. When cfg.Metrics is non-nil its
// contents are replaced with the snapshot's registry state, so resumed
// runs report cumulative totals.
func RestoreSim(g *graph.Graph, cfg Config, rd io.Reader) (*Sim, error) {
	if cfg.VirtualChannels < 1 {
		return nil, fmt.Errorf("%w: VirtualChannels %d < 1", ErrBadConfig, cfg.VirtualChannels)
	}
	if err := validateArch(cfg); err != nil {
		return nil, err
	}
	if err := validateFaults(g.NumEdges(), cfg); err != nil {
		return nil, err
	}
	r := &snapReader{r: bufio.NewReader(rd)}
	var magic [len(snapMagic)]byte
	if _, err := io.ReadFull(r.r, magic[:]); err != nil || string(magic[:]) != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrSnapshotFormat)
	}
	if v := r.u32(); r.err == nil && v != SnapshotVersion {
		return nil, fmt.Errorf("%w: version %d, this build reads %d", ErrSnapshotFormat, v, SnapshotVersion)
	}

	// Config section: decode, then verify against g and cfg.
	numEdges := int(r.u32())
	b := r.i32()
	depth := r.i32()
	shared := r.bool()
	restricted := r.bool()
	drop := r.bool()
	naive := r.bool()
	recycle := r.bool()
	arb := Policy(r.u8())
	parkStreak := r.i32()
	seed := r.u64()
	cfgMaxSteps := r.i64()
	maxSteps := r.i64()
	retryMax := r.i32()
	retryBase := r.i32()
	retryCap := r.i32()
	var faults fault.Schedule
	for n := r.length(MaxHorizon, "fault event"); n > 0 && r.err == nil; n-- {
		faults = append(faults, fault.Event{
			Step: int(r.i64()),
			Edge: int(r.u32()),
			Kind: fault.Kind(r.u8()),
		})
	}
	if r.err != nil {
		return nil, r.err
	}
	wantDepth := cfg.LaneDepth
	if wantDepth == 0 {
		wantDepth = 1
	}
	wantStreak := cfg.ParkStreak
	if wantStreak == 0 {
		wantStreak = defaultParkStreak
	}
	mismatch := func(field string, snap, want any) error {
		return fmt.Errorf("%w: %s: snapshot %v, config %v", ErrSnapshotConfig, field, snap, want)
	}
	// Normalize the caller's retry policy exactly as emptySim does: the
	// fields are zero when no schedule is attached, defaulted otherwise.
	wantRetryMax, wantRetryBase, wantRetryCap := 0, int32(0), int32(0)
	if len(cfg.Faults) > 0 {
		wantRetryMax = cfg.Retry.MaxAttempts
		base, bcap := cfg.Retry.Backoff, cfg.Retry.BackoffCap
		if base <= 0 {
			base = 16
		}
		if bcap <= 0 {
			bcap = 1024
		}
		wantRetryBase = int32(base) //wormvet:allow horizon -- validateFaults bounds Backoff ≤ MaxHorizon
		wantRetryCap = int32(bcap)  //wormvet:allow horizon -- validateFaults bounds BackoffCap ≤ MaxHorizon
	}
	switch {
	case numEdges != g.NumEdges():
		return nil, mismatch("network edges", numEdges, g.NumEdges())
	case int(b) != cfg.VirtualChannels:
		return nil, mismatch("VirtualChannels", b, cfg.VirtualChannels)
	case int(depth) != wantDepth:
		return nil, mismatch("LaneDepth", depth, wantDepth)
	case shared != cfg.SharedPool:
		return nil, mismatch("SharedPool", shared, cfg.SharedPool)
	case restricted != cfg.RestrictedBandwidth:
		return nil, mismatch("RestrictedBandwidth", restricted, cfg.RestrictedBandwidth)
	case drop != cfg.DropOnDelay:
		return nil, mismatch("DropOnDelay", drop, cfg.DropOnDelay)
	case naive != cfg.NaiveScan:
		return nil, mismatch("NaiveScan", naive, cfg.NaiveScan)
	case arb != cfg.Arbitration:
		return nil, mismatch("Arbitration", arb, cfg.Arbitration)
	case int(parkStreak) != wantStreak:
		return nil, mismatch("ParkStreak", parkStreak, wantStreak)
	case seed != cfg.Seed:
		return nil, mismatch("Seed", seed, cfg.Seed)
	case cfgMaxSteps != int64(cfg.MaxSteps):
		return nil, mismatch("MaxSteps", cfgMaxSteps, cfg.MaxSteps)
	case !slices.Equal(faults, cfg.Faults):
		return nil, mismatch("Faults", fmt.Sprintf("%d events", len(faults)), fmt.Sprintf("%d events", len(cfg.Faults)))
	case int(retryMax) != wantRetryMax:
		return nil, mismatch("Retry.MaxAttempts", retryMax, wantRetryMax)
	case retryBase != wantRetryBase:
		return nil, mismatch("Retry.Backoff", retryBase, wantRetryBase)
	case retryCap != wantRetryCap:
		return nil, mismatch("Retry.BackoffCap", retryCap, wantRetryCap)
	}

	si := emptySim(numEdges, cfg)
	si.maxSteps = int(maxSteps)
	si.recycle = recycle

	si.now = int(r.u64())
	// Clock sanity: a corrupt horizon or a clock outside [0, horizon]
	// would make the restored simulator spin (or idle-step for 2^63
	// steps) instead of terminating at its horizon.
	if r.err == nil && (maxSteps <= 0 || maxSteps > MaxHorizon) {
		r.fail("horizon %d out of range (0, %d]", maxSteps, MaxHorizon)
	}
	if r.err == nil && (si.now < 0 || si.now > si.maxSteps) {
		r.fail("clock %d out of range [0, %d]", si.now, si.maxSteps)
	}
	numWorms := r.length(MaxHorizon, "worm")
	var sawDelivered, sawDropped, sawAborted int
	for id := 0; id < numWorms && r.err == nil; id++ {
		w, _ := si.addWorm()
		w.id = int32(id) //wormvet:allow horizon -- bounded by the MaxHorizon length check above
		w.key = r.u64()
		w.d = r.i32()
		w.l = r.i32()
		w.frontier = r.i32()
		w.release = r.i32()
		w.injectTime = r.i32()
		w.deliverTime = r.i32()
		w.dropTime = r.i32()
		w.stalls = r.i32()
		w.status = Status(r.u8())
		w.parkedAt = r.i32()
		w.waitEdge = r.i32()
		w.streak = r.i32()
		w.woken = r.bool()
		w.fHead = r.i32()
		w.lastInj = r.i32()
		w.stretched = r.bool()
		w.blockedOn = r.i32()
		w.retries = r.i32()
		if keyID(w.key) != id {
			r.fail("worm %d: key %#x does not reference it", id, w.key)
		}
		if w.status < StatusWaiting || w.status > StatusAborted {
			r.fail("worm %d: status %d", id, w.status)
		}
		if w.d < 0 || w.l < 0 {
			r.fail("worm %d: path length %d / message length %d", id, w.d, w.l)
		}
		if w.frontier < 0 || (w.d >= 0 && w.l >= 0 && w.frontier > w.d+w.l) {
			r.fail("worm %d: frontier %d out of range [0,%d]", id, w.frontier, w.d+w.l)
		}
		if w.retries < 0 {
			r.fail("worm %d: negative retry count %d", id, w.retries)
		}
		if p := r.i32Slice(r.length(MaxHorizon, "path")); len(p) > 0 {
			if int32(len(p)) != w.d { //wormvet:allow horizon -- bounded by the MaxHorizon length check
				r.fail("worm %d: path length %d, d %d", id, len(p), w.d)
				continue
			}
			for _, e := range p {
				if e < 0 || int(e) >= numEdges {
					r.fail("worm %d: path edge %d out of range [0,%d)", id, e, numEdges)
				}
			}
			w.path = si.arena.alloc(len(p))
			copy(w.path, p)
		}
		if pr := r.i32Slice(r.length(MaxHorizon, "prog")); len(pr) > 0 {
			if !si.deepMode || int32(len(pr)) != w.l { //wormvet:allow horizon -- bounded by the MaxHorizon length check
				r.fail("worm %d: prog length %d, l %d, deep %v", id, len(pr), w.l, si.deepMode)
				continue
			}
			w.prog = si.arena.alloc(len(pr))
			copy(w.prog, pr)
		}
		// An in-flight worm walks its path (and, deep mode, its prog
		// array) on the next step; only finished worms have them freed.
		if inFlight := w.status == StatusWaiting || w.status == StatusActive; inFlight && r.err == nil {
			if w.d > 0 && w.path == nil {
				r.fail("worm %d: in flight with no path", id)
			}
			if si.deepMode && w.l > 0 && w.prog == nil {
				r.fail("worm %d: in flight with no prog", id)
			}
		}
		switch w.status {
		case StatusDelivered:
			sawDelivered++
		case StatusDropped:
			sawDropped++
		case StatusAborted:
			sawAborted++
		}
	}

	if r.err != nil {
		return nil, r.err
	}
	// Membership lists must reference live worms, each at most once per
	// structure class: a finished worm (path and prog freed) re-entered
	// into a scheduling structure would be stepped and walk freed
	// storage, and a duplicated reference outlives its worm's completion
	// and does the same one delivery later. The two classes are checked
	// separately because under ArbRandom a parked worm legitimately
	// appears in both the active order (skipped via parkedAt) and its
	// wait heap.
	seenList := make([]bool, numWorms)
	seenHeap := make([]bool, numWorms)
	checkKeys := func(keys []uint64, what string, heap bool) {
		seen := seenList
		if heap {
			seen = seenHeap
		}
		for _, k := range keys {
			id := keyID(k)
			if id >= numWorms {
				r.fail("%s key %#x references worm %d of %d", what, k, id, numWorms)
				return
			}
			w := si.worm(id)
			if w.status != StatusWaiting && w.status != StatusActive {
				r.fail("%s key %#x references a finished worm (status %d)", what, k, w.status)
				return
			}
			if heap && w.parkedAt < 0 {
				r.fail("%s key %#x references worm %d, which is not parked", what, k, id)
				return
			}
			if seen[id] {
				r.fail("%s key %#x references worm %d twice", what, k, id)
				return
			}
			seen[id] = true
		}
	}
	si.pending = r.keySlice(r.length(numWorms, "pending"))
	checkKeys(si.pending, "pending", false)
	si.active = r.keySlice(r.length(numWorms, "active"))
	checkKeys(si.active, "active", false)
	if r.bool() {
		// The naive scan's lazily materialized ID-ordered view. Under
		// ArbByID keys are bare worm indices, so a sorted copy of the
		// active list reconstructs it exactly.
		si.byID = append([]uint64(nil), si.active...)
		slices.Sort(si.byID)
	}

	r.i32sInto(skipLen(r, si.laneFree, "laneFree"))
	if si.deepMode {
		r.i32sInto(skipLen(r, si.flitFree, "flitFree"))
	}

	readHeaps := func(qs [][]uint64, what string) {
		prev := -1
		for n := r.length(numEdges, what); n > 0; n-- {
			e := int(r.u32())
			if e <= prev || e >= numEdges {
				r.fail("%s edge %d out of order or range", what, e)
				return
			}
			prev = e
			q := r.keySlice(r.length(numWorms, what))
			checkKeys(q, what, true)
			if r.err != nil {
				return
			}
			qs[e] = q
		}
	}
	if !si.naive {
		readHeaps(si.waitQ, "waitQ")
		if si.waitQFlit != nil {
			readHeaps(si.waitQFlit, "waitQFlit")
		}
		si.parked = int(r.i64())
		if si.finalSeen != nil {
			r.bitsInto(si.finalSeen)
			r.bitsInto(si.bodySeen)
		}
		si.mixedFinal = r.bool()
	}

	// Fault-plane run state (present iff a schedule is attached, which
	// the config section verified the caller agrees on). The derived
	// tallies are recomputed from the serialized arrays.
	if si.faults != nil {
		si.faultIdx = int(r.u32())
		if si.faultIdx > len(si.faults) {
			r.fail("fault cursor %d past schedule length %d", si.faultIdx, len(si.faults))
		}
		r.bitsInto(si.deadEdge)
		r.i32sInto(skipLen(r, si.killedLanes, "killedLanes"))
		r.i32sInto(skipLen(r, si.faultSince, "faultSince"))
		if si.faultQ != nil {
			readHeaps(si.faultQ, "faultQ")
		}
		si.aborted = int(r.i64())
		si.faultDead = r.bool()
		for e := range si.deadEdge {
			if si.deadEdge[e] {
				si.deadEdges++
			}
			k := si.killedLanes[e]
			if k < 0 || k > si.bI32 {
				r.fail("edge %d: killed lanes %d out of range [0,%d]", e, k, si.bI32)
			}
			si.killedTotal += int(k)
		}
	}

	if si.shuffler != nil {
		si.shuffler.Reseed(r.u64())
	}

	si.totalStalls = int(r.i64())
	si.flitHops = r.i64()
	si.maxOccupied = int(r.i64())
	si.delivered = int(r.i64())
	si.dropped = int(r.i64())
	// Cross-check the terminal counters against the per-worm statuses: a
	// flipped counter (or status) would skew Active() and either strand
	// the drain loop or end a run early.
	if r.err == nil && (si.delivered != sawDelivered || si.dropped != sawDropped || si.aborted != sawAborted) {
		r.fail("terminal counters %d/%d/%d disagree with worm statuses %d/%d/%d",
			si.delivered, si.dropped, si.aborted, sawDelivered, sawDropped, sawAborted)
	}
	si.deadlocked = r.bool()
	si.truncated = r.bool()
	if n := r.length(numWorms, "blockedIDs"); n > 0 {
		si.blockedIDs = make([]message.ID, n)
		for i := range si.blockedIDs {
			si.blockedIDs[i] = message.ID(r.i32())
		}
	}
	si.shardSteps = r.i64()

	if r.bool() {
		blob := r.blob(r.length(1<<30, "metrics blob"), "metrics blob")
		if r.err == nil && si.met != nil {
			if err := si.met.UnmarshalBinary(blob); err != nil {
				r.fail("metrics blob: %v", err)
			}
		}
	}

	if t := r.u64(); r.err == nil && t != snapTrailer {
		r.fail("missing trailer")
	}
	if r.err != nil {
		return nil, r.err
	}
	return si, nil
}

// skipLen validates a serialized fixed-size array's length prefix
// against the expected destination and returns the destination (or an
// empty slice on mismatch, so the read is a no-op after the error).
func skipLen(r *snapReader, dst []int32, what string) []int32 {
	if n := r.u32(); int(n) != len(dst) {
		r.fail("%s length %d, want %d", what, n, len(dst))
		return nil
	}
	return dst
}
