package vcsim

// Checkpoint/restore differentials: a Sim snapshotted mid-run, restored
// into a fresh process-equivalent Sim, must continue the run
// byte-identically to the uninterrupted original — across both steppers,
// every policy, deep lanes, shared pools, and cross-shard restores
// (snapshot under one Shards setting, restore under another). The decode
// path is additionally held to never panic on corrupt or truncated
// input.

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"wormhole/internal/message"
	"wormhole/internal/rng"
	"wormhole/internal/telemetry"
)

// snapInject streams the whole workload into an incremental Sim.
func snapInject(t *testing.T, si *Sim, set *message.Set, releases []int) {
	t.Helper()
	for i := 0; i < set.Len(); i++ {
		if _, err := si.Inject(set.Get(message.ID(i)), releases[i]); err != nil {
			t.Fatal(err)
		}
	}
}

// snapDrain steps until quiescent or the sim errors (horizon/deadlock —
// both are legitimate terminal states the snapshot must preserve).
func snapDrain(si *Sim) {
	for si.Active() > 0 {
		if err := si.Step(); err != nil {
			return
		}
	}
}

// roundTrip drives the full differential: oracle runs uninterrupted;
// victim runs to snapStep, snapshots, and its restoration (under
// restoreCfg, which may differ on mechanism-only fields) finishes the
// run. Both finals must be deeply equal, and a second snapshot taken at
// the end must be byte-identical between the victim's original and its
// restoration — the strongest statement that no schedule state was lost.
func roundTrip(t *testing.T, name string, set *message.Set, releases []int, cfg, restoreCfg Config, snapStep int) {
	t.Helper()

	oracle, err := NewSim(set.G, cfg)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	defer oracle.Close()
	snapInject(t, oracle, set, releases)
	snapDrain(oracle)
	want := oracle.Result()

	victim, err := NewSim(set.G, cfg)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	defer victim.Close()
	snapInject(t, victim, set, releases)
	for victim.Now() < snapStep && victim.Active() > 0 {
		if victim.Step() != nil {
			break
		}
	}
	var blob bytes.Buffer
	if err := victim.Snapshot(&blob); err != nil {
		t.Fatalf("%s: snapshot: %v", name, err)
	}

	restored, err := RestoreSim(set.G, restoreCfg, bytes.NewReader(blob.Bytes()))
	if err != nil {
		t.Fatalf("%s: restore: %v", name, err)
	}
	defer restored.Close()
	if restored.Now() != victim.Now() || restored.Active() != victim.Active() {
		t.Fatalf("%s: restored at step %d with %d active, victim at %d with %d",
			name, restored.Now(), restored.Active(), victim.Now(), victim.Active())
	}

	// Lockstep continuation: victim and its restoration must agree on
	// every subsequent observable step, and end equal to the oracle.
	for restored.Active() > 0 {
		errV := victim.Step()
		errR := restored.Step()
		if (errV == nil) != (errR == nil) {
			t.Fatalf("%s: step %d: victim err %v, restored err %v", name, restored.Now(), errV, errR)
		}
		if errR != nil {
			break
		}
		if victim.Now()%5 == 0 {
			rv, rr := victim.Result(), restored.Result()
			if !reflect.DeepEqual(rv, rr) {
				t.Fatalf("%s: step %d: restored run diverged\nvictim:   %+v\nrestored: %+v", name, restored.Now(), rv, rr)
			}
		}
	}
	got := restored.Result()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s: restored final diverged from uninterrupted oracle\noracle:   %+v\nrestored: %+v", name, want, got)
	}

	var endV, endR bytes.Buffer
	if err := victim.Snapshot(&endV); err != nil {
		t.Fatalf("%s: victim end snapshot: %v", name, err)
	}
	if err := restored.Snapshot(&endR); err != nil {
		t.Fatalf("%s: restored end snapshot: %v", name, err)
	}
	if !bytes.Equal(endV.Bytes(), endR.Bytes()) {
		t.Fatalf("%s: end-of-run snapshots differ between the original and its restoration", name)
	}
}

// TestSnapshotRoundTripDifferential fuzzes the snapshot step across the
// (policy × LaneDepth × SharedPool × Shards) grid, restoring each
// snapshot under a different Shards setting than it was taken with —
// checkpoint migration across stepper mechanisms must be invisible.
func TestSnapshotRoundTripDifferential(t *testing.T) {
	r := rng.New(0xC0DEC)
	caseID := 0
	for _, pol := range []Policy{ArbByID, ArbAge, ArbRandom} {
		for _, depth := range []int{1, 2} {
			for _, shared := range []bool{false, true} {
				for _, shards := range []int{0, 4} {
					topo := uint8(caseID % 3)
					seed := uint64(1000 + caseID)
					set, releases := fuzzWorkload(seed, topo, 18)
					cfg := Config{
						VirtualChannels:     1 + caseID%3,
						LaneDepth:           depth,
						SharedPool:          shared,
						RestrictedBandwidth: caseID%4 == 1,
						DropOnDelay:         caseID%5 == 2,
						Arbitration:         pol,
						Seed:                seed,
						MaxSteps:            1 << 16,
						Shards:              shards,
						CheckInvariants:     true,
					}
					restoreCfg := cfg
					restoreCfg.Shards = 4 - shards // 0↔4: cross-mechanism restore
					snapStep := 1 + r.Intn(40)
					roundTrip(t, pol.String(), set, releases, cfg, restoreCfg, snapStep)
					caseID++
				}
			}
		}
	}
}

// TestSnapshotNaiveAndEdgeStates covers the serialization branches the
// main grid misses: the naive scan (no wait heaps, materialized byID
// view) and a snapshot taken before any worm is released.
func TestSnapshotNaiveAndEdgeStates(t *testing.T) {
	set, releases := fuzzWorkload(7, 1, 12)
	for _, pol := range []Policy{ArbByID, ArbAge} {
		cfg := Config{
			VirtualChannels: 2,
			Arbitration:     pol,
			NaiveScan:       true,
			Seed:            7,
			MaxSteps:        1 << 16,
			CheckInvariants: true,
		}
		roundTrip(t, "naive-"+pol.String(), set, releases, cfg, cfg, 6)
	}
	cfg := Config{VirtualChannels: 1, Seed: 7, MaxSteps: 1 << 16, CheckInvariants: true}
	roundTrip(t, "pre-release", set, releases, cfg, cfg, 0)
}

// TestSnapshotResumesInjection pins the post-restore injection path: a
// restored Sim accepts new messages and schedules them exactly like the
// uninterrupted original (the daemon resumes open-loop runs this way,
// injecting the remainder of the workload after the restart).
func TestSnapshotResumesInjection(t *testing.T) {
	set, releases := fuzzWorkload(11, 0, 16)
	cfg := Config{VirtualChannels: 2, Arbitration: ArbAge, Seed: 11, MaxSteps: 1 << 16, CheckInvariants: true}
	half := set.Len() / 2

	inject := func(si *Sim, from, to int, offset int) {
		t.Helper()
		for i := from; i < to; i++ {
			if _, err := si.Inject(set.Get(message.ID(i)), offset+releases[i]); err != nil {
				t.Fatal(err)
			}
		}
	}

	oracle, err := NewSim(set.G, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	victim, err := NewSim(set.G, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	for _, si := range []*Sim{oracle, victim} {
		inject(si, 0, half, 0)
		if err := si.StepTo(8); err != nil {
			t.Fatal(err)
		}
	}

	var blob bytes.Buffer
	if err := victim.Snapshot(&blob); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSim(set.G, cfg, bytes.NewReader(blob.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()

	// Second wave of injections lands on the oracle and the restoration.
	inject(oracle, half, set.Len(), 8)
	inject(restored, half, set.Len(), 8)
	snapDrain(oracle)
	snapDrain(restored)
	if want, got := oracle.Result(), restored.Result(); !reflect.DeepEqual(want, got) {
		t.Fatalf("post-restore injection diverged\noracle:   %+v\nrestored: %+v", want, got)
	}
}

// TestSnapshotCarriesMetrics verifies a restored run resumes its
// flight-recorder totals: the registry restored from a mid-run snapshot
// and driven to completion reports the same step count as the
// uninterrupted run, not a restart from zero.
func TestSnapshotCarriesMetrics(t *testing.T) {
	set, releases := fuzzWorkload(3, 0, 14)
	base := Config{VirtualChannels: 2, Arbitration: ArbAge, Seed: 3, MaxSteps: 1 << 16}

	full := telemetry.NewMetrics()
	cfg := base
	cfg.Metrics = full
	oracle, err := NewSim(set.G, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	snapInject(t, oracle, set, releases)
	snapDrain(oracle)

	part := telemetry.NewMetrics()
	cfg = base
	cfg.Metrics = part
	victim, err := NewSim(set.G, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	snapInject(t, victim, set, releases)
	if err := victim.StepTo(9); err != nil {
		t.Fatal(err)
	}
	var blob bytes.Buffer
	if err := victim.Snapshot(&blob); err != nil {
		t.Fatal(err)
	}

	resumed := telemetry.NewMetrics()
	cfg = base
	cfg.Metrics = resumed
	restored, err := RestoreSim(set.G, cfg, bytes.NewReader(blob.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	snapDrain(restored)

	want, got := full.Snapshot(), resumed.Snapshot()
	for _, name := range []string{"steps", "injections", "deliveries", "flit_hops", "stall_events"} {
		if want.Counter(name) != got.Counter(name) {
			t.Errorf("counter %s: uninterrupted %d, resumed %d", name, want.Counter(name), got.Counter(name))
		}
	}
}

// TestRestoreRejectsMismatchedConfig exercises the ErrSnapshotConfig
// contract on every verified field.
func TestRestoreRejectsMismatchedConfig(t *testing.T) {
	set, releases := fuzzWorkload(5, 0, 10)
	cfg := Config{VirtualChannels: 2, LaneDepth: 2, Arbitration: ArbAge, Seed: 5, MaxSteps: 1 << 16}
	si, err := NewSim(set.G, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer si.Close()
	snapInject(t, si, set, releases)
	if err := si.StepTo(5); err != nil {
		t.Fatal(err)
	}
	var blob bytes.Buffer
	if err := si.Snapshot(&blob); err != nil {
		t.Fatal(err)
	}

	mutations := map[string]func(*Config){
		"VirtualChannels":     func(c *Config) { c.VirtualChannels = 3 },
		"LaneDepth":           func(c *Config) { c.LaneDepth = 3 },
		"SharedPool":          func(c *Config) { c.SharedPool = true },
		"RestrictedBandwidth": func(c *Config) { c.RestrictedBandwidth = true },
		"DropOnDelay":         func(c *Config) { c.DropOnDelay = true },
		"NaiveScan":           func(c *Config) { c.NaiveScan = true },
		"Arbitration":         func(c *Config) { c.Arbitration = ArbRandom },
		"ParkStreak":          func(c *Config) { c.ParkStreak = 3 },
		"Seed":                func(c *Config) { c.Seed = 99 },
		"MaxSteps":            func(c *Config) { c.MaxSteps = 123 },
	}
	for field, mutate := range mutations {
		bad := cfg
		mutate(&bad)
		if _, err := RestoreSim(set.G, bad, bytes.NewReader(blob.Bytes())); !errors.Is(err, ErrSnapshotConfig) {
			t.Errorf("%s mismatch: got %v, want ErrSnapshotConfig", field, err)
		} else if !strings.Contains(err.Error(), field) {
			t.Errorf("%s mismatch error does not name the field: %v", field, err)
		}
	}

	// A different network is a config mismatch too.
	other, _ := fuzzWorkload(5, 1, 4)
	if _, err := RestoreSim(other.G, cfg, bytes.NewReader(blob.Bytes())); !errors.Is(err, ErrSnapshotConfig) {
		t.Errorf("wrong network: got %v, want ErrSnapshotConfig", err)
	}
	// Mechanism-only fields restore freely.
	free := cfg
	free.Shards = 8
	free.CheckInvariants = true
	if _, err := RestoreSim(set.G, free, bytes.NewReader(blob.Bytes())); err != nil {
		t.Errorf("Shards/CheckInvariants should be unverified: %v", err)
	}
}

// TestRestoreNeverPanicsOnCorruptInput sweeps truncations and byte
// corruptions of a valid snapshot through RestoreSim: every one must
// come back as a typed error, never a panic or an OOM-sized allocation.
func TestRestoreNeverPanicsOnCorruptInput(t *testing.T) {
	set, releases := fuzzWorkload(9, 2, 12)
	cfg := Config{VirtualChannels: 2, Arbitration: ArbAge, Seed: 9, MaxSteps: 1 << 16}
	si, err := NewSim(set.G, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer si.Close()
	snapInject(t, si, set, releases)
	if err := si.StepTo(7); err != nil {
		t.Fatal(err)
	}
	var blob bytes.Buffer
	if err := si.Snapshot(&blob); err != nil {
		t.Fatal(err)
	}
	valid := blob.Bytes()

	if _, err := RestoreSim(set.G, cfg, bytes.NewReader(valid)); err != nil {
		t.Fatalf("valid snapshot failed to restore: %v", err)
	}
	if _, err := RestoreSim(set.G, cfg, strings.NewReader("NOTASNAP....")); !errors.Is(err, ErrSnapshotFormat) {
		t.Errorf("bad magic: got %v, want ErrSnapshotFormat", err)
	}
	vbad := append([]byte(nil), valid...)
	vbad[8] = 99 // version field
	if _, err := RestoreSim(set.G, cfg, bytes.NewReader(vbad)); !errors.Is(err, ErrSnapshotFormat) {
		t.Errorf("bad version: got %v, want ErrSnapshotFormat", err)
	}

	for cut := 0; cut < len(valid); cut += 7 {
		if _, err := RestoreSim(set.G, cfg, bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d restored successfully", cut, len(valid))
		}
	}
	r := rng.New(0xBAD)
	for trial := 0; trial < 400; trial++ {
		mut := append([]byte(nil), valid...)
		pos := len(snapMagic) + 4 + r.Intn(len(mut)-len(snapMagic)-4)
		mut[pos] ^= byte(1 + r.Intn(255))
		si2, err := RestoreSim(set.G, cfg, bytes.NewReader(mut))
		if err == nil {
			// A flipped bit in a non-validated field (a counter, a
			// timestamp) can still decode; it must at least not wedge
			// the stepper.
			snapDrain(si2)
			si2.Close()
		}
	}
}
