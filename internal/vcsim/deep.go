package vcsim

// This file is the buffer-architecture layer: the flit-level "deep" engine
// that models multi-flit virtual-channel lanes (Config.LaneDepth d > 1)
// and dynamically shared per-edge flit pools (Config.SharedPool). The
// paper's model — exactly one flit of buffering per virtual channel — is
// the d = 1 static special case and keeps running on the original rigid
// engine in vcsim.go, bit for bit; the deep engine takes over only when a
// config asks for an architecture the rigid engine cannot express.
//
// Model. Every edge still multiplexes B lanes (virtual channels), and a
// worm holds at most one lane per edge — a lane belongs to a worm from the
// step its first flit is buffered on the edge until the step its last flit
// leaves. What changes is flit capacity:
//
//   - static lanes (SharedPool == false): each lane is a private d-flit
//     FIFO, so a worm can pile up to d of its own flits on one edge and an
//     edge buffers at most B·d flits, at most d per worm;
//   - shared pool (SharedPool == true): the edge owns a single pool of B·d
//     flit credits allocated dynamically across its lanes — one hot lane
//     can absorb the entire pool, but the lane count stays capped at B, so
//     at most B distinct worms are ever buffered per edge.
//
// With more than one flit of lane storage a blocked worm no longer stalls
// rigidly: trailing flits keep advancing into free lane space behind the
// blocked header ("compression"), draining the upstream edges they leave.
// That breaks the single-counter worm representation, so the deep engine
// tracks per-flit progress: prog[j] = edges flit j has crossed, a
// non-increasing sequence (FIFO order is structural). Flit j with progress
// 1 ≤ c ≤ D−1 occupies the buffer at the head of path[c−1]; progress D
// means delivered, progress 0 means still in the unbounded injection
// buffer.
//
// One flit step moves every movable flit once, under the same conservative
// two-phase discipline as the rigid engine (credits released during a step
// become visible at the next step). Flit j advances from progress c iff
//
//  1. FIFO: j == 0, or flit j−1 started the step strictly ahead
//     (prog[j] < prog[j−1]);
//  2. buffer capacity on the target edge path[c] (skipped for the final
//     edge, whose delivery buffer is external):
//     - shift-through: when flit j−1 advances out of path[c] this very
//       step, flit j inherits the vacated slot — no credit changes hands.
//       This is the intra-worm FIFO shift of the rigid engine (which only
//       ever grants at the header and releases at the tail) and is what
//       makes an unobstructed deep worm advance exactly like a rigid one;
//     - joining its own lane: needs own-lane room (static: fewer than d
//       own flits there; shared: a pool credit);
//     - acquiring a lane (first flit of the worm on that edge): needs a
//       free lane (< B in use) and, in shared mode, a pool credit;
//  3. bandwidth: the crossing cap on path[c] (B, or 1 under
//     RestrictedBandwidth) has headroom — identical to the rigid rule.
//
// A worm "advances" when any of its flits moves; a step in which no flit
// moves is a stall, which keeps MessageStats.Stalls, drop-on-delay, and
// deadlock detection on the same definitions as the rigid engine. The
// wakeup stepper parks a deep worm only when its failed step was blocked
// on exactly one foreign edge (a lane or pool credit held by other worms)
// and nothing was bandwidth-blocked: FIFO and own-lane blocks resolve only
// through the worm's own movement, so the single foreign edge is provably
// the only place whose credit events can change the verdict. Waits on that
// edge wake on any credit event — lane or flit — and, because the
// free-slot-count argument of the rigid wake rule does not survive pooled
// credits, a deep-mode slot event always wakes the whole queue (the same
// conservative rule the restricted-bandwidth model uses).

import (
	"fmt"

	"wormhole/internal/message"
)

func panicf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...))
}

// deepWorm is the deep engine's per-worm flit state, held in a parallel
// array (Sim.deepWorms) rather than in worm itself so the rigid engine's
// hot array keeps its original size. prog[j] is the number of edges flit
// j has crossed — non-increasing in j, with D meaning delivered and 0
// meaning not yet injected. fHead is the first undelivered flit; lastInj
// the last injected one (−1 before the header enters the network).
type deepWorm struct {
	prog    []int32
	fHead   int32
	lastInj int32
}

// tryAdvanceDeep attempts to move every movable flit of worm w one edge
// and reports whether any flit moved. On a fully blocked step it returns
// the single foreign-blocked edge the worm may be parked on, or −1 when
// no such edge exists (multiple foreign edges, or a transient bandwidth
// block that resets next step).
func (si *Sim) tryAdvanceDeep(w *worm) (bool, int32) {
	if w.d == 0 {
		// Source equals destination: the rigid delivery rule applies
		// verbatim (no buffers are involved).
		return si.tryAdvance(w)
	}
	dw := &si.deepWorms[w.id]
	var (
		moved    bool
		parkEdge int32 = -1   // the one foreign-blocked edge, if unique
		parkable       = true // false on bandwidth or multi-edge blocks
		// Predecessor state, in start-of-step (old) values: the deep rules
		// only ever consult the previous flit and its buffered group, so a
		// single left-to-right pass needs no second array.
		prevOld    = int32(w.d) // flit fHead−1 is delivered (progress D)
		prevMoved  bool
		groupProg  int32 = -1 // old progress of the predecessor's group
		groupCount int32      // its size (own flits at that progress)
		// pendingRel defers the predecessor's source-buffer release until
		// this flit's verdict is known: if it shifts through, the slot
		// passes inside the worm and no credit moves at all.
		pendingRel int32 = -1
	)
	// Flits beyond lastInj+1 are uninjected and FIFO-blocked behind an
	// uninjected flit; they cannot move and are skipped wholesale.
	limit := int(dw.lastInj) + 1
	if limit > w.l-1 {
		limit = w.l - 1
	}
	for j := int(dw.fHead); j <= limit; j++ {
		c := dw.prog[j]
		adv := false
		foreign := int32(-1)
		if c < prevOld { // FIFO: strictly behind the predecessor at step start
			e := w.path[c]
			shift := prevMoved && prevOld == c+1
			fits := true
			if c <= int32(w.d)-2 && !shift {
				if groupProg == c+1 {
					// Joining the lane the predecessor group occupies.
					if si.shared {
						if si.flitsUsed[e]+si.flitGrants[e] >= si.poolCap {
							fits = false
							foreign = e
						}
					} else if groupCount >= si.depth {
						fits = false // own lane full: only own movement frees it
					}
				} else {
					// First flit of the worm on this edge: acquire a lane.
					if si.slotsUsed[e]+si.grants[e] >= int32(si.b) {
						fits = false
						foreign = e
					} else if si.shared && si.flitsUsed[e]+si.flitGrants[e] >= si.poolCap {
						fits = false
						foreign = e
					}
				}
			}
			if fits && si.crossings[e] >= int32(si.cap) {
				fits = false
				parkable = false // bandwidth resets every step: transient
			}
			if fits {
				adv = true
				si.crossings[e]++
				si.touch(e)
				si.flitHops++
				if c <= int32(w.d)-2 && !shift {
					si.flitGrants[e]++
					if groupProg != c+1 {
						si.grants[e]++ // lane acquisition
					}
				}
			} else if foreign >= 0 {
				if parkEdge < 0 {
					parkEdge = foreign
				} else if parkEdge != foreign {
					parkable = false // blocked on two different edges
				}
			}
		}
		// Resolve the predecessor's deferred source release now that this
		// flit's verdict is in: a shift-through consumes the slot silently;
		// anything else frees the flit credit and the (now empty) lane.
		if pendingRel >= 0 {
			if !adv {
				si.flitReleases[pendingRel]++
				si.releases[pendingRel]++
				si.touch(pendingRel)
			}
			pendingRel = -1
		}
		if adv {
			if c >= 1 {
				// The flit leaves the buffer at the head of path[c−1].
				s := w.path[c-1]
				switch {
				case j < w.l-1 && dw.prog[j+1] == c:
					// A groupmate stays behind: credit frees, lane is kept.
					si.flitReleases[s]++
					si.touch(s)
				case j < w.l-1 && dw.prog[j+1] == c-1:
					// The successor may shift through this very slot.
					pendingRel = s
				default:
					si.flitReleases[s]++
					si.releases[s]++
					si.touch(s)
				}
			} else {
				dw.lastInj = int32(j)
				if w.stats.InjectTime < 0 {
					w.stats.InjectTime = si.now + 1
				}
			}
			if c == int32(w.d)-1 {
				dw.fHead++ // crossed the final edge: delivered
			}
			dw.prog[j] = c + 1
			moved = true
		}
		// Slide the predecessor window (old values) for the next flit.
		if c == groupProg {
			groupCount++
		} else {
			groupProg, groupCount = c, 1
		}
		prevOld, prevMoved = c, adv
	}
	if pendingRel >= 0 {
		// The tail flit advanced with no successor to shift through.
		si.flitReleases[pendingRel]++
		si.releases[pendingRel]++
		si.touch(pendingRel)
	}
	if !moved {
		if parkable && parkEdge >= 0 {
			return false, parkEdge
		}
		return false, -1
	}
	if obs := si.cfg.Observer; obs != nil {
		obs.OnAdvance(si.now+1, message.ID(w.id), int(dw.prog[0]))
	}
	if int(dw.fHead) >= w.l {
		w.stats.Status = StatusDelivered
		w.stats.DeliverTime = si.now + 1
		si.delivered++
		si.freePath(w)
		si.freeProg(w)
		if obs := si.cfg.Observer; obs != nil {
			obs.OnDeliver(si.now+1, message.ID(w.id))
		}
		if cb := si.cfg.OnComplete; cb != nil {
			cb(message.ID(w.id), w.stats)
		}
	} else {
		w.stats.Status = StatusActive
	}
	return true, -1
}

// releaseDeepWorm frees every buffer credit a dropped deep worm holds:
// one flit credit per buffered flit, one lane per occupied edge (visible
// next step, like any other release).
func (si *Sim) releaseDeepWorm(w *worm) {
	dw := &si.deepWorms[w.id]
	for j := int(dw.fHead); j <= int(dw.lastInj); j++ {
		c := dw.prog[j]
		if c < 1 || c > int32(w.d)-1 {
			continue
		}
		s := w.path[c-1]
		si.flitReleases[s]++
		if j == int(dw.lastInj) || dw.prog[j+1] != c {
			si.releases[s]++ // last own flit on the edge: lane frees too
		}
		si.touch(s)
	}
}

// freeProg retires a finished deep worm's progress buffer, mirroring
// freePath's recycle policy. A no-op on the rigid path, which has no
// deep state at all.
func (si *Sim) freeProg(w *worm) {
	if si.deepWorms == nil {
		return
	}
	dw := &si.deepWorms[w.id]
	if si.recycle && cap(dw.prog) > 0 {
		si.progFree = append(si.progFree, dw.prog[:0])
	}
	dw.prog = nil
}

// newProg returns a zeroed buffer for l flit-progress counters, reusing a
// retired buffer when one fits.
func (si *Sim) newProg(l int) []int32 {
	if k := len(si.progFree); k > 0 && l > 0 && cap(si.progFree[k-1]) >= l {
		p := si.progFree[k-1][:l]
		si.progFree = si.progFree[:k-1]
		for i := range p {
			p[i] = 0
		}
		return p
	}
	return make([]int32, l)
}

// checkInvariantsDeep asserts the deep model's invariants: per-edge flit
// occupancy and lane counts derived from every worm's prog array must
// match the persistent accounting, and no capacity may be exceeded —
// flits ≤ B·d per edge, lanes ≤ B per edge, and (static mode) at most d
// flits per worm per edge. FIFO monotonicity of each prog array rides
// along. Panics on violation so tests pinpoint the first bad step.
func (si *Sim) checkInvariantsDeep() {
	flitOcc := make(map[int32]int32, 64)
	laneOcc := make(map[int32]int32, 64)
	for i := range si.worms {
		w := &si.worms[i]
		if w.stats.Status == StatusDropped || w.stats.Status == StatusDelivered {
			continue
		}
		dw := &si.deepWorms[i]
		prev := int32(w.d)
		for j := 0; j < w.l; j++ {
			c := dw.prog[j]
			if c > prev {
				panicf("vcsim: step %d: worm %d flit %d progress %d ahead of flit %d (%d)", si.now, i, j, c, j-1, prev)
			}
			if c < 0 || c > int32(w.d) {
				panicf("vcsim: step %d: worm %d flit %d progress %d out of range [0,%d]", si.now, i, j, c, w.d)
			}
			if c >= 1 && c <= int32(w.d)-1 {
				e := w.path[c-1]
				flitOcc[e]++
				if j == 0 || dw.prog[j-1] != c {
					laneOcc[e]++ // first flit of this worm's group on e
				}
				if !si.shared {
					// Group size = own flits at this progress; count via the
					// run of equal values ending here.
					run := int32(1)
					for k := j - 1; k >= 0 && dw.prog[k] == c; k-- {
						run++
					}
					if run > si.depth {
						panicf("vcsim: step %d: worm %d holds %d > d=%d flits on edge %d", si.now, i, run, si.depth, e)
					}
				}
			}
			prev = c
		}
	}
	for e, c := range flitOcc {
		if c != si.flitsUsed[e] {
			panicf("vcsim: step %d: edge %d flit occupancy %d but flitsUsed %d", si.now, e, c, si.flitsUsed[e])
		}
		if c > si.poolCap {
			panicf("vcsim: step %d: edge %d holds %d > B·d=%d flits", si.now, e, c, si.poolCap)
		}
	}
	for e, c := range laneOcc {
		if c != si.slotsUsed[e] {
			panicf("vcsim: step %d: edge %d lane occupancy %d but lanes in use %d", si.now, e, c, si.slotsUsed[e])
		}
		if c > int32(si.b) {
			panicf("vcsim: step %d: edge %d holds %d > B=%d lanes", si.now, e, c, si.b)
		}
	}
	for e, used := range si.flitsUsed {
		if used != 0 && flitOcc[int32(e)] == 0 {
			panicf("vcsim: step %d: edge %d has stale flit occupancy %d", si.now, e, used)
		}
	}
	for e, used := range si.slotsUsed {
		if used != 0 && laneOcc[int32(e)] == 0 {
			panicf("vcsim: step %d: edge %d has stale lane occupancy %d", si.now, e, used)
		}
	}
}
