package vcsim

// This file is the buffer-architecture layer: the flit-level "deep" engine
// that models multi-flit virtual-channel lanes (Config.LaneDepth d > 1)
// and dynamically shared per-edge flit pools (Config.SharedPool). The
// paper's model — exactly one flit of buffering per virtual channel — is
// the d = 1 static special case and keeps running on the original rigid
// engine in vcsim.go, bit for bit; the deep engine takes over only when a
// config asks for an architecture the rigid engine cannot express.
//
// Model. Every edge still multiplexes B lanes (virtual channels), and a
// worm holds at most one lane per edge — a lane belongs to a worm from the
// step its first flit is buffered on the edge until the step its last flit
// leaves. What changes is flit capacity:
//
//   - static lanes (SharedPool == false): each lane is a private d-flit
//     FIFO, so a worm can pile up to d of its own flits on one edge and an
//     edge buffers at most B·d flits, at most d per worm;
//   - shared pool (SharedPool == true): the edge owns a single pool of B·d
//     flit credits allocated dynamically across its lanes — one hot lane
//     can absorb the entire pool, but the lane count stays capped at B, so
//     at most B distinct worms are ever buffered per edge.
//
// With more than one flit of lane storage a blocked worm no longer stalls
// rigidly: trailing flits keep advancing into free lane space behind the
// blocked header ("compression"), draining the upstream edges they leave.
// That breaks the single-counter worm representation, so the deep engine
// tracks per-flit progress: prog[j] = edges flit j has crossed, a
// non-increasing sequence (FIFO order is structural). Flit j with progress
// 1 ≤ c ≤ D−1 occupies the buffer at the head of path[c−1]; progress D
// means delivered, progress 0 means still in the unbounded injection
// buffer.
//
// Storage. The flit state lives inline in the worm struct — the arena-
// backed prog buffer plus the fHead/lastInj cursors — so an advance
// attempt touches exactly one worm record; the pre-overhaul engine kept a
// parallel deepWorms array whose extra cache miss per attempt was a
// measurable slice of deep-knee step cost. Edge credits are the shared
// in-place counters of vcsim.go: laneFree (lanes = distinct worms
// buffered), flitFree (the B·d flit credits), with releases deferred
// through relLane/relFlit under the two-phase discipline, and the
// epoch-stamped crossings meter for bandwidth.
//
// One flit step moves every movable flit once, under the same conservative
// two-phase discipline as the rigid engine (credits released during a step
// become visible at the next step). Flit j advances from progress c iff
//
//  1. FIFO: j == 0, or flit j−1 started the step strictly ahead
//     (prog[j] < prog[j−1]);
//  2. buffer capacity on the target edge path[c] (skipped for the final
//     edge, whose delivery buffer is external):
//     - shift-through: when flit j−1 advances out of path[c] this very
//       step, flit j inherits the vacated slot — no credit changes hands.
//       This is the intra-worm FIFO shift of the rigid engine (which only
//       ever grants at the header and releases at the tail) and is what
//       makes an unobstructed deep worm advance exactly like a rigid one;
//     - joining its own lane: needs own-lane room (static: fewer than d
//       own flits there; shared: a pool credit);
//     - acquiring a lane (first flit of the worm on that edge): needs a
//       free lane (< B in use) and, in shared mode, a pool credit;
//  3. bandwidth: the crossing cap on path[c] (B, or 1 under
//     RestrictedBandwidth) has headroom — identical to the rigid rule.
//
// A worm "advances" when any of its flits moves; a step in which no flit
// moves is a stall, which keeps MessageStats.Stalls, drop-on-delay, and
// deadlock detection on the same definitions as the rigid engine. The
// wakeup stepper parks a deep worm only when its failed step was blocked
// on exactly one foreign edge (a lane or pool credit held by other worms)
// and nothing was bandwidth-blocked: FIFO and own-lane blocks resolve only
// through the worm's own movement, so the single foreign edge is provably
// the only place whose credit events can change the verdict. Waits on that
// edge wake on any credit event — lane or flit — and, because the
// free-slot-count argument of the rigid wake rule does not survive pooled
// credits, a deep-mode slot event always wakes the whole queue (the same
// conservative rule the restricted-bandwidth model uses).

import (
	"fmt"

	"wormhole/internal/message"
	"wormhole/internal/telemetry"
)

func panicf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...))
}

// parkFlitBit tags a deep park target (the foreign edge a fully blocked
// worm returns) whose blocked flit was refused a shared-pool credit while
// joining its own lane — the one deep block whose resume condition is
// flitFree > 0 alone. An untagged target is a lane acquisition, resumable
// only when laneFree > 0 (and, shared, flitFree > 0 too). wakeEdge wakes
// a queue only when its condition actually holds post-fold, so contended
// edges' constant credit traffic no longer thrashes their parked worms.
const parkFlitBit = int32(1) << 30

// tryAdvanceDeep attempts to move every movable flit of worm w one edge
// and reports whether any flit moved. On a fully blocked step it returns
// the single foreign-blocked edge the worm may be parked on, or −1 when
// no such edge exists (multiple foreign edges, or a transient bandwidth
// block that resets next step).
//
//wormvet:hotpath
func (si *Sim) tryAdvanceDeep(w *worm) (bool, int32) {
	if w.d == 0 {
		// Source equals destination: the rigid delivery rule applies
		// verbatim (no buffers are involved).
		return si.tryAdvance(w)
	}
	if b := w.blockedOn; b >= 0 {
		// Cached fully-blocked verdict (see worm.blockedOn): while the
		// blocking credit stays exhausted (or the blocking edge stays
		// dead), nothing else about the verdict can change — every other
		// flit is FIFO- or own-lane-blocked, states only the worm's own
		// movement resolves — so the whole rescan collapses to this
		// resume-condition probe.
		e := b &^ (parkFlitBit | parkFaultBit)
		switch {
		case b&parkFaultBit != 0:
			if si.deadEdge[e] {
				// A cached re-fail is a proven park-eligible verdict: the
				// block already outlived a step and wakes are precise, so
				// skip the rest of the probation (pure mechanism — park
				// timing never changes results; see the park-hysteresis
				// suite).
				w.streak = si.parkStreak - 1
				if m := si.met; m != nil {
					m.EdgeStall(telemetry.CtrStallFault, e)
				}
				return false, b
			}
		case b&parkFlitBit != 0:
			if si.flitFree[e] <= 0 {
				w.streak = si.parkStreak - 1
				if m := si.met; m != nil {
					m.EdgeStall(telemetry.CtrStallSharedPool, e)
				}
				return false, b
			}
		default:
			if si.laneFree[e] <= 0 || (si.shared && si.flitFree[e] <= 0) {
				w.streak = si.parkStreak - 1
				if m := si.met; m != nil {
					m.EdgeStall(telemetry.CtrStallLaneCredit, e)
				}
				return false, b
			}
		}
		w.blockedOn = -1
	}
	// A dead edge anywhere in the network disables the stretched fast
	// path: its all-advance commit cannot express a refused reservation.
	// Lane kills alone keep it — they act purely through the credit
	// counters the fast path already checks.
	if w.stretched && si.deadEdges == 0 && si.tryAdvanceStretched(w) {
		return si.finishDeepMove(w)
	}
	var (
		moved     bool
		parkEdge  int32 = -1   // the one foreign-blocked edge, if unique
		parkable        = true // false on bandwidth or multi-edge blocks
		bwBlocked bool         // any flit hit the crossing cap (telemetry)
		// Predecessor state, in start-of-step (old) values: the deep rules
		// only ever consult the previous flit and its buffered group, so a
		// single left-to-right pass needs no second array.
		prevOld    = w.d // flit fHead−1 is delivered (progress D)
		prevMoved  bool
		groupProg  int32 = -1 // old progress of the predecessor's group
		groupCount int32      // its size (own flits at that progress)
		// pendingRel defers the predecessor's source-buffer release until
		// this flit's verdict is known: if it shifts through, the slot
		// passes inside the worm and no credit moves at all.
		pendingRel int32 = -1

		// Hot-loop locals: the buffers, per-edge counter arrays, limits,
		// and this step's crossing epoch, hoisted so the per-flit body
		// stays load-light (method calls in the loop would otherwise
		// force the slice headers to reload from si each iteration).
		prog      = w.prog
		path      = w.path
		bodyCap   = w.d - 2
		lastFlit  = int(w.l) - 1
		stamp     = si.crossStamp()
		cap32     = si.capI32
		depth     = si.depth
		laneFree  = si.laneFree
		flitFree  = si.flitFree
		relLane   = si.relLane
		relFlit   = si.relFlit
		crossings = si.crossings
		shared    = si.shared
	)
	// Flits beyond lastInj+1 are uninjected and FIFO-blocked behind an
	// uninjected flit; they cannot move and are skipped wholesale.
	limit := int(w.lastInj) + 1
	if limit > lastFlit {
		limit = lastFlit
	}
	for j := int(w.fHead); j <= limit; j++ {
		c := prog[j]
		adv := false
		foreign := int32(-1)
		if c < prevOld { // FIFO: strictly behind the predecessor at step start
			e := path[c]
			shift := prevMoved && prevOld == c+1
			fits := true
			if dead := si.deadEdge; dead != nil && dead[e] &&
				((c > bodyCap && j == 0) || (c <= bodyCap && !shift && groupProg != c+1)) {
				// New reservation on a dead edge — a header's final-edge
				// crossing or a lane acquisition — is refused. Established
				// flits (shift-throughs, own-lane joins, post-header
				// final-edge drains) keep flowing: the link's pipeline
				// drains, it just accepts nothing new.
				fits = false
				foreign = e | parkFaultBit
			}
			if fits && c <= bodyCap && !shift {
				if groupProg == c+1 {
					// Joining the lane the predecessor group occupies.
					if si.shared {
						if flitFree[e] <= 0 {
							fits = false
							foreign = e | parkFlitBit
						}
					} else if groupCount >= depth {
						fits = false // own lane full: only own movement frees it
					}
				} else {
					// First flit of the worm on this edge: acquire a lane.
					if laneFree[e] <= 0 {
						fits = false
						foreign = e
					} else if shared && flitFree[e] <= 0 {
						fits = false
						foreign = e
					}
				}
			}
			if fits {
				if cw := crossings[e]; cw >= stamp && int32(cw-stamp) >= cap32 {
					fits = false
					parkable = false // bandwidth resets every step: transient
					bwBlocked = true
				}
			}
			if fits {
				adv = true
				cw := crossings[e]
				if cw < stamp {
					cw = stamp
				}
				crossings[e] = cw + 1
				si.flitHops++
				if c <= bodyCap && !shift {
					flitFree[e]--
					if groupProg != c+1 {
						laneFree[e]-- // lane acquisition
					}
					si.touchMax(e)
				}
			} else if foreign >= 0 {
				if parkEdge < 0 {
					parkEdge = foreign
				} else if parkEdge != foreign {
					parkable = false // blocked on two different edges
				}
			}
		}
		// Resolve the predecessor's deferred source release now that this
		// flit's verdict is in: a shift-through consumes the slot silently;
		// anything else frees the flit credit and the (now empty) lane.
		if pendingRel >= 0 {
			if !adv {
				relFlit[pendingRel]++
				relLane[pendingRel]++
				si.touch(pendingRel)
			}
			pendingRel = -1
		}
		if adv {
			if c >= 1 {
				// The flit leaves the buffer at the head of path[c−1].
				s := path[c-1]
				nx := c - 2 // no successor: both special cases miss
				if j < lastFlit {
					nx = prog[j+1]
				}
				switch nx {
				case c:
					// A groupmate stays behind: credit frees, lane is kept.
					relFlit[s]++
					si.touch(s)
				case c - 1:
					// The successor may shift through this very slot.
					pendingRel = s
				default:
					relFlit[s]++
					relLane[s]++
					si.touch(s)
				}
			} else {
				w.lastInj = int32(j)
				if w.injectTime < 0 {
					w.injectTime = int32(si.now + 1)
					if m := si.met; m != nil {
						m.Inc(telemetry.CtrInjects)
					}
					if tr := si.trc; tr != nil {
						tr.Inject(si.now+1, w.id, w.d)
					}
				}
			}
			if c == w.d-1 {
				w.fHead++ // crossed the final edge: delivered
			}
			prog[j] = c + 1
			moved = true
		}
		// Slide the predecessor window (old values) for the next flit.
		if c == groupProg {
			groupCount++
		} else {
			groupProg, groupCount = c, 1
		}
		prevOld, prevMoved = c, adv
	}
	if pendingRel >= 0 {
		// The tail flit advanced with no successor to shift through.
		relFlit[pendingRel]++
		relLane[pendingRel]++
		si.touch(pendingRel)
	}
	if !moved {
		if parkable && parkEdge >= 0 {
			if m := si.met; m != nil {
				switch {
				case parkEdge&parkFaultBit != 0:
					m.EdgeStall(telemetry.CtrStallFault, parkEdge&^parkFaultBit)
				case parkEdge&parkFlitBit != 0:
					m.EdgeStall(telemetry.CtrStallSharedPool, parkEdge&^parkFlitBit)
				default:
					m.EdgeStall(telemetry.CtrStallLaneCredit, parkEdge)
				}
			}
			w.blockedOn = parkEdge
			return false, parkEdge
		}
		if m := si.met; m != nil {
			// No single foreign edge to blame: a transient bandwidth block,
			// or head-of-line pressure (FIFO / own-lane-full / multi-edge
			// blocks, all resolvable only by the worm's own movement).
			if bwBlocked {
				m.Inc(telemetry.CtrStallBandwidth)
			} else {
				m.Inc(telemetry.CtrStallHeadOfLine)
			}
		}
		return false, -1
	}
	// Re-derive the stretch flag from the post-step configuration: the
	// fast path re-engages as soon as a compressed worm has pulled back
	// into strictly consecutive progress values.
	str := true
	for j := int(w.fHead) + 1; j <= int(w.lastInj); j++ {
		if prog[j-1]-prog[j] != 1 {
			str = false
			break
		}
	}
	w.stretched = str
	return si.finishDeepMove(w)
}

// tryAdvanceStretched is the stretched-worm fast path: with every
// in-flight flit exactly one edge behind its predecessor, an unobstructed
// step is the rigid advance — trailing flits shift through vacated slots,
// the header acquires (at most) one new buffer, the tail frees (at most)
// one — so the whole verdict reduces to one header credit check plus a
// bandwidth scan of the contiguous crossed range, and the commit to a
// handful of counter updates. No group tracking, no deferred releases.
//
// It returns true only when it committed that all-flits advance. It
// returns false — having mutated nothing — when the worm cannot take it:
// the header is credit-blocked (trailing flits may still compress),
// bandwidth is short anywhere on the range, or an injection gap means the
// next uninjected flit cannot shift in behind the tail. The general scan
// then derives the exact verdict; byte-for-byte equivalence of the two
// paths on the all-advance case is pinned by the differential and fuzz
// suites, which drive every (d, shared) × policy corner through both.
//
//wormvet:hotpath
func (si *Sim) tryAdvanceStretched(w *worm) bool {
	var (
		prog = w.prog
		path = w.path
		h    = int(w.fHead)
		last = int(w.lastInj)
		c    int32 // header progress: the header crosses path[c]
		lo   int32 // lowest crossed path index
	)
	injecting := last < int(w.l)-1
	if last >= 0 {
		c = prog[h]
		lo = prog[last]
		if injecting {
			if lo != 1 {
				// The tail sits deeper than the injection edge: the next
				// flit cannot shift in, a case the fast step cannot take.
				return false
			}
			lo = 0
		}
	}
	// Header credit (skipped on the final edge): always a fresh lane —
	// in a stretched worm the predecessor group sits one edge ahead.
	if c <= w.d-2 {
		e := path[c]
		if si.laneFree[e] <= 0 || (si.shared && si.flitFree[e] <= 0) {
			return false
		}
	}
	// Bandwidth over the contiguous crossed range, committing as it
	// checks: a failure rolls back the crossings already taken, which —
	// bandwidth being per-step scratch nothing else reads mid-scan —
	// restores the exact pre-attempt state. The range is conflict-free
	// at cap == B in the common case, so the single pass saves reloading
	// every entry for a separate commit loop.
	stamp := si.crossStamp()
	cap32 := si.capI32
	for i := lo; i <= c; i++ {
		cw := si.crossings[path[i]]
		if cw < stamp {
			cw = stamp
		}
		if int32(cw-stamp) >= cap32 {
			for k := lo; k < i; k++ {
				si.crossings[path[k]]--
			}
			return false
		}
		si.crossings[path[i]] = cw + 1
	}
	si.flitHops += int64(c - lo + 1)
	if c <= w.d-2 {
		e := path[c]
		si.flitFree[e]--
		si.laneFree[e]--
		si.touchMax(e)
	}
	if !injecting {
		// Fully injected: the tail abandons its buffer (lo = its old
		// progress ≥ 1). While injecting, the vacated slot shifts to the
		// entering flit instead and no credit moves.
		s := path[lo-1]
		si.relFlit[s]++
		si.relLane[s]++
		si.touch(s)
	}
	for j := h; j <= last; j++ {
		prog[j]++
	}
	if injecting {
		prog[last+1] = 1
		w.lastInj = int32(last) + 1
		if w.injectTime < 0 {
			w.injectTime = int32(si.now + 1)
			if m := si.met; m != nil {
				m.Inc(telemetry.CtrInjects)
			}
			if tr := si.trc; tr != nil {
				tr.Inject(si.now+1, w.id, w.d)
			}
		}
	}
	if c == w.d-1 {
		w.fHead++ // the header crossed the final edge: delivered
	}
	return true
}

// finishDeepMove is the shared post-advance epilogue of the deep engine's
// two paths: observer callback, delivery detection, status update.
//
//wormvet:hotpath
func (si *Sim) finishDeepMove(w *worm) (bool, int32) {
	if m := si.met; m != nil {
		m.Inc(telemetry.CtrAdvances)
	}
	if tr := si.trc; tr != nil {
		tr.Advance(si.now+1, w.id, w.prog[0])
	}
	if obs := si.cfg.Observer; obs != nil {
		obs.OnAdvance(si.now+1, message.ID(w.id), int(w.prog[0])) //wormvet:allow hotalloc -- per-event observer hook; nil in measured configs
	}
	if w.fHead >= w.l {
		w.status = StatusDelivered
		w.deliverTime = int32(si.now + 1)
		si.delivered++
		if m := si.met; m != nil {
			m.Inc(telemetry.CtrDelivers)
		}
		if tr := si.trc; tr != nil {
			tr.Deliver(si.now+1, w.id, w.deliverTime-w.injectTime)
		}
		si.freePath(w)
		si.freeProg(w)
		if obs := si.cfg.Observer; obs != nil {
			obs.OnDeliver(si.now+1, message.ID(w.id)) //wormvet:allow hotalloc -- per-delivery observer hook; nil in measured configs
		}
		if cb := si.cfg.OnComplete; cb != nil {
			cb(message.ID(w.id), w.messageStats()) //wormvet:allow hotalloc -- once-per-message completion hook
		}
	} else {
		w.status = StatusActive
	}
	return true, -1
}

// releaseDeepWorm frees every buffer credit a dropped deep worm holds:
// one flit credit per buffered flit, one lane per occupied edge (visible
// next step, like any other release).
//
//wormvet:hotpath
func (si *Sim) releaseDeepWorm(w *worm) {
	prog := w.prog
	for j := int(w.fHead); j <= int(w.lastInj); j++ {
		c := prog[j]
		if c < 1 || c > w.d-1 {
			continue
		}
		s := w.path[c-1]
		si.relFlit[s]++
		if j == int(w.lastInj) || prog[j+1] != c {
			si.relLane[s]++ // last own flit on the edge: lane frees too
		}
		si.touch(s)
	}
}

// freeProg retires a finished deep worm's progress buffer, mirroring
// freePath's recycle policy. A no-op on the rigid path, which has no
// deep state at all.
//
//wormvet:hotpath
func (si *Sim) freeProg(w *worm) {
	if !si.deepMode {
		return
	}
	if si.recycle && cap(w.prog) > 0 {
		si.progFree = append(si.progFree, w.prog[:0])
	}
	w.prog = nil
}

// newProg returns a zeroed buffer for l flit-progress counters, reusing a
// retired buffer when one fits and bumping the arena otherwise. Arena
// memory is recycled across Reset, so the buffer is zeroed explicitly in
// every case.
func (si *Sim) newProg(l int) []int32 {
	var p []int32
	if k := len(si.progFree); k > 0 && l > 0 && cap(si.progFree[k-1]) >= l {
		p = si.progFree[k-1][:l]
		si.progFree = si.progFree[:k-1]
	} else {
		p = si.arena.alloc(l)
	}
	for i := range p {
		p[i] = 0
	}
	return p
}

// checkInvariantsDeep asserts the deep model's invariants: per-edge flit
// occupancy and lane counts derived from every worm's prog array must
// match the persistent accounting, and no capacity may be exceeded —
// flits ≤ B·d per edge, lanes ≤ B per edge, and (static mode) at most d
// flits per worm per edge. FIFO monotonicity of each prog array rides
// along. Panics on violation so tests pinpoint the first bad step.
func (si *Sim) checkInvariantsDeep() {
	// Dense per-edge counters, walked in edge order: maps here would pick
	// the first panic by randomized iteration order (see checkInvariants).
	flitOcc := make([]int32, len(si.flitFree))
	laneOcc := make([]int32, len(si.laneFree))
	for i := 0; i < si.numWorms; i++ {
		w := si.worm(i)
		if w.status == StatusDropped || w.status == StatusDelivered || w.status == StatusAborted {
			continue
		}
		prev := w.d
		for j := 0; j < int(w.l); j++ {
			c := w.prog[j]
			if c > prev {
				panicf("vcsim: step %d: worm %d flit %d progress %d ahead of flit %d (%d)", si.now, i, j, c, j-1, prev)
			}
			if c < 0 || c > w.d {
				panicf("vcsim: step %d: worm %d flit %d progress %d out of range [0,%d]", si.now, i, j, c, w.d)
			}
			if c >= 1 && c <= w.d-1 {
				e := w.path[c-1]
				flitOcc[e]++
				if j == 0 || w.prog[j-1] != c {
					laneOcc[e]++ // first flit of this worm's group on e
				}
				if !si.shared {
					// Group size = own flits at this progress; count via the
					// run of equal values ending here.
					run := int32(1)
					for k := j - 1; k >= 0 && w.prog[k] == c; k-- {
						run++
					}
					if run > si.depth {
						panicf("vcsim: step %d: worm %d holds %d > d=%d flits on edge %d", si.now, i, run, si.depth, e)
					}
				}
			}
			prev = c
		}
	}
	for e, c := range flitOcc {
		if c != si.flitsInUse(e) {
			if c == 0 {
				panicf("vcsim: step %d: edge %d has stale flit occupancy %d", si.now, e, si.flitsInUse(e))
			}
			panicf("vcsim: step %d: edge %d flit occupancy %d but flits in use %d", si.now, e, c, si.flitsInUse(e))
		}
		if c > si.poolCap {
			panicf("vcsim: step %d: edge %d holds %d > B·d=%d flits", si.now, e, c, si.poolCap)
		}
	}
	for e, c := range laneOcc {
		if c != si.lanesInUse(e) {
			if c == 0 {
				panicf("vcsim: step %d: edge %d has stale lane occupancy %d", si.now, e, si.lanesInUse(e))
			}
			panicf("vcsim: step %d: edge %d lane occupancy %d but lanes in use %d", si.now, e, c, si.lanesInUse(e))
		}
		if c > si.bI32 {
			panicf("vcsim: step %d: edge %d holds %d > B=%d lanes", si.now, e, c, si.b)
		}
	}
}
