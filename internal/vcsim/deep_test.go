package vcsim

// Tests for the buffer-architecture layer (deep.go): directed semantic
// checks of the multi-flit-lane and shared-pool models, the gating
// guarantee that LaneDepth=1 static is the untouched rigid engine, and
// differential NaiveScan-vs-wakeup sweeps across the whole
// (LaneDepth, SharedPool) grid — the deep analogue of wakeup_test.go.

import (
	"reflect"
	"testing"
	"testing/quick"

	"wormhole/internal/graph"
	"wormhole/internal/message"
	"wormhole/internal/rng"
	"wormhole/internal/topology"
)

// deepGrid is the buffer-architecture sweep the differential tests cover;
// the first entry is the rigid gate (covered elsewhere but kept here so
// grid loops also pin it).
var deepGrid = []struct {
	depth  int
	shared bool
}{
	{1, false},
	{1, true},
	{2, false},
	{2, true},
	{4, false},
	{4, true},
}

// TestDeepGateMatchesDefault pins the acceptance criterion that
// LaneDepth=1 && !SharedPool is the pre-existing simulator, byte for
// byte: an explicit {LaneDepth: 1} config must produce a Result deeply
// equal to the zero-value default on randomized workloads.
func TestDeepGateMatchesDefault(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		bf := topology.NewButterfly(8)
		set := message.NewSet(bf.G)
		var releases []int
		for i := 0; i < 2+r.Intn(24); i++ {
			src, dst := r.Intn(8), r.Intn(8)
			set.Add(bf.Input(src), bf.Output(dst), 1+r.Intn(6), bf.Route(src, dst))
			releases = append(releases, r.Intn(20))
		}
		cfg := Config{
			VirtualChannels: 1 + r.Intn(3),
			Arbitration:     Policy(r.Intn(3)),
			Seed:            seed,
			CheckInvariants: true,
		}
		explicit := cfg
		explicit.LaneDepth = 1
		return reflect.DeepEqual(Run(set, releases, cfg), Run(set, releases, explicit))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestDeepSingleMessageLatency checks that buffer depth is invisible to
// an unobstructed worm: with nothing to compress against, every flit
// advances every step and latency stays D+L-1 under every architecture.
func TestDeepSingleMessageLatency(t *testing.T) {
	for _, arch := range deepGrid {
		for _, tc := range []struct{ d, l int }{{1, 1}, {1, 5}, {4, 4}, {5, 9}, {9, 3}} {
			set := lineSet(t, 1, tc.d, tc.l)
			res := Run(set, nil, Config{
				VirtualChannels: 2,
				LaneDepth:       arch.depth,
				SharedPool:      arch.shared,
				CheckInvariants: true,
			})
			want := tc.d + tc.l - 1
			if res.Steps != want || !res.AllDelivered() {
				t.Errorf("d=%d shared=%v D=%d L=%d: steps=%d delivered=%v, want %d steps",
					arch.depth, arch.shared, tc.d, tc.l, res.Steps, res.AllDelivered(), want)
			}
			if st := res.PerMessage[0]; st.Stalls != 0 {
				t.Errorf("d=%d shared=%v: lone worm stalled %d times", arch.depth, arch.shared, st.Stalls)
			}
		}
	}
}

// blockedLineSet builds the compression fixture: worm W spans a 5-edge
// line; blocker Z is a long worm whose single-edge path is W's final
// edge, so Z's flits monopolize that edge's bandwidth (B=1) while W's
// header waits — exactly the situation lane depth exists for. Z gets the
// lower message ID so it wins the contested edge under ArbByID; W's
// trailing flits should then pile into the deep lane behind the header.
func blockedLineSet(zLen int) *message.Set {
	g := topology.NewLinearArray(6)
	set := message.NewSet(g)
	route := message.ShortestPathRouter(g)
	set.Add(4, 5, zLen, graph.Path{route(0, 5)[4]}) // Z (id 0): e4 only
	set.Add(0, 5, 6, route(0, 5))                   // W (id 1): edges e0..e4
	return set
}

// TestDeepCompression drives the fixture above and asserts the deep
// model's defining behaviors: (a) MaxOccupied reaches the lane depth in
// static mode — the blocked worm genuinely compresses — while the rigid
// model never exceeds one flit per edge per worm; (b) a shared pool lets
// one worm absorb more than d flits on one edge; (c) makespan is
// monotone non-increasing in lane depth (compression only helps).
func TestDeepCompression(t *testing.T) {
	run := func(depth int, shared bool) Result {
		return Run(blockedLineSet(12), nil, Config{
			VirtualChannels: 1,
			LaneDepth:       depth,
			SharedPool:      shared,
			CheckInvariants: true,
		})
	}
	rigid := run(1, false)
	if rigid.MaxOccupied != 1 {
		t.Fatalf("rigid MaxOccupied = %d, want 1", rigid.MaxOccupied)
	}
	prev := rigid.Steps
	for _, depth := range []int{2, 3, 4} {
		res := run(depth, false)
		if !res.AllDelivered() {
			t.Fatalf("d=%d: not all delivered: %+v", depth, res)
		}
		if res.MaxOccupied != depth {
			t.Errorf("d=%d static: MaxOccupied = %d, want %d (compression should fill the lane)",
				depth, res.MaxOccupied, depth)
		}
		if res.Steps > prev {
			t.Errorf("d=%d static: makespan %d regressed over shallower %d", depth, res.Steps, prev)
		}
		prev = res.Steps
	}
	// Shared pool, B=2, d=2: pool is 4 flits; the single blocked worm W
	// can absorb more than d=2 of them on one edge.
	shared := Run(blockedLineSet(12), nil, Config{
		VirtualChannels:     2,
		LaneDepth:           2,
		SharedPool:          true,
		RestrictedBandwidth: true, // keep e4's bandwidth at 1 so Z still blocks W
		CheckInvariants:     true,
	})
	if !shared.AllDelivered() {
		t.Fatalf("shared: not all delivered: %+v", shared)
	}
	if shared.MaxOccupied <= 2 {
		t.Errorf("shared B=2 d=2: MaxOccupied = %d, want > d=2 (one lane absorbing the pool)", shared.MaxOccupied)
	}
	if shared.MaxOccupied > 4 {
		t.Errorf("shared B=2 d=2: MaxOccupied = %d exceeds the B·d=4 pool", shared.MaxOccupied)
	}
}

// TestDeepWakeupMatchesNaiveRandomized is the broad differential
// property check over the buffer-architecture grid: every policy, both
// models, drop-on-delay, staggered releases — wakeup and naive must stay
// byte-identical, exactly as the rigid engine's tests demand.
func TestDeepWakeupMatchesNaiveRandomized(t *testing.T) {
	for _, pol := range []Policy{ArbByID, ArbRandom, ArbAge} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			f := func(seed uint64) bool {
				r := rng.New(seed)
				n := 8 << (seed % 2)
				bf := topology.NewButterfly(n)
				set := message.NewSet(bf.G)
				var releases []int
				m := 2 + r.Intn(4*n)
				for i := 0; i < m; i++ {
					src, dst := r.Intn(n), r.Intn(n)
					set.Add(bf.Input(src), bf.Output(dst), 1+r.Intn(8), bf.Route(src, dst))
					releases = append(releases, r.Intn(30))
				}
				arch := deepGrid[1:][seed%uint64(len(deepGrid)-1)] // skip the rigid gate
				for _, restricted := range []bool{false, true} {
					for _, drop := range []bool{false, true} {
						cfg := Config{
							VirtualChannels:     1 + r.Intn(3),
							LaneDepth:           arch.depth,
							SharedPool:          arch.shared,
							RestrictedBandwidth: restricted,
							DropOnDelay:         drop,
							Arbitration:         pol,
							Seed:                seed,
							CheckInvariants:     true,
						}
						naiveCfg := cfg
						naiveCfg.NaiveScan = true
						wake := Run(set, releases, cfg)
						naive := Run(set, releases, naiveCfg)
						if !reflect.DeepEqual(wake, naive) {
							t.Logf("seed %d d=%d shared=%v restricted=%v drop=%v:\nwakeup %+v\n naive %+v",
								seed, arch.depth, arch.shared, restricted, drop, wake, naive)
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDeepWakeupMatchesNaiveContention drives the deep engine's parking
// path hard — far more worms than lanes on a shared line, parked spans
// much longer than the probation streak — across the grid and all
// policies.
func TestDeepWakeupMatchesNaiveContention(t *testing.T) {
	for _, arch := range deepGrid {
		for _, b := range []int{1, 2} {
			for _, restricted := range []bool{false, true} {
				for _, pol := range []Policy{ArbByID, ArbRandom, ArbAge} {
					set := lineSet(t, 30, 5, 7)
					runBoth(t, pol.String(), set, nil, Config{
						VirtualChannels:     b,
						LaneDepth:           arch.depth,
						SharedPool:          arch.shared,
						RestrictedBandwidth: restricted,
						Arbitration:         pol,
						Seed:                11,
						CheckInvariants:     true,
					})
				}
			}
		}
	}
}

// TestDeepWakeupMatchesNaiveRestrictedDecline replays the directed
// restricted-bandwidth decline construction under every deep
// architecture: a woken worm whose body edge is saturated declines its
// credit, which the whole-queue deep wake rule must survive with
// byte-identical results.
func TestDeepWakeupMatchesNaiveRestrictedDecline(t *testing.T) {
	set, releases := restrictedBodyBlockSet()
	for _, arch := range deepGrid {
		for _, pol := range []Policy{ArbByID, ArbAge, ArbRandom} {
			runBoth(t, pol.String(), set, releases, Config{
				VirtualChannels:     2,
				LaneDepth:           arch.depth,
				SharedPool:          arch.shared,
				RestrictedBandwidth: true,
				Arbitration:         pol,
				Seed:                3,
				CheckInvariants:     true,
			})
		}
	}
}

// TestDeepWakeupMatchesNaiveDeadlock pins the terminal path under deep
// buffers: ring workloads that deadlock at low B must freeze both
// engines at the same step with the same blocked set and stalls.
// Deeper buffers delay the freeze (worms compress before wedging) but
// cannot prevent it — the cyclic wait is structural.
func TestDeepWakeupMatchesNaiveDeadlock(t *testing.T) {
	set := deadlockSet()
	for _, arch := range deepGrid {
		for _, pol := range []Policy{ArbByID, ArbRandom, ArbAge} {
			cfg := Config{
				VirtualChannels: 1,
				LaneDepth:       arch.depth,
				SharedPool:      arch.shared,
				Arbitration:     pol,
				Seed:            5,
				CheckInvariants: true,
			}
			runBoth(t, pol.String(), set, nil, cfg)
			naive := cfg
			naive.NaiveScan = true
			if res := Run(set, nil, naive); !res.Deadlocked {
				t.Errorf("d=%d shared=%v %s: ring did not deadlock (steps=%d)",
					arch.depth, arch.shared, pol, res.Steps)
			}
		}
	}
}

// TestDeepLockstepSnapshots steps the two engines side by side through
// the incremental API under a deep architecture and compares Result
// snapshots — which must fold in lazily stamped stall credit — after
// every single step.
func TestDeepLockstepSnapshots(t *testing.T) {
	r := rng.New(29)
	bf := topology.NewButterfly(8)
	msgs := make([]message.Message, 0, 30)
	releases := make([]int, 0, 30)
	for i := 0; i < 30; i++ {
		src, dst := r.Intn(8), r.Intn(8)
		msgs = append(msgs, message.Message{
			Src: bf.Input(src), Dst: bf.Output(dst), Length: 3 + r.Intn(4), Path: bf.Route(src, dst),
		})
		releases = append(releases, r.Intn(40))
	}
	for _, arch := range deepGrid[1:] {
		for _, pol := range []Policy{ArbByID, ArbRandom, ArbAge} {
			cfg := Config{
				VirtualChannels: 1,
				LaneDepth:       arch.depth,
				SharedPool:      arch.shared,
				Arbitration:     pol,
				Seed:            5,
				MaxSteps:        4096,
				CheckInvariants: true,
			}
			naiveCfg := cfg
			naiveCfg.NaiveScan = true
			wake, err := NewSim(bf.G, cfg)
			if err != nil {
				t.Fatal(err)
			}
			naive, err := NewSim(bf.G, naiveCfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, m := range msgs {
				if _, err := wake.Inject(m, releases[i]); err != nil {
					t.Fatal(err)
				}
				if _, err := naive.Inject(m, releases[i]); err != nil {
					t.Fatal(err)
				}
			}
			for step := 0; wake.Active() > 0 && step < 4096; step++ {
				errW := wake.Step()
				errN := naive.Step()
				if (errW == nil) != (errN == nil) {
					t.Fatalf("d=%d shared=%v %s step %d: error mismatch: wakeup %v, naive %v",
						arch.depth, arch.shared, pol, step, errW, errN)
				}
				rw, rn := wake.Result(), naive.Result()
				if !reflect.DeepEqual(rw, rn) {
					t.Fatalf("d=%d shared=%v %s step %d: snapshots differ\nwakeup: %+v\n naive: %+v",
						arch.depth, arch.shared, pol, step, rw, rn)
				}
				if errW != nil {
					break
				}
			}
		}
	}
}

// TestDeepConfigValidation pins the constructor contracts for the new
// Config fields on both lifecycles: the incremental constructor returns
// an error, the batch wrapper panics.
func TestDeepConfigValidation(t *testing.T) {
	g := topology.NewLinearArray(3)
	for _, cfg := range []Config{
		{VirtualChannels: 1, LaneDepth: -1, MaxSteps: 16},
		{VirtualChannels: 1, ParkStreak: -2, MaxSteps: 16},
	} {
		if _, err := NewSim(g, cfg); err == nil {
			t.Errorf("NewSim accepted %+v", cfg)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("batch Run accepted %+v", cfg)
				}
			}()
			Run(message.NewSet(g), nil, cfg)
		}()
	}
	if panicked := func() (p bool) {
		defer func() { p = recover() != nil }()
		panicf("boom %d", 7)
		return
	}(); !panicked {
		t.Error("panicf did not panic")
	}
}

// TestDeepInjectRecycles drives the incremental deep lifecycle through
// completion and re-injection: retired path and prog buffers must be
// recycled into later Injects, and the second generation must behave
// exactly like the first.
func TestDeepInjectRecycles(t *testing.T) {
	g := topology.NewLinearArray(5)
	route := message.ShortestPathRouter(g)
	sim, err := NewSim(g, Config{
		VirtualChannels: 1, LaneDepth: 2, SharedPool: true, MaxSteps: 1 << 20, CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	msg := message.Message{Src: 0, Dst: graph.NodeID(4), Length: 3, Path: route(0, graph.NodeID(4))}
	deliver := func() {
		t.Helper()
		for sim.Active() > 0 {
			if err := sim.Step(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := sim.Inject(msg, sim.Now()); err != nil {
		t.Fatal(err)
	}
	deliver()
	first := sim.Result().PerMessage[0]
	// The second inject draws from the freelists the first delivery fed.
	if _, err := sim.Inject(msg, sim.Now()); err != nil {
		t.Fatal(err)
	}
	deliver()
	second := sim.Result().PerMessage[1]
	if sim.Delivered() != 2 || sim.Dropped() != 0 {
		t.Fatalf("delivered %d dropped %d, want 2/0", sim.Delivered(), sim.Dropped())
	}
	if got, want := second.Latency(), first.Latency(); got != want {
		t.Errorf("recycled-buffer worm latency %d differs from fresh worm %d", got, want)
	}
}

// TestDeepStepZeroAllocSteadyState is the deep-engine analogue of
// TestStepZeroAllocSteadyState: stepping a contended deep-buffer network
// (compression, parked worms, credit wakes, re-parks) must not allocate
// once the scratch buffers are warm.
func TestDeepStepZeroAllocSteadyState(t *testing.T) {
	for _, arch := range deepGrid[1:] {
		g := topology.NewLinearArray(7)
		route := message.ShortestPathRouter(g)
		sim, err := NewSim(g, Config{
			VirtualChannels: 2,
			LaneDepth:       arch.depth,
			SharedPool:      arch.shared,
			Arbitration:     ArbAge,
			MaxSteps:        1 << 30,
		})
		if err != nil {
			t.Fatal(err)
		}
		msg := message.Message{Src: 0, Dst: graph.NodeID(6), Length: 5, Path: route(0, graph.NodeID(6))}
		for i := 0; i < 600; i++ {
			if _, err := sim.Inject(msg, 0); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 200; i++ {
			if err := sim.Step(); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(400, func() {
			if err := sim.Step(); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("d=%d shared=%v: steady-state Step allocates %.2f times per step, want 0",
				arch.depth, arch.shared, allocs)
		}
	}
}
