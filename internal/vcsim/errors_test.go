package vcsim

import (
	"errors"
	"reflect"
	"testing"

	"wormhole/internal/telemetry"
)

// RunChecked is the service-facing front end: workload validation must
// come back as the typed error family, never a panic, and a valid
// workload must produce exactly what Run produces.
func TestRunCheckedTypedErrors(t *testing.T) {
	set := lineSet(t, 3, 4, 5)
	good := Config{VirtualChannels: 2, CheckInvariants: true}

	res, err := RunChecked(set, nil, good)
	if err != nil {
		t.Fatal(err)
	}
	if want := Run(set, nil, good); !reflect.DeepEqual(res, want) {
		t.Error("RunChecked result diverges from Run")
	}

	cases := []struct {
		name    string
		release []int
		cfg     Config
		want    error
	}{
		{"no lanes", nil, Config{VirtualChannels: 0}, ErrBadConfig},
		{"bad depth", nil, Config{VirtualChannels: 2, LaneDepth: -1}, ErrBadConfig},
		{"release count", []int{1}, good, ErrBadMessage},
		{"negative release", []int{0, -1, 0}, good, ErrBadMessage},
		{"release over horizon", []int{0, MaxHorizon + 1, 0}, good, ErrOverHorizon},
	}
	for _, tc := range cases {
		if _, err := RunChecked(set, tc.release, tc.cfg); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// ShardFallbackReason names the standing condition keeping a sharded
// run sequential; a shardable (or unsharded) config reports none.
func TestShardFallbackReason(t *testing.T) {
	set := lineSet(t, 1, 2, 2)
	reason := func(cfg Config) string {
		cfg.MaxSteps = 64
		si, err := NewSim(set.G, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer si.Close()
		return si.ShardFallbackReason()
	}

	base := Config{VirtualChannels: 2, Shards: 4}
	if got := reason(base); got != "" {
		t.Errorf("shardable config reports %q", got)
	}
	unsharded := base
	unsharded.Shards = 0
	if got := reason(unsharded); got != "" {
		t.Errorf("unsharded config reports %q", got)
	}

	inhibited := map[string]func(*Config){
		"naive-scan":  func(c *Config) { c.NaiveScan = true },
		"deep lanes":  func(c *Config) { c.LaneDepth = 2 },
		"shared pool": func(c *Config) { c.SharedPool = true },
		"bandwidth":   func(c *Config) { c.RestrictedBandwidth = true },
		"random arb":  func(c *Config) { c.Arbitration = ArbRandom },
		"trace":       func(c *Config) { c.Trace = telemetry.NewTrace(16) },
		"observer":    func(c *Config) { c.Observer = &zeroObserver{} },
	}
	seen := map[string]bool{}
	for name, mutate := range inhibited {
		cfg := base
		mutate(&cfg)
		got := reason(cfg)
		if got == "" {
			t.Errorf("%s: inhibited config reports no fallback reason", name)
		}
		seen[got] = true
	}
	// Distinct inhibitors must be distinguishable (deep lanes and shared
	// pool legitimately share one reason).
	if len(seen) < len(inhibited)-1 {
		t.Errorf("only %d distinct reasons across %d inhibitors: %v", len(seen), len(inhibited), seen)
	}
}
