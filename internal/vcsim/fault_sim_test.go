package vcsim

// Fault-plane determinism suite. The fault schedule is first-class
// simulator state, so it is held to the same bar as every other feature:
// byte-identical across the naive scan, the wakeup engine, and every
// Shards setting; byte-identical across a snapshot/restore cut taken in
// the middle of an outage or of a retry backoff; and deadlock-honest —
// a freeze that a scheduled revival would break is never declared dead,
// while a freeze formed around dead resources is flagged as the
// outage's doing.

import (
	"bytes"
	"reflect"
	"testing"

	"wormhole/internal/fault"
	"wormhole/internal/graph"
	"wormhole/internal/message"
	"wormhole/internal/rng"
	"wormhole/internal/topology"
)

// faultRetryDefaults is the retry policy used across this suite: small
// base so retries resolve quickly, a handful of attempts so both the
// succeed-after-revival and the abort paths get exercised.
var faultRetryDefaults = RetryPolicy{MaxAttempts: 3, Backoff: 4, BackoffCap: 32}

// TestFaultMatchesNaiveRandomized is the broad differential: random
// workloads over all three fuzz topologies (butterfly, contended line,
// deadlock-prone ring) with generated outage schedules — whole-edge and
// lane kills, with revivals — under every arbitration policy and all
// three buffer architectures. Any divergence between the wakeup engine
// and the naive scan on aggregates, per-message stats (including
// Retries), Aborted, or FaultDeadlocked is an engine bug.
func TestFaultMatchesNaiveRandomized(t *testing.T) {
	archs := []struct {
		name  string
		depth int
		pool  bool
	}{
		{"rigid", 0, false},
		{"deep", 3, false},
		{"pool", 2, true},
	}
	for _, arch := range archs {
		arch := arch
		t.Run(arch.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 20; seed++ {
				set, releases := fuzzWorkload(seed, uint8(seed), 10)
				for _, lanes := range []int{0, 1} {
					sched := fault.Generate(fault.GenConfig{
						Seed:       seed * 977,
						NumEdges:   set.G.NumEdges(),
						Horizon:    120,
						Rate:       0.4,
						MeanOutage: 30,
						Lanes:      lanes,
					})
					if len(sched) == 0 {
						continue
					}
					for _, pol := range []Policy{ArbByID, ArbAge, ArbRandom} {
						cfg := Config{
							VirtualChannels: 2,
							LaneDepth:       arch.depth,
							SharedPool:      arch.pool,
							Arbitration:     pol,
							Seed:            seed,
							MaxSteps:        1 << 14,
							CheckInvariants: true,
							Faults:          sched,
							Retry:           faultRetryDefaults,
						}
						label := arch.name + "/" + pol.String()
						runBoth(t, label, set, releases, cfg)
					}
				}
			}
		})
	}
}

// TestFaultShardByteIdentity pins the ISSUE-sanctioned fallback: a fault
// schedule forces the sequential stepper, and every Shards setting —
// including ones that would shard without the schedule — must reproduce
// the naive scan byte for byte.
func TestFaultShardByteIdentity(t *testing.T) {
	r := rng.New(42)
	bf := topology.NewButterfly(16)
	set := message.NewSet(bf.G)
	var releases []int
	for i := 0; i < 48; i++ {
		src, dst := r.Intn(16), r.Intn(16)
		set.Add(bf.Input(src), bf.Output(dst), 1+r.Intn(8), bf.Route(src, dst))
		releases = append(releases, r.Intn(40))
	}
	sched := fault.Generate(fault.GenConfig{
		Seed:       7,
		NumEdges:   set.G.NumEdges(),
		Horizon:    150,
		Rate:       0.3,
		MeanOutage: 40,
	})
	if len(sched) == 0 {
		t.Fatal("generated schedule is empty; pick a different seed")
	}
	base := Config{
		VirtualChannels: 2,
		Arbitration:     ArbAge,
		MaxSteps:        1 << 14,
		Faults:          sched,
		Retry:           faultRetryDefaults,
	}
	naiveCfg := base
	naiveCfg.NaiveScan = true
	want := Run(set, releases, naiveCfg)
	for _, shards := range []int{0, 1, 2, 4, 8} {
		cfg := base
		cfg.Shards = shards
		got := Run(set, releases, cfg)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("Shards=%d diverged from naive under faults\nnaive: %+v\n  got: %+v", shards, want, got)
		}
	}

	cfg := base
	cfg.Shards = 4
	si, err := NewSim(set.G, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer si.Close()
	if got := si.ShardFallbackReason(); got != "fault schedule attached" {
		t.Errorf("ShardFallbackReason = %q, want %q", got, "fault schedule attached")
	}
}

// TestFaultDeadlockHonesty exercises both halves of the deadlock
// contract under faults. A worm wedged behind a dead edge with no
// revival scheduled is a real deadlock and is flagged FaultDeadlocked;
// the identical configuration with a revival on the schedule must defer
// declaration, survive the outage, and deliver.
func TestFaultDeadlockHonesty(t *testing.T) {
	g := topology.NewLinearArray(4)
	route := message.ShortestPathRouter(g)
	path := route(0, 3)
	if len(path) != 3 {
		t.Fatalf("expected a 3-edge path, got %d", len(path))
	}
	deadEdge := int(path[1])
	mk := func() (*message.Set, []int) {
		set := message.NewSet(g)
		set.Add(0, 3, 4, route(0, 3))
		return set, []int{0}
	}

	// (a) Injected worm, second edge dead forever: the retry policy does
	// not apply (the header has left the source), so the network freezes
	// and the freeze is the outage's doing.
	set, rel := mk()
	cfg := Config{
		VirtualChannels: 1,
		MaxSteps:        1 << 12,
		Faults:          fault.Schedule{{Step: 0, Edge: deadEdge, Kind: fault.KillEdge}},
		Retry:           faultRetryDefaults,
	}
	res := Run(set, rel, cfg)
	if !res.Deadlocked || !res.FaultDeadlocked {
		t.Fatalf("unrevived dead edge: Deadlocked=%v FaultDeadlocked=%v, want true/true (%+v)",
			res.Deadlocked, res.FaultDeadlocked, res)
	}
	if res.Delivered != 0 || res.Aborted != 0 {
		t.Fatalf("unrevived dead edge: Delivered=%d Aborted=%d, want 0/0", res.Delivered, res.Aborted)
	}
	runBoth(t, "dead-forever", set, rel, cfg)

	// (b) Same outage with a revival at step 50: declaring deadlock any
	// time before it would be dishonest. The worm must park through the
	// outage, wake on revival, and deliver.
	set, rel = mk()
	cfg.Faults = fault.Schedule{
		{Step: 0, Edge: deadEdge, Kind: fault.KillEdge},
		{Step: 50, Edge: deadEdge, Kind: fault.ReviveEdge},
	}
	res = Run(set, rel, cfg)
	if res.Deadlocked || res.Delivered != 1 {
		t.Fatalf("revived dead edge: Deadlocked=%v Delivered=%d, want false/1 (%+v)",
			res.Deadlocked, res.Delivered, res)
	}
	if res.PerMessage[0].DeliverTime <= 50 {
		t.Fatalf("delivered at %d, before the revival at 50", res.PerMessage[0].DeliverTime)
	}
	runBoth(t, "dead-then-revived", set, rel, cfg)

	// (c) Lane-kill freeze: killing the only lane of an edge starves it
	// without marking it dead. A revival must still break the freeze
	// through the ordinary credit-release fold.
	set, rel = mk()
	cfg.Faults = fault.Schedule{
		{Step: 0, Edge: deadEdge, Kind: fault.KillLane},
		{Step: 40, Edge: deadEdge, Kind: fault.ReviveLane},
	}
	res = Run(set, rel, cfg)
	if res.Deadlocked || res.Delivered != 1 {
		t.Fatalf("revived lane kill: Deadlocked=%v Delivered=%d, want false/1 (%+v)",
			res.Deadlocked, res.Delivered, res)
	}
	runBoth(t, "lane-kill-revived", set, rel, cfg)
}

// TestFaultRetryAndAbort pins the never-injected retry path. A worm
// whose first edge is dead retries with capped exponential backoff; if
// the edge revives in time it delivers (with Retries recorded), and if
// the outage outlives MaxAttempts the worm is aborted — counted in
// Result.Aborted, stamped StatusAborted with a DropTime, and the run
// terminates cleanly rather than deadlocking.
func TestFaultRetryAndAbort(t *testing.T) {
	g := topology.NewLinearArray(4)
	route := message.ShortestPathRouter(g)
	firstEdge := int(route(0, 3)[0])
	mk := func() (*message.Set, []int) {
		set := message.NewSet(g)
		set.Add(0, 3, 4, route(0, 3))
		return set, []int{0}
	}

	// Outage outlasting every retry: Backoff 4 doubling under cap 32 puts
	// the third re-attempt well before step 1000, so all attempts fail.
	set, rel := mk()
	cfg := Config{
		VirtualChannels: 1,
		MaxSteps:        1 << 12,
		Faults: fault.Schedule{
			{Step: 0, Edge: firstEdge, Kind: fault.KillEdge},
			{Step: 1000, Edge: firstEdge, Kind: fault.ReviveEdge},
		},
		Retry: faultRetryDefaults,
	}
	res := Run(set, rel, cfg)
	if res.Aborted != 1 || res.Delivered != 0 {
		t.Fatalf("abort path: Aborted=%d Delivered=%d, want 1/0 (%+v)", res.Aborted, res.Delivered, res)
	}
	ms := res.PerMessage[0]
	if ms.Status != StatusAborted || ms.DropTime < 0 || ms.InjectTime != -1 {
		t.Fatalf("abort path stats: %+v", ms)
	}
	if ms.Retries != faultRetryDefaults.MaxAttempts {
		t.Fatalf("abort path: Retries=%d, want %d", ms.Retries, faultRetryDefaults.MaxAttempts)
	}
	if res.Deadlocked {
		t.Fatalf("abort path declared deadlock: %+v", res)
	}
	runBoth(t, "retry-abort", set, rel, cfg)

	// Outage shorter than the backoff ladder: some retry lands after the
	// revival and the message delivers, Retries > 0.
	set, rel = mk()
	cfg.Faults = fault.Schedule{
		{Step: 0, Edge: firstEdge, Kind: fault.KillEdge},
		{Step: 8, Edge: firstEdge, Kind: fault.ReviveEdge},
	}
	res = Run(set, rel, cfg)
	if res.Delivered != 1 || res.Aborted != 0 {
		t.Fatalf("retry-success path: Delivered=%d Aborted=%d, want 1/0 (%+v)", res.Delivered, res.Aborted, res)
	}
	if res.PerMessage[0].Retries == 0 {
		t.Fatalf("retry-success path recorded no retries: %+v", res.PerMessage[0])
	}
	runBoth(t, "retry-success", set, rel, cfg)

	// Retry disabled: the same never-injected block parks instead, and
	// with a revival scheduled it delivers with zero retries.
	set, rel = mk()
	cfg.Retry = RetryPolicy{}
	res = Run(set, rel, cfg)
	if res.Delivered != 1 || res.PerMessage[0].Retries != 0 {
		t.Fatalf("no-retry path: %+v", res)
	}
	runBoth(t, "no-retry-park", set, rel, cfg)
}

// TestFaultSnapshotMidOutage cuts snapshot/restore through the middle of
// live outages: for each kill event in a generated schedule, a cut one
// step after it (dead resources serialized dead) and one at the worst
// case — while a retried worm sits in backoff. Restoration must resume
// byte-identically through the rest of the outage and the revival.
func TestFaultSnapshotMidOutage(t *testing.T) {
	for _, arch := range []struct {
		name  string
		depth int
		pool  bool
	}{
		{"rigid", 0, false},
		{"deep", 2, true},
	} {
		set, releases := fuzzWorkload(11, 0, 10)
		sched := fault.Generate(fault.GenConfig{
			Seed:       1311,
			NumEdges:   set.G.NumEdges(),
			Horizon:    60,
			Rate:       0.5,
			MeanOutage: 30,
		})
		if len(sched) == 0 {
			t.Fatal("generated schedule is empty; pick a different seed")
		}
		cfg := Config{
			VirtualChannels: 2,
			LaneDepth:       arch.depth,
			SharedPool:      arch.pool,
			Arbitration:     ArbAge,
			Seed:            11,
			MaxSteps:        1 << 16,
			Faults:          sched,
			Retry:           faultRetryDefaults,
		}
		cuts := 0
		for _, ev := range sched {
			if ev.Kind == fault.KillEdge || ev.Kind == fault.KillLane {
				roundTrip(t, arch.name+"/mid-outage", set, releases, cfg, cfg, ev.Step+1)
				cuts++
				if cuts == 4 {
					break
				}
			}
		}
	}

	// Directed backoff cut: the only worm's first edge is dead from step
	// 0 to 40, so at step 12 it is mid-backoff with retries recorded and
	// nothing in flight — the snapshot must carry the retry counter and
	// the future release through the cut.
	g := topology.NewLinearArray(4)
	route := message.ShortestPathRouter(g)
	set := message.NewSet(g)
	set.Add(0, 3, 4, route(0, 3))
	cfg := Config{
		VirtualChannels: 1,
		MaxSteps:        1 << 12,
		Faults: fault.Schedule{
			{Step: 0, Edge: int(route(0, 3)[0]), Kind: fault.KillEdge},
			{Step: 40, Edge: int(route(0, 3)[0]), Kind: fault.ReviveEdge},
		},
		Retry: RetryPolicy{MaxAttempts: 8, Backoff: 4, BackoffCap: 16},
	}
	roundTrip(t, "mid-backoff", set, []int{0}, cfg, cfg, 12)
}

// TestRestoreRejectsFaultScheduleMismatch: a snapshot taken under one
// fault schedule must refuse to restore under another (or none) — the
// schedule is part of the run's identity, like the topology and B.
func TestRestoreRejectsFaultScheduleMismatch(t *testing.T) {
	set := message.NewSet(topology.NewLinearArray(4))
	route := message.ShortestPathRouter(set.G)
	set.Add(0, 3, 4, route(0, 3))
	sched := fault.Schedule{
		{Step: 5, Edge: int(route(0, 3)[1]), Kind: fault.KillEdge},
		{Step: 30, Edge: int(route(0, 3)[1]), Kind: fault.ReviveEdge},
	}
	cfg := Config{VirtualChannels: 1, MaxSteps: 1 << 12, Faults: sched, Retry: faultRetryDefaults}
	blob := snapAt(t, set, []int{0}, cfg, 10)

	for name, mut := range map[string]func(*Config){
		"dropped schedule": func(c *Config) { c.Faults = nil },
		"edited schedule": func(c *Config) {
			c.Faults = fault.Schedule{{Step: 5, Edge: int(route(0, 3)[1]), Kind: fault.KillEdge}}
		},
		"edited retry": func(c *Config) { c.Retry.MaxAttempts = 99 },
	} {
		bad := cfg
		mut(&bad)
		if _, err := restoreBlob(set.G, bad, blob); err == nil {
			t.Errorf("%s: restore succeeded, want ErrSnapshotConfig", name)
		}
	}
	if _, err := restoreBlob(set.G, cfg, blob); err != nil {
		t.Fatalf("matching config failed to restore: %v", err)
	}
}

// snapAt runs the workload to the given step and returns the snapshot
// bytes.
func snapAt(t *testing.T, set *message.Set, releases []int, cfg Config, step int) []byte {
	t.Helper()
	si, err := NewSim(set.G, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer si.Close()
	snapInject(t, si, set, releases)
	if err := si.StepTo(step); err != nil {
		t.Fatal(err)
	}
	var blob bytes.Buffer
	if err := si.Snapshot(&blob); err != nil {
		t.Fatal(err)
	}
	return blob.Bytes()
}

func restoreBlob(g *graph.Graph, cfg Config, blob []byte) (*Sim, error) {
	si, err := RestoreSim(g, cfg, bytes.NewReader(blob))
	if si != nil {
		si.Close()
	}
	return si, err
}
