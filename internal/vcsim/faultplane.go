package vcsim

// Fault plane: deterministic kill/revive schedules (internal/fault)
// threaded through every stepper as first-class state.
//
// Semantics. A killed lane removes one credit from its edge — laneFree
// (and, deep mode, flitFree) is debited immediately and may go negative
// while occupants drain; flits in flight are never destroyed. A dead
// edge grants no *new* reservations: a header may not extend onto it
// (rigid), a worm may not acquire a lane on it and the header flit may
// not cross it as a final edge (deep) — but established flits behind
// the header keep draining, including shift-through and own-lane joins,
// exactly as a real router drains a failing link's pipeline.
//
// Timing invariant: before the step at time t executes any advance
// attempt, every event with Step ≤ t has been applied. Two application
// paths maintain it:
//
//   - fold mode, at the top of applyStepEnd (events with Step ≤ now+1):
//     kills debit credits directly; revives go through relLane/relFlit
//     so they fold — and wake waiters — exactly like credit releases,
//     which is what keeps the naive scan and the wakeup engine
//     byte-identical (a revive IS a slot event);
//   - direct mode, at the top of step() (events with Step ≤ now): only
//     reachable after a StepTo/Drain fast-forward jumped the clock past
//     scheduled events. Jumps only happen with nothing in flight, so
//     there are no waiters to wake and credits are adjusted in place.
//
// Events scheduled inside a trailing idle span that no step ever
// executes (a truncated run, or a horizon past the last worm) stay
// unapplied — consistently across engines and shard counts.
//
// Blocked worms split two ways. A worm whose header is still at its
// source (nothing injected) and whose first edge is dead can abort the
// attempt and re-enter the pending queue under Config.Retry — capped
// exponential backoff in simulated time, StatusAborted when attempts
// run out. Every other dead-edge block parks on faultQ, a per-edge wait
// heap woken only by that edge's revival (slot events cannot change a
// deadness verdict). Kill-starved live edges are ordinary credit
// blocks: worms park on the regular wait queues and revives wake them
// through the relLane fold.
//
// Deadlock honesty: while any scheduled revive lies at or beyond the
// current step, an apparently frozen configuration may still be broken
// by it, so declaration is deferred (now ≤ lastRevive). A deadlock
// declared with dead resources still present is additionally flagged
// FaultDeadlocked — the freeze is at least partly the outage's doing.

import (
	"fmt"

	"wormhole/internal/fault"
	"wormhole/internal/message"
	"wormhole/internal/telemetry"
)

// parkFaultBit tags a park target (worm.waitEdge, worm.blockedOn, the
// stepper failure edge) as a dead-edge wait: the worm sits on
// faultQ[edge] and only that edge's revival wakes it. Distinct from
// deep.go's parkFlitBit (1<<30); edge IDs stay far below both.
const parkFaultBit = int32(1) << 29

// validateFaults rejects schedules that do not fit the network or the
// 32-bit time layout; NewSim and the batch constructors share it.
func validateFaults(numEdges int, cfg Config) error {
	if len(cfg.Faults) == 0 {
		return nil
	}
	if err := cfg.Faults.Validate(numEdges, cfg.VirtualChannels); err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	for _, ev := range cfg.Faults {
		if ev.Step > MaxHorizon {
			return fmt.Errorf("%w: fault event step %d exceeds MaxHorizon", ErrOverHorizon, ev.Step)
		}
	}
	if cfg.Retry.MaxAttempts < 0 || cfg.Retry.Backoff < 0 || cfg.Retry.BackoffCap < 0 ||
		cfg.Retry.Backoff > MaxHorizon || cfg.Retry.BackoffCap > MaxHorizon {
		return fmt.Errorf("%w: negative or over-horizon RetryPolicy %+v", ErrBadConfig, cfg.Retry)
	}
	return nil
}

// applyFaults consumes schedule events with Step ≤ upTo. In fold mode
// (direct=false, called from applyStepEnd) revives are deferred through
// relLane/relFlit so the fold wakes waiters; in direct mode (a
// StepTo/Drain jump, nothing in flight) credits move in place.
//
//wormvet:hotpath
func (si *Sim) applyFaults(upTo int, direct bool) {
	m := si.met
	for si.faultIdx < len(si.faults) {
		ev := si.faults[si.faultIdx]
		if ev.Step > upTo {
			break
		}
		si.faultIdx++
		e := int32(ev.Edge) //wormvet:allow horizon -- validateFaults bounds Edge < numEdges
		switch ev.Kind {
		case fault.KillLane:
			si.laneFree[e]--
			si.killedLanes[e]++
			si.killedTotal++
			if si.deepMode {
				si.flitFree[e] -= si.depth
			}
			si.touch(e)
		case fault.ReviveLane:
			si.killedLanes[e]--
			si.killedTotal--
			if direct {
				si.laneFree[e]++
				if si.deepMode {
					si.flitFree[e] += si.depth
				}
			} else {
				si.relLane[e]++
				if si.deepMode {
					si.relFlit[e] += si.depth
				}
			}
			si.touch(e)
		case fault.KillEdge:
			si.deadEdge[e] = true
			si.deadEdges++
		case fault.ReviveEdge:
			si.deadEdge[e] = false
			si.deadEdges--
			// Revival is the only event that can change a dead-edge
			// verdict: wake the whole fault queue. (Direct mode cannot
			// have waiters — nothing is in flight during a jump.)
			if si.faultQ != nil {
				if q := si.faultQ[e]; len(q) > 0 {
					random := si.cfg.Arbitration == ArbRandom
					for _, k := range q {
						si.stampParked(k, int32(si.now)) //wormvet:allow horizon -- now < maxSteps ≤ MaxHorizon
						if !random {
							si.wokenScratch = append(si.wokenScratch, k)
						}
					}
					si.faultQ[e] = q[:0]
				}
			}
		}
		// Outage-span accounting for the per-edge fault-time heatmap.
		switch ev.Kind {
		case fault.KillLane, fault.KillEdge:
			if si.faultSince[e] < 0 {
				si.faultSince[e] = int32(ev.Step) //wormvet:allow horizon -- validateFaults bounds Step ≤ MaxHorizon
			}
			if m != nil {
				m.Inc(telemetry.CtrFaultKills)
			}
		default:
			if si.killedLanes[e] == 0 && !si.deadEdge[e] && si.faultSince[e] >= 0 {
				if m != nil {
					m.EdgeFault(e, int64(ev.Step)-int64(si.faultSince[e]))
				}
				si.faultSince[e] = -1
			}
			if m != nil {
				m.Inc(telemetry.CtrFaultRevives)
			}
		}
		if tr := si.trc; tr != nil {
			tr.Fault(ev.Step, e, int32(ev.Kind))
		}
	}
}

// killedDebt returns the buffer-slot debt kills currently impose on
// edge e, for occupancy accounting (occupancy counts flits in buffers,
// so kill debt — credits removed without a flit — is subtracted).
//
//wormvet:hotpath
func (si *Sim) killedDebt(e int32) int32 {
	if kl := si.killedLanes; kl != nil {
		if k := kl[e]; k != 0 {
			if si.deepMode {
				return k * si.depth
			}
			return k
		}
	}
	return 0
}

// faultRetriable reports whether a failed advance should go through the
// retry policy instead of stalling: the block is a dead-edge verdict,
// the header never left the source, and retries are enabled.
//
//wormvet:hotpath
func (si *Sim) faultRetriable(w *worm, failEdge int32) bool {
	return failEdge >= 0 && failEdge&parkFaultBit != 0 &&
		w.injectTime < 0 && si.retryMax > 0
}

// faultRetry re-schedules a never-injected, dead-edge-blocked worm:
// back into the pending queue after min(Backoff·2^retries, BackoffCap)
// simulated steps, or — once MaxAttempts re-injections have failed —
// abandoned with StatusAborted. Identical under every stepper; the
// caller removes the worm from its active structures.
func (si *Sim) faultRetry(w *worm) {
	if int(w.retries) >= si.retryMax {
		w.status = StatusAborted
		w.dropTime = int32(si.now + 1) //wormvet:allow horizon -- now < maxSteps ≤ MaxHorizon
		si.aborted++
		si.freePath(w)
		si.freeProg(w)
		if m := si.met; m != nil {
			m.Inc(telemetry.CtrFaultAborts)
		}
		if cb := si.cfg.OnComplete; cb != nil {
			cb(message.ID(w.id), w.messageStats())
		}
		return
	}
	back := si.retryCap
	if shift := uint(w.retries); shift < 31 {
		if b := si.retryBase << shift; b < back && b > 0 {
			back = b
		}
	}
	w.retries++
	rel := si.now + 1 + int(back)
	if rel > MaxHorizon {
		rel = MaxHorizon
	}
	w.release = int32(rel) //wormvet:allow horizon -- clamped to MaxHorizon above
	w.key = si.policyKey(rel, int(w.id))
	w.status = StatusWaiting
	w.streak = 0
	w.woken = false
	w.blockedOn = -1
	si.pendPush(relKey(rel, int(w.id)))
	if m := si.met; m != nil {
		m.Inc(telemetry.CtrFaultRetries)
	}
}

// deadlockDeferred reports whether deadlock declaration must wait: a
// scheduled revival at or beyond the current step may still wake a
// blocked worm (including one whose wake fired in the fold that just
// ran), so "no wake can ever fire" does not yet hold.
//
//wormvet:hotpath
func (si *Sim) deadlockDeferred() bool { return si.now <= si.lastRevive }

// Aborted returns the number of messages abandoned by the fault-retry
// policy so far.
func (si *Sim) Aborted() int { return si.aborted }

// FaultDeadlocked reports whether a detected deadlock formed with dead
// resources still present — the freeze is (at least partly) the
// outage's doing, not a pure virtual-channel cycle.
func (si *Sim) FaultDeadlocked() bool { return si.faultDead }

// FoldFaultTime folds every still-open outage span into the metrics
// registry's per-edge fault-time accumulator, up to the current step.
// Idempotent (the open markers advance to now), and a no-op without a
// fault schedule or metrics registry; Result calls it implicitly, and
// long-lived drivers (the traffic Runner) call it at their own
// reporting boundaries.
func (si *Sim) FoldFaultTime() {
	if si.faultSince == nil || si.met == nil {
		return
	}
	for e, s := range si.faultSince {
		if s >= 0 && int(s) < si.now {
			si.met.EdgeFault(int32(e), int64(si.now)-int64(s)) //wormvet:allow horizon -- e < numEdges
			si.faultSince[e] = int32(si.now)                   //wormvet:allow horizon -- now < maxSteps ≤ MaxHorizon
		}
	}
}
