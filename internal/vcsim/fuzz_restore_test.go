package vcsim

// FuzzRestoreSim feeds RestoreSim adversarially mutated snapshots —
// truncations, bit-flips, and length inflations of a real WORMSNAP blob
// (taken mid-run, with a fault schedule attached so the v2 fault block
// is under attack too). The contract under corruption:
//
//   - never panic;
//   - fail only with the typed snapshot errors (ErrSnapshotFormat,
//     ErrSnapshotCorrupt, ErrSnapshotConfig) so callers can triage a bad
//     checkpoint without string matching;
//   - when a mutation lands in a non-validated field and the restore
//     succeeds anyway, the restored simulator must still step to
//     quiescence without wedging or panicking.
//
// CI runs this as a short -fuzztime smoke; `go test` replays the seed
// corpus.

import (
	"bytes"
	"errors"
	"testing"

	"wormhole/internal/fault"
)

func FuzzRestoreSim(f *testing.F) {
	// The reference snapshot the mutations attack: a mid-run cut of a
	// faulted butterfly workload, with worms in flight, parked worms,
	// and an open outage — so the v2 fault block is in the blob.
	set, releases := fuzzWorkload(9, 0, 12)
	cfg := Config{
		VirtualChannels: 2,
		Arbitration:     ArbAge,
		Seed:            9,
		MaxSteps:        1 << 14,
		Faults: fault.Generate(fault.GenConfig{
			Seed: 99, NumEdges: set.G.NumEdges(), Horizon: 40, Rate: 0.5, MeanOutage: 30,
		}),
		Retry: RetryPolicy{MaxAttempts: 3, Backoff: 4, BackoffCap: 32},
	}
	si, err := NewSim(set.G, cfg)
	if err != nil {
		f.Fatal(err)
	}
	defer si.Close()
	for i := range set.Msgs {
		if _, err := si.Inject(set.Msgs[i], releases[i]); err != nil {
			f.Fatal(err)
		}
	}
	if err := si.StepTo(9); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := si.Snapshot(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	// Seed corpus: one of each mutation class, plus the identity.
	f.Add(uint8(0), uint32(0), uint8(0))                    // untouched
	f.Add(uint8(1), uint32(len(valid)/2), uint8(0))         // truncate mid-blob
	f.Add(uint8(2), uint32(len(valid)/3), uint8(0x80))      // flip a high bit
	f.Add(uint8(2), uint32(len(valid)-4), uint8(0xFF))      // flip tail bytes
	f.Add(uint8(3), uint32(len(valid)/2), uint8(17))        // inflate mid-blob
	f.Add(uint8(3), uint32(len(valid)), uint8(255))         // append garbage
	f.Add(uint8(2), uint32(len(snapMagic)+2), uint8(0x01))  // corrupt version
	f.Add(uint8(1), uint32(0), uint8(0))                    // empty input
	f.Add(uint8(2), uint32(len(snapMagic)+20), uint8(0x40)) // corrupt config section
	f.Add(uint8(1), uint32(3*len(valid)/4), uint8(0))       // truncate in worm state

	f.Fuzz(func(t *testing.T, mode uint8, pos uint32, val uint8) {
		mut := append([]byte(nil), valid...)
		p := int(pos)
		switch mode % 4 {
		case 1: // truncate
			if p > len(mut) {
				p = len(mut)
			}
			mut = mut[:p]
		case 2: // bit/byte flip
			if len(mut) > 0 {
				mut[p%len(mut)] ^= val | 1
			}
		case 3: // length-inflate: splice extra bytes in
			if p > len(mut) {
				p = len(mut)
			}
			filler := bytes.Repeat([]byte{val}, 1+int(val)%9)
			mut = append(mut[:p:p], append(filler, valid[p:]...)...)
		}

		si, err := RestoreSim(set.G, cfg, bytes.NewReader(mut))
		if err != nil {
			if !errors.Is(err, ErrSnapshotFormat) &&
				!errors.Is(err, ErrSnapshotCorrupt) &&
				!errors.Is(err, ErrSnapshotConfig) {
				t.Fatalf("untyped restore error %T: %v", err, err)
			}
			return
		}
		// The mutation decoded — a flipped counter or timestamp in a
		// non-validated field. The restored simulator must still run out
		// without wedging (the horizon bounds the drain).
		snapDrain(si)
		si.Close()
	})
}
