package vcsim

// Native Go fuzz harness over the simulator's whole configuration space:
// random (topology, schedule, Config) tuples — including the buffer-
// architecture axes — executed under both steppers with per-step
// invariant checking. Four properties are asserted on every input:
//
//  1. model invariants hold at every step (flit conservation between the
//     worms' configurations and the per-edge credit accounting, occupancy
//     never above capacity) — enforced by Config.CheckInvariants, which
//     panics at the first bad step;
//  2. the wakeup engine and the naive scan are byte-identical — at the
//     fuzzed Config.Shards, so the sharded stepper (and its fallback
//     boundary) is held to the same oracle;
//  3. a drained simulator leaks nothing: no worm left parked, no wait
//     queue entry, no buffer credit still held once every message is
//     delivered or dropped (deadlocks strand credits by design and are
//     exempted);
//  4. replay determinism: the same input run twice gives deeply equal
//     Results;
//  5. fast-forward equivalence: replaying the workload through an
//     incremental Sim driven by StepTo jumps — and once more through the
//     same Sim after Reset — reproduces the batch Result exactly, so
//     fast-forward never skips a step in which any worm could move and
//     Reset leaks nothing between runs.
//
// CI runs this as a short -fuzztime smoke on every push; `go test` always
// replays the seed corpus below.

import (
	"bytes"
	"reflect"
	"testing"

	"wormhole/internal/deadlock"
	"wormhole/internal/graph"
	"wormhole/internal/message"
	"wormhole/internal/rng"
	"wormhole/internal/topology"
)

// fuzzWorkload decodes (seed, topoSel, msgs) into a message set with
// staggered releases on one of three topology families: the butterfly
// (DAG, deadlock-free), a contended linear array, and a unidirectional
// ring (deadlock-prone at low B — the terminal path gets fuzzed too).
func fuzzWorkload(seed uint64, topoSel uint8, msgs int) (*message.Set, []int) {
	r := rng.New(seed)
	var set *message.Set
	switch topoSel % 3 {
	case 0:
		bf := topology.NewButterfly(8)
		set = message.NewSet(bf.G)
		for i := 0; i < msgs; i++ {
			src, dst := r.Intn(8), r.Intn(8)
			set.Add(bf.Input(src), bf.Output(dst), 1+r.Intn(8), bf.Route(src, dst))
		}
	case 1:
		g := topology.NewLinearArray(7)
		set = message.NewSet(g)
		route := message.ShortestPathRouter(g)
		for i := 0; i < msgs; i++ {
			src := graph.NodeID(r.Intn(6))
			dst := src + graph.NodeID(1+r.Intn(6-int(src)))
			set.Add(src, dst, 1+r.Intn(8), route(src, dst))
		}
	default:
		ring := deadlock.NewRing(6, 1)
		set = message.NewSet(ring.G)
		for i := 0; i < msgs; i++ {
			src := r.Intn(6)
			dst := (src + 1 + r.Intn(5)) % 6
			set.Add(graph.NodeID(src), graph.NodeID(dst), 1+r.Intn(6), ring.Route(src, dst))
		}
	}
	releases := make([]int, msgs)
	for i := range releases {
		releases[i] = r.Intn(24)
	}
	return set, releases
}

// TestWakeupMixedFinalBodyDecline is the directed regression for a bug
// this fuzz harness found: on networks where one message's *final* edge
// is another message's *body* edge (rings, meshes — never the butterfly,
// whose output edges are final for every path through them), a
// final-edge crossing consumes bandwidth without holding a buffer slot.
// A woken top-priority waiter can then decline its freed slot by failing
// bandwidth on a body edge even when cap == B — the case the free-slot-
// count wake rule assumed impossible — while the naive scan advances a
// lower-priority waiter the wakeup engine never woke. The fix classifies
// edges by role and falls back to whole-queue wakes the moment any edge
// is used in both roles.
func TestWakeupMixedFinalBodyDecline(t *testing.T) {
	for seed := uint64(100); seed < 140; seed++ {
		set, releases := fuzzWorkload(seed, 2, 9)
		for _, ps := range []int{1, 3, 8} {
			for _, pol := range []Policy{ArbByID, ArbAge, ArbRandom} {
				runBoth(t, pol.String(), set, releases, Config{
					VirtualChannels: 1,
					Arbitration:     pol,
					Seed:            seed,
					ParkStreak:      ps,
					CheckInvariants: true,
				})
			}
		}
	}
}

// TestMixedFinalFlipFlushesParked pins the incremental-mode corner of the
// same bug: a streaming Inject can deliver the first mixed-role path
// *after* worms have parked under the free-slot-count rule. The flip must
// flush every parked worm (their park decisions assumed declines were
// impossible) and downgrade later wakes — verified by lockstep snapshot
// comparison against the naive scan across the flip.
func TestMixedFinalFlipFlushesParked(t *testing.T) {
	g := topology.NewLinearArray(7)
	route := message.ShortestPathRouter(g)
	long := message.Message{Src: 0, Dst: 6, Length: 5, Path: route(0, 6)}
	// Final edge e4 of this message is a body edge of `long`: the flip.
	flip := message.Message{Src: 0, Dst: 5, Length: 2, Path: route(0, 5)}
	for _, pol := range []Policy{ArbByID, ArbAge, ArbRandom} {
		cfg := Config{VirtualChannels: 1, Arbitration: pol, Seed: 9, MaxSteps: 4096, CheckInvariants: true}
		naiveCfg := cfg
		naiveCfg.NaiveScan = true
		wake, err := NewSim(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := NewSim(g, naiveCfg)
		if err != nil {
			t.Fatal(err)
		}
		inject := func(m message.Message, rel int) {
			t.Helper()
			if _, err := wake.Inject(m, rel); err != nil {
				t.Fatal(err)
			}
			if _, err := naive.Inject(m, rel); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 10; i++ {
			inject(long, 0)
		}
		// Let the backlog park (probation is 8 steps), then flip mid-run.
		for step := 0; step < 30; step++ {
			if err := wake.Step(); err != nil {
				t.Fatal(err)
			}
			if err := naive.Step(); err != nil {
				t.Fatal(err)
			}
		}
		if wake.mixedFinal {
			t.Fatal("classification mixed before the flip message")
		}
		if pol != ArbRandom && wake.parked == 0 {
			t.Fatal("fixture never parked a worm; the flush path is untested")
		}
		inject(flip, wake.Now())
		if !wake.mixedFinal {
			t.Fatal("flip message did not mix the classification")
		}
		if wake.parked != 0 {
			t.Fatalf("%d worms still parked after the flip flush", wake.parked)
		}
		for wake.Active() > 0 {
			errW := wake.Step()
			errN := naive.Step()
			if (errW == nil) != (errN == nil) {
				t.Fatalf("%s: error mismatch: wakeup %v, naive %v", pol, errW, errN)
			}
			rw, rn := wake.Result(), naive.Result()
			if !reflect.DeepEqual(rw, rn) {
				t.Fatalf("%s: snapshots differ after flip\nwakeup: %+v\n naive: %+v", pol, rw, rn)
			}
			if errW != nil {
				break
			}
		}
	}
}

func FuzzSimInvariants(f *testing.F) {
	// Seed corpus: one entry per topology family crossed with the
	// interesting config corners (deep lanes, shared pool, restricted
	// bandwidth, drop-on-delay, every policy).
	f.Add(uint64(1), uint8(0), uint8(12), uint8(1), uint8(1), false, false, false, uint8(0), uint8(2))
	f.Add(uint64(2), uint8(0), uint8(20), uint8(2), uint8(2), false, true, false, uint8(1), uint8(0))
	f.Add(uint64(3), uint8(1), uint8(16), uint8(1), uint8(3), true, false, false, uint8(2), uint8(3))
	f.Add(uint64(4), uint8(1), uint8(24), uint8(3), uint8(1), true, true, true, uint8(0), uint8(4))
	f.Add(uint64(5), uint8(2), uint8(8), uint8(1), uint8(2), false, false, false, uint8(2), uint8(1))
	f.Add(uint64(6), uint8(2), uint8(10), uint8(2), uint8(4), true, true, false, uint8(1), uint8(8))
	f.Fuzz(func(t *testing.T, seed uint64, topoSel, msgs, b, depth uint8, shared, restricted, drop bool, pol, shards uint8) {
		m := 1 + int(msgs)%32
		set, releases := fuzzWorkload(seed, topoSel, m)
		cfg := Config{
			VirtualChannels:     1 + int(b)%4,
			LaneDepth:           1 + int(depth)%4,
			SharedPool:          shared,
			RestrictedBandwidth: restricted,
			DropOnDelay:         drop,
			Arbitration:         Policy(pol % 3),
			Seed:                seed,
			ParkStreak:          1 + int(seed%11),
			Shards:              int(shards) % 9, // sharded stepper (or its fallback) in every property
			CheckInvariants:     true,            // property 1: per-step invariants
		}

		// Property 2: wakeup ≡ naive, with internals inspectable. The
		// activity cutoff drops to 1 so fuzz-sized workloads engage the
		// sharded stepper whenever the config is inside its regime.
		wake := newBatchSim(set, releases, cfg)
		wake.shardMin = 1
		defer wake.Close()
		wake.Drain()
		wakeRes := wake.Result()
		naiveCfg := cfg
		naiveCfg.NaiveScan = true
		naiveRes := Run(set, releases, naiveCfg)
		if !reflect.DeepEqual(wakeRes, naiveRes) {
			t.Fatalf("wakeup and naive results differ\nwakeup: %+v\n naive: %+v", wakeRes, naiveRes)
		}

		// Property 3: nothing leaks after a drain. A deadlocked network
		// strands worms and credits by definition; everything else must
		// come back to zero.
		if wake.parked != 0 {
			t.Fatalf("drained sim still has %d parked worms", wake.parked)
		}
		for e, q := range wake.waitQ {
			if len(q) != 0 {
				t.Fatalf("drained sim leaks %d wait-queue entries on edge %d", len(q), e)
			}
		}
		for e, q := range wake.waitQFlit {
			if len(q) != 0 {
				t.Fatalf("drained sim leaks %d flit-wait-queue entries on edge %d", len(q), e)
			}
		}
		if len(wake.wokenScratch) != 0 {
			t.Fatalf("drained sim leaks %d woken-scratch entries", len(wake.wokenScratch))
		}
		if !wakeRes.Deadlocked && !wakeRes.Truncated {
			if wakeRes.Delivered+wakeRes.Dropped != m {
				t.Fatalf("conservation: %d delivered + %d dropped ≠ %d messages",
					wakeRes.Delivered, wakeRes.Dropped, m)
			}
			for e := range wake.laneFree {
				if used := wake.lanesInUse(e); used != 0 {
					t.Fatalf("edge %d still holds %d lanes after completion", e, used)
				}
			}
			for e := range wake.flitFree {
				if used := wake.flitsInUse(e); used != 0 {
					t.Fatalf("edge %d still holds %d flit credits after completion", e, used)
				}
			}
		}

		// Property 4: replay determinism.
		if again := Run(set, releases, cfg); !reflect.DeepEqual(wakeRes, again) {
			t.Fatalf("replay diverged\nfirst: %+v\nsecond: %+v", wakeRes, again)
		}

		// Property 5: fast-forward equivalence and Reset hygiene. The
		// same workload streams through one incremental Sim twice —
		// StepTo-jumped, then Reset and replayed — and must match the
		// batch result both times (modulo the horizon: the batch bound is
		// workload-derived, so truncated runs are skipped).
		if !wakeRes.Truncated {
			ffCfg := cfg
			ffCfg.MaxSteps = 1 << 20
			ff, err := NewSim(set.G, ffCfg)
			if err != nil {
				t.Fatal(err)
			}
			ff.shardMin = 1
			defer ff.Close()
			for round := 0; round < 2; round++ {
				for i := 0; i < set.Len(); i++ {
					if _, err := ff.Inject(set.Get(message.ID(i)), releases[i]); err != nil {
						t.Fatal(err)
					}
				}
				stride := 1 + int(seed%7)
				for ff.Active() > 0 {
					if err := ff.StepTo(ff.Now() + stride); err != nil {
						break
					}
				}
				ffRes := ff.Result()
				if !reflect.DeepEqual(wakeRes, ffRes) {
					t.Fatalf("round %d: fast-forward replay diverged from batch\nbatch: %+v\n   ff: %+v", round, wakeRes, ffRes)
				}
				ff.Reset()
			}
		}

		// Property 6: checkpoint transparency. The workload replayed
		// through a Sim that is snapshotted at a fuzzed mid-run step and
		// restored — under the complementary Shards setting, so restores
		// migrate across stepper mechanisms — must still match the batch
		// result exactly.
		if !wakeRes.Truncated {
			cpCfg := cfg
			cpCfg.MaxSteps = 1 << 20
			cp, err := NewSim(set.G, cpCfg)
			if err != nil {
				t.Fatal(err)
			}
			cp.shardMin = 1
			defer cp.Close()
			for i := 0; i < set.Len(); i++ {
				if _, err := cp.Inject(set.Get(message.ID(i)), releases[i]); err != nil {
					t.Fatal(err)
				}
			}
			snapStep := 1 + int(seed%29)
			for cp.Now() < snapStep && cp.Active() > 0 {
				if cp.Step() != nil {
					break
				}
			}
			var blob bytes.Buffer
			if err := cp.Snapshot(&blob); err != nil {
				t.Fatal(err)
			}
			rcCfg := cpCfg
			rcCfg.Shards = (cpCfg.Shards + 1) % 9
			rc, err := RestoreSim(set.G, rcCfg, bytes.NewReader(blob.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			rc.shardMin = 1
			defer rc.Close()
			for rc.Active() > 0 {
				if rc.Step() != nil {
					break
				}
			}
			if rcRes := rc.Result(); !reflect.DeepEqual(wakeRes, rcRes) {
				t.Fatalf("checkpoint/restore replay diverged from batch\n   batch: %+v\nrestored: %+v", wakeRes, rcRes)
			}
		}
	})
}
