package vcsim

import (
	"reflect"
	"sync"
	"testing"

	"wormhole/internal/message"
	"wormhole/internal/topology"
)

// Lifecycle pins for Sim.Close: it must be idempotent, must leave the
// Sim usable (the next sharded step restarts the worker pool), and must
// be safe to call concurrently with Reset or another Close — a retiring
// driver goroutine may race the goroutine recycling the Sim.

func lifecycleSim(t *testing.T) (*Sim, *topology.Butterfly) {
	t.Helper()
	bf := topology.NewButterfly(8)
	sim, err := NewSim(bf.G, Config{VirtualChannels: 2, Arbitration: ArbByID, MaxSteps: 1 << 20, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	sim.shardMin = 1
	return sim, bf
}

func lifecycleLoad(t *testing.T, sim *Sim, bf *topology.Butterfly, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		src, dst := i%8, (i*5+2)%8
		m := message.Message{Src: bf.Input(src), Dst: bf.Output(dst), Length: 3, Path: bf.Route(src, dst)}
		if _, err := sim.Inject(m, sim.Now()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCloseIdempotent: repeated Close calls are no-ops after the first.
func TestCloseIdempotent(t *testing.T) {
	sim, bf := lifecycleSim(t)
	lifecycleLoad(t, sim, bf, 32)
	sim.Drain()
	for i := 0; i < 3; i++ {
		sim.Close()
	}
}

// TestCloseThenStepRestartsPool: Close marks an idle point, not end of
// life — stepping again after Close must restart the sharded workers
// and produce the same result as a never-closed run.
func TestCloseThenStepRestartsPool(t *testing.T) {
	want, bf := lifecycleSim(t)
	defer want.Close()
	lifecycleLoad(t, want, bf, 48)
	want.Drain()

	got, _ := lifecycleSim(t)
	defer got.Close()
	lifecycleLoad(t, got, bf, 48)
	for i := 0; i < 5; i++ {
		if err := got.Step(); err != nil {
			t.Fatal(err)
		}
	}
	got.Close() // mid-run: workers stop...
	got.Drain() // ...and the next sharded step restarts them
	if got.ShardedSteps() == 0 {
		t.Fatal("post-Close drain never took a sharded step; the restart path is untested")
	}
	if w, g := want.Result(), got.Result(); !reflect.DeepEqual(w, g) {
		t.Fatalf("Close mid-run perturbed the schedule\nwant: %+v\n got: %+v", w, g)
	}
}

// TestCloseConcurrentWithReset drives Close from one goroutine against
// Reset on another — the documented retire-while-recycling race; run
// under -race this pins the poolMu guard on the pool handoff. Stepping
// stays single-goroutine per the Sim contract: the churn races only the
// lifecycle calls, and the run afterwards proves the Sim survived.
func TestCloseConcurrentWithReset(t *testing.T) {
	sim, bf := lifecycleSim(t)
	defer sim.Close()
	lifecycleLoad(t, sim, bf, 16)
	sim.Drain() // warm the pool so Close has workers to stop

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				sim.Close()
			}
		}
	}()
	for i := 0; i < 200; i++ {
		sim.Reset()
	}
	close(stop)
	wg.Wait()

	// The Sim survives the churn: one more clean run.
	sim.Reset()
	lifecycleLoad(t, sim, bf, 16)
	sim.Drain()
	if res := sim.Result(); res.Delivered != 16 {
		t.Fatalf("post-race run delivered %d of 16", res.Delivered)
	}
}

// TestCloseConcurrentClose: two goroutines closing the same Sim must
// not double-close the pool's channels.
func TestCloseConcurrentClose(t *testing.T) {
	sim, bf := lifecycleSim(t)
	lifecycleLoad(t, sim, bf, 32)
	sim.Drain()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sim.Close()
		}()
	}
	wg.Wait()
}
