package vcsim

// Small accessor and guard-rail tests: result helpers, enum strings, the
// MaxHorizon validation added with the 32-bit time layout, and the
// pending-window + arena corner cases of the storage overhaul.

import (
	"strings"
	"testing"

	"wormhole/internal/message"
	"wormhole/internal/topology"
)

func TestResultHelpersAndStrings(t *testing.T) {
	set, releases := fuzzWorkload(11, 0, 6)
	res := Run(set, releases, Config{VirtualChannels: 2})
	if !res.AllDelivered() {
		t.Fatal("butterfly workload must deliver")
	}
	if got := len(res.DeliveredIDs()); got != 6 {
		t.Fatalf("DeliveredIDs = %d, want 6", got)
	}
	if got := len(res.DroppedIDs()); got != 0 {
		t.Fatalf("DroppedIDs = %d, want 0", got)
	}
	if res.MaxLatency() <= 0 {
		t.Fatal("MaxLatency must be positive on a delivered workload")
	}
	if res.PerMessage[0].Latency() < 0 {
		t.Fatal("delivered message must have a latency")
	}
	if (MessageStats{Status: StatusActive}).Latency() != -1 {
		t.Fatal("undelivered latency must be -1")
	}
	for _, p := range []Policy{ArbByID, ArbRandom, ArbAge, Policy(9)} {
		if p.String() == "" {
			t.Fatal("empty policy string")
		}
	}
	for _, s := range []Status{StatusWaiting, StatusActive, StatusDelivered, StatusDropped, Status(9)} {
		if s.String() == "" {
			t.Fatal("empty status string")
		}
	}
}

func TestMaxHorizonValidation(t *testing.T) {
	g := topology.NewLinearArray(3)
	if _, err := NewSim(g, Config{VirtualChannels: 1, MaxSteps: MaxHorizon + 1}); err == nil {
		t.Fatal("MaxSteps beyond MaxHorizon must be rejected")
	}
	si, err := NewSim(g, Config{VirtualChannels: 1, MaxSteps: 1024})
	if err != nil {
		t.Fatal(err)
	}
	route := message.ShortestPathRouter(g)
	msg := message.Message{Src: 0, Dst: 2, Length: 2, Path: route(0, 2)}
	if _, err := si.Inject(msg, MaxHorizon+1); err == nil ||
		!strings.Contains(err.Error(), "MaxHorizon") {
		t.Fatalf("release beyond MaxHorizon: err = %v", err)
	}
}

// TestPendingWindowCompaction drives the pending list through enough
// admit/insert cycles to force the compaction path: a small standing
// population with far-future releases keeps the window non-empty while
// the head advances through the backing array.
func TestPendingWindowCompaction(t *testing.T) {
	g := topology.NewLinearArray(4)
	route := message.ShortestPathRouter(g)
	msg := message.Message{Src: 0, Dst: 3, Length: 1, Path: route(0, 3)}
	si, err := NewSim(g, Config{VirtualChannels: 1, MaxSteps: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	far := 1 << 18 // anchor entry that keeps the window from emptying
	if _, err := si.Inject(msg, far); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := si.Inject(msg, si.Now()+1); err != nil {
			t.Fatal(err)
		}
		if err := si.StepTo(si.Now() + 3); err != nil {
			t.Fatal(err)
		}
	}
	if err := si.StepTo(far + 64); err != nil {
		t.Fatal(err)
	}
	if si.Active() != 0 {
		t.Fatalf("%d messages still active", si.Active())
	}
	if si.Delivered() != 2001 {
		t.Fatalf("delivered %d, want 2001", si.Delivered())
	}
}

// TestArenaLargeAlloc covers the oversized-request path: a message
// longer than an arena chunk must still get contiguous storage.
func TestArenaLargeAlloc(t *testing.T) {
	var a i32Arena
	small := a.alloc(8)
	big := a.alloc(arenaChunk + 100)
	if len(small) != 8 || len(big) != arenaChunk+100 {
		t.Fatalf("alloc sizes: %d, %d", len(small), len(big))
	}
	if a.alloc(0) != nil {
		t.Fatal("zero alloc must be nil")
	}
	a.reset()
	again := a.alloc(8)
	if &again[0] != &small[0] {
		t.Fatal("reset must reuse the first chunk")
	}
}
