package vcsim

// Regression tests for Config.ParkStreak, the wakeup engine's park
// hysteresis. The setting is pure mechanism: it decides how many
// consecutive failed steps a worm tolerates before paying the park/wake
// machinery, and must never change any observable. The tests pin the
// default (0 ⇒ 8, the historical hard-coded value) and both extremes —
// park-immediately (1) and park-never (a streak no run can reach) —
// against the naive scan and against each other.

import (
	"reflect"
	"testing"

	"wormhole/internal/message"
	"wormhole/internal/rng"
	"wormhole/internal/topology"
)

// parkStreakWorkload is a contended butterfly with staggered releases:
// plenty of blocked episodes of every length, so hysteresis settings
// genuinely change which worms park and when.
func parkStreakWorkload(seed uint64) (*message.Set, []int) {
	r := rng.New(seed)
	bf := topology.NewButterfly(16)
	set := message.NewSet(bf.G)
	var releases []int
	for i := 0; i < 48; i++ {
		src, dst := r.Intn(16), r.Intn(16)
		set.Add(bf.Input(src), bf.Output(dst), 2+r.Intn(6), bf.Route(src, dst))
		releases = append(releases, (i%8)*3)
	}
	return set, releases
}

func TestParkStreakDefaultIsEight(t *testing.T) {
	set, releases := parkStreakWorkload(17)
	for _, pol := range []Policy{ArbByID, ArbRandom, ArbAge} {
		cfg := Config{VirtualChannels: 1, Arbitration: pol, Seed: 17, CheckInvariants: true}
		eight := cfg
		eight.ParkStreak = 8
		got := Run(set, releases, cfg)
		want := Run(set, releases, eight)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: zero-value ParkStreak differs from explicit 8", pol)
		}
	}
	// The default must be wired through to the engine, not just equal by
	// luck: an empty config resolves to the documented constant.
	si := emptySim(1, Config{VirtualChannels: 1})
	if si.parkStreak != defaultParkStreak {
		t.Errorf("default park streak = %d, want %d", si.parkStreak, defaultParkStreak)
	}
	si = emptySim(1, Config{VirtualChannels: 1, ParkStreak: 3})
	if si.parkStreak != 3 {
		t.Errorf("explicit park streak = %d, want 3", si.parkStreak)
	}
}

// TestParkStreakExtremesMatchNaive runs park-immediately and park-never
// hysteresis across policies, both buffer architectures, and both
// models, and demands byte-identical results against the naive oracle
// (which never parks at all) — the strongest form of "hysteresis is
// unobservable".
func TestParkStreakExtremesMatchNaive(t *testing.T) {
	set, releases := parkStreakWorkload(23)
	for _, streak := range []int{1, 2, 1 << 30} {
		for _, pol := range []Policy{ArbByID, ArbRandom, ArbAge} {
			for _, arch := range []struct {
				depth  int
				shared bool
			}{{1, false}, {2, true}} {
				for _, restricted := range []bool{false, true} {
					cfg := Config{
						VirtualChannels:     1,
						LaneDepth:           arch.depth,
						SharedPool:          arch.shared,
						RestrictedBandwidth: restricted,
						Arbitration:         pol,
						Seed:                23,
						ParkStreak:          streak,
						CheckInvariants:     true,
					}
					runBoth(t, pol.String(), set, releases, cfg)
				}
			}
		}
	}
}

// TestParkStreakInvariance pins that every hysteresis value yields the
// same Result — not only extremes, and not only vs the oracle.
func TestParkStreakInvariance(t *testing.T) {
	set, releases := parkStreakWorkload(31)
	base := Run(set, releases, Config{
		VirtualChannels: 2, Arbitration: ArbAge, CheckInvariants: true,
	})
	for _, streak := range []int{1, 3, 8, 40, 1 << 30} {
		got := Run(set, releases, Config{
			VirtualChannels: 2, Arbitration: ArbAge, ParkStreak: streak, CheckInvariants: true,
		})
		if !reflect.DeepEqual(base, got) {
			t.Errorf("ParkStreak=%d changed the Result", streak)
		}
	}
}
