package vcsim

// This file implements a second, deliberately independent simulator of
// the paper's router model and differentially tests the optimized
// production simulator against it.
//
// The production simulator exploits worm rigidity: a worm's whole flit
// configuration is a single counter (frontier), and buffer occupancy is
// maintained by interval arithmetic. The reference simulator below makes
// none of those leaps — it tracks every flit as an explicit object,
// derives buffer contents from flit positions on every step, and moves
// flits one by one under the model's literal rules. If the two engines
// ever disagree on any observable (makespan, per-message injection and
// delivery times, stalls, drops, deadlock), one of them misimplements
// the model. The property tests below drive both engines across the
// whole configuration space (B, bandwidth restriction, drop-on-delay,
// deterministic policies, staggered releases).

import (
	"testing"
	"testing/quick"

	"wormhole/internal/graph"
	"wormhole/internal/message"
	"wormhole/internal/rng"
	"wormhole/internal/topology"
)

// refWorm is the reference engine's per-message state: explicit flit
// positions. positions[j] = number of edges flit j has crossed; flit j
// occupies the buffer at the head of path[positions[j]-1] when
// 1 ≤ positions[j] ≤ len(path)-1.
type refWorm struct {
	path      graph.Path
	l         int
	positions []int
	release   int
	status    Status
	inject    int
	deliver   int
	stalls    int
}

func (w *refWorm) frontier() int { return w.positions[0] }

func (w *refWorm) complete() bool {
	return w.positions[w.l-1] >= len(w.path)
}

// refRun simulates with explicit flits and returns observables in the
// production Result layout (only the fields the differential test
// compares are filled).
func refRun(s *message.Set, release []int, cfg Config) Result {
	n := s.Len()
	worms := make([]*refWorm, n)
	for i := 0; i < n; i++ {
		m := s.Get(message.ID(i))
		rel := 0
		if release != nil {
			rel = release[i]
		}
		worms[i] = &refWorm{
			path:      m.Path,
			l:         m.Length,
			positions: make([]int, m.Length),
			release:   rel,
			inject:    -1,
			deliver:   -1,
		}
	}
	cap := cfg.VirtualChannels
	if cfg.RestrictedBandwidth {
		cap = 1
	}

	// bufOf recomputes buffer contents from scratch — the slow, obviously
	// correct way. It returns, per edge, the set of messages with a flit
	// buffered there.
	bufOf := func() map[graph.EdgeID]map[int]bool {
		buf := make(map[graph.EdgeID]map[int]bool)
		for i, w := range worms {
			if w.status == StatusDropped || w.status == StatusDelivered {
				continue
			}
			for _, p := range w.positions {
				if p >= 1 && p <= len(w.path)-1 {
					e := w.path[p-1]
					if buf[e] == nil {
						buf[e] = make(map[int]bool)
					}
					buf[e][i] = true
				}
			}
		}
		return buf
	}

	res := Result{PerMessage: make([]MessageStats, n)}
	now := 0
	remaining := n
	guard := 0
	for remaining > 0 {
		guard++
		if guard > 1_000_000 {
			panic("reference simulator runaway")
		}
		// Fast-forward if nothing is eligible.
		eligibleAny := false
		next := -1
		for _, w := range worms {
			if w.status == StatusDropped || w.status == StatusDelivered {
				continue
			}
			if w.release <= now {
				eligibleAny = true
				break
			}
			if next < 0 || w.release < next {
				next = w.release
			}
		}
		if !eligibleAny {
			if next < 0 {
				break
			}
			now = next
			continue
		}

		startBuf := bufOf()
		grants := make(map[graph.EdgeID]int)
		crossings := make(map[graph.EdgeID]int)
		moved := false
		dropped := false

		// Deterministic order: (release, id) — matching the production
		// engine's admission order for ArbByID/ArbAge with these inputs.
		order := make([]int, 0, n)
		for i := range worms {
			order = append(order, i)
		}
		if cfg.Arbitration == ArbAge {
			// (release, id) order.
			for a := 1; a < len(order); a++ {
				for b := a; b > 0; b-- {
					wa, wb := worms[order[b-1]], worms[order[b]]
					if wb.release < wa.release {
						order[b-1], order[b] = order[b], order[b-1]
					}
				}
			}
		}

		for _, i := range order {
			w := worms[i]
			if w.status == StatusDropped || w.status == StatusDelivered || w.release > now {
				continue
			}
			d := len(w.path)
			if d == 0 {
				// Same event-time convention as every positive-length
				// path: processed in the step now → now+1, stamped now+1.
				w.status = StatusDelivered
				w.inject, w.deliver = now+1, now+1
				remaining--
				moved = true
				continue
			}
			// Which flits would move? Rigid worm: all flits j with
			// positions[j] < min(d, positions[j-1]) move together; for
			// the literal model, flit j moves iff the header moves, its
			// position is below d, and it has been injected or is next
			// to inject. Compute the move set and its constraints.
			f := w.frontier()
			canMove := true
			var needSlot graph.EdgeID = graph.None
			if f < d-1 {
				e := w.path[f]
				occupants := len(startBuf[e]) + grants[e]
				if startBuf[e][i] {
					panic("reference: worm already buffered at its own frontier")
				}
				if occupants >= cfg.VirtualChannels {
					canMove = false
				} else {
					needSlot = e
				}
			}
			// Bandwidth: every flit that would move crosses one edge.
			var crossed []graph.EdgeID
			if canMove {
				for j := 0; j < w.l; j++ {
					p := w.positions[j]
					if p >= d {
						continue // delivered flit
					}
					if j > 0 && w.positions[j-1] == p {
						break // not yet injected beyond this flit
					}
					// Flit j crosses path[p] this step iff it moves: it
					// moves when it is the header, or the flit ahead is
					// strictly ahead (pipeline hole to fill — for rigid
					// worms the whole train moves).
					if j > 0 && w.positions[j-1] != p+1 {
						panic("reference: worm not contiguous")
					}
					crossed = append(crossed, w.path[p])
					if p == 0 && j == w.l-1 {
						break
					}
				}
				for _, e := range crossed {
					if crossings[e] >= cap {
						canMove = false
						break
					}
				}
			}
			if !canMove {
				if cfg.DropOnDelay {
					w.status = StatusDropped
					w.deliver = -1
					res.PerMessage[i].DropTime = now + 1
					remaining--
					dropped = true
					res.Dropped++
				} else {
					w.stalls++
					res.TotalStalls++
				}
				continue
			}
			// Commit.
			if needSlot != graph.None {
				grants[needSlot]++
			}
			for _, e := range crossed {
				crossings[e]++
			}
			movedFlits := 0
			for j := 0; j < w.l; j++ {
				p := w.positions[j]
				if p >= d {
					continue
				}
				if j > 0 && w.positions[j-1] == p {
					break
				}
				w.positions[j] = p + 1
				movedFlits++
				if p == 0 {
					break // only one flit can leave the source per step
				}
			}
			if movedFlits == 0 {
				panic("reference: advance moved no flits")
			}
			moved = true
			if w.inject < 0 {
				w.inject = now + 1
			}
			if w.complete() {
				w.status = StatusDelivered
				w.deliver = now + 1
				remaining--
				res.Delivered++
			} else {
				w.status = StatusActive
			}
		}
		now++
		if !moved && !dropped {
			res.Deadlocked = true
			break
		}
	}

	last := 0
	for i, w := range worms {
		st := &res.PerMessage[i]
		st.Status = w.status
		st.Release = w.release
		st.InjectTime = w.inject
		st.DeliverTime = w.deliver
		st.Stalls = w.stalls
		if w.deliver > last {
			last = w.deliver
		}
		if st.DropTime > last {
			last = st.DropTime
		}
	}
	// Deadlocked runs report the step the run stopped (the production
	// engine's convention), not the last per-message event.
	if res.Deadlocked && now > last {
		last = now
	}
	res.Steps = last
	// The d==0 bookkeeping above does not pass through res.Delivered.
	res.Delivered = 0
	for i := range res.PerMessage {
		if res.PerMessage[i].Status == StatusDelivered {
			res.Delivered++
		}
	}
	return res
}

// diffConfigs enumerates the model space the differential test covers.
func diffConfigs() []Config {
	var out []Config
	for _, b := range []int{1, 2, 3} {
		for _, restricted := range []bool{false, true} {
			for _, drop := range []bool{false, true} {
				out = append(out, Config{
					VirtualChannels:     b,
					RestrictedBandwidth: restricted,
					DropOnDelay:         drop,
					CheckInvariants:     true,
				})
			}
		}
	}
	return out
}

func compareResults(t *testing.T, label string, got, want Result) {
	t.Helper()
	if got.Steps != want.Steps || got.Delivered != want.Delivered ||
		got.Dropped != want.Dropped || got.Deadlocked != want.Deadlocked ||
		got.TotalStalls != want.TotalStalls {
		t.Fatalf("%s: aggregate mismatch\n prod: steps=%d del=%d drop=%d dead=%v stalls=%d\n  ref: steps=%d del=%d drop=%d dead=%v stalls=%d",
			label,
			got.Steps, got.Delivered, got.Dropped, got.Deadlocked, got.TotalStalls,
			want.Steps, want.Delivered, want.Dropped, want.Deadlocked, want.TotalStalls)
	}
	for i := range got.PerMessage {
		g, w := got.PerMessage[i], want.PerMessage[i]
		if g.Status != w.Status || g.InjectTime != w.InjectTime || g.DeliverTime != w.DeliverTime || g.Stalls != w.Stalls {
			t.Fatalf("%s: message %d mismatch\n prod: %+v\n  ref: %+v", label, i, g, w)
		}
	}
}

// TestDifferentialLine drives both engines over shared-path contention.
func TestDifferentialLine(t *testing.T) {
	for _, cfg := range diffConfigs() {
		for _, msgs := range []int{1, 2, 5} {
			set := lineSet(t, msgs, 4, 6)
			compareResults(t, cfg.Arbitration.String(),
				Run(set, nil, cfg), refRun(set, nil, cfg))
		}
	}
}

// TestDifferentialButterfly drives both engines over butterfly
// permutations with every config.
func TestDifferentialButterfly(t *testing.T) {
	r := rng.New(31)
	bf := topology.NewButterfly(8)
	set := message.NewSet(bf.G)
	for rep := 0; rep < 3; rep++ {
		for src, dst := range r.Perm(8) {
			set.Add(bf.Input(src), bf.Output(dst), 4, bf.Route(src, dst))
		}
	}
	for _, cfg := range diffConfigs() {
		compareResults(t, "butterfly", Run(set, nil, cfg), refRun(set, nil, cfg))
	}
}

// TestDifferentialRandom is the broad property check: random leveled
// workloads, random configs, staggered releases.
func TestDifferentialRandom(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 8 << (seed % 2)
		bf := topology.NewButterfly(n)
		set := message.NewSet(bf.G)
		releases := []int{}
		m := 2 + r.Intn(3*n)
		for i := 0; i < m; i++ {
			src, dst := r.Intn(n), r.Intn(n)
			set.Add(bf.Input(src), bf.Output(dst), 1+r.Intn(8), bf.Route(src, dst))
			releases = append(releases, r.Intn(20))
		}
		pol := ArbAge
		if r.Bool() {
			pol = ArbByID
		}
		cfg := Config{
			VirtualChannels:     1 + r.Intn(3),
			RestrictedBandwidth: r.Bool(),
			DropOnDelay:         r.Bool(),
			Arbitration:         pol, // both deterministic under staggered releases
			CheckInvariants:     true,
		}
		prod := Run(set, releases, cfg)
		ref := refRun(set, releases, cfg)
		if prod.Steps != ref.Steps || prod.Delivered != ref.Delivered ||
			prod.Dropped != ref.Dropped || prod.TotalStalls != ref.TotalStalls {
			t.Logf("seed %d: prod{steps %d del %d drop %d stalls %d} ref{steps %d del %d drop %d stalls %d}",
				seed, prod.Steps, prod.Delivered, prod.Dropped, prod.TotalStalls,
				ref.Steps, ref.Delivered, ref.Dropped, ref.TotalStalls)
			return false
		}
		for i := range prod.PerMessage {
			if prod.PerMessage[i].DeliverTime != ref.PerMessage[i].DeliverTime {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialDeadlock confirms both engines agree on the frozen
// two-worm configuration.
func TestDifferentialDeadlock(t *testing.T) {
	set := deadlockSet()
	cfg := Config{VirtualChannels: 1}
	compareResults(t, "deadlock", Run(set, nil, cfg), refRun(set, nil, cfg))
	cfg2 := Config{VirtualChannels: 2}
	compareResults(t, "resolved", Run(set, nil, cfg2), refRun(set, nil, cfg2))
}
