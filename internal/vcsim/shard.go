package vcsim

// This file is the sharded stepper: the rigid wakeup engine's step loop
// fanned out over Config.Shards goroutines, byte-identical to the
// sequential stepper for every shard count. The network's edges are
// partitioned into contiguous ID bands — edge IDs are stage-banded on
// the butterfly and tile-banded on meshes, so a band is a topological
// slab — and each worm belongs, for exactly one step, to the shard that
// owns its *contest edge*: the single edge whose state can decide the
// worm's verdict this step.
//
// The contest edge is well defined in the regime this stepper accepts
// (rigid worms, cap == B, unmixed edge roles, deterministic policies):
//
//   - a worm with frontier < d−1 contends only on the slot of
//     path[frontier]. Its bandwidth checks can never bind: every other
//     edge it would cross is a body edge on which it already holds a
//     buffer slot, so at most B−1 rival crossings can precede it there,
//     and on the slot edge itself every prior crossing is backed by a
//     distinct held-or-granted slot, of which fewer than B remain once
//     laneFree > 0 admits the worm. (With mixed edge roles a final-edge
//     crossing holds no slot and the count breaks — exactly the
//     mixedFinal fallback the wakeup engine already takes.)
//   - a worm with frontier ≥ d−1 has its slot already granted and
//     contends only on the bandwidth meter of its final edge
//     path[d−1] — which, roles unmixed, is final for every path
//     through it.
//
// Worms contesting the same edge land on the same shard, so laneFree,
// crossings, and the wait queue of each edge are touched by exactly one
// goroutine, in that shard's policy-order subsequence — the same
// relative order the sequential stepper uses, against the same
// start-of-step credit state, so every verdict matches. The crossings
// writes a sequential commit performs on non-contest edges are skipped
// outright: no contender reads them this step (slot contenders skip
// bandwidth checks; final contenders read only final edges), and the
// epoch stamp makes them invisible next step.
//
// Everything the step mutates *across* shards is deferred into
// per-shard buffers — tail-slot releases, grant-probe (dirtyMax) edges,
// stall/hop/park tallies, telemetry counters — and folded serially
// after the workers join. Completions, drops, and the active-list
// compaction replay serially in global policy (creation-key) order from
// per-worm verdicts, so OnComplete fires in the sequential order and
// the surviving active list is byte-identical. Release folding, wake
// order, and occupancy probes are order-free beyond that: wakeups sort
// through mergeWoken, and the per-edge folds commute.
//
// Everything else — admissions, applyStepEnd with its wakes, deadlock
// detection, fast-forward — is reused unchanged from the sequential
// engine, running serially between steps.

import (
	"runtime"
	"sync"

	"wormhole/internal/message"
	"wormhole/internal/telemetry"
)

// shardMinActive is the adaptive cutoff: a step is sharded only when the
// active list carries at least this many worms per shard. Below it the
// fan-out's fixed cost (two barrier crossings) outweighs the work, so
// the step runs sequentially — byte-identity makes the switch free.
const shardMinActive = 64

// Per-worm step verdicts, recorded by the parallel phase and replayed
// serially in policy order by shardMerge.
const (
	shardKeep    = uint8(iota) // stays on the active list
	shardPark                  // parked on its contest edge's wait queue
	shardDeliver               // completed: delivered++, freePath, OnComplete
	shardDrop                  // failed under DropOnDelay: full drop at merge
)

// shardState is one shard's private accumulator set. Everything a
// sequential step would write to shared Sim state (other than the
// owner-exclusive per-edge arrays) lands here and folds in at merge.
type shardState struct {
	// met is the shard's telemetry child (nil when the Sim has none):
	// scalar counters and per-edge stall attribution accumulate here
	// race-free and drain into the parent at snapshot boundaries.
	met *telemetry.Metrics
	// rel buffers tail-slot releases (relLane[e]++ plus the dirty-list
	// touch), which may target edges owned by other shards.
	rel []int32
	// gmax buffers this shard's first-grant edges for the MaxOccupied
	// probe; dirtyFlag bit 2 dedups them (owner-exclusive, so the
	// phase-B read-modify-write is race-free).
	gmax     []int32
	stalls   int
	flitHops int64
	parked   int
	moved    bool
	dropped  bool
}

// shardPool owns the shards−1 worker goroutines. Workers capture only
// the pool — never the Sim — so an abandoned Sim stays collectable and
// its finalizer can stop them; Close releases them deterministically.
type shardPool struct {
	work []chan func(int)
	wg   sync.WaitGroup
}

func newShardPool(extra int) *shardPool {
	p := &shardPool{work: make([]chan func(int), extra)}
	for i := range p.work {
		ch := make(chan func(int))
		p.work[i] = ch
		shard := i + 1 // shard 0 runs on the stepping goroutine
		go func() {
			for fn := range ch {
				fn(shard)
				p.wg.Done()
			}
		}()
	}
	return p
}

// run executes fn(shard) for every shard and returns when all are done.
// The channel sends publish the stepping goroutine's writes to the
// workers and wg.Wait publishes theirs back — the two barriers of the
// sharded step. fn is one of the Sim's pre-bound phase funcs, so the
// steady-state step allocates nothing.
//
//wormvet:hotpath
func (p *shardPool) run(fn func(int)) {
	p.wg.Add(len(p.work)) //wormvet:allow hotalloc -- WaitGroup.Add is an atomic counter update, no allocation
	for _, ch := range p.work {
		ch <- fn
	}
	fn(0)       //wormvet:allow hotalloc -- pre-bound method value (classifyFn/processFn), created once at ensureShards
	p.wg.Wait() //wormvet:allow hotalloc -- semaphore wait on warm sudog caches, no steady-state allocation
}

func (p *shardPool) stop() {
	for _, ch := range p.work {
		close(ch)
	}
}

// Close stops the sharded stepper's worker goroutines, if any were ever
// started. The Sim remains usable — the next sharded step restarts
// them — so Close is safe to call at any idle point; long-lived drivers
// (the traffic Runner, batch Run) call it when the Sim is retired. It
// is idempotent and safe to call concurrently with Reset (or another
// Close): lifecycle calls may come from a retiring goroutine while the
// stepping one is being recycled. A finalizer covers abandoned Sims, so
// leaking goroutines requires actively keeping the Sim alive.
func (si *Sim) Close() {
	si.poolMu.Lock()
	p := si.pool
	si.pool = nil
	si.poolMu.Unlock()
	if p != nil {
		p.stop()
	}
}

// ensureShards lazily builds the sharded stepper's state on first use:
// per-shard accumulators (with telemetry children when the Sim records
// metrics), the pre-bound phase funcs, and the worker pool with its
// finalizer safety net. The pool check is separate from the state check
// so a Close-then-step sequence restarts the workers instead of
// dispatching into a nil pool.
func (si *Sim) ensureShards() {
	if si.shardStates == nil {
		si.shardStates = make([]*shardState, si.shards)
		for s := range si.shardStates {
			st := &shardState{}
			if si.met != nil {
				st.met = telemetry.NewMetrics()
				st.met.EnsureEdges(len(si.laneFree))
			}
			si.shardStates[s] = st
		}
		si.classifyFn = si.shardClassify
		si.processFn = si.shardProcess
	}
	if si.pool == nil {
		si.poolMu.Lock()
		if si.pool == nil {
			si.pool = newShardPool(si.shards - 1)
		}
		// The finalizer is per-Sim, not per-pool: setting one when one is
		// already set is a runtime fatal error, and a Close-then-step
		// sequence rebuilds the pool on the same Sim.
		if !si.finalizerSet {
			si.finalizerSet = true
			runtime.SetFinalizer(si, (*Sim).Close)
		}
		si.poolMu.Unlock()
	}
}

// shardable reports whether this step runs sharded: enough parallel work
// (see shardMinActive), and a configuration inside the contest-edge
// regime the file comment proves — the rigid engine at full crossing
// bandwidth with unmixed edge roles, a deterministic policy, and no
// per-event sinks (which observe mid-step order the parallel phase does
// not reproduce). Everything else falls back to the sequential stepper,
// byte-identically.
//
//wormvet:hotpath
func (si *Sim) shardable() bool {
	return si.shards > 1 && !si.deepMode && !si.mixedFinal &&
		si.cap == si.b && si.cfg.Arbitration != ArbRandom &&
		si.trc == nil && si.cfg.Observer == nil && si.faults == nil &&
		len(si.active) >= si.shardMin*si.shards
}

// stepSharded advances one flit step on the worker pool: parallel
// classify (which shard owns each worm's contest edge), barrier,
// parallel per-shard verdicts against owner-exclusive edge state,
// barrier, serial merge and step end.
//
//wormvet:hotpath
func (si *Sim) stepSharded() {
	si.ensureShards() //wormvet:allow hotalloc -- one-time lazy construction of pool and shard state
	n := len(si.active)
	if cap(si.shardOwner) < n {
		si.shardOwner = make([]uint8, n+n/4)   //wormvet:allow hotalloc -- amortized: grows to peak active size, then reused
		si.shardVerdict = make([]uint8, n+n/4) //wormvet:allow hotalloc -- amortized: grows to peak active size, then reused
	}
	si.shardOwner = si.shardOwner[:n]
	si.shardVerdict = si.shardVerdict[:n]
	// Parked worms are eligible-but-blocked, exactly as in stepWakeup.
	anyEligible := n > 0 || si.parked > 0

	si.pool.run(si.classifyFn)
	si.pool.run(si.processFn)
	moved, droppedAny := si.shardMerge()
	si.shardSteps++

	si.applyStepEnd()
	si.now++

	if si.cfg.CheckInvariants {
		si.checkInvariants() //wormvet:allow hotalloc -- debug-gated by Config.CheckInvariants
	}

	if !moved && !droppedAny && anyEligible {
		si.deadlocked = true
		// stampDeadlock's order argument is only consulted under
		// ArbRandom, which never shards.
		si.stampDeadlock(nil)   //wormvet:allow hotalloc -- deadlock teardown: terminal, runs at most once
		si.finishAsDeadlocked() //wormvet:allow hotalloc -- deadlock teardown: terminal, runs at most once
	}
}

// shardClassify is phase A: over its index range of the active list,
// record each worm's owner — the shard of its contest edge. Reads worm
// state and writes only owner bytes, so the ranges race with nothing.
//
//wormvet:hotpath
func (si *Sim) shardClassify(s int) {
	order := si.active
	n := len(order)
	owner := si.shardOwner
	for i := n * s / si.shards; i < n*(s+1)/si.shards; i++ {
		w := si.wormK(order[i])
		if w.d == 0 {
			// Empty path: delivers unconditionally; any owner works.
			owner[i] = uint8(i % si.shards)
			continue
		}
		f := w.frontier
		if f > w.d-1 {
			f = w.d - 1
		}
		owner[i] = si.edgeShard[w.path[f]]
	}
}

// shardProcess is phase B: walk the whole active list in policy order,
// attempting exactly the worms this shard owns — the same relative
// order, against the same start-of-step credit state, as the sequential
// stepper — and record verdicts. Mirrors stepWakeup's deterministic
// branch with completions, drops, and the list compaction deferred to
// shardMerge.
//
//wormvet:hotpath
func (si *Sim) shardProcess(s int) {
	sh := si.shardStates[s]
	order := si.active
	owner := si.shardOwner
	verdict := si.shardVerdict
	su := uint8(s)
	for i, k := range order {
		if owner[i] != su {
			continue
		}
		w := si.wormK(k)
		ok, slotEdge := si.tryAdvanceShard(w, sh)
		switch {
		case ok:
			sh.moved = true
			w.streak = 0
			w.woken = false
			if w.status == StatusDelivered {
				verdict[i] = shardDeliver
			} else {
				verdict[i] = shardKeep
			}
		case si.cfg.DropOnDelay:
			// The failed worm is untouched here; shardMerge performs the
			// full drop in policy order.
			verdict[i] = shardDrop
			sh.dropped = true
		case slotEdge >= 0 && w.streak >= si.parkStreak-1:
			w.streak = 0
			si.parkShard(w, k, slotEdge, sh)
			verdict[i] = shardPark
		default:
			// Probation, or a transient bandwidth block: retry next step.
			w.streak++
			w.stalls++
			sh.stalls++
			verdict[i] = shardKeep
		}
	}
}

// tryAdvanceShard is tryAdvance restricted to the sharded regime: the
// contest-edge check decides the verdict, the commit touches only
// owner-exclusive edge state plus the shard's deferred buffers, and the
// completion side effects (delivered count, path recycling, OnComplete)
// wait for shardMerge.
//
//wormvet:hotpath
func (si *Sim) tryAdvanceShard(w *worm, sh *shardState) (bool, int32) {
	if w.d == 0 {
		w.frontier = w.l // mark complete
		w.status = StatusDelivered
		w.injectTime = int32(si.now + 1)
		w.deliverTime = int32(si.now + 1)
		if m := sh.met; m != nil {
			m.Inc(telemetry.CtrInjects)
			m.Inc(telemetry.CtrDelivers)
		}
		return true, -1
	}
	path := w.path
	if w.frontier < w.d-1 {
		// Slot contest on path[frontier]; bandwidth can never bind (see
		// the file comment), so the sequential bandwidth loop — and its
		// crossings writes, which no contender reads — is skipped whole.
		e := path[w.frontier]
		if si.laneFree[e] <= 0 {
			if m := sh.met; m != nil {
				m.EdgeStall(telemetry.CtrStallLaneCredit, e)
			}
			return false, e
		}
		si.laneFree[e]--
		if si.dirtyFlag[e]&2 == 0 {
			si.dirtyFlag[e] |= 2
			sh.gmax = append(sh.gmax, e)
		}
	} else {
		// Final contest: only crossings[path[d−1]] can fail the worm, and
		// only that meter is read by later contenders, so it is the one
		// bandwidth write the commit must perform.
		f := path[w.d-1]
		stamp := si.crossStamp()
		cw := si.crossings[f]
		if cw >= stamp && int32(cw-stamp) >= si.capI32 {
			if m := sh.met; m != nil {
				m.EdgeStall(telemetry.CtrStallBandwidth, f)
			}
			return false, -1
		}
		if cw < stamp {
			cw = stamp
		}
		si.crossings[f] = cw + 1
	}
	lo, hi := w.crossed()
	sh.flitHops += int64(hi - lo + 1)
	if rel := w.frontier - w.l; rel >= 0 && rel <= w.d-2 {
		sh.rel = append(sh.rel, path[rel])
	}
	if w.injectTime < 0 {
		w.injectTime = int32(si.now + 1)
		if m := sh.met; m != nil {
			m.Inc(telemetry.CtrInjects)
		}
	}
	w.frontier++
	if m := sh.met; m != nil {
		m.Inc(telemetry.CtrAdvances)
	}
	if w.complete() {
		w.status = StatusDelivered
		w.deliverTime = int32(si.now + 1)
		if m := sh.met; m != nil {
			m.Inc(telemetry.CtrDelivers)
		}
	} else {
		w.status = StatusActive
	}
	return true, -1
}

// parkShard is park() under shard ownership: the wait queue of the
// contest edge belongs to this shard, the tallies to its accumulator.
// (Traces never shard, so the trc hook has no counterpart here.)
//
//wormvet:hotpath
func (si *Sim) parkShard(w *worm, k uint64, e int32, sh *shardState) {
	w.parkedAt = int32(si.now)
	w.waitEdge = e
	if m := sh.met; m != nil {
		m.Inc(telemetry.CtrParks)
		if w.woken {
			m.Inc(telemetry.CtrSpuriousWakes)
		}
	}
	w.woken = false
	si.heapPush(&si.waitQ[e], k)
	sh.parked++
}

// shardMerge folds the per-shard buffers into the Sim and replays the
// verdicts in global policy order: the active list compacts in place
// and completions and drops fire their side effects in exactly the
// sequence the sequential stepper would.
//
//wormvet:hotpath
func (si *Sim) shardMerge() (moved, droppedAny bool) {
	for _, sh := range si.shardStates {
		moved = moved || sh.moved
		droppedAny = droppedAny || sh.dropped
		si.totalStalls += sh.stalls
		si.flitHops += sh.flitHops
		si.parked += sh.parked
		for _, e := range sh.rel {
			si.relLane[e]++
			si.touch(e)
		}
		si.dirtyMax = append(si.dirtyMax, sh.gmax...)
		sh.moved, sh.dropped = false, false
		sh.stalls, sh.flitHops, sh.parked = 0, 0, 0
		sh.rel = sh.rel[:0]
		sh.gmax = sh.gmax[:0]
	}
	keep := si.active[:0]
	cb := si.cfg.OnComplete
	for i, k := range si.active {
		switch si.shardVerdict[i] {
		case shardKeep:
			keep = append(keep, k)
		case shardPark:
			// Already on its wait queue.
		case shardDeliver:
			w := si.wormK(k)
			si.delivered++
			si.freePath(w)
			si.freeProg(w)
			if cb != nil {
				cb(message.ID(w.id), w.messageStats()) //wormvet:allow hotalloc -- once-per-message completion hook
			}
		case shardDrop:
			si.drop(si.wormK(k)) //wormvet:allow hotalloc -- drop path: per-drop cost is accepted in drop-on-delay runs
		}
	}
	si.active = keep
	return moved, droppedAny
}

// drainShardMetrics folds the per-shard telemetry children into the
// parent registry, in shard order, and zeroes them — idempotent, so
// every snapshot boundary (Result, Reset) can call it. Counters are
// pure sums, so the parent's totals match a sequential run exactly.
func (si *Sim) drainShardMetrics() {
	if si.met == nil {
		return
	}
	for _, sh := range si.shardStates {
		if sh.met != nil {
			sh.met.DrainInto(si.met)
		}
	}
}

// ShardedSteps reports how many steps have actually run on the sharded
// stepper since construction or Reset — the fallback conditions and the
// per-step activity cutoff make sharding adaptive, so tests and scale
// studies use this to confirm the parallel path really engaged.
func (si *Sim) ShardedSteps() int64 { return si.shardSteps }

// ShardFallbackReason names the condition keeping a Shards ≥ 2 Sim on
// the sequential stepper, or "" when no standing condition applies. It
// inspects configuration-determined inhibitors plus the sticky
// mixed-final flip; the per-step activity cutoff (too few active worms
// to pay the fan-out) is adaptive and intentionally not reported —
// check ShardedSteps to learn whether the parallel path ever engaged.
func (si *Sim) ShardFallbackReason() string {
	if si.shards < 2 {
		return ""
	}
	switch {
	case si.naive:
		return "naive-scan oracle mode"
	case si.deepMode:
		return "deep lanes / shared pool (LaneDepth > 1 or SharedPool)"
	case si.cap != si.b:
		return "restricted bandwidth"
	case si.cfg.Arbitration == ArbRandom:
		return "random arbitration"
	case si.trc != nil:
		return "trace sink attached"
	case si.cfg.Observer != nil:
		return "observer sink attached"
	case si.faults != nil:
		// Kill/revive events mutate credit state mid-run and the retry
		// path reorders the pending queue; the contest-edge argument does
		// not cover either, so fault runs stay sequential (and remain
		// byte-identical across Shards settings by construction).
		return "fault schedule attached"
	case si.mixedFinal:
		return "mixed final/body edge roles"
	}
	return ""
}
