package vcsim

// Differential and structural tests for the sharded stepper. The
// byte-identity contract — Config.Shards is a pure wall-clock lever —
// is pinned by running identical workloads through the sequential
// stepper, the naive scan, and the sharded stepper at several shard
// counts, comparing full Results (and telemetry snapshots) deeply.
// Batch-sized fixtures force engagement by dropping the per-shard
// activity cutoff to 1, then assert via ShardedSteps that the parallel
// path really ran.

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"wormhole/internal/graph"
	"wormhole/internal/message"
	"wormhole/internal/telemetry"
	"wormhole/internal/topology"
)

// runSharded replicates batch Run with the per-shard activity cutoff
// lowered so small fixtures actually engage the parallel path, and
// returns how many steps ran sharded alongside the Result.
func runSharded(set *message.Set, releases []int, cfg Config, shardMin int) (Result, int64) {
	si := newBatchSim(set, releases, cfg)
	si.shardMin = shardMin
	si.Drain()
	res := si.Result()
	steps := si.ShardedSteps()
	si.Close()
	return res, steps
}

// TestShardedMatchesSequentialBatch is the broad identity grid: every
// topology family × deterministic policy × drop mode × shard count runs
// the same workload sharded and sequentially (plus the naive oracle) and
// must produce deeply equal Results. Ring workloads usually classify as
// mixed-final and fall back — identity must hold there too, trivially —
// so the engagement assertion quantifies over butterfly runs only.
func TestShardedMatchesSequentialBatch(t *testing.T) {
	var engaged int64
	for _, topoSel := range []uint8{0, 1, 2} {
		for seed := uint64(1); seed <= 4; seed++ {
			set, releases := fuzzWorkload(seed*31+uint64(topoSel), topoSel, 48)
			for _, pol := range []Policy{ArbByID, ArbAge} {
				for _, drop := range []bool{false, true} {
					cfg := Config{
						VirtualChannels: 1 + int(seed%3),
						Arbitration:     pol,
						DropOnDelay:     drop,
						Seed:            seed,
						CheckInvariants: true,
					}
					seq := Run(set, releases, cfg)
					naiveCfg := cfg
					naiveCfg.NaiveScan = true
					naive := Run(set, releases, naiveCfg)
					if !reflect.DeepEqual(seq, naive) {
						t.Fatalf("topo %d seed %d %s drop=%v: sequential and naive differ", topoSel, seed, pol, drop)
					}
					for _, shards := range []int{2, 3, 4, 8, 256} {
						shCfg := cfg
						shCfg.Shards = shards
						res, steps := runSharded(set, releases, shCfg, 1)
						if !reflect.DeepEqual(seq, res) {
							t.Fatalf("topo %d seed %d %s drop=%v shards=%d: sharded diverged\nseq:     %+v\nsharded: %+v",
								topoSel, seed, pol, drop, shards, seq, res)
						}
						if topoSel == 0 && shards <= 8 {
							engaged += steps
						}
					}
				}
			}
		}
	}
	if engaged == 0 {
		t.Fatal("no butterfly run ever took a sharded step; the grid tested nothing")
	}
}

// TestShardedLockstepSnapshots steps a sharded and a sequential Sim in
// lockstep over a contended butterfly workload and compares the full
// Result snapshot after every step — the strongest identity check, since
// any divergence is caught at the step it first appears.
func TestShardedLockstepSnapshots(t *testing.T) {
	set, releases := fuzzWorkload(7, 0, 64)
	cfg := Config{VirtualChannels: 2, Arbitration: ArbAge, MaxSteps: 4096, CheckInvariants: true}
	shCfg := cfg
	shCfg.Shards = 4
	seq, err := NewSim(set.G, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewSim(set.G, shCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	sh.shardMin = 1
	for i := 0; i < set.Len(); i++ {
		if _, err := seq.Inject(set.Get(message.ID(i)), releases[i]); err != nil {
			t.Fatal(err)
		}
		if _, err := sh.Inject(set.Get(message.ID(i)), releases[i]); err != nil {
			t.Fatal(err)
		}
	}
	for step := 0; seq.Active() > 0 && step < 4096; step++ {
		errS := seq.Step()
		errP := sh.Step()
		if (errS == nil) != (errP == nil) {
			t.Fatalf("step %d: error mismatch: sequential %v, sharded %v", step, errS, errP)
		}
		rs, rp := seq.Result(), sh.Result()
		if !reflect.DeepEqual(rs, rp) {
			t.Fatalf("step %d: snapshots differ\nsequential: %+v\n   sharded: %+v", step, rs, rp)
		}
		if errS != nil {
			break
		}
	}
	if sh.ShardedSteps() == 0 {
		t.Fatal("sharded Sim never took a sharded step")
	}
}

// TestShardedFallbackConfigs pins the fallback set: configurations
// outside the contest-edge regime must run sequentially (ShardedSteps
// stays 0) and still match the sequential Result exactly.
func TestShardedFallbackConfigs(t *testing.T) {
	set, releases := fuzzWorkload(11, 0, 64)
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"deep-lanes", func(c *Config) { c.LaneDepth = 2 }},
		{"shared-pool", func(c *Config) { c.SharedPool = true }},
		{"restricted-bandwidth", func(c *Config) { c.RestrictedBandwidth = true }},
		{"arb-random", func(c *Config) { c.Arbitration = ArbRandom }},
		{"trace", func(c *Config) { c.Trace = telemetry.NewTrace(1 << 16) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{VirtualChannels: 2, Arbitration: ArbByID, Seed: 11, CheckInvariants: true}
			tc.mut(&cfg)
			seq := Run(set, releases, cfg)
			shCfg := cfg
			shCfg.Shards = 4
			if shCfg.Trace != nil {
				shCfg.Trace = telemetry.NewTrace(1 << 16) // a fresh buffer for the second run
			}
			res, steps := runSharded(set, releases, shCfg, 1)
			if steps != 0 {
				t.Fatalf("%s took %d sharded steps; must fall back", tc.name, steps)
			}
			if !reflect.DeepEqual(seq, res) {
				t.Fatalf("%s: fallback result diverged\nseq:    %+v\nshards: %+v", tc.name, seq, res)
			}
		})
	}
}

// TestShardedMixedFinalFlip re-runs the mid-run classification flip with
// the sharded stepper engaged before the flip: a streamed message that
// mixes edge roles must eject the Sim from the sharded regime (the
// contest-edge lemma needs unmixed roles) without disturbing identity.
func TestShardedMixedFinalFlip(t *testing.T) {
	g := topology.NewLinearArray(7)
	route := message.ShortestPathRouter(g)
	long := message.Message{Src: 0, Dst: 6, Length: 5, Path: route(0, 6)}
	flip := message.Message{Src: 0, Dst: 5, Length: 2, Path: route(0, 5)}
	cfg := Config{VirtualChannels: 1, Arbitration: ArbAge, Seed: 9, MaxSteps: 4096, CheckInvariants: true}
	shCfg := cfg
	shCfg.Shards = 2
	seq, err := NewSim(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewSim(g, shCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	sh.shardMin = 1
	inject := func(m message.Message, rel int) {
		t.Helper()
		if _, err := seq.Inject(m, rel); err != nil {
			t.Fatal(err)
		}
		if _, err := sh.Inject(m, rel); err != nil {
			t.Fatal(err)
		}
	}
	step := func() {
		t.Helper()
		if err := seq.Step(); err != nil {
			t.Fatal(err)
		}
		if err := sh.Step(); err != nil {
			t.Fatal(err)
		}
		rs, rp := seq.Result(), sh.Result()
		if !reflect.DeepEqual(rs, rp) {
			t.Fatalf("snapshots differ at step %d\nsequential: %+v\n   sharded: %+v", seq.Now(), rs, rp)
		}
	}
	for i := 0; i < 10; i++ {
		inject(long, 0)
	}
	for i := 0; i < 30; i++ {
		step()
	}
	if sh.ShardedSteps() == 0 {
		t.Fatal("sharded stepper never engaged before the flip")
	}
	if sh.mixedFinal {
		t.Fatal("classification mixed before the flip message")
	}
	before := sh.ShardedSteps()
	inject(flip, sh.Now())
	if !sh.mixedFinal {
		t.Fatal("flip message did not mix the classification")
	}
	for sh.Active() > 0 {
		step()
	}
	if sh.ShardedSteps() != before {
		t.Fatalf("sharded steps advanced from %d to %d across the flip; mixed-final must fall back",
			before, sh.ShardedSteps())
	}
}

// TestShardedPartitionBands checks the static edge partition: contiguous,
// monotone bands that start at shard 0, end at shard S−1, and stay
// balanced to within one edge of the even split.
func TestShardedPartitionBands(t *testing.T) {
	bf := topology.NewButterfly(16)
	for _, shards := range []int{2, 3, 4, 8} {
		si, err := NewSim(bf.G, Config{VirtualChannels: 2, Shards: shards, MaxSteps: 1})
		if err != nil {
			t.Fatal(err)
		}
		edges := len(si.edgeShard)
		counts := make([]int, shards)
		prev := uint8(0)
		for e, s := range si.edgeShard {
			if s < prev {
				t.Fatalf("shards=%d: edgeShard not monotone at edge %d: %d after %d", shards, e, s, prev)
			}
			if int(s) >= shards {
				t.Fatalf("shards=%d: edge %d assigned to shard %d", shards, e, s)
			}
			counts[s]++
			prev = s
		}
		if si.edgeShard[0] != 0 || si.edgeShard[edges-1] != uint8(shards-1) {
			t.Fatalf("shards=%d: bands span [%d, %d], want [0, %d]",
				shards, si.edgeShard[0], si.edgeShard[edges-1], shards-1)
		}
		for s, c := range counts {
			if lo, hi := edges/shards, edges/shards+1; c < lo || c > hi {
				t.Fatalf("shards=%d: shard %d owns %d edges, want %d or %d", shards, s, c, lo, hi)
			}
		}
	}
}

// TestShardedTelemetryMatchesSequential runs the same workload with a
// flight recorder attached under both steppers: after Result drains the
// per-shard children, the aggregated snapshots must be deeply equal —
// the counters are sums and the per-edge attribution is exact, not
// merely consistent.
func TestShardedTelemetryMatchesSequential(t *testing.T) {
	set, releases := fuzzWorkload(13, 0, 96)
	base := Config{VirtualChannels: 2, Arbitration: ArbByID, Seed: 13}
	seqMet := telemetry.NewMetrics()
	cfg := base
	cfg.Metrics = seqMet
	seqRes := Run(set, releases, cfg)
	shMet := telemetry.NewMetrics()
	shCfg := base
	shCfg.Shards = 4
	shCfg.Metrics = shMet
	shRes, steps := runSharded(set, releases, shCfg, 1)
	if steps == 0 {
		t.Fatal("sharded run never engaged; the telemetry merge path is untested")
	}
	if !reflect.DeepEqual(seqRes, shRes) {
		t.Fatalf("results diverged\nseq:     %+v\nsharded: %+v", seqRes, shRes)
	}
	s, p := seqMet.Snapshot(), shMet.Snapshot()
	// The stepper-attribution counters are the one intended difference:
	// they record which stepper ran each step, so the sharded run must
	// show engagement where the sequential run shows none.
	if got := p.Counter("sharded_steps"); got != steps {
		t.Fatalf("sharded_steps counter %d, want %d", got, steps)
	}
	if s.Counter("sharded_steps") != 0 {
		t.Fatalf("sequential run reports %d sharded steps", s.Counter("sharded_steps"))
	}
	if s.Counter("shard_fallback_steps") != 0 {
		t.Fatalf("Shards=0 run reports %d fallback steps", s.Counter("shard_fallback_steps"))
	}
	if shard, fall := p.Counter("sharded_steps"), p.Counter("shard_fallback_steps"); shard+fall != p.Counter("steps") {
		t.Fatalf("sharded %d + fallback %d ≠ steps %d", shard, fall, p.Counter("steps"))
	}
	blank := func(sn *telemetry.Snapshot, name string) {
		for i := range sn.Counters {
			if sn.Counters[i].Name == name {
				sn.Counters[i].Value = 0
			}
		}
	}
	for _, name := range []string{"sharded_steps", "shard_fallback_steps"} {
		blank(&s, name)
		blank(&p, name)
	}
	if !reflect.DeepEqual(s, p) {
		t.Fatalf("telemetry snapshots diverged\nsequential: %+v\n   sharded: %+v", s, p)
	}
}

// TestShardedDrainIdempotent pins the snapshot-boundary contract: calling
// Result repeatedly after a sharded run must not double-count the drained
// shard children.
func TestShardedDrainIdempotent(t *testing.T) {
	set, releases := fuzzWorkload(17, 0, 64)
	met := telemetry.NewMetrics()
	cfg := Config{VirtualChannels: 2, Arbitration: ArbAge, Seed: 17, Shards: 2, Metrics: met}
	si := newBatchSim(set, releases, cfg)
	si.shardMin = 1
	defer si.Close()
	si.Drain()
	first := si.Result()
	snap := met.Snapshot()
	again := si.Result()
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("repeated Result diverged\nfirst: %+v\nagain: %+v", first, again)
	}
	if s := met.Snapshot(); !reflect.DeepEqual(snap, s) {
		t.Fatalf("repeated Result changed the telemetry snapshot\nfirst: %+v\nagain: %+v", snap, s)
	}
}

// TestShardedCloseStopsWorkers asserts Close releases the pool's
// goroutines: after a sharded run is closed, the goroutine count returns
// to its pre-run baseline.
func TestShardedCloseStopsWorkers(t *testing.T) {
	base := runtime.NumGoroutine()
	set, releases := fuzzWorkload(19, 0, 64)
	cfg := Config{VirtualChannels: 2, Arbitration: ArbByID, Seed: 19, Shards: 8}
	if _, steps := runSharded(set, releases, cfg, 1); steps == 0 {
		t.Fatal("sharded run never engaged; no workers were ever started")
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Fatalf("%d goroutines outlive Close (baseline %d)", n, base)
	}
}

// TestShardedStepZeroAllocSteadyState is the sharded counterpart of the
// wakeup zero-alloc gate: once the pool, verdict arrays, and per-shard
// buffers are warm, a sharded step must not allocate — the phase funcs
// are pre-bound and the deferred buffers are reused.
func TestShardedStepZeroAllocSteadyState(t *testing.T) {
	bf := topology.NewButterfly(16)
	sim, err := NewSim(bf.G, Config{VirtualChannels: 2, Arbitration: ArbAge, MaxSteps: 1 << 30, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	sim.shardMin = 1
	for i := 0; i < 400; i++ {
		src, dst := i%16, (i*7+3)%16
		m := message.Message{Src: bf.Input(src), Dst: bf.Output(dst), Length: 4, Path: bf.Route(src, dst)}
		if _, err := sim.Inject(m, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if sim.ShardedSteps() == 0 {
		t.Fatal("warmup never took a sharded step")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state sharded Step allocates %.2f times per step, want 0", allocs)
	}
}

// TestShardedDeadlockParity freezes a deadlock inside the sharded regime
// and checks the frozen snapshot matches the sequential stepper — the
// detector runs serially off the merged moved/dropped verdicts, so the
// stamp must land on the same step. Ring deadlocks classify mixed-final
// and fall back, so the fixture is hand-built to keep roles unmixed: two
// worms holding each other's wanted body slot (W1 crosses e1 and wants
// e2, W2 the reverse), with final-only exit edges.
func TestShardedDeadlockParity(t *testing.T) {
	g := graph.New(0, 0)
	u := g.AddNode("u")
	v := g.AddNode("v")
	x := g.AddNode("x")
	y := g.AddNode("y")
	as := g.AddNode("as")
	bs := g.AddNode("bs")
	e1 := g.AddEdge(u, v)
	e2 := g.AddEdge(v, u)
	f1 := g.AddEdge(u, x)
	f2 := g.AddEdge(v, y)
	eA := g.AddEdge(as, u)
	eB := g.AddEdge(bs, v)
	set := message.NewSet(g)
	set.Add(as, x, 4, graph.Path{eA, e1, e2, f1})
	set.Add(bs, y, 4, graph.Path{eB, e2, e1, f2})
	releases := []int{0, 0}
	cfg := Config{VirtualChannels: 1, Arbitration: ArbByID, CheckInvariants: true}
	seq := Run(set, releases, cfg)
	if !seq.Deadlocked {
		t.Fatal("fixture did not deadlock; the parity claim is vacuous")
	}
	shCfg := cfg
	shCfg.Shards = 2
	res, steps := runSharded(set, releases, shCfg, 1)
	if steps == 0 {
		t.Fatal("deadlock run never engaged the sharded stepper")
	}
	if !reflect.DeepEqual(seq, res) {
		t.Fatalf("deadlock snapshots diverged\nseq:     %+v\nsharded: %+v", seq, res)
	}
}
