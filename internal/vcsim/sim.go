package vcsim

// This file is the incremental (open-loop) lifecycle of the Sim engine:
// construction over a bare network, streaming injection, single-step
// advancement, and terminal-state inspection. The step machinery itself
// lives in vcsim.go and is shared verbatim with the batch Run wrapper,
// so the two modes cannot drift apart.

import (
	"errors"
	"fmt"
	"sort"

	"wormhole/internal/graph"
	"wormhole/internal/message"
)

var (
	// ErrNoHorizon is returned by NewSim when Config.MaxSteps is zero. The
	// batch wrapper can derive a safe bound from its finite workload, but
	// an open-loop simulation has no workload to derive a bound from —
	// messages stream in — so the horizon must be explicit.
	ErrNoHorizon = errors.New("vcsim: incremental simulation requires an explicit Config.MaxSteps horizon")
	// ErrHorizon is returned by Step once the MaxSteps horizon is reached;
	// the result is marked Truncated.
	ErrHorizon = errors.New("vcsim: MaxSteps horizon reached")
	// ErrDeadlocked is returned by Step once a deadlock has frozen the
	// network: every eligible worm is slot-blocked, and slots only free
	// when worms move, so no future injection can help.
	ErrDeadlocked = errors.New("vcsim: network is deadlocked")
)

// NewSim returns an empty incremental simulator over the network g.
// Unlike the batch Run wrapper, cfg.MaxSteps must be set explicitly: with
// messages streaming in there is no workload to derive a safe bound from,
// so a zero horizon is rejected with ErrNoHorizon rather than guessed at.
func NewSim(g *graph.Graph, cfg Config) (*Sim, error) {
	if cfg.VirtualChannels < 1 {
		return nil, fmt.Errorf("vcsim: VirtualChannels %d < 1", cfg.VirtualChannels)
	}
	if err := validateArch(cfg); err != nil {
		return nil, err
	}
	if cfg.MaxSteps <= 0 {
		return nil, ErrNoHorizon
	}
	si := emptySim(g.NumEdges(), cfg)
	si.recycle = true
	return si, nil
}

// Inject adds one message to the simulation with the given release time
// and returns its ID. IDs are dense and assigned in injection order, so
// they double as indices into Result().PerMessage. The release time must
// not lie in the past (release ≥ Now()); the message becomes eligible in
// the first step at or after its release, exactly like a batch release
// list entry.
func (si *Sim) Inject(msg message.Message, release int) (message.ID, error) {
	if release < si.now {
		return -1, fmt.Errorf("vcsim: release %d is before the current step %d", release, si.now)
	}
	if msg.Length < 1 {
		return -1, fmt.Errorf("vcsim: message length %d < 1", msg.Length)
	}
	p := si.newPath(len(msg.Path))
	for j, e := range msg.Path {
		if int(e) < 0 || int(e) >= len(si.slotsUsed) {
			return -1, fmt.Errorf("vcsim: path edge %d out of range [0,%d)", e, len(si.slotsUsed))
		}
		p[j] = int32(e)
	}
	id := len(si.worms)
	si.worms = append(si.worms, worm{
		id:       id,
		path:     p,
		d:        len(p),
		l:        msg.Length,
		release:  release,
		stats:    MessageStats{Release: release, InjectTime: -1, DeliverTime: -1, DropTime: -1},
		parkedAt: -1,
	})
	if si.deepMode {
		si.deepWorms = append(si.deepWorms, deepWorm{
			prog:    si.newProg(msg.Length),
			lastInj: -1,
		})
	}
	si.markPathRoles(p)
	// Keep pending sorted by (release, id): the new ID is the largest, so
	// it slots in after every entry with release ≤ its own.
	pos := sort.Search(len(si.pending), func(i int) bool {
		return si.worms[si.pending[i]].release > release
	})
	si.pending = append(si.pending, 0)
	copy(si.pending[pos+1:], si.pending[pos:])
	si.pending[pos] = id
	return message.ID(id), nil
}

// Step advances the simulation by exactly one flit step, admitting
// released messages and moving eligible worms. A step with no eligible
// messages is an idle step: time advances and nothing else happens, which
// is how open-loop drivers model real time between arrivals. Step returns
// ErrHorizon once Now() has reached the MaxSteps horizon (marking the
// result Truncated) and ErrDeadlocked once a deadlock has been detected —
// including the step that detects it.
func (si *Sim) Step() error {
	if si.deadlocked {
		return ErrDeadlocked
	}
	if si.now >= si.maxSteps {
		si.truncated = true
		return ErrHorizon
	}
	si.admit()
	si.step()
	if si.deadlocked {
		return ErrDeadlocked
	}
	return nil
}

// Now returns the current flit step.
func (si *Sim) Now() int { return si.now }

// Active returns the number of injected messages that have not yet
// completed: worms in flight plus worms waiting on their release time.
// After a deadlock it counts the frozen worms, which never complete.
func (si *Sim) Active() int { return len(si.worms) - si.delivered - si.dropped }

// Injected returns the total number of messages injected so far.
func (si *Sim) Injected() int { return len(si.worms) }

// Delivered returns the number of fully delivered messages so far.
func (si *Sim) Delivered() int { return si.delivered }

// Dropped returns the number of messages discarded by drop-on-delay.
func (si *Sim) Dropped() int { return si.dropped }

// Deadlocked reports whether a deadlock has frozen the network.
func (si *Sim) Deadlocked() bool { return si.deadlocked }

// Truncated reports whether the MaxSteps horizon was reached.
func (si *Sim) Truncated() bool { return si.truncated }
