package vcsim

// This file is the incremental (open-loop) lifecycle of the Sim engine:
// construction over a bare network, streaming injection, single-step and
// fast-forward advancement, and terminal-state inspection. The step
// machinery itself lives in vcsim.go and is shared verbatim with the
// batch Run wrapper, so the two modes cannot drift apart.

import (
	"errors"
	"fmt"

	"wormhole/internal/graph"
	"wormhole/internal/message"
)

var (
	// ErrNoHorizon is returned by NewSim when Config.MaxSteps is zero. The
	// batch wrapper can derive a safe bound from its finite workload, but
	// an open-loop simulation has no workload to derive a bound from —
	// messages stream in — so the horizon must be explicit.
	ErrNoHorizon = errors.New("vcsim: incremental simulation requires an explicit Config.MaxSteps horizon")
	// ErrHorizon is returned by Step once the MaxSteps horizon is reached;
	// the result is marked Truncated.
	ErrHorizon = errors.New("vcsim: MaxSteps horizon reached")
	// ErrDeadlocked is returned by Step once a deadlock has frozen the
	// network: every eligible worm is slot-blocked, and slots only free
	// when worms move, so no future injection can help.
	ErrDeadlocked = errors.New("vcsim: network is deadlocked")

	// The validation family below unifies the error contract across the
	// incremental path (Inject/NewSim return them wrapped with context)
	// and the batch path (newBatchSim panics with the same wrapped
	// values, and RunChecked surfaces them as errors). Services in front
	// of the simulator match with errors.Is to map a tenant's bad
	// workload to a client error instead of crashing the job.

	// ErrBadConfig wraps every Config rejection: VirtualChannels < 1,
	// negative LaneDepth or ParkStreak, Shards outside [0, 256].
	ErrBadConfig = errors.New("vcsim: invalid configuration")
	// ErrOverHorizon wraps every rejection of a time or size above
	// MaxHorizon: release times, message lengths, path lengths, and
	// Config.MaxSteps (the engine keeps event times in 32-bit counters).
	ErrOverHorizon = errors.New("vcsim: exceeds the MaxHorizon limit")
	// ErrPastRelease wraps Inject's rejection of a release time before
	// the simulator's current step.
	ErrPastRelease = errors.New("vcsim: release time is in the past")
	// ErrBadMessage wraps per-message rejections that are neither horizon
	// nor config problems: non-positive lengths, out-of-range path edges,
	// a release list whose length does not match the message set.
	ErrBadMessage = errors.New("vcsim: invalid message")
)

// NewSim returns an empty incremental simulator over the network g.
// Unlike the batch Run wrapper, cfg.MaxSteps must be set explicitly: with
// messages streaming in there is no workload to derive a safe bound from,
// so a zero horizon is rejected with ErrNoHorizon rather than guessed at.
func NewSim(g *graph.Graph, cfg Config) (*Sim, error) {
	if cfg.VirtualChannels < 1 {
		return nil, fmt.Errorf("%w: VirtualChannels %d < 1", ErrBadConfig, cfg.VirtualChannels)
	}
	if err := validateArch(cfg); err != nil {
		return nil, err
	}
	if err := validateFaults(g.NumEdges(), cfg); err != nil {
		return nil, err
	}
	if cfg.MaxSteps <= 0 {
		return nil, ErrNoHorizon
	}
	si := emptySim(g.NumEdges(), cfg)
	si.recycle = true
	return si, nil
}

// Inject adds one message to the simulation with the given release time
// and returns its ID. IDs are dense and assigned in injection order, so
// they double as indices into Result().PerMessage. The release time must
// not lie in the past (release ≥ Now()); the message becomes eligible in
// the first step at or after its release, exactly like a batch release
// list entry.
func (si *Sim) Inject(msg message.Message, release int) (message.ID, error) {
	if release < si.now {
		return -1, fmt.Errorf("%w: release %d is before the current step %d", ErrPastRelease, release, si.now)
	}
	if release > MaxHorizon {
		return -1, fmt.Errorf("%w: release %d exceeds MaxHorizon %d", ErrOverHorizon, release, MaxHorizon)
	}
	if msg.Length < 1 {
		return -1, fmt.Errorf("%w: message length %d < 1", ErrBadMessage, msg.Length)
	}
	if msg.Length > MaxHorizon || len(msg.Path) > MaxHorizon {
		return -1, fmt.Errorf("%w: message length %d / path %d exceeds MaxHorizon %d", ErrOverHorizon, msg.Length, len(msg.Path), MaxHorizon)
	}
	p := si.newPath(len(msg.Path))
	for j, e := range msg.Path {
		if int(e) < 0 || int(e) >= len(si.laneFree) {
			return -1, fmt.Errorf("%w: path edge %d out of range [0,%d)", ErrBadMessage, e, len(si.laneFree))
		}
		p[j] = int32(e)
	}
	w, id := si.addWorm()
	*w = worm{
		id:          int32(id), //wormvet:allow horizon -- addWorm pins id < MaxHorizon
		path:        p,
		d:           int32(len(msg.Path)),
		l:           int32(msg.Length),
		release:     int32(release),
		key:         si.policyKey(release, id),
		injectTime:  -1,
		deliverTime: -1,
		dropTime:    -1,
		parkedAt:    -1,
		lastInj:     -1,
		stretched:   true,
		blockedOn:   -1,
	}
	if si.deepMode {
		w.prog = si.newProg(msg.Length)
	}
	si.markPathRoles(p)
	si.pendPush(relKey(release, id))
	return message.ID(id), nil
}

// Step advances the simulation by exactly one flit step, admitting
// released messages and moving eligible worms. A step with no eligible
// messages is an idle step: time advances and nothing else happens, which
// is how open-loop drivers model real time between arrivals. Step returns
// ErrHorizon once Now() has reached the MaxSteps horizon (marking the
// result Truncated) and ErrDeadlocked once a deadlock has been detected —
// including the step that detects it.
//
//wormvet:hotpath
func (si *Sim) Step() error {
	if si.deadlocked {
		return ErrDeadlocked
	}
	if si.now >= si.maxSteps {
		si.truncated = true
		return ErrHorizon
	}
	si.admit()
	si.step()
	if si.deadlocked {
		return ErrDeadlocked
	}
	return nil
}

// NextEventTime returns the earliest flit step at or after Now() whose
// step can be anything but a pure idle step (one that only advances the
// clock): Now() itself while any worm is in flight or already admissible,
// the earliest pending release when the network is otherwise empty, and
// -1 when nothing is in flight or pending — no future step can do
// anything until a new message is injected. A deadlocked simulator
// likewise returns -1: its frozen worms never move again.
//
// The contract is exact, not heuristic: a step strictly before the
// returned time moves no worm, fires no event, and changes nothing but
// Now() — which is what lets StepTo jump the clock across the gap with
// byte-identical results (pinned by the fast-forward differential tests
// and the fuzz harness).
//
//wormvet:hotpath
func (si *Sim) NextEventTime() int {
	if si.deadlocked {
		return -1
	}
	if si.inFlight() > 0 {
		return si.now
	}
	if si.pendLen() > 0 {
		if r := keyRelease(si.pendFirst()); r > si.now {
			return r
		}
		return si.now
	}
	return -1
}

// StepTo advances the simulation until Now() == t, executing real steps
// while work exists and fast-forwarding the clock across idle spans (see
// NextEventTime) instead of burning a step apiece on them. It is
// behaviorally identical to calling Step in a loop until Now() reaches t
// — same results, same errors, byte for byte — just cheaper when the
// network sits empty for stretches, as open-loop drivers at light load
// and drain windows do. A t at or before Now() is a no-op.
//
//wormvet:hotpath
func (si *Sim) StepTo(t int) error {
	for si.now < t {
		if si.deadlocked {
			return ErrDeadlocked
		}
		if si.now >= si.maxSteps {
			si.truncated = true
			return ErrHorizon
		}
		next := si.NextEventTime()
		if next != si.now {
			// Idle span: every step up to min(next, t) — or all the way
			// to t when nothing is pending — would be pure clock. Jump,
			// but never past the horizon Step() enforces step by step.
			if next < 0 || next > t {
				next = t
			}
			if next > si.maxSteps {
				next = si.maxSteps
			}
			if m := si.met; m != nil && next > si.now {
				m.Jump(int64(next - si.now))
			}
			si.now = next
			continue
		}
		si.admit()
		si.step()
		if si.deadlocked {
			return ErrDeadlocked
		}
	}
	return nil
}

// Now returns the current flit step.
func (si *Sim) Now() int { return si.now }

// Active returns the number of injected messages that have not yet
// completed: worms in flight plus worms waiting on their release time.
// After a deadlock it counts the frozen worms, which never complete.
// Messages abandoned by the fault-retry policy no longer count.
func (si *Sim) Active() int { return si.numWorms - si.delivered - si.dropped - si.aborted }

// Injected returns the total number of messages injected so far.
func (si *Sim) Injected() int { return si.numWorms }

// Delivered returns the number of fully delivered messages so far.
func (si *Sim) Delivered() int { return si.delivered }

// Dropped returns the number of messages discarded by drop-on-delay.
func (si *Sim) Dropped() int { return si.dropped }

// Deadlocked reports whether a deadlock has frozen the network.
func (si *Sim) Deadlocked() bool { return si.deadlocked }

// Truncated reports whether the MaxSteps horizon was reached.
func (si *Sim) Truncated() bool { return si.truncated }
